// A5 — the Unknown-propagation rule: "the previous pose for the next frame
// should be set to the pose that is recognized most recently instead of
// 'Unknown' ... From our experience, this is really useful." Reproduced by
// toggling the carry rule at several Th_Pose levels (higher thresholds
// produce more Unknown frames, which is where the rule matters).
#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("A5  Unknown-pose propagation rule",
                      "Sec. 5: feed the most recently recognized pose, not Unknown");

  const synth::Dataset dataset = bench::paper_corpus();

  bench::print_rule();
  std::printf("%-10s %-26s %-10s %-10s\n", "Th_Pose", "previous-pose rule", "overall",
              "unknown");
  bench::print_rule();
  for (const double th : {0.25, 0.60, 0.85}) {
    for (const bool carry : {true, false}) {
      pose::ClassifierConfig cfg;
      cfg.th_pose = th;
      cfg.carry_last_recognized = carry;
      bench::TrainedSystem sys = bench::train_system(dataset, cfg);
      const core::DatasetEvaluation eval =
          core::evaluate_dataset(sys.classifier, sys.pipeline, dataset.test);
      std::size_t unknown = 0;
      for (const auto& c : eval.clips) unknown += c.unknown;
      std::printf("%-10.2f %-26s %-10.1f %-10zu\n", th,
                  carry ? "carry last recognized" : "reset to uninformative",
                  100.0 * eval.overall_accuracy(), unknown);
    }
  }
  bench::print_rule();
  std::printf("expected shape: with many Unknown frames (high Th_Pose) the carry rule "
              "recovers accuracy; with few it is neutral\n");
  return 0;
}
