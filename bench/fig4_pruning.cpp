// F4 — Figure 4: noisy-branch pruning must delete ONE branch at a time;
// deleting all short branches in one sweep can remove the correct branch
// along with the noisy one. Reproduced as: over a clip, skeleton length
// retained and limb end-points surviving under one-at-a-time vs batch
// pruning, plus key-point distance to ground-truth part locations.
#include "bench_common.hpp"
#include "skelgraph/artifacts.hpp"
#include "thinning/zhang_suen.hpp"

namespace {

double min_distance_to(const std::vector<slj::skel::KeyPoint>& pts, slj::PointF target) {
  double best = 1e9;
  for (const auto& kp : pts) {
    best = std::min(best, slj::distance(slj::to_f(kp.pos), target));
  }
  return best;
}

}  // namespace

int main() {
  using namespace slj;
  bench::print_header("F4  one-at-a-time branch pruning",
                      "Fig. 4: (b) deleting both branches vs (c) deleting only the noisy one");

  synth::ClipSpec spec;
  spec.seed = 2025;
  spec.frame_count = 45;
  const synth::Clip clip = synth::generate_clip(spec);
  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);

  double len_one = 0.0, len_batch = 0.0;
  std::size_t ends_one = 0, ends_batch = 0;
  double head_err_one = 0.0, head_err_batch = 0.0;
  int frames = 0;

  for (int i = 0; i < clip.frame_count(); ++i) {
    const BinaryImage sil = extractor.silhouette(clip.frames[static_cast<std::size_t>(i)]);
    const BinaryImage skeleton = thin::zhang_suen_thin(sil);
    skel::SkeletonGraph g1 = skel::build_skeleton_graph(skeleton);
    skel::cut_loops(g1);
    skel::SkeletonGraph g2 = g1;
    skel::prune_branches(g1, 10, skel::PruningMode::kOneAtATime);
    skel::prune_branches(g2, 10, skel::PruningMode::kBatch);

    len_one += g1.total_length();
    len_batch += g2.total_length();
    const auto pts1 = skel::extract_key_points(g1);
    const auto pts2 = skel::extract_key_points(g2);
    for (const auto& kp : pts1) ends_one += kp.type == skel::NodeType::kEnd ? 1 : 0;
    for (const auto& kp : pts2) ends_batch += kp.type == skel::NodeType::kEnd ? 1 : 0;
    const PointF head = clip.truth[static_cast<std::size_t>(i)].parts.head;
    head_err_one += min_distance_to(pts1, head);
    head_err_batch += min_distance_to(pts2, head);
    ++frames;
  }

  bench::print_rule();
  std::printf("%-34s %-16s %-16s\n", "metric (clip totals / means)", "one-at-a-time", "batch");
  bench::print_rule();
  std::printf("%-34s %-16.1f %-16.1f\n", "skeleton length retained (px)", len_one, len_batch);
  std::printf("%-34s %-16.1f %-16.1f\n", "limb end-points per frame",
              static_cast<double>(ends_one) / frames, static_cast<double>(ends_batch) / frames);
  std::printf("%-34s %-16.2f %-16.2f\n", "nearest key point to GT head (px)",
              head_err_one / frames, head_err_batch / frames);
  bench::print_rule();
  std::printf("paper: \"Only one branch can be deleted at a time. Otherwise, both the noisy "
              "branch and the correct branch could be removed at the same time.\"\n");
  std::printf("expected shape: one-at-a-time retains more skeleton and tracks the head at "
              "least as closely\n");
  return 0;
}
