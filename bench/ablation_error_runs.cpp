// A6 — error burstiness: "a misclassified frame will still affect the
// classification of its subsequent frames. Most errors in our experiments
// occurred in consecutive frames." Reproduced as the error run-length
// histogram on the test clips, compared against the static BN whose errors
// have no temporal coupling.
#include <map>

#include "bench_common.hpp"

namespace {

std::map<int, int> run_histogram(const slj::core::DatasetEvaluation& eval) {
  std::map<int, int> hist;
  for (const int r : slj::core::error_run_lengths(eval)) ++hist[r];
  return hist;
}

void print_histogram(const char* name, const std::map<int, int>& hist, std::size_t frames) {
  int errors = 0, runs = 0, multi = 0;
  for (const auto& [len, n] : hist) {
    errors += len * n;
    runs += n;
    multi += len >= 2 ? n : 0;
  }
  std::printf("%-28s errors=%d (%.1f%%)  runs=%d  runs>=2: %d", name, errors,
              100.0 * errors / static_cast<double>(frames), runs, multi);
  std::printf("   histogram:");
  for (const auto& [len, n] : hist) std::printf(" len%d x%d", len, n);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace slj;
  bench::print_header("A6  error run-length analysis",
                      "Sec. 5: most errors occur in consecutive frames");

  const synth::Dataset dataset = bench::paper_corpus();

  pose::ClassifierConfig dbn_cfg;
  bench::TrainedSystem dbn = bench::train_system(dataset, dbn_cfg);
  const core::DatasetEvaluation dbn_eval =
      core::evaluate_dataset(dbn.classifier, dbn.pipeline, dataset.test);

  pose::ClassifierConfig static_cfg;
  static_cfg.temporal = pose::TemporalMode::kStaticBn;
  bench::TrainedSystem stat = bench::train_system(dataset, static_cfg);
  const core::DatasetEvaluation stat_eval =
      core::evaluate_dataset(stat.classifier, stat.pipeline, dataset.test);

  bench::print_rule();
  print_histogram("DBN", run_histogram(dbn_eval), dataset.test_frames());
  print_histogram("static BN", run_histogram(stat_eval), dataset.test_frames());
  bench::print_rule();

  const auto fraction_in_bursts = [](const core::DatasetEvaluation& eval) {
    int errors = 0, burst_errors = 0;
    for (const int r : core::error_run_lengths(eval)) {
      errors += r;
      if (r >= 2) burst_errors += r;
    }
    return errors > 0 ? static_cast<double>(burst_errors) / errors : 0.0;
  };
  std::printf("fraction of errors inside runs of >=2 consecutive frames: DBN %.0f%%, "
              "static BN %.0f%%\n",
              100.0 * fraction_in_bursts(dbn_eval), 100.0 * fraction_in_bursts(stat_eval));
  std::printf("expected shape: in both models most errors sit in multi-frame runs (the "
              "paper's observation); the DBN's advantage is far fewer errors overall\n");
  return 0;
}
