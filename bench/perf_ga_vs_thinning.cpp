// P1 — the paper's motivation for replacing its earlier GA stick-model
// fitter [1] with thinning: "the search process of the genetic algorithm is
// very time-consuming. Therefore, the thinning algorithm is utilized
// instead ... much simpler." Reproduced as per-frame skeletonization wall
// time and key-point fidelity for both methods on the same silhouettes.
#include <chrono>

#include "bench_common.hpp"
#include "ga/ga_fitter.hpp"
#include "skelgraph/artifacts.hpp"
#include "skelgraph/simplify.hpp"
#include "thinning/zhang_suen.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main() {
  using namespace slj;
  bench::print_header("P1  GA stick-model fitting vs thinning skeletonization",
                      "Sec. 1: the GA search \"is very time-consuming\"; thinning is simpler");

  synth::ClipSpec spec;
  spec.seed = 77;
  spec.frame_count = 45;
  const synth::Clip clip = synth::generate_clip(spec);
  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);

  const synth::BodyDimensions body = synth::BodyDimensions::for_height(1.38);
  ga::GaConfig ga_cfg;  // defaults: 56 individuals, 60 generations
  const int frames_to_run = 10;  // GA is slow; 10 frames give a stable mean

  double thin_ms = 0.0, ga_ms = 0.0;
  double thin_err = 0.0, ga_err = 0.0;
  double ga_fitness = 0.0;

  for (int i = 0; i < frames_to_run; ++i) {
    const int frame = i * clip.frame_count() / frames_to_run;
    const BinaryImage sil = extractor.silhouette(clip.frames[static_cast<std::size_t>(frame)]);
    const synth::FrameTruth& truth = clip.truth[static_cast<std::size_t>(frame)];

    // --- thinning pipeline -------------------------------------------------
    const auto t0 = Clock::now();
    const BinaryImage skeleton = thin::zhang_suen_thin(sil);
    skel::SkeletonGraph graph = skel::clean_skeleton(skeleton);
    skel::split_edges_at_bends(graph);
    const auto pts = skel::extract_key_points(graph);
    thin_ms += ms_since(t0);
    const auto nearest = [&](PointF target) {
      double best = 1e9;
      for (const auto& kp : pts) best = std::min(best, distance(to_f(kp.pos), target));
      return best;
    };
    thin_err += (nearest(truth.parts.head) + nearest(truth.parts.hand) +
                 nearest(truth.parts.foot)) / 3.0;

    // --- GA stick-model fitting ---------------------------------------------
    ga_cfg.seed = 1000u + static_cast<unsigned>(i);
    ga::GeneticSkeletonFitter fitter(body, spec.camera, ga_cfg);
    const auto t1 = Clock::now();
    const ga::FitResult fit = fitter.fit(sil);
    ga_ms += ms_since(t1);
    ga_fitness += fit.fitness;
    const synth::SilhouetteRenderer renderer(spec.camera);
    const synth::PartTruth ga_parts =
        renderer.part_truth(body, fit.best.angles, fit.best.pelvis_world);
    ga_err += (distance(ga_parts.head, truth.parts.head) +
               distance(ga_parts.hand, truth.parts.hand) +
               distance(ga_parts.foot, truth.parts.foot)) / 3.0;
  }

  bench::print_rule();
  std::printf("%-30s %-18s %-22s\n", "method", "ms per frame", "mean part error (px)");
  bench::print_rule();
  std::printf("%-30s %-18.2f %-22.2f\n", "Z-S thinning + graph cleanup",
              thin_ms / frames_to_run, thin_err / frames_to_run);
  std::printf("%-30s %-18.2f %-22.2f (mean IoU %.2f)\n", "GA stick-model fitting",
              ga_ms / frames_to_run, ga_err / frames_to_run, ga_fitness / frames_to_run);
  bench::print_rule();
  std::printf("speedup of thinning over GA: %.0fx\n", ga_ms / std::max(thin_ms, 1e-9));
  std::printf("expected shape: thinning is orders of magnitude faster — the paper's reason "
              "for switching. The GA localizes joints more precisely but needs the stick "
              "sizes \"given by the user beforehand\" (the paper's other criticism) and a "
              "per-frame search budget no classroom system can afford\n");
  return 0;
}
