// A1 — DBN vs static BN: the paper's core modelling claim is that the
// previous pose and the jumping-stage flag are "crucial to the pose of the
// current frame". Reproduced by evaluating the same trained observation
// model with and without the temporal links.
#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("A1  DBN vs static BN",
                      "Sec. 4: previous pose + stage flag condition the current pose");

  const synth::Dataset dataset = bench::paper_corpus();

  struct Row {
    const char* name;
    pose::TemporalMode mode;
    bool stage_constraint;
  };
  const Row rows[] = {
      {"DBN (prev pose + stage flag)", pose::TemporalMode::kDbn, true},
      {"DBN without stage discipline", pose::TemporalMode::kDbn, false},
      {"static BN (no temporal links)", pose::TemporalMode::kStaticBn, false},
  };

  bench::print_rule();
  std::printf("%-34s %-10s %-22s %-10s\n", "model", "overall", "per clip", "unknown");
  bench::print_rule();
  for (const Row& row : rows) {
    pose::ClassifierConfig cfg;
    cfg.temporal = row.mode;
    cfg.use_stage_constraint = row.stage_constraint;
    bench::TrainedSystem sys = bench::train_system(dataset, cfg);
    const core::DatasetEvaluation eval =
        core::evaluate_dataset(sys.classifier, sys.pipeline, dataset.test);
    std::size_t unknown = 0;
    for (const auto& c : eval.clips) unknown += c.unknown;
    std::printf("%-34s %-10.1f %4.0f%% / %4.0f%% / %4.0f%%     %-10zu\n", row.name,
                100.0 * eval.overall_accuracy(), 100.0 * eval.clips[0].accuracy(),
                100.0 * eval.clips[1].accuracy(), 100.0 * eval.clips[2].accuracy(), unknown);
  }
  bench::print_rule();
  std::printf("expected shape: the full DBN wins; removing temporal links costs accuracy\n");
  return 0;
}
