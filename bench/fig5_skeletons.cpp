// F5 — Figures 5 & 8: thinning-based skeletons across a full jump
// ("the extracted skeletons represent their respective poses pretty well").
// Reproduced as: per-stage mean distance between extracted key points and
// the ground-truth body parts, an ASCII contact sheet of representative
// frames, and PGM dumps.
#include "bench_common.hpp"
#include "imaging/ascii.hpp"
#include "imaging/image_io.hpp"

int main() {
  using namespace slj;
  bench::print_header("F5  skeletons across the jump (Fig. 5 / Fig. 8)",
                      "Fig. 8: skeleton extraction by thinning across the whole jump");

  synth::ClipSpec spec;
  spec.seed = 2025;
  spec.frame_count = 45;
  const synth::Clip clip = synth::generate_clip(spec);
  core::FramePipeline pipeline;
  pipeline.set_background(clip.background);

  // Per-stage key-point fidelity.
  double err_sum[pose::kStageCount] = {};
  int err_n[pose::kStageCount] = {};
  for (int i = 0; i < clip.frame_count(); ++i) {
    const core::FrameObservation obs = pipeline.process(clip.frames[static_cast<std::size_t>(i)]);
    const synth::FrameTruth& truth = clip.truth[static_cast<std::size_t>(i)];
    const PointF parts[4] = {truth.parts.head, truth.parts.hand, truth.parts.knee,
                             truth.parts.foot};
    double frame_err = 0.0;
    for (const PointF& p : parts) {
      double best = 1e9;
      for (const auto& kp : obs.key_points) best = std::min(best, distance(to_f(kp.pos), p));
      frame_err += best;
    }
    const int s = pose::index_of(truth.stage);
    err_sum[s] += frame_err / 4.0;
    ++err_n[s];
  }

  bench::print_rule();
  std::printf("%-16s %-10s %-26s\n", "stage", "frames", "mean keypoint->part dist (px)");
  bench::print_rule();
  for (int s = 0; s < pose::kStageCount; ++s) {
    std::printf("%-16s %-10d %-26.2f\n",
                std::string(pose::stage_name(pose::stage_from_index(s))).c_str(), err_n[s],
                err_n[s] > 0 ? err_sum[s] / err_n[s] : 0.0);
  }
  bench::print_rule();
  std::printf("paper (qualitative): skeletons \"represent their respective poses pretty "
              "well\" — distances should stay within a few pixels of the limb radius\n\n");

  // Contact sheet like Fig. 8.
  for (const int i : {2, 12, 19, 24, 30, 40}) {
    const core::FrameObservation obs = pipeline.process(clip.frames[static_cast<std::size_t>(i)]);
    const BinaryImage skel_img =
        obs.graph.rasterize(obs.silhouette.width(), obs.silhouette.height());
    std::printf("frame %d  [%s]  %s\n", i,
                std::string(pose::stage_name(clip.truth[static_cast<std::size_t>(i)].stage)).c_str(),
                std::string(pose::pose_name(clip.truth[static_cast<std::size_t>(i)].pose)).c_str());
    std::printf("%s\n", ascii_render_overlay(obs.silhouette, skel_img, 64).c_str());
    if (i == 19) {
      write_pgm(binary_to_gray(obs.silhouette), "fig5_silhouette.pgm");
      write_pgm(binary_to_gray(skel_img), "fig5_skeleton.pgm");
    }
  }
  std::printf("wrote fig5_silhouette.pgm, fig5_skeleton.pgm\n");
  return 0;
}
