// F3 — Figure 3: loops in the skeleton graph are cut with a *maximum*
// spanning tree. Reproduced as: loop counts before/after the cut over a
// clip, and the max-vs-min spanning policy comparison that motivates the
// paper's choice (maximum keeps the long limb segments connected; minimum
// keeps the short stubs left over from junction-cluster removal).
#include "bench_common.hpp"
#include "skelgraph/loop_cut.hpp"
#include "skelgraph/skeleton_graph.hpp"
#include "thinning/zhang_suen.hpp"

namespace {

// The Fig. 3 situation in isolation: after adjacent-junction removal, two
// junction stubs are connected by BOTH the real limb path (long) and a
// leftover shortcut (short). The spanning policy decides which survives.
void crafted_demo() {
  using namespace slj;
  skel::SkeletonGraph graph;
  skel::Node a, b;
  a.pos = {0, 0};
  b.pos = {20, 0};
  a.type = b.type = skel::NodeType::kJunction;
  const int ia = graph.add_node(a);
  const int ib = graph.add_node(b);
  skel::Edge shortcut;
  shortcut.a = ia;
  shortcut.b = ib;
  for (int x = 0; x <= 20; ++x) shortcut.path.push_back({x, 0});
  graph.add_edge(shortcut);
  skel::Edge limb;
  limb.a = ia;
  limb.b = ib;
  limb.path.push_back({0, 0});
  for (int x = 0; x <= 20; ++x) limb.path.push_back({x, 12});
  limb.path.push_back({20, 0});
  graph.add_edge(limb);

  skel::SkeletonGraph g_max = graph, g_min = graph;
  const auto s_max = skel::cut_loops(g_max, skel::SpanningPolicy::kMaximum);
  const auto s_min = skel::cut_loops(g_min, skel::SpanningPolicy::kMinimum);
  std::printf("crafted Fig. 3 loop (limb path vs 20 px shortcut):\n");
  std::printf("  maximum policy keeps %.1f px (the limb)  | minimum keeps %.1f px (the stub)\n",
              s_max.kept_length, s_min.kept_length);
}

}  // namespace

int main() {
  using namespace slj;
  bench::print_header("F3  loop cutting via maximum spanning tree",
                      "Fig. 3: (a) a loop (b) loop cut");
  crafted_demo();

  synth::ClipSpec spec;
  spec.seed = 2025;
  spec.frame_count = 45;
  const synth::Clip clip = synth::generate_clip(spec);
  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);

  std::size_t loops_before_total = 0, loops_after_total = 0;
  double kept_max_total = 0.0, kept_min_total = 0.0, skel_total = 0.0;
  int loop_frames = 0;

  bench::print_rule();
  std::printf("%-7s %-14s %-12s %-16s %-16s\n", "frame", "loops before", "loops after",
              "kept len (max)", "kept len (min)");
  bench::print_rule();
  for (int i = 0; i < clip.frame_count(); ++i) {
    const BinaryImage sil = extractor.silhouette(clip.frames[static_cast<std::size_t>(i)]);
    const BinaryImage skeleton = thin::zhang_suen_thin(sil);

    skel::SkeletonGraph g_max = skel::build_skeleton_graph(skeleton);
    const double skel_len = g_max.total_length();
    skel::SkeletonGraph g_min = g_max;
    const skel::LoopCutStats s_max = skel::cut_loops(g_max, skel::SpanningPolicy::kMaximum);
    const skel::LoopCutStats s_min = skel::cut_loops(g_min, skel::SpanningPolicy::kMinimum);

    loops_before_total += s_max.loops_before;
    loops_after_total += s_max.loops_after;
    kept_max_total += s_max.kept_length;
    kept_min_total += s_min.kept_length;
    skel_total += skel_len;
    if (s_max.loops_before > 0) {
      ++loop_frames;
      if (loop_frames <= 8) {
        std::printf("%-7d %-14zu %-12zu %-16.1f %-16.1f\n", i, s_max.loops_before,
                    s_max.loops_after, s_max.kept_length, s_min.kept_length);
      }
    }
  }
  bench::print_rule();
  std::printf("loops over the clip: %zu before cut -> %zu after cut\n", loops_before_total,
              loops_after_total);
  std::printf("skeleton length retained: maximum policy %.1f%%, minimum policy %.1f%%\n",
              100.0 * kept_max_total / skel_total, 100.0 * kept_min_total / skel_total);
  std::printf("paper: maximum length is chosen \"to make sure the new junction vertex can "
              "connect to all of its neighbors\" — the maximum tree must retain more of the "
              "skeleton\n");
  return 0;
}
