// F6 — Figure 6: feature encoding of the key points on the eight areas of
// the plane around the waist. Reproduced as: the area codes of each body
// part for representative frames, plus the discriminability statistics the
// encoding achieves (how many distinct feature vectors the 22 poses map to)
// at 8 and 16 partitions.
#include <map>
#include <set>

#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("F6  waist-centred area encoding",
                      "Fig. 6: key points coded on the eight areas of the plane");

  const synth::Dataset dataset = bench::paper_corpus();

  // Example encodings for one clip (like the two examples in Fig. 6).
  core::FramePipeline pipeline;
  const synth::Clip& clip = dataset.test.front();
  pipeline.set_background(clip.background);
  bench::print_rule();
  std::printf("%-7s %-30.30s %-s\n", "frame", "pose", "feature vector");
  bench::print_rule();
  for (const int i : {3, 13, 20, 26, 38}) {
    const core::FrameObservation obs = pipeline.process(clip.frames[static_cast<std::size_t>(i)]);
    if (obs.candidates.empty()) continue;
    std::printf("%-7d %-30.30s %s\n", i,
                std::string(pose::pose_name(clip.truth[static_cast<std::size_t>(i)].pose)).c_str(),
                pose::to_string(obs.candidates.front().features, pipeline.encoder()).c_str());
  }
  bench::print_rule();

  // Encoding discriminability: distinct feature vectors per pose label over
  // the training corpus, for 8 vs 16 areas.
  for (const int areas : {8, 16}) {
    core::PipelineParams params;
    params.num_areas = areas;
    core::FramePipeline pl(params);
    std::map<int, std::set<std::array<int, pose::kPartCount>>> per_pose;
    std::set<std::array<int, pose::kPartCount>> all;
    std::size_t frames = 0;
    for (const synth::Clip& c : dataset.train) {
      pl.set_background(c.background);
      for (std::size_t i = 0; i < c.frames.size(); ++i) {
        const core::FrameObservation obs = pl.process(c.frames[i]);
        pose::PartPoints gt{c.truth[i].parts.head, c.truth[i].parts.chest, c.truth[i].parts.hand,
                            c.truth[i].parts.knee, c.truth[i].parts.foot};
        const auto feat = pose::features_from_truth(obs.graph, pl.encoder(), gt);
        if (!feat) continue;
        per_pose[pose::index_of(c.truth[i].pose)].insert(feat->features.areas);
        all.insert(feat->features.areas);
        ++frames;
      }
    }
    // Collisions: feature vectors claimed by more than one pose.
    std::map<std::array<int, pose::kPartCount>, int> owners;
    for (const auto& [p, feats] : per_pose) {
      for (const auto& f : feats) ++owners[f];
    }
    std::size_t shared = 0;
    for (const auto& [f, n] : owners) shared += n > 1 ? 1 : 0;
    std::printf("%d areas: %zu distinct feature vectors over %zu frames; %zu/%zu vectors "
                "claimed by more than one pose\n",
                areas, all.size(), frames, shared, all.size());
  }
  std::printf("paper: \"more partitions instead of just eight ... more information would "
              "further improve the classification results\" — 16 areas must show fewer "
              "cross-pose collisions\n");
  return 0;
}
