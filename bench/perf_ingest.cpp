// P5 — async ingest plane: sustained multi-camera ingest through the
// IngestService (bounded per-session queues + scheduler thread) at
// increasing session counts. Producer threads push frames at a fixed
// offered rate — camera-style, not lockstep — and the plane's own telemetry
// reports what a coach-side operator cares about: delivered throughput,
// drop rate under the drop-oldest policy, and end-to-end enqueue->sink
// latency (p50/p99). The run also cross-checks the drop accounting: after
// a flush, every admitted frame must be either delivered or an accounted
// drop. With --json FILE, the rows are written as a JSON document
// (consumed by scripts/bench.sh to assemble BENCH_pr5.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ingest/ingest_service.hpp"

namespace {

using WallClock = std::chrono::steady_clock;

struct IngestRow {
  std::size_t sessions = 0;
  double offered_fps = 0.0;    // per session
  double delivered_fps = 0.0;  // whole plane
  double drop_pct = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  bool accounting_exact = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace slj;
  const char* json_path = nullptr;
  double seconds = 2.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--seconds") == 0) seconds = std::atof(argv[i + 1]);
  }
  bench::print_header("P5  async ingest: sustained multi-camera feeds through IngestService",
                      "production scale: many cameras pushing at sensor rate");

  const synth::Dataset dataset = bench::paper_corpus();
  const std::vector<synth::Clip>& clips = dataset.test;
  const pose::PoseDbnClassifier classifier;  // untrained: same per-frame cost
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double offered_fps = 60.0;  // a common camera rate, per session
  std::printf("corpus: %zu clips; hardware concurrency: %u; offered rate %.0f fps/session; "
              "%.1f s per row\n\n",
              clips.size(), hw, offered_fps, seconds);

  std::vector<IngestRow> rows;
  for (const std::size_t sessions : {std::size_t{1}, std::size_t{8}, std::size_t{16}}) {
    ingest::IngestServiceConfig config;
    config.manager.workers = hw;
    ingest::IngestService service(classifier, {}, config);

    ingest::IngestSessionConfig session_config;
    session_config.queue.capacity = 4;
    session_config.queue.policy = ingest::BackpressurePolicy::kDropOldest;
    std::vector<int> ids;
    for (std::size_t s = 0; s < sessions; ++s) {
      ids.push_back(service.open_session(clips[s % clips.size()].background, session_config));
    }
    service.start();

    const auto deadline = WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                                                 std::chrono::duration<double>(seconds));
    const auto period = std::chrono::duration_cast<WallClock::duration>(
        std::chrono::duration<double>(1.0 / offered_fps));
    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < sessions; ++s) {
      producers.emplace_back([&, s] {
        const synth::Clip& clip = clips[s % clips.size()];
        std::size_t frame = s;  // stagger the feeds
        // Absolute-time pacing: a slow push does not slip the schedule, so
        // the offered rate stays honest even when the plane is saturated.
        auto next = WallClock::now();
        while (next < deadline) {
          service.push(ids[s], clip.frames[frame % clip.frames.size()]);
          ++frame;
          next += period;
          std::this_thread::sleep_until(next);
        }
      });
    }
    const auto start = WallClock::now();
    for (std::thread& t : producers) t.join();
    service.flush();
    const double elapsed = std::chrono::duration<double>(WallClock::now() - start).count();

    const ingest::IngestMetricsSnapshot snap = service.metrics();
    IngestRow row;
    row.sessions = sessions;
    row.offered_fps = offered_fps;
    row.delivered_fps = static_cast<double>(snap.delivered) / elapsed;
    row.drop_pct = snap.pushed > 0
                       ? 100.0 * static_cast<double>(snap.dropped_oldest) /
                             static_cast<double>(snap.pushed)
                       : 0.0;
    row.p50_ms = snap.latency_p50_ms;
    row.p99_ms = snap.latency_p99_ms;
    row.max_ms = snap.latency_max_ms;
    // After the flush the queues are empty, so the books must balance to
    // the frame: admitted == delivered + shed-by-drop-oldest + discarded.
    row.accounting_exact =
        snap.pushed == snap.delivered + snap.dropped_oldest + snap.discarded;
    rows.push_back(row);
    std::printf("ingest, %2zu sessions @ %.0f fps   delivered %7.1f frames/s   drop %5.1f%%   "
                "latency p50 %6.2f ms  p99 %6.2f ms   accounting %s\n",
                sessions, offered_fps, row.delivered_fps, row.drop_pct, row.p50_ms, row.p99_ms,
                row.accounting_exact ? "exact" : "MISMATCH");

    for (const int id : ids) service.close_session(id);
    service.stop();
  }
  bench::print_rule();

  bool all_exact = true;
  for (const IngestRow& row : rows) all_exact = all_exact && row.accounting_exact;
  std::printf("drop accounting %s across all rows\n", all_exact ? "exact" : "MISMATCH");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n  \"seconds_per_row\": %.1f,\n", hw,
                 seconds);
    std::fprintf(f, "  \"ingest\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const IngestRow& row = rows[i];
      std::fprintf(f,
                   "    {\"sessions\": %zu, \"offered_fps_per_session\": %.1f, "
                   "\"delivered_frames_per_s\": %.1f, \"drop_pct\": %.2f, "
                   "\"latency_p50_ms\": %.3f, \"latency_p99_ms\": %.3f, "
                   "\"latency_max_ms\": %.3f, \"accounting_exact\": %s}%s\n",
                   row.sessions, row.offered_fps, row.delivered_fps, row.drop_pct, row.p50_ms,
                   row.p99_ms, row.max_ms, row.accounting_exact ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return all_exact ? 0 : 1;
}
