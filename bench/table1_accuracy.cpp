// T1 — the paper's headline result (Sec. 5, reported in text):
//   "Twelve video clips are used as the training set and three others are
//    used as the test set ... 522 frames in the training set and 135 frames
//    in the test set ... The overall accuracy is from 81% to 87% for the
//    three test video clips."
// This bench regenerates that table on the synthetic corpus: per-clip pose
// accuracy of the full pipeline + DBN.
#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("T1  per-clip pose estimation accuracy",
                      "Sec. 5 text table: 81%..87% per test clip, 522/135 train/test frames");

  const synth::Dataset dataset = bench::paper_corpus();
  std::printf("training frames: %zu (paper: 522)\n", dataset.train_frames());
  std::printf("test frames:     %zu (paper: 135)\n", dataset.test_frames());

  bench::TrainedSystem sys = bench::train_system(dataset);
  std::printf("frames without usable skeleton during training: %zu\n\n",
              sys.stats.frames_without_skeleton);

  const core::DatasetEvaluation eval =
      core::evaluate_dataset(sys.classifier, sys.pipeline, dataset.test);

  bench::print_rule();
  std::printf("%-12s %-10s %-10s %-10s %-12s %-12s\n", "test clip", "frames", "correct",
              "unknown", "pose acc", "stage acc");
  bench::print_rule();
  for (std::size_t i = 0; i < eval.clips.size(); ++i) {
    const core::ClipEvaluation& c = eval.clips[i];
    std::printf("%-12zu %-10zu %-10zu %-10zu %-12.1f %-12.1f\n", i + 1, c.frames, c.correct,
                c.unknown, 100.0 * c.accuracy(), 100.0 * c.stage_accuracy());
  }
  bench::print_rule();
  std::printf("overall pose accuracy: %.1f%%  (clip range %.1f%%..%.1f%%)\n",
              100.0 * eval.overall_accuracy(), 100.0 * eval.min_clip_accuracy(),
              100.0 * eval.max_clip_accuracy());
  std::printf("paper:                 81%%..87%% per clip\n");
  return 0;
}
