// A9 (extension) — leave-one-clip-out cross-validation. The paper evaluates
// on a single fixed 12/3 split; with 15 clips total, leave-one-out gives a
// variance estimate the single split cannot.
#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("A9  leave-one-clip-out cross-validation (extension)",
                      "Sec. 5: single 12/3 split -> per-clip variance unknown");

  // Pool all 15 clips (12 + 3) from the reference corpus.
  const synth::Dataset base = bench::paper_corpus();
  std::vector<synth::Clip> clips = base.train;
  clips.insert(clips.end(), base.test.begin(), base.test.end());

  bench::print_rule();
  std::printf("%-12s %-10s %-10s\n", "held out", "frames", "accuracy");
  bench::print_rule();
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t held = 0; held < clips.size(); ++held) {
    synth::Dataset fold;
    for (std::size_t i = 0; i < clips.size(); ++i) {
      (i == held ? fold.test : fold.train).push_back(clips[i]);
    }
    core::FramePipeline pipeline;
    pose::PoseDbnClassifier classifier;
    core::train_on_dataset(classifier, pipeline, fold);
    const auto eval = core::evaluate_dataset(classifier, pipeline, fold.test);
    const double acc = eval.overall_accuracy();
    sum += acc;
    sum_sq += acc * acc;
    std::printf("%-12zu %-10zu %-10.1f\n", held + 1, eval.total_frames(), 100.0 * acc);
    std::fflush(stdout);
  }
  bench::print_rule();
  const double n = static_cast<double>(clips.size());
  const double mean = sum / n;
  const double stddev = std::sqrt(std::max(0.0, sum_sq / n - mean * mean));
  std::printf("mean accuracy %.1f%%  (std dev %.1f points over %d folds)\n", 100.0 * mean,
              100.0 * stddev, static_cast<int>(n));
  std::printf("paper's band (81%%..87%%) spans ~6 points — consistent with this spread\n");
  return 0;
}
