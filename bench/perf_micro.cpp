// P2 — component micro-benchmarks (google-benchmark): per-stage cost of the
// pipeline the paper runs per frame, plus DBN inference and end-to-end
// frame throughput.
#include <benchmark/benchmark.h>

#include "core/analyzer.hpp"
#include "core/trainer.hpp"
#include "imaging/filters.hpp"
#include "skelgraph/artifacts.hpp"
#include "skelgraph/simplify.hpp"
#include "synth/dataset.hpp"
#include "thinning/zhang_suen.hpp"

namespace {

using namespace slj;

const synth::Clip& bench_clip() {
  static const synth::Clip clip = [] {
    synth::ClipSpec spec;
    spec.seed = 99;
    spec.frame_count = 45;
    return synth::generate_clip(spec);
  }();
  return clip;
}

const RgbImage& mid_frame() { return bench_clip().frames[22]; }

const BinaryImage& mid_silhouette() {
  static const BinaryImage sil = [] {
    seg::ObjectExtractor extractor;
    extractor.set_background(bench_clip().background);
    return extractor.silhouette(mid_frame());
  }();
  return sil;
}

void BM_ObjectExtraction(benchmark::State& state) {
  seg::ObjectExtractor extractor;
  extractor.set_background(bench_clip().background);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.silhouette(mid_frame()));
  }
}
BENCHMARK(BM_ObjectExtraction);

void BM_MedianFilterBinary(benchmark::State& state) {
  const BinaryImage& sil = mid_silhouette();
  for (auto _ : state) {
    benchmark::DoNotOptimize(median_filter_binary(sil, 5));
  }
}
BENCHMARK(BM_MedianFilterBinary);

void BM_ZhangSuenThinning(benchmark::State& state) {
  const BinaryImage& sil = mid_silhouette();
  for (auto _ : state) {
    benchmark::DoNotOptimize(thin::zhang_suen_thin(sil));
  }
}
BENCHMARK(BM_ZhangSuenThinning);

void BM_SkeletonGraphCleanup(benchmark::State& state) {
  const BinaryImage skeleton = thin::zhang_suen_thin(mid_silhouette());
  for (auto _ : state) {
    skel::SkeletonGraph g = skel::clean_skeleton(skeleton);
    skel::split_edges_at_bends(g);
    benchmark::DoNotOptimize(g.alive_edge_count());
  }
}
BENCHMARK(BM_SkeletonGraphCleanup);

void BM_FeatureCandidates(benchmark::State& state) {
  const BinaryImage skeleton = thin::zhang_suen_thin(mid_silhouette());
  skel::SkeletonGraph g = skel::clean_skeleton(skeleton);
  skel::split_edges_at_bends(g);
  const pose::AreaEncoder enc(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pose::enumerate_candidates(g, enc));
  }
}
BENCHMARK(BM_FeatureCandidates);

pose::PoseDbnClassifier& trained_classifier() {
  static pose::PoseDbnClassifier clf = [] {
    synth::DatasetSpec spec;
    spec.train_clip_frames = {44, 43, 44, 43};
    spec.test_clip_frames = {};
    const synth::Dataset ds = synth::generate_dataset(spec);
    core::FramePipeline pipeline;
    pose::PoseDbnClassifier c;
    core::train_on_dataset(c, pipeline, ds);
    return c;
  }();
  return clf;
}

void BM_DbnFrameInference(benchmark::State& state) {
  pose::PoseDbnClassifier& clf = trained_classifier();
  core::FramePipeline pipeline;
  const core::FrameObservation obs = pipeline.process_silhouette(mid_silhouette());
  for (auto _ : state) {
    auto st = clf.initial_state();
    benchmark::DoNotOptimize(clf.classify(obs.candidates, false, st));
  }
}
BENCHMARK(BM_DbnFrameInference);

void BM_EndToEndFrame(benchmark::State& state) {
  pose::PoseDbnClassifier& clf = trained_classifier();
  core::FramePipeline pipeline;
  pipeline.set_background(bench_clip().background);
  for (auto _ : state) {
    const core::FrameObservation obs = pipeline.process(mid_frame());
    auto st = clf.initial_state();
    benchmark::DoNotOptimize(clf.classify(obs.candidates, false, st));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndFrame);

void BM_ExactBnInference(benchmark::State& state) {
  // Enumeration over the exported Fig.-7(a) network with one observed part.
  const bayes::Network net =
      trained_classifier().build_pose_network(pose::PoseId::kStandHandsForward);
  bayes::Assignment evidence(static_cast<std::size_t>(net.node_count()), bayes::kUnobserved);
  evidence[static_cast<std::size_t>(*net.find("Hand"))] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.posterior(0, evidence));
  }
}
BENCHMARK(BM_ExactBnInference);

}  // namespace

BENCHMARK_MAIN();
