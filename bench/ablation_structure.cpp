// A8 (extension) — qualitative training: the paper names structure learning
// ("qualitative training concerns the network structure of the model") but
// fixes its network by hand. This bench compares the paper's hand-fixed
// naive part structure against a learned Tree-Augmented Naive Bayes
// structure (Chow–Liu over class-conditional mutual information).
#include "bench_common.hpp"
#include "pose/features.hpp"

int main() {
  using namespace slj;
  bench::print_header("A8  observation structure: naive vs learned TAN (extension)",
                      "Sec. 4: qualitative vs quantitative training");

  const synth::Dataset dataset = bench::paper_corpus();

  // Naive (paper).
  core::FramePipeline p1;
  pose::PoseDbnClassifier naive;
  core::train_on_dataset(naive, p1, dataset);
  const auto naive_eval = core::evaluate_dataset(naive, p1, dataset.test);

  // TAN (learned structure).
  core::FramePipeline p2;
  pose::PoseDbnClassifier tan;
  core::TrainerOptions options;
  options.learn_tan_structure = true;
  core::train_on_dataset(tan, p2, dataset, options);
  const auto tan_eval = core::evaluate_dataset(tan, p2, dataset.test);

  bench::print_rule();
  std::printf("%-28s %-10s %-22s\n", "structure", "overall", "per clip");
  bench::print_rule();
  std::printf("%-28s %-10.1f %4.0f%% / %4.0f%% / %4.0f%%\n", "naive parts (paper)",
              100.0 * naive_eval.overall_accuracy(), 100.0 * naive_eval.clips[0].accuracy(),
              100.0 * naive_eval.clips[1].accuracy(), 100.0 * naive_eval.clips[2].accuracy());
  std::printf("%-28s %-10.1f %4.0f%% / %4.0f%% / %4.0f%%\n", "learned TAN",
              100.0 * tan_eval.overall_accuracy(), 100.0 * tan_eval.clips[0].accuracy(),
              100.0 * tan_eval.clips[1].accuracy(), 100.0 * tan_eval.clips[2].accuracy());
  bench::print_rule();
  std::printf("learned tree (part <- parent): ");
  for (int i = 0; i < pose::kPartCount; ++i) {
    const int p = tan.tan_structure()[static_cast<std::size_t>(i)];
    std::printf("%s<-%s  ",
                std::string(pose::part_name(static_cast<pose::Part>(i))).c_str(),
                p < 0 ? "pose" : std::string(pose::part_name(static_cast<pose::Part>(p))).c_str());
  }
  std::printf("\nexpected shape: TAN captures part correlations the naive model ignores; on "
              "522 frames the extra CPT rows may cost as much as they gain\n");
  return 0;
}
