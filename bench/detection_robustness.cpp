// D1 (extension) — human detection under distractors. The paper's component
// (1) is "human detection"; its extraction step simply keeps the biggest
// blob, which breaks the moment anything person-sized shares the studio
// (a second child waiting for their turn). This bench composites a static
// distractor blob into every frame and compares pose accuracy with the
// largest-component rule vs the blob tracker.
#include "bench_common.hpp"
#include "detection/blob_tracker.hpp"
#include "imaging/draw.hpp"

namespace {

using namespace slj;

/// Paints a person-sized static distractor into the frame's right edge.
RgbImage with_distractor(RgbImage frame) {
  BinaryImage mask(frame.width(), frame.height(), 0);
  const double cx = frame.width() - 26;
  const double ground = 150.0;
  fill_capsule(mask, {cx, ground - 78}, {cx, ground - 30}, 9.0);   // torso+head blob
  fill_capsule(mask, {cx - 3, ground - 30}, {cx - 3, ground}, 5.0);  // legs
  fill_capsule(mask, {cx + 3, ground - 30}, {cx + 3, ground}, 5.0);
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      if (mask.at(x, y)) frame.at(x, y) = {150, 160, 140};
    }
  }
  return frame;
}

}  // namespace

int main() {
  bench::print_header("D1  human detection under a distractor (extension)",
                      "Sec. 1 component (1): human detection; extractor ref [5] is a tracker");

  const synth::Dataset dataset = bench::paper_corpus();
  bench::TrainedSystem sys = bench::train_system(dataset);  // trained on clean clips

  std::size_t frames = 0;
  std::size_t correct_largest = 0, correct_tracked = 0;
  for (const synth::Clip& clip : dataset.test) {
    sys.pipeline.set_background(clip.background);
    detect::TrackerConfig tracker_config;
    tracker_config.start_x_hint = 55.0;  // the take-off line of the station
    detect::BlobTracker tracker(tracker_config);
    core::GroundMonitor ground_largest, ground_tracked;
    auto state_largest = sys.classifier.initial_state();
    auto state_tracked = sys.classifier.initial_state();
    for (std::size_t i = 0; i < clip.frames.size(); ++i) {
      const RgbImage frame = with_distractor(clip.frames[i]);
      ++frames;

      const core::FrameObservation obs_largest = sys.pipeline.process(frame);
      const auto r1 = sys.classifier.classify(
          obs_largest.candidates, ground_largest.airborne(obs_largest.bottom_row),
          state_largest);
      correct_largest += r1.pose == clip.truth[i].pose ? 1 : 0;

      const core::FrameObservation obs_tracked = sys.pipeline.process(frame, tracker);
      const auto r2 = sys.classifier.classify(
          obs_tracked.candidates, ground_tracked.airborne(obs_tracked.bottom_row),
          state_tracked);
      correct_tracked += r2.pose == clip.truth[i].pose ? 1 : 0;
    }
  }

  bench::print_rule();
  std::printf("%-36s %-12s\n", "jumper selection", "pose accuracy");
  bench::print_rule();
  std::printf("%-36s %-12.1f\n", "largest component (paper Sec. 2)",
              100.0 * static_cast<double>(correct_largest) / frames);
  std::printf("%-36s %-12.1f\n", "blob tracker (component (1))",
              100.0 * static_cast<double>(correct_tracked) / frames);
  std::printf("%-36s %-12.1f\n", "clean-studio reference", 76.3);
  bench::print_rule();
  std::printf("expected shape: the tracker holds near the clean-studio accuracy; the\n");
  std::printf("largest-component rule collapses whenever the distractor out-sizes the "
              "jumper (crouch / flight frames)\n");
  return 0;
}
