// P4 — StreamEngine latency: per-frame latency (p50/p99) of live
// frame-at-a-time analysis at increasing concurrent session counts —
// simulated camera feeds multiplexed over one worker pool — against the
// ClipEngine batch path's throughput on the same workload. The live path
// is the one a courtside coach cares about: how long after a frame arrives
// is its pose decision (and any newly resolved advice) available?
// With --json FILE, the measurements are also written as a JSON document
// (consumed by scripts/bench.sh to assemble BENCH_pr4.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/stream_engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double idx = q * static_cast<double>(samples.size() - 1);
  return samples[static_cast<std::size_t>(idx + 0.5)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slj;
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bench::print_header("P4  StreamEngine per-frame latency vs ClipEngine batch",
                      "live coaching: advice while the jumper is still in the air");

  const synth::Dataset dataset = bench::paper_corpus();
  const std::vector<synth::Clip>& clips = dataset.test;
  const pose::PoseDbnClassifier classifier;  // untrained: same per-frame cost
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::size_t clip_frames = 0;
  for (const auto& clip : clips) clip_frames = std::max(clip_frames, clip.frames.size());
  std::printf("corpus: %zu clips (longest %zu frames); hardware concurrency: %u\n\n",
              clips.size(), clip_frames, hw);

  // Live path: every session replays one of the test clips (cycled); each
  // tick advances all sessions by one frame in parallel, and the tick's
  // wall time is the latency a frame experiences before its decision (and
  // any resolved advice) is out.
  struct StreamRow {
    std::size_t sessions = 0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double frames_per_s = 0.0;
  };
  std::vector<StreamRow> rows;
  double stream_frames_per_s = 0.0;
  for (const std::size_t sessions : {std::size_t{1}, std::size_t{8}, std::size_t{16}}) {
    core::StreamManagerConfig config;
    config.workers = hw;
    core::StreamManager manager(classifier, {}, config);
    std::vector<int> ids;
    for (std::size_t s = 0; s < sessions; ++s) {
      ids.push_back(manager.open_session(clips[s % clips.size()].background));
    }
    std::vector<double> tick_ms;
    std::size_t frames = 0;
    const auto start = Clock::now();
    for (std::size_t t = 0; t < clip_frames; ++t) {
      std::vector<core::StreamManager::Feed> feeds;
      for (std::size_t s = 0; s < sessions; ++s) {
        const synth::Clip& clip = clips[s % clips.size()];
        if (t < clip.frames.size()) feeds.push_back({ids[s], &clip.frames[t]});
      }
      if (feeds.empty()) break;
      const auto tick_start = Clock::now();
      manager.tick(feeds);
      tick_ms.push_back(ms_since(tick_start));
      frames += feeds.size();
    }
    const double total_ms = ms_since(start);
    for (const int id : ids) manager.close_session(id);
    stream_frames_per_s = 1000.0 * static_cast<double>(frames) / total_ms;
    rows.push_back({sessions, percentile(tick_ms, 0.50), percentile(tick_ms, 0.99),
                    stream_frames_per_s});
    std::printf(
        "stream, %2zu sessions   per-frame latency p50 %7.2f ms   p99 %7.2f ms   %7.1f frames/s\n",
        sessions, rows.back().p50_ms, rows.back().p99_ms, stream_frames_per_s);
  }
  bench::print_rule();

  // Batch path on the same workload (16 feeds' worth of clips), for the
  // throughput the live path gives up in exchange for latency.
  {
    std::vector<synth::Clip> batch_clips;
    std::size_t frames = 0;
    for (std::size_t s = 0; s < 16; ++s) {
      batch_clips.push_back(clips[s % clips.size()]);
      frames += batch_clips.back().frames.size();
    }
    core::ClipEngineConfig config;
    config.workers = hw;
    core::ClipEngine engine({}, config);
    const auto start = Clock::now();
    const std::vector<core::ClipObservation> results = engine.process(batch_clips);
    const double ms = ms_since(start);
    (void)results;
    const double batch_frames_per_s = 1000.0 * static_cast<double>(frames) / ms;
    std::printf("ClipEngine batch, 16 clips     %8.1f ms   %7.1f frames/s   (stream at %.0f%%)\n",
                ms, batch_frames_per_s, 100.0 * stream_frames_per_s / batch_frames_per_s);

    if (json_path != nullptr) {
      std::FILE* f = std::fopen(json_path, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
      }
      std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n  \"stream\": [\n", hw);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(f,
                     "    {\"sessions\": %zu, \"latency_p50_ms\": %.3f, \"latency_p99_ms\": %.3f, "
                     "\"frames_per_s\": %.1f}%s\n",
                     rows[i].sessions, rows[i].p50_ms, rows[i].p99_ms, rows[i].frames_per_s,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f, "  \"batch_16_clips\": {\"ms\": %.3f, \"frames_per_s\": %.1f}\n", ms,
                   batch_frames_per_s);
      std::fprintf(f, "}\n");
      std::fclose(f);
    }
  }
  return 0;
}
