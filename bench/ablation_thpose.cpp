// A2 — Th_Pose: the per-pose acceptance threshold exists because "different
// poses in the training samples do not appear equally" — without it the
// dominant "standing & hands swung forward" pose would dominate the
// decision making. Reproduced as a Th_Pose sweep: overall accuracy, Unknown
// rate, and recall of the dominant vs the rare poses.
#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("A2  Th_Pose sweep",
                      "Sec. 4.2: threshold so rare poses are not drowned by the dominant one");

  const synth::Dataset dataset = bench::paper_corpus();

  bench::print_rule();
  std::printf("%-10s %-10s %-10s %-18s %-18s\n", "Th_Pose", "overall", "unknown",
              "dominant recall", "rare-pose recall");
  bench::print_rule();
  for (const double th : {0.0, 0.10, 0.25, 0.40, 0.60, 0.80}) {
    pose::ClassifierConfig cfg;
    cfg.th_pose = th;
    bench::TrainedSystem sys = bench::train_system(dataset, cfg);
    const core::DatasetEvaluation eval =
        core::evaluate_dataset(sys.classifier, sys.pipeline, dataset.test);

    const core::ConfusionMatrix cm = core::confusion_matrix(eval);
    const int dom = pose::index_of(cfg.dominant_pose);
    std::size_t dom_total = 0, dom_hit = 0, rare_total = 0, rare_hit = 0, unknown = 0;
    for (int t = 0; t < pose::kPoseCount; ++t) {
      std::size_t row_total = 0;
      for (int p = 0; p <= pose::kPoseCount; ++p) {
        row_total += cm[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
      }
      unknown += cm[static_cast<std::size_t>(t)][pose::kPoseCount];
      const std::size_t hit = cm[static_cast<std::size_t>(t)][static_cast<std::size_t>(t)];
      if (t == dom) {
        dom_total += row_total;
        dom_hit += hit;
      } else {
        rare_total += row_total;
        rare_hit += hit;
      }
    }
    std::printf("%-10.2f %-10.1f %-10zu %-18.1f %-18.1f\n", th,
                100.0 * eval.overall_accuracy(), unknown,
                dom_total > 0 ? 100.0 * dom_hit / dom_total : 0.0,
                rare_total > 0 ? 100.0 * rare_hit / rare_total : 0.0);
  }
  bench::print_rule();
  std::printf("expected shape: very low Th_Pose lets the dominant pose eat rare-pose frames; "
              "very high Th_Pose pushes frames to Unknown. A mid value balances both.\n");
  return 0;
}
