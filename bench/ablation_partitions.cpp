// A3 — partition count: the paper's future work — "more partitions instead
// of just eight as shown in Figure 6 can be used for feature encoding. More
// information would further improve the classification results."
#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("A3  area partition sweep",
                      "Sec. 6: more partitions than eight should further improve results");

  const synth::Dataset dataset = bench::paper_corpus();

  bench::print_rule();
  std::printf("%-10s %-10s %-22s\n", "areas", "overall", "per clip");
  bench::print_rule();
  for (const int areas : {4, 8, 12, 16}) {
    pose::ClassifierConfig cfg;
    cfg.num_areas = areas;
    core::PipelineParams params;
    params.num_areas = areas;
    bench::TrainedSystem sys = bench::train_system(dataset, cfg, params);
    const core::DatasetEvaluation eval =
        core::evaluate_dataset(sys.classifier, sys.pipeline, dataset.test);
    std::printf("%-10d %-10.1f %4.0f%% / %4.0f%% / %4.0f%%\n", areas,
                100.0 * eval.overall_accuracy(), 100.0 * eval.clips[0].accuracy(),
                100.0 * eval.clips[1].accuracy(), 100.0 * eval.clips[2].accuracy());
  }
  bench::print_rule();
  std::printf("expected shape: 4 areas lose information; 12-16 should match or beat 8 (the\n");
  std::printf("gain is bounded by training data, as finer partitions thin out the counts)\n");
  return 0;
}
