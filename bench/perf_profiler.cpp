// P6 — profiler overhead guard: frames/sec of the serial FramePipeline
// workspace loop with the hierarchical profiler runtime-disabled vs enabled.
//
// In the default build SLJ_PROFILE_SCOPE compiles to nothing, so both runs
// measure the same code and the reported overhead is measurement noise. In a
// -DSLJ_ENABLE_PROFILER=ON build the enabled run pays two steady_clock reads
// plus three relaxed atomic adds per instrumented stage; the guard asserts
// that this stays under --max-overhead-pct (default 5%).
//
// The always-compiled event tracer gets the same treatment: the hot path
// carries one obs::TraceSpan per frame, which when the tracer is disabled
// (the default posture) costs a single relaxed load. The idle cost is
// microbenchmarked directly and expressed as a percentage of the measured
// per-frame time; --max-tracer-overhead-pct (default 3%) guards it. The
// tracer-enabled end-to-end run is reported alongside for context.
//
// Exits non-zero when a guard trips so CI can fail the build. With
// --json FILE the measurements are also written as a JSON document
// (consumed by scripts/bench.sh to assemble BENCH_pr6.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "core/profiler.hpp"
#include "obs/tracer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// One full pass over the corpus through the allocation-free workspace path
/// (the hot loop the profiler instruments), returning elapsed milliseconds.
double run_pass(const std::vector<slj::synth::Clip>& clips) {
  slj::FrameWorkspace ws;
  slj::core::FrameObservation obs;
  const auto start = Clock::now();
  for (const slj::synth::Clip& clip : clips) {
    slj::core::FramePipeline pipeline;
    pipeline.set_background(clip.background);
    for (const slj::RgbImage& frame : clip.frames) {
      pipeline.process_into(frame, ws, obs);
    }
  }
  return ms_since(start);
}

/// Best-of-N timing: the minimum is the least noise-contaminated estimate
/// of the true cost, which matters when the guard compares two runs whose
/// real difference may be well under scheduler jitter.
double best_of(int reps, const std::vector<slj::synth::Clip>& clips) {
  double best = run_pass(clips);  // warm-up counts as the first sample
  for (int i = 1; i < reps; ++i) best = std::min(best, run_pass(clips));
  return best;
}

/// Nanoseconds one disabled (idle) TraceSpan costs: the relaxed enabled
/// check is the only work, measured over a tight loop the optimizer cannot
/// drop because the atomic load is an observable access.
double idle_span_ns() {
  constexpr int kSpans = 2'000'000;
  const auto start = Clock::now();
  for (int i = 0; i < kSpans; ++i) {
    slj::obs::TraceSpan span("bench.idle");
  }
  const double total_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  return total_ns / kSpans;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slj;
  const char* json_path = nullptr;
  double max_overhead_pct = 5.0;
  double max_tracer_overhead_pct = 3.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--max-overhead-pct") == 0)
      max_overhead_pct = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--max-tracer-overhead-pct") == 0)
      max_tracer_overhead_pct = std::atof(argv[i + 1]);
  }

  bench::print_header("P6  hierarchical profiler overhead",
                      "record/replay PR: instrumentation must not tax the hot path");

  const synth::Dataset dataset = bench::paper_corpus();
  const std::vector<synth::Clip>& clips = dataset.test;
  std::size_t frames = 0;
  for (const auto& clip : clips) frames += clip.frames.size();

  const bool compiled = core::Profiler::compiled_in();
  std::printf("profiler compiled in: %s\n\n", compiled ? "yes (SLJ_ENABLE_PROFILER=ON)" : "no");

  constexpr int kReps = 5;
  core::Profiler::instance().set_enabled(false);
  const double off_ms = best_of(kReps, clips);
  std::printf("profiler disabled   %8.1f ms   %7.1f frames/s\n", off_ms,
              1000.0 * frames / off_ms);

  core::Profiler::instance().reset();
  core::Profiler::instance().set_enabled(true);
  const double on_ms = best_of(kReps, clips);
  std::printf("profiler enabled    %8.1f ms   %7.1f frames/s\n", on_ms,
              1000.0 * frames / on_ms);

  const double overhead_pct = 100.0 * (on_ms - off_ms) / off_ms;
  std::printf("overhead            %+8.2f %%   (guard: < %.1f %% when compiled in)\n",
              overhead_pct, max_overhead_pct);

  // When compiled in, the enabled pass must have produced per-stage rows.
  const core::ProfilerSnapshot snap = core::Profiler::instance().snapshot();
  if (compiled && snap.stages.empty()) {
    std::fprintf(stderr, "error: profiler compiled in but recorded no stages\n");
    return 1;
  }
  std::printf("stages recorded: %zu\n", snap.stages.size());

  core::Profiler::instance().set_enabled(core::Profiler::compiled_in());

  // ---- event tracer: idle guard + enabled run for context ------------------
  obs::Tracer::instance().set_enabled(false);
  const double span_ns = idle_span_ns();
  const double frame_ns = off_ms * 1e6 / static_cast<double>(frames);
  // The serial workspace loop carries one "vision" span per frame.
  const double tracer_idle_pct = 100.0 * span_ns / frame_ns;
  std::printf("\ntracer idle span    %8.2f ns   -> %.4f %% of a %.0f ns frame "
              "(guard: < %.1f %%)\n",
              span_ns, tracer_idle_pct, frame_ns, max_tracer_overhead_pct);

  obs::Tracer::instance().reset();
  obs::Tracer::instance().set_enabled(true);
  const double tracer_on_ms = best_of(kReps, clips);
  obs::Tracer::instance().set_enabled(false);
  const double tracer_on_pct = 100.0 * (tracer_on_ms - off_ms) / off_ms;
  std::printf("tracer enabled      %8.1f ms   %7.1f frames/s   (%+.2f %% vs idle)\n",
              tracer_on_ms, 1000.0 * frames / tracer_on_ms, tracer_on_pct);
  const obs::TracerSnapshot trace_snap = obs::Tracer::instance().snapshot();
  std::printf("tracer events kept: %llu (dropped %llu)\n",
              static_cast<unsigned long long>(trace_snap.total_events),
              static_cast<unsigned long long>(trace_snap.total_dropped));
  obs::Tracer::instance().reset();
  if (trace_snap.total_events + trace_snap.total_dropped == 0) {
    std::fprintf(stderr, "error: tracer enabled but recorded no events\n");
    return 1;
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"compiled_in\": %s,\n", compiled ? "true" : "false");
    std::fprintf(f, "  \"frames\": %zu,\n  \"reps\": %d,\n", frames, kReps);
    std::fprintf(f, "  \"disabled\": {\"ms\": %.3f, \"frames_per_s\": %.1f},\n", off_ms,
                 1000.0 * frames / off_ms);
    std::fprintf(f, "  \"enabled\": {\"ms\": %.3f, \"frames_per_s\": %.1f},\n", on_ms,
                 1000.0 * frames / on_ms);
    std::fprintf(f, "  \"overhead_pct\": %.3f,\n", overhead_pct);
    std::fprintf(f, "  \"max_overhead_pct\": %.1f,\n", max_overhead_pct);
    std::fprintf(f, "  \"tracer\": {\"idle_span_ns\": %.2f, \"idle_overhead_pct\": %.4f, "
                    "\"enabled_ms\": %.3f, \"enabled_overhead_pct\": %.3f, "
                    "\"events\": %llu, \"max_idle_overhead_pct\": %.1f}\n",
                 span_ns, tracer_idle_pct, tracer_on_ms, tracer_on_pct,
                 static_cast<unsigned long long>(trace_snap.total_events +
                                                 trace_snap.total_dropped),
                 max_tracer_overhead_pct);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  // The guard only binds when the instrumentation is actually compiled in;
  // in the default build both runs execute identical code.
  if (compiled && overhead_pct > max_overhead_pct) {
    std::fprintf(stderr, "error: profiler overhead %.2f%% exceeds guard of %.1f%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  // The tracer is compiled in unconditionally, so its idle guard always
  // binds: a disabled span must stay a negligible fraction of frame cost.
  if (tracer_idle_pct > max_tracer_overhead_pct) {
    std::fprintf(stderr, "error: idle tracer overhead %.4f%% exceeds guard of %.1f%%\n",
                 tracer_idle_pct, max_tracer_overhead_pct);
    return 1;
  }
  return 0;
}
