// Shared helpers for the reproduction benches: the paper-sized corpus, a
// trained classifier, and small table-printing utilities.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/evaluation.hpp"
#include "core/simd.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

namespace slj::bench {

/// Build + host provenance for BENCH_*.json: two measurements are only
/// comparable if the commit, compiler, flag set, SIMD backend, and core
/// count behind them are known. The git SHA comes from the environment
/// (scripts/bench.sh exports SLJ_GIT_SHA) so the binary needs no VCS
/// awareness; SLJ_BUILD_FLAGS is baked in by CMake.
inline std::string host_json() {
#ifndef SLJ_BUILD_FLAGS
#define SLJ_BUILD_FLAGS "unknown"
#endif
#ifdef __VERSION__
  const char* compiler = __VERSION__;
#else
  const char* compiler = "unknown";
#endif
  const char* sha = std::getenv("SLJ_GIT_SHA");
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"git_sha\": \"%s\",\n"
                "  \"compiler\": \"%s\",\n"
                "  \"build_flags\": \"%s\",\n"
                "  \"simd\": {\"backend\": \"%s\", \"f64_lanes\": %d, \"u8_lanes\": %d},\n"
                "  \"hardware_concurrency\": %u\n"
                "}",
                sha != nullptr ? sha : "unknown", compiler, SLJ_BUILD_FLAGS,
                simd::backend_name(), simd::f64_lanes(), simd::u8_lanes(),
                std::max(1u, std::thread::hardware_concurrency()));
  return buf;
}

/// The reference corpus: 12 training clips (522 frames), 3 test clips
/// (135 frames), matching the paper's Sec. 5 counts. Seed fixed so every
/// bench sees the same data.
inline synth::Dataset paper_corpus(std::uint32_t seed = 2008) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  return synth::generate_dataset(spec);
}

struct TrainedSystem {
  core::FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  core::TrainingStats stats;
};

inline TrainedSystem train_system(const synth::Dataset& dataset,
                                  pose::ClassifierConfig classifier_config = {},
                                  core::PipelineParams pipeline_params = {}) {
  TrainedSystem sys{core::FramePipeline(pipeline_params),
                    pose::PoseDbnClassifier(classifier_config),
                    {}};
  sys.stats = core::train_on_dataset(sys.classifier, sys.pipeline, dataset);
  return sys;
}

inline void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper reference: %s\n", paper_ref.c_str());
  std::printf("==================================================================\n");
}

inline void print_rule() {
  std::printf("------------------------------------------------------------------\n");
}

}  // namespace slj::bench
