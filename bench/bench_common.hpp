// Shared helpers for the reproduction benches: the paper-sized corpus, a
// trained classifier, and small table-printing utilities.
#pragma once

#include <cstdio>
#include <string>

#include "core/evaluation.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

namespace slj::bench {

/// The reference corpus: 12 training clips (522 frames), 3 test clips
/// (135 frames), matching the paper's Sec. 5 counts. Seed fixed so every
/// bench sees the same data.
inline synth::Dataset paper_corpus(std::uint32_t seed = 2008) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  return synth::generate_dataset(spec);
}

struct TrainedSystem {
  core::FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  core::TrainingStats stats;
};

inline TrainedSystem train_system(const synth::Dataset& dataset,
                                  pose::ClassifierConfig classifier_config = {},
                                  core::PipelineParams pipeline_params = {}) {
  TrainedSystem sys{core::FramePipeline(pipeline_params),
                    pose::PoseDbnClassifier(classifier_config),
                    {}};
  sys.stats = core::train_on_dataset(sys.classifier, sys.pipeline, dataset);
  return sys;
}

inline void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper reference: %s\n", paper_ref.c_str());
  std::printf("==================================================================\n");
}

inline void print_rule() {
  std::printf("------------------------------------------------------------------\n");
}

}  // namespace slj::bench
