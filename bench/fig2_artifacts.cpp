// F2 — Figure 2: raw Zhang–Suen output suffers from loops, corners and
// redundant line segments, and is sensitive to noise. Quantified here as
// per-frame artifact counts over one clip, before any graph cleanup.
#include "bench_common.hpp"
#include "skelgraph/artifacts.hpp"
#include "thinning/zhang_suen.hpp"

int main() {
  using namespace slj;
  bench::print_header("F2  raw thinning artifacts",
                      "Fig. 2: loops, corners and redundant line segments in Z-S output");

  synth::ClipSpec spec;
  spec.seed = 2025;
  spec.frame_count = 45;
  const synth::Clip clip = synth::generate_clip(spec);
  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);

  bench::print_rule();
  std::printf("%-7s %-10s %-8s %-12s %-12s %-14s %-12s\n", "frame", "skel px", "loops",
              "junc px", "junc clus", "adj-junc rm", "short br");
  bench::print_rule();

  std::size_t frames_with_loops = 0, total_loops = 0, total_short = 0, total_adjacent = 0;
  for (int i = 0; i < clip.frame_count(); ++i) {
    const BinaryImage sil = extractor.silhouette(clip.frames[static_cast<std::size_t>(i)]);
    const BinaryImage skeleton = thin::zhang_suen_thin(sil);
    const skel::ArtifactReport report = skel::analyze_artifacts(skeleton);
    if (report.loops > 0) ++frames_with_loops;
    total_loops += report.loops;
    total_short += report.short_branches;
    total_adjacent += report.adjacent_junctions;
    if (i % 5 == 0) {
      std::printf("%-7d %-10zu %-8zu %-12zu %-12zu %-14zu %-12zu\n", i, report.skeleton_pixels,
                  report.loops, report.junction_pixels, report.junction_clusters,
                  report.adjacent_junctions, report.short_branches);
    }
  }
  bench::print_rule();
  std::printf("frames with >=1 loop: %zu / %d\n", frames_with_loops, clip.frame_count());
  std::printf("total loops: %zu | total short (noisy) branches: %zu | total adjacent "
              "junction pixels removed: %zu\n",
              total_loops, total_short, total_adjacent);
  std::printf("paper (qualitative): thinning \"can result in loops, corners, and redundant "
              "line segments\" and \"is sensitive to noise\"\n");
  return 0;
}
