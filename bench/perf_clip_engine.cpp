// P3 — ClipEngine throughput: frames/sec of the full vision pass (extract →
// thin → graph cleanup → features) for a serial FramePipeline loop vs the
// ClipEngine worker pool at increasing worker counts, on single clips and
// on a whole batch (the paper corpus's 3 test clips). Also reports the
// workspace fast path run single-threaded (the PR-4 tentpole's apples-to-
// apples comparison) and the tracker-enabled batch mode.
//
// With --json FILE, the measurements are also written as a JSON document
// (consumed by scripts/bench.sh to assemble BENCH_*.json), including build
// provenance (git SHA, compiler, flags, SIMD backend) and explicit skip
// markers for rows a single-core host cannot measure meaningfully.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/clip_engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::size_t total_frames(const std::vector<slj::synth::Clip>& clips) {
  std::size_t n = 0;
  for (const auto& clip : clips) n += clip.frames.size();
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slj;
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  bench::print_header("P3  ClipEngine throughput vs serial FramePipeline",
                      "system sketch Sec. 1: batch clip processing at production scale");

  const synth::Dataset dataset = bench::paper_corpus();
  const std::vector<synth::Clip>& clips = dataset.test;
  const std::size_t frames = total_frames(clips);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("corpus: %zu clips, %zu frames; hardware concurrency: %u\n\n", clips.size(),
              frames, hw);

  // Baseline: the serial loop every example used before the engine existed
  // (seed implementations: allocating extract + full-scan Zhang–Suen).
  double serial_ms = 0.0;
  {
    const auto start = Clock::now();
    for (const synth::Clip& clip : clips) {
      core::FramePipeline pipeline;
      pipeline.set_background(clip.background);
      core::GroundMonitor ground;
      for (const RgbImage& frame : clip.frames) {
        const core::FrameObservation obs = pipeline.process(frame);
        ground.airborne(obs.bottom_row);
      }
    }
    serial_ms = ms_since(start);
    std::printf("serial FramePipeline loop      %8.1f ms   %7.1f frames/s\n", serial_ms,
                1000.0 * frames / serial_ms);
  }

  // The tentpole, measured directly: the same serial loop through one
  // FrameWorkspace (allocation-free segmentation + frontier thinning).
  double workspace_ms = 0.0;
  {
    FrameWorkspace ws;
    core::FrameObservation obs;
    const auto start = Clock::now();
    for (const synth::Clip& clip : clips) {
      core::FramePipeline pipeline;
      pipeline.set_background(clip.background);
      core::GroundMonitor ground;
      for (const RgbImage& frame : clip.frames) {
        pipeline.process_into(frame, ws, obs);
        ground.airborne(obs.bottom_row);
      }
    }
    workspace_ms = ms_since(start);
    std::printf("serial + FrameWorkspace        %8.1f ms   %7.1f frames/s   speedup %.2fx\n",
                workspace_ms, 1000.0 * frames / workspace_ms, serial_ms / workspace_ms);
  }
  bench::print_rule();

  // Multi-worker rows are only meaningful with real cores behind them; on a
  // single-core host they would measure oversubscription noise, so they are
  // recorded as explicitly skipped instead of silently omitted (or worse,
  // silently bogus).
  std::vector<unsigned> worker_counts = {1, 2, 4};
  if (hw > 4) worker_counts.push_back(hw);
  std::vector<std::pair<unsigned, double>> engine_ms;  // ms < 0: skipped
  for (const unsigned workers : worker_counts) {
    if (workers > 1 && hw == 1) {
      engine_ms.emplace_back(workers, -1.0);
      std::printf("ClipEngine batch, %2u workers    skipped (hardware_concurrency == 1)\n",
                  workers);
      continue;
    }
    core::ClipEngineConfig config;
    config.workers = workers;
    core::ClipEngine engine({}, config);
    const auto start = Clock::now();
    const std::vector<core::ClipObservation> results = engine.process(clips);
    const double ms = ms_since(start);
    engine_ms.emplace_back(workers, ms);
    std::printf("ClipEngine batch, %2u workers   %8.1f ms   %7.1f frames/s   speedup %.2fx\n",
                workers, ms, 1000.0 * frames / ms, serial_ms / ms);
    (void)results;
  }
  bench::print_rule();

  // Intra-frame row banding (PR-8): frames walk serially, each frame's
  // segmentation rows spread across the pool. bands = 1 exercises the same
  // serial walk through the engine (the banding baseline); bands > 1 needs
  // real cores, so those rows carry the same skip marker on 1-core hosts.
  std::vector<std::pair<int, double>> banded_ms;  // ms < 0: skipped
  for (const int bands : {1, 2, 4}) {
    if (bands > 1 && hw == 1) {
      banded_ms.emplace_back(bands, -1.0);
      std::printf("ClipEngine, %d row bands        skipped (hardware_concurrency == 1)\n", bands);
      continue;
    }
    core::ClipEngineConfig config;
    config.workers = hw;
    config.intra_frame_bands = bands;
    core::ClipEngine engine({}, config);
    const auto start = Clock::now();
    for (const synth::Clip& clip : clips) {
      const core::ClipObservation result = engine.process(clip.background, clip.frames);
      (void)result;
    }
    const double ms = ms_since(start);
    banded_ms.emplace_back(bands, ms);
    std::printf("ClipEngine, %d row bands       %8.1f ms   %7.1f frames/s   speedup %.2fx\n",
                bands, ms, 1000.0 * frames / ms, serial_ms / ms);
  }
  bench::print_rule();

  // Tracker mode: clip-level parallelism only (tracking is sequential).
  double tracker_ms = 0.0;
  {
    core::ClipEngineConfig config;
    config.workers = hw;
    config.use_tracker = true;
    core::ClipEngine engine({}, config);
    const auto start = Clock::now();
    const std::vector<core::ClipObservation> results = engine.process(clips);
    tracker_ms = ms_since(start);
    std::printf("ClipEngine + tracker, %2u wkrs  %8.1f ms   %7.1f frames/s\n", hw, tracker_ms,
                1000.0 * frames / tracker_ms);
    (void)results;
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"host\": %s,\n", bench::host_json().c_str());
    std::fprintf(f, "  \"clips\": %zu,\n  \"frames\": %zu,\n  \"hardware_concurrency\": %u,\n",
                 clips.size(), frames, hw);
    std::fprintf(f, "  \"serial_seed\": {\"ms\": %.3f, \"frames_per_s\": %.1f},\n", serial_ms,
                 1000.0 * frames / serial_ms);
    std::fprintf(f,
                 "  \"serial_workspace\": {\"ms\": %.3f, \"frames_per_s\": %.1f, "
                 "\"speedup_vs_seed\": %.3f},\n",
                 workspace_ms, 1000.0 * frames / workspace_ms, serial_ms / workspace_ms);
    std::fprintf(f, "  \"engine\": [\n");
    for (std::size_t i = 0; i < engine_ms.size(); ++i) {
      const auto [workers, ms] = engine_ms[i];
      const char* sep = i + 1 < engine_ms.size() ? "," : "";
      if (ms < 0.0) {
        std::fprintf(f,
                     "    {\"workers\": %u, \"skipped\": true, "
                     "\"reason\": \"hardware_concurrency == 1\"}%s\n",
                     workers, sep);
      } else {
        std::fprintf(f,
                     "    {\"workers\": %u, \"ms\": %.3f, \"frames_per_s\": %.1f, "
                     "\"speedup_vs_seed\": %.3f}%s\n",
                     workers, ms, 1000.0 * frames / ms, serial_ms / ms, sep);
      }
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"banded\": [\n");
    for (std::size_t i = 0; i < banded_ms.size(); ++i) {
      const auto [bands, ms] = banded_ms[i];
      const char* sep = i + 1 < banded_ms.size() ? "," : "";
      if (ms < 0.0) {
        std::fprintf(f,
                     "    {\"bands\": %d, \"skipped\": true, "
                     "\"reason\": \"hardware_concurrency == 1\"}%s\n",
                     bands, sep);
      } else {
        std::fprintf(f,
                     "    {\"bands\": %d, \"ms\": %.3f, \"frames_per_s\": %.1f, "
                     "\"speedup_vs_seed\": %.3f}%s\n",
                     bands, ms, 1000.0 * frames / ms, serial_ms / ms, sep);
      }
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"engine_tracker\": {\"workers\": %u, \"ms\": %.3f, \"frames_per_s\": %.1f}\n",
                 hw, tracker_ms, 1000.0 * frames / tracker_ms);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return 0;
}
