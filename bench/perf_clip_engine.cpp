// P3 — ClipEngine throughput: frames/sec of the full vision pass (extract →
// thin → graph cleanup → features) for a serial FramePipeline loop vs the
// ClipEngine worker pool at increasing worker counts, on single clips and
// on a whole batch (the paper corpus's 3 test clips). Also reports the
// tracker-enabled batch mode (clip-level parallelism).
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/clip_engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::size_t total_frames(const std::vector<slj::synth::Clip>& clips) {
  std::size_t n = 0;
  for (const auto& clip : clips) n += clip.frames.size();
  return n;
}

}  // namespace

int main() {
  using namespace slj;
  bench::print_header("P3  ClipEngine throughput vs serial FramePipeline",
                      "system sketch Sec. 1: batch clip processing at production scale");

  const synth::Dataset dataset = bench::paper_corpus();
  const std::vector<synth::Clip>& clips = dataset.test;
  const std::size_t frames = total_frames(clips);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("corpus: %zu clips, %zu frames; hardware concurrency: %u\n\n", clips.size(),
              frames, hw);

  // Baseline: the serial loop every example used before the engine existed.
  double serial_ms = 0.0;
  {
    const auto start = Clock::now();
    for (const synth::Clip& clip : clips) {
      core::FramePipeline pipeline;
      pipeline.set_background(clip.background);
      core::GroundMonitor ground;
      for (const RgbImage& frame : clip.frames) {
        const core::FrameObservation obs = pipeline.process(frame);
        ground.airborne(obs.bottom_row);
      }
    }
    serial_ms = ms_since(start);
    std::printf("serial FramePipeline loop      %8.1f ms   %7.1f frames/s\n", serial_ms,
                1000.0 * frames / serial_ms);
  }
  bench::print_rule();

  std::vector<unsigned> worker_counts = {1, 2, 4};
  if (hw > 4) worker_counts.push_back(hw);
  for (const unsigned workers : worker_counts) {
    core::ClipEngineConfig config;
    config.workers = workers;
    core::ClipEngine engine({}, config);
    const auto start = Clock::now();
    const std::vector<core::ClipObservation> results = engine.process(clips);
    const double ms = ms_since(start);
    std::printf("ClipEngine batch, %2u workers   %8.1f ms   %7.1f frames/s   speedup %.2fx\n",
                workers, ms, 1000.0 * frames / ms, serial_ms / ms);
    (void)results;
  }
  bench::print_rule();

  // Tracker mode: clip-level parallelism only (tracking is sequential).
  {
    core::ClipEngineConfig config;
    config.workers = hw;
    config.use_tracker = true;
    core::ClipEngine engine({}, config);
    const auto start = Clock::now();
    const std::vector<core::ClipObservation> results = engine.process(clips);
    const double ms = ms_since(start);
    std::printf("ClipEngine + tracker, %2u wkrs  %8.1f ms   %7.1f frames/s\n", hw, ms,
                1000.0 * frames / ms);
    (void)results;
  }
  return 0;
}
