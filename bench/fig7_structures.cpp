// F7 — Figure 7: (a) the Bayesian network for one pose — root Pose node,
// five hidden part nodes, eight observed area nodes — and (b) the DBN slice
// adding the previous pose and the jumping-stage flag. Reproduced as
// structure dumps (GraphViz DOT + a node table) from the trained model,
// plus an exact-inference sanity check on the exported network.
#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("F7  network structures",
                      "Fig. 7: (a) per-pose BN (b) DBN with previous pose + stage");

  const synth::Dataset dataset = bench::paper_corpus();
  bench::TrainedSystem sys = bench::train_system(dataset);

  const pose::PoseId example = pose::PoseId::kStandHandsForward;  // the pose Fig. 7a uses
  const bayes::Network bn = sys.classifier.build_pose_network(example);
  std::printf("Fig. 7(a): BN for \"%s\"\n", std::string(pose::pose_name(example)).c_str());
  bench::print_rule();
  std::printf("%-4s %-38.38s %-8s %-8s\n", "id", "node", "states", "parents");
  bench::print_rule();
  for (int i = 0; i < bn.node_count(); ++i) {
    std::printf("%-4d %-38.38s %-8d %-8zu\n", i, bn.name(i).c_str(), bn.cardinality(i),
                bn.parents(i).size());
  }
  bench::print_rule();
  std::printf("%s\n", bn.to_dot("fig7a").c_str());

  // Exact-inference check: observing the Hand part in its trained forward
  // area must raise P(pose present).
  bayes::Assignment evidence(static_cast<std::size_t>(bn.node_count()), bayes::kUnobserved);
  const double prior = bn.posterior(0, evidence)[1];
  // Find the hand's modal trained area for this pose.
  int best_area = 0;
  double best_p = 0.0;
  for (int a = 0; a < 9; ++a) {
    const int parents[1] = {pose::index_of(example)};
    (void)parents;
    const double p = std::exp(sys.classifier.log_likelihood(
        example, [&] {
          pose::FeatureVector f;
          for (auto& v : f.areas) v = 8;  // all missing
          f[pose::Part::kHand] = a;
          return f;
        }()));
    if (p > best_p) {
      best_p = p;
      best_area = a;
    }
  }
  evidence[static_cast<std::size_t>(*bn.find("Hand"))] = best_area;
  const double post = bn.posterior(0, evidence)[1];
  std::printf("exact inference on the exported BN: P(pose) prior %.3f -> posterior %.3f after "
              "observing Hand in its modal area\n\n",
              prior, post);

  const bayes::Network dbn = sys.classifier.build_dbn_slice();
  std::printf("Fig. 7(b): DBN slice\n");
  bench::print_rule();
  std::printf("%-4s %-38.38s %-8s %-8s\n", "id", "node", "states", "parents");
  bench::print_rule();
  for (int i = 0; i < dbn.node_count(); ++i) {
    std::printf("%-4d %-38.38s %-8d %-8zu\n", i, dbn.name(i).c_str(), dbn.cardinality(i),
                dbn.parents(i).size());
  }
  bench::print_rule();
  std::printf("learned stage self-transitions P(stage_t = s | stage_{t-1} = s):\n");
  for (int s = 0; s < pose::kStageCount; ++s) {
    const auto stage = pose::stage_from_index(s);
    std::printf("  %-16s %.3f   P(airborne | stage) = %.3f\n",
                std::string(pose::stage_name(stage)).c_str(),
                sys.classifier.stage_prob(stage, stage),
                sys.classifier.airborne_prob(true, stage));
  }
  return 0;
}
