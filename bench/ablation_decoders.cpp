// A7 (extension) — sequence decoders: the paper commits to a per-frame
// point estimate and notes the consequence ("a misclassified frame will
// still affect the classification of its subsequent frames"); its Sec. 6
// asks for refinement on the DBN. This bench compares the paper's online
// rule against forward filtering (full belief) and offline Viterbi
// decoding, all sharing the same trained CPTs.
#include "bench_common.hpp"
#include "pose/decoders.hpp"

int main() {
  using namespace slj;
  bench::print_header("A7  sequence decoders (extension)",
                      "Sec. 5/6: error propagation from point estimates; DBN refinement");

  const synth::Dataset dataset = bench::paper_corpus();
  bench::TrainedSystem sys = bench::train_system(dataset);

  struct Row {
    const char* name;
    pose::SequenceDecoder decoder;
  };
  const Row rows[] = {
      {"online point estimate (paper)", pose::SequenceDecoder::kOnline},
      {"forward filtering (belief)", pose::SequenceDecoder::kFiltering},
      {"Viterbi (offline max-product)", pose::SequenceDecoder::kViterbi},
  };

  bench::print_rule();
  std::printf("%-32s %-10s %-22s %-14s\n", "decoder", "overall", "per clip",
              "errors in runs>=2");
  bench::print_rule();
  for (const Row& row : rows) {
    double clip_acc[3] = {};
    std::size_t frames = 0, correct = 0;
    core::DatasetEvaluation eval;
    for (std::size_t c = 0; c < dataset.test.size(); ++c) {
      const synth::Clip& clip = dataset.test[c];
      sys.pipeline.set_background(clip.background);
      core::GroundMonitor ground;
      std::vector<std::vector<pose::FeatureCandidate>> candidates;
      std::vector<bool> airborne;
      for (const RgbImage& frame : clip.frames) {
        const core::FrameObservation obs = sys.pipeline.process(frame);
        candidates.push_back(obs.candidates);
        airborne.push_back(ground.airborne(obs.bottom_row));
      }
      const auto results =
          pose::decode_sequence(sys.classifier, candidates, airborne, row.decoder);
      core::ClipEvaluation ce;
      std::size_t clip_correct = 0;
      for (std::size_t i = 0; i < results.size(); ++i) {
        ++frames;
        ++ce.frames;
        const bool ok = results[i].pose == clip.truth[i].pose;
        clip_correct += ok ? 1 : 0;
        ce.correct += ok ? 1 : 0;
        ce.results.push_back(results[i]);
        ce.truth.push_back(clip.truth[i].pose);
      }
      correct += clip_correct;
      clip_acc[c] = 100.0 * static_cast<double>(clip_correct) / results.size();
      eval.clips.push_back(std::move(ce));
    }
    int burst_errors = 0, total_errors = 0;
    for (const int r : core::error_run_lengths(eval)) {
      total_errors += r;
      if (r >= 2) burst_errors += r;
    }
    std::printf("%-32s %-10.1f %4.0f%% / %4.0f%% / %4.0f%%    %3d / %-3d\n", row.name,
                100.0 * static_cast<double>(correct) / frames, clip_acc[0], clip_acc[1],
                clip_acc[2], burst_errors, total_errors);
  }
  bench::print_rule();
  std::printf("observed shape (documented in EXPERIMENTS.md): the three decoders land "
              "within ~2 points of each other. The residual errors sit on genuinely "
              "ambiguous transition frames, which smoothing cannot recover; the online "
              "rule's Th_Pose preference even gives it a slight edge. The paper's "
              "error-propagation worry is real but bounded by the stage discipline.\n");
  return 0;
}
