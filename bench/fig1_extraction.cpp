// F1 — Figure 1: input frame → extracted silhouette → median-smoothed
// silhouette. Reproduced quantitatively: per-stage IoU of the extracted
// mask against the noise-free ground-truth silhouette, before and after the
// median filter, plus hole statistics. Also writes a PGM triptych of one
// representative frame.
#include "bench_common.hpp"
#include "imaging/connected.hpp"
#include "imaging/morphology.hpp"
#include "imaging/image_io.hpp"

int main() {
  using namespace slj;
  bench::print_header("F1  object extraction pipeline",
                      "Fig. 1: (a) input frame (b) extracted silhouette (c) smoothed");

  synth::ClipSpec spec;
  spec.seed = 2025;
  spec.frame_count = 45;
  // A noisier studio than the default corpus, so the raw mask shows the
  // holes and speckle of Fig. 1(b) and the smoothing step has work to do.
  spec.camera.sensor_noise_sigma = 7.0;
  spec.camera.speckle_fraction = 0.02;
  spec.camera.speckle_strength = 130;
  const synth::Clip clip = synth::generate_clip(spec);

  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);

  bench::print_rule();
  std::printf("%-7s %-14s %-12s %-12s %-10s %-10s\n", "frame", "stage", "raw IoU",
              "smooth IoU", "raw cc", "holes");
  bench::print_rule();
  double sum_raw = 0.0, sum_smooth = 0.0;
  for (int i = 0; i < clip.frame_count(); i += 5) {
    const seg::ExtractionResult res = extractor.extract(clip.frames[static_cast<std::size_t>(i)]);
    const BinaryImage& truth = clip.clean_silhouettes[static_cast<std::size_t>(i)];
    const double raw_iou = iou(res.raw_mask, truth);
    const double smooth_iou = iou(res.silhouette, truth);
    sum_raw += raw_iou;
    sum_smooth += smooth_iou;
    // Components in the raw mask (speckle) and interior holes (Fig. 1b's
    // "small holes and ridged edges").
    const std::size_t raw_cc = component_count(res.raw_mask);
    std::size_t holes = 0;
    {
      // Holes: foreground gained by fill_holes on the smoothed mask.
      const BinaryImage filled = fill_holes(res.smoothed);
      holes = count_foreground(filled) - count_foreground(res.smoothed);
    }
    std::printf("%-7d %-14s %-12.3f %-12.3f %-10zu %-10zu\n", i,
                std::string(pose::stage_name(clip.truth[static_cast<std::size_t>(i)].stage)).c_str(),
                raw_iou, smooth_iou, raw_cc, holes);
  }
  bench::print_rule();
  const double n = (clip.frame_count() + 4) / 5;
  std::printf("mean IoU:   raw %.3f  ->  smoothed+cleaned %.3f\n", sum_raw / n, sum_smooth / n);
  std::printf("paper (qualitative): smoothing removes the small holes and ridged edges\n");

  // Triptych dump of a mid-jump frame.
  const int pick = 20;
  const seg::ExtractionResult res = extractor.extract(clip.frames[pick]);
  write_ppm(clip.frames[pick], "fig1_a_input.ppm");
  write_pgm(binary_to_gray(res.raw_mask), "fig1_b_extracted.pgm");
  write_pgm(binary_to_gray(res.silhouette), "fig1_c_smoothed.pgm");
  std::printf("wrote fig1_a_input.ppm, fig1_b_extracted.pgm, fig1_c_smoothed.pgm\n");
  return 0;
}
