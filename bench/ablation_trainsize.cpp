// A4 — training-set size: the paper attributes part of its error to the
// small corpus ("the number of training samples is small. The probabilities
// of these poses are not large enough to be accepted."). Reproduced as an
// accuracy curve over the number of training clips, with the test clips
// held fixed.
#include "bench_common.hpp"

int main() {
  using namespace slj;
  bench::print_header("A4  training-set size sweep",
                      "Sec. 5: accuracy limited by the small number of training samples");

  bench::print_rule();
  std::printf("%-14s %-14s %-10s %-22s\n", "train clips", "train frames", "overall",
              "per clip");
  bench::print_rule();
  for (const int clips : {2, 4, 6, 8, 10, 12}) {
    synth::DatasetSpec spec;  // same seed → same clips, test set identical
    spec.train_clip_frames.resize(static_cast<std::size_t>(clips));
    const synth::Dataset dataset = synth::generate_dataset(spec);
    bench::TrainedSystem sys = bench::train_system(dataset);
    const core::DatasetEvaluation eval =
        core::evaluate_dataset(sys.classifier, sys.pipeline, dataset.test);
    std::printf("%-14d %-14zu %-10.1f %4.0f%% / %4.0f%% / %4.0f%%\n", clips,
                dataset.train_frames(), 100.0 * eval.overall_accuracy(),
                100.0 * eval.clips[0].accuracy(), 100.0 * eval.clips[1].accuracy(),
                100.0 * eval.clips[2].accuracy());
  }
  bench::print_rule();
  std::printf("expected shape: accuracy grows with training clips and is not yet saturated "
              "at 12 — matching the paper's call for more training data\n");
  return 0;
}
