// Feature encoding (paper Sec. 4, Fig. 6): the waist is the origin of the
// plane, and each key body part is coded by which of the eight 45° angular
// areas (I…VIII) it falls into. The paper's future-work note "more
// partitions instead of just eight can be used" is supported by making the
// partition count a parameter (the A3 ablation sweeps it).
#pragma once

#include <array>
#include <string>

#include "imaging/geometry.hpp"

namespace slj::pose {

/// The five key body parts of the paper's BN (Fig. 7a hidden nodes).
enum class Part : std::uint8_t { kHead = 0, kChest, kHand, kKnee, kFoot };
inline constexpr int kPartCount = 5;

std::string_view part_name(Part p);

/// Angular-partition encoder around the waist origin. Areas are numbered
/// 0..n-1 counter-clockwise starting at the positive-x axis *in body space*
/// (x right, y up); image-space y is flipped internally. Area 0 therefore
/// spans [0°, 360°/n) above-right of the waist.
class AreaEncoder {
 public:
  explicit AreaEncoder(int num_areas = 8);

  int num_areas() const { return num_areas_; }

  /// State used when a part was not found on the skeleton.
  int missing_state() const { return num_areas_; }

  /// Number of encoder states including "missing".
  int state_count() const { return num_areas_ + 1; }

  /// Area of image-space point `p` relative to image-space `waist`.
  /// A point coincident with the waist maps to area 0.
  int area_of(PointF p, PointF waist) const;

  /// Roman-numeral style label ("I".."XVI", or "missing").
  std::string state_label(int state) const;

 private:
  int num_areas_;
};

/// The paper's feature vector: one encoder state per body part.
struct FeatureVector {
  std::array<int, kPartCount> areas{};

  int& operator[](Part p) { return areas[static_cast<std::size_t>(p)]; }
  int operator[](Part p) const { return areas[static_cast<std::size_t>(p)]; }

  friend bool operator==(const FeatureVector&, const FeatureVector&) = default;
};

/// Plain container of part locations (image pixels) — ground truth during
/// training, candidate hypothesis during testing.
struct PartPoints {
  PointF head;
  PointF chest;
  PointF hand;
  PointF knee;
  PointF foot;

  PointF get(Part p) const;
};

/// Encodes five known part locations against a waist origin.
FeatureVector encode_parts(const PartPoints& parts, PointF waist, const AreaEncoder& encoder);

std::string to_string(const FeatureVector& f, const AreaEncoder& encoder);

}  // namespace slj::pose
