// From cleaned skeleton graph to feature vectors.
//
// Training (paper Sec. 4.1): the annotator supplies Head/Hand/Foot (we have
// all five parts from ground truth); each part snaps to the nearest skeleton
// key point; the torso is the skeleton path from the Head key point to the
// Foot key point and the waist sits at its arc-length midpoint.
//
// Testing (paper Sec. 4.2): "the lowest point is Foot" — then every
// consistent labelling of the remaining key points is enumerated and the
// classifier keeps the labelling whose feature vector scores highest.
#pragma once

#include <optional>
#include <vector>

#include "pose/features.hpp"
#include "skelgraph/skeleton_graph.hpp"

namespace slj::pose {

/// Head→Foot torso path and its midpoint, the waist origin (Sec. 4.1).
struct TorsoEstimate {
  int head_node = -1;
  int foot_node = -1;
  double path_length = 0.0;
  PointF waist;
  bool connected = false;  ///< false: no graph path, waist = straight midpoint
};

/// Shortest path (by segment length) between two alive nodes; returns the
/// arc-length midpoint. Falls back to the straight-line midpoint when the
/// nodes are in different components.
TorsoEstimate estimate_torso(const skel::SkeletonGraph& graph, int head_node, int foot_node);

/// Alive node nearest an image point, or -1 if the graph is empty.
int nearest_node(const skel::SkeletonGraph& graph, PointF p);

/// One hypothesised body-part labelling of the key points.
struct FeatureCandidate {
  FeatureVector features;
  PointF waist;
  /// Node id per part; -1 = part missing.
  std::array<int, kPartCount> nodes{-1, -1, -1, -1, -1};
  /// Area-occupancy bits (size = encoder.num_areas()): occupancy[k] != 0
  /// iff some key point lies in area k around this waist — the evidence of
  /// the paper's eight observed Area I…VIII nodes (Fig. 7).
  std::vector<std::uint8_t> occupancy;
  /// Areas occupied by *some* key point but by no assigned part: evidence
  /// this labelling leaves unexplained. The classifier charges a clutter
  /// penalty per such area, which stops "call everything missing" labellings
  /// from outscoring honest ones.
  int unexplained_areas = 0;
};

struct CandidateOptions {
  int max_head_candidates = 3;   ///< topmost end nodes tried as Head
  int max_free_points = 7;       ///< key points considered for Chest/Hand/Knee
  /// Geometric plausibility: Chest may not sit below the waist and Knee may
  /// not sit above it (by more than this slack in pixels).
  double vertical_slack = 4.0;
};

/// Enumerates feature candidates for a test frame (Sec. 4.2). Empty when
/// the graph has no nodes.
std::vector<FeatureCandidate> enumerate_candidates(const skel::SkeletonGraph& graph,
                                                   const AreaEncoder& encoder,
                                                   const CandidateOptions& options = {});

/// Builds the training feature vector by snapping ground-truth part
/// locations to skeleton key points (within `max_snap_distance` pixels;
/// farther parts are coded "missing"). Also returns the torso estimate used
/// for the waist. Nullopt when the graph has no nodes.
std::optional<FeatureCandidate> features_from_truth(const skel::SkeletonGraph& graph,
                                                    const AreaEncoder& encoder,
                                                    const PartPoints& truth,
                                                    double max_snap_distance = 14.0);

}  // namespace slj::pose
