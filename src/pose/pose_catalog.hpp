// The 22-pose catalogue and the four jumping stages (paper Sec. 4).
//
// The paper defines 22 poses but names only four in the text:
//   "standing & hand overlap with body"          (the reset pose)
//   "standing & hand swung forward"              (the dominant pose)
//   "knee and foot extended & hand raised forward"
//   "waist bended & hand raised forward"
// The remaining 18 are reconstructed from the four stages the paper lists
// (before jumping / jumping / in the air / landing) and the standing-long-
// jump movement standard those stages describe. Every pose belongs to
// exactly one stage; the DBN uses that to rule out impossible transitions
// ("poses belonging to 'before jumping' and poses belonging to 'landing'
// cannot occur consecutively").
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace slj::pose {

enum class Stage : std::uint8_t {
  kBeforeJumping = 0,
  kJumping = 1,
  kInTheAir = 2,
  kLanding = 3,
};

inline constexpr int kStageCount = 4;

std::string_view stage_name(Stage s);

/// Pose identifiers. Values are dense 0..21; kUnknown is a sentinel used by
/// the classifier when no pose clears its threshold, never a label.
enum class PoseId : std::uint8_t {
  // -- before jumping -------------------------------------------------
  kStandHandsOverlap = 0,      ///< paper: "standing & hand overlap with body"
  kStandHandsForward = 1,      ///< paper: "standing & hand swung forward" (dominant)
  kStandHandsBackward = 2,
  kStandHandsUp = 3,
  kCrouchHandsBackward = 4,
  kCrouchHandsForward = 5,
  kWaistBentHandsBackward = 6,
  // -- jumping (take-off) ---------------------------------------------
  kExtendedHandsForward = 7,   ///< paper: "knee and foot extended & hand raised forward"
  kExtendedHandsUp = 8,
  kTakeoffLeanForward = 9,
  kTakeoffHandsBackward = 10,
  // -- in the air ------------------------------------------------------
  kAirExtendedHandsForward = 11,
  kAirTuckHandsForward = 12,
  kAirTuckHandsDown = 13,
  kAirLegsReachForward = 14,
  kAirPikeHandsDown = 15,
  kAirUprightHandsDown = 16,
  // -- landing ----------------------------------------------------------
  kTouchdownKneesBentHandsForward = 17,
  kTouchdownDeepHandsDown = 18,
  kLandedSquatHandsForward = 19,
  kLandedRisingHandsDown = 20,
  kLandedWaistBentHandsForward = 21,  ///< paper: "waist bended & hand raised forward"

  kUnknown = 22,  ///< classifier sentinel, not a trainable label
};

inline constexpr int kPoseCount = 22;

/// The pose the classifier is reset to on the first frame of a clip.
inline constexpr PoseId kResetPose = PoseId::kStandHandsOverlap;

std::string_view pose_name(PoseId p);

/// Stage a pose belongs to. kUnknown maps to kBeforeJumping by convention
/// (callers should not rely on it).
Stage stage_of(PoseId p);

/// Dense index helpers.
inline int index_of(PoseId p) { return static_cast<int>(p); }
PoseId pose_from_index(int idx);

inline int index_of(Stage s) { return static_cast<int>(s); }
Stage stage_from_index(int idx);

/// All poses belonging to a stage, in id order.
std::array<PoseId, kPoseCount> all_poses();
int poses_in_stage(Stage s, std::array<PoseId, kPoseCount>& out);

/// Stage ordering: a jump progresses monotonically before → jumping → air →
/// landing; a stage can repeat or advance by one, never go back or skip.
bool stage_transition_allowed(Stage from, Stage to);

}  // namespace slj::pose
