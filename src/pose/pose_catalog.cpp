#include "pose/pose_catalog.hpp"

#include <stdexcept>

namespace slj::pose {

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kBeforeJumping: return "before jumping";
    case Stage::kJumping: return "jumping";
    case Stage::kInTheAir: return "in the air";
    case Stage::kLanding: return "landing";
  }
  return "?";
}

std::string_view pose_name(PoseId p) {
  switch (p) {
    case PoseId::kStandHandsOverlap: return "standing & hands overlap with body";
    case PoseId::kStandHandsForward: return "standing & hands swung forward";
    case PoseId::kStandHandsBackward: return "standing & hands swung backward";
    case PoseId::kStandHandsUp: return "standing & hands raised up";
    case PoseId::kCrouchHandsBackward: return "crouched & hands swung backward";
    case PoseId::kCrouchHandsForward: return "crouched & hands swung forward";
    case PoseId::kWaistBentHandsBackward: return "waist bent & hands swung backward";
    case PoseId::kExtendedHandsForward: return "knees and feet extended & hands raised forward";
    case PoseId::kExtendedHandsUp: return "body extended & hands raised up";
    case PoseId::kTakeoffLeanForward: return "take-off & body leaning forward & hands forward";
    case PoseId::kTakeoffHandsBackward: return "take-off & hands still backward";
    case PoseId::kAirExtendedHandsForward: return "airborne & body extended & hands forward";
    case PoseId::kAirTuckHandsForward: return "airborne & knees tucked & hands forward";
    case PoseId::kAirTuckHandsDown: return "airborne & knees tucked & hands down";
    case PoseId::kAirLegsReachForward: return "airborne & legs reaching forward & hands forward";
    case PoseId::kAirPikeHandsDown: return "airborne & body piked & hands reaching toes";
    case PoseId::kAirUprightHandsDown: return "airborne & body upright & hands down";
    case PoseId::kTouchdownKneesBentHandsForward: return "touchdown & knees bent & hands forward";
    case PoseId::kTouchdownDeepHandsDown: return "touchdown & knees deeply bent & hands down";
    case PoseId::kLandedSquatHandsForward: return "landed & squatting & hands forward";
    case PoseId::kLandedRisingHandsDown: return "landed & standing up & hands down";
    case PoseId::kLandedWaistBentHandsForward: return "landed & waist bent & hands raised forward";
    case PoseId::kUnknown: return "unknown";
  }
  return "?";
}

Stage stage_of(PoseId p) {
  const int i = static_cast<int>(p);
  if (i <= static_cast<int>(PoseId::kWaistBentHandsBackward)) return Stage::kBeforeJumping;
  if (i <= static_cast<int>(PoseId::kTakeoffHandsBackward)) return Stage::kJumping;
  if (i <= static_cast<int>(PoseId::kAirUprightHandsDown)) return Stage::kInTheAir;
  if (i <= static_cast<int>(PoseId::kLandedWaistBentHandsForward)) return Stage::kLanding;
  return Stage::kBeforeJumping;  // kUnknown: arbitrary, documented in header
}

PoseId pose_from_index(int idx) {
  if (idx < 0 || idx > static_cast<int>(PoseId::kUnknown)) {
    throw std::out_of_range("pose index out of range");
  }
  return static_cast<PoseId>(idx);
}

Stage stage_from_index(int idx) {
  if (idx < 0 || idx >= kStageCount) throw std::out_of_range("stage index out of range");
  return static_cast<Stage>(idx);
}

std::array<PoseId, kPoseCount> all_poses() {
  std::array<PoseId, kPoseCount> out{};
  for (int i = 0; i < kPoseCount; ++i) out[static_cast<std::size_t>(i)] = static_cast<PoseId>(i);
  return out;
}

int poses_in_stage(Stage s, std::array<PoseId, kPoseCount>& out) {
  int n = 0;
  for (int i = 0; i < kPoseCount; ++i) {
    const PoseId p = static_cast<PoseId>(i);
    if (stage_of(p) == s) out[static_cast<std::size_t>(n++)] = p;
  }
  return n;
}

bool stage_transition_allowed(Stage from, Stage to) {
  const int f = static_cast<int>(from);
  const int t = static_cast<int>(to);
  return t == f || t == f + 1;
}

}  // namespace slj::pose
