#include "pose/decoders.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "bayes/viterbi.hpp"

namespace slj::pose {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Max over candidates of the weighted observation log-score for a pose.
double best_emission(const PoseDbnClassifier& clf, PoseId pose,
                     const std::vector<FeatureCandidate>& candidates) {
  const ClassifierConfig& cfg = clf.config();
  double best = kNegInf;
  for (const FeatureCandidate& c : candidates) {
    const double s = cfg.likelihood_weight *
                     (clf.log_likelihood(pose, c) +
                      c.unexplained_areas * std::log(cfg.clutter_epsilon));
    best = std::max(best, s);
  }
  return best;
}

bool stage_in_bounds(Stage s, const std::pair<Stage, Stage>& bounds) {
  return index_of(s) >= index_of(bounds.first) && index_of(s) <= index_of(bounds.second);
}

/// Per-pose log-emission for one frame: observation score + airborne-flag
/// CPT, gated by the flag-implied stage bounds.
std::vector<double> frame_log_emission(const PoseDbnClassifier& clf,
                                       const std::vector<FeatureCandidate>& candidates,
                                       bool airborne, const std::pair<Stage, Stage>& bounds) {
  std::vector<double> emission(static_cast<std::size_t>(kPoseCount), kNegInf);
  for (int p = 0; p < kPoseCount; ++p) {
    const PoseId pose = static_cast<PoseId>(p);
    if (!stage_in_bounds(stage_of(pose), bounds)) continue;
    const double ap = clf.airborne_prob(airborne, stage_of(pose));
    double e = ap > 0.0 ? std::log(ap) : kNegInf;
    if (!candidates.empty()) e += best_emission(clf, pose, candidates);
    emission[static_cast<std::size_t>(p)] = e;
  }
  return emission;
}

}  // namespace

std::pair<Stage, Stage> StageBoundsTracker::push(bool airborne) {
  if (flight_ended_) return {Stage::kLanding, Stage::kLanding};
  if (airborne) {
    in_flight_ = true;
  } else if (in_flight_) {
    in_flight_ = false;
    flight_ended_ = true;
  }
  if (in_flight_) return {Stage::kInTheAir, Stage::kInTheAir};
  if (flight_ended_) return {Stage::kLanding, Stage::kLanding};
  return {Stage::kBeforeJumping, Stage::kJumping};
}

std::vector<std::pair<Stage, Stage>> stage_bounds_from_flags(const std::vector<bool>& airborne) {
  std::vector<std::pair<Stage, Stage>> bounds;
  bounds.reserve(airborne.size());
  StageBoundsTracker tracker;
  for (const bool air : airborne) bounds.push_back(tracker.push(air));
  return bounds;
}

// ---- OnlineForwardDecoder --------------------------------------------------

namespace {

/// Time-invariant transition potentials P(pose_t | pose_{t-1}, stage_t) ·
/// P(stage_t | stage_{t-1}) with the "stages never regress" gate. The
/// per-frame flag bounds gate states through the emission instead, so one
/// fixed matrix serves the whole stream. Rows are potentials, not
/// distributions — ForwardFilter::from_potentials renormalizes globally.
std::vector<std::vector<double>> transition_potentials(const PoseDbnClassifier& clf) {
  std::vector<std::vector<double>> weights(
      static_cast<std::size_t>(kPoseCount),
      std::vector<double>(static_cast<std::size_t>(kPoseCount), 0.0));
  for (int from = 0; from < kPoseCount; ++from) {
    const PoseId pf = static_cast<PoseId>(from);
    const Stage sf = stage_of(pf);
    for (int to = 0; to < kPoseCount; ++to) {
      const PoseId pt = static_cast<PoseId>(to);
      const Stage st = stage_of(pt);
      if (index_of(st) < index_of(sf)) continue;  // stages never regress
      weights[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] =
          clf.transition_prob(pt, pf, st) * clf.stage_prob(st, sf);
    }
  }
  return weights;
}

std::vector<double> pose_prior(const PoseDbnClassifier& clf) {
  std::vector<double> prior(static_cast<std::size_t>(kPoseCount));
  for (int p = 0; p < kPoseCount; ++p) {
    prior[static_cast<std::size_t>(p)] = clf.prior_prob(static_cast<PoseId>(p));
  }
  return prior;
}

}  // namespace

OnlineForwardDecoder::OnlineForwardDecoder(const PoseDbnClassifier& classifier)
    : classifier_(&classifier),
      filter_(bayes::ForwardFilter::from_potentials(transition_potentials(classifier),
                                                    pose_prior(classifier))) {}

FrameResult OnlineForwardDecoder::push(const std::vector<FeatureCandidate>& candidates,
                                       bool airborne) {
  const auto bounds = bounds_.push(airborne);
  return push_emission(frame_log_emission(*classifier_, candidates, airborne, bounds));
}

FrameResult OnlineForwardDecoder::push_emission(std::span<const double> log_emission) {
  // Frame 0 conditions the prior on evidence directly; later frames run a
  // full predict-update step.
  const std::vector<double>& belief =
      frames_ == 0 ? filter_.weight_log(log_emission) : filter_.step_log(log_emission);
  ++frames_;

  FrameResult r;
  const int map_state = filter_.map_state();
  r.pose = r.best_pose = static_cast<PoseId>(map_state);
  r.posterior = belief[static_cast<std::size_t>(map_state)];
  r.stage = stage_of(r.pose);
  return r;
}

void OnlineForwardDecoder::reset() {
  filter_.reset();
  bounds_.reset();
  frames_ = 0;
}

// ---- whole-clip decoding ---------------------------------------------------

std::vector<FrameResult> decode_sequence(const PoseDbnClassifier& classifier,
                                         const std::vector<std::vector<FeatureCandidate>>& clip,
                                         const std::vector<bool>& airborne,
                                         SequenceDecoder decoder) {
  if (airborne.size() != clip.size()) {
    throw std::invalid_argument("airborne flags must match clip length");
  }
  if (decoder == SequenceDecoder::kOnline) {
    return classifier.classify_sequence(clip, airborne);
  }
  const int T = static_cast<int>(clip.size());
  std::vector<FrameResult> out(static_cast<std::size_t>(T));
  if (T == 0) return out;

  if (decoder == SequenceDecoder::kFiltering) {
    OnlineForwardDecoder online(classifier);
    for (int t = 0; t < T; ++t) {
      out[static_cast<std::size_t>(t)] =
          online.push(clip[static_cast<std::size_t>(t)], airborne[static_cast<std::size_t>(t)]);
    }
    return out;
  }

  // Viterbi: max-product over the whole clip.
  const auto bounds = stage_bounds_from_flags(airborne);
  std::vector<std::vector<double>> emission;
  emission.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    emission.push_back(frame_log_emission(classifier, clip[static_cast<std::size_t>(t)],
                                          airborne[static_cast<std::size_t>(t)],
                                          bounds[static_cast<std::size_t>(t)]));
  }

  const auto log_transition = [&](int t, int from, int to) {
    const PoseId pf = static_cast<PoseId>(from);
    const PoseId pt = static_cast<PoseId>(to);
    const Stage sf = stage_of(pf);
    const Stage st = stage_of(pt);
    if (index_of(st) < index_of(sf)) return kNegInf;  // stages never regress
    if (!stage_in_bounds(st, bounds[static_cast<std::size_t>(t)])) return kNegInf;
    const double trans = classifier.transition_prob(pt, pf, st);
    const double stage = classifier.stage_prob(st, sf);
    return (trans > 0.0 && stage > 0.0) ? std::log(trans) + std::log(stage) : kNegInf;
  };

  const auto path = bayes::viterbi_decode(
      kPoseCount, T,
      [&](int s) {
        const double p = classifier.prior_prob(static_cast<PoseId>(s));
        return p > 0.0 ? std::log(p) : kNegInf;
      },
      log_transition,
      [&](int t, int s) {
        return emission[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
      });

  // Per-frame confidence: the forward (filtering) marginal of the path
  // state, reusing the emission table built above. Viterbi itself commits
  // to one path; reporting 1.0 would make downstream fault evidence
  // fake-certain.
  OnlineForwardDecoder online(classifier);
  for (int t = 0; t < T; ++t) {
    online.push_emission(emission[static_cast<std::size_t>(t)]);
    FrameResult& r = out[static_cast<std::size_t>(t)];
    r.pose = r.best_pose = static_cast<PoseId>(path[static_cast<std::size_t>(t)]);
    r.stage = stage_of(r.pose);
    r.posterior = online.belief()[static_cast<std::size_t>(path[static_cast<std::size_t>(t)])];
  }
  return out;
}

}  // namespace slj::pose
