#include "pose/decoders.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "bayes/forward.hpp"
#include "bayes/viterbi.hpp"

namespace slj::pose {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Max over candidates of the weighted observation log-score for a pose.
double best_emission(const PoseDbnClassifier& clf, PoseId pose,
                     const std::vector<FeatureCandidate>& candidates) {
  const ClassifierConfig& cfg = clf.config();
  double best = kNegInf;
  for (const FeatureCandidate& c : candidates) {
    const double s = cfg.likelihood_weight *
                     (clf.log_likelihood(pose, c) +
                      c.unexplained_areas * std::log(cfg.clutter_epsilon));
    best = std::max(best, s);
  }
  return best;
}

}  // namespace

std::vector<std::pair<Stage, Stage>> stage_bounds_from_flags(const std::vector<bool>& airborne) {
  std::vector<std::pair<Stage, Stage>> bounds;
  bounds.reserve(airborne.size());
  bool flight_seen = false;
  bool in_flight = false;
  for (const bool air : airborne) {
    if (air) {
      flight_seen = true;
      in_flight = true;
    } else if (in_flight) {
      in_flight = false;
    }
    if (in_flight) {
      bounds.emplace_back(Stage::kInTheAir, Stage::kInTheAir);
    } else if (flight_seen) {
      bounds.emplace_back(Stage::kLanding, Stage::kLanding);
    } else {
      bounds.emplace_back(Stage::kBeforeJumping, Stage::kJumping);
    }
  }
  return bounds;
}

std::vector<FrameResult> decode_sequence(const PoseDbnClassifier& classifier,
                                         const std::vector<std::vector<FeatureCandidate>>& clip,
                                         const std::vector<bool>& airborne,
                                         SequenceDecoder decoder) {
  if (airborne.size() != clip.size()) {
    throw std::invalid_argument("airborne flags must match clip length");
  }
  if (decoder == SequenceDecoder::kOnline) {
    return classifier.classify_sequence(clip, airborne);
  }
  const int T = static_cast<int>(clip.size());
  std::vector<FrameResult> out(static_cast<std::size_t>(T));
  if (T == 0) return out;

  const auto bounds = stage_bounds_from_flags(airborne);
  const auto in_bounds = [&](int t, PoseId p) {
    const Stage s = stage_of(p);
    return index_of(s) >= index_of(bounds[static_cast<std::size_t>(t)].first) &&
           index_of(s) <= index_of(bounds[static_cast<std::size_t>(t)].second);
  };

  // Per-frame emission per pose: observation score + airborne-flag CPT,
  // gated by the flag-implied stage bounds.
  std::vector<std::vector<double>> emission(
      static_cast<std::size_t>(T), std::vector<double>(static_cast<std::size_t>(kPoseCount)));
  for (int t = 0; t < T; ++t) {
    for (int p = 0; p < kPoseCount; ++p) {
      const PoseId pose = static_cast<PoseId>(p);
      double e;
      if (!in_bounds(t, pose)) {
        e = kNegInf;
      } else {
        const double ap = classifier.airborne_prob(airborne[static_cast<std::size_t>(t)],
                                                   stage_of(pose));
        e = (ap > 0.0 ? std::log(ap) : kNegInf);
        if (!clip[static_cast<std::size_t>(t)].empty()) {
          e += best_emission(classifier, pose, clip[static_cast<std::size_t>(t)]);
        }
      }
      emission[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)] = e;
    }
  }

  const auto log_transition = [&](int t, int from, int to) {
    const PoseId pf = static_cast<PoseId>(from);
    const PoseId pt = static_cast<PoseId>(to);
    const Stage sf = stage_of(pf);
    const Stage st = stage_of(pt);
    if (index_of(st) < index_of(sf)) return kNegInf;  // stages never regress
    if (!in_bounds(t, pt)) return kNegInf;
    const double trans = classifier.transition_prob(pt, pf, st);
    const double stage = classifier.stage_prob(st, sf);
    return (trans > 0.0 && stage > 0.0) ? std::log(trans) + std::log(stage) : kNegInf;
  };

  if (decoder == SequenceDecoder::kViterbi) {
    const auto path = bayes::viterbi_decode(
        kPoseCount, T,
        [&](int s) {
          const double p = classifier.prior_prob(static_cast<PoseId>(s));
          return p > 0.0 ? std::log(p) : kNegInf;
        },
        log_transition,
        [&](int t, int s) {
          return emission[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
        });
    for (int t = 0; t < T; ++t) {
      FrameResult& r = out[static_cast<std::size_t>(t)];
      r.pose = r.best_pose = static_cast<PoseId>(path[static_cast<std::size_t>(t)]);
      r.stage = stage_of(r.pose);
      r.posterior = 1.0;  // Viterbi commits to the path; no per-frame marginal
    }
    return out;
  }

  // Filtering: forward belief over poses. The transition matrix is rebuilt
  // per step because the flag bounds gate it; rows are renormalized.
  std::vector<double> belief(static_cast<std::size_t>(kPoseCount));
  for (int p = 0; p < kPoseCount; ++p) {
    belief[static_cast<std::size_t>(p)] = classifier.prior_prob(static_cast<PoseId>(p));
  }
  for (int t = 0; t < T; ++t) {
    std::vector<double> next(static_cast<std::size_t>(kPoseCount), 0.0);
    if (t == 0) {
      next = belief;
    } else {
      for (int from = 0; from < kPoseCount; ++from) {
        const double b = belief[static_cast<std::size_t>(from)];
        if (b <= 0.0) continue;
        for (int to = 0; to < kPoseCount; ++to) {
          const double lt = log_transition(t, from, to);
          if (lt != kNegInf) next[static_cast<std::size_t>(to)] += b * std::exp(lt);
        }
      }
    }
    // Weight by emission and renormalize.
    double total = 0.0;
    for (int p = 0; p < kPoseCount; ++p) {
      const double e = emission[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
      next[static_cast<std::size_t>(p)] *= e == kNegInf ? 0.0 : std::exp(e);
      total += next[static_cast<std::size_t>(p)];
    }
    if (total <= 0.0) {
      // Contradictory evidence: restart from the emission alone.
      total = 0.0;
      for (int p = 0; p < kPoseCount; ++p) {
        const double e = emission[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
        next[static_cast<std::size_t>(p)] = e == kNegInf ? 0.0 : std::exp(e);
        total += next[static_cast<std::size_t>(p)];
      }
    }
    if (total > 0.0) {
      for (double& v : next) v /= total;
    } else {
      for (double& v : next) v = 1.0 / kPoseCount;
    }
    belief = std::move(next);

    int map_state = 0;
    for (int p = 1; p < kPoseCount; ++p) {
      if (belief[static_cast<std::size_t>(p)] > belief[static_cast<std::size_t>(map_state)]) {
        map_state = p;
      }
    }
    FrameResult& r = out[static_cast<std::size_t>(t)];
    r.pose = r.best_pose = static_cast<PoseId>(map_state);
    r.posterior = belief[static_cast<std::size_t>(map_state)];
    r.stage = stage_of(r.pose);
  }
  return out;
}

}  // namespace slj::pose
