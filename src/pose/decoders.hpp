// Sequence decoders — extensions over the paper's frame-by-frame
// point-estimate rule (Sec. 6 asks for "refinement on the DBN"):
//
//  * filtering — full forward belief over poses instead of a committed
//    point estimate; the frame's answer is the MAP of the belief. The
//    forward recursion is online (OnlineForwardDecoder below), so the same
//    code serves whole-clip decoding and live frame-at-a-time streams.
//  * Viterbi  — offline max-product decoding of the whole clip, which can
//    revise early frames in the light of later evidence (the cure for the
//    paper's "a misclassified frame will still affect subsequent frames").
//    Per-frame confidence is the forward (filtering) marginal of the path
//    state, not a hard-coded certainty.
//
// All modes share the classifier's learned CPTs and the measured
// jumping-stage flag discipline (stages never regress; air/landing gated by
// the flag, and once flight has ended the stage is clamped to landing so a
// spurious late airborne flag cannot reopen it).
#pragma once

#include <span>
#include <vector>

#include "bayes/forward.hpp"
#include "pose/classifier.hpp"

namespace slj::pose {

enum class SequenceDecoder {
  kOnline,     ///< the paper's rule: per-frame argmax, point-estimate prev
  kFiltering,  ///< forward belief propagation, MAP per frame
  kViterbi,    ///< offline max-product over the whole clip
};

/// Incremental form of the flag-implied stage bounds: feed airborne flags
/// one frame at a time. Before flight the stage is at most "jumping";
/// during flight exactly "in the air"; once flight has ended, exactly
/// "landing" — permanently. A spurious airborne flag after landing (bounce,
/// segmentation noise) must not reopen "in the air": with the monotone
/// stage discipline that would make every state unreachable.
class StageBoundsTracker {
 public:
  /// Consumes the next frame's measured flag; returns its stage bounds.
  std::pair<Stage, Stage> push(bool airborne);

  void reset() { *this = StageBoundsTracker(); }

 private:
  bool in_flight_ = false;
  bool flight_ended_ = false;
};

/// Per-frame stage bounds for a whole flag sequence (StageBoundsTracker
/// replayed over it).
std::vector<std::pair<Stage, Stage>> stage_bounds_from_flags(const std::vector<bool>& airborne);

/// Streaming forward (filtering) decoder over the pose chain, built on
/// bayes::ForwardFilter: one push per frame updates the belief in O(poses²)
/// with O(poses) state — no re-decoding of the clip. Log-emissions go
/// through the filter's max-log shift, so long cluttered clips (heavily
/// negative emission scores) cannot underflow the belief to uniform.
/// decode_sequence(kFiltering) is exactly this decoder replayed over the
/// clip, so live streams and batch decoding agree frame for frame.
class OnlineForwardDecoder {
 public:
  explicit OnlineForwardDecoder(const PoseDbnClassifier& classifier);

  /// Consumes one frame (candidate labellings + measured flag) and returns
  /// the MAP pose of the updated belief, with its marginal as posterior.
  FrameResult push(const std::vector<FeatureCandidate>& candidates, bool airborne);

  /// Same update from a precomputed per-pose log-emission row (size
  /// kPoseCount, -inf = impossible; the caller owns the stage-bounds
  /// gating). Lets whole-clip decoders reuse an emission table they
  /// already built instead of recomputing it.
  FrameResult push_emission(std::span<const double> log_emission);

  /// Belief over poses after the last push (prior before any push).
  const std::vector<double>& belief() const { return filter_.belief(); }

  std::size_t frames_seen() const { return frames_; }

  /// Back to the prior / first-frame state.
  void reset();

 private:
  const PoseDbnClassifier* classifier_;
  bayes::ForwardFilter filter_;
  StageBoundsTracker bounds_;
  std::size_t frames_ = 0;
};

/// Decodes a whole clip with the chosen decoder. `candidates[t]` are frame
/// t's body-part labellings, `airborne[t]` the measured flag.
std::vector<FrameResult> decode_sequence(const PoseDbnClassifier& classifier,
                                         const std::vector<std::vector<FeatureCandidate>>& clip,
                                         const std::vector<bool>& airborne,
                                         SequenceDecoder decoder);

}  // namespace slj::pose
