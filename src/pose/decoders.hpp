// Whole-clip sequence decoders — extensions over the paper's frame-by-frame
// point-estimate rule (Sec. 6 asks for "refinement on the DBN"):
//
//  * filtering — full forward belief over poses instead of a committed
//    point estimate; the frame's answer is the MAP of the belief.
//  * Viterbi  — offline max-product decoding of the whole clip, which can
//    revise early frames in the light of later evidence (the cure for the
//    paper's "a misclassified frame will still affect subsequent frames").
//
// Both share the classifier's learned CPTs and the measured jumping-stage
// flag discipline (stages never regress; air/landing gated by the flag).
#pragma once

#include <vector>

#include "pose/classifier.hpp"

namespace slj::pose {

enum class SequenceDecoder {
  kOnline,     ///< the paper's rule: per-frame argmax, point-estimate prev
  kFiltering,  ///< forward belief propagation, MAP per frame
  kViterbi,    ///< offline max-product over the whole clip
};

/// Per-frame stage bounds implied by the measured airborne flags: before
/// flight the stage is at most "jumping"; during flight exactly "in the
/// air"; after flight exactly "landing".
std::vector<std::pair<Stage, Stage>> stage_bounds_from_flags(const std::vector<bool>& airborne);

/// Decodes a whole clip with the chosen decoder. `candidates[t]` are frame
/// t's body-part labellings, `airborne[t]` the measured flag.
std::vector<FrameResult> decode_sequence(const PoseDbnClassifier& classifier,
                                         const std::vector<std::vector<FeatureCandidate>>& clip,
                                         const std::vector<bool>& airborne,
                                         SequenceDecoder decoder);

}  // namespace slj::pose
