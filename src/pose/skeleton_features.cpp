#include "pose/skeleton_features.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace slj::pose {
namespace {

std::vector<int> alive_nodes(const skel::SkeletonGraph& graph) {
  std::vector<int> ids;
  for (const skel::Node& n : graph.nodes()) {
    if (n.alive) ids.push_back(n.id);
  }
  return ids;
}

/// Midpoint by arc length of a concatenated pixel path.
PointF arc_midpoint(const std::vector<PointI>& path) {
  if (path.empty()) return {};
  if (path.size() == 1) return to_f(path.front());
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) total += distance(path[i - 1], path[i]);
  const double half = total / 2.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const double seg = distance(path[i - 1], path[i]);
    if (acc + seg >= half) {
      const double t = seg > 0.0 ? (half - acc) / seg : 0.0;
      return to_f(path[i - 1]) + (to_f(path[i]) - to_f(path[i - 1])) * t;
    }
    acc += seg;
  }
  return to_f(path.back());
}

}  // namespace

int nearest_node(const skel::SkeletonGraph& graph, PointF p) {
  int best = -1;
  double best_d = std::numeric_limits<double>::max();
  for (const skel::Node& n : graph.nodes()) {
    if (!n.alive) continue;
    const double d = distance(to_f(n.pos), p);
    if (d < best_d) {
      best_d = d;
      best = n.id;
    }
  }
  return best;
}

TorsoEstimate estimate_torso(const skel::SkeletonGraph& graph, int head_node, int foot_node) {
  TorsoEstimate est;
  est.head_node = head_node;
  est.foot_node = foot_node;
  const PointF head_pos = to_f(graph.node(head_node).pos);
  const PointF foot_pos = to_f(graph.node(foot_node).pos);
  if (head_node == foot_node) {
    est.waist = head_pos;
    est.connected = true;
    return est;
  }

  // Dijkstra over node ids with edge lengths as weights.
  const std::size_t n = graph.nodes().size();
  std::vector<double> dist(n, std::numeric_limits<double>::max());
  std::vector<int> pred_edge(n, -1);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(head_node)] = 0.0;
  pq.push({0.0, head_node});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == foot_node) break;
    for (const int eid : graph.incident_edges(u)) {
      const skel::Edge& e = graph.edge(eid);
      const int v = e.a == u ? e.b : e.a;
      if (v == u) continue;  // self-loop
      const double nd = d + e.length;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        pred_edge[static_cast<std::size_t>(v)] = eid;
        pq.push({nd, v});
      }
    }
  }

  if (dist[static_cast<std::size_t>(foot_node)] == std::numeric_limits<double>::max()) {
    // Disconnected (possible right after junction-cluster removal on broken
    // skeletons): straight-line torso.
    est.connected = false;
    est.waist = (head_pos + foot_pos) / 2.0;
    est.path_length = distance(head_pos, foot_pos);
    return est;
  }

  // Reconstruct the pixel path foot -> head, then flip.
  std::vector<PointI> full_path;
  int cur = foot_node;
  while (cur != head_node) {
    const int eid = pred_edge[static_cast<std::size_t>(cur)];
    const skel::Edge& e = graph.edge(eid);
    std::vector<PointI> seg = e.path;
    // Orient the segment so it ends at `cur`'s representative side: the
    // stored path runs a -> b; we need ... -> cur.
    if (e.b != cur) std::reverse(seg.begin(), seg.end());
    // Prepend (we are walking backwards): collect then reverse at the end.
    if (!full_path.empty() && !seg.empty()) seg.pop_back();  // avoid duplicate joint pixel
    full_path.insert(full_path.end(), seg.rbegin(), seg.rend());
    cur = e.a == cur ? e.b : e.a;
  }
  std::reverse(full_path.begin(), full_path.end());  // now head -> foot

  est.connected = true;
  est.path_length = dist[static_cast<std::size_t>(foot_node)];
  est.waist = arc_midpoint(full_path);
  return est;
}

std::vector<FeatureCandidate> enumerate_candidates(const skel::SkeletonGraph& graph,
                                                   const AreaEncoder& encoder,
                                                   const CandidateOptions& options) {
  std::vector<FeatureCandidate> out;
  const std::vector<int> nodes = alive_nodes(graph);
  if (nodes.empty()) return out;

  // Paper rule: the lowest key point is the Foot.
  const int foot = *std::max_element(nodes.begin(), nodes.end(), [&](int a, int b) {
    const PointI pa = graph.node(a).pos;
    const PointI pb = graph.node(b).pos;
    return pa.y != pb.y ? pa.y < pb.y : pa.x < pb.x;
  });

  // Head candidates: topmost end nodes (falling back to any topmost node).
  std::vector<int> head_candidates;
  for (const int id : nodes) {
    if (id != foot && graph.node(id).type == skel::NodeType::kEnd) head_candidates.push_back(id);
  }
  if (head_candidates.empty()) {
    for (const int id : nodes) {
      if (id != foot) head_candidates.push_back(id);
    }
  }
  std::sort(head_candidates.begin(), head_candidates.end(), [&](int a, int b) {
    const PointI pa = graph.node(a).pos;
    const PointI pb = graph.node(b).pos;
    return pa.y != pb.y ? pa.y < pb.y : pa.x < pb.x;
  });
  if (static_cast<int>(head_candidates.size()) > options.max_head_candidates) {
    head_candidates.resize(static_cast<std::size_t>(options.max_head_candidates));
  }
  if (head_candidates.empty()) {
    // Single-node skeleton: everything collapses onto the foot.
    FeatureCandidate c;
    c.waist = to_f(graph.node(foot).pos);
    for (int i = 0; i < kPartCount; ++i) c.features.areas[static_cast<std::size_t>(i)] = encoder.missing_state();
    c.features[Part::kFoot] = encoder.area_of(to_f(graph.node(foot).pos), c.waist);
    c.nodes[static_cast<std::size_t>(Part::kFoot)] = foot;
    c.occupancy.assign(static_cast<std::size_t>(encoder.num_areas()), 0);
    c.occupancy[static_cast<std::size_t>(c.features[Part::kFoot])] = 1;
    out.push_back(c);
    return out;
  }

  for (const int head : head_candidates) {
    const TorsoEstimate torso = estimate_torso(graph, head, foot);
    const PointF waist = torso.waist;

    // Free points for Chest/Hand/Knee.
    std::vector<int> free;
    for (const int id : nodes) {
      if (id != head && id != foot) free.push_back(id);
    }
    std::sort(free.begin(), free.end(), [&](int a, int b) {
      const PointI pa = graph.node(a).pos;
      const PointI pb = graph.node(b).pos;
      return pa.y != pb.y ? pa.y < pb.y : pa.x < pb.x;
    });
    if (static_cast<int>(free.size()) > options.max_free_points) {
      free.resize(static_cast<std::size_t>(options.max_free_points));
    }

    // Occupied areas: every key point claims its area around this waist.
    std::set<int> occupied;
    for (const int id : nodes) {
      occupied.insert(encoder.area_of(to_f(graph.node(id).pos), waist));
    }

    // Geometric part assignment (pose-independent, mirroring how the
    // training snap behaves):
    //   Knee  — the free point most "between" waist and foot, below the
    //           waist: minimizes the detour d(waist,n)+d(n,foot)-d(waist,foot).
    //   Hand  — the free END point farthest from the torso axis (arms are
    //           the limb that sticks out); junctions only as fallback.
    //   Chest — the free point above the waist closest to the waist→head
    //           segment (typically the shoulder junction).
    std::vector<int> remaining = free;
    const PointF head_pos = to_f(graph.node(head).pos);
    const PointF foot_pos = to_f(graph.node(foot).pos);

    const auto take = [&](int id) {
      remaining.erase(std::remove(remaining.begin(), remaining.end(), id), remaining.end());
    };

    // Knee: prefer nodes lying essentially on the waist→foot chord (small
    // detour), and among those the one nearest the anatomical midpoint;
    // bend vertices from the piecewise-linear refinement land exactly here
    // when the leg is flexed.
    int knee = -1;
    {
      double best_mid = std::numeric_limits<double>::max();
      double best_detour = std::numeric_limits<double>::max();
      constexpr double kOnChord = 7.0;
      for (const int id : remaining) {
        const PointF p = to_f(graph.node(id).pos);
        if (p.y < waist.y - options.vertical_slack) continue;  // above waist
        const double detour =
            distance(waist, p) + distance(p, foot_pos) - distance(waist, foot_pos);
        const double mid = std::abs(distance(waist, p) - distance(p, foot_pos));
        if (detour < kOnChord) {
          if (best_detour >= kOnChord || mid < best_mid) {
            best_mid = mid;
            best_detour = detour;
            knee = id;
          }
        } else if (best_detour >= kOnChord && detour < best_detour) {
          best_detour = detour;
          knee = id;
        }
      }
    }
    if (knee >= 0) take(knee);

    // Hand: distance from the straight head-foot axis (torso proxy).
    const auto axis_distance = [&](PointF p) {
      const PointF axis = foot_pos - head_pos;
      const double len = norm(axis);
      if (len < 1e-9) return distance(p, head_pos);
      const double cross =
          axis.x * (p.y - head_pos.y) - axis.y * (p.x - head_pos.x);
      return std::abs(cross) / len;
    };
    int hand = -1;
    double hand_best = -1.0;
    for (const bool ends_only : {true, false}) {
      for (const int id : remaining) {
        if (ends_only && graph.node(id).type != skel::NodeType::kEnd) continue;
        const double d = axis_distance(to_f(graph.node(id).pos));
        if (d > hand_best) {
          hand_best = d;
          hand = id;
        }
      }
      if (hand >= 0) break;
    }
    if (hand >= 0) take(hand);

    // Chest.
    int chest = -1;
    double chest_best = std::numeric_limits<double>::max();
    for (const int id : remaining) {
      const PointF p = to_f(graph.node(id).pos);
      if (p.y > waist.y + options.vertical_slack) continue;  // below waist
      const double detour =
          distance(waist, p) + distance(p, head_pos) - distance(waist, head_pos);
      if (detour < chest_best) {
        chest_best = detour;
        chest = id;
      }
    }
    if (chest >= 0) take(chest);

    FeatureCandidate c;
    c.waist = waist;
    const auto set_part = [&](Part part, int id) {
      c.nodes[static_cast<std::size_t>(part)] = id;
      c.features[part] = id >= 0 ? encoder.area_of(to_f(graph.node(id).pos), waist)
                                 : encoder.missing_state();
    };
    set_part(Part::kHead, head);
    set_part(Part::kFoot, foot);
    set_part(Part::kKnee, knee);
    set_part(Part::kHand, hand);
    set_part(Part::kChest, chest);

    std::set<int> covered;
    for (int pi = 0; pi < kPartCount; ++pi) {
      if (c.nodes[static_cast<std::size_t>(pi)] >= 0) {
        covered.insert(c.features.areas[static_cast<std::size_t>(pi)]);
      }
    }
    c.unexplained_areas = 0;
    for (const int a : occupied) {
      if (!covered.contains(a)) ++c.unexplained_areas;
    }
    c.occupancy.assign(static_cast<std::size_t>(encoder.num_areas()), 0);
    for (const int a : occupied) {
      if (a >= 0 && a < encoder.num_areas()) c.occupancy[static_cast<std::size_t>(a)] = 1;
    }
    out.push_back(c);
  }
  return out;
}

std::optional<FeatureCandidate> features_from_truth(const skel::SkeletonGraph& graph,
                                                    const AreaEncoder& encoder,
                                                    const PartPoints& truth,
                                                    double max_snap_distance) {
  (void)max_snap_distance;  // kept for API stability; selection is candidate-based
  // The training features MUST come from the same geometric assignment the
  // classifier sees at test time, or the learned CPTs would model a
  // different distribution. The annotator's ground truth is used only to
  // pick *which* head hypothesis is the right one (and to label the pose).
  const std::vector<FeatureCandidate> candidates = enumerate_candidates(graph, encoder);
  if (candidates.empty()) return std::nullopt;
  double best_d = std::numeric_limits<double>::max();
  const FeatureCandidate* best = nullptr;
  for (const FeatureCandidate& c : candidates) {
    const int head = c.nodes[static_cast<std::size_t>(Part::kHead)];
    const double d = head >= 0 ? distance(to_f(graph.node(head).pos), truth.head)
                               : std::numeric_limits<double>::max() / 2.0;
    if (d < best_d) {
      best_d = d;
      best = &c;
    }
  }
  return *best;
}

}  // namespace slj::pose
