// The pose DBN classifier (paper Sec. 4, Fig. 7).
//
// Observation model — one Bayesian network per pose, exactly the paper's
// arrangement ("several BNs are used to decide if a certain event
// happens"): root Pose node, five hidden part nodes, eight observed area
// nodes. With the body-part assignment fixed (the candidate labelling from
// skeleton_features), the per-pose posterior factorizes into
//     P(pose) * prod_part P(area(part) | pose)
// which is what `log_likelihood` evaluates. `build_pose_network` exports
// the full Fig.-7(a) network for structure dumps and exact-inference tests.
//
// Temporal model — the DBN layer (Fig. 7b): the current pose is also
// conditioned on the previous frame's predicted pose and on the jumping
// stage flag; stage transitions are monotone (before → jumping → air →
// landing), which encodes the paper's "before-jumping and landing poses
// cannot occur consecutively".
//
// Class imbalance — every pose except the dominant "standing & hands swung
// forward" must clear an acceptance threshold Th_Pose; frames where nothing
// clears it come back as Unknown, and the *most recently recognized* pose
// (not Unknown) feeds the next frame, the rule the paper reports as "really
// useful".
#pragma once

#include <iosfwd>
#include <vector>

#include "bayes/network.hpp"
#include "pose/features.hpp"
#include "pose/pose_catalog.hpp"
#include "pose/skeleton_features.hpp"

namespace slj::pose {

enum class TemporalMode {
  kDbn,      ///< paper: previous pose + stage flag condition the current pose
  kStaticBn, ///< ablation: prior only, no temporal links (Fig. 7a alone)
};

struct ClassifierConfig {
  int num_areas = 8;
  double laplace_alpha = 0.5;
  /// Smoothing for the temporal CPTs (pose transition / stage). Larger
  /// values flatten the transition model, countering the self-transition
  /// stickiness a frame-labelled corpus induces.
  double transition_alpha = 0.5;
  /// Weight of the observation terms (part likelihood + clutter) relative
  /// to the temporal terms — the usual HMM observation-scaling knob.
  double likelihood_weight = 1.0;
  /// Weight of the area-occupancy evidence (the Fig.-7 observed Area
  /// nodes) inside the observation term. 0 disables it.
  double occupancy_weight = 0.3;
  /// Acceptance threshold on the normalized per-frame posterior; poses
  /// other than the dominant one must exceed it (paper's Th_Pose).
  double th_pose = 0.25;
  PoseId dominant_pose = PoseId::kStandHandsForward;
  TemporalMode temporal = TemporalMode::kDbn;
  /// P(a key point occupies an area no assigned part explains). Each
  /// unexplained occupied area multiplies a candidate's score by this, so
  /// labellings that ignore visible evidence lose to ones that explain it.
  double clutter_epsilon = 0.25;
  /// Stage discipline: the stage may stay or move forward (skips allowed,
  /// weighted by the learned stage CPT) but never backward — encoding the
  /// paper's "before-jumping and landing poses cannot occur consecutively".
  bool use_stage_constraint = true;
  /// Paper's Unknown rule: feed the most recently recognized pose forward
  /// instead of Unknown. Disable for the A5 ablation.
  bool carry_last_recognized = true;
};

/// Per-frame classification output.
struct FrameResult {
  PoseId pose = PoseId::kUnknown;   ///< kUnknown when nothing clears Th_Pose
  PoseId best_pose = PoseId::kUnknown;  ///< argmax before thresholding
  double posterior = 0.0;           ///< normalized posterior of best_pose
  Stage stage = Stage::kBeforeJumping;
  int candidate_index = -1;         ///< which body-part labelling won
};

class PoseDbnClassifier {
 public:
  explicit PoseDbnClassifier(ClassifierConfig config = {});

  const ClassifierConfig& config() const { return config_; }
  ClassifierConfig& mutable_config() { return config_; }
  const AreaEncoder& encoder() const { return encoder_; }

  // ---- training (Sec. 4.1) --------------------------------------------
  /// Accumulates one labelled frame. `prev` is the previous frame's label
  /// (kResetPose for the first frame of a clip). `airborne` is the measured
  /// jumping-stage flag for this frame: whether the silhouette's lowest
  /// point has left the calibrated ground line.
  void observe(PoseId pose, const FeatureCandidate& candidate, PoseId prev, Stage stage,
               bool airborne = false);

  /// Convenience: accumulates a whole labelled clip.
  void observe_sequence(const std::vector<std::pair<PoseId, FeatureCandidate>>& frames);

  /// Total labelled frames seen.
  double training_frames() const { return prior_.total_weight(); }

  // ---- qualitative training (structure) ---------------------------------
  /// Installs a TAN structure over the part features: `parents[i]` is the
  /// extra part-feature parent of part i (-1 = class parent only, the
  /// paper's hand-fixed structure). Must be called before any observe();
  /// resets the part CPTs. Learn the structure with
  /// bayes::learn_tan_structure over (pose, features) samples.
  void set_tan_structure(const std::vector<int>& parents);

  /// Current TAN parents (-1 everywhere for the naive structure).
  const std::vector<int>& tan_structure() const { return tan_parents_; }

  // ---- inference (Sec. 4.2) --------------------------------------------
  struct SequenceState {
    PoseId prev = kResetPose;      ///< pose fed into the DBN as "previous"
    Stage stage = Stage::kBeforeJumping;
    bool prev_known = true;        ///< false after Unknown when carry rule is off
    bool was_airborne = false;     ///< last frame's measured flag
    bool flight_seen = false;      ///< a measured-airborne frame has occurred
  };

  SequenceState initial_state() const { return {}; }

  /// Classifies one frame given its candidate body-part labellings, the
  /// measured jumping-stage flag ("airborne") and the running sequence
  /// state; updates the state.
  FrameResult classify(const std::vector<FeatureCandidate>& candidates, bool airborne,
                       SequenceState& state) const;

  /// Classifies a full clip (state handled internally); `airborne` must be
  /// per-frame, same length as `clip`.
  std::vector<FrameResult> classify_sequence(
      const std::vector<std::vector<FeatureCandidate>>& clip,
      const std::vector<bool>& airborne) const;

  // ---- model internals (exposed for benches / tests) -------------------
  /// log P(part features | pose) under the per-pose observation BN (the
  /// hidden part nodes of Fig. 7a).
  double log_likelihood(PoseId pose, const FeatureVector& features) const;

  /// log P(part features, area occupancy | pose): the full Fig.-7(a)
  /// evidence, adding the eight observed Area nodes.
  double log_likelihood(PoseId pose, const FeatureCandidate& candidate) const;

  /// P(pose_t | pose_{t-1}, stage_t) from the learned transition CPT.
  double transition_prob(PoseId pose, PoseId prev, Stage stage) const;

  /// Learned marginal prior P(pose).
  double prior_prob(PoseId pose) const;

  /// Full Fig.-7(a) network for `pose`: root + 5 hidden parts + 8 (or n)
  /// observed area nodes with deterministic occupancy CPDs.
  bayes::Network build_pose_network(PoseId pose) const;

  /// Fig.-7(b) DBN slice structure (PreviousPose, Stage, Pose, parts, areas).
  bayes::Network build_dbn_slice() const;

  // ---- persistence ------------------------------------------------------
  /// Writes the trained model (config + all CPT counts) as versioned text.
  void save(std::ostream& out) const;

  /// Reads a model written by save(). Throws std::runtime_error on
  /// malformed input or version mismatch.
  static PoseDbnClassifier load(std::istream& in);

 private:
  double pose_score(PoseId pose, const FeatureCandidate& candidate, bool airborne,
                    const SequenceState& state, Stage stage_cap) const;

 public:
  /// P(stage_t | stage_{t-1}) from the learned stage CPT.
  double stage_prob(Stage to, Stage from) const;

  /// P(airborne flag | stage) from the learned flag CPT.
  double airborne_prob(bool airborne, Stage stage) const;

 private:

  ClassifierConfig config_;
  AreaEncoder encoder_;
  std::vector<int> tan_parents_;   ///< extra feature parent per part (-1 = none)
  bayes::TabularCpd prior_;        ///< P(pose), no parents
  /// Per part: P(area | pose) or, with TAN, P(area | pose, parent area).
  std::vector<bayes::TabularCpd> part_cpts_;
  std::vector<bayes::TabularCpd> area_cpts_;  ///< per area: P(occupied | pose)
  bayes::TabularCpd transition_;   ///< P(pose_t | pose_{t-1}, stage_t)
  bayes::TabularCpd stage_cpt_;    ///< P(stage_t | stage_{t-1})
  bayes::TabularCpd airborne_cpt_; ///< P(airborne flag | stage_t)
};

}  // namespace slj::pose
