#include "pose/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace slj::pose {
namespace {

constexpr double kLogFloor = -1e9;

}  // namespace

PoseDbnClassifier::PoseDbnClassifier(ClassifierConfig config)
    : config_(config),
      encoder_(config.num_areas),
      tan_parents_(static_cast<std::size_t>(kPartCount), -1),
      prior_(kPoseCount, {}, config.laplace_alpha),
      transition_(kPoseCount, {kPoseCount, kStageCount}, config.transition_alpha),
      stage_cpt_(kStageCount, {kStageCount}, config.transition_alpha),
      airborne_cpt_(2, {kStageCount}, config.laplace_alpha) {
  part_cpts_.reserve(kPartCount);
  for (int i = 0; i < kPartCount; ++i) {
    part_cpts_.emplace_back(encoder_.state_count(), std::vector<int>{kPoseCount},
                            config.laplace_alpha);
  }
  area_cpts_.reserve(static_cast<std::size_t>(encoder_.num_areas()));
  for (int k = 0; k < encoder_.num_areas(); ++k) {
    area_cpts_.emplace_back(2, std::vector<int>{kPoseCount}, config.laplace_alpha);
  }
}

void PoseDbnClassifier::set_tan_structure(const std::vector<int>& parents) {
  if (parents.size() != static_cast<std::size_t>(kPartCount)) {
    throw std::invalid_argument("TAN structure needs one parent entry per part");
  }
  if (training_frames() > 0.0) {
    throw std::logic_error("set_tan_structure must precede training");
  }
  for (std::size_t i = 0; i < parents.size(); ++i) {
    const int p = parents[i];
    if (p == static_cast<int>(i) || p < -1 || p >= kPartCount) {
      throw std::invalid_argument("invalid TAN parent");
    }
  }
  tan_parents_ = parents;
  part_cpts_.clear();
  for (int i = 0; i < kPartCount; ++i) {
    std::vector<int> cards{kPoseCount};
    if (tan_parents_[static_cast<std::size_t>(i)] >= 0) cards.push_back(encoder_.state_count());
    part_cpts_.emplace_back(encoder_.state_count(), std::move(cards), config_.laplace_alpha);
  }
}

void PoseDbnClassifier::observe(PoseId pose, const FeatureCandidate& candidate, PoseId prev,
                                Stage stage, bool airborne) {
  const int p = index_of(pose);
  const int pv = index_of(prev);
  const int st = index_of(stage);
  prior_.observe(p, {});
  const int parents[1] = {p};
  for (int i = 0; i < kPartCount; ++i) {
    const int tp = tan_parents_[static_cast<std::size_t>(i)];
    if (tp < 0) {
      part_cpts_[static_cast<std::size_t>(i)].observe(
          candidate.features.areas[static_cast<std::size_t>(i)], parents);
    } else {
      const int tan_parents[2] = {p, candidate.features.areas[static_cast<std::size_t>(tp)]};
      part_cpts_[static_cast<std::size_t>(i)].observe(
          candidate.features.areas[static_cast<std::size_t>(i)], tan_parents);
    }
  }
  for (int k = 0; k < encoder_.num_areas(); ++k) {
    const int occupied =
        static_cast<std::size_t>(k) < candidate.occupancy.size() && candidate.occupancy[static_cast<std::size_t>(k)]
            ? 1
            : 0;
    area_cpts_[static_cast<std::size_t>(k)].observe(occupied, parents);
  }
  const int tparents[2] = {pv, st};
  transition_.observe(p, tparents);
  const int sparents[1] = {index_of(stage_of(prev))};
  stage_cpt_.observe(st, sparents);
  const int aparents[1] = {st};
  airborne_cpt_.observe(airborne ? 1 : 0, aparents);
}

void PoseDbnClassifier::observe_sequence(
    const std::vector<std::pair<PoseId, FeatureCandidate>>& frames) {
  PoseId prev = kResetPose;
  Stage stage = Stage::kBeforeJumping;
  for (const auto& [pose, candidate] : frames) {
    observe(pose, candidate, prev, stage);
    prev = pose;
    stage = stage_of(pose);
  }
}

double PoseDbnClassifier::log_likelihood(PoseId pose, const FeatureVector& features) const {
  const int parents[1] = {index_of(pose)};
  double ll = 0.0;
  for (int i = 0; i < kPartCount; ++i) {
    const int tp = tan_parents_[static_cast<std::size_t>(i)];
    double p;
    if (tp < 0) {
      p = part_cpts_[static_cast<std::size_t>(i)].prob(
          features.areas[static_cast<std::size_t>(i)], parents);
    } else {
      const int tan_parents[2] = {index_of(pose),
                                  features.areas[static_cast<std::size_t>(tp)]};
      p = part_cpts_[static_cast<std::size_t>(i)].prob(
          features.areas[static_cast<std::size_t>(i)], tan_parents);
    }
    ll += p > 0.0 ? std::log(p) : kLogFloor;
  }
  return ll;
}

double PoseDbnClassifier::log_likelihood(PoseId pose, const FeatureCandidate& candidate) const {
  const int parents[1] = {index_of(pose)};
  double ll = log_likelihood(pose, candidate.features);
  if (config_.occupancy_weight > 0.0) {
    double occ_ll = 0.0;
    for (int k = 0; k < encoder_.num_areas(); ++k) {
      const int occupied = static_cast<std::size_t>(k) < candidate.occupancy.size() &&
                                   candidate.occupancy[static_cast<std::size_t>(k)]
                               ? 1
                               : 0;
      const double p = area_cpts_[static_cast<std::size_t>(k)].prob(occupied, parents);
      occ_ll += p > 0.0 ? std::log(p) : kLogFloor;
    }
    ll += config_.occupancy_weight * occ_ll;
  }
  return ll;
}

double PoseDbnClassifier::transition_prob(PoseId pose, PoseId prev, Stage stage) const {
  const int parents[2] = {index_of(prev), index_of(stage)};
  return transition_.prob(index_of(pose), parents);
}

double PoseDbnClassifier::prior_prob(PoseId pose) const {
  return prior_.prob(index_of(pose), {});
}

double PoseDbnClassifier::stage_prob(Stage to, Stage from) const {
  const int parents[1] = {index_of(from)};
  return stage_cpt_.prob(index_of(to), parents);
}

double PoseDbnClassifier::airborne_prob(bool airborne, Stage stage) const {
  const int parents[1] = {index_of(stage)};
  return airborne_cpt_.prob(airborne ? 1 : 0, parents);
}

double PoseDbnClassifier::pose_score(PoseId pose, const FeatureCandidate& candidate,
                                     bool airborne, const SequenceState& state,
                                     Stage stage_cap) const {
  const Stage pose_stage = stage_of(pose);
  double score = 0.0;
  if (config_.use_stage_constraint && config_.temporal == TemporalMode::kDbn) {
    // Stages never regress, and the measured flight flag gates the upper
    // stages: "in the air" opens only while airborne and "landing" only
    // after flight — a single bad take-off prediction can no longer drag
    // the whole clip into landing.
    if (index_of(pose_stage) < index_of(state.stage)) return kLogFloor;
    if (index_of(pose_stage) > index_of(stage_cap)) return kLogFloor;
    const double sp = stage_prob(pose_stage, state.stage);
    score += sp > 0.0 ? std::log(sp) : kLogFloor;
  }
  // The measured jumping-stage flag: P(airborne | stage of this pose).
  const double ap = airborne_prob(airborne, pose_stage);
  score += ap > 0.0 ? std::log(ap) : kLogFloor;
  double temporal;
  if (config_.temporal == TemporalMode::kStaticBn || !state.prev_known) {
    temporal = prior_prob(pose);
  } else {
    temporal = transition_prob(pose, state.prev, pose_stage);
  }
  score += temporal > 0.0 ? std::log(temporal) : kLogFloor;
  score += config_.likelihood_weight *
           (log_likelihood(pose, candidate) +
            candidate.unexplained_areas * std::log(config_.clutter_epsilon));
  return score;
}

FrameResult PoseDbnClassifier::classify(const std::vector<FeatureCandidate>& candidates,
                                        bool airborne, SequenceState& state) const {
  // Advance the jumping-stage flag from the measured observable first: the
  // first airborne frame starts "in the air", the first grounded frame
  // after flight starts "landing". Stages never regress, and the flag also
  // CAPS the stage: air/landing poses are unreachable until flight has
  // actually been observed.
  Stage stage_cap = Stage::kLanding;
  if (config_.use_stage_constraint && config_.temporal == TemporalMode::kDbn) {
    if (airborne) {
      state.flight_seen = true;
      if (index_of(state.stage) < index_of(Stage::kInTheAir)) state.stage = Stage::kInTheAir;
    } else if (state.was_airborne && state.stage == Stage::kInTheAir) {
      state.stage = Stage::kLanding;
    }
    if (airborne) {
      stage_cap = Stage::kInTheAir;
    } else if (!state.flight_seen) {
      stage_cap = Stage::kJumping;
    }
  }
  state.was_airborne = airborne;

  FrameResult result;
  result.stage = state.stage;
  if (candidates.empty()) {
    // No skeleton evidence at all: Unknown frame.
    if (!config_.carry_last_recognized) state.prev_known = false;
    return result;
  }

  double best_score = -std::numeric_limits<double>::infinity();
  int best_candidate = -1;
  PoseId best_pose = PoseId::kUnknown;
  std::vector<double> best_posteriors;

  std::vector<double> scores(static_cast<std::size_t>(kPoseCount));
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    double cand_best = -std::numeric_limits<double>::infinity();
    int cand_best_pose = -1;
    for (int p = 0; p < kPoseCount; ++p) {
      const double s =
          pose_score(static_cast<PoseId>(p), candidates[ci], airborne, state, stage_cap);
      scores[static_cast<std::size_t>(p)] = s;
      if (s > cand_best) {
        cand_best = s;
        cand_best_pose = p;
      }
    }
    if (cand_best <= kLogFloor || cand_best_pose < 0) continue;
    if (cand_best > best_score) {
      best_score = cand_best;
      best_candidate = static_cast<int>(ci);
      best_pose = static_cast<PoseId>(cand_best_pose);
      // Normalized posterior over poses for this candidate (log-sum-exp).
      double total = 0.0;
      for (const double s : scores) total += std::exp(s - cand_best);
      best_posteriors.resize(scores.size());
      for (std::size_t p = 0; p < scores.size(); ++p) {
        best_posteriors[p] = std::exp(scores[p] - cand_best) / total;
      }
    }
  }

  result.best_pose = best_pose;
  result.candidate_index = best_candidate;

  // The paper's Th_Pose rule: the dominant pose would otherwise "dominate
  // the decision making", so any non-dominant pose whose posterior clears
  // Th_Pose is said to appear and is preferred over the dominant pose.
  PoseId accepted_pose = PoseId::kUnknown;
  double accepted_posterior = 0.0;
  if (best_pose != PoseId::kUnknown) {
    const int dom = index_of(config_.dominant_pose);
    int best_clearing = -1;
    for (int p = 0; p < kPoseCount; ++p) {
      if (p == dom) continue;
      const double post = best_posteriors[static_cast<std::size_t>(p)];
      if (post > config_.th_pose &&
          (best_clearing < 0 || post > best_posteriors[static_cast<std::size_t>(best_clearing)])) {
        best_clearing = p;
      }
    }
    if (best_clearing >= 0) {
      accepted_pose = static_cast<PoseId>(best_clearing);
      accepted_posterior = best_posteriors[static_cast<std::size_t>(best_clearing)];
    } else if (best_pose == config_.dominant_pose) {
      accepted_pose = best_pose;
      accepted_posterior = best_posteriors[static_cast<std::size_t>(dom)];
    }
  }
  result.posterior = accepted_posterior;

  const bool accepted = accepted_pose != PoseId::kUnknown;
  if (accepted) result.best_pose = best_pose;  // keep raw argmax for diagnostics
  best_pose = accepted_pose;

  if (accepted) {
    result.pose = best_pose;
    result.stage = stage_of(best_pose);
    state.prev = best_pose;
    state.prev_known = true;
    state.stage = result.stage;
  } else {
    result.pose = PoseId::kUnknown;
    // Paper's rule: keep the most recently recognized pose as "previous";
    // the ablation switch instead marks the previous pose as unknown.
    if (!config_.carry_last_recognized) state.prev_known = false;
  }
  return result;
}

std::vector<FrameResult> PoseDbnClassifier::classify_sequence(
    const std::vector<std::vector<FeatureCandidate>>& clip,
    const std::vector<bool>& airborne) const {
  if (airborne.size() != clip.size()) {
    throw std::invalid_argument("airborne flags must match clip length");
  }
  SequenceState state = initial_state();
  std::vector<FrameResult> out;
  out.reserve(clip.size());
  for (std::size_t i = 0; i < clip.size(); ++i) {
    out.push_back(classify(clip[i], airborne[i], state));
  }
  return out;
}

namespace {

/// P(area-state | pose) per part, marginalizing over any TAN parent chain
/// (parents form a tree, so plain recursion terminates).
std::vector<double> part_marginal(const std::vector<bayes::TabularCpd>& cpts,
                                  const std::vector<int>& tan_parents, int part, int pose,
                                  int states) {
  const int tp = tan_parents[static_cast<std::size_t>(part)];
  std::vector<double> out(static_cast<std::size_t>(states), 0.0);
  if (tp < 0) {
    const int parents[1] = {pose};
    for (int s = 0; s < states; ++s) {
      out[static_cast<std::size_t>(s)] = cpts[static_cast<std::size_t>(part)].prob(s, parents);
    }
    return out;
  }
  const std::vector<double> parent_marginal =
      part_marginal(cpts, tan_parents, tp, pose, states);
  for (int ps = 0; ps < states; ++ps) {
    const int parents[2] = {pose, ps};
    const double w = parent_marginal[static_cast<std::size_t>(ps)];
    if (w <= 0.0) continue;
    for (int s = 0; s < states; ++s) {
      out[static_cast<std::size_t>(s)] +=
          w * cpts[static_cast<std::size_t>(part)].prob(s, parents);
    }
  }
  return out;
}

}  // namespace

bayes::Network PoseDbnClassifier::build_pose_network(PoseId pose) const {
  bayes::Network net;
  // Root: binary "is this the pose" node with prior from the learned
  // marginal.
  const double p_pose = prior_prob(pose);
  auto root_cpd = std::make_shared<bayes::FixedCpd>(
      2, std::vector<int>{}, std::vector<double>{1.0 - p_pose, p_pose});
  const int root = net.add_node("Pose:" + std::string(pose_name(pose)), 2, {}, root_cpd);

  // Hidden part nodes: P(area-state | root). Row 0 ("other poses") averages
  // the remaining poses' CPTs weighted by their priors.
  const int states = encoder_.state_count();
  std::vector<int> part_ids;
  for (int i = 0; i < kPartCount; ++i) {
    std::vector<double> table(static_cast<std::size_t>(2 * states), 0.0);
    double other_total = 0.0;
    std::vector<double> other(static_cast<std::size_t>(states), 0.0);
    for (int q = 0; q < kPoseCount; ++q) {
      if (q == index_of(pose)) continue;
      const double w = prior_prob(static_cast<PoseId>(q));
      other_total += w;
      const std::vector<double> marg = part_marginal(part_cpts_, tan_parents_, i, q, states);
      for (int s = 0; s < states; ++s) {
        other[static_cast<std::size_t>(s)] += w * marg[static_cast<std::size_t>(s)];
      }
    }
    const std::vector<double> self =
        part_marginal(part_cpts_, tan_parents_, i, index_of(pose), states);
    for (int s = 0; s < states; ++s) {
      table[static_cast<std::size_t>(s)] =
          other_total > 0.0 ? other[static_cast<std::size_t>(s)] / other_total : 1.0 / states;
      table[static_cast<std::size_t>(states + s)] = self[static_cast<std::size_t>(s)];
    }
    auto cpd = std::make_shared<bayes::FixedCpd>(states, std::vector<int>{2}, std::move(table));
    part_ids.push_back(net.add_node(std::string(part_name(static_cast<Part>(i))), states,
                                    {root}, std::move(cpd)));
  }

  // Observed area nodes: Area_k = 1 iff some part's state equals k.
  std::vector<int> part_cards(static_cast<std::size_t>(kPartCount), states);
  for (int k = 0; k < encoder_.num_areas(); ++k) {
    auto fn = [k](std::span<const int> parts) {
      for (const int s : parts) {
        if (s == k) return 1;
      }
      return 0;
    };
    auto cpd = std::make_shared<bayes::DeterministicCpd>(2, part_cards, fn);
    net.add_node("Area " + encoder_.state_label(k), 2, part_ids, std::move(cpd));
  }
  return net;
}

bayes::Network PoseDbnClassifier::build_dbn_slice() const {
  bayes::Network net;
  // Previous pose: learned marginal as its prior.
  std::vector<double> prior_table(static_cast<std::size_t>(kPoseCount));
  for (int p = 0; p < kPoseCount; ++p) {
    prior_table[static_cast<std::size_t>(p)] = prior_prob(static_cast<PoseId>(p));
  }
  // Normalize defensively (Laplace smoothing keeps it near 1 already).
  double sum = 0.0;
  for (const double v : prior_table) sum += v;
  for (double& v : prior_table) v /= sum;
  auto prev_cpd =
      std::make_shared<bayes::FixedCpd>(kPoseCount, std::vector<int>{}, prior_table);
  const int prev = net.add_node("PreviousPose", kPoseCount, {}, std::move(prev_cpd));

  // Stage flag conditioned on the previous pose's stage.
  std::vector<double> stage_table(static_cast<std::size_t>(kPoseCount * kStageCount));
  for (int p = 0; p < kPoseCount; ++p) {
    const int sp[1] = {index_of(stage_of(static_cast<PoseId>(p)))};
    for (int s = 0; s < kStageCount; ++s) {
      stage_table[static_cast<std::size_t>(p * kStageCount + s)] = stage_cpt_.prob(s, sp);
    }
  }
  auto stage_cpd = std::make_shared<bayes::FixedCpd>(kStageCount, std::vector<int>{kPoseCount},
                                                     std::move(stage_table));
  const int stage = net.add_node("JumpingStage", kStageCount, {prev}, std::move(stage_cpd));

  // Current pose conditioned on previous pose and stage (the learned
  // transition CPT, exported as a fixed table).
  std::vector<double> trans_table(
      static_cast<std::size_t>(kPoseCount) * kStageCount * kPoseCount);
  for (int pv = 0; pv < kPoseCount; ++pv) {
    for (int s = 0; s < kStageCount; ++s) {
      const int parents[2] = {pv, s};
      for (int p = 0; p < kPoseCount; ++p) {
        trans_table[(static_cast<std::size_t>(pv) * kStageCount + static_cast<std::size_t>(s)) *
                        kPoseCount +
                    static_cast<std::size_t>(p)] = transition_.prob(p, parents);
      }
    }
  }
  auto pose_cpd = std::make_shared<bayes::FixedCpd>(
      kPoseCount, std::vector<int>{kPoseCount, kStageCount}, std::move(trans_table));
  const int pose_node =
      net.add_node("Pose", kPoseCount, {prev, stage}, std::move(pose_cpd));

  // Part nodes hanging off the current pose.
  const int states = encoder_.state_count();
  std::vector<int> part_ids;
  for (int i = 0; i < kPartCount; ++i) {
    std::vector<double> table(static_cast<std::size_t>(kPoseCount * states));
    for (int p = 0; p < kPoseCount; ++p) {
      const std::vector<double> marg = part_marginal(part_cpts_, tan_parents_, i, p, states);
      for (int s = 0; s < states; ++s) {
        table[static_cast<std::size_t>(p * states + s)] = marg[static_cast<std::size_t>(s)];
      }
    }
    auto cpd = std::make_shared<bayes::FixedCpd>(states, std::vector<int>{kPoseCount},
                                                 std::move(table));
    part_ids.push_back(net.add_node(std::string(part_name(static_cast<Part>(i))), states,
                                    {pose_node}, std::move(cpd)));
  }

  std::vector<int> part_cards(static_cast<std::size_t>(kPartCount), states);
  for (int k = 0; k < encoder_.num_areas(); ++k) {
    auto fn = [k](std::span<const int> parts) {
      for (const int s : parts) {
        if (s == k) return 1;
      }
      return 0;
    };
    auto cpd = std::make_shared<bayes::DeterministicCpd>(2, part_cards, fn);
    net.add_node("Area " + encoder_.state_label(k), 2, part_ids, std::move(cpd));
  }
  return net;
}

}  // namespace slj::pose

namespace slj::pose {
namespace {

constexpr const char* kModelMagic = "slj-pose-model";
constexpr int kModelVersion = 1;

void write_counts(std::ostream& out, const char* tag, const bayes::TabularCpd& cpd) {
  out << tag << ' ' << cpd.raw_counts().size();
  // max_digits10 keeps the round-trip exact for weighted counts.
  const auto old_precision = out.precision(17);
  for (const double c : cpd.raw_counts()) out << ' ' << c;
  out.precision(old_precision);
  out << '\n';
}

void read_counts(std::istream& in, const char* tag, bayes::TabularCpd& cpd) {
  std::string seen;
  std::size_t n = 0;
  if (!(in >> seen >> n) || seen != tag) {
    throw std::runtime_error("model load: expected section '" + std::string(tag) + "'");
  }
  if (n != cpd.raw_counts().size()) {
    throw std::runtime_error("model load: section '" + std::string(tag) + "' size mismatch");
  }
  std::vector<double> counts(n);
  for (double& c : counts) {
    if (!(in >> c)) throw std::runtime_error("model load: truncated counts");
  }
  cpd.load_counts(std::move(counts));
}

}  // namespace

void PoseDbnClassifier::save(std::ostream& out) const {
  out << kModelMagic << ' ' << kModelVersion << '\n';
  const auto old_precision = out.precision(17);
  out << "config " << config_.num_areas << ' ' << config_.laplace_alpha << ' '
      << config_.transition_alpha << ' ' << config_.likelihood_weight << ' '
      << config_.occupancy_weight << ' ' << config_.th_pose << ' '
      << index_of(config_.dominant_pose) << ' ' << static_cast<int>(config_.temporal) << ' '
      << config_.clutter_epsilon << ' ' << (config_.use_stage_constraint ? 1 : 0) << ' '
      << (config_.carry_last_recognized ? 1 : 0) << '\n';
  out.precision(old_precision);
  out << "tan";
  for (const int p : tan_parents_) out << ' ' << p;
  out << '\n';
  write_counts(out, "prior", prior_);
  for (int i = 0; i < kPartCount; ++i) {
    write_counts(out, "part", part_cpts_[static_cast<std::size_t>(i)]);
  }
  for (int k = 0; k < encoder_.num_areas(); ++k) {
    write_counts(out, "area", area_cpts_[static_cast<std::size_t>(k)]);
  }
  write_counts(out, "transition", transition_);
  write_counts(out, "stage", stage_cpt_);
  write_counts(out, "airborne", airborne_cpt_);
  if (!out) throw std::runtime_error("model save: write failure");
}

PoseDbnClassifier PoseDbnClassifier::load(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kModelMagic) {
    throw std::runtime_error("model load: not a slj-pose-model file");
  }
  if (version != kModelVersion) {
    throw std::runtime_error("model load: unsupported version " + std::to_string(version));
  }
  std::string tag;
  ClassifierConfig cfg;
  int dominant = 0, temporal = 0, stage_constraint = 1, carry = 1;
  if (!(in >> tag >> cfg.num_areas >> cfg.laplace_alpha >> cfg.transition_alpha >>
        cfg.likelihood_weight >> cfg.occupancy_weight >> cfg.th_pose >> dominant >> temporal >>
        cfg.clutter_epsilon >> stage_constraint >> carry) ||
      tag != "config") {
    throw std::runtime_error("model load: malformed config line");
  }
  cfg.dominant_pose = pose_from_index(dominant);
  cfg.temporal = static_cast<TemporalMode>(temporal);
  cfg.use_stage_constraint = stage_constraint != 0;
  cfg.carry_last_recognized = carry != 0;

  PoseDbnClassifier clf(cfg);
  std::vector<int> tan(static_cast<std::size_t>(kPartCount), -1);
  if (!(in >> tag) || tag != "tan") {
    throw std::runtime_error("model load: missing tan line");
  }
  for (int& p : tan) {
    if (!(in >> p)) throw std::runtime_error("model load: truncated tan line");
  }
  clf.set_tan_structure(tan);
  read_counts(in, "prior", clf.prior_);
  for (int i = 0; i < kPartCount; ++i) {
    read_counts(in, "part", clf.part_cpts_[static_cast<std::size_t>(i)]);
  }
  for (int k = 0; k < clf.encoder_.num_areas(); ++k) {
    read_counts(in, "area", clf.area_cpts_[static_cast<std::size_t>(k)]);
  }
  read_counts(in, "transition", clf.transition_);
  read_counts(in, "stage", clf.stage_cpt_);
  read_counts(in, "airborne", clf.airborne_cpt_);
  return clf;
}

}  // namespace slj::pose
