#include "pose/features.hpp"

#include <cmath>
#include <stdexcept>

namespace slj::pose {

std::string_view part_name(Part p) {
  switch (p) {
    case Part::kHead: return "Head";
    case Part::kChest: return "Chest";
    case Part::kHand: return "Hand";
    case Part::kKnee: return "Knee";
    case Part::kFoot: return "Foot";
  }
  return "?";
}

AreaEncoder::AreaEncoder(int num_areas) : num_areas_(num_areas) {
  if (num_areas < 2) throw std::invalid_argument("need at least 2 areas");
}

int AreaEncoder::area_of(PointF p, PointF waist) const {
  const double dx = p.x - waist.x;
  const double dy = waist.y - p.y;  // flip: image y grows down, body y up
  if (dx == 0.0 && dy == 0.0) return 0;
  const double two_pi = 2.0 * 3.14159265358979323846;
  const double sector = two_pi / num_areas_;
  // Offset by half a sector so cardinal directions (straight up, straight
  // ahead, ...) fall in the *middle* of a sector rather than on a boundary;
  // otherwise pixel noise around vertical limbs flips the code constantly.
  double angle = std::atan2(dy, dx) + sector / 2.0;
  while (angle < 0.0) angle += two_pi;
  while (angle >= two_pi) angle -= two_pi;
  int area = static_cast<int>(angle / sector);
  if (area >= num_areas_) area = num_areas_ - 1;
  return area;
}

std::string AreaEncoder::state_label(int state) const {
  if (state == missing_state()) return "missing";
  static constexpr const char* kRoman[] = {"I",   "II",   "III", "IV",  "V",   "VI",
                                           "VII", "VIII", "IX",  "X",   "XI",  "XII",
                                           "XIII", "XIV",  "XV",  "XVI"};
  if (state >= 0 && state < static_cast<int>(std::size(kRoman)) && state < num_areas_) {
    return kRoman[state];
  }
  return "area" + std::to_string(state);
}

PointF PartPoints::get(Part p) const {
  switch (p) {
    case Part::kHead: return head;
    case Part::kChest: return chest;
    case Part::kHand: return hand;
    case Part::kKnee: return knee;
    case Part::kFoot: return foot;
  }
  return {};
}

FeatureVector encode_parts(const PartPoints& parts, PointF waist, const AreaEncoder& encoder) {
  FeatureVector f;
  for (int i = 0; i < kPartCount; ++i) {
    const Part p = static_cast<Part>(i);
    f[p] = encoder.area_of(parts.get(p), waist);
  }
  return f;
}

std::string to_string(const FeatureVector& f, const AreaEncoder& encoder) {
  std::string out;
  for (int i = 0; i < kPartCount; ++i) {
    const Part p = static_cast<Part>(i);
    if (i > 0) out += ' ';
    out += std::string(part_name(p)) + "=" + encoder.state_label(f[p]);
  }
  return out;
}

}  // namespace slj::pose
