#include "ingest/frame_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace slj::ingest {

const char* policy_name(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
    case BackpressurePolicy::kRejectNewest: return "reject-newest";
  }
  return "?";
}

const char* outcome_name(PushOutcome outcome) {
  switch (outcome) {
    case PushOutcome::kAccepted: return "accepted";
    case PushOutcome::kReplacedOldest: return "replaced-oldest";
    case PushOutcome::kRejected: return "rejected";
    case PushOutcome::kRateLimited: return "rate-limited";
    case PushOutcome::kClosed: return "closed";
  }
  return "?";
}

// ---- RateLimiter -----------------------------------------------------------

RateLimiter::RateLimiter(RateLimiterConfig config, Clock::time_point now)
    : config_(config), tokens_(config.burst), last_(now) {
  if (config.tokens_per_second < 0.0) {
    throw std::invalid_argument("RateLimiter: tokens_per_second must be >= 0");
  }
  if (config.tokens_per_second > 0.0 && config.burst < 1.0) {
    throw std::invalid_argument("RateLimiter: burst must be >= 1 when limiting");
  }
}

double RateLimiter::refilled(Clock::time_point now) const {
  const double elapsed = std::chrono::duration<double>(now - last_).count();
  if (elapsed <= 0.0) return tokens_;  // non-monotonic test clocks: no refill
  return std::min(config_.burst, tokens_ + elapsed * config_.tokens_per_second);
}

double RateLimiter::tokens(Clock::time_point now) const {
  if (config_.tokens_per_second <= 0.0) return config_.burst;
  return refilled(now);
}

bool RateLimiter::try_acquire(Clock::time_point now) {
  if (config_.tokens_per_second <= 0.0) return true;
  tokens_ = refilled(now);
  // Never rewind the refill mark: a backwards clock step must not let a
  // later acquire re-credit time the bucket already lived through.
  if (now > last_) last_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

// ---- FrameQueue ------------------------------------------------------------

FrameQueue::FrameQueue(FrameQueueConfig config)
    : config_(config), limiter_(config.rate), slots_(config.capacity) {
  if (config.capacity == 0) {
    throw std::invalid_argument("FrameQueue: capacity must be >= 1");
  }
}

PushOutcome FrameQueue::push(const RgbImage& frame, Clock::time_point now,
                             std::uint64_t* sequence) {
  slj::LockGuard lock(mutex_);
  if (closed_) return PushOutcome::kClosed;
  // The limiter gates *offered* frames: a token is consumed even when the
  // ring then sheds the frame, so a hot camera pays for every attempt.
  if (!limiter_.try_acquire(now)) return PushOutcome::kRateLimited;

  PushOutcome outcome = PushOutcome::kAccepted;
  if (size_ == slots_.size()) {
    switch (config_.policy) {
      case BackpressurePolicy::kRejectNewest:
        return PushOutcome::kRejected;
      case BackpressurePolicy::kDropOldest:
        head_ = (head_ + 1) % slots_.size();
        --size_;
        outcome = PushOutcome::kReplacedOldest;
        break;
      case BackpressurePolicy::kBlock:
        // Explicit loop, not a predicate lambda: the guarded fields are
        // re-read here, where the analysis can see mutex_ is held.
        while (size_ == slots_.size() && !closed_) not_full_.wait(lock);
        if (closed_) return PushOutcome::kClosed;
        break;
    }
  }

  PendingFrame& slot = slots_[(head_ + size_) % slots_.size()];
  slot.frame = frame;  // copy; the slot's buffer is reused when it fits
  slot.sequence = next_sequence_++;
  slot.enqueued_at = now;
  ++size_;
  if (sequence != nullptr) *sequence = slot.sequence;
  return outcome;
}

bool FrameQueue::pop_into(PendingFrame& out) {
  {
    slj::LockGuard lock(mutex_);
    if (size_ == 0) return false;
    PendingFrame& slot = slots_[head_];
    std::swap(out.frame, slot.frame);  // recycle buffers both ways
    out.sequence = slot.sequence;
    out.enqueued_at = slot.enqueued_at;
    head_ = (head_ + 1) % slots_.size();
    --size_;
  }
  // Notify on every pop, not just the full->not-full edge: with several
  // kBlock producers parked, two back-to-back pops must wake two of them —
  // an edge-triggered notify would strand the second waiter on a ring with
  // free space.
  not_full_.notify_one();
  return true;
}

std::size_t FrameQueue::depth() const {
  slj::LockGuard lock(mutex_);
  return size_;
}

std::uint64_t FrameQueue::admitted() const {
  slj::LockGuard lock(mutex_);
  return next_sequence_;
}

void FrameQueue::close() {
  {
    slj::LockGuard lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
}

bool FrameQueue::closed() const {
  slj::LockGuard lock(mutex_);
  return closed_;
}

}  // namespace slj::ingest
