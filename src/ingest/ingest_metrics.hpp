// IngestMetrics: the telemetry plane of the ingest subsystem. Every counter
// is a relaxed atomic and the latency histogram is a fixed array of atomic
// buckets, so producers and the scheduler record without taking any lock —
// the hot path pays a handful of uncontended atomic increments. snapshot()
// folds everything into a plain JSON-serializable struct for dashboards,
// `sljtool serve`, and the perf_ingest bench.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "ingest/frame_queue.hpp"

namespace slj::ingest {

/// Latency histogram with power-of-two microsecond buckets: bucket i counts
/// samples in [2^(i-1), 2^i) µs (bucket 0 = sub-microsecond). Quantiles are
/// read back with linear interpolation inside the winning bucket, so p50/p99
/// carry at most one octave of error — plenty for "is the plane keeping up".
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::chrono::nanoseconds latency);

  /// q in [0, 1]; returns the interpolated quantile in milliseconds
  /// (0 when no samples were recorded).
  double quantile_ms(double q) const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);  // slj-atomic: snapshot
  }
  double max_ms() const {
    return static_cast<double>(
               max_ns_.load(std::memory_order_relaxed)) /  // slj-atomic: snapshot
           1e6;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Per-session rows of a metrics snapshot.
struct SessionMetricsSnapshot {
  int session = -1;
  const char* policy = "";
  std::uint64_t pushed = 0;        ///< frames admitted into the queue
  std::uint64_t delivered = 0;     ///< frames whose StreamUpdate reached the sink
  std::uint64_t dropped_oldest = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rate_limited = 0;
  std::size_t queue_depth = 0;
  double throughput_fps = 0.0;     ///< delivered frames / seconds since open
  double latency_p50_ms = 0.0;     ///< this session's end-to-end latency
  double latency_p99_ms = 0.0;
  /// SLO decoration, filled by obs::SloTracker::evaluate (untouched — and
  /// "untracked" — when no SLO budgets are configured).
  double drop_rate = 0.0;          ///< shed fraction over the last SLO interval
  const char* slo_state = "untracked";  ///< "ok" | "breach" | "untracked"
  std::uint64_t slo_breaches = 0;  ///< lifetime breach entries for this session
};

/// One coherent-enough view of the plane (counters are read individually, so
/// rows can be off by the odd in-flight frame — fine for telemetry).
struct IngestMetricsSnapshot {
  /// Monotonic snapshot sequence number: consumers polling the JSON can
  /// detect reordered or duplicated samples. Bumped by snapshot_totals().
  std::uint64_t sequence = 0;
  /// Wall-clock sample time, milliseconds since the Unix epoch. The only
  /// wall-clock field in the plane — everything else runs on Clock
  /// (steady_clock) — so dashboards can align samples across processes.
  std::int64_t wall_ms = 0;
  std::uint64_t pushed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_oldest = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t closed_pushes = 0;   ///< pushes refused because the queue closed
  /// Admitted frames discarded un-analysed when their session closed or was
  /// evicted. Accounting invariant once the plane is quiescent:
  /// pushed == delivered + dropped_oldest + discarded.
  std::uint64_t discarded = 0;
  std::uint64_t ticks = 0;           ///< scheduler rounds that carried frames
  std::uint64_t evicted_sessions = 0;
  std::size_t open_sessions = 0;
  std::size_t queue_depth = 0;       ///< total frames queued right now
  /// Deepest any single session's queue has been (sampled on admission, so
  /// a saturated drop-oldest ring reports its capacity).
  std::size_t queue_depth_peak = 0;
  double latency_p50_ms = 0.0;       ///< end-to-end: enqueue -> sink
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  /// SLO rollup, filled by obs::SloTracker::evaluate (0 when untracked).
  std::size_t slo_breached_sessions = 0;  ///< sessions currently in breach
  std::uint64_t slo_breaches = 0;         ///< lifetime breach entries, all sessions
  std::vector<SessionMetricsSnapshot> sessions;
  /// Per-stage time breakdown (extract → thin → skelgraph → features →
  /// decode, plus the scheduler's drain/tick/deliver phases). Empty stage
  /// list with compiled=false in default builds — see core/profiler.hpp.
  core::ProfilerSnapshot profiler;

  std::string to_json() const;
};

class IngestMetrics {
 public:
  /// Records the fate of one offered frame (producer threads).
  void on_push(PushOutcome outcome);

  /// Records one delivered frame's end-to-end latency (scheduler thread).
  void on_delivered(std::chrono::nanoseconds latency);

  void on_tick() { ticks_.fetch_add(1, std::memory_order_relaxed); }        // slj-atomic: counter
  void on_eviction() { evicted_.fetch_add(1, std::memory_order_relaxed); }  // slj-atomic: counter
  /// Records frames a closing/evicted session dropped un-analysed.
  void on_discarded(std::uint64_t n) {
    discarded_.fetch_add(n, std::memory_order_relaxed);  // slj-atomic: counter
  }

  /// Feeds the monotonic per-session queue-depth peak (the router samples
  /// one session's depth on every admission).
  void note_depth(std::size_t depth);

  /// Totals only; IngestRouter fills open_sessions / queue_depth / rows.
  /// Stamps the snapshot with a monotonic sequence number and the wall
  /// clock, so each call yields a distinguishable, orderable sample.
  IngestMetricsSnapshot snapshot_totals() const;

 private:
  mutable std::atomic<std::uint64_t> snapshot_seq_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_oldest_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> closed_pushes_{0};
  std::atomic<std::uint64_t> discarded_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::size_t> depth_peak_{0};
  LatencyHistogram latency_;
};

}  // namespace slj::ingest
