#include "ingest/ingest_metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "core/simd.hpp"

namespace slj::ingest {

// ---- LatencyHistogram ------------------------------------------------------

namespace {

/// Bucket index for a latency: 0 for < 1 µs, otherwise 1 + floor(log2(µs)),
/// clamped to the last bucket.
std::size_t bucket_of(std::chrono::nanoseconds latency) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(latency).count();
  if (us <= 0) return 0;
  const std::size_t b = 1 + static_cast<std::size_t>(
                                std::bit_width(static_cast<std::uint64_t>(us)) - 1);
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

/// Upper edge of bucket b in microseconds (lower edge of bucket b+1).
double bucket_upper_us(std::size_t b) {
  if (b == 0) return 1.0;
  return static_cast<double>(std::uint64_t{1} << b);
}

}  // namespace

void LatencyHistogram::record(std::chrono::nanoseconds latency) {
  if (latency.count() < 0) latency = std::chrono::nanoseconds::zero();
  buckets_[bucket_of(latency)].fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
  count_.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
  const std::uint64_t ns = static_cast<std::uint64_t>(latency.count());
  // slj-atomic: counter — monotonic-max CAS; a raced retry republishes the winner
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  // slj-atomic: counter
  while (ns > seen && !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::quantile_ms(double q) const {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);  // slj-atomic: snapshot
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total - 1) + 1.0;  // 1-based
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (rank <= next) {
      // Interpolate inside the bucket between its edges.
      const double lo = i == 0 ? 0.0 : bucket_upper_us(i - 1);
      const double hi = bucket_upper_us(i);
      const double frac = (rank - cumulative) / static_cast<double>(counts[i]);
      return (lo + frac * (hi - lo)) / 1000.0;
    }
    cumulative = next;
  }
  return bucket_upper_us(kBuckets - 1) / 1000.0;
}

// ---- IngestMetrics ---------------------------------------------------------

void IngestMetrics::on_push(PushOutcome outcome) {
  switch (outcome) {
    case PushOutcome::kAccepted:
      pushed_.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      break;
    case PushOutcome::kReplacedOldest:
      pushed_.fetch_add(1, std::memory_order_relaxed);          // slj-atomic: counter
      dropped_oldest_.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      break;
    case PushOutcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      break;
    case PushOutcome::kRateLimited:
      rate_limited_.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      break;
    case PushOutcome::kClosed:
      closed_pushes_.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      break;
  }
}

void IngestMetrics::on_delivered(std::chrono::nanoseconds latency) {
  delivered_.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
  latency_.record(latency);
}

void IngestMetrics::note_depth(std::size_t depth) {
  // slj-atomic: counter — monotonic-max CAS; a raced retry republishes the winner
  std::size_t seen = depth_peak_.load(std::memory_order_relaxed);
  while (depth > seen &&
         // slj-atomic: counter
         !depth_peak_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

IngestMetricsSnapshot IngestMetrics::snapshot_totals() const {
  IngestMetricsSnapshot snap;
  // slj-atomic: counter — each sample gets a unique, ordered sequence number
  snap.sequence = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
  snap.pushed = pushed_.load(std::memory_order_relaxed);                  // slj-atomic: snapshot
  snap.delivered = delivered_.load(std::memory_order_relaxed);            // slj-atomic: snapshot
  snap.dropped_oldest = dropped_oldest_.load(std::memory_order_relaxed);  // slj-atomic: snapshot
  snap.rejected = rejected_.load(std::memory_order_relaxed);              // slj-atomic: snapshot
  snap.rate_limited = rate_limited_.load(std::memory_order_relaxed);      // slj-atomic: snapshot
  snap.closed_pushes = closed_pushes_.load(std::memory_order_relaxed);    // slj-atomic: snapshot
  snap.discarded = discarded_.load(std::memory_order_relaxed);            // slj-atomic: snapshot
  snap.ticks = ticks_.load(std::memory_order_relaxed);                    // slj-atomic: snapshot
  snap.evicted_sessions = evicted_.load(std::memory_order_relaxed);       // slj-atomic: snapshot
  snap.queue_depth_peak = depth_peak_.load(std::memory_order_relaxed);    // slj-atomic: snapshot
  snap.latency_p50_ms = latency_.quantile_ms(0.50);
  snap.latency_p99_ms = latency_.quantile_ms(0.99);
  snap.latency_max_ms = latency_.max_ms();
  return snap;
}

// ---- JSON ------------------------------------------------------------------

std::string IngestMetricsSnapshot::to_json() const {
  char buf[768];
  std::string out = "{\n";
  std::snprintf(buf, sizeof(buf), "  \"sequence\": %llu,\n  \"wall_ms\": %lld,\n",
                static_cast<unsigned long long>(sequence), static_cast<long long>(wall_ms));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"pushed\": %llu,\n  \"delivered\": %llu,\n  \"dropped_oldest\": %llu,\n"
                "  \"rejected\": %llu,\n  \"rate_limited\": %llu,\n  \"closed_pushes\": %llu,\n"
                "  \"discarded\": %llu,\n"
                "  \"ticks\": %llu,\n  \"evicted_sessions\": %llu,\n",
                static_cast<unsigned long long>(pushed),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(dropped_oldest),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(rate_limited),
                static_cast<unsigned long long>(closed_pushes),
                static_cast<unsigned long long>(discarded),
                static_cast<unsigned long long>(ticks),
                static_cast<unsigned long long>(evicted_sessions));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"open_sessions\": %zu,\n  \"queue_depth\": %zu,\n"
                "  \"queue_depth_peak\": %zu,\n  \"latency_p50_ms\": %.3f,\n"
                "  \"latency_p99_ms\": %.3f,\n  \"latency_max_ms\": %.3f,\n"
                "  \"slo_breached_sessions\": %zu,\n  \"slo_breaches\": %llu,\n",
                open_sessions, queue_depth, queue_depth_peak, latency_p50_ms, latency_p99_ms,
                latency_max_ms, slo_breached_sessions,
                static_cast<unsigned long long>(slo_breaches));
  out += buf;
  out += "  \"sessions\": [";
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const SessionMetricsSnapshot& s = sessions[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"session\": %d, \"policy\": \"%s\", \"pushed\": %llu, "
                  "\"delivered\": %llu, \"dropped_oldest\": %llu, \"rejected\": %llu, "
                  "\"rate_limited\": %llu, \"queue_depth\": %zu, \"throughput_fps\": %.1f, "
                  "\"latency_p50_ms\": %.3f, \"latency_p99_ms\": %.3f, "
                  "\"drop_rate\": %.4f, \"slo_state\": \"%s\", \"slo_breaches\": %llu}",
                  i == 0 ? "" : ",", s.session, s.policy,
                  static_cast<unsigned long long>(s.pushed),
                  static_cast<unsigned long long>(s.delivered),
                  static_cast<unsigned long long>(s.dropped_oldest),
                  static_cast<unsigned long long>(s.rejected),
                  static_cast<unsigned long long>(s.rate_limited), s.queue_depth,
                  s.throughput_fps, s.latency_p50_ms, s.latency_p99_ms, s.drop_rate,
                  s.slo_state, static_cast<unsigned long long>(s.slo_breaches));
    out += buf;
  }
  out += sessions.empty() ? "],\n" : "\n  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"simd\": {\"backend\": \"%s\", \"f64_lanes\": %d, \"u8_lanes\": %d},\n",
                simd::backend_name(), simd::f64_lanes(), simd::u8_lanes());
  out += buf;
  out += "  \"profiler\": ";
  out += profiler.to_json();
  out += "\n}";
  return out;
}

}  // namespace slj::ingest
