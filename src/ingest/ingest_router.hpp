// IngestRouter: the queue plane between asynchronous frame producers and the
// lockstep StreamManager. It owns one FrameQueue per live session plus the
// session lifecycle (open / close / idle detection), accepts push() from any
// producer thread, and exposes drain(): snapshot at most one ready frame per
// session into a DrainBatch that feeds exactly one StreamManager::tick_into
// call. One-frame-per-session-per-drain is what makes the batch satisfy the
// manager's "each session advances at most once per tick" contract by
// construction.
//
// Thread model: push() is safe from any number of threads concurrently with
// everything else; drain()/collect_idle() are single-consumer (the scheduler
// thread); open()/close() may run from any thread but the caller must ensure
// the underlying StreamManager is not mid-tick (IngestService serializes
// this with its pass mutex).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/annotations.hpp"
#include "core/stream_engine.hpp"
#include "ingest/frame_queue.hpp"
#include "ingest/ingest_metrics.hpp"

namespace slj::ingest {

struct IngestSessionConfig {
  FrameQueueConfig queue;
  core::StreamSessionConfig session;
  /// A session whose queue has been empty and whose producers have been
  /// silent for this long is reported by collect_idle() for eviction.
  /// zero() = never evict.
  Clock::duration idle_timeout = Clock::duration::zero();
};

/// One drained round, ready for StreamManager::tick_into. `frames[i]` backs
/// `feeds[i].frame`; both arrays are rebuilt by every drain() but their
/// storage (including the recycled frame buffers) is reused, so a reused
/// batch drains without heap allocation in the steady state.
struct DrainBatch {
  std::vector<core::StreamManager::Feed> feeds;
  std::size_t size() const { return feeds.size(); }

  /// Provenance for feeds[i] (latency accounting, ordering checks).
  const PendingFrame& pending(std::size_t i) const { return frames[i]; }

 private:
  friend class IngestRouter;
  /// Slots 0..feeds.size()-1 are live; the vector only ever grows so popped
  /// frame buffers stay recycled across drains.
  std::vector<PendingFrame> frames;
};

class IngestRouter {
 public:
  struct Config {
    /// Defaults for sessions opened without an explicit config.
    IngestSessionConfig session;
    /// Time source; null = Clock::now(). Tests inject a manual clock to make
    /// rate limiting and idle eviction deterministic.
    std::function<Clock::time_point()> clock;
  };

  /// The router drives `manager` exclusively: it must be the only caller of
  /// open_session/close_session so session ids stay aligned.
  explicit IngestRouter(core::StreamManager& manager, Config config = {});

  Clock::time_point now() const { return clock_(); }

  int open(const RgbImage& background) SLJ_EXCLUDES(sessions_mutex_);
  int open(const RgbImage& background, IngestSessionConfig config) SLJ_EXCLUDES(sessions_mutex_);

  /// Offers one frame from any producer thread. Unknown ids throw
  /// std::invalid_argument; a closed (or closing) session returns kClosed —
  /// producers racing an eviction get a quiet refusal, not a crash. An
  /// admitted frame's queue sequence lands in `sequence` when non-null.
  PushOutcome push(int session, const RgbImage& frame, std::uint64_t* sequence = nullptr);

  /// Pops at most one ready frame per open session (in session-id order)
  /// into `batch` and builds the matching Feed list. Returns the number of
  /// frames drained. Single consumer.
  std::size_t drain(DrainBatch& batch) SLJ_EXCLUDES(sessions_mutex_);

  /// Appends the ids of sessions whose idle_timeout elapsed with an empty
  /// queue and no producer activity. Single consumer.
  void collect_idle(std::vector<int>& out) SLJ_EXCLUDES(sessions_mutex_);

  /// Seals a session's queue: further pushes return kClosed, queued frames
  /// can still drain. Safe concurrently with producers.
  void seal(int session);

  /// Closes the session: seals the queue, discards any still-queued frames
  /// (returned as the discard count through `discarded` when non-null) and
  /// finishes the underlying StreamSession. The caller must ensure the
  /// manager is not mid-tick.
  core::JumpReport close(int session, std::uint64_t* discarded = nullptr)
      SLJ_EXCLUDES(sessions_mutex_);

  std::size_t open_sessions() const SLJ_EXCLUDES(sessions_mutex_);
  /// Frames queued across all open sessions.
  std::size_t total_depth() const SLJ_EXCLUDES(sessions_mutex_);
  /// Queue depth of one session (throws on unknown id).
  std::size_t depth(int session) const;
  /// Frames admitted into a session's queue so far (throws on unknown id).
  std::uint64_t admitted(int session) const;

  IngestMetrics& metrics() { return metrics_; }

  /// Totals plus per-session rows and gauges.
  IngestMetricsSnapshot snapshot() SLJ_EXCLUDES(sessions_mutex_);

 private:
  struct SessionState {
    int id = -1;
    IngestSessionConfig config;
    FrameQueue queue;
    Clock::time_point opened_at{};
    std::atomic<Clock::rep> last_activity{0};
    std::atomic<std::uint64_t> pushed{0};
    std::atomic<std::uint64_t> delivered{0};  ///< bumped by IngestService
    std::atomic<std::uint64_t> dropped_oldest{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> rate_limited{0};
    /// Per-session end-to-end latency (enqueue -> sink), recorded by
    /// IngestService alongside the plane-wide histogram. Feeds the
    /// per-session p50/p99 snapshot rows the SLO tracker scores.
    LatencyHistogram latency;

    SessionState(int id_, IngestSessionConfig config_, Clock::time_point now)
        : id(id_), config(config_), queue(config_.queue), opened_at(now),
          last_activity(now.time_since_epoch().count()) {}
  };

  std::shared_ptr<SessionState> state_at(int session) const
      SLJ_EXCLUDES(sessions_mutex_);  ///< throws on unknown id
  friend class IngestService;  ///< bumps SessionState::delivered on delivery
  std::shared_ptr<SessionState> state_if_open(int session) const SLJ_EXCLUDES(sessions_mutex_);

  core::StreamManager* manager_;
  Config config_;
  std::function<Clock::time_point()> clock_;
  IngestMetrics metrics_;
  mutable slj::Mutex sessions_mutex_;
  /// index = id; null = closed. The shared_ptrs themselves are guarded; a
  /// SessionState's own fields are safe unlocked (atomics + the internally
  /// locked FrameQueue), which is why push() can run outside this mutex.
  std::vector<std::shared_ptr<SessionState>> sessions_ SLJ_GUARDED_BY(sessions_mutex_);
  /// Scratch of drain(), a single-consumer entry point (scheduler thread
  /// only) — deliberately not guarded: it never races itself.
  std::vector<std::shared_ptr<SessionState>> drain_scratch_;
};

}  // namespace slj::ingest
