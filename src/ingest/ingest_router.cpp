#include "ingest/ingest_router.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace slj::ingest {

IngestRouter::IngestRouter(core::StreamManager& manager, Config config)
    : manager_(&manager), config_(std::move(config)) {
  clock_ = config_.clock ? config_.clock : [] { return Clock::now(); };
}

int IngestRouter::open(const RgbImage& background) { return open(background, config_.session); }

int IngestRouter::open(const RgbImage& background, IngestSessionConfig config) {
  slj::LockGuard lock(sessions_mutex_);
  const int id = manager_->open_session(background, config.session);
  if (static_cast<std::size_t>(id) >= sessions_.size()) {
    sessions_.resize(static_cast<std::size_t>(id) + 1);
  }
  sessions_[static_cast<std::size_t>(id)] =
      std::make_shared<SessionState>(id, config, clock_());
  return id;
}

std::shared_ptr<IngestRouter::SessionState> IngestRouter::state_at(int session) const {
  std::shared_ptr<SessionState> state = state_if_open(session);
  if (!state) {
    throw std::invalid_argument("ingest session " + std::to_string(session) + " is closed");
  }
  return state;
}

std::shared_ptr<IngestRouter::SessionState> IngestRouter::state_if_open(int session) const {
  slj::LockGuard lock(sessions_mutex_);
  if (session < 0 || static_cast<std::size_t>(session) >= sessions_.size()) {
    throw std::invalid_argument("unknown ingest session id " + std::to_string(session));
  }
  return sessions_[static_cast<std::size_t>(session)];
}

PushOutcome IngestRouter::push(int session, const RgbImage& frame, std::uint64_t* sequence) {
  const std::shared_ptr<SessionState> state = state_if_open(session);
  if (!state) return PushOutcome::kClosed;  // closed sessions refuse quietly

  const Clock::time_point now = clock_();
  // Any push attempt counts as producer activity: a camera that is being
  // rate-limited or shed is alive, only a silent one is idle.
  state->last_activity.store(now.time_since_epoch().count(),
                             std::memory_order_relaxed);  // slj-atomic: snapshot

  const PushOutcome outcome = state->queue.push(frame, now, sequence);
  switch (outcome) {
    case PushOutcome::kAccepted:
      state->pushed.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      metrics_.note_depth(state->queue.depth());
      break;
    case PushOutcome::kReplacedOldest:
      state->pushed.fetch_add(1, std::memory_order_relaxed);          // slj-atomic: counter
      state->dropped_oldest.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      // A replace means the ring is at capacity — the deepest this session's
      // queue gets — so it must feed the peak gauge too, or a saturated
      // plane would freeze the peak at some warm-up value.
      metrics_.note_depth(state->queue.depth());
      break;
    case PushOutcome::kRejected:
      state->rejected.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      break;
    case PushOutcome::kRateLimited:
      state->rate_limited.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      break;
    case PushOutcome::kClosed:
      break;
  }
  metrics_.on_push(outcome);
  return outcome;
}

std::size_t IngestRouter::drain(DrainBatch& batch) {
  // Snapshot the open sessions, then pop outside the sessions lock so
  // producers are never blocked behind a whole drain round.
  drain_scratch_.clear();
  {
    slj::LockGuard lock(sessions_mutex_);
    for (const std::shared_ptr<SessionState>& s : sessions_) {
      if (s) drain_scratch_.push_back(s);
    }
  }

  batch.feeds.clear();
  std::size_t used = 0;
  for (const std::shared_ptr<SessionState>& s : drain_scratch_) {
    if (batch.frames.size() <= used) batch.frames.resize(used + 1);
    if (s->queue.pop_into(batch.frames[used])) {
      batch.feeds.push_back({s->id, nullptr});
      ++used;
    }
  }
  // Frame pointers are taken only after all pops: batch.frames no longer
  // reallocates, so the addresses stay stable through the tick.
  for (std::size_t i = 0; i < used; ++i) {
    batch.feeds[i].frame = &batch.frames[i].frame;
  }
  return used;
}

void IngestRouter::collect_idle(std::vector<int>& out) {
  const Clock::time_point now = clock_();
  slj::LockGuard lock(sessions_mutex_);
  for (const std::shared_ptr<SessionState>& s : sessions_) {
    if (!s || s->config.idle_timeout <= Clock::duration::zero()) continue;
    if (s->queue.closed()) continue;      // sealed: an explicit close is in flight
    if (s->queue.depth() != 0) continue;  // pending frames: not idle, drain first
    const Clock::time_point last{Clock::duration{
        s->last_activity.load(std::memory_order_relaxed)}};  // slj-atomic: snapshot
    if (now - last > s->config.idle_timeout) out.push_back(s->id);
  }
}

void IngestRouter::seal(int session) { state_at(session)->queue.close(); }

core::JumpReport IngestRouter::close(int session, std::uint64_t* discarded) {
  std::shared_ptr<SessionState> state;
  {
    slj::LockGuard lock(sessions_mutex_);
    if (session < 0 || static_cast<std::size_t>(session) >= sessions_.size() ||
        !sessions_[static_cast<std::size_t>(session)]) {
      throw std::invalid_argument("unknown ingest session id " + std::to_string(session));
    }
    state = std::move(sessions_[static_cast<std::size_t>(session)]);
    sessions_[static_cast<std::size_t>(session)].reset();
  }
  state->queue.close();
  // Drop whatever is still queued; callers wanting lossless shutdown flush
  // through IngestService first. The discards are metered so the plane's
  // books still balance: pushed == delivered + dropped_oldest + discarded.
  PendingFrame sink;
  std::uint64_t dropped = 0;
  while (state->queue.pop_into(sink)) ++dropped;
  if (dropped > 0) metrics_.on_discarded(dropped);
  if (discarded != nullptr) *discarded = dropped;
  return manager_->close_session(session);
}

std::size_t IngestRouter::open_sessions() const {
  slj::LockGuard lock(sessions_mutex_);
  std::size_t n = 0;
  for (const std::shared_ptr<SessionState>& s : sessions_) {
    if (s) ++n;
  }
  return n;
}

std::size_t IngestRouter::total_depth() const {
  slj::LockGuard lock(sessions_mutex_);
  std::size_t depth = 0;
  for (const std::shared_ptr<SessionState>& s : sessions_) {
    if (s) depth += s->queue.depth();
  }
  return depth;
}

std::size_t IngestRouter::depth(int session) const { return state_at(session)->queue.depth(); }

std::uint64_t IngestRouter::admitted(int session) const {
  return state_at(session)->queue.admitted();
}

IngestMetricsSnapshot IngestRouter::snapshot() {
  IngestMetricsSnapshot snap = metrics_.snapshot_totals();
  snap.profiler = core::Profiler::instance().snapshot();
  const Clock::time_point now = clock_();
  slj::LockGuard lock(sessions_mutex_);
  for (const std::shared_ptr<SessionState>& s : sessions_) {
    if (!s) continue;
    ++snap.open_sessions;
    SessionMetricsSnapshot row;
    row.session = s->id;
    row.policy = policy_name(s->config.queue.policy);
    row.pushed = s->pushed.load(std::memory_order_relaxed);                  // slj-atomic: snapshot
    row.delivered = s->delivered.load(std::memory_order_relaxed);            // slj-atomic: snapshot
    row.dropped_oldest = s->dropped_oldest.load(std::memory_order_relaxed);  // slj-atomic: snapshot
    row.rejected = s->rejected.load(std::memory_order_relaxed);              // slj-atomic: snapshot
    row.rate_limited = s->rate_limited.load(std::memory_order_relaxed);      // slj-atomic: snapshot
    row.queue_depth = s->queue.depth();
    const double seconds = std::chrono::duration<double>(now - s->opened_at).count();
    row.throughput_fps = seconds > 0.0 ? static_cast<double>(row.delivered) / seconds : 0.0;
    row.latency_p50_ms = s->latency.quantile_ms(0.50);
    row.latency_p99_ms = s->latency.quantile_ms(0.99);
    snap.queue_depth += row.queue_depth;
    snap.sessions.push_back(row);
  }
  return snap;
}

}  // namespace slj::ingest
