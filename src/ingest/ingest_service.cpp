#include "ingest/ingest_service.hpp"

#include <utility>

#include "core/profiler.hpp"
#include "obs/tracer.hpp"

namespace slj::ingest {

IngestService::IngestService(const pose::PoseDbnClassifier& classifier,
                             core::PipelineParams params, IngestServiceConfig config)
    : config_(config),
      manager_(classifier, params, config.manager),
      router_(manager_, config.router) {}

IngestService::~IngestService() { stop(); }

int IngestService::open_session(const RgbImage& background, Sink sink) {
  return open_session(background, config_.router.session, std::move(sink));
}

int IngestService::open_session(const RgbImage& background, IngestSessionConfig config,
                                Sink sink) {
  // pass_mutex_ keeps the manager's session table stable while a tick runs.
  slj::LockGuard pass(pass_mutex_);
  const int id = router_.open(background, config);
  {
    slj::LockGuard lock(sinks_mutex_);
    if (static_cast<std::size_t>(id) >= sinks_.size()) {
      sinks_.resize(static_cast<std::size_t>(id) + 1);
    }
    sinks_[static_cast<std::size_t>(id)] = std::move(sink);
  }
  if (IngestTap* tap = tap_.load(std::memory_order_acquire)) {
    tap->on_open(router_.now(), id, config, background);
  }
  return id;
}

PushOutcome IngestService::push(int session, const RgbImage& frame) {
  // The attempt is counted *before* the queue insert: if admitted_ lagged
  // the physical queue, a concurrent drop-oldest push could credit
  // completed_ for evicting a frame flush() never counted, letting flush
  // return with that pusher's own frame still queued. Refused attempts are
  // immediately balanced with note_completed below.
  admitted_.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
  PushOutcome outcome;
  std::uint64_t sequence = 0;
  try {
    outcome = router_.push(session, frame, &sequence);
  } catch (...) {
    note_completed(1);  // unknown id: balance the attempt, then rethrow
    throw;
  }
  if (IngestTap* tap = tap_.load(std::memory_order_acquire)) {
    tap->on_push(router_.now(), session, frame, outcome, sequence);
  }
  obs::Tracer::instance().instant("ingest.push", session, static_cast<std::int64_t>(outcome));
  if (push_accepted(outcome)) {
    if (outcome == PushOutcome::kReplacedOldest) {
      note_completed(1);  // the replaced frame is discharged, not delivered
    }
    {
      slj::LockGuard lock(wake_mutex_);
      work_pending_ = true;
    }
    wake_cv_.notify_one();
  } else {
    note_completed(1);  // refused: nothing entered the queue
  }
  return outcome;
}

void IngestService::start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    slj::LockGuard lock(wake_mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

void IngestService::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    slj::LockGuard lock(wake_mutex_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  scheduler_.join();
  running_.store(false, std::memory_order_release);
}

void IngestService::scheduler_loop() {
  for (;;) {
    {
      slj::LockGuard lock(wake_mutex_);
      // Deadline loop instead of a predicate wait_for: the guarded flags
      // are re-read here, where the analysis can see wake_mutex_ is held.
      const Clock::time_point deadline = Clock::now() + config_.poll_interval;
      while (!stop_requested_ && !work_pending_) {
        if (wake_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      if (stop_requested_) return;
      work_pending_ = false;
    }
    bool more;
    {
      slj::LockGuard pass(pass_mutex_);
      pass_locked();
      // A drain takes at most one frame per session; deeper queues mean the
      // next round is already due.
      more = router_.total_depth() > 0;
    }
    if (more) {
      slj::LockGuard lock(wake_mutex_);
      work_pending_ = true;
    }
  }
}

std::size_t IngestService::pass_locked() {
  SLJ_PROFILE_SCOPE(core::ProfileStage::kPass);
  obs::TraceSpan pass_span("ingest.pass");
  std::size_t count;
  {
    SLJ_PROFILE_SCOPE(core::ProfileStage::kDrain);
    obs::TraceSpan span("ingest.drain");
    count = router_.drain(batch_);
  }
  if (count > 0) {
    {
      SLJ_PROFILE_SCOPE(core::ProfileStage::kTick);
      obs::TraceSpan span("ingest.tick", -1, static_cast<std::int64_t>(count));
      manager_.tick_into(batch_.feeds, updates_);
    }
    router_.metrics().on_tick();
    if (IngestTap* tap = tap_.load(std::memory_order_acquire)) {
      tap->on_tick(router_.now(), batch_, updates_, count);
    }
    SLJ_PROFILE_SCOPE(core::ProfileStage::kDeliver);
    obs::TraceSpan span("ingest.deliver", -1, static_cast<std::int64_t>(count));
    deliver_locked(count);
    note_completed(count);
  }
  evict_idle_locked();
  return count;
}

void IngestService::deliver_locked(std::size_t count) {
  const Clock::time_point now = router_.now();
  for (std::size_t i = 0; i < count; ++i) {
    const int session = batch_.feeds[i].session;
    const PendingFrame& pending = batch_.pending(i);
    const Clock::duration latency = now - pending.enqueued_at;
    router_.metrics().on_delivered(
        std::chrono::duration_cast<std::chrono::nanoseconds>(latency));
    if (const auto state = router_.state_if_open(session)) {
      state->delivered.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
      state->latency.record(std::chrono::duration_cast<std::chrono::nanoseconds>(latency));
    }
    // Copy the sink out and invoke it unlocked (mirroring the eviction
    // path), so a slow sink never stalls concurrent open_session calls on
    // sinks_mutex_. Note the sink still runs under pass_mutex_ — see the
    // reentrancy warning on IngestService::Sink.
    Sink sink;
    {
      slj::LockGuard lock(sinks_mutex_);
      if (static_cast<std::size_t>(session) < sinks_.size()) {
        sink = sinks_[static_cast<std::size_t>(session)];
      }
    }
    if (sink) {
      const Delivery delivery{session, pending.sequence, latency, updates_[i]};
      sink(delivery);
    }
  }
}

void IngestService::evict_idle_locked() {
  idle_scratch_.clear();
  router_.collect_idle(idle_scratch_);
  for (const int id : idle_scratch_) {
    std::uint64_t discarded = 0;
    const core::JumpReport report = router_.close(id, &discarded);
    if (discarded > 0) note_completed(discarded);
    router_.metrics().on_eviction();
    obs::Tracer::instance().instant("ingest.evict", id,
                                    static_cast<std::int64_t>(discarded));
    if (IngestTap* tap = tap_.load(std::memory_order_acquire)) {
      tap->on_close(router_.now(), id, report, discarded, /*evicted=*/true);
    }
    EvictionSink sink;
    {
      slj::LockGuard lock(sinks_mutex_);
      sink = eviction_sink_;
    }
    if (sink) sink(id, report);
  }
}

void IngestService::note_completed(std::uint64_t n) {
  completed_.fetch_add(n, std::memory_order_relaxed);  // slj-atomic: counter
  // The mutex+notify is only a wakeup hint for flush(), which re-checks the
  // atomic on a 1 ms timeout anyway — skip the lock entirely unless someone
  // is actually flushing, keeping the producer shed path atomic-only.
  if (flush_waiters_.load(std::memory_order_acquire) > 0) {
    {
      slj::LockGuard lock(flush_mutex_);
    }
    flush_cv_.notify_all();
  }
}

void IngestService::flush() {
  const std::uint64_t target = admitted_.load(std::memory_order_relaxed);  // slj-atomic: snapshot
  flush_waiters_.fetch_add(1, std::memory_order_acq_rel);
  // slj-atomic: snapshot — stale reads only delay the 1 ms re-poll below
  while (completed_.load(std::memory_order_relaxed) < target) {
    if (running()) {
      // Plain timed wait: the exit condition is the atomic re-checked by
      // the enclosing while, so a predicate here would be redundant (and
      // the 1 ms timeout already bounds a missed notify).
      slj::LockGuard lock(flush_mutex_);
      if (completed_.load(std::memory_order_relaxed) >= target) break;  // slj-atomic: snapshot
      flush_cv_.wait_for(lock, std::chrono::milliseconds(1));
    } else {
      // Scheduler stopped: run the passes inline on the calling thread.
      slj::LockGuard pass(pass_mutex_);
      pass_locked();
    }
  }
  flush_waiters_.fetch_sub(1, std::memory_order_acq_rel);
}

core::JumpReport IngestService::close_session(int session) {
  router_.seal(session);  // producers get kClosed from here on
  flush();                // deliver everything admitted before the seal
  slj::LockGuard pass(pass_mutex_);
  std::uint64_t discarded = 0;
  const core::JumpReport report = router_.close(session, &discarded);
  if (discarded > 0) note_completed(discarded);
  if (IngestTap* tap = tap_.load(std::memory_order_acquire)) {
    tap->on_close(router_.now(), session, report, discarded, /*evicted=*/false);
  }
  return report;
}

void IngestService::set_eviction_sink(EvictionSink sink) {
  slj::LockGuard lock(sinks_mutex_);
  eviction_sink_ = std::move(sink);
}

}  // namespace slj::ingest
