// IngestService: the push-based front door of the live analysis system. It
// owns the whole plane — StreamManager (sessions + worker pool), IngestRouter
// (bounded per-session queues) and a scheduler thread that loops
//
//     drain (<=1 frame/session)  ->  tick (parallel vision+decode)
//       ->  deliver (per-session sinks, in frame order)  ->  evict idle
//
// so producers only ever see push(session, frame) and a callback firing with
// the frame's StreamUpdate. Delivery is serialized per session on the
// scheduler thread, so sinks observe updates in exactly the order frames
// were admitted.
//
// Lifecycle:
//   start()  spawns the scheduler; idempotent.
//   stop()   halts it; queued frames stay queued and can be flushed later.
//   flush()  blocks until every frame admitted before the call has been
//            delivered or discarded (works with the scheduler running or
//            stopped — when stopped it runs the passes inline).
//   close_session() flushes, then finishes the session and returns its final
//            JumpReport.
// The destructor stops the scheduler; undelivered frames are discarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/stream_engine.hpp"
#include "ingest/ingest_router.hpp"
#include "ingest/ingest_tap.hpp"

namespace slj::ingest {

struct IngestServiceConfig {
  /// Worker pool + default session settings of the owned StreamManager.
  core::StreamManagerConfig manager;
  /// Queue defaults + test clock of the owned router.
  IngestRouter::Config router;
  /// Scheduler wake period when no push arrives: bounds idle-eviction lag
  /// and is the poll floor for kBlock producers waiting on a stopped drain.
  Clock::duration poll_interval = std::chrono::milliseconds(2);
};

/// One delivered frame, handed to the session's sink on the scheduler
/// thread. `update` references the service's reusable tick buffer — copy
/// what must outlive the callback.
struct Delivery {
  int session = -1;
  std::uint64_t sequence = 0;      ///< session-local admission order
  Clock::duration latency{};       ///< enqueue -> sink
  const core::StreamUpdate& update;
};

class IngestService {
 public:
  /// Sinks run on the scheduler thread *inside* a pass (pass_mutex_ held):
  /// they must not call back into the service's lifecycle API
  /// (open_session / close_session / flush / stop) — that relocks the pass
  /// mutex on the same thread and deadlocks the scheduler. push() and
  /// metrics() are safe. Defer lifecycle reactions to another thread.
  using Sink = std::function<void(const Delivery&)>;
  /// Fired (on the scheduler thread) when an idle session is evicted.
  /// Same reentrancy rule as Sink.
  using EvictionSink = std::function<void(int session, const core::JumpReport&)>;

  explicit IngestService(const pose::PoseDbnClassifier& classifier,
                         core::PipelineParams params = {}, IngestServiceConfig config = {});
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Opens a live feed; `sink` (may be null) receives every StreamUpdate of
  /// this session, in admission order, on the scheduler thread.
  int open_session(const RgbImage& background, Sink sink = nullptr)
      SLJ_EXCLUDES(pass_mutex_, sinks_mutex_);
  int open_session(const RgbImage& background, IngestSessionConfig config, Sink sink = nullptr)
      SLJ_EXCLUDES(pass_mutex_, sinks_mutex_);

  /// Offers one frame from any producer thread; returns the queue's verdict.
  PushOutcome push(int session, const RgbImage& frame)
      SLJ_EXCLUDES(wake_mutex_, flush_mutex_);

  void start() SLJ_EXCLUDES(wake_mutex_);
  void stop() SLJ_EXCLUDES(wake_mutex_);
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Blocks until every frame admitted before the call is delivered or
  /// discarded. With the scheduler stopped, processes inline instead.
  void flush() SLJ_EXCLUDES(flush_mutex_, pass_mutex_);

  /// Seals the session (producers get kClosed), delivers everything still
  /// queued for it, then closes it and returns the final report.
  core::JumpReport close_session(int session) SLJ_EXCLUDES(pass_mutex_);

  void set_eviction_sink(EvictionSink sink) SLJ_EXCLUDES(sinks_mutex_);

  /// Installs (or clears, with null) the record/replay tap. Install before
  /// traffic starts: the pointer itself is swapped atomically, but a tap
  /// installed mid-run would see a torn prefix of the run — open records
  /// missing for already-open sessions — which the replayer rejects.
  void set_tap(IngestTap* tap) { tap_.store(tap, std::memory_order_release); }

  std::size_t open_sessions() const { return router_.open_sessions(); }
  IngestMetricsSnapshot metrics() { return router_.snapshot(); }
  IngestRouter& router() { return router_; }
  core::StreamManager& manager() { return manager_; }

 private:
  /// One drain->tick->deliver->evict round. Caller holds pass_mutex_.
  /// Returns the number of frames delivered.
  std::size_t pass_locked() SLJ_REQUIRES(pass_mutex_);
  void deliver_locked(std::size_t count) SLJ_REQUIRES(pass_mutex_) SLJ_EXCLUDES(sinks_mutex_);
  void evict_idle_locked() SLJ_REQUIRES(pass_mutex_) SLJ_EXCLUDES(sinks_mutex_);
  void scheduler_loop() SLJ_EXCLUDES(wake_mutex_, pass_mutex_);
  void note_completed(std::uint64_t n) SLJ_EXCLUDES(flush_mutex_);

  IngestServiceConfig config_;
  /// Structurally serialized by pass_mutex_ (every tick/open/close runs
  /// under it); not SLJ_GUARDED_BY so the manager() accessor stays usable —
  /// the pass mutex is about *passes*, not about reading the reference.
  core::StreamManager manager_;
  IngestRouter router_;

  /// Serializes everything that touches the StreamManager: scheduler passes,
  /// inline flush passes, open/close. Producers never take it.
  slj::Mutex pass_mutex_;
  DrainBatch batch_ SLJ_GUARDED_BY(pass_mutex_);
  std::vector<core::StreamUpdate> updates_ SLJ_GUARDED_BY(pass_mutex_);
  std::vector<int> idle_scratch_ SLJ_GUARDED_BY(pass_mutex_);

  /// Sinks by session id (set at open, read by the scheduler).
  slj::Mutex sinks_mutex_;
  std::vector<Sink> sinks_ SLJ_GUARDED_BY(sinks_mutex_);
  EvictionSink eviction_sink_ SLJ_GUARDED_BY(sinks_mutex_);

  /// Record/replay tap; null when not recording. Producer threads read it
  /// with acquire loads on every push.
  std::atomic<IngestTap*> tap_{nullptr};

  /// Flush accounting: admitted counts push *attempts* (bumped before the
  /// queue insert, so it can never lag the physical queue state), completed
  /// counts attempts discharged — delivered, discarded (drop-oldest,
  /// eviction, close) or refused outright. Invariant: completed + (frames
  /// still queued) == admitted once in-flight pushes return.
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<int> flush_waiters_{0};
  /// flush_mutex_ guards no state: it only sequences the wakeup hint in
  /// note_completed against flush()'s timed wait on the atomics.
  slj::Mutex flush_mutex_;
  slj::CondVar flush_cv_;

  std::thread scheduler_;
  std::atomic<bool> running_{false};
  slj::Mutex wake_mutex_;
  slj::CondVar wake_cv_;
  bool stop_requested_ SLJ_GUARDED_BY(wake_mutex_) = false;
  bool work_pending_ SLJ_GUARDED_BY(wake_mutex_) = false;
};

}  // namespace slj::ingest
