// FrameQueue: one bounded multi-producer / single-consumer ring of camera
// frames, feeding one live StreamSession. Producers (camera threads, network
// receivers) push asynchronously at sensor rate; the ingest scheduler pops at
// most one frame per drain, so a queue is the buffer between "frames arrive
// when the camera says so" and "the pool processes them when a lane is free".
//
// Overload behaviour is a policy, not an accident:
//   kBlock        the producer waits for space — lossless, propagates
//                 backpressure all the way to the camera thread;
//   kDropOldest   the stalest queued frame is discarded to admit the new one
//                 — a live coaching feed wants the freshest frame, not a
//                 growing backlog;
//   kRejectNewest the incoming frame is refused — the queued history is
//                 preserved (replay/forensics feeds).
//
// A token-bucket RateLimiter in front of the ring caps a single hot camera's
// admission rate so it cannot starve the shared worker pool of the other
// sessions' frames.
//
// Frame storage is recycled: a push copies pixels into a ring slot whose
// buffer is reused (Image::operator= keeps capacity), and pop_into swaps the
// slot's image with the consumer's scratch image, so the steady state moves
// no heap memory in either direction.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/annotations.hpp"
#include "imaging/image.hpp"

namespace slj::ingest {

/// The ingest plane's clock. Tests inject a manual clock through
/// IngestRouter::Config::clock; production uses Clock::now().
using Clock = std::chrono::steady_clock;

/// What a full queue does to the next push (see file comment for tradeoffs).
enum class BackpressurePolicy {
  kBlock,         ///< producer waits for space (lossless)
  kDropOldest,    ///< discard the stalest queued frame, admit the new one
  kRejectNewest,  ///< refuse the incoming frame, keep the queued history
};

const char* policy_name(BackpressurePolicy policy);

struct RateLimiterConfig {
  /// Sustained admission rate; 0 disables the limiter entirely.
  double tokens_per_second = 0.0;
  /// Bucket capacity: how many frames may be admitted back-to-back after an
  /// idle spell before the sustained rate applies.
  double burst = 1.0;
};

/// Token bucket: starts full at `burst` tokens, refills continuously at
/// `tokens_per_second`, and admits one frame per whole token. Callers pass
/// the current time explicitly so accounting is deterministic under test
/// clocks. Not internally synchronized — FrameQueue calls it under its own
/// mutex.
class RateLimiter {
 public:
  explicit RateLimiter(RateLimiterConfig config = {}, Clock::time_point now = {});

  /// Consumes one token if available; false = the frame should be shed.
  /// Always true when the limiter is disabled (tokens_per_second == 0).
  bool try_acquire(Clock::time_point now);

  /// Tokens currently in the bucket (refilled up to `now`).
  double tokens(Clock::time_point now) const;

  const RateLimiterConfig& config() const { return config_; }

 private:
  double refilled(Clock::time_point now) const;

  RateLimiterConfig config_;
  double tokens_ = 0.0;
  Clock::time_point last_{};
};

/// What happened to a pushed frame. The first two mean the frame entered the
/// queue; the rest mean it was shed (and by whom).
enum class PushOutcome {
  kAccepted,        ///< enqueued into free space
  kReplacedOldest,  ///< enqueued; the stalest queued frame was discarded
  kRejected,        ///< refused: queue full under kRejectNewest
  kRateLimited,     ///< refused: token bucket empty
  kClosed,          ///< refused: queue closed (session closing/evicted)
};

/// True when the frame entered the queue (it will eventually be drained).
inline bool push_accepted(PushOutcome outcome) {
  return outcome == PushOutcome::kAccepted || outcome == PushOutcome::kReplacedOldest;
}

const char* outcome_name(PushOutcome outcome);

struct FrameQueueConfig {
  /// Ring capacity in frames. Small on purpose: a live feed wants fresh
  /// frames, and StreamManager ticks drain one frame per session anyway.
  std::size_t capacity = 8;
  BackpressurePolicy policy = BackpressurePolicy::kDropOldest;
  RateLimiterConfig rate;  ///< disabled by default
};

/// One drained frame plus the provenance the delivery plane needs: the
/// session-local push order and the enqueue time (end-to-end latency).
struct PendingFrame {
  RgbImage frame;
  std::uint64_t sequence = 0;  ///< per-queue admission order, 0-based
  Clock::time_point enqueued_at{};
};

class FrameQueue {
 public:
  explicit FrameQueue(FrameQueueConfig config);

  FrameQueue(const FrameQueue&) = delete;
  FrameQueue& operator=(const FrameQueue&) = delete;

  /// Offers one frame from any producer thread. `now` feeds the rate limiter
  /// and is stamped on the admitted frame. Under kBlock and a full ring this
  /// waits until the consumer makes space (or the queue is closed). When the
  /// frame is admitted and `sequence` is non-null, it receives the frame's
  /// queue-assigned admission index (the trace recorder keys frames by it).
  PushOutcome push(const RgbImage& frame, Clock::time_point now,
                   std::uint64_t* sequence = nullptr) SLJ_EXCLUDES(mutex_);

  /// Pops the oldest queued frame into `out` (swapping image storage both
  /// ways, so a reused `out` makes the steady state allocation-free).
  /// Returns false when the queue is empty. Single consumer.
  bool pop_into(PendingFrame& out) SLJ_EXCLUDES(mutex_);

  /// Frames currently queued.
  std::size_t depth() const SLJ_EXCLUDES(mutex_);

  /// Total frames admitted so far (== the next frame's `sequence`).
  std::uint64_t admitted() const SLJ_EXCLUDES(mutex_);

  /// Closes the queue: every further push returns kClosed and producers
  /// blocked in push are woken. Queued frames can still be popped.
  void close() SLJ_EXCLUDES(mutex_);
  bool closed() const SLJ_EXCLUDES(mutex_);

  const FrameQueueConfig& config() const { return config_; }

 private:
  FrameQueueConfig config_;
  mutable slj::Mutex mutex_;
  slj::CondVar not_full_;
  /// The limiter is not internally synchronized; push() drives it under
  /// mutex_ so token accounting is serialized with ring admission.
  RateLimiter limiter_ SLJ_GUARDED_BY(mutex_);
  std::vector<PendingFrame> slots_ SLJ_GUARDED_BY(mutex_);  ///< ring storage, buffers recycled
  std::size_t head_ SLJ_GUARDED_BY(mutex_) = 0;  ///< index of the oldest queued frame
  std::size_t size_ SLJ_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_sequence_ SLJ_GUARDED_BY(mutex_) = 0;
  bool closed_ SLJ_GUARDED_BY(mutex_) = false;
};

}  // namespace slj::ingest
