// IngestTap: the observation interface the record/replay layer plugs into
// the ingest plane. The service invokes the tap at the four points that
// fully determine a run — session open, push verdict, tick (drain batch +
// the StreamUpdates it produced) and session close — so a tap can capture a
// live incident as a deterministic trace without the service knowing
// anything about trace files.
//
// Threading: on_push fires on producer threads, concurrently with each
// other and with the scheduler; on_open / on_tick / on_close fire under the
// service's pass mutex. Implementations serialize internally (TraceRecorder
// takes one mutex around its file).
#pragma once

#include <cstdint>
#include <vector>

#include "core/stream_engine.hpp"
#include "ingest/ingest_router.hpp"

namespace slj::ingest {

class IngestTap {
 public:
  virtual ~IngestTap() = default;

  /// A session opened with `config`, calibrated on `background`.
  virtual void on_open(Clock::time_point now, int session, const IngestSessionConfig& config,
                       const RgbImage& background) = 0;

  /// One push attempt resolved. `sequence` is the frame's per-session
  /// admission index when the push was accepted (push_accepted(outcome)),
  /// unspecified otherwise. `frame` is the offered payload either way.
  virtual void on_push(Clock::time_point now, int session, const RgbImage& frame,
                       PushOutcome outcome, std::uint64_t sequence) = 0;

  /// One scheduler round that carried frames: `batch.feeds[i]` advanced its
  /// session with the frame whose provenance is `batch.pending(i)`,
  /// producing `updates[i]`. Only the first `count` entries are live.
  virtual void on_tick(Clock::time_point now, const DrainBatch& batch,
                       const std::vector<core::StreamUpdate>& updates, std::size_t count) = 0;

  /// A session closed (explicitly) or was evicted (idle timeout), after its
  /// final report resolved; `discarded` counts frames dropped un-analysed.
  virtual void on_close(Clock::time_point now, int session, const core::JumpReport& report,
                        std::uint64_t discarded, bool evicted) = 0;
};

}  // namespace slj::ingest
