// Image<T>: the single pixel-buffer container used by every stage of the
// pipeline (RGB frames, grayscale difference maps, binary silhouettes and
// skeletons).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "imaging/geometry.hpp"

namespace slj {

/// 8-bit RGB pixel. Plain aggregate; members vary independently.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend constexpr bool operator==(const Rgb&, const Rgb&) = default;
};

/// Row-major 2-D pixel buffer.
///
/// Invariant: data_.size() == width_ * height_. The class never exposes a
/// way to break it; resizing reallocates.
template <typename T>
class Image {
 public:
  Image() = default;

  Image(int width, int height, T fill = T{})
      : width_(width), height_(height), data_(checked_size(width, height), fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }

  bool in_bounds(int x, int y) const { return x >= 0 && x < width_ && y >= 0 && y < height_; }
  bool in_bounds(const PointI& p) const { return in_bounds(p.x, p.y); }

  T& at(int x, int y) {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  const T& at(int x, int y) const {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  T& at(const PointI& p) { return at(p.x, p.y); }
  const T& at(const PointI& p) const { return at(p.x, p.y); }

  /// Bounds-checked read that returns `outside` for off-image coordinates.
  T at_or(int x, int y, T outside) const { return in_bounds(x, y) ? at(x, y) : outside; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Resizes to width × height with every pixel set to `fill`. Reuses the
  /// existing buffer when capacity allows, so steady-state callers (per-frame
  /// scratch in FrameWorkspace) never reallocate.
  void assign(int width, int height, T fill = T{}) {
    data_.assign(checked_size(width, height), fill);
    width_ = width;
    height_ = height;
  }

  /// Resizes to width × height leaving pixel values unspecified (whatever the
  /// buffer held before). For scratch images that are fully overwritten.
  void resize_discard(int width, int height) {
    data_.resize(checked_size(width, height));
    width_ = width;
    height_ = height;
  }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  friend bool operator==(const Image&, const Image&) = default;

 private:
  static std::size_t checked_size(int width, int height) {
    if (width < 0 || height < 0) {
      throw std::invalid_argument("Image dimensions must be non-negative");
    }
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using GrayImage = Image<std::uint8_t>;
using RgbImage = Image<Rgb>;
/// Binary image: 0 = background, 1 = foreground. Stored one byte per pixel.
using BinaryImage = Image<std::uint8_t>;

/// Number of foreground (non-zero) pixels.
inline std::size_t count_foreground(const BinaryImage& img) {
  return static_cast<std::size_t>(
      std::count_if(img.data().begin(), img.data().end(), [](std::uint8_t v) { return v != 0; }));
}

/// Intersection-over-union of two same-sized binary masks. Returns 1.0 when
/// both are empty (they agree perfectly).
inline double iou(const BinaryImage& a, const BinaryImage& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("iou: image sizes differ");
  }
  std::size_t inter = 0;
  std::size_t uni = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool fa = a.data()[i] != 0;
    const bool fb = b.data()[i] != 0;
    inter += static_cast<std::size_t>(fa && fb);
    uni += static_cast<std::size_t>(fa || fb);
  }
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// 8-connected neighbour offsets in Z-S order P2..P9: clockwise starting
/// from the pixel directly above. Thinning and graph construction both
/// depend on this exact order.
inline constexpr PointI kNeighbours8[8] = {
    {0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1}, {-1, 0}, {-1, -1}};

/// 4-connected neighbour offsets.
inline constexpr PointI kNeighbours4[4] = {{0, -1}, {1, 0}, {0, 1}, {-1, 0}};

}  // namespace slj
