// Rasterisation primitives used by the synthetic silhouette renderer and the
// figure benches: filled discs, capsules (thick line segments), convex
// polygons, and thin overlay lines.
#pragma once

#include <span>

#include "imaging/image.hpp"

namespace slj {

/// Fills the disc of radius `r` centred at `c` with `value`.
void fill_disc(BinaryImage& img, PointF c, double r, std::uint8_t value = 1);

/// Fills the capsule of radius `r` around segment [a, b] (a thick limb).
void fill_capsule(BinaryImage& img, PointF a, PointF b, double r, std::uint8_t value = 1);

/// Fills a convex polygon given its vertices in order.
void fill_convex_polygon(BinaryImage& img, std::span<const PointF> vertices,
                         std::uint8_t value = 1);

/// Bresenham line on a grayscale image (overlays for figure dumps).
void draw_line(GrayImage& img, PointI a, PointI b, std::uint8_t value);

/// Bresenham line on an RGB image.
void draw_line(RgbImage& img, PointI a, PointI b, Rgb value);

/// Small filled square marker (side 2*half+1) for key-point overlays.
void draw_marker(RgbImage& img, PointI c, int half, Rgb value);

}  // namespace slj
