// Integral images (summed-area tables) and the moving-window box mean the
// paper's object-extraction step is built on (Sec. 2: "average background
// matrix Bave over a moving window of n×n").
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "imaging/image.hpp"

namespace slj {

/// Summed-area table over a single channel. sum(x0,y0,x1,y1) is O(1).
class IntegralImage {
 public:
  IntegralImage() = default;

  /// Builds the table from an extractor functor mapping (x, y) → double.
  template <typename Fn>
  IntegralImage(int width, int height, Fn&& value_at) {
    assign(width, height, std::forward<Fn>(value_at));
  }

  /// Rebuilds the table in place, reusing the existing storage when capacity
  /// allows. Same recurrence as the constructor, so the resulting sums are
  /// bit-identical to a freshly built table.
  template <typename Fn>
  void assign(int width, int height, Fn&& value_at) {
    table_.assign(checked_table_size(width, height), 0.0);
    width_ = width;
    height_ = height;
    for (int y = 0; y < height; ++y) {
      double row_sum = 0.0;
      for (int x = 0; x < width; ++x) {
        row_sum += value_at(x, y);
        tab(x + 1, y + 1) = tab(x + 1, y) + row_sum;
      }
    }
  }

  int width() const { return width_; }
  int height() const { return height_; }

  /// Inclusive-rectangle sum over [x0, x1] × [y0, y1]; clamps to the image.
  double sum(int x0, int y0, int x1, int y1) const;

  /// Resizes to a zeroed (width+1) × (height+1) table and returns its raw
  /// storage, for external row-major filling with the same recurrence as
  /// assign() (the FrameWorkspace fused RGB builder). Row y of the source
  /// lands at raw()[(y+1) * stride() + x + 1].
  double* raw_prepare(int width, int height) {
    table_.assign(checked_table_size(width, height), 0.0);
    width_ = width;
    height_ = height;
    return table_.data();
  }

  /// Like raw_prepare, but leaves every entry unspecified instead of zeroing
  /// the table. For builders that overwrite the entire table themselves
  /// (row 0, column 0 included) — skipping the full-table clear is a
  /// measurable win at frame rate.
  double* raw_prepare_discard(int width, int height) {
    table_.resize(checked_table_size(width, height));
    width_ = width;
    height_ = height;
    return table_.data();
  }

  /// Raw table access for clamp-free interior window sums; entries are laid
  /// out as described at raw_prepare().
  const double* raw() const { return table_.data(); }
  std::size_t stride() const { return static_cast<std::size_t>(width_) + 1; }

  /// Mean of the window centred at (x, y) with side `n` (odd), clamped at
  /// image borders (the divisor is the clamped area, so border means stay
  /// unbiased).
  double window_mean(int x, int y, int n) const;

 private:
  /// Size of the (width+1) × (height+1) table, computed in size_t with the
  /// dimensions validated and the product overflow-guarded. Callers can hand
  /// this class any decoded dimensions; it defends itself.
  static std::size_t checked_table_size(int width, int height) {
    if (width < 0 || height < 0) {
      throw std::invalid_argument("IntegralImage dimensions must be non-negative");
    }
    const std::size_t tw = static_cast<std::size_t>(width) + 1;
    const std::size_t th = static_cast<std::size_t>(height) + 1;
    if (tw > std::numeric_limits<std::size_t>::max() / th) {
      throw std::length_error("IntegralImage dimensions overflow size_t");
    }
    return tw * th;
  }

  double& tab(int x, int y) {
    return table_[static_cast<std::size_t>(y) * (static_cast<std::size_t>(width_) + 1) +
                  static_cast<std::size_t>(x)];
  }
  const double& tab(int x, int y) const {
    return table_[static_cast<std::size_t>(y) * (static_cast<std::size_t>(width_) + 1) +
                  static_cast<std::size_t>(x)];
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<double> table_;
};

/// Per-channel moving-window mean of an RGB image; the paper's Aave / Bave.
/// `n` must be odd and >= 1.
struct RgbMeans {
  Image<double> r;
  Image<double> g;
  Image<double> b;
};

RgbMeans window_mean_rgb(const RgbImage& img, int n);

/// Moving-window mean of a grayscale image.
Image<double> window_mean_gray(const GrayImage& img, int n);

}  // namespace slj
