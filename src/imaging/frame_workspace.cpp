#include "imaging/frame_workspace.hpp"

#include <stdexcept>

namespace slj {

void build_rgb_integrals(const RgbImage& img, FrameWorkspace& ws) {
  const int w = img.width();
  const int h = img.height();
  double* tr = ws.integral_r.raw_prepare(w, h);
  double* tg = ws.integral_g.raw_prepare(w, h);
  double* tb = ws.integral_b.raw_prepare(w, h);
  const std::size_t stride = static_cast<std::size_t>(w) + 1;
  const Rgb* px = img.data().data();
  for (int y = 0; y < h; ++y) {
    // Row y of the source fills table row y+1; row 0 stays zero (prepared).
    double* row_r = tr + (static_cast<std::size_t>(y) + 1) * stride;
    double* row_g = tg + (static_cast<std::size_t>(y) + 1) * stride;
    double* row_b = tb + (static_cast<std::size_t>(y) + 1) * stride;
    const double* prev_r = row_r - stride;
    const double* prev_g = row_g - stride;
    const double* prev_b = row_b - stride;
    double sum_r = 0.0;
    double sum_g = 0.0;
    double sum_b = 0.0;
    for (int x = 0; x < w; ++x) {
      const Rgb p = *px++;
      sum_r += static_cast<double>(p.r);
      sum_g += static_cast<double>(p.g);
      sum_b += static_cast<double>(p.b);
      row_r[x + 1] = prev_r[x + 1] + sum_r;
      row_g[x + 1] = prev_g[x + 1] + sum_g;
      row_b[x + 1] = prev_b[x + 1] + sum_b;
    }
  }
}

SLJ_HOT_PATH void window_mean_rgb_into(const RgbImage& img, int n, FrameWorkspace& ws) {
  if (n < 1 || n % 2 == 0) {
    throw std::invalid_argument("moving-window size must be odd and >= 1");
  }
  const int w = img.width();
  const int h = img.height();
  build_rgb_integrals(img, ws);
  ws.aave.r.resize_discard(w, h);
  ws.aave.g.resize_discard(w, h);
  ws.aave.b.resize_discard(w, h);
  const int half = n / 2;
  const double area = static_cast<double>(n) * static_cast<double>(n);
  const double* tr = ws.integral_r.raw();
  const double* tg = ws.integral_g.raw();
  const double* tb = ws.integral_b.raw();
  const std::size_t stride = ws.integral_r.stride();
  double* out_r = ws.aave.r.data().data();
  double* out_g = ws.aave.g.data().data();
  double* out_b = ws.aave.b.data().data();
  std::size_t i = 0;
  for (int y = 0; y < h; ++y) {
    const bool y_interior = y >= half && y + half < h;
    for (int x = 0; x < w; ++x, ++i) {
      if (y_interior && x >= half && x + half < w) {
        out_r[i] = interior_window_mean(tr, stride, x, y, half, area);
        out_g[i] = interior_window_mean(tg, stride, x, y, half, area);
        out_b[i] = interior_window_mean(tb, stride, x, y, half, area);
      } else {
        out_r[i] = ws.integral_r.window_mean(x, y, n);
        out_g[i] = ws.integral_g.window_mean(x, y, n);
        out_b[i] = ws.integral_b.window_mean(x, y, n);
      }
    }
  }
}

}  // namespace slj
