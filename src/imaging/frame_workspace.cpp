#include "imaging/frame_workspace.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "core/simd.hpp"
#include "imaging/row_kernels.hpp"

namespace slj {
namespace {

// Fused RGB summed-area-table build, templated on the simd backend.
//
// Layout of the work:
//   phase 1 (banded)  every band builds a *local* SAT of its own rows:
//                     int32 row prefix sums staged per band, then
//                     sat_row_first for the band's first row and
//                     sat_row_next for the rest.
//   phase 2 (serial)  carry rows: carry[b] = carry[b-1] + last local table
//                     row of band b-1 (read before phase 3 touches it).
//   phase 3 (banded)  add carry[b] to every table row of band b (band 0's
//                     carry is zero and is skipped).
//
// Bit-identity at any band count and backend: every table entry is an
// integer sum of 8-bit pixels, far below 2^53, so each double addition is
// exact and any association (serial recurrence, band-local + carry) yields
// the same bits.
template <class B>
void build_rgb_integrals_impl(const RgbImage& img, FrameWorkspace& ws, BandExecutor* exec) {
  const int w = img.width();
  const int h = img.height();
  double* tr = ws.integral_r.raw_prepare_discard(w, h);
  double* tg = ws.integral_g.raw_prepare_discard(w, h);
  double* tb = ws.integral_b.raw_prepare_discard(w, h);
  const std::size_t stride = static_cast<std::size_t>(w) + 1;
  // Discard-prepared tables: table row 0 (all zeros) is ours to write; the
  // row kernels write column 0 of every other row.
  std::fill_n(tr, stride, 0.0);
  std::fill_n(tg, stride, 0.0);
  std::fill_n(tb, stride, 0.0);

  int bands = exec != nullptr ? exec->bands() : 1;
  if (bands <= 1 || h < 2) bands = 1;
  auto& bs = ws.band_scratch;
  bs.stage.resize(static_cast<std::size_t>(bands) * 3u * static_cast<std::size_t>(w));
  const Rgb* px = img.data().data();

  run_banded(exec, h, [&](int band, int r0, int r1) {
    std::int32_t* stage_r =
        bs.stage.data() + static_cast<std::size_t>(band) * 3u * static_cast<std::size_t>(w);
    std::int32_t* stage_g = stage_r + w;
    std::int32_t* stage_b = stage_g + w;
    for (int y = r0; y < r1; ++y) {
      const Rgb* p = px + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      std::int32_t sum_r = 0;
      std::int32_t sum_g = 0;
      std::int32_t sum_b = 0;
      for (int x = 0; x < w; ++x) {
        sum_r += p[x].r;
        sum_g += p[x].g;
        sum_b += p[x].b;
        stage_r[x] = sum_r;
        stage_g[x] = sum_g;
        stage_b[x] = sum_b;
      }
      double* row_r = tr + (static_cast<std::size_t>(y) + 1) * stride;
      double* row_g = tg + (static_cast<std::size_t>(y) + 1) * stride;
      double* row_b = tb + (static_cast<std::size_t>(y) + 1) * stride;
      if (y == r0) {
        // Band-local first row: previous row is all zeros (globally true for
        // band 0; made true for later bands by the phase-3 carry).
        rowk::sat_row_first<B>(stage_r, row_r, w);
        rowk::sat_row_first<B>(stage_g, row_g, w);
        rowk::sat_row_first<B>(stage_b, row_b, w);
      } else {
        rowk::sat_row_next<B>(stage_r, row_r - stride, row_r, w);
        rowk::sat_row_next<B>(stage_g, row_g - stride, row_g, w);
        rowk::sat_row_next<B>(stage_b, row_b - stride, row_b, w);
      }
    }
  });

  if (bands > 1) {
    bs.carry.assign(3u * static_cast<std::size_t>(bands) * stride, 0.0);
    double* carry = bs.carry.data();
    double* const tabs[3] = {tr, tg, tb};
    // Phase 2: serial carry chain over the bands' local totals. Reads the
    // last *local* table row of band b-1, which phase 3 has not touched yet.
    for (int b = 1; b < bands; ++b) {
      const std::size_t last_local = static_cast<std::size_t>(band_begin(h, bands, b)) * stride;
      for (int c = 0; c < 3; ++c) {
        const std::size_t base = (static_cast<std::size_t>(c) * static_cast<std::size_t>(bands) +
                                  static_cast<std::size_t>(b)) *
                                 stride;
        rowk::add_rows<B>(carry + base - stride, tabs[c] + last_local, carry + base, stride);
      }
    }
    // Phase 3: fold each band's carry into all of its table rows.
    run_banded(exec, h, [&](int band, int r0, int r1) {
      if (band == 0) return;
      for (int c = 0; c < 3; ++c) {
        const double* cur = carry + (static_cast<std::size_t>(c) * static_cast<std::size_t>(bands) +
                                     static_cast<std::size_t>(band)) *
                                        stride;
        for (int y = r0; y < r1; ++y) {
          rowk::add_in_place<B>(cur, tabs[c] + (static_cast<std::size_t>(y) + 1) * stride, stride);
        }
      }
    });
  }
}

template <class B>
void window_mean_rgb_into_impl(const RgbImage& img, int n, FrameWorkspace& ws,
                               BandExecutor* exec) {
  if (n < 1 || n % 2 == 0) {
    throw std::invalid_argument("moving-window size must be odd and >= 1");
  }
  const int w = img.width();
  const int h = img.height();
  build_rgb_integrals_impl<B>(img, ws, exec);
  ws.aave.r.resize_discard(w, h);
  ws.aave.g.resize_discard(w, h);
  ws.aave.b.resize_discard(w, h);
  const int half = n / 2;
  const double area = static_cast<double>(n) * static_cast<double>(n);
  const double* tr = ws.integral_r.raw();
  const double* tg = ws.integral_g.raw();
  const double* tb = ws.integral_b.raw();
  const std::size_t stride = ws.integral_r.stride();
  double* out_r = ws.aave.r.data().data();
  double* out_g = ws.aave.g.data().data();
  double* out_b = ws.aave.b.data().data();

  run_banded(exec, h, [&](int /*band*/, int row_begin, int row_end) {
    using V = simd::VecF64<B>;
    const V varea = V::broadcast(area);
    for (int y = row_begin; y < row_end; ++y) {
      std::size_t i = static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      const bool y_interior = y >= half && y + half < h;
      if (!y_interior) {
        for (int x = 0; x < w; ++x) {
          out_r[i + static_cast<std::size_t>(x)] = ws.integral_r.window_mean(x, y, n);
          out_g[i + static_cast<std::size_t>(x)] = ws.integral_g.window_mean(x, y, n);
          out_b[i + static_cast<std::size_t>(x)] = ws.integral_b.window_mean(x, y, n);
        }
        continue;
      }
      const std::size_t r0 = static_cast<std::size_t>(y - half) * stride;
      const std::size_t r1 = static_cast<std::size_t>(y + half + 1) * stride;
      const int x_end = w - half;  // first non-interior column on the right
      int x = 0;
      for (; x < half; ++x) {
        out_r[i + static_cast<std::size_t>(x)] = ws.integral_r.window_mean(x, y, n);
        out_g[i + static_cast<std::size_t>(x)] = ws.integral_g.window_mean(x, y, n);
        out_b[i + static_cast<std::size_t>(x)] = ws.integral_b.window_mean(x, y, n);
      }
      for (; x + static_cast<int>(V::kLanes) <= x_end; x += static_cast<int>(V::kLanes)) {
        const std::size_t c0 = static_cast<std::size_t>(x - half);
        const std::size_t c1 = static_cast<std::size_t>(x + half + 1);
        const std::size_t o = i + static_cast<std::size_t>(x);
        (rowk::window_sum_vec<B>(tr, r0, r1, c0, c1) / varea).store(out_r + o);
        (rowk::window_sum_vec<B>(tg, r0, r1, c0, c1) / varea).store(out_g + o);
        (rowk::window_sum_vec<B>(tb, r0, r1, c0, c1) / varea).store(out_b + o);
      }
      for (; x < x_end; ++x) {
        out_r[i + static_cast<std::size_t>(x)] = interior_window_mean(tr, stride, x, y, half, area);
        out_g[i + static_cast<std::size_t>(x)] = interior_window_mean(tg, stride, x, y, half, area);
        out_b[i + static_cast<std::size_t>(x)] = interior_window_mean(tb, stride, x, y, half, area);
      }
      for (; x < w; ++x) {
        out_r[i + static_cast<std::size_t>(x)] = ws.integral_r.window_mean(x, y, n);
        out_g[i + static_cast<std::size_t>(x)] = ws.integral_g.window_mean(x, y, n);
        out_b[i + static_cast<std::size_t>(x)] = ws.integral_b.window_mean(x, y, n);
      }
    }
  });
}

}  // namespace

void build_rgb_integrals(const RgbImage& img, FrameWorkspace& ws, BandExecutor* exec) {
  build_rgb_integrals_impl<simd::Active>(img, ws, exec);
}

void build_rgb_integrals_scalar(const RgbImage& img, FrameWorkspace& ws) {
  build_rgb_integrals_impl<simd::ScalarBackend>(img, ws, nullptr);
}

SLJ_HOT_PATH void window_mean_rgb_into(const RgbImage& img, int n, FrameWorkspace& ws,
                                       BandExecutor* exec) {
  window_mean_rgb_into_impl<simd::Active>(img, n, ws, exec);
}

}  // namespace slj
