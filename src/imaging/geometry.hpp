// Basic 2-D geometry primitives shared across the pipeline.
//
// Image coordinate convention: x grows to the right, y grows *down* (row
// index). Feature encoding (pose module) flips y so that "up" is positive
// when it reasons about the plane around the waist; everything in imaging
// stays in row/column space.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>

namespace slj {

/// Integer pixel coordinate.
struct PointI {
  int x = 0;
  int y = 0;

  friend constexpr bool operator==(const PointI&, const PointI&) = default;
  friend constexpr auto operator<=>(const PointI&, const PointI&) = default;
};

/// Continuous 2-D point / vector.
struct PointF {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const PointF&, const PointF&) = default;

  constexpr PointF operator+(const PointF& o) const { return {x + o.x, y + o.y}; }
  constexpr PointF operator-(const PointF& o) const { return {x - o.x, y - o.y}; }
  constexpr PointF operator*(double s) const { return {x * s, y * s}; }
  constexpr PointF operator/(double s) const { return {x / s, y / s}; }
};

inline double dot(const PointF& a, const PointF& b) { return a.x * b.x + a.y * b.y; }

inline double norm(const PointF& a) { return std::sqrt(dot(a, a)); }

inline double distance(const PointF& a, const PointF& b) { return norm(a - b); }

inline double distance(const PointI& a, const PointI& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

inline PointF to_f(const PointI& p) { return {static_cast<double>(p.x), static_cast<double>(p.y)}; }

inline PointI round_to_i(const PointF& p) {
  return {static_cast<int>(std::lround(p.x)), static_cast<int>(std::lround(p.y))};
}

/// Chebyshev (8-neighbourhood) distance.
inline int chebyshev(const PointI& a, const PointI& b) {
  const int dx = std::abs(a.x - b.x);
  const int dy = std::abs(a.y - b.y);
  return dx > dy ? dx : dy;
}

}  // namespace slj

template <>
struct std::hash<slj::PointI> {
  std::size_t operator()(const slj::PointI& p) const noexcept {
    // Pixels fit comfortably in 32 bits per axis; mix them into one word.
    const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x));
    const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.y));
    return std::hash<std::uint64_t>{}((ux << 32) | uy);
  }
};
