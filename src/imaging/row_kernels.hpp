// Row-level SIMD primitives shared by the summed-area-table builders
// (frame_workspace.cpp, filters.cpp) and the windowed-sum passes
// (object_extractor.cpp). Everything here is templated on a slj::simd
// backend tag and instantiated twice by the kernels: once with
// simd::Active, once with simd::ScalarBackend — the scalar twin the
// SIMD-vs-scalar property suites compare against.
//
// Bit-identity: SAT rows are staged as int32 prefix sums (exact — row sums
// of 8-bit pixels stay far below 2^31) and widened to double with an exact
// conversion, so `prev + double(stage)` performs the same single IEEE
// addition as the serial recurrence `tab(x+1,y+1) = tab(x+1,y) + row_sum`.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/simd.hpp"

namespace slj::rowk {

/// First row of a (possibly band-local) SAT: row[0] = 0,
/// row[x+1] = double(stage[x]) — the previous row is all zeros.
template <class B>
inline void sat_row_first(const std::int32_t* stage, double* row, int w) {
  using V = simd::VecF64<B>;
  row[0] = 0.0;
  int x = 0;
  for (; x + V::kLanes <= w; x += V::kLanes) {
    V::load_i32(stage + x).store(row + x + 1);
  }
  for (; x < w; ++x) row[x + 1] = static_cast<double>(stage[x]);
}

/// Interior SAT row: row[0] = 0, row[x+1] = prev[x+1] + double(stage[x]).
template <class B>
inline void sat_row_next(const std::int32_t* stage, const double* prev, double* row, int w) {
  using V = simd::VecF64<B>;
  row[0] = 0.0;
  int x = 0;
  for (; x + V::kLanes <= w; x += V::kLanes) {
    (V::load(prev + x + 1) + V::load_i32(stage + x)).store(row + x + 1);
  }
  for (; x < w; ++x) row[x + 1] = prev[x + 1] + static_cast<double>(stage[x]);
}

/// out[i] = a[i] + b[i]; used for the band-carry accumulation (phase 2).
template <class B>
inline void add_rows(const double* a, const double* b, double* out, std::size_t n) {
  using V = simd::VecF64<B>;
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    (V::load(a + i) + V::load(b + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

/// row[i] = row[i] + carry[i]; the banded SAT's carry application (phase 3).
/// Written as `local + carry` so the operand order matches phase 2.
template <class B>
inline void add_in_place(const double* carry, double* row, std::size_t n) {
  using V = simd::VecF64<B>;
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    (V::load(row + i) + V::load(carry + i)).store(row + i);
  }
  for (; i < n; ++i) row[i] = row[i] + carry[i];
}

/// Window sums for kLanes consecutive pixels: the four clamp-free table
/// loads of interior_window_sum, in the same operation order
/// ((a − b) − c) + d, so every lane is bit-identical to the scalar sum.
/// `r0`/`r1` are table-row offsets (rows y−half and y+half+1 times the
/// stride); `c0`/`c1` are table columns x−half and x+half+1 of the first
/// lane.
template <class B>
inline simd::VecF64<B> window_sum_vec(const double* tab, std::size_t r0, std::size_t r1,
                                      std::size_t c0, std::size_t c1) {
  using V = simd::VecF64<B>;
  return V::load(tab + r1 + c1) - V::load(tab + r1 + c0) - V::load(tab + r0 + c1) +
         V::load(tab + r0 + c0);
}

/// col[x] += row[x] for a 0/1 byte row — seeds the sliding column counts of
/// the separable integer box filters.
template <class B>
inline void col_add_u8(const std::uint8_t* row, std::uint16_t* col, int w) {
  using V = simd::VecU16<B>;
  int x = 0;
  for (; x + V::kLanes <= w; x += V::kLanes) {
    (V::load(col + x) + V::load_u8(row + x)).store(col + x);
  }
  for (; x < w; ++x) col[x] = static_cast<std::uint16_t>(col[x] + row[x]);
}

/// col[x] -= row[x]; the retiring row when the window slides past the bottom
/// edge (no row enters).
template <class B>
inline void col_sub_u8(const std::uint8_t* row, std::uint16_t* col, int w) {
  using V = simd::VecU16<B>;
  int x = 0;
  for (; x + V::kLanes <= w; x += V::kLanes) {
    (V::load(col + x) - V::load_u8(row + x)).store(col + x);
  }
  for (; x < w; ++x) col[x] = static_cast<std::uint16_t>(col[x] - row[x]);
}

/// col[x] += add[x] - sub[x]: one fused slide of the column counts when the
/// window both gains its new bottom row and retires its old top row.
template <class B>
inline void col_slide_u8(const std::uint8_t* add, const std::uint8_t* sub, std::uint16_t* col,
                         int w) {
  using V = simd::VecU16<B>;
  int x = 0;
  for (; x + V::kLanes <= w; x += V::kLanes) {
    (V::load(col + x) + V::load_u8(add + x) - V::load_u8(sub + x)).store(col + x);
  }
  for (; x < w; ++x) col[x] = static_cast<std::uint16_t>(col[x] + add[x] - sub[x]);
}

}  // namespace slj::rowk
