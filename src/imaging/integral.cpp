#include "imaging/integral.hpp"

#include <algorithm>
#include <stdexcept>

namespace slj {

double IntegralImage::sum(int x0, int y0, int x1, int y1) const {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, width_ - 1);
  y1 = std::min(y1, height_ - 1);
  if (x0 > x1 || y0 > y1) return 0.0;
  return tab(x1 + 1, y1 + 1) - tab(x0, y1 + 1) - tab(x1 + 1, y0) + tab(x0, y0);
}

double IntegralImage::window_mean(int x, int y, int n) const {
  const int half = n / 2;
  const int x0 = std::max(x - half, 0);
  const int y0 = std::max(y - half, 0);
  const int x1 = std::min(x + half, width_ - 1);
  const int y1 = std::min(y + half, height_ - 1);
  const double area = static_cast<double>(x1 - x0 + 1) * static_cast<double>(y1 - y0 + 1);
  return sum(x0, y0, x1, y1) / area;
}

namespace {

void require_odd_window(int n) {
  if (n < 1 || n % 2 == 0) {
    throw std::invalid_argument("moving-window size must be odd and >= 1");
  }
}

}  // namespace

RgbMeans window_mean_rgb(const RgbImage& img, int n) {
  require_odd_window(n);
  const int w = img.width();
  const int h = img.height();
  IntegralImage ir(w, h, [&](int x, int y) { return static_cast<double>(img.at(x, y).r); });
  IntegralImage ig(w, h, [&](int x, int y) { return static_cast<double>(img.at(x, y).g); });
  IntegralImage ib(w, h, [&](int x, int y) { return static_cast<double>(img.at(x, y).b); });
  RgbMeans out{Image<double>(w, h), Image<double>(w, h), Image<double>(w, h)};
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out.r.at(x, y) = ir.window_mean(x, y, n);
      out.g.at(x, y) = ig.window_mean(x, y, n);
      out.b.at(x, y) = ib.window_mean(x, y, n);
    }
  }
  return out;
}

Image<double> window_mean_gray(const GrayImage& img, int n) {
  require_odd_window(n);
  const int w = img.width();
  const int h = img.height();
  IntegralImage integral(w, h, [&](int x, int y) { return static_cast<double>(img.at(x, y)); });
  Image<double> out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out.at(x, y) = integral.window_mean(x, y, n);
    }
  }
  return out;
}

}  // namespace slj
