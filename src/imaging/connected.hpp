// Connected-component labelling and component statistics. The segmentation
// stage keeps only the largest component (the jumper) after thresholding.
#pragma once

#include <vector>

#include "core/annotations.hpp"
#include "imaging/image.hpp"

namespace slj {

/// Per-component summary produced by label_components.
struct ComponentStats {
  int label = 0;            ///< 1-based label as stored in the label image.
  std::size_t area = 0;     ///< pixel count
  PointI min{0, 0};         ///< bounding-box top-left
  PointI max{0, 0};         ///< bounding-box bottom-right (inclusive)
  PointF centroid{0, 0};
};

struct Labeling {
  Image<int> labels;  ///< 0 = background, 1..N = component id
  std::vector<ComponentStats> components;
};

/// Labels foreground components. `eight_connected` selects 8- vs
/// 4-connectivity (skeletons need 8).
Labeling label_components(const BinaryImage& img, bool eight_connected = true);

/// Allocation-free variant: labels and per-component stats are written into
/// `out` and the DFS runs on `stack`, both reusing their storage.
SLJ_HOT_PATH void label_components_into(const BinaryImage& img, bool eight_connected, Labeling& out,
                           std::vector<PointI>& stack);

/// Mask of the largest foreground component; empty-input → all-zero mask.
BinaryImage largest_component(const BinaryImage& img, bool eight_connected = true);

/// Allocation-free variant of largest_component; `labeling` and `stack` are
/// scratch, the mask lands in `out`. `out` must not alias `img`.
SLJ_HOT_PATH void largest_component_into(const BinaryImage& img, bool eight_connected, Labeling& labeling,
                            std::vector<PointI>& stack, BinaryImage& out);

/// Counts connected foreground components.
std::size_t component_count(const BinaryImage& img, bool eight_connected = true);

}  // namespace slj
