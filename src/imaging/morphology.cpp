#include "imaging/morphology.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "core/simd.hpp"

namespace slj {
namespace {

std::span<const PointI> offsets(Structuring se) {
  return se == Structuring::kCross4 ? std::span<const PointI>(kNeighbours4)
                                    : std::span<const PointI>(kNeighbours8);
}

}  // namespace

BinaryImage dilate(const BinaryImage& img, Structuring se) {
  BinaryImage out = img;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (img.at(x, y)) continue;
      for (const PointI& d : offsets(se)) {
        if (img.at_or(x + d.x, y + d.y, 0)) {
          out.at(x, y) = 1;
          break;
        }
      }
    }
  }
  return out;
}

BinaryImage erode(const BinaryImage& img, Structuring se) {
  BinaryImage out = img;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (!img.at(x, y)) continue;
      for (const PointI& d : offsets(se)) {
        // Outside the image counts as foreground for erosion (and as
        // background for dilation): this keeps opening anti-extensive and
        // closing extensive at the image border.
        if (!img.at_or(x + d.x, y + d.y, 1)) {
          out.at(x, y) = 0;
          break;
        }
      }
    }
  }
  return out;
}

BinaryImage open(const BinaryImage& img, Structuring se) { return dilate(erode(img, se), se); }

BinaryImage close(const BinaryImage& img, Structuring se) { return erode(dilate(img, se), se); }

BinaryImage fill_holes(const BinaryImage& img) {
  BinaryImage reached;
  std::vector<std::uint32_t> stack;
  BinaryImage out;
  fill_holes_into(img, reached, stack, out);
  return out;
}

SLJ_HOT_PATH void fill_holes_into(const BinaryImage& img, BinaryImage& reached,
                     std::vector<std::uint32_t>& stack, BinaryImage& out) {
  const int w = img.width();
  const int h = img.height();
  out.resize_discard(w, h);
  if (w == 0 || h == 0) return;
  // Flood the background from the border (4-connectivity keeps diagonal
  // silhouette boundaries watertight), then invert what was not reached.
  //
  // The flood runs on a "closed" map padded by two cells per side: the
  // outermost ring is pre-closed sentinel (so neighbour indices never leave
  // the array), the next ring is open border the flood is seeded from, and
  // interior cells start closed iff the corresponding pixel is foreground.
  // Flood order does not affect the reached set, so the filled result is
  // identical to the original per-pixel flood.
  const int pw = w + 4;
  const int ph = h + 4;
  reached.resize_discard(pw, ph);  // holds the closed map, not plain reach
  std::uint8_t* closed = reached.data().data();
  const std::uint8_t* src = img.data().data();
  for (int py = 0; py < ph; ++py) {
    std::uint8_t* row = closed + static_cast<std::size_t>(py) * pw;
    if (py == 0 || py == ph - 1) {
      std::fill(row, row + pw, 1);
      continue;
    }
    row[0] = 1;
    row[pw - 1] = 1;
    if (py == 1 || py == ph - 2) {
      std::fill(row + 1, row + pw - 1, 0);
      continue;
    }
    row[1] = 0;
    row[pw - 2] = 0;
    // Any nonzero source byte closes the cell, so the row copies verbatim.
    std::memcpy(row + 2, src + static_cast<std::size_t>(py - 2) * w, static_cast<std::size_t>(w));
  }
  // Scanline flood from a single seed on the open border ring (the ring is
  // 4-connected, so one seed reaches all of it). Each popped seed closes its
  // whole horizontal run, then pushes one representative per open run in the
  // rows above and below — each cell is visited O(1) times instead of once
  // per neighbour. The reached set is the seed's connected component either
  // way, so the filled result is identical to the per-pixel flood.
  stack.clear();
  const std::uint32_t seed = static_cast<std::uint32_t>(pw) + 1u;
  closed[seed] = 1;
  stack.push_back(seed);
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    // Expand the run; the sentinel columns (always closed) stop the walks.
    std::uint32_t l = idx;
    while (!closed[l - 1]) closed[--l] = 1;
    std::uint32_t r = idx;
    while (!closed[r + 1]) closed[++r] = 1;
    // Seed the adjacent rows: one push per maximal open run inside the
    // window. The sentinel rows (always closed) make the offsets safe.
    for (const std::int64_t dir : {-static_cast<std::int64_t>(pw), static_cast<std::int64_t>(pw)}) {
      std::uint32_t j = static_cast<std::uint32_t>(static_cast<std::int64_t>(l) + dir);
      const std::uint32_t j_end = static_cast<std::uint32_t>(static_cast<std::int64_t>(r) + dir);
      while (j <= j_end) {
        if (closed[j]) {
          ++j;
          continue;
        }
        closed[j] = 1;
        stack.push_back(j);
        ++j;
        // Skip the rest of this run; the pushed seed closes it when popped.
        while (j <= j_end && !closed[j]) ++j;
      }
    }
  }
  // A background pixel still open is an interior hole: fill it.
  std::uint8_t* dst = out.data().data();
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* src_row = src + static_cast<std::size_t>(y) * w;
    const std::uint8_t* closed_row = closed + static_cast<std::size_t>(y + 2) * pw + 2;
    simd::store_fill01_u8<simd::Active>(src_row, closed_row, dst + static_cast<std::size_t>(y) * w,
                                        static_cast<std::size_t>(w));
  }
}

}  // namespace slj
