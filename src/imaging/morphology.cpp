#include "imaging/morphology.hpp"

#include <span>
#include <vector>

namespace slj {
namespace {

std::span<const PointI> offsets(Structuring se) {
  return se == Structuring::kCross4 ? std::span<const PointI>(kNeighbours4)
                                    : std::span<const PointI>(kNeighbours8);
}

}  // namespace

BinaryImage dilate(const BinaryImage& img, Structuring se) {
  BinaryImage out = img;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (img.at(x, y)) continue;
      for (const PointI& d : offsets(se)) {
        if (img.at_or(x + d.x, y + d.y, 0)) {
          out.at(x, y) = 1;
          break;
        }
      }
    }
  }
  return out;
}

BinaryImage erode(const BinaryImage& img, Structuring se) {
  BinaryImage out = img;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (!img.at(x, y)) continue;
      for (const PointI& d : offsets(se)) {
        // Outside the image counts as foreground for erosion (and as
        // background for dilation): this keeps opening anti-extensive and
        // closing extensive at the image border.
        if (!img.at_or(x + d.x, y + d.y, 1)) {
          out.at(x, y) = 0;
          break;
        }
      }
    }
  }
  return out;
}

BinaryImage open(const BinaryImage& img, Structuring se) { return dilate(erode(img, se), se); }

BinaryImage close(const BinaryImage& img, Structuring se) { return erode(dilate(img, se), se); }

BinaryImage fill_holes(const BinaryImage& img) {
  const int w = img.width();
  const int h = img.height();
  // Flood the background from the border (4-connectivity keeps diagonal
  // silhouette boundaries watertight), then invert what was not reached.
  BinaryImage reached(w, h, 0);
  std::vector<PointI> stack;
  auto push_if_bg = [&](int x, int y) {
    if (x >= 0 && x < w && y >= 0 && y < h && !img.at(x, y) && !reached.at(x, y)) {
      reached.at(x, y) = 1;
      stack.push_back({x, y});
    }
  };
  for (int x = 0; x < w; ++x) {
    push_if_bg(x, 0);
    push_if_bg(x, h - 1);
  }
  for (int y = 0; y < h; ++y) {
    push_if_bg(0, y);
    push_if_bg(w - 1, y);
  }
  while (!stack.empty()) {
    const PointI p = stack.back();
    stack.pop_back();
    for (const PointI& d : kNeighbours4) {
      push_if_bg(p.x + d.x, p.y + d.y);
    }
  }
  BinaryImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out.at(x, y) = (img.at(x, y) || !reached.at(x, y)) ? 1 : 0;
    }
  }
  return out;
}

}  // namespace slj
