// Netpbm (PGM / PPM, binary variants) reading and writing. Used by the
// figure benches and examples to dump pipeline stages for inspection.
#pragma once

#include <string>

#include "imaging/image.hpp"

namespace slj {

/// Write an 8-bit grayscale image as binary PGM (P5).
void write_pgm(const GrayImage& img, const std::string& path);

/// Write an RGB image as binary PPM (P6).
void write_ppm(const RgbImage& img, const std::string& path);

/// Read a binary PGM (P5). Throws std::runtime_error on malformed input.
GrayImage read_pgm(const std::string& path);

/// Read a binary PPM (P6). Throws std::runtime_error on malformed input.
RgbImage read_ppm(const std::string& path);

/// Scale a binary (0/1) mask to a viewable 0/255 grayscale image.
GrayImage binary_to_gray(const BinaryImage& img);

/// Threshold a grayscale image into a 0/1 mask (value > threshold → 1).
BinaryImage gray_to_binary(const GrayImage& img, std::uint8_t threshold);

}  // namespace slj
