#include "imaging/filters.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "core/simd.hpp"
#include "imaging/frame_workspace.hpp"
#include "imaging/integral.hpp"
#include "imaging/row_kernels.hpp"

namespace slj {
namespace {

void require_odd(int k) {
  if (k < 1 || k % 2 == 0) throw std::invalid_argument("filter window must be odd and >= 1");
}

}  // namespace

GrayImage median_filter(const GrayImage& img, int k) {
  require_odd(k);
  const int half = k / 2;
  GrayImage out(img.width(), img.height());
  std::array<int, 256> hist{};
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      hist.fill(0);
      int count = 0;
      for (int dy = -half; dy <= half; ++dy) {
        for (int dx = -half; dx <= half; ++dx) {
          const int nx = x + dx;
          const int ny = y + dy;
          if (img.in_bounds(nx, ny)) {
            ++hist[img.at(nx, ny)];
            ++count;
          }
        }
      }
      // Walk the histogram to the median position.
      const int target = count / 2;
      int seen = 0;
      std::uint8_t median = 0;
      for (int v = 0; v < 256; ++v) {
        seen += hist[v];
        if (seen > target) {
          median = static_cast<std::uint8_t>(v);
          break;
        }
      }
      out.at(x, y) = median;
    }
  }
  return out;
}

BinaryImage median_filter_binary(const BinaryImage& img, int k) {
  IntegralImage integral;
  BinaryImage out;
  median_filter_binary_into(img, k, integral, out);
  return out;
}

SLJ_HOT_PATH void median_filter_binary_into(const BinaryImage& img, int k, IntegralImage& integral,
                               BinaryImage& out, BandExecutor* exec, BandScratch* scratch) {
  require_odd(k);
  const int w = img.width();
  const int h = img.height();
  int bands = (exec != nullptr && scratch != nullptr) ? exec->bands() : 1;
  if (bands <= 1 || h < 2) bands = 1;
  BandExecutor* bexec = bands > 1 ? exec : nullptr;
  const std::size_t stride = static_cast<std::size_t>(w) + 1;
  const std::uint8_t* src = img.data().data();

  // Fast path: separable integer box count. Each band keeps a sliding
  // column-count row (colsum[x] = ones in the clamped window column at x)
  // updated by one add/sub per row, and every output pixel is a k-tap
  // horizontal sum of those counts. All values are exact small integers, so
  // the result is bit-identical to the summed-area-table path below at any
  // backend and any band count; `2*count > area-1  ⇔  2*count >= area` keeps
  // the upper-median tie rule. The k <= 127 guard bounds every 16-bit lane:
  // counts <= k*k <= 16129, doubled <= 32258 < 2^15, so the backends'
  // signed compares agree with unsigned.
  if (scratch != nullptr && k <= 127) {
    const int half = k / 2;
    out.resize_discard(w, h);
    std::uint8_t* dst = out.data().data();
    BandScratch& bs = *scratch;
    bs.colsum.resize(static_cast<std::size_t>(bands) * static_cast<std::size_t>(w));
    run_banded(bexec, h, [&](int band, int row_begin, int row_end) {
      using VU = simd::VecU16<simd::Active>;
      std::uint16_t* col =
          bs.colsum.data() + static_cast<std::size_t>(band) * static_cast<std::size_t>(w);
      const auto row_ptr = [&](int y) {
        return src + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      };
      // Seed the column counts for the band's first output row.
      int y0 = std::max(row_begin - half, 0);
      int y1 = std::min(row_begin + half, h - 1);
      std::fill(col, col + w, static_cast<std::uint16_t>(0));
      for (int yy = y0; yy <= y1; ++yy) rowk::col_add_u8<simd::Active>(row_ptr(yy), col, w);
      for (int y = row_begin; y < row_end; ++y) {
        if (y > row_begin) {
          const int add_row = y + half;  // enters the window (if on the image)
          const int sub_row = y - half - 1;  // retires from it (if it ever was)
          if (add_row < h && sub_row >= 0) {
            rowk::col_slide_u8<simd::Active>(row_ptr(add_row), row_ptr(sub_row), col, w);
          } else if (add_row < h) {
            rowk::col_add_u8<simd::Active>(row_ptr(add_row), col, w);
          } else if (sub_row >= 0) {
            rowk::col_sub_u8<simd::Active>(row_ptr(sub_row), col, w);
          }
          y0 = std::max(y - half, 0);
          y1 = std::min(y + half, h - 1);
        }
        const int rows = y1 - y0 + 1;
        std::uint8_t* d = dst + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
        // Clamped columns: the window narrows at the left/right edge and the
        // median is taken over the pixels actually present.
        const auto clamped_pixel = [&](int x) {
          const int x0 = std::max(x - half, 0);
          const int x1 = std::min(x + half, w - 1);
          int count = 0;
          for (int c = x0; c <= x1; ++c) count += col[c];
          const int area = (x1 - x0 + 1) * rows;
          d[x] = count * 2 >= area ? 1 : 0;
        };
        int x = 0;
        for (; x < half && x < w; ++x) clamped_pixel(x);
        const int x_end = w - half;
        const int interior_area = k * rows;
        const VU vthresh = VU::broadcast(static_cast<std::uint16_t>(interior_area - 1));
        for (; x + VU::kLanes <= x_end; x += VU::kLanes) {
          VU count = VU::load(col + (x - half));
          for (int t = 1; t < k; ++t) count = count + VU::load(col + (x - half) + t);
          VU::store_gt01(count + count, vthresh, d + x);
        }
        for (; x < x_end; ++x) {
          int count = 0;
          for (int t = 0; t < k; ++t) count += col[x - half + t];
          d[x] = count * 2 >= interior_area ? 1 : 0;
        }
        for (; x < w; ++x) clamped_pixel(x);
      }
    });
    return;
  }

  // Mask summed-area table. Both builds produce exact small-integer sums, so
  // they are bit-identical to IntegralImage::assign's recurrence — and to
  // each other at any backend and band count.
  if (scratch == nullptr) {
    // No band scratch: the serial pointer walk.
    double* tab_mut = integral.raw_prepare(w, h);
    for (int y = 0; y < h; ++y) {
      double* row = tab_mut + (static_cast<std::size_t>(y) + 1) * stride;
      const double* prev = row - stride;
      double row_sum = 0.0;
      const std::uint8_t* s = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      for (int x = 0; x < w; ++x) {
        row_sum += s[x] ? 1.0 : 0.0;
        row[x + 1] = prev[x + 1] + row_sum;
      }
    }
  } else {
    // int32-staged vector build, banded like build_rgb_integrals: per-band
    // local tables (phase 1), serial carry chain (phase 2), carry fold
    // (phase 3).
    double* tab_mut = integral.raw_prepare_discard(w, h);
    std::fill_n(tab_mut, stride, 0.0);
    BandScratch& bs = *scratch;
    bs.stage.resize(static_cast<std::size_t>(bands) * static_cast<std::size_t>(w));
    run_banded(bexec, h, [&](int band, int row_begin, int row_end) {
      std::int32_t* stage =
          bs.stage.data() + static_cast<std::size_t>(band) * static_cast<std::size_t>(w);
      for (int y = row_begin; y < row_end; ++y) {
        const std::uint8_t* s = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
        std::int32_t sum = 0;
        for (int x = 0; x < w; ++x) {
          sum += s[x] ? 1 : 0;
          stage[x] = sum;
        }
        double* row = tab_mut + (static_cast<std::size_t>(y) + 1) * stride;
        if (y == row_begin) {
          rowk::sat_row_first<simd::Active>(stage, row, w);
        } else {
          rowk::sat_row_next<simd::Active>(stage, row - stride, row, w);
        }
      }
    });
    if (bands > 1) {
      bs.carry.assign(static_cast<std::size_t>(bands) * stride, 0.0);
      double* carry = bs.carry.data();
      for (int b = 1; b < bands; ++b) {
        const std::size_t last_local = static_cast<std::size_t>(band_begin(h, bands, b)) * stride;
        double* cur = carry + static_cast<std::size_t>(b) * stride;
        rowk::add_rows<simd::Active>(cur - stride, tab_mut + last_local, cur, stride);
      }
      run_banded(bexec, h, [&](int band, int row_begin, int row_end) {
        if (band == 0) return;
        const double* cur = carry + static_cast<std::size_t>(band) * stride;
        for (int y = row_begin; y < row_end; ++y) {
          rowk::add_in_place<simd::Active>(cur, tab_mut + (static_cast<std::size_t>(y) + 1) * stride,
                                           stride);
        }
      });
    }
  }
  const int half = k / 2;
  const double interior_area = static_cast<double>(k) * static_cast<double>(k);
  const double* tab = integral.raw();
  out.resize_discard(w, h);
  std::uint8_t* dst = out.data().data();
  run_banded(bexec, h, [&](int /*band*/, int row_begin, int row_end) {
    using V = simd::VecF64<simd::Active>;
    const V v2 = V::broadcast(2.0);
    const V varea = V::broadcast(interior_area);
    std::uint8_t* d = dst + static_cast<std::size_t>(row_begin) * static_cast<std::size_t>(w);
    // Upper median of a 0/1 population (ties resolve to 1, matching the
    // grayscale median's index-count/2 element).
    const auto clamped_pixel = [&](int x, int y) {
      const int x0 = std::max(x - half, 0);
      const int y0 = std::max(y - half, 0);
      const int x1 = std::min(x + half, w - 1);
      const int y1 = std::min(y + half, h - 1);
      const double area = static_cast<double>(x1 - x0 + 1) * (y1 - y0 + 1);
      *d++ = integral.sum(x0, y0, x1, y1) * 2.0 >= area ? 1 : 0;
    };
    for (int y = row_begin; y < row_end; ++y) {
      if (y < half || y + half >= h) {
        for (int x = 0; x < w; ++x) clamped_pixel(x, y);
        continue;
      }
      int x = 0;
      for (; x < half && x < w; ++x) clamped_pixel(x, y);
      const std::size_t r0 = static_cast<std::size_t>(y - half) * stride;
      const std::size_t r1 = static_cast<std::size_t>(y + half + 1) * stride;
      const int x_end = w - half;
      for (; x + V::kLanes <= x_end; x += V::kLanes) {
        const std::size_t c0 = static_cast<std::size_t>(x - half);
        const std::size_t c1 = static_cast<std::size_t>(x + half + 1);
        V::store_ge01(rowk::window_sum_vec<simd::Active>(tab, r0, r1, c0, c1) * v2, varea, d);
        d += V::kLanes;
      }
      for (; x < x_end; ++x) {
        *d++ = interior_window_sum(tab, stride, x, y, half) * 2.0 >= interior_area ? 1 : 0;
      }
      for (; x < w; ++x) clamped_pixel(x, y);
    }
  });
}

GrayImage box_blur(const GrayImage& img, int k) {
  require_odd(k);
  const Image<double> means = window_mean_gray(img, k);
  GrayImage out(img.width(), img.height());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<std::uint8_t>(
        std::clamp(std::lround(means.data()[i]), 0L, 255L));
  }
  return out;
}

}  // namespace slj
