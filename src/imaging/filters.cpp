#include "imaging/filters.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "imaging/frame_workspace.hpp"
#include "imaging/integral.hpp"

namespace slj {
namespace {

void require_odd(int k) {
  if (k < 1 || k % 2 == 0) throw std::invalid_argument("filter window must be odd and >= 1");
}

}  // namespace

GrayImage median_filter(const GrayImage& img, int k) {
  require_odd(k);
  const int half = k / 2;
  GrayImage out(img.width(), img.height());
  std::array<int, 256> hist{};
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      hist.fill(0);
      int count = 0;
      for (int dy = -half; dy <= half; ++dy) {
        for (int dx = -half; dx <= half; ++dx) {
          const int nx = x + dx;
          const int ny = y + dy;
          if (img.in_bounds(nx, ny)) {
            ++hist[img.at(nx, ny)];
            ++count;
          }
        }
      }
      // Walk the histogram to the median position.
      const int target = count / 2;
      int seen = 0;
      std::uint8_t median = 0;
      for (int v = 0; v < 256; ++v) {
        seen += hist[v];
        if (seen > target) {
          median = static_cast<std::uint8_t>(v);
          break;
        }
      }
      out.at(x, y) = median;
    }
  }
  return out;
}

BinaryImage median_filter_binary(const BinaryImage& img, int k) {
  IntegralImage integral;
  BinaryImage out;
  median_filter_binary_into(img, k, integral, out);
  return out;
}

SLJ_HOT_PATH void median_filter_binary_into(const BinaryImage& img, int k, IntegralImage& integral,
                               BinaryImage& out) {
  require_odd(k);
  const int w = img.width();
  const int h = img.height();
  // Mask summed-area table, built with a pointer walk (same recurrence as
  // IntegralImage::assign, so the sums are bit-identical).
  {
    double* tab = integral.raw_prepare(w, h);
    const std::size_t stride = static_cast<std::size_t>(w) + 1;
    const std::uint8_t* src = img.data().data();
    for (int y = 0; y < h; ++y) {
      double* row = tab + (static_cast<std::size_t>(y) + 1) * stride;
      const double* prev = row - stride;
      double row_sum = 0.0;
      for (int x = 0; x < w; ++x) {
        row_sum += *src++ ? 1.0 : 0.0;
        row[x + 1] = prev[x + 1] + row_sum;
      }
    }
  }
  const int half = k / 2;
  const double interior_area = static_cast<double>(k) * static_cast<double>(k);
  const double* tab = integral.raw();
  const std::size_t stride = integral.stride();
  out.resize_discard(w, h);
  std::uint8_t* dst = out.data().data();
  // Upper median of a 0/1 population (ties resolve to 1, matching the
  // grayscale median's index-count/2 element).
  const auto clamped_pixel = [&](int x, int y) {
    const int x0 = std::max(x - half, 0);
    const int y0 = std::max(y - half, 0);
    const int x1 = std::min(x + half, w - 1);
    const int y1 = std::min(y + half, h - 1);
    const double area = static_cast<double>(x1 - x0 + 1) * (y1 - y0 + 1);
    *dst++ = integral.sum(x0, y0, x1, y1) * 2.0 >= area ? 1 : 0;
  };
  for (int y = 0; y < h; ++y) {
    if (y < half || y + half >= h) {
      for (int x = 0; x < w; ++x) clamped_pixel(x, y);
      continue;
    }
    int x = 0;
    for (; x < half && x < w; ++x) clamped_pixel(x, y);
    for (const int x_end = w - half; x < x_end; ++x) {
      *dst++ = interior_window_sum(tab, stride, x, y, half) * 2.0 >= interior_area ? 1 : 0;
    }
    for (; x < w; ++x) clamped_pixel(x, y);
  }
}

GrayImage box_blur(const GrayImage& img, int k) {
  require_odd(k);
  const Image<double> means = window_mean_gray(img, k);
  GrayImage out(img.width(), img.height());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<std::uint8_t>(
        std::clamp(std::lround(means.data()[i]), 0L, 255L));
  }
  return out;
}

}  // namespace slj
