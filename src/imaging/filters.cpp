#include "imaging/filters.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "imaging/integral.hpp"

namespace slj {
namespace {

void require_odd(int k) {
  if (k < 1 || k % 2 == 0) throw std::invalid_argument("filter window must be odd and >= 1");
}

}  // namespace

GrayImage median_filter(const GrayImage& img, int k) {
  require_odd(k);
  const int half = k / 2;
  GrayImage out(img.width(), img.height());
  std::array<int, 256> hist{};
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      hist.fill(0);
      int count = 0;
      for (int dy = -half; dy <= half; ++dy) {
        for (int dx = -half; dx <= half; ++dx) {
          const int nx = x + dx;
          const int ny = y + dy;
          if (img.in_bounds(nx, ny)) {
            ++hist[img.at(nx, ny)];
            ++count;
          }
        }
      }
      // Walk the histogram to the median position.
      const int target = count / 2;
      int seen = 0;
      std::uint8_t median = 0;
      for (int v = 0; v < 256; ++v) {
        seen += hist[v];
        if (seen > target) {
          median = static_cast<std::uint8_t>(v);
          break;
        }
      }
      out.at(x, y) = median;
    }
  }
  return out;
}

BinaryImage median_filter_binary(const BinaryImage& img, int k) {
  require_odd(k);
  const int w = img.width();
  const int h = img.height();
  IntegralImage integral(w, h, [&](int x, int y) { return img.at(x, y) ? 1.0 : 0.0; });
  const int half = k / 2;
  BinaryImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int x0 = std::max(x - half, 0);
      const int y0 = std::max(y - half, 0);
      const int x1 = std::min(x + half, w - 1);
      const int y1 = std::min(y + half, h - 1);
      const double area = static_cast<double>(x1 - x0 + 1) * (y1 - y0 + 1);
      const double ones = integral.sum(x0, y0, x1, y1);
      // Upper median of a 0/1 population (ties resolve to 1, matching the
      // grayscale median's index-count/2 element).
      out.at(x, y) = ones * 2.0 >= area ? 1 : 0;
    }
  }
  return out;
}

GrayImage box_blur(const GrayImage& img, int k) {
  require_odd(k);
  const Image<double> means = window_mean_gray(img, k);
  GrayImage out(img.width(), img.height());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<std::uint8_t>(
        std::clamp(std::lround(means.data()[i]), 0L, 255L));
  }
  return out;
}

}  // namespace slj
