#include "imaging/ascii.hpp"

#include <algorithm>

namespace slj {
namespace {

// Cell is "on" if any pixel in its footprint is on.
bool cell_on(const BinaryImage& img, int cx, int cy, int sx, int sy) {
  const int x0 = cx * sx;
  const int y0 = cy * sy;
  for (int y = y0; y < std::min(y0 + sy, img.height()); ++y) {
    for (int x = x0; x < std::min(x0 + sx, img.width()); ++x) {
      if (img.at(x, y)) return true;
    }
  }
  return false;
}

struct Grid {
  int cols, rows, sx, sy;
};

Grid make_grid(const BinaryImage& img, int max_cols) {
  const int sx = std::max(1, (img.width() + max_cols - 1) / max_cols);
  // Terminal cells are ~2× taller than wide; sample twice as much in y.
  const int sy = std::max(1, 2 * sx);
  return {(img.width() + sx - 1) / sx, (img.height() + sy - 1) / sy, sx, sy};
}

}  // namespace

std::string ascii_render(const BinaryImage& img, int max_cols) {
  if (img.empty()) return {};
  const Grid g = make_grid(img, max_cols);
  std::string out;
  out.reserve(static_cast<std::size_t>(g.rows) * (g.cols + 1));
  for (int cy = 0; cy < g.rows; ++cy) {
    for (int cx = 0; cx < g.cols; ++cx) {
      out += cell_on(img, cx, cy, g.sx, g.sy) ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

std::string ascii_render_overlay(const BinaryImage& silhouette, const BinaryImage& skeleton,
                                 int max_cols) {
  if (silhouette.empty()) return {};
  const Grid g = make_grid(silhouette, max_cols);
  std::string out;
  out.reserve(static_cast<std::size_t>(g.rows) * (g.cols + 1));
  for (int cy = 0; cy < g.rows; ++cy) {
    for (int cx = 0; cx < g.cols; ++cx) {
      const bool sil = cell_on(silhouette, cx, cy, g.sx, g.sy);
      const bool ske = skeleton.empty() ? false : cell_on(skeleton, cx, cy, g.sx, g.sy);
      out += ske ? (sil ? '*' : '+') : (sil ? '#' : '.');
    }
    out += '\n';
  }
  return out;
}

}  // namespace slj
