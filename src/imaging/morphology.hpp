// Binary morphology and region utilities used to clean the extracted
// silhouette before thinning: erode/dilate, open/close, border-flood hole
// filling.
#pragma once

#include <cstdint>
#include <vector>

#include "core/annotations.hpp"
#include "imaging/image.hpp"

namespace slj {

/// 3×3 structuring element shape.
enum class Structuring { kCross4, kSquare8 };

BinaryImage dilate(const BinaryImage& img, Structuring se = Structuring::kSquare8);
BinaryImage erode(const BinaryImage& img, Structuring se = Structuring::kSquare8);

/// Erosion followed by dilation: removes speckle smaller than the element.
BinaryImage open(const BinaryImage& img, Structuring se = Structuring::kSquare8);

/// Dilation followed by erosion: closes pinholes smaller than the element.
BinaryImage close(const BinaryImage& img, Structuring se = Structuring::kSquare8);

/// Fills interior holes: every background region not connected (4-conn) to
/// the image border becomes foreground.
BinaryImage fill_holes(const BinaryImage& img);

/// Allocation-free variant: the border flood runs on `reached`/`stack`
/// scratch and the result lands in `out`, all reusing their storage.
/// Considerably faster than fill_holes: the flood walks a sentinel-padded
/// closed map with raw indices, so the inner loop has no bounds checks.
/// `out` must not alias `img`.
SLJ_HOT_PATH void fill_holes_into(const BinaryImage& img, BinaryImage& reached,
                     std::vector<std::uint32_t>& stack, BinaryImage& out);

}  // namespace slj
