// FrameWorkspace: every full-frame scratch buffer the per-frame vision
// pipeline needs — window-mean integral tables and planes, difference /
// normalized / mask images, connected-component and hole-fill scratch, and
// the thinning frontier state. One workspace per worker lane (ClipEngine)
// or per live session (StreamEngine) makes steady-state frame processing
// free of full-frame heap allocations: every buffer is sized on the first
// frame and reused for the rest of the run.
//
// A workspace is plain mutable state with no invariants of its own; the
// into-style functions that take one (`window_mean_rgb_into`,
// `ObjectExtractor::extract_into`, `zhang_suen_thin_into`, ...) each resize
// what they use, so a single workspace can serve frames of changing sizes
// (it re-allocates only when a frame outgrows the high-water mark). It is
// NOT safe to share one workspace between concurrent calls.
#pragma once

#include <cstdint>
#include <vector>

#include "core/annotations.hpp"
#include "imaging/band_executor.hpp"
#include "imaging/connected.hpp"
#include "imaging/image.hpp"
#include "imaging/integral.hpp"

namespace slj {

/// Scratch for the row-banded kernels: per-band row staging for the SAT
/// builders, per-band carry rows, and per-band reduction slots. Sized by the
/// kernels on each call (steady state: no reallocation); bands never share
/// a slice, so the buffers are safe under concurrent band execution.
struct BandScratch {
  std::vector<std::int32_t> stage;    ///< int32 row prefix sums, per band
  std::vector<double> carry;          ///< SAT carry rows, per channel per band
  std::vector<double> band_max;       ///< per-band max(D) reduction slots
  std::vector<std::uint16_t> colsum;  ///< sliding column counts, per band
};

struct FrameWorkspace {
  // --- windowed-mean scratch (paper Sec. 2 step ii) ---
  IntegralImage integral_r;  ///< summed-area tables of the current frame
  IntegralImage integral_g;
  IntegralImage integral_b;
  RgbMeans aave;             ///< the frame's moving-window mean planes

  // --- segmentation scratch (ObjectExtractor::extract_into) ---
  Image<double> difference;  ///< D(i,j) = |ΔR| + |ΔG| + |ΔB|
  BinaryImage raw_mask;      ///< thresholded mask before smoothing
  IntegralImage mask_integral;  ///< SAT of raw_mask for the binary median
  BinaryImage smoothed;      ///< after median smoothing (tracker input)
  BinaryImage largest;       ///< largest-component mask
  Labeling labeling;         ///< connected-component labels + stats
  BinaryImage reached;       ///< hole-fill padded closed map
  std::vector<PointI> pixel_stack;          ///< DFS stack for labeling
  std::vector<std::uint32_t> flood_stack;   ///< index stack for hole filling

  // --- skeleton-graph scratch (build_skeleton_graph / clean_skeleton) ---
  BinaryImage junction_mask;           ///< degree>=3 skeleton pixels ("is_junction")
  Labeling junction_labeling;          ///< 8-connected junction clusters / stats label image
  std::vector<PointI> junction_stack;  ///< DFS stack for the above
  BinaryImage graph_visited;           ///< pure-cycle sweep "visited" map

  // --- Zhang–Suen frontier scratch (zhang_suen_thin_into) ---
  /// Pixels whose 3×3 neighbourhood changed since they were last evaluated
  /// for the first / second sub-iteration; only these can change answer.
  std::vector<std::uint32_t> thin_candidates_first;
  std::vector<std::uint32_t> thin_candidates_second;
  std::vector<std::uint32_t> thin_eval;       ///< candidates being consumed
  std::vector<std::uint32_t> thin_deletions;  ///< simultaneous-deletion list
  std::vector<std::uint8_t> thin_marks;       ///< bit0/bit1: queued per type

  // --- row-banded kernel scratch (band_executor.hpp) ---
  BandScratch band_scratch;
};

/// Allocation-free variant of window_mean_rgb: builds the per-channel
/// summed-area tables in ws.integral_{r,g,b} and the mean planes in ws.aave,
/// reusing their storage. Values are bit-identical to window_mean_rgb.
SLJ_HOT_PATH void window_mean_rgb_into(const RgbImage& img, int n, FrameWorkspace& ws,
                                       BandExecutor* exec = nullptr);

/// Builds the three per-channel summed-area tables of `img` into
/// ws.integral_{r,g,b} in one fused pass over the frame (one read per pixel
/// instead of three), vectorized on the configured slj::simd backend and —
/// when `exec` is banded — split into per-band local tables stitched with
/// carry rows. Same per-channel recurrence as IntegralImage::assign, so
/// every table entry is bit-identical at any backend and any band count.
void build_rgb_integrals(const RgbImage& img, FrameWorkspace& ws, BandExecutor* exec = nullptr);

/// Serial scalar-backend twin of build_rgb_integrals, always compiled: the
/// reference the SIMD-vs-scalar property suite compares against (and the
/// whole story when the build sets SLJ_SIMD=OFF).
void build_rgb_integrals_scalar(const RgbImage& img, FrameWorkspace& ws);

/// Window sum for a window known to lie fully inside the image: the four
/// clamp-free table loads of IntegralImage::sum in the same order, so the
/// result is bit-identical to sum(x-half, y-half, x+half, y+half). `tab` and
/// `stride` come from IntegralImage::raw()/stride().
inline double interior_window_sum(const double* tab, std::size_t stride, int x, int y, int half) {
  const std::size_t r0 = static_cast<std::size_t>(y - half) * stride;      // table row y0
  const std::size_t r1 = static_cast<std::size_t>(y + half + 1) * stride;  // table row y1+1
  const std::size_t c0 = static_cast<std::size_t>(x - half);               // table col x0
  const std::size_t c1 = static_cast<std::size_t>(x + half + 1);           // table col x1+1
  return tab[r1 + c1] - tab[r1 + c0] - tab[r0 + c1] + tab[r0 + c0];
}

/// Interior window mean: interior_window_sum over `area`, which must be the
/// window's pixel count as a double (bit-identical to window_mean there).
inline double interior_window_mean(const double* tab, std::size_t stride, int x, int y, int half,
                                   double area) {
  return interior_window_sum(tab, stride, x, y, half) / area;
}

}  // namespace slj
