#include "imaging/image_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace slj {
namespace {

// Skips whitespace and '#' comment lines between header tokens.
void skip_separators(std::istream& in) {
  while (true) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      return;
    }
  }
}

/// Largest accepted image side. A 32768² frame is already ~3 GiB of RGB —
/// far past any real camera — so a header claiming more is a corrupt or
/// hostile file, and rejecting it here keeps a flipped header byte from
/// turning into a giant allocation.
constexpr int kMaxImageDimension = 1 << 15;

int read_header_int(std::istream& in, const std::string& path) {
  skip_separators(in);
  int value = 0;
  if (!(in >> value) || value < 0) {
    throw std::runtime_error("malformed netpbm header in " + path);
  }
  return value;
}

void check_dimensions(int width, int height, const std::string& path) {
  if (width > kMaxImageDimension || height > kMaxImageDimension) {
    throw std::runtime_error("image dimensions out of range in " + path);
  }
}

void check_magic(std::istream& in, const std::string& expected, const std::string& path) {
  std::string magic;
  in >> magic;
  if (magic != expected) {
    throw std::runtime_error("bad magic '" + magic + "' in " + path + ", expected " + expected);
  }
}

}  // namespace

void write_pgm(const GrayImage& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.data().data()),
            static_cast<std::streamsize>(img.size()));
  if (!out) throw std::runtime_error("short write to " + path);
}

void write_ppm(const RgbImage& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << "P6\n" << img.width() << ' ' << img.height() << "\n255\n";
  for (const Rgb& px : img.data()) {
    const char bytes[3] = {static_cast<char>(px.r), static_cast<char>(px.g),
                           static_cast<char>(px.b)};
    out.write(bytes, 3);
  }
  if (!out) throw std::runtime_error("short write to " + path);
}

GrayImage read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  check_magic(in, "P5", path);
  const int width = read_header_int(in, path);
  const int height = read_header_int(in, path);
  const int maxval = read_header_int(in, path);
  if (maxval != 255) throw std::runtime_error("unsupported maxval in " + path);
  check_dimensions(width, height, path);
  in.get();  // single whitespace after maxval
  GrayImage img(width, height);
  in.read(reinterpret_cast<char*>(img.data().data()), static_cast<std::streamsize>(img.size()));
  if (in.gcount() != static_cast<std::streamsize>(img.size())) {
    throw std::runtime_error("truncated pixel data in " + path);
  }
  return img;
}

RgbImage read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  check_magic(in, "P6", path);
  const int width = read_header_int(in, path);
  const int height = read_header_int(in, path);
  const int maxval = read_header_int(in, path);
  if (maxval != 255) throw std::runtime_error("unsupported maxval in " + path);
  check_dimensions(width, height, path);
  in.get();
  RgbImage img(width, height);
  std::vector<char> raw(img.size() * 3);
  in.read(raw.data(), static_cast<std::streamsize>(raw.size()));
  if (in.gcount() != static_cast<std::streamsize>(raw.size())) {
    throw std::runtime_error("truncated pixel data in " + path);
  }
  for (std::size_t i = 0; i < img.size(); ++i) {
    img.data()[i] = {static_cast<std::uint8_t>(raw[3 * i]),
                     static_cast<std::uint8_t>(raw[3 * i + 1]),
                     static_cast<std::uint8_t>(raw[3 * i + 2])};
  }
  return img;
}

GrayImage binary_to_gray(const BinaryImage& img) {
  GrayImage out(img.width(), img.height());
  for (std::size_t i = 0; i < img.size(); ++i) {
    out.data()[i] = img.data()[i] ? 255 : 0;
  }
  return out;
}

BinaryImage gray_to_binary(const GrayImage& img, std::uint8_t threshold) {
  BinaryImage out(img.width(), img.height());
  for (std::size_t i = 0; i < img.size(); ++i) {
    out.data()[i] = img.data()[i] > threshold ? 1 : 0;
  }
  return out;
}

}  // namespace slj
