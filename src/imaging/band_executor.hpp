// Row-banded intra-frame parallelism: the imaging kernels partition a frame
// into horizontal bands and hand each band to a BandExecutor, so one large
// frame can saturate a worker pool. The interface lives in the imaging layer
// (a leaf) so kernels can take a `BandExecutor*` without depending on the
// core worker pool; core/clip_engine.hpp provides the pool-backed
// implementation (PoolBandExecutor).
//
// Contract, shared by every implementation:
//   * The band partition is the deterministic `band_begin` split below —
//     band b of B over R rows covers [band_begin(R,B,b), band_begin(R,B,b+1)).
//     Kernels size halo/carry scratch from it, so executors must not invent
//     their own split.
//   * run_rows() blocks until every band callback has returned (it is a
//     barrier). Callbacks for different bands may run concurrently; a kernel
//     that needs cross-band state (SAT carries, a global max) splits into
//     multiple run_rows() phases with serial stitching between them.
//   * Banding changes scheduling only, never values: every kernel that
//     accepts an executor is bit-identical at any band count, pinned by the
//     parallel_rows determinism suite.
//
// The callback is a raw function pointer + context, not a std::function:
// run_rows is called from SLJ_HOT_PATH kernels every frame and must not
// allocate.
#pragma once

#include <cstdint>
#include <utility>

namespace slj {

/// First row of band `b` when `rows` rows are split into `bands` bands.
/// Monotone, exact, and spread within one row of even: the canonical
/// partition every banded kernel and every executor must agree on.
inline int band_begin(int rows, int bands, int b) {
  return static_cast<int>((static_cast<std::int64_t>(rows) * b) / bands);
}

class BandExecutor {
 public:
  using RowFn = void (*)(void* ctx, int band, int row_begin, int row_end);

  virtual ~BandExecutor() = default;

  /// Number of bands this executor splits a frame into (>= 1).
  virtual int bands() const = 0;

  /// Runs fn(ctx, b, band_begin(rows, bands(), b), band_begin(rows,
  /// bands(), b+1)) for every band b, possibly concurrently; returns after
  /// all bands complete. Bands whose row range is empty are still invoked
  /// (with row_begin == row_end) so per-band scratch stays index-aligned.
  virtual void run_rows(int rows, void* ctx, RowFn fn) = 0;
};

/// Runs `fn(band, row_begin, row_end)` over the frame's rows: serially when
/// `exec` is null or single-banded (zero overhead — the hot serial path),
/// banded through the executor otherwise. `fn` must be safe to run
/// concurrently for disjoint bands.
template <typename Fn>
inline void run_banded(BandExecutor* exec, int rows, Fn&& fn) {
  const int bands = exec != nullptr ? exec->bands() : 1;
  if (bands <= 1 || rows < 2) {
    fn(0, 0, rows);
    return;
  }
  Fn& ref = fn;
  exec->run_rows(rows, &ref, [](void* ctx, int band, int row_begin, int row_end) {
    (*static_cast<Fn*>(ctx))(band, row_begin, row_end);
  });
}

}  // namespace slj
