// Terminal visualisation: downsamples binary masks / skeletons to ASCII
// contact sheets for the examples and figure benches (no GUI available).
#pragma once

#include <string>

#include "imaging/image.hpp"

namespace slj {

/// Renders a binary mask as ASCII, downsampled so the output is at most
/// `max_cols` wide. Foreground cells print '#', empty cells '.'.
std::string ascii_render(const BinaryImage& img, int max_cols = 72);

/// Renders mask + skeleton in one view: '#' silhouette, '*' skeleton on top
/// of silhouette, '+' skeleton outside silhouette, '.' background.
std::string ascii_render_overlay(const BinaryImage& silhouette, const BinaryImage& skeleton,
                                 int max_cols = 72);

}  // namespace slj
