#include "imaging/connected.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/simd.hpp"

namespace slj {

Labeling label_components(const BinaryImage& img, bool eight_connected) {
  Labeling out;
  std::vector<PointI> stack;
  label_components_into(img, eight_connected, out, stack);
  return out;
}

SLJ_HOT_PATH void label_components_into(const BinaryImage& img, bool eight_connected, Labeling& out,
                           std::vector<PointI>& stack) {
  const int w = img.width();
  const int h = img.height();
  out.labels.assign(w, h, 0);
  out.components.clear();
  stack.clear();
  const std::span<const PointI> nbrs =
      eight_connected ? std::span<const PointI>(kNeighbours8) : std::span<const PointI>(kNeighbours4);
  int next_label = 0;
  const std::uint8_t* src = img.data().data();
  for (int y = 0; y < h; ++y) {
    // Seed scan: silhouette rows are overwhelmingly background, so skip the
    // zero spans a vector block at a time.
    const std::uint8_t* row = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
    for (std::size_t xi = 0; xi < static_cast<std::size_t>(w); ++xi) {
      const std::size_t skip =
          simd::find_nonzero<simd::Active>(row + xi, static_cast<std::size_t>(w) - xi);
      xi += skip;
      if (xi >= static_cast<std::size_t>(w)) break;
      const int x = static_cast<int>(xi);
      if (out.labels.at(x, y) != 0) continue;
      ++next_label;
      ComponentStats stats;
      stats.label = next_label;
      stats.min = stats.max = {x, y};
      double sum_x = 0.0;
      double sum_y = 0.0;
      out.labels.at(x, y) = next_label;
      stack.push_back({x, y});
      while (!stack.empty()) {
        const PointI p = stack.back();
        stack.pop_back();
        ++stats.area;
        sum_x += p.x;
        sum_y += p.y;
        stats.min.x = std::min(stats.min.x, p.x);
        stats.min.y = std::min(stats.min.y, p.y);
        stats.max.x = std::max(stats.max.x, p.x);
        stats.max.y = std::max(stats.max.y, p.y);
        for (const PointI& d : nbrs) {
          const int nx = p.x + d.x;
          const int ny = p.y + d.y;
          if (img.in_bounds(nx, ny) && img.at(nx, ny) && out.labels.at(nx, ny) == 0) {
            out.labels.at(nx, ny) = next_label;
            stack.push_back({nx, ny});
          }
        }
      }
      stats.centroid = {sum_x / static_cast<double>(stats.area),
                        sum_y / static_cast<double>(stats.area)};
      out.components.push_back(stats);
    }
  }
}

BinaryImage largest_component(const BinaryImage& img, bool eight_connected) {
  Labeling labeling;
  std::vector<PointI> stack;
  BinaryImage out;
  largest_component_into(img, eight_connected, labeling, stack, out);
  return out;
}

SLJ_HOT_PATH void largest_component_into(const BinaryImage& img, bool eight_connected, Labeling& labeling,
                            std::vector<PointI>& stack, BinaryImage& out) {
  label_components_into(img, eight_connected, labeling, stack);
  out.assign(img.width(), img.height(), 0);
  if (labeling.components.empty()) return;
  const auto largest = std::max_element(
      labeling.components.begin(), labeling.components.end(),
      [](const ComponentStats& a, const ComponentStats& b) { return a.area < b.area; });
  simd::store_equal01_i32<simd::Active>(labeling.labels.data().data(), largest->label,
                                        out.data().data(), out.size());
}

std::size_t component_count(const BinaryImage& img, bool eight_connected) {
  return label_components(img, eight_connected).components.size();
}

}  // namespace slj
