// Spatial filters. The paper smooths the extracted silhouette with a median
// filter (Sec. 2, Fig. 1c); the binary specialisation below is what the
// segmentation pipeline uses.
#pragma once

#include "core/annotations.hpp"
#include "imaging/image.hpp"
#include "imaging/integral.hpp"

namespace slj {

class BandExecutor;  // imaging/band_executor.hpp
struct BandScratch;  // imaging/frame_workspace.hpp

/// Median filter over a k×k window (k odd). Border pixels use the clamped
/// window. Works on full 8-bit grayscale range.
GrayImage median_filter(const GrayImage& img, int k);

/// Median filter specialised to 0/1 masks: a pixel becomes foreground iff
/// the majority of its (clamped) k×k window is foreground. Equivalent to
/// median_filter on a 0/1 image but considerably faster.
BinaryImage median_filter_binary(const BinaryImage& img, int k);

/// Allocation-free variant: the mask's summed-area table is built in
/// `integral` and the result written to `out`, both reusing their storage.
/// Output is bit-identical to median_filter_binary. `out` must not alias
/// `img`. When `exec` is a multi-band BandExecutor and `scratch` is given,
/// the table build and the filter pass run row-banded (still bit-identical
/// at any band count).
SLJ_HOT_PATH void median_filter_binary_into(const BinaryImage& img, int k, IntegralImage& integral,
                               BinaryImage& out, BandExecutor* exec = nullptr,
                               BandScratch* scratch = nullptr);

/// Box blur (mean filter) over a k×k window, rounding to nearest.
GrayImage box_blur(const GrayImage& img, int k);

}  // namespace slj
