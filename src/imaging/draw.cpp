#include "imaging/draw.hpp"

#include <algorithm>
#include <cmath>

namespace slj {
namespace {

/// Squared distance from point p to segment [a, b].
double segment_dist_sq(PointF p, PointF a, PointF b) {
  const PointF ab = b - a;
  const double len_sq = dot(ab, ab);
  double t = len_sq > 0.0 ? dot(p - a, ab) / len_sq : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const PointF proj = a + ab * t;
  const PointF d = p - proj;
  return dot(d, d);
}

template <typename ImageT, typename PixelT>
void bresenham(ImageT& img, PointI a, PointI b, PixelT value) {
  int x0 = a.x, y0 = a.y;
  const int x1 = b.x, y1 = b.y;
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    if (img.in_bounds(x0, y0)) img.at(x0, y0) = value;
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

}  // namespace

void fill_disc(BinaryImage& img, PointF c, double r, std::uint8_t value) {
  const int x0 = std::max(0, static_cast<int>(std::floor(c.x - r)));
  const int x1 = std::min(img.width() - 1, static_cast<int>(std::ceil(c.x + r)));
  const int y0 = std::max(0, static_cast<int>(std::floor(c.y - r)));
  const int y1 = std::min(img.height() - 1, static_cast<int>(std::ceil(c.y + r)));
  const double r_sq = r * r;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double dx = x - c.x;
      const double dy = y - c.y;
      if (dx * dx + dy * dy <= r_sq) img.at(x, y) = value;
    }
  }
}

void fill_capsule(BinaryImage& img, PointF a, PointF b, double r, std::uint8_t value) {
  const int x0 = std::max(0, static_cast<int>(std::floor(std::min(a.x, b.x) - r)));
  const int x1 = std::min(img.width() - 1, static_cast<int>(std::ceil(std::max(a.x, b.x) + r)));
  const int y0 = std::max(0, static_cast<int>(std::floor(std::min(a.y, b.y) - r)));
  const int y1 = std::min(img.height() - 1, static_cast<int>(std::ceil(std::max(a.y, b.y) + r)));
  const double r_sq = r * r;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      if (segment_dist_sq({static_cast<double>(x), static_cast<double>(y)}, a, b) <= r_sq) {
        img.at(x, y) = value;
      }
    }
  }
}

void fill_convex_polygon(BinaryImage& img, std::span<const PointF> vertices, std::uint8_t value) {
  if (vertices.size() < 3) return;
  double min_x = vertices[0].x, max_x = vertices[0].x;
  double min_y = vertices[0].y, max_y = vertices[0].y;
  for (const PointF& v : vertices) {
    min_x = std::min(min_x, v.x);
    max_x = std::max(max_x, v.x);
    min_y = std::min(min_y, v.y);
    max_y = std::max(max_y, v.y);
  }
  const int x0 = std::max(0, static_cast<int>(std::floor(min_x)));
  const int x1 = std::min(img.width() - 1, static_cast<int>(std::ceil(max_x)));
  const int y0 = std::max(0, static_cast<int>(std::floor(min_y)));
  const int y1 = std::min(img.height() - 1, static_cast<int>(std::ceil(max_y)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const PointF p{static_cast<double>(x), static_cast<double>(y)};
      // Inside a convex polygon iff the point is on one side of every edge.
      bool has_pos = false;
      bool has_neg = false;
      for (std::size_t i = 0; i < vertices.size(); ++i) {
        const PointF& a = vertices[i];
        const PointF& b = vertices[(i + 1) % vertices.size()];
        const double cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
        has_pos = has_pos || cross > 0.0;
        has_neg = has_neg || cross < 0.0;
      }
      if (!(has_pos && has_neg)) img.at(x, y) = value;
    }
  }
}

void draw_line(GrayImage& img, PointI a, PointI b, std::uint8_t value) {
  bresenham(img, a, b, value);
}

void draw_line(RgbImage& img, PointI a, PointI b, Rgb value) { bresenham(img, a, b, value); }

void draw_marker(RgbImage& img, PointI c, int half, Rgb value) {
  for (int dy = -half; dy <= half; ++dy) {
    for (int dx = -half; dx <= half; ++dx) {
      if (img.in_bounds(c.x + dx, c.y + dy)) img.at(c.x + dx, c.y + dy) = value;
    }
  }
}

}  // namespace slj
