#include "synth/body_model.hpp"

#include <algorithm>
#include <cmath>

namespace slj::synth {
namespace {

PointF rotate(PointF v, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {c * v.x - s * v.y, s * v.x + c * v.y};
}

}  // namespace

BodyDimensions BodyDimensions::for_height(double height_m) {
  BodyDimensions d;
  d.height = height_m;
  // Drillis–Contini style segment ratios, lightly adapted so that standing
  // total (leg + torso + neck + head) reproduces the stature.
  d.torso = 0.288 * height_m;
  d.neck = 0.052 * height_m;
  d.head_radius = 0.064 * height_m;
  d.upper_arm = 0.186 * height_m;
  d.forearm = 0.254 * height_m;  // forearm + hand
  d.thigh = 0.245 * height_m;
  d.shank = 0.246 * height_m;
  d.foot = 0.152 * height_m;
  d.torso_radius = 0.052 * height_m;
  d.arm_radius = 0.019 * height_m;
  d.thigh_radius = 0.030 * height_m;
  d.shank_radius = 0.023 * height_m;
  d.foot_radius = 0.015 * height_m;
  return d;
}

JointPositions forward_kinematics(const BodyDimensions& body, const JointAngles& angles,
                                  PointF root) {
  JointPositions j;
  j.pelvis = root;
  j.hip = root;

  // Torso axis: vertical tilted forward (toward +x) by torso_lean.
  const PointF torso_dir = rotate({0.0, 1.0}, -angles.torso_lean);
  j.neck = j.pelvis + torso_dir * body.torso;
  j.chest = j.pelvis + torso_dir * (0.75 * body.torso);
  j.shoulder = j.neck;

  const PointF head_dir = rotate(torso_dir, -angles.neck_tilt);
  j.head_center = j.neck + head_dir * (body.neck + body.head_radius);
  j.head_top = j.neck + head_dir * (body.neck + 2.0 * body.head_radius);

  // Arm: hangs along -torso_dir at shoulder angle 0; positive shoulder
  // swings it forward (counter-clockwise brings (0,-1) toward (+1,0)).
  const PointF upper_dir = rotate(torso_dir * -1.0, angles.shoulder);
  j.elbow = j.shoulder + upper_dir * body.upper_arm;
  const PointF forearm_dir = rotate(upper_dir, angles.elbow);
  j.hand = j.elbow + forearm_dir * body.forearm;

  // Leg: thigh hangs along -torso_dir at hip angle 0; positive hip lifts
  // the thigh forward. The knee folds the shank backward (clockwise).
  const PointF thigh_dir = rotate(torso_dir * -1.0, angles.hip);
  j.knee = j.hip + thigh_dir * body.thigh;
  const PointF shank_dir = rotate(thigh_dir, -angles.knee);
  j.ankle = j.knee + shank_dir * body.shank;
  const PointF foot_dir = rotate(shank_dir, angles.ankle);
  j.toe = j.ankle + foot_dir * body.foot;
  j.heel = j.ankle - foot_dir * (0.35 * body.foot);
  return j;
}

double lowest_foot_offset(const BodyDimensions& body, const JointAngles& angles) {
  const JointPositions j = forward_kinematics(body, angles, {0.0, 0.0});
  return std::min({j.toe.y, j.heel.y, j.ankle.y - body.foot_radius});
}

double pelvis_height_for_ground_contact(const BodyDimensions& body, const JointAngles& angles) {
  return -lowest_foot_offset(body, angles);
}

}  // namespace slj::synth
