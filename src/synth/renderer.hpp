// Rasterises the articulated body into studio-style RGB frames and clean
// ground-truth silhouettes. This stands in for the paper's video camera:
// dark controlled background (the clips "were taken in a studio with a black
// background"), a brightly clothed jumper, sensor noise, and the occasional
// speckle that gives the object-extraction stage the "small holes and
// ridged edges" of Fig. 1(b).
#pragma once

#include <cstdint>
#include <random>

#include "imaging/image.hpp"
#include "synth/body_model.hpp"

namespace slj::synth {

struct CameraConfig {
  int width = 288;
  int height = 160;
  double pixels_per_meter = 72.0;
  double origin_x_px = 36.0;    ///< image x of world x = 0
  double ground_y_px = 150.0;   ///< image y of world y = 0 (ground line)

  Rgb background{14, 14, 17};
  Rgb clothing{176, 148, 120};
  double sensor_noise_sigma = 3.5;   ///< per-channel Gaussian noise
  double speckle_fraction = 0.004;   ///< fraction of person pixels darkened
  std::uint8_t speckle_strength = 90;
};

/// Ground-truth positions of the five key body parts in *image* pixels.
struct PartTruth {
  PointF head;   ///< head top
  PointF chest;
  PointF hand;
  PointF knee;
  PointF foot;   ///< toe
  PointF waist;  ///< pelvis — used to sanity-check the estimated waist
};

class SilhouetteRenderer {
 public:
  explicit SilhouetteRenderer(CameraConfig config = {});

  const CameraConfig& config() const { return config_; }

  /// World metres → image pixels.
  PointF project(PointF world) const;

  /// Clean binary silhouette of the posed body (no noise) — the ground
  /// truth the extraction stage is scored against.
  BinaryImage render_silhouette(const BodyDimensions& body, const JointAngles& angles,
                                PointF pelvis_world) const;

  /// A thin "stick" rendering with fixed limb radius, used by the GA
  /// baseline's fitness model.
  BinaryImage render_stick(const BodyDimensions& body, const JointAngles& angles,
                           PointF pelvis_world, double stick_radius_px) const;

  /// Studio RGB frame: silhouette painted in clothing colour over the dark
  /// background, plus sensor noise and speckle. `rng` advances per call so
  /// consecutive frames get fresh noise.
  RgbImage render_frame(const BodyDimensions& body, const JointAngles& angles,
                        PointF pelvis_world, std::mt19937& rng) const;

  /// Empty-studio frame (background only + noise).
  RgbImage render_background(std::mt19937& rng) const;

  /// Ground-truth part positions in image pixels.
  PartTruth part_truth(const BodyDimensions& body, const JointAngles& angles,
                       PointF pelvis_world) const;

 private:
  CameraConfig config_;
};

}  // namespace slj::synth
