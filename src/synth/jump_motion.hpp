// Parametric standing-long-jump choreography. Produces, for each frame of a
// clip, the joint angles, pelvis trajectory, airborne flag and the paper's
// four-stage annotation (before jumping / jumping / in the air / landing).
//
// The motion is keyframed in normalized clip time and re-sampled to any
// frame count (the paper's clips run ~40 frames). Per-subject variation
// (stature, amplitudes, timing) and deliberate movement faults for the
// coaching demo are driven by a seeded RNG, so datasets are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "pose/pose_catalog.hpp"
#include "synth/body_model.hpp"

namespace slj::synth {

/// Deliberate deviations from the standing-long-jump standard, used by the
/// coach-feedback example and the fault-detection tests.
struct FaultFlags {
  bool no_arm_swing = false;    ///< arms stay near the body the whole jump
  bool no_crouch = false;       ///< knees barely bend before take-off
  bool stiff_landing = false;   ///< lands with almost straight knees
  bool no_forward_lean = false; ///< torso stays upright at take-off

  bool any() const { return no_arm_swing || no_crouch || stiff_landing || no_forward_lean; }
};

/// One sampled frame of the jump.
struct MotionFrame {
  JointAngles angles;
  PointF pelvis;              ///< world position, metres
  bool airborne = false;
  pose::Stage stage = pose::Stage::kBeforeJumping;
  double time_fraction = 0.0; ///< 0..1 across the clip
};

struct JumpStyle {
  std::uint32_t seed = 1;
  FaultFlags faults;
  double jump_distance = 1.15;  ///< metres, nominal; jittered per subject
  double apex_height = 0.26;    ///< extra pelvis rise at flight apex, metres
};

class JumpMotionGenerator {
 public:
  JumpMotionGenerator(BodyDimensions body, JumpStyle style);

  const BodyDimensions& body() const { return body_; }

  /// Samples the whole jump at `frame_count` uniformly spaced instants.
  std::vector<MotionFrame> generate(int frame_count) const;

  /// Samples a single normalized instant t ∈ [0, 1].
  MotionFrame sample(double t) const;

  /// Stage windows in normalized time (exposed for tests).
  double takeoff_time() const { return t_liftoff_; }
  double touchdown_time() const { return t_touchdown_; }

 private:
  /// Piecewise-linear keyframe track with cosine easing between knots.
  class Track {
   public:
    Track() = default;
    Track(std::initializer_list<std::pair<double, double>> knots);
    void add(double t, double value);
    void jitter(std::mt19937& rng, double value_sigma, double time_sigma);
    void scale_values(double factor);
    void clamp_values(double lo, double hi);
    double eval(double t) const;

   private:
    std::vector<std::pair<double, double>> knots_;
  };

  void build_tracks();

  BodyDimensions body_;
  JumpStyle style_;
  double t_crouch_ = 0.30;    ///< deepest crouch
  double t_liftoff_ = 0.45;   ///< feet leave the ground
  double t_touchdown_ = 0.76; ///< feet strike the ground
  Track torso_lean_, neck_tilt_, shoulder_, elbow_, hip_, knee_, ankle_, root_x_;
};

}  // namespace slj::synth
