#include "synth/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/draw.hpp"

namespace slj::synth {

SilhouetteRenderer::SilhouetteRenderer(CameraConfig config) : config_(config) {}

PointF SilhouetteRenderer::project(PointF world) const {
  return {config_.origin_x_px + world.x * config_.pixels_per_meter,
          config_.ground_y_px - world.y * config_.pixels_per_meter};
}

BinaryImage SilhouetteRenderer::render_silhouette(const BodyDimensions& body,
                                                  const JointAngles& angles,
                                                  PointF pelvis_world) const {
  BinaryImage img(config_.width, config_.height, 0);
  const JointPositions j = forward_kinematics(body, angles, pelvis_world);
  const double s = config_.pixels_per_meter;

  // Torso, head, arm, leg, foot as overlapping capsules/discs — the side
  // view merges both arms (and both legs) into one limb each, exactly the
  // ambiguity the paper's skeletons face.
  fill_capsule(img, project(j.pelvis), project(j.neck), body.torso_radius * s);
  fill_disc(img, project(j.head_center), body.head_radius * s);
  fill_capsule(img, project(j.neck), project(j.head_center), body.arm_radius * 1.4 * s);
  fill_capsule(img, project(j.shoulder), project(j.elbow), body.arm_radius * s);
  fill_capsule(img, project(j.elbow), project(j.hand), body.arm_radius * 0.85 * s);
  fill_capsule(img, project(j.hip), project(j.knee), body.thigh_radius * s);
  fill_capsule(img, project(j.knee), project(j.ankle), body.shank_radius * s);
  fill_capsule(img, project(j.heel), project(j.toe), body.foot_radius * s);
  return img;
}

BinaryImage SilhouetteRenderer::render_stick(const BodyDimensions& body,
                                             const JointAngles& angles, PointF pelvis_world,
                                             double stick_radius_px) const {
  BinaryImage img(config_.width, config_.height, 0);
  const JointPositions j = forward_kinematics(body, angles, pelvis_world);
  fill_capsule(img, project(j.pelvis), project(j.neck), stick_radius_px);
  fill_capsule(img, project(j.neck), project(j.head_top), stick_radius_px);
  fill_capsule(img, project(j.shoulder), project(j.elbow), stick_radius_px);
  fill_capsule(img, project(j.elbow), project(j.hand), stick_radius_px);
  fill_capsule(img, project(j.hip), project(j.knee), stick_radius_px);
  fill_capsule(img, project(j.knee), project(j.ankle), stick_radius_px);
  fill_capsule(img, project(j.ankle), project(j.toe), stick_radius_px);
  return img;
}

namespace {

std::uint8_t clamp_channel(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

}  // namespace

RgbImage SilhouetteRenderer::render_frame(const BodyDimensions& body, const JointAngles& angles,
                                          PointF pelvis_world, std::mt19937& rng) const {
  const BinaryImage mask = render_silhouette(body, angles, pelvis_world);
  RgbImage frame(config_.width, config_.height);
  std::normal_distribution<double> noise(0.0, config_.sensor_noise_sigma);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      Rgb base = mask.at(x, y) ? config_.clothing : config_.background;
      // Mild vertical studio-light gradient on the background.
      double gradient = mask.at(x, y) ? 0.0 : 6.0 * (1.0 - static_cast<double>(y) / frame.height());
      double r = base.r + gradient + noise(rng);
      double g = base.g + gradient + noise(rng);
      double b = base.b + gradient + noise(rng);
      if (mask.at(x, y) && unit(rng) < config_.speckle_fraction) {
        // Dark speckle on clothing: folds/shadows that punch small holes in
        // the thresholded silhouette (Fig. 1b).
        r -= config_.speckle_strength;
        g -= config_.speckle_strength;
        b -= config_.speckle_strength;
      }
      frame.at(x, y) = {clamp_channel(r), clamp_channel(g), clamp_channel(b)};
    }
  }
  return frame;
}

RgbImage SilhouetteRenderer::render_background(std::mt19937& rng) const {
  RgbImage frame(config_.width, config_.height);
  std::normal_distribution<double> noise(0.0, config_.sensor_noise_sigma);
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const double gradient = 6.0 * (1.0 - static_cast<double>(y) / frame.height());
      frame.at(x, y) = {clamp_channel(config_.background.r + gradient + noise(rng)),
                        clamp_channel(config_.background.g + gradient + noise(rng)),
                        clamp_channel(config_.background.b + gradient + noise(rng))};
    }
  }
  return frame;
}

PartTruth SilhouetteRenderer::part_truth(const BodyDimensions& body, const JointAngles& angles,
                                         PointF pelvis_world) const {
  const JointPositions j = forward_kinematics(body, angles, pelvis_world);
  PartTruth t;
  t.head = project(j.head_top);
  t.chest = project(j.chest);
  t.hand = project(j.hand);
  t.knee = project(j.knee);
  t.foot = project(j.toe);
  t.waist = project(j.pelvis);
  return t;
}

}  // namespace slj::synth
