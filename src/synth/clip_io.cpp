#include "synth/clip_io.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "imaging/image_io.hpp"

namespace slj::synth {
namespace {

namespace fs = std::filesystem;

std::string frame_name(int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "frame_%03d.ppm", index);
  return buf;
}

/// Largest accepted manifest frame count. Real clips are a few seconds at
/// camera rate (tens of frames); a manifest claiming more is corrupt or
/// hostile, and rejecting it keeps a flipped digit from turning the
/// truth/frame reserves below into giant allocations.
constexpr int kMaxClipFrames = 100000;

}  // namespace

void save_clip(const Clip& clip, const std::string& dir) {
  fs::create_directories(dir);
  write_ppm(clip.background, (fs::path(dir) / "background.ppm").string());
  for (int i = 0; i < clip.frame_count(); ++i) {
    write_ppm(clip.frames[static_cast<std::size_t>(i)],
              (fs::path(dir) / frame_name(i)).string());
  }

  std::ofstream manifest((fs::path(dir) / "manifest.txt").string());
  if (!manifest) throw std::runtime_error("cannot write manifest in " + dir);
  manifest << "slj-clip 1\n";
  manifest << "frames " << clip.frame_count() << '\n';
  manifest << "seed " << clip.seed << '\n';
  manifest << "faults " << (clip.faults.no_arm_swing ? 1 : 0) << ' '
           << (clip.faults.no_crouch ? 1 : 0) << ' ' << (clip.faults.stiff_landing ? 1 : 0)
           << ' ' << (clip.faults.no_forward_lean ? 1 : 0) << '\n';
  manifest << "truth " << (clip.truth.empty() ? 0 : 1) << '\n';
  const auto old_precision = manifest.precision(10);
  for (const FrameTruth& t : clip.truth) {
    manifest << pose::index_of(t.pose) << ' ' << pose::index_of(t.stage) << ' '
             << (t.airborne ? 1 : 0) << ' ' << t.parts.head.x << ' ' << t.parts.head.y << ' '
             << t.parts.chest.x << ' ' << t.parts.chest.y << ' ' << t.parts.hand.x << ' '
             << t.parts.hand.y << ' ' << t.parts.knee.x << ' ' << t.parts.knee.y << ' '
             << t.parts.foot.x << ' ' << t.parts.foot.y << ' ' << t.parts.waist.x << ' '
             << t.parts.waist.y << '\n';
  }
  manifest.precision(old_precision);
  if (!manifest) throw std::runtime_error("manifest write failure in " + dir);
}

Clip load_clip(const std::string& dir) {
  std::ifstream manifest((fs::path(dir) / "manifest.txt").string());
  if (!manifest) throw std::runtime_error("missing manifest in " + dir);
  std::string magic;
  int version = 0;
  if (!(manifest >> magic >> version) || magic != "slj-clip" || version != 1) {
    throw std::runtime_error("bad clip manifest in " + dir);
  }
  std::string tag;
  int frames = 0;
  Clip clip;
  if (!(manifest >> tag >> frames) || tag != "frames" || frames < 0 ||
      frames > kMaxClipFrames) {
    throw std::runtime_error("bad frame count in " + dir);
  }
  if (!(manifest >> tag >> clip.seed) || tag != "seed") {
    throw std::runtime_error("bad seed line in " + dir);
  }
  int f1 = 0, f2 = 0, f3 = 0, f4 = 0;
  if (!(manifest >> tag >> f1 >> f2 >> f3 >> f4) || tag != "faults") {
    throw std::runtime_error("bad faults line in " + dir);
  }
  clip.faults.no_arm_swing = f1 != 0;
  clip.faults.no_crouch = f2 != 0;
  clip.faults.stiff_landing = f3 != 0;
  clip.faults.no_forward_lean = f4 != 0;
  int has_truth = 0;
  if (!(manifest >> tag >> has_truth) || tag != "truth") {
    throw std::runtime_error("bad truth line in " + dir);
  }
  if (has_truth != 0) {
    clip.truth.reserve(static_cast<std::size_t>(frames));
    for (int i = 0; i < frames; ++i) {
      FrameTruth t;
      int pose_idx = 0, stage_idx = 0, airborne = 0;
      if (!(manifest >> pose_idx >> stage_idx >> airborne >> t.parts.head.x >>
            t.parts.head.y >> t.parts.chest.x >> t.parts.chest.y >> t.parts.hand.x >>
            t.parts.hand.y >> t.parts.knee.x >> t.parts.knee.y >> t.parts.foot.x >>
            t.parts.foot.y >> t.parts.waist.x >> t.parts.waist.y)) {
        throw std::runtime_error("truncated truth in " + dir);
      }
      try {
        t.pose = pose::pose_from_index(pose_idx);
        t.stage = pose::stage_from_index(stage_idx);
      } catch (const std::out_of_range&) {
        throw std::runtime_error("corrupt truth indices in " + dir);
      }
      t.airborne = airborne != 0;
      clip.truth.push_back(t);
    }
  }

  clip.background = read_ppm((fs::path(dir) / "background.ppm").string());
  clip.frames.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    clip.frames.push_back(read_ppm((fs::path(dir) / frame_name(i)).string()));
  }
  return clip;
}

void save_dataset(const Dataset& dataset, const std::string& dir) {
  fs::create_directories(dir);
  char buf[32];
  for (std::size_t i = 0; i < dataset.train.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "train_%02zu", i);
    save_clip(dataset.train[i], (fs::path(dir) / buf).string());
  }
  for (std::size_t i = 0; i < dataset.test.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "test_%02zu", i);
    save_clip(dataset.test[i], (fs::path(dir) / buf).string());
  }
}

Dataset load_dataset(const std::string& dir) {
  Dataset dataset;
  char buf[32];
  for (int i = 0;; ++i) {
    std::snprintf(buf, sizeof(buf), "train_%02d", i);
    const fs::path p = fs::path(dir) / buf;
    if (!fs::exists(p / "manifest.txt")) break;
    dataset.train.push_back(load_clip(p.string()));
  }
  for (int i = 0;; ++i) {
    std::snprintf(buf, sizeof(buf), "test_%02d", i);
    const fs::path p = fs::path(dir) / buf;
    if (!fs::exists(p / "manifest.txt")) break;
    dataset.test.push_back(load_clip(p.string()));
  }
  if (dataset.train.empty() && dataset.test.empty()) {
    throw std::runtime_error("no clips found under " + dir);
  }
  return dataset;
}

}  // namespace slj::synth
