// 2-D articulated body model, side view (the paper films jumps "from the
// left-hand side of the jumper" precisely because 2-D information suffices).
//
// This is the substitute for the paper's studio footage: the model is posed
// by the jump-motion generator, rasterised by the silhouette renderer, and
// its joints provide the ground truth a human annotator supplied in the
// original work.
//
// World coordinates: metres, x to the right (jump direction), y UP, ground
// at y = 0. The renderer flips y into image rows.
#pragma once

#include "imaging/geometry.hpp"

namespace slj::synth {

/// Segment lengths in metres, scaled from stature. Defaults approximate a
/// primary-school child of ~1.38 m using standard anthropometric ratios.
struct BodyDimensions {
  double height = 1.38;

  double torso = 0.0;       ///< pelvis → neck
  double neck = 0.0;        ///< neck → head centre offset
  double head_radius = 0.0;
  double upper_arm = 0.0;
  double forearm = 0.0;     ///< elbow → hand tip (forearm + hand)
  double thigh = 0.0;
  double shank = 0.0;
  double foot = 0.0;        ///< ankle → toe

  /// Limb thicknesses (capsule radii) for the renderer, in metres.
  double torso_radius = 0.072;
  double arm_radius = 0.026;
  double thigh_radius = 0.041;
  double shank_radius = 0.032;
  double foot_radius = 0.020;

  /// Fills the segment lengths from `height` using anthropometric ratios.
  static BodyDimensions for_height(double height_m);
};

/// Joint configuration, radians. All rotations are counter-clockwise in the
/// x-right / y-up world frame; the jumper faces +x.
struct JointAngles {
  double torso_lean = 0.0;  ///< torso from vertical; + leans forward (toward +x)
  double neck_tilt = 0.0;   ///< head relative to torso axis
  double shoulder = 0.0;    ///< upper arm from "hanging along torso"; + swings forward/up
  double elbow = 0.0;       ///< forearm flexion relative to upper arm; + bends forward
  double hip = 0.0;         ///< thigh from "straight below torso"; + lifts thigh forward
  double knee = 0.0;        ///< flexion; 0 = straight leg, + bends shank backward
  double ankle = 1.5707963267948966;  ///< foot vs shank; ~pi/2 = flat foot
};

/// World-space joint positions produced by forward kinematics.
struct JointPositions {
  PointF pelvis;
  PointF chest;        ///< 3/4 of the way up the torso (the "Chest" key part)
  PointF neck;
  PointF head_center;
  PointF head_top;     ///< the "Head" key part
  PointF shoulder;     ///< coincides with neck in this side-view model
  PointF elbow;
  PointF hand;         ///< the "Hand" key part
  PointF hip;          ///< coincides with pelvis
  PointF knee;         ///< the "Knee" key part
  PointF ankle;
  PointF heel;
  PointF toe;          ///< the "Foot" key part
};

/// Forward kinematics with the pelvis at `root`.
JointPositions forward_kinematics(const BodyDimensions& body, const JointAngles& angles,
                                  PointF root);

/// Lowest y across the foot points (toe/heel/ankle) with the pelvis at the
/// origin; used to plant the feet on the ground (y = 0).
double lowest_foot_offset(const BodyDimensions& body, const JointAngles& angles);

/// Pelvis height such that the lowest foot point touches y = 0.
double pelvis_height_for_ground_contact(const BodyDimensions& body, const JointAngles& angles);

}  // namespace slj::synth
