// Clip persistence: a clip directory holds the background plate, one PPM
// per frame, and a text manifest with the per-frame ground truth (when
// present). This is both the dataset-export format and the ingestion path
// for real footage (drop numbered PPMs + a background into a directory and
// load it; truth lines are optional).
//
// Layout:
//   <dir>/manifest.txt      header + one line per frame
//   <dir>/background.ppm
//   <dir>/frame_000.ppm ...
#pragma once

#include <string>

#include "synth/dataset.hpp"

namespace slj::synth {

/// Writes the clip (frames + background + truth) into `dir`, creating it.
/// Clean silhouettes are not stored (they are derivable); loading a saved
/// clip leaves `clean_silhouettes` empty.
void save_clip(const Clip& clip, const std::string& dir);

/// Loads a clip directory. Frames and background are required; truth lines
/// are optional (real footage has none) — missing truth yields
/// `truth.empty()`. Throws std::runtime_error on malformed input.
Clip load_clip(const std::string& dir);

/// Saves a whole dataset under `dir`/train_NN and `dir`/test_NN.
void save_dataset(const Dataset& dataset, const std::string& dir);

/// Loads a dataset saved by save_dataset.
Dataset load_dataset(const std::string& dir);

}  // namespace slj::synth
