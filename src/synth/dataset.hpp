// Clip and dataset generation: the stand-in for the paper's video corpus of
// 12 training clips (522 frames) and 3 test clips (135 frames).
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/image.hpp"
#include "pose/pose_catalog.hpp"
#include "synth/jump_motion.hpp"
#include "synth/renderer.hpp"

namespace slj::synth {

/// Per-frame ground truth a human annotator would have supplied.
struct FrameTruth {
  pose::PoseId pose = pose::PoseId::kUnknown;
  pose::Stage stage = pose::Stage::kBeforeJumping;
  bool airborne = false;
  PartTruth parts;             ///< key body parts, image pixels
  JointAngles angles;          ///< generating angles (for diagnostics)
};

/// One video clip: a background plate, the frames, and per-frame truth.
struct Clip {
  std::uint32_t seed = 0;
  RgbImage background;
  std::vector<RgbImage> frames;
  std::vector<FrameTruth> truth;
  std::vector<BinaryImage> clean_silhouettes;  ///< noise-free GT masks
  FaultFlags faults;

  int frame_count() const { return static_cast<int>(frames.size()); }
};

struct ClipSpec {
  std::uint32_t seed = 1;
  int frame_count = 44;
  FaultFlags faults;
  CameraConfig camera;
  double subject_height_mean = 1.38;
  double subject_height_sigma = 0.07;
};

/// Generates one clip. Deterministic in the spec (seed included).
Clip generate_clip(const ClipSpec& spec);

struct Dataset {
  std::vector<Clip> train;
  std::vector<Clip> test;

  std::size_t train_frames() const;
  std::size_t test_frames() const;
};

struct DatasetSpec {
  std::uint32_t seed = 2008;  ///< base seed; clip seeds derive from it
  /// Frame counts per clip. Defaults reproduce the paper's corpus exactly:
  /// 12 training clips totalling 522 frames, 3 test clips totalling 135.
  std::vector<int> train_clip_frames = {44, 43, 44, 43, 44, 43, 44, 43, 44, 43, 44, 43};
  std::vector<int> test_clip_frames = {45, 45, 45};
  CameraConfig camera;
};

Dataset generate_dataset(const DatasetSpec& spec);

}  // namespace slj::synth
