#include "synth/labeler.hpp"

#include <cmath>

namespace slj::synth {
namespace {

constexpr double kPi = 3.14159265358979323846;

constexpr double deg(double d) { return d * kPi / 180.0; }

bool arms_forwardish(ArmDirection a) {
  return a == ArmDirection::kForward || a == ArmDirection::kUp;
}

}  // namespace

int cardinal_sector(PointF direction) {
  const double sector = 2.0 * kPi / 8.0;
  double angle = std::atan2(direction.y, direction.x) + sector / 2.0;
  while (angle < 0.0) angle += 2.0 * kPi;
  while (angle >= 2.0 * kPi) angle -= 2.0 * kPi;
  const int s = static_cast<int>(angle / sector);
  return s >= 8 ? 7 : s;
}

ArmDirection classify_arm(const BodyDimensions& body, const JointPositions& joints) {
  // Judge from the hand's position relative to the mid-torso (what the
  // waist-centred feature encoding sees).
  const PointF centre = (joints.pelvis + joints.neck) / 2.0;
  const PointF dir = joints.hand - centre;
  // A hand close to the torso axis and below the shoulder reads as
  // "overlapping with the body" regardless of exact angle.
  const PointF axis = joints.neck - joints.pelvis;
  const double axis_len = norm(axis);
  if (axis_len > 1e-9 && joints.hand.y < joints.neck.y) {
    const double cross = axis.x * (joints.hand.y - joints.pelvis.y) -
                         axis.y * (joints.hand.x - joints.pelvis.x);
    if (std::abs(cross) / axis_len < 1.6 * body.torso_radius) return ArmDirection::kDown;
  }
  switch (cardinal_sector(dir)) {
    case 0:
    case 1: return ArmDirection::kForward;   // ahead, ahead-up
    case 2:
    case 3: return ArmDirection::kUp;        // up, up-back
    case 4:
    case 5: return ArmDirection::kBackward;  // back, back-down
    case 6: return ArmDirection::kDown;      // straight down
    default: return ArmDirection::kForward;  // down-ahead
  }
}

KneeBend classify_knee(double knee_flexion_rad) {
  if (knee_flexion_rad < deg(30)) return KneeBend::kStraight;
  if (knee_flexion_rad < deg(65)) return KneeBend::kBent;
  return KneeBend::kDeep;
}

bool waist_bent(const JointAngles& angles) {
  const bool pike = angles.hip >= deg(55) && angles.knee < deg(45);
  return pike || angles.torso_lean >= deg(25);
}

pose::PoseId label_pose(const BodyDimensions& body, const MotionFrame& frame) {
  using pose::PoseId;
  const JointAngles& a = frame.angles;
  const JointPositions joints = forward_kinematics(body, a, frame.pelvis);
  const ArmDirection arm = classify_arm(body, joints);
  const KneeBend knees = classify_knee(a.knee);
  const bool fwd = arms_forwardish(arm);
  // Thigh direction: forward-carried legs (tuck / reach) vs hanging.
  const int thigh_sector = cardinal_sector(joints.knee - joints.pelvis);
  const bool legs_carried = thigh_sector == 0 || thigh_sector == 7 || thigh_sector == 1;

  switch (frame.stage) {
    case pose::Stage::kBeforeJumping: {
      if (knees != KneeBend::kStraight && (a.knee >= deg(50) || legs_carried)) {
        return arm == ArmDirection::kBackward ? PoseId::kCrouchHandsBackward
                                              : PoseId::kCrouchHandsForward;
      }
      if (waist_bent(a) && arm == ArmDirection::kBackward) {
        return PoseId::kWaistBentHandsBackward;
      }
      switch (arm) {
        case ArmDirection::kDown: return PoseId::kStandHandsOverlap;
        case ArmDirection::kForward: return PoseId::kStandHandsForward;
        case ArmDirection::kBackward: return PoseId::kStandHandsBackward;
        case ArmDirection::kUp: return PoseId::kStandHandsUp;
      }
      return PoseId::kStandHandsOverlap;
    }
    case pose::Stage::kJumping: {
      if (a.knee >= deg(45)) {
        return arm == ArmDirection::kBackward ? PoseId::kTakeoffHandsBackward
                                              : PoseId::kTakeoffLeanForward;
      }
      if (arm == ArmDirection::kUp) return PoseId::kExtendedHandsUp;
      if (arm == ArmDirection::kForward) return PoseId::kExtendedHandsForward;
      return a.torso_lean >= deg(14) ? PoseId::kTakeoffLeanForward
                                     : PoseId::kExtendedHandsForward;
    }
    case pose::Stage::kInTheAir: {
      if (knees == KneeBend::kDeep) {
        return fwd ? PoseId::kAirTuckHandsForward : PoseId::kAirTuckHandsDown;
      }
      if (legs_carried) {
        return fwd ? PoseId::kAirLegsReachForward : PoseId::kAirPikeHandsDown;
      }
      return fwd ? PoseId::kAirExtendedHandsForward : PoseId::kAirUprightHandsDown;
    }
    case pose::Stage::kLanding: {
      if (legs_carried && knees != KneeBend::kStraight) {
        return fwd ? PoseId::kTouchdownKneesBentHandsForward : PoseId::kTouchdownDeepHandsDown;
      }
      if (knees == KneeBend::kDeep ||
          (knees == KneeBend::kBent && a.hip >= deg(40))) {
        return fwd ? PoseId::kLandedSquatHandsForward : PoseId::kTouchdownDeepHandsDown;
      }
      if (fwd) {
        return PoseId::kLandedWaistBentHandsForward;
      }
      return PoseId::kLandedRisingHandsDown;
    }
  }
  return PoseId::kStandHandsOverlap;
}

}  // namespace slj::synth
