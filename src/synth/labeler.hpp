// Ground-truth pose labelling: maps a motion frame (joint angles + stage)
// to one of the 22 catalogue poses. This plays the role of the human
// annotator who labelled the paper's 522 training and 135 test frames.
//
// The annotator judges what is VISIBLE: the directions of the hand and the
// knee relative to the body centre, knee flexion, trunk bend. The
// categories are therefore derived from forward-kinematics positions and
// quantized on the same 45° grid the pose features use, so the labels are
// learnable from the skeleton features (as they were for the original
// annotators, who looked at the same silhouettes the system processed).
#pragma once

#include "pose/pose_catalog.hpp"
#include "synth/body_model.hpp"
#include "synth/jump_motion.hpp"

namespace slj::synth {

/// Visible arm direction, judged from the hand position relative to the
/// upper body.
enum class ArmDirection { kDown, kForward, kUp, kBackward };

/// Visible knee flexion.
enum class KneeBend { kStraight, kBent, kDeep };

/// Cardinal-8 sector of a direction vector (y-up world space), sector 0
/// centred on "straight ahead" (+x), counter-clockwise, each 45° wide.
int cardinal_sector(PointF direction);

ArmDirection classify_arm(const BodyDimensions& body, const JointPositions& joints);
KneeBend classify_knee(double knee_flexion_rad);

/// True when the trunk is folded forward relative to the legs.
bool waist_bent(const JointAngles& angles);

/// The ground-truth pose for one motion frame.
pose::PoseId label_pose(const BodyDimensions& body, const MotionFrame& frame);

}  // namespace slj::synth
