#include "synth/dataset.hpp"

#include <numeric>

#include "synth/labeler.hpp"

namespace slj::synth {

Clip generate_clip(const ClipSpec& spec) {
  Clip clip;
  clip.seed = spec.seed;
  clip.faults = spec.faults;

  std::mt19937 rng(spec.seed);
  std::normal_distribution<double> height_dist(spec.subject_height_mean,
                                               spec.subject_height_sigma);
  const double height = std::clamp(height_dist(rng), 1.15, 1.62);
  const BodyDimensions body = BodyDimensions::for_height(height);

  JumpStyle style;
  style.seed = spec.seed * 7919u + 13u;  // decouple motion jitter from subject jitter
  style.faults = spec.faults;
  std::uniform_real_distribution<double> dist(1.00, 1.30);
  std::uniform_real_distribution<double> apex(0.20, 0.32);
  style.jump_distance = dist(rng);
  style.apex_height = apex(rng);

  const JumpMotionGenerator motion(body, style);
  const SilhouetteRenderer renderer(spec.camera);

  clip.background = renderer.render_background(rng);
  const std::vector<MotionFrame> frames = motion.generate(spec.frame_count);
  clip.frames.reserve(frames.size());
  clip.truth.reserve(frames.size());
  clip.clean_silhouettes.reserve(frames.size());
  for (const MotionFrame& mf : frames) {
    clip.frames.push_back(renderer.render_frame(body, mf.angles, mf.pelvis, rng));
    clip.clean_silhouettes.push_back(renderer.render_silhouette(body, mf.angles, mf.pelvis));
    FrameTruth t;
    t.pose = label_pose(body, mf);
    t.stage = mf.stage;
    t.airborne = mf.airborne;
    t.parts = renderer.part_truth(body, mf.angles, mf.pelvis);
    t.angles = mf.angles;
    clip.truth.push_back(t);
  }
  return clip;
}

std::size_t Dataset::train_frames() const {
  return std::accumulate(train.begin(), train.end(), std::size_t{0},
                         [](std::size_t n, const Clip& c) { return n + c.frames.size(); });
}

std::size_t Dataset::test_frames() const {
  return std::accumulate(test.begin(), test.end(), std::size_t{0},
                         [](std::size_t n, const Clip& c) { return n + c.frames.size(); });
}

Dataset generate_dataset(const DatasetSpec& spec) {
  Dataset ds;
  std::uint32_t clip_seed = spec.seed;
  for (const int frames : spec.train_clip_frames) {
    ClipSpec cs;
    cs.seed = ++clip_seed;
    cs.frame_count = frames;
    cs.camera = spec.camera;
    ds.train.push_back(generate_clip(cs));
  }
  // Offset the test seeds so adding training clips never changes test data.
  clip_seed = spec.seed + 1000u;
  for (const int frames : spec.test_clip_frames) {
    ClipSpec cs;
    cs.seed = ++clip_seed;
    cs.frame_count = frames;
    cs.camera = spec.camera;
    ds.test.push_back(generate_clip(cs));
  }
  return ds;
}

}  // namespace slj::synth
