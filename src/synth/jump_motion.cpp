#include "synth/jump_motion.hpp"

#include <algorithm>
#include <cmath>

namespace slj::synth {
namespace {

constexpr double deg(double d) { return d * 3.14159265358979323846 / 180.0; }

}  // namespace

JumpMotionGenerator::Track::Track(std::initializer_list<std::pair<double, double>> knots)
    : knots_(knots) {
  std::sort(knots_.begin(), knots_.end());
}

void JumpMotionGenerator::Track::add(double t, double value) {
  knots_.emplace_back(t, value);
  std::sort(knots_.begin(), knots_.end());
}

void JumpMotionGenerator::Track::jitter(std::mt19937& rng, double value_sigma,
                                        double time_sigma) {
  std::normal_distribution<double> dv(0.0, value_sigma);
  std::normal_distribution<double> dt(0.0, time_sigma);
  for (auto& [t, v] : knots_) {
    v += dv(rng);
    // Keep the clip endpoints anchored so every jump spans the full clip.
    if (t > 0.0 && t < 1.0) t = std::clamp(t + dt(rng), 0.01, 0.99);
  }
  std::sort(knots_.begin(), knots_.end());
}

void JumpMotionGenerator::Track::scale_values(double factor) {
  for (auto& [t, v] : knots_) v *= factor;
}

void JumpMotionGenerator::Track::clamp_values(double lo, double hi) {
  for (auto& [t, v] : knots_) v = std::clamp(v, lo, hi);
}

double JumpMotionGenerator::Track::eval(double t) const {
  if (knots_.empty()) return 0.0;
  if (t <= knots_.front().first) return knots_.front().second;
  if (t >= knots_.back().first) return knots_.back().second;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (t <= knots_[i].first) {
      const auto& [t0, v0] = knots_[i - 1];
      const auto& [t1, v1] = knots_[i];
      if (t1 <= t0) return v1;
      const double u = (t - t0) / (t1 - t0);
      // Cosine easing: zero-velocity at knots, like real limb reversals.
      const double w = (1.0 - std::cos(3.14159265358979323846 * u)) / 2.0;
      return v0 + (v1 - v0) * w;
    }
  }
  return knots_.back().second;
}

JumpMotionGenerator::JumpMotionGenerator(BodyDimensions body, JumpStyle style)
    : body_(body), style_(style) {
  build_tracks();
}

void JumpMotionGenerator::build_tracks() {
  std::mt19937 rng(style_.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Subject-level timing variation.
  t_crouch_ = 0.30 + (unit(rng) - 0.5) * 0.04;
  t_liftoff_ = 0.45 + (unit(rng) - 0.5) * 0.04;
  t_touchdown_ = 0.76 + (unit(rng) - 0.5) * 0.04;
  const double tc = t_crouch_;
  const double tl = t_liftoff_;
  const double td = t_touchdown_;
  const double t_extend = tc + (tl - tc) * 0.55;  // explosive extension starts

  // --- angle choreography (degrees, converted at the end) ---------------
  torso_lean_ = Track{{0.0, 1}, {0.12, 4},  {0.20, 10}, {tc, 28},       {t_extend, 30},
                      {tl, 20}, {0.55, 22}, {0.66, 15}, {td - 0.02, 18}, {td + 0.03, 30},
                      {0.87, 34}, {1.0, 12}};
  neck_tilt_ = Track{{0.0, 2}, {tc, 8}, {tl, -4}, {0.7, 2}, {1.0, 3}};
  shoulder_ = Track{{0.0, 4},   {0.09, 42},  {0.19, 50},  {tc, -55},     {t_extend, -50},
                    {tl, 70},   {0.52, 100}, {0.62, 92},  {td - 0.02, 80}, {td + 0.05, 55},
                    {0.88, 25}, {1.0, 8}};
  elbow_ = Track{{0.0, 10}, {tc, 28}, {tl, 14}, {0.6, 18}, {0.85, 22}, {1.0, 12}};
  hip_ = Track{{0.0, 2},        {0.15, 4},  {tc, 65},   {t_extend, 60}, {tl, 8},
               {0.54, 32},      {0.64, 75}, {td - 0.03, 86}, {td + 0.04, 72},
               {0.88, 55},      {1.0, 6}};
  knee_ = Track{{0.0, 2},   {0.15, 5},  {tc, 78},       {t_extend, 70}, {tl, 5},
                {0.54, 48}, {0.62, 92}, {td - 0.04, 30}, {td, 24},      {td + 0.05, 78},
                {0.88, 52}, {1.0, 8}};
  ankle_ = Track{{0.0, 90}, {tc, 92}, {tl - 0.02, 86}, {tl + 0.01, 55}, {0.56, 78},
                 {0.70, 96}, {td, 92}, {1.0, 90}};

  // Horizontal pelvis travel: small shift into the crouch, ballistic flight
  // covering the jump distance, a short settle after touchdown.
  std::uniform_real_distribution<double> dist_jitter(0.92, 1.10);
  const double travel = style_.jump_distance * dist_jitter(rng);
  root_x_ = Track{{0.0, 0.0}, {0.22, 0.015}, {tc, 0.04}, {tl, 0.11},
                  {td, 0.11 + travel}, {0.9, 0.13 + travel}, {1.0, 0.14 + travel}};

  // Per-subject articulation jitter (about 2.5 deg / 1% time).
  const double vs = deg(1.6);
  for (Track* track : {&torso_lean_, &neck_tilt_, &shoulder_, &elbow_, &hip_, &knee_, &ankle_}) {
    track->scale_values(deg(1.0));  // degrees -> radians
    track->jitter(rng, vs, 0.007);
  }
  root_x_.jitter(rng, 0.008, 0.008);

  // --- movement faults ---------------------------------------------------
  if (style_.faults.no_arm_swing) shoulder_.clamp_values(deg(-8), deg(14));
  if (style_.faults.no_crouch) {
    // A jumper who never loads: shallow knees/hips before take-off. Clamping
    // the whole track also flattens the landing a little, which is exactly
    // what an unloaded jump looks like.
    knee_.clamp_values(deg(0), deg(24));
    hip_.clamp_values(deg(0), deg(26));
  }
  if (style_.faults.stiff_landing) {
    // Keep preparation intact but freeze the absorption: clamp only knots in
    // the landing window by rebuilding the track through eval().
    Track stiff_knee, stiff_hip;
    for (double t = 0.0; t <= 1.0001; t += 0.02) {
      const double clamp_from = td - 0.01;
      const double k = knee_.eval(t);
      const double hp = hip_.eval(t);
      stiff_knee.add(t, t >= clamp_from ? std::min(k, deg(16)) : k);
      stiff_hip.add(t, t >= clamp_from ? std::min(hp, deg(20)) : hp);
    }
    knee_ = stiff_knee;
    hip_ = stiff_hip;
  }
  if (style_.faults.no_forward_lean) torso_lean_.clamp_values(deg(-4), deg(7));
}

MotionFrame JumpMotionGenerator::sample(double t) const {
  MotionFrame f;
  f.time_fraction = t;
  f.angles.torso_lean = torso_lean_.eval(t);
  f.angles.neck_tilt = neck_tilt_.eval(t);
  f.angles.shoulder = shoulder_.eval(t);
  f.angles.elbow = elbow_.eval(t);
  f.angles.hip = hip_.eval(t);
  f.angles.knee = knee_.eval(t);
  f.angles.ankle = ankle_.eval(t);

  f.airborne = t > t_liftoff_ && t < t_touchdown_;
  const double t_extend = t_crouch_ + (t_liftoff_ - t_crouch_) * 0.55;
  if (t < t_extend) {
    f.stage = pose::Stage::kBeforeJumping;
  } else if (t <= t_liftoff_) {
    f.stage = pose::Stage::kJumping;
  } else if (t < t_touchdown_) {
    f.stage = pose::Stage::kInTheAir;
  } else {
    f.stage = pose::Stage::kLanding;
  }

  const double x = root_x_.eval(t);
  double y;
  if (!f.airborne) {
    y = pelvis_height_for_ground_contact(body_, f.angles);
  } else {
    // Ballistic arc between the lift-off and touchdown contact heights.
    JointAngles lift = f.angles;
    MotionFrame tmp;
    (void)tmp;
    const auto angles_at = [&](double tt) {
      JointAngles a;
      a.torso_lean = torso_lean_.eval(tt);
      a.neck_tilt = neck_tilt_.eval(tt);
      a.shoulder = shoulder_.eval(tt);
      a.elbow = elbow_.eval(tt);
      a.hip = hip_.eval(tt);
      a.knee = knee_.eval(tt);
      a.ankle = ankle_.eval(tt);
      return a;
    };
    lift = angles_at(t_liftoff_);
    const JointAngles land = angles_at(t_touchdown_);
    const double y0 = pelvis_height_for_ground_contact(body_, lift);
    const double y1 = pelvis_height_for_ground_contact(body_, land);
    const double s = (t - t_liftoff_) / (t_touchdown_ - t_liftoff_);
    y = (1.0 - s) * y0 + s * y1 + 4.0 * style_.apex_height * s * (1.0 - s);
  }
  f.pelvis = {x, y};
  return f;
}

std::vector<MotionFrame> JumpMotionGenerator::generate(int frame_count) const {
  std::vector<MotionFrame> frames;
  frames.reserve(static_cast<std::size_t>(frame_count));
  for (int i = 0; i < frame_count; ++i) {
    const double t = frame_count > 1 ? static_cast<double>(i) / (frame_count - 1) : 0.0;
    frames.push_back(sample(t));
  }
  return frames;
}

}  // namespace slj::synth
