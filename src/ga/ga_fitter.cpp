#include "ga/ga_fitter.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/connected.hpp"

namespace slj::ga {
namespace {

constexpr double deg(double d) { return d * 3.14159265358979323846 / 180.0; }

}  // namespace

GeneticSkeletonFitter::GeneticSkeletonFitter(synth::BodyDimensions body,
                                             synth::CameraConfig camera, GaConfig config)
    : body_(body), renderer_(camera), config_(config) {
  // Gene bounds: pelvis position is seeded from the silhouette centroid at
  // fit() time; these are the articulation ranges.
  bounds_ = {{
      {-0.5, 3.0},           // pelvis x (m) — refined per silhouette
      {0.1, 1.2},            // pelvis y (m)
      {deg(-10), deg(50)},   // torso lean
      {deg(-80), deg(170)},  // shoulder
      {deg(0), deg(60)},     // elbow
      {deg(-10), deg(100)},  // hip
      {deg(0), deg(110)},    // knee
      {deg(-15), deg(15)},   // neck tilt
  }};
}

StickPose GeneticSkeletonFitter::decode(const Genome& g) const {
  StickPose p;
  p.pelvis_world = {g[0], g[1]};
  p.angles.torso_lean = g[2];
  p.angles.shoulder = g[3];
  p.angles.elbow = g[4];
  p.angles.hip = g[5];
  p.angles.knee = g[6];
  p.angles.neck_tilt = g[7];
  return p;
}

double GeneticSkeletonFitter::fitness(const StickPose& pose, const BinaryImage& silhouette) const {
  const BinaryImage stick = renderer_.render_stick(body_, pose.angles, pose.pelvis_world,
                                                   config_.stick_radius_px);
  // Asymmetric overlap: every stick pixel should lie inside the silhouette
  // (precision) and the stick should span the silhouette extent (recall via
  // IoU of the dilated stick); plain IoU works well enough and is what we
  // report.
  return iou(stick, silhouette);
}

GeneticSkeletonFitter::Genome GeneticSkeletonFitter::random_genome(
    std::mt19937& rng, const BinaryImage& silhouette) const {
  Genome g{};
  // Seed pelvis near the silhouette centroid.
  const Labeling lab = label_components(silhouette);
  PointF centroid{static_cast<double>(silhouette.width()) / 2.0,
                  static_cast<double>(silhouette.height()) / 2.0};
  if (!lab.components.empty()) {
    const auto& biggest = *std::max_element(
        lab.components.begin(), lab.components.end(),
        [](const ComponentStats& a, const ComponentStats& b) { return a.area < b.area; });
    centroid = biggest.centroid;
  }
  const auto& cam = renderer_.config();
  const double cx_world = (centroid.x - cam.origin_x_px) / cam.pixels_per_meter;
  const double cy_world = (cam.ground_y_px - centroid.y) / cam.pixels_per_meter;

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int i = 0; i < kGeneCount; ++i) {
    const auto [lo, hi] = bounds_[static_cast<std::size_t>(i)];
    g[static_cast<std::size_t>(i)] = lo + unit(rng) * (hi - lo);
  }
  std::normal_distribution<double> near_x(cx_world, 0.15);
  std::normal_distribution<double> near_y(cy_world, 0.12);
  g[0] = near_x(rng);
  g[1] = std::max(0.05, near_y(rng));
  return g;
}

FitResult GeneticSkeletonFitter::fit(const BinaryImage& silhouette) {
  std::mt19937 rng(config_.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> pick(0, config_.population - 1);

  std::vector<Genome> population;
  std::vector<double> scores(static_cast<std::size_t>(config_.population));
  population.reserve(static_cast<std::size_t>(config_.population));
  for (int i = 0; i < config_.population; ++i) {
    population.push_back(random_genome(rng, silhouette));
  }

  FitResult result;
  const auto evaluate = [&](const Genome& g) {
    ++result.evaluations;
    return fitness(decode(g), silhouette);
  };
  for (int i = 0; i < config_.population; ++i) {
    scores[static_cast<std::size_t>(i)] = evaluate(population[static_cast<std::size_t>(i)]);
  }

  const auto tournament_select = [&]() -> const Genome& {
    int best = pick(rng);
    for (int t = 1; t < config_.tournament; ++t) {
      const int challenger = pick(rng);
      if (scores[static_cast<std::size_t>(challenger)] > scores[static_cast<std::size_t>(best)]) {
        best = challenger;
      }
    }
    return population[static_cast<std::size_t>(best)];
  };

  for (int gen = 0; gen < config_.generations; ++gen) {
    ++result.generations_run;
    std::vector<int> order(static_cast<std::size_t>(config_.population));
    for (int i = 0; i < config_.population; ++i) order[static_cast<std::size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return scores[static_cast<std::size_t>(a)] > scores[static_cast<std::size_t>(b)];
    });

    std::vector<Genome> next;
    next.reserve(static_cast<std::size_t>(config_.population));
    for (int e = 0; e < config_.elitism && e < config_.population; ++e) {
      next.push_back(population[static_cast<std::size_t>(order[static_cast<std::size_t>(e)])]);
    }
    while (static_cast<int>(next.size()) < config_.population) {
      Genome child = tournament_select();
      if (unit(rng) < config_.crossover_rate) {
        const Genome& other = tournament_select();
        // BLX-alpha blend crossover.
        for (int i = 0; i < kGeneCount; ++i) {
          const double a = child[static_cast<std::size_t>(i)];
          const double b = other[static_cast<std::size_t>(i)];
          const double lo = std::min(a, b) - config_.blend_alpha * std::abs(a - b);
          const double hi = std::max(a, b) + config_.blend_alpha * std::abs(a - b);
          std::uniform_real_distribution<double> blend(lo, hi);
          child[static_cast<std::size_t>(i)] = blend(rng);
        }
      }
      for (int i = 0; i < kGeneCount; ++i) {
        if (unit(rng) < config_.mutation_rate) {
          const auto [lo, hi] = bounds_[static_cast<std::size_t>(i)];
          std::normal_distribution<double> mut(0.0, config_.mutation_sigma * (hi - lo));
          child[static_cast<std::size_t>(i)] += mut(rng);
        }
        const auto [lo, hi] = bounds_[static_cast<std::size_t>(i)];
        child[static_cast<std::size_t>(i)] = std::clamp(child[static_cast<std::size_t>(i)], lo, hi);
      }
      next.push_back(child);
    }
    population = std::move(next);
    for (int i = 0; i < config_.population; ++i) {
      scores[static_cast<std::size_t>(i)] = evaluate(population[static_cast<std::size_t>(i)]);
    }
  }

  const auto best_it = std::max_element(scores.begin(), scores.end());
  const std::size_t best_idx = static_cast<std::size_t>(best_it - scores.begin());
  result.best = decode(population[best_idx]);
  result.fitness = *best_it;
  return result;
}

}  // namespace slj::ga
