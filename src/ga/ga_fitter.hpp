// Genetic-algorithm stick-model skeleton fitter — the authors' *previous*
// approach ([1], Hsu et al., ICDCSW 2006) that this paper replaces with
// thinning because "the search process of the genetic algorithm is very
// time-consuming" and "the size of each stick needs to be given by the user
// beforehand" (we likewise require BodyDimensions up front).
//
// Chromosome: pelvis position + the articulation angles of the stick model.
// Fitness: IoU between the rasterised stick silhouette and the observed
// silhouette. Implemented here as the runtime/accuracy baseline for the P1
// bench.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "imaging/image.hpp"
#include "synth/body_model.hpp"
#include "synth/renderer.hpp"

namespace slj::ga {

struct GaConfig {
  int population = 56;
  int generations = 60;
  int tournament = 3;
  double crossover_rate = 0.9;
  double blend_alpha = 0.35;       ///< BLX-alpha crossover spread
  double mutation_rate = 0.25;     ///< per-gene probability
  double mutation_sigma = 0.10;    ///< fraction of the gene's range
  int elitism = 2;
  double stick_radius_px = 3.0;
  std::uint32_t seed = 42;
};

/// One candidate stick configuration.
struct StickPose {
  PointF pelvis_world;   ///< metres
  synth::JointAngles angles;
};

struct FitResult {
  StickPose best;
  double fitness = 0.0;      ///< IoU of the best individual
  int generations_run = 0;
  std::size_t evaluations = 0;
};

class GeneticSkeletonFitter {
 public:
  GeneticSkeletonFitter(synth::BodyDimensions body, synth::CameraConfig camera,
                        GaConfig config = {});

  /// Fits the stick model to one observed silhouette.
  FitResult fit(const BinaryImage& silhouette);

  /// Fitness of an arbitrary stick pose against a silhouette (exposed for
  /// tests).
  double fitness(const StickPose& pose, const BinaryImage& silhouette) const;

 private:
  static constexpr int kGeneCount = 8;  // x, y, torso, shoulder, elbow, hip, knee, neck
  using Genome = std::array<double, kGeneCount>;

  StickPose decode(const Genome& g) const;
  Genome random_genome(std::mt19937& rng, const BinaryImage& silhouette) const;

  synth::BodyDimensions body_;
  synth::SilhouetteRenderer renderer_;
  GaConfig config_;
  std::array<std::pair<double, double>, kGeneCount> bounds_;
};

}  // namespace slj::ga
