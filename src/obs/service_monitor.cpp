#include "obs/service_monitor.hpp"

#include <cstdio>

namespace slj::obs {

ServiceMonitor::ServiceMonitor(ingest::IngestService& service, ServiceMonitorConfig config)
    : service_(service), config_(std::move(config)), recorder_(config_.recorder),
      slo_(config_.slo) {
  service_.set_tap(&recorder_);
  Tracer::instance().set_enabled(true);
}

ServiceMonitor::~ServiceMonitor() { service_.set_tap(nullptr); }

ingest::IngestMetricsSnapshot ServiceMonitor::poll() {
  ingest::IngestMetricsSnapshot snapshot = service_.metrics();
  incident_scratch_.clear();
  slo_.evaluate(snapshot, &incident_scratch_);
  for (const SloIncident& incident : incident_scratch_) {
    if (config_.trace_breaches) {
      Tracer::instance().instant("slo.breach", incident.session,
                                 static_cast<std::int64_t>(incident.value * 1000.0));
    }
    trigger_incident("slo");
  }
  return snapshot;
}

std::string ServiceMonitor::trigger_incident(const std::string& reason) {
  if (incident_seq_ >= config_.max_incidents) return "";
  char name[128];
  std::snprintf(name, sizeof(name), "/incident_%llu_%s.sljtrace",
                static_cast<unsigned long long>(incident_seq_), reason.c_str());
  const std::string path = config_.incident_dir + name;
  // Flush first so every admitted frame has been delivered or discarded:
  // the dump then balances and carries a summary record, and no push-vs-tick
  // race can truncate a session.
  service_.flush();
  recorder_.dump(path);
  ++incident_seq_;
  incident_paths_.push_back(path);
  return path;
}

}  // namespace slj::obs
