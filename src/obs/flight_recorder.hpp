// FlightRecorder: a bounded, always-attachable ring-buffer IngestTap that
// turns "something just went wrong on the live service" into a replayable
// .sljtrace — without pre-arranged recording and without unbounded memory.
//
// Why retention is per *session*, not per event. A .sljtrace only replays
// bit-for-bit if every session it contains is complete from its open record
// (decoder/background state depends on the full frame history), so a naive
// "keep the last N seconds of events" window would produce torn sessions the
// replayer rejects. Instead:
//
//   * Open sessions are retained whole, from their open record onward.
//   * Closed sessions age out: once a session's close record is older than
//     `window_ns` (the "last N seconds" knob) it is evicted entirely.
//   * The capture is byte-bounded by `max_bytes`. Over budget, the oldest
//     *closed* sessions are evicted first; if open sessions alone still
//     blow the budget, the longest-running open session is evicted and
//     permanently *tainted* — excluded from dumps (its capture is no longer
//     complete-from-open) but tracked so later events for it are ignored
//     cheaply. Session ids are never reused, so a taint cannot leak onto a
//     new session.
//
// dump() materializes the retained capture as a valid trace, atomically
// (write to <path>.tmp, then rename). Two live-capture races are handled:
//
//   * push-vs-tick: a producer may log its admitted push after the scheduler
//     logged the tick that consumed it. A dump cut inside that window would
//     contain a tick referencing a frame with no push record — structurally
//     corrupt — so each session is prefix-truncated at the first such tick
//     entry, and its close record (whose golden report/accounting would no
//     longer match the truncated history) is dropped with the tail.
//   * totals balance: a summary record is synthesized from the *emitted*
//     records and included only when the plane's conservation law
//     (pushed == delivered + dropped_oldest + discarded) holds for them —
//     dumps taken mid-flight omit the summary (the replayer warns but still
//     checks every golden update/report/per-close account), dumps taken
//     after a flush get the full summary cross-check.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "ingest/ingest_tap.hpp"
#include "replay/trace_format.hpp"

namespace slj::obs {

struct FlightRecorderConfig {
  /// Closed-session retention horizon ("dump the last N seconds"): a closed
  /// session whose close record is older than this is evicted. <= 0 keeps
  /// closed sessions until the byte budget pushes them out.
  std::int64_t window_ns = 30'000'000'000;  // 30 s
  /// Approximate capture budget across all retained sessions.
  std::size_t max_bytes = 256u << 20;  // 256 MiB
};

class FlightRecorder : public ingest::IngestTap {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  // IngestTap — on_push arrives concurrently from producer threads; one
  // mutex serializes the capture (same posture as replay::TraceRecorder).
  void on_open(ingest::Clock::time_point now, int session,
               const ingest::IngestSessionConfig& config, const RgbImage& background)
      SLJ_EXCLUDES(mutex_) override;
  void on_push(ingest::Clock::time_point now, int session, const RgbImage& frame,
               ingest::PushOutcome outcome, std::uint64_t sequence)
      SLJ_EXCLUDES(mutex_) override;
  void on_tick(ingest::Clock::time_point now, const ingest::DrainBatch& batch,
               const std::vector<core::StreamUpdate>& updates, std::size_t count)
      SLJ_EXCLUDES(mutex_) override;
  void on_close(ingest::Clock::time_point now, int session, const core::JumpReport& report,
                std::uint64_t discarded, bool evicted)
      SLJ_EXCLUDES(mutex_) override;

  struct DumpStats {
    std::size_t sessions = 0;      ///< sessions included in the dump
    std::size_t pushes = 0;        ///< push records written
    std::size_t ticks = 0;         ///< tick records written
    std::size_t closes = 0;        ///< close records written
    std::size_t truncated_sessions = 0;  ///< sessions cut at a push-vs-tick race
    bool has_summary = false;      ///< totals balanced -> summary included
    std::int64_t span_ns = 0;      ///< captured time span (re-anchored)
  };

  /// Writes the retained capture as a .sljtrace, atomically (tmp + rename).
  /// Safe while the service is live. Throws std::runtime_error on I/O
  /// failure. An empty capture still produces a valid (record-free) trace.
  DumpStats dump(const std::string& path) SLJ_EXCLUDES(mutex_);

  /// Approximate bytes currently retained.
  std::size_t bytes() const SLJ_EXCLUDES(mutex_);
  /// Sessions currently retained (open + closed, excluding tainted).
  std::size_t sessions() const SLJ_EXCLUDES(mutex_);
  /// Sessions evicted to honor the byte budget or the window so far.
  std::uint64_t evicted_sessions() const SLJ_EXCLUDES(mutex_);

 private:
  /// One tick entry as captured: tagged with the tick it belonged to so the
  /// dump can regroup entries (stored per-session for eviction) back into
  /// whole TickRecords.
  struct CapturedTickEntry {
    std::uint64_t capture_seq = 0;  ///< global capture order of the tick
    std::int64_t t_ns = 0;          ///< the tick's timestamp
    replay::TickEntry entry;
  };

  struct SessionCapture {
    int id = -1;
    bool tainted = false;  ///< evicted while open; ignore all further events
    std::uint64_t open_seq = 0;
    replay::OpenRecord open;
    std::vector<std::pair<std::uint64_t, replay::PushRecord>> pushes;  ///< (capture_seq, rec)
    std::vector<CapturedTickEntry> ticks;
    bool closed = false;
    std::uint64_t close_seq = 0;
    replay::CloseRecord close;
    std::size_t bytes = 0;  ///< approximate retained footprint
  };

  SessionCapture* capture_of(int session) SLJ_REQUIRES(mutex_);
  std::int64_t stamp(ingest::Clock::time_point now) const;
  void account(SessionCapture& capture, std::size_t delta) SLJ_REQUIRES(mutex_);
  void evict_session(std::size_t index) SLJ_REQUIRES(mutex_);
  /// Window + byte-budget enforcement; `now_ns` is the newest event stamp.
  void enforce_budgets(std::int64_t now_ns) SLJ_REQUIRES(mutex_);

  FlightRecorderConfig config_;
  mutable slj::Mutex mutex_;
  /// index = session id (the router allocates ids densely and never reuses
  /// them). Null = never seen or fully evicted.
  std::vector<std::unique_ptr<SessionCapture>> sessions_ SLJ_GUARDED_BY(mutex_);
  std::uint64_t capture_seq_ SLJ_GUARDED_BY(mutex_) = 0;
  std::size_t total_bytes_ SLJ_GUARDED_BY(mutex_) = 0;
  std::uint64_t evicted_ SLJ_GUARDED_BY(mutex_) = 0;
};

}  // namespace slj::obs
