#include "obs/slo.hpp"

namespace slj::obs {

const char* slo_state_name(SloState state) {
  return state == SloState::kBreach ? "breach" : "ok";
}

SloTracker::SloTracker(SloConfig config) : config_(config) {
  if (config_.breach_after < 1) config_.breach_after = 1;
  if (config_.clear_after < 1) config_.clear_after = 1;
  if (config_.hysteresis < 0.0) config_.hysteresis = 0.0;
  if (config_.hysteresis > 1.0) config_.hysteresis = 1.0;
}

bool SloTracker::update_gauge(Gauge& gauge, double value, double budget) const {
  if (value > budget) {
    gauge.consecutive_good = 0;
    ++gauge.consecutive_bad;
    if (gauge.state == SloState::kOk && gauge.consecutive_bad >= config_.breach_after) {
      gauge.state = SloState::kBreach;
      ++gauge.breaches;
      return true;
    }
    return false;
  }
  gauge.consecutive_bad = 0;
  if (gauge.state == SloState::kBreach) {
    // Clearing needs the hysteresis margin: a value hovering at the budget
    // keeps the breach latched instead of flapping ok/breach/ok.
    if (value <= budget * (1.0 - config_.hysteresis)) {
      ++gauge.consecutive_good;
      if (gauge.consecutive_good >= config_.clear_after) {
        gauge.state = SloState::kOk;
        gauge.consecutive_good = 0;
      }
    } else {
      gauge.consecutive_good = 0;
    }
  }
  return false;
}

void SloTracker::evaluate(ingest::IngestMetricsSnapshot& snapshot,
                          std::vector<SloIncident>* incidents) {
  for (ingest::SessionMetricsSnapshot& row : snapshot.sessions) {
    if (row.session < 0) continue;
    if (static_cast<std::size_t>(row.session) >= sessions_.size()) {
      sessions_.resize(static_cast<std::size_t>(row.session) + 1);
    }
    SessionSlo& slo = sessions_[static_cast<std::size_t>(row.session)];
    if (!slo.live) {
      // First sighting (or the id of a previously closed session — the
      // router never reuses ids, so this is always a fresh session).
      slo = SessionSlo{};
      slo.live = true;
    }

    if (!config_.tracked()) {
      row.slo_state = "untracked";
      continue;
    }

    if (config_.latency_tracked() && row.delivered > 0) {
      if (update_gauge(slo.latency, row.latency_p99_ms, config_.p99_budget_ms)) {
        total_breaches_ += 1;
        if (incidents != nullptr) {
          incidents->push_back(
              {row.session, "latency", row.latency_p99_ms, config_.p99_budget_ms});
        }
      }
    }

    // Drop gauge: shed fraction of frames offered since the last evaluate.
    // Intervals with no offered frames leave the gauge untouched — silence
    // is not evidence either way.
    const std::uint64_t offered = row.pushed + row.rejected + row.rate_limited;
    const std::uint64_t shed = row.dropped_oldest + row.rejected + row.rate_limited;
    const std::uint64_t d_offered = offered - slo.last_offered;
    const std::uint64_t d_shed = shed - slo.last_shed;
    if (d_offered > 0) {
      slo.last_drop_rate = static_cast<double>(d_shed) / static_cast<double>(d_offered);
      slo.last_offered = offered;
      slo.last_shed = shed;
      if (config_.drops_tracked()) {
        if (update_gauge(slo.drops, slo.last_drop_rate, config_.drop_rate_budget)) {
          total_breaches_ += 1;
          if (incidents != nullptr) {
            incidents->push_back(
                {row.session, "drops", slo.last_drop_rate, config_.drop_rate_budget});
          }
        }
      }
    }
    row.drop_rate = slo.last_drop_rate;

    const bool breached =
        slo.latency.state == SloState::kBreach || slo.drops.state == SloState::kBreach;
    row.slo_state = slo_state_name(breached ? SloState::kBreach : SloState::kOk);
    row.slo_breaches = slo.latency.breaches + slo.drops.breaches;
    if (breached) ++snapshot.slo_breached_sessions;
  }
  snapshot.slo_breaches = total_breaches_;
}

}  // namespace slj::obs
