// ServiceMonitor: wires the three observability pieces onto one live
// IngestService — the FlightRecorder rides as the service's tap, the
// SloTracker scores every metrics poll, and an SLO breach (or an explicit
// caller signal, e.g. `sljtool top` on SIGUSR1) triggers an *incident*: the
// recorder's retained window is atomically dumped as a replayable .sljtrace.
//
// Construction order matters: the monitor installs the tap in its
// constructor, so it must be created BEFORE any session is opened on the
// service — a session whose open record the recorder never saw cannot be
// part of a valid dump (the recorder simply ignores such sessions).
//
// Single-threaded by design: poll() and trigger_incident() must be called
// from one thread (the tool's refresh loop). The recorder underneath is
// fully thread-safe; only the monitor's own bookkeeping is not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ingest/ingest_service.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/tracer.hpp"

namespace slj::obs {

struct ServiceMonitorConfig {
  SloConfig slo;
  FlightRecorderConfig recorder;
  /// Directory incident dumps are written to ("." by default).
  std::string incident_dir = ".";
  /// Hard cap on incident files produced over the monitor's lifetime; 0
  /// disables incident dumping (SLO state is still tracked and exported).
  std::size_t max_incidents = 4;
  /// Also emit tracer instants ("slo.breach") on breach edges.
  bool trace_breaches = true;
};

class ServiceMonitor {
 public:
  /// Installs the flight recorder as `service`'s tap and enables the
  /// process-wide tracer. `service` must outlive the monitor and must not
  /// have open sessions yet.
  ServiceMonitor(ingest::IngestService& service, ServiceMonitorConfig config);
  ~ServiceMonitor();

  ServiceMonitor(const ServiceMonitor&) = delete;
  ServiceMonitor& operator=(const ServiceMonitor&) = delete;

  /// Takes one metrics snapshot, scores it against the SLO budgets and
  /// returns it decorated (per-session slo_state / drop_rate / breach
  /// counters). Each gauge newly entering breach fires one incident dump.
  ingest::IngestMetricsSnapshot poll();

  /// Forces an incident dump now (e.g. on an operator signal). Returns the
  /// incident file path, or "" when the incident budget is exhausted.
  std::string trigger_incident(const std::string& reason);

  FlightRecorder& recorder() { return recorder_; }
  const SloTracker& slo() const { return slo_; }
  std::uint64_t incidents() const { return incident_seq_; }
  const std::vector<std::string>& incident_paths() const { return incident_paths_; }

 private:
  ingest::IngestService& service_;
  ServiceMonitorConfig config_;
  FlightRecorder recorder_;
  SloTracker slo_;
  std::vector<SloIncident> incident_scratch_;
  std::uint64_t incident_seq_ = 0;
  std::vector<std::string> incident_paths_;
};

}  // namespace slj::obs
