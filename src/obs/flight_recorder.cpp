#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

namespace slj::obs {

namespace {

// Approximate per-record bookkeeping footprints (bytes). These only steer
// the eviction budget, so round constants beat precise sizeof arithmetic.
constexpr std::size_t kSessionOverhead = 512;
constexpr std::size_t kPushOverhead = 160;
constexpr std::size_t kTickEntryOverhead = 256;
constexpr std::size_t kResolvedFaultBytes = 64;
constexpr std::size_t kCloseOverhead = 256;

std::size_t frame_bytes(const RgbImage& frame) {
  return static_cast<std::size_t>(frame.width()) * static_cast<std::size_t>(frame.height()) * 3;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config) : config_(config) {}

std::int64_t FlightRecorder::stamp(ingest::Clock::time_point now) const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch()).count();
}

FlightRecorder::SessionCapture* FlightRecorder::capture_of(int session) {
  if (session < 0 || static_cast<std::size_t>(session) >= sessions_.size()) return nullptr;
  SessionCapture* capture = sessions_[static_cast<std::size_t>(session)].get();
  if (capture == nullptr || capture->tainted) return nullptr;
  return capture;
}

void FlightRecorder::account(SessionCapture& capture, std::size_t delta) {
  capture.bytes += delta;
  total_bytes_ += delta;
}

void FlightRecorder::evict_session(std::size_t index) {
  SessionCapture* capture = sessions_[index].get();
  total_bytes_ -= capture->bytes;
  ++evicted_;
  if (capture->closed) {
    // Fully gone: nothing more can arrive for a closed session.
    sessions_[index].reset();
  } else {
    // Still open: its capture is no longer complete-from-open, so it can
    // never be dumped again — keep a tainted stub so later events for this
    // id are ignored (ids are never reused, so the taint cannot leak).
    capture->tainted = true;
    capture->pushes.clear();
    capture->pushes.shrink_to_fit();
    capture->ticks.clear();
    capture->ticks.shrink_to_fit();
    capture->open.background = RgbImage();
    capture->bytes = 0;
  }
}

void FlightRecorder::enforce_budgets(std::int64_t now_ns) {
  // Window: closed sessions older than the retention horizon age out.
  if (config_.window_ns > 0) {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      SessionCapture* capture = sessions_[i].get();
      if (capture == nullptr || capture->tainted || !capture->closed) continue;
      if (capture->close.t_ns < now_ns - config_.window_ns) evict_session(i);
    }
  }
  // Byte budget: evict the oldest closed session first; only when open
  // sessions alone exceed the budget, taint the longest-running open one.
  while (total_bytes_ > config_.max_bytes) {
    std::size_t victim = sessions_.size();
    std::uint64_t victim_seq = 0;
    bool victim_closed = false;
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      const SessionCapture* capture = sessions_[i].get();
      if (capture == nullptr || capture->tainted) continue;
      const bool closed = capture->closed;
      const std::uint64_t seq = closed ? capture->close_seq : capture->open_seq;
      if (victim == sessions_.size() || (closed && !victim_closed) ||
          (closed == victim_closed && seq < victim_seq)) {
        victim = i;
        victim_seq = seq;
        victim_closed = closed;
      }
    }
    if (victim == sessions_.size()) break;  // nothing left to shed
    evict_session(victim);
  }
}

void FlightRecorder::on_open(ingest::Clock::time_point now, int session,
                             const ingest::IngestSessionConfig& config,
                             const RgbImage& background) {
  slj::LockGuard lock(mutex_);
  if (session < 0) return;
  if (static_cast<std::size_t>(session) >= sessions_.size()) {
    sessions_.resize(static_cast<std::size_t>(session) + 1);
  }
  auto capture = std::make_unique<SessionCapture>();
  capture->id = session;
  capture->open_seq = capture_seq_++;
  capture->open.t_ns = stamp(now);
  capture->open.session = session;
  capture->open.config = replay::to_trace_config(config);
  capture->open.background = background;
  account(*capture, kSessionOverhead + frame_bytes(background));
  sessions_[static_cast<std::size_t>(session)] = std::move(capture);
  enforce_budgets(stamp(now));
}

void FlightRecorder::on_push(ingest::Clock::time_point now, int session, const RgbImage& frame,
                             ingest::PushOutcome outcome, std::uint64_t sequence) {
  slj::LockGuard lock(mutex_);
  SessionCapture* capture = capture_of(session);
  if (capture == nullptr) return;  // pre-install, evicted, or tainted session
  replay::PushRecord record;
  record.t_ns = stamp(now);
  record.session = session;
  record.outcome = outcome;
  record.sequence = sequence;
  std::size_t delta = kPushOverhead;
  if (ingest::push_accepted(outcome)) {
    record.frame = frame;
    delta += frame_bytes(frame);
  }
  capture->pushes.emplace_back(capture_seq_++, std::move(record));
  account(*capture, delta);
  enforce_budgets(stamp(now));
}

void FlightRecorder::on_tick(ingest::Clock::time_point now, const ingest::DrainBatch& batch,
                             const std::vector<core::StreamUpdate>& updates, std::size_t count) {
  slj::LockGuard lock(mutex_);
  const std::uint64_t tick_seq = capture_seq_++;
  const std::int64_t t_ns = stamp(now);
  for (std::size_t i = 0; i < count; ++i) {
    SessionCapture* capture = capture_of(batch.feeds[i].session);
    if (capture == nullptr) continue;
    CapturedTickEntry captured;
    captured.capture_seq = tick_seq;
    captured.t_ns = t_ns;
    captured.entry.session = batch.feeds[i].session;
    captured.entry.sequence = batch.pending(i).sequence;
    captured.entry.update = updates[i];
    account(*capture,
            kTickEntryOverhead + captured.entry.update.resolved.size() * kResolvedFaultBytes);
    capture->ticks.push_back(std::move(captured));
  }
  enforce_budgets(t_ns);
}

void FlightRecorder::on_close(ingest::Clock::time_point now, int session,
                              const core::JumpReport& report, std::uint64_t discarded,
                              bool evicted) {
  slj::LockGuard lock(mutex_);
  SessionCapture* capture = capture_of(session);
  if (capture == nullptr) {
    // A tainted session's close completes its story: free the stub.
    if (session >= 0 && static_cast<std::size_t>(session) < sessions_.size()) {
      sessions_[static_cast<std::size_t>(session)].reset();
    }
    return;
  }
  capture->closed = true;
  capture->close_seq = capture_seq_++;
  capture->close.t_ns = stamp(now);
  capture->close.session = session;
  capture->close.evicted = evicted;
  capture->close.discarded = discarded;
  capture->close.report = report;
  account(*capture, kCloseOverhead);
  enforce_budgets(stamp(now));
}

FlightRecorder::DumpStats FlightRecorder::dump(const std::string& path) {
  DumpStats stats;
  // Records land in a flat pool; `order` carries (capture_seq, pool index)
  // so the global sort shuffles trivial pairs, not variant payloads.
  std::vector<replay::TraceRecord> pool;
  std::vector<std::pair<std::uint64_t, std::size_t>> order;
  const auto emit = [&pool, &order](std::uint64_t seq, replay::TraceRecord record) {
    order.emplace_back(seq, pool.size());
    pool.push_back(std::move(record));
  };
  {
    slj::LockGuard lock(mutex_);
    // Regrouping scratch: tick entries are stored per-session (eviction
    // unit) but must be emitted as whole TickRecords keyed by the tick they
    // were captured in.
    std::map<std::uint64_t, replay::TickRecord> tick_groups;
    std::vector<std::uint64_t> admitted;

    for (const std::unique_ptr<SessionCapture>& owned : sessions_) {
      const SessionCapture* capture = owned.get();
      if (capture == nullptr || capture->tainted) continue;

      admitted.clear();
      std::uint64_t replaced = 0;
      for (const auto& [seq, push] : capture->pushes) {
        if (ingest::push_accepted(push.outcome)) admitted.push_back(push.sequence);
        if (push.outcome == ingest::PushOutcome::kReplacedOldest) ++replaced;
      }
      std::sort(admitted.begin(), admitted.end());

      // Prefix truncation: the first tick entry referencing a frame whose
      // push record has not landed yet (producer-side capture race) ends
      // this session's replayable history.
      std::size_t keep = capture->ticks.size();
      for (std::size_t i = 0; i < capture->ticks.size(); ++i) {
        if (!std::binary_search(admitted.begin(), admitted.end(),
                                capture->ticks[i].entry.sequence)) {
          keep = i;
          break;
        }
      }
      const bool truncated = keep < capture->ticks.size();
      if (truncated) ++stats.truncated_sessions;

      // The close record is only valid against the session's *full* history:
      // drop it when ticks were truncated, or when the capture's own books
      // (admitted - replaced - delivered == discarded) do not balance — the
      // same per-close re-check the replayer performs.
      bool emit_close = capture->closed && !truncated;
      if (emit_close) {
        const std::uint64_t delivered = keep;
        if (admitted.size() - replaced - delivered != capture->close.discarded) {
          emit_close = false;
          ++stats.truncated_sessions;
        }
      }

      emit(capture->open_seq, capture->open);
      for (const auto& [seq, push] : capture->pushes) {
        emit(seq, push);
        ++stats.pushes;
      }
      for (std::size_t i = 0; i < keep; ++i) {
        const CapturedTickEntry& captured = capture->ticks[i];
        replay::TickRecord& group = tick_groups[captured.capture_seq];
        group.t_ns = captured.t_ns;
        group.entries.push_back(captured.entry);
      }
      if (emit_close) {
        emit(capture->close_seq, capture->close);
        ++stats.closes;
      }
      ++stats.sessions;
    }
    for (auto& [seq, group] : tick_groups) {
      emit(seq, std::move(group));
      ++stats.ticks;
    }
  }

  std::sort(order.begin(), order.end());

  // Re-anchor timestamps to the earliest emitted record, like a recording
  // that started there: the dump carries event spacing, not an epoch.
  std::int64_t t0 = 0;
  std::int64_t t_max = 0;
  bool have_t0 = false;
  const auto visit_t = [](replay::TraceRecord& record) -> std::int64_t& {
    return std::visit([](auto& r) -> std::int64_t& { return r.t_ns; }, record);
  };
  for (replay::TraceRecord& record : pool) {
    const std::int64_t t = visit_t(record);
    if (!have_t0 || t < t0) {
      t0 = t;
      have_t0 = true;
    }
    if (t > t_max) t_max = t;
  }
  replay::Trace trace;
  trace.records.reserve(order.size() + 1);
  for (const auto& [seq, index] : order) {
    replay::TraceRecord& record = pool[index];
    visit_t(record) -= t0;
    trace.records.push_back(std::move(record));
  }
  stats.span_ns = have_t0 ? t_max - t0 : 0;

  // Synthesize the summary from the emitted records and include it only
  // when the conservation law holds for them (see file comment).
  replay::SummaryRecord summary;
  for (const replay::TraceRecord& record : trace.records) {
    if (const auto* push = std::get_if<replay::PushRecord>(&record)) {
      switch (push->outcome) {
        case ingest::PushOutcome::kReplacedOldest:
          ++summary.dropped_oldest;
          ++summary.pushed;
          break;
        case ingest::PushOutcome::kAccepted: ++summary.pushed; break;
        case ingest::PushOutcome::kRejected: ++summary.rejected; break;
        case ingest::PushOutcome::kRateLimited: ++summary.rate_limited; break;
        case ingest::PushOutcome::kClosed: ++summary.closed_pushes; break;
      }
    } else if (const auto* tick = std::get_if<replay::TickRecord>(&record)) {
      ++summary.ticks;
      summary.delivered += tick->entries.size();
    } else if (const auto* close = std::get_if<replay::CloseRecord>(&record)) {
      summary.discarded += close->discarded;
      if (close->evicted) ++summary.evicted_sessions;
    }
  }
  if (summary.pushed == summary.delivered + summary.dropped_oldest + summary.discarded) {
    stats.has_summary = true;
    trace.records.push_back(summary);
  }

  // Atomic materialization: a reader (or a crashed dump) never sees a
  // half-written incident file.
  const std::string tmp = path + ".tmp";
  try {
    replay::save_trace(trace, tmp);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("flight recorder: cannot rename " + tmp + " to " + path);
  }
  return stats;
}

std::size_t FlightRecorder::bytes() const {
  slj::LockGuard lock(mutex_);
  return total_bytes_;
}

std::size_t FlightRecorder::sessions() const {
  slj::LockGuard lock(mutex_);
  std::size_t n = 0;
  for (const std::unique_ptr<SessionCapture>& capture : sessions_) {
    if (capture != nullptr && !capture->tainted) ++n;
  }
  return n;
}

std::uint64_t FlightRecorder::evicted_sessions() const {
  slj::LockGuard lock(mutex_);
  return evicted_;
}

}  // namespace slj::obs
