#include "obs/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace slj::obs {

// ---- ThreadRing ------------------------------------------------------------

void ThreadRing::emit(TraceEventKind kind, const char* name, std::int32_t session,
                      std::int64_t arg, std::int64_t t_ns, std::int64_t dur_ns) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);  // slj-atomic: seqlock
  Slot& slot = slots_[h & (kCapacity - 1)];
  slot.t_ns.store(t_ns, std::memory_order_relaxed);        // slj-atomic: seqlock
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);    // slj-atomic: seqlock
  slot.name.store(name, std::memory_order_relaxed);        // slj-atomic: seqlock
  slot.arg.store(arg, std::memory_order_relaxed);          // slj-atomic: seqlock
  slot.session.store(session, std::memory_order_relaxed);  // slj-atomic: seqlock
  slot.kind.store(static_cast<std::uint8_t>(kind),
                  std::memory_order_relaxed);  // slj-atomic: seqlock
  // Publish: a reader that acquires h+1 sees this slot's stores.
  head_.store(h + 1, std::memory_order_release);
}

void ThreadRing::snapshot_into(std::vector<TraceEvent>& out, std::uint64_t& emitted) const {
  const std::uint64_t h1 = head_.load(std::memory_order_acquire);
  const std::uint64_t floor = floor_.load(std::memory_order_relaxed);  // slj-atomic: snapshot
  emitted = h1;
  std::uint64_t begin = h1 > kCapacity ? h1 - kCapacity : 0;
  begin = std::max(begin, floor);

  std::vector<TraceEvent> scratch;
  scratch.reserve(static_cast<std::size_t>(h1 - begin));
  for (std::uint64_t seq = begin; seq < h1; ++seq) {
    const Slot& slot = slots_[seq & (kCapacity - 1)];
    TraceEvent ev;
    ev.t_ns = slot.t_ns.load(std::memory_order_relaxed);      // slj-atomic: seqlock
    ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);  // slj-atomic: seqlock
    ev.name = slot.name.load(std::memory_order_relaxed);      // slj-atomic: seqlock
    ev.arg = slot.arg.load(std::memory_order_relaxed);        // slj-atomic: seqlock
    ev.session = slot.session.load(std::memory_order_relaxed);  // slj-atomic: seqlock
    ev.kind = static_cast<TraceEventKind>(
        slot.kind.load(std::memory_order_relaxed));  // slj-atomic: seqlock
    scratch.push_back(ev);
  }

  // Seqlock validation: the writer may have advanced during the copy. The
  // next unpublished event is h2; its in-progress (or completed) write
  // targets the slot holding seq h2 - kCapacity, so only events with
  // seq + kCapacity > h2 are guaranteed untorn.
  const std::uint64_t h2 = head_.load(std::memory_order_acquire);
  const std::uint64_t stable = h2 > kCapacity ? h2 - kCapacity + 1 : 0;
  for (std::uint64_t seq = begin; seq < h1; ++seq) {
    if (seq < stable) continue;
    const TraceEvent& ev = scratch[static_cast<std::size_t>(seq - begin)];
    if (ev.name != nullptr) out.push_back(ev);
  }
}

// ---- Tracer ----------------------------------------------------------------

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

ThreadRing& Tracer::ring() {
  thread_local ThreadRing* cached = nullptr;
  if (cached == nullptr) cached = register_thread();
  return *cached;
}

ThreadRing* Tracer::register_thread() {
  slj::LockGuard lock(registry_mutex_);
  rings_.push_back(std::make_unique<ThreadRing>());
  rings_.back()->tid_ = rings_.size();  // stable 1-based id
  return rings_.back().get();
}

void Tracer::instant(const char* name, std::int32_t session, std::int64_t arg) {
  if (!enabled()) return;
  const std::int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  ring().emit(TraceEventKind::kInstant, name, session, arg, now, 0);
}

void Tracer::end_span(const char* name, std::int32_t session, std::int64_t arg,
                      std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  const std::int64_t dur_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start).count();
  ring().emit(TraceEventKind::kSpan, name, session, arg,
              start.time_since_epoch().count(), dur_ns < 0 ? 0 : dur_ns);
}

TracerSnapshot Tracer::snapshot() const {
  TracerSnapshot snap;
  snap.enabled = enabled();
  slj::LockGuard lock(registry_mutex_);
  snap.threads.reserve(rings_.size());
  for (const std::unique_ptr<ThreadRing>& ring : rings_) {
    TracerThreadSnapshot thread;
    thread.tid = ring->tid();
    ring->snapshot_into(thread.events, thread.emitted);
    thread.dropped = thread.emitted - thread.events.size();
    snap.total_events += thread.events.size();
    snap.total_dropped += thread.dropped;
    snap.threads.push_back(std::move(thread));
  }
  return snap;
}

void Tracer::reset() {
  slj::LockGuard lock(registry_mutex_);
  for (const std::unique_ptr<ThreadRing>& ring : rings_) {
    // Raising the floor to the current head hides everything emitted so
    // far; the owning thread keeps writing monotonically past it.
    ring->floor_.store(ring->head_.load(std::memory_order_acquire),
                       std::memory_order_relaxed);  // slj-atomic: snapshot
  }
}

// ---- Chrome trace-event export ---------------------------------------------

namespace {

struct FlatEvent {
  TraceEvent ev;
  std::uint64_t tid = 0;
};

}  // namespace

std::string chrome_trace_json(const TracerSnapshot& snapshot,
                              const core::ProfilerSnapshot* profiler) {
  // Flatten, then sort by (start, tid, name) so the export is deterministic
  // for a given snapshot regardless of thread registration order.
  std::vector<FlatEvent> events;
  events.reserve(static_cast<std::size_t>(snapshot.total_events));
  std::int64_t t0 = 0;
  bool have_t0 = false;
  for (const TracerThreadSnapshot& thread : snapshot.threads) {
    for (const TraceEvent& ev : thread.events) {
      if (!have_t0 || ev.t_ns < t0) {
        t0 = ev.t_ns;
        have_t0 = true;
      }
      events.push_back({ev, thread.tid});
    }
  }
  std::sort(events.begin(), events.end(), [](const FlatEvent& a, const FlatEvent& b) {
    if (a.ev.t_ns != b.ev.t_ns) return a.ev.t_ns < b.ev.t_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::strcmp(a.ev.name, b.ev.name) < 0;
  });

  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  char buf[384];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i].ev;
    const double ts_us = static_cast<double>(ev.t_ns - t0) / 1e3;
    if (ev.kind == TraceEventKind::kSpan) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                    "\"pid\": 1, \"tid\": %llu, \"args\": {\"session\": %d, \"arg\": %lld}}",
                    i == 0 ? "" : ",", ev.name, ts_us, static_cast<double>(ev.dur_ns) / 1e3,
                    static_cast<unsigned long long>(events[i].tid), ev.session,
                    static_cast<long long>(ev.arg));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, "
                    "\"pid\": 1, \"tid\": %llu, \"args\": {\"session\": %d, \"arg\": %lld}}",
                    i == 0 ? "" : ",", ev.name, ts_us,
                    static_cast<unsigned long long>(events[i].tid), ev.session,
                    static_cast<long long>(ev.arg));
    }
    out += buf;
  }
  out += events.empty() ? "],\n" : "\n],\n";
  std::snprintf(buf, sizeof(buf),
                "\"tracer\": {\"enabled\": %s, \"events\": %llu, \"dropped\": %llu, "
                "\"threads\": %zu},\n",
                snapshot.enabled ? "true" : "false",
                static_cast<unsigned long long>(snapshot.total_events),
                static_cast<unsigned long long>(snapshot.total_dropped),
                snapshot.threads.size());
  out += buf;
  out += "\"profiler\": ";
  out += profiler != nullptr ? profiler->to_json() : std::string("null");
  out += "\n}\n";
  return out;
}

}  // namespace slj::obs
