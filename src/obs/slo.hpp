// Per-session SLO tracking over IngestMetrics snapshots.
//
// Two gauges per session, each a small hysteresis state machine:
//
//   latency   the session's lifetime p99 end-to-end latency (from the
//             per-session LatencyHistogram the router snapshots) against
//             p99_budget_ms
//   drops     the shed fraction of frames *offered since the last
//             evaluation* — (dropped_oldest + rejected + rate_limited)
//             deltas over (pushed + rejected + rate_limited) deltas —
//             against drop_rate_budget
//
// Breach entry takes `breach_after` consecutive over-budget evaluations;
// recovery takes `clear_after` consecutive evaluations at or below
// budget * (1 - hysteresis). A value sitting exactly on the budget neither
// enters breach (entry needs value > budget) nor clears one (clearing needs
// the hysteresis margin), so boundary latencies cannot flap the state —
// pinned by tests/test_obs.cpp.
//
// SloTracker::evaluate() decorates the snapshot in place (per-row state and
// breach counters plus plane-wide totals, all serialized by the existing
// IngestMetricsSnapshot::to_json) and reports *newly entered* breaches so a
// caller (obs::ServiceMonitor) can fire one incident per breach edge rather
// than one per poll.
#pragma once

#include <cstdint>
#include <vector>

#include "ingest/ingest_metrics.hpp"

namespace slj::obs {

struct SloConfig {
  /// p99 end-to-end latency budget in ms; <= 0 disables the latency gauge.
  double p99_budget_ms = 0.0;
  /// Budget on the shed fraction of offered frames per evaluation interval,
  /// in [0, 1]; <= 0 disables the drop gauge.
  double drop_rate_budget = 0.0;
  /// Recovery margin: a breached gauge clears only at or below
  /// budget * (1 - hysteresis).
  double hysteresis = 0.1;
  /// Consecutive over-budget evaluations before a gauge enters breach.
  int breach_after = 2;
  /// Consecutive within-margin evaluations before a breached gauge clears.
  int clear_after = 2;

  bool latency_tracked() const { return p99_budget_ms > 0.0; }
  bool drops_tracked() const { return drop_rate_budget > 0.0; }
  bool tracked() const { return latency_tracked() || drops_tracked(); }
};

enum class SloState : std::uint8_t { kOk = 0, kBreach = 1 };

const char* slo_state_name(SloState state);

/// One gauge crossing into breach on this evaluation.
struct SloIncident {
  int session = -1;
  const char* gauge = "";  ///< "latency" or "drops"
  double value = 0.0;
  double budget = 0.0;
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig config = {});

  /// Evaluates one snapshot: updates every session's gauges, writes the SLO
  /// fields of `snapshot` (per-session state/breach counters/drop rate and
  /// the plane totals), and appends newly entered breaches to `incidents`
  /// when non-null. Call from one thread, in snapshot order.
  void evaluate(ingest::IngestMetricsSnapshot& snapshot,
                std::vector<SloIncident>* incidents = nullptr);

  const SloConfig& config() const { return config_; }

  /// Lifetime count of breach entries across all sessions and gauges.
  std::uint64_t total_breaches() const { return total_breaches_; }

 private:
  struct Gauge {
    SloState state = SloState::kOk;
    int consecutive_bad = 0;
    int consecutive_good = 0;
    std::uint64_t breaches = 0;
  };

  struct SessionSlo {
    bool live = false;
    Gauge latency;
    Gauge drops;
    /// Counter values at the previous evaluation, for interval deltas.
    std::uint64_t last_offered = 0;
    std::uint64_t last_shed = 0;
    double last_drop_rate = 0.0;
  };

  /// Returns true when the gauge newly entered breach.
  bool update_gauge(Gauge& gauge, double value, double budget) const;

  SloConfig config_;
  std::vector<SessionSlo> sessions_;  ///< index = session id
  std::uint64_t total_breaches_ = 0;
};

}  // namespace slj::obs
