// Always-compiled structured event tracer: the "what happened when" plane
// that complements the profiler's "where does time go" aggregates.
//
// Design:
//   * Per-thread ring buffers. Each thread that emits gets its own
//     fixed-capacity ring (registered once, under a mutex, on first emit);
//     after that registration the emit path is lock-free and allocation-free:
//     one relaxed enabled check, two steady_clock reads per span, and a
//     single-writer slot write published with one release store.
//   * Single-writer seqlock-style slots. Only the owning thread writes its
//     ring; readers (snapshot) copy the newest <= kCapacity slots between two
//     acquire loads of the head and discard any slot the writer could have
//     been rewriting during the copy. Slot fields are relaxed atomics so the
//     overlap is defined behavior (and TSan-clean), not a benign-race pun.
//   * Bounded by construction. A ring that wraps overwrites its own oldest
//     events — tracing never backpressures the traced system; snapshot()
//     reports how many events each thread lost.
//
// Runtime posture: compiled in always, *disabled* by default. A disabled
// TraceSpan costs one relaxed load (the "compiled in but idle" overhead the
// perf_profiler bench guards at <3%); `sljtool top` / `trace-export` and
// obs::ServiceMonitor enable it. chrome_trace_json() renders a snapshot
// (optionally merged with a core::ProfilerSnapshot) as a Chrome
// trace-event / Perfetto-loadable JSON timeline.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/profiler.hpp"

namespace slj::obs {

enum class TraceEventKind : std::uint8_t {
  kSpan = 0,     ///< has a duration (Chrome "X" complete event)
  kInstant = 1,  ///< a point in time (Chrome "i" instant event)
};

/// One decoded trace event (the snapshot-side, plain-struct view).
struct TraceEvent {
  std::int64_t t_ns = 0;     ///< steady-clock start (span) / moment (instant)
  std::int64_t dur_ns = 0;   ///< span duration; 0 for instants
  const char* name = "";     ///< static string (never owned)
  std::int64_t arg = 0;      ///< event-specific payload (frame index, count, ...)
  std::int32_t session = -1; ///< ingest session id, -1 = none
  TraceEventKind kind = TraceEventKind::kInstant;
};

/// One thread's bounded event ring. Single writer (the owning thread);
/// any thread may snapshot it concurrently.
class ThreadRing {
 public:
  /// Ring capacity in events; power of two so the index mask is a single
  /// AND. ~4k events x ~56 bytes keeps a ring near 224 KiB per thread.
  static constexpr std::size_t kCapacity = 4096;

  /// Appends one event. Owning thread only.
  void emit(TraceEventKind kind, const char* name, std::int32_t session, std::int64_t arg,
            std::int64_t t_ns, std::int64_t dur_ns);

  /// Copies the newest surviving events (ascending emit order) into `out`.
  /// `emitted` receives the thread's lifetime event count. Events the writer
  /// may have been overwriting during the copy are discarded, so every
  /// returned event is internally consistent.
  void snapshot_into(std::vector<TraceEvent>& out, std::uint64_t& emitted) const;

  std::uint64_t tid() const { return tid_; }

 private:
  friend class Tracer;

  /// Slot fields are individually relaxed atomics: the single writer stores
  /// them plain-speed, and a concurrent reader's loads of a mid-rewrite slot
  /// yield discarded-but-defined values instead of a data race.
  struct Slot {
    std::atomic<std::int64_t> t_ns{0};
    std::atomic<std::int64_t> dur_ns{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int64_t> arg{0};
    std::atomic<std::int32_t> session{-1};
    std::atomic<std::uint8_t> kind{0};
  };

  std::array<Slot, kCapacity> slots_{};
  /// Events ever emitted; slot (head_ % kCapacity) is written *before* the
  /// incremented head is release-published, seqlock-style.
  std::atomic<std::uint64_t> head_{0};
  /// Snapshot floor: events below it are ignored (set by Tracer::reset(),
  /// which must not rewind head_ under the single-writer protocol).
  std::atomic<std::uint64_t> floor_{0};
  std::uint64_t tid_ = 0;  ///< stable 1-based registration index
};

/// One thread's slice of a tracer snapshot.
struct TracerThreadSnapshot {
  std::uint64_t tid = 0;
  std::uint64_t emitted = 0;  ///< events this thread ever wrote
  std::uint64_t dropped = 0;  ///< emitted - kept (ring wrap + reset floor)
  std::vector<TraceEvent> events;
};

struct TracerSnapshot {
  bool enabled = false;
  std::uint64_t total_events = 0;  ///< kept events across all threads
  std::uint64_t total_dropped = 0;
  std::vector<TracerThreadSnapshot> threads;
};

/// Process-global tracer. All emit paths funnel through the calling thread's
/// own ThreadRing; registration (first emit per thread) takes the registry
/// mutex once and allocates the ring — the only allocation the tracer ever
/// performs.
class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);  // slj-atomic: flag
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);  // slj-atomic: flag
  }

  /// Appends an instant event (no-op when disabled).
  void instant(const char* name, std::int32_t session = -1, std::int64_t arg = 0);

  /// Appends a completed span that started at `start` and ends now.
  /// Called by ~TraceSpan, which already checked enabled() at construction.
  void end_span(const char* name, std::int32_t session, std::int64_t arg,
                std::chrono::steady_clock::time_point start);

  /// Coherent-per-thread copy of every ring (threads keep emitting; each
  /// ring is internally consistent, cross-thread skew is inherent).
  TracerSnapshot snapshot() const SLJ_EXCLUDES(registry_mutex_);

  /// Hides all events emitted so far from future snapshots (benches/tests
  /// between phases). Rings are not freed and heads never rewind, so this
  /// is safe concurrently with active writers.
  void reset() SLJ_EXCLUDES(registry_mutex_);

 private:
  Tracer() = default;

  ThreadRing& ring();  ///< this thread's ring, registering it on first use
  ThreadRing* register_thread() SLJ_EXCLUDES(registry_mutex_);

  std::atomic<bool> enabled_{false};
  mutable slj::Mutex registry_mutex_;
  /// Rings live for the process lifetime (threads may exit before a final
  /// snapshot is taken), bounded by the number of distinct emitting threads.
  std::vector<std::unique_ptr<ThreadRing>> rings_ SLJ_GUARDED_BY(registry_mutex_);
};

/// RAII span: construction -> destruction becomes one kSpan event when the
/// tracer is enabled at construction time. Safe (one relaxed load, nothing
/// else) on SLJ_HOT_PATH code when disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int32_t session = -1, std::int64_t arg = 0)
      : name_(name), arg_(arg), session_(session), armed_(Tracer::instance().enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (armed_) Tracer::instance().end_span(name_, session_, arg_, start_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::int64_t arg_;
  std::int32_t session_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

/// Renders a snapshot as Chrome trace-event JSON ({"traceEvents": [...]}),
/// loadable by chrome://tracing and Perfetto. Timestamps are re-anchored to
/// the earliest kept event. When `profiler` is non-null its aggregate stage
/// table is embedded under a top-level "profiler" key, giving one artifact
/// that carries both the timeline and the rollup.
std::string chrome_trace_json(const TracerSnapshot& snapshot,
                              const core::ProfilerSnapshot* profiler = nullptr);

}  // namespace slj::obs
