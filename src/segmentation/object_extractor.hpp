// The paper's object-extraction algorithm (Sec. 2), steps i–viii, plus the
// median-filter smoothing of Fig. 1(c) and a connected-component / hole-fill
// cleanup so downstream thinning sees one solid silhouette.
#pragma once

#include <cstdint>

#include "core/annotations.hpp"
#include "imaging/frame_workspace.hpp"
#include "imaging/image.hpp"
#include "segmentation/background_model.hpp"

namespace slj::seg {

struct ExtractorParams {
  int window = 3;              ///< the paper's n (moving-window side), odd >= 1
  int th_object = 20;          ///< the paper's Th_Object, in [0, 255]
  int median_window = 5;       ///< silhouette smoothing window (Fig. 1c), odd >= 1
  /// Noise floor for the max-shift normalization (steps vi–vii). The paper
  /// rescales so max(D) = 255; on a frame where nothing moved that would
  /// amplify sensor noise into a phantom silhouette. When max(D) falls below
  /// this floor the scene is treated as unchanged and the mask stays empty.
  double min_max_difference = 12.0;
  bool keep_largest_only = true;
  bool fill_holes = true;
};

/// Intermediate products, exposed so Fig. 1 can be regenerated stage by
/// stage and so tests can pin each step.
struct ExtractionResult {
  Image<double> difference;   ///< D(i,j) = |ΔR| + |ΔG| + |ΔB|  (step iv)
  double max_difference = 0;  ///< max of D                     (step v)
  GrayImage normalized;       ///< R: shifted so max = 255, clamped at 0 (vi–vii)
  BinaryImage raw_mask;       ///< Obj: R > Th_Object            (step viii)
  BinaryImage smoothed;       ///< after median filter           (Fig. 1c)
  BinaryImage silhouette;     ///< after largest-component + hole fill
};

class ObjectExtractor {
 public:
  explicit ObjectExtractor(ExtractorParams params = {});

  /// Installs the empty-scene background (step i).
  void set_background(const RgbImage& background);

  /// Adds one more empty-scene frame to the background average.
  void accumulate_background(const RgbImage& background);

  bool has_background() const { return background_.has_background(); }
  const ExtractorParams& params() const { return params_; }

  /// Runs steps ii–viii plus smoothing on one frame.
  ExtractionResult extract(const RgbImage& frame) const;

  /// Allocation-free fast path: same algorithm, but every intermediate lives
  /// in the workspace (difference in ws.difference, raw mask in ws.raw_mask,
  /// smoothed in ws.smoothed; the figure-grade `normalized` image is skipped
  /// — the mask thresholds the difference directly, provably the same bits)
  /// and the final silhouette is written to `silhouette_out`. At steady
  /// state — same-sized frames through the same workspace — no full-frame
  /// buffer is heap-allocated. Output is bit-identical to extract(). Returns
  /// max(D) (step v), which extract() reports as max_difference.
  ///
  /// When `exec` is a multi-band BandExecutor the windowed-mean, difference,
  /// threshold, and median passes run row-banded across its workers — still
  /// bit-identical to the serial path at any band count.
  SLJ_HOT_PATH double extract_into(const RgbImage& frame, FrameWorkspace& ws,
                      BinaryImage& silhouette_out, BandExecutor* exec = nullptr) const;

  /// Shortcut returning only the final silhouette.
  BinaryImage silhouette(const RgbImage& frame) const;

 private:
  ExtractorParams params_;
  BackgroundModel background_;
};

}  // namespace slj::seg
