// Background model for the paper's object-extraction algorithm (Sec. 2,
// steps i–ii): the moving-window n×n per-channel average of the background
// frame, optionally accumulated over several empty frames for stability
// ("the light sources can be controlled and are more stable").
#pragma once

#include "imaging/image.hpp"
#include "imaging/integral.hpp"

namespace slj::seg {

class BackgroundModel {
 public:
  /// `window` is the paper's n (odd). The model is empty until a frame is
  /// accumulated.
  explicit BackgroundModel(int window = 3);

  /// Adds one empty-scene frame; the stored background is the running mean.
  void accumulate(const RgbImage& frame);

  /// Convenience: reset and accumulate exactly one frame.
  void set_background(const RgbImage& frame);

  void reset();

  bool has_background() const { return frame_count_ > 0; }
  int window() const { return window_; }
  int width() const { return sum_r_.width(); }
  int height() const { return sum_r_.height(); }

  /// The paper's Bave: per-channel moving-window mean of the background.
  /// Rebuilt eagerly by accumulate(), so concurrent const reads (parallel
  /// frame extraction against one installed background) are safe.
  const RgbMeans& averaged() const;

 private:
  int window_;
  int frame_count_ = 0;
  // Running per-pixel mean of raw background frames (before windowing).
  Image<double> sum_r_, sum_g_, sum_b_;
  RgbMeans mean_;

  void rebuild_mean();
};

}  // namespace slj::seg
