#include "segmentation/background_model.hpp"

#include <stdexcept>

namespace slj::seg {

BackgroundModel::BackgroundModel(int window) : window_(window) {
  if (window < 1 || window % 2 == 0) {
    throw std::invalid_argument("background window must be odd and >= 1");
  }
}

void BackgroundModel::accumulate(const RgbImage& frame) {
  if (frame_count_ == 0) {
    sum_r_ = Image<double>(frame.width(), frame.height());
    sum_g_ = Image<double>(frame.width(), frame.height());
    sum_b_ = Image<double>(frame.width(), frame.height());
  } else if (frame.width() != sum_r_.width() || frame.height() != sum_r_.height()) {
    throw std::invalid_argument("background frames must share one size");
  }
  for (std::size_t i = 0; i < frame.size(); ++i) {
    sum_r_.data()[i] += frame.data()[i].r;
    sum_g_.data()[i] += frame.data()[i].g;
    sum_b_.data()[i] += frame.data()[i].b;
  }
  ++frame_count_;
  rebuild_mean();
}

void BackgroundModel::set_background(const RgbImage& frame) {
  reset();
  accumulate(frame);
}

void BackgroundModel::reset() { frame_count_ = 0; }

void BackgroundModel::rebuild_mean() {
  // Average the accumulated frames, then apply the paper's n×n moving
  // window. Quantisation to uint8 first keeps this identical to feeding a
  // single averaged frame through window_mean_rgb.
  RgbImage avg(sum_r_.width(), sum_r_.height());
  for (std::size_t i = 0; i < avg.size(); ++i) {
    const double inv = 1.0 / frame_count_;
    avg.data()[i] = {static_cast<std::uint8_t>(sum_r_.data()[i] * inv + 0.5),
                     static_cast<std::uint8_t>(sum_g_.data()[i] * inv + 0.5),
                     static_cast<std::uint8_t>(sum_b_.data()[i] * inv + 0.5)};
  }
  mean_ = window_mean_rgb(avg, window_);
}

const RgbMeans& BackgroundModel::averaged() const {
  if (frame_count_ == 0) throw std::logic_error("background model has no frames");
  return mean_;
}

}  // namespace slj::seg
