#include "segmentation/object_extractor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "imaging/connected.hpp"
#include "imaging/filters.hpp"
#include "imaging/morphology.hpp"

namespace slj::seg {

ObjectExtractor::ObjectExtractor(ExtractorParams params)
    : params_(params), background_(params.window) {
  if (params.median_window < 1 || params.median_window % 2 == 0) {
    throw std::invalid_argument("median window must be odd and >= 1");
  }
}

void ObjectExtractor::set_background(const RgbImage& background) {
  background_.set_background(background);
}

void ObjectExtractor::accumulate_background(const RgbImage& background) {
  background_.accumulate(background);
}

ExtractionResult ObjectExtractor::extract(const RgbImage& frame) const {
  if (!background_.has_background()) {
    throw std::logic_error("ObjectExtractor: background not set");
  }
  if (frame.width() != background_.width() || frame.height() != background_.height()) {
    throw std::invalid_argument("frame size differs from background");
  }
  const RgbMeans& bave = background_.averaged();
  // Step ii: Aave, the windowed mean of the frame with the moving object.
  const RgbMeans aave = window_mean_rgb(frame, params_.window);

  ExtractionResult res;
  const int w = frame.width();
  const int h = frame.height();
  res.difference = Image<double>(w, h);

  // Steps iii–v: C = Aave − Bave per channel; D = |C_R| + |C_G| + |C_B|.
  double max_d = 0.0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double d = std::abs(aave.r.at(x, y) - bave.r.at(x, y)) +
                       std::abs(aave.g.at(x, y) - bave.g.at(x, y)) +
                       std::abs(aave.b.at(x, y) - bave.b.at(x, y));
      res.difference.at(x, y) = d;
      max_d = std::max(max_d, d);
    }
  }
  res.max_difference = max_d;

  // Steps vi–vii: shift so max(D) = 255, clamp negatives to zero. If the
  // scene differs nowhere (max_d = 0) everything stays background.
  const double shift = max_d - 255.0;
  res.normalized = GrayImage(w, h);
  res.raw_mask = BinaryImage(w, h);
  for (std::size_t i = 0; i < res.normalized.size(); ++i) {
    const double r = max_d > 0.0 ? res.difference.data()[i] - shift : 0.0;
    const double clamped = std::clamp(r, 0.0, 255.0);
    res.normalized.data()[i] = static_cast<std::uint8_t>(std::lround(clamped));
    // Step viii: threshold at Th_Object.
    res.raw_mask.data()[i] = res.normalized.data()[i] > params_.th_object ? 1 : 0;
  }

  // Fig. 1(c): median smoothing removes the "small holes and ridged edges".
  res.smoothed = median_filter_binary(res.raw_mask, params_.median_window);

  BinaryImage cleaned = res.smoothed;
  if (params_.keep_largest_only) cleaned = largest_component(cleaned);
  if (params_.fill_holes) cleaned = fill_holes(cleaned);
  res.silhouette = std::move(cleaned);
  return res;
}

BinaryImage ObjectExtractor::silhouette(const RgbImage& frame) const {
  return extract(frame).silhouette;
}

}  // namespace slj::seg
