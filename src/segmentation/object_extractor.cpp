#include "segmentation/object_extractor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/simd.hpp"
#include "imaging/connected.hpp"
#include "imaging/filters.hpp"
#include "imaging/morphology.hpp"
#include "imaging/row_kernels.hpp"

namespace slj::seg {
namespace {

void validate(const ExtractorParams& params) {
  if (params.window < 1 || params.window % 2 == 0) {
    throw std::invalid_argument("ExtractorParams.window (the paper's n) must be odd and >= 1; got " +
                                std::to_string(params.window));
  }
  if (params.median_window < 1 || params.median_window % 2 == 0) {
    throw std::invalid_argument("ExtractorParams.median_window must be odd and >= 1; got " +
                                std::to_string(params.median_window));
  }
  if (params.th_object < 0 || params.th_object > 255) {
    throw std::invalid_argument(
        "ExtractorParams.th_object must be in [0, 255] (it thresholds the normalized "
        "8-bit difference); got " +
        std::to_string(params.th_object));
  }
  if (!(params.min_max_difference >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument("ExtractorParams.min_max_difference must be >= 0; got " +
                                std::to_string(params.min_max_difference));
  }
}

}  // namespace

// validate() runs inside the first initializer so an invalid window is
// reported with the ExtractorParams message, not BackgroundModel's.
ObjectExtractor::ObjectExtractor(ExtractorParams params)
    : params_((validate(params), params)), background_(params.window) {}

void ObjectExtractor::set_background(const RgbImage& background) {
  background_.set_background(background);
}

void ObjectExtractor::accumulate_background(const RgbImage& background) {
  background_.accumulate(background);
}

ExtractionResult ObjectExtractor::extract(const RgbImage& frame) const {
  if (!background_.has_background()) {
    throw std::logic_error("ObjectExtractor: background not set");
  }
  if (frame.width() != background_.width() || frame.height() != background_.height()) {
    throw std::invalid_argument("frame size differs from background");
  }
  const RgbMeans& bave = background_.averaged();
  // Step ii: Aave, the windowed mean of the frame with the moving object.
  const RgbMeans aave = window_mean_rgb(frame, params_.window);

  ExtractionResult res;
  const int w = frame.width();
  const int h = frame.height();
  res.difference = Image<double>(w, h);

  // Steps iii–v: C = Aave − Bave per channel; D = |C_R| + |C_G| + |C_B|.
  double max_d = 0.0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double d = std::abs(aave.r.at(x, y) - bave.r.at(x, y)) +
                       std::abs(aave.g.at(x, y) - bave.g.at(x, y)) +
                       std::abs(aave.b.at(x, y) - bave.b.at(x, y));
      res.difference.at(x, y) = d;
      max_d = std::max(max_d, d);
    }
  }
  res.max_difference = max_d;

  // Steps vi–vii: shift so max(D) = 255, clamp negatives to zero. If the
  // scene differs nowhere (max_d = 0), or differs by less than the noise
  // floor (rescaling would only amplify sensor noise into a phantom
  // silhouette), everything stays background.
  const bool scene_changed = max_d > 0.0 && max_d >= params_.min_max_difference;
  const double shift = max_d - 255.0;
  res.normalized = GrayImage(w, h);
  res.raw_mask = BinaryImage(w, h);
  for (std::size_t i = 0; i < res.normalized.size(); ++i) {
    const double r = scene_changed ? res.difference.data()[i] - shift : 0.0;
    const double clamped = std::clamp(r, 0.0, 255.0);
    res.normalized.data()[i] = static_cast<std::uint8_t>(std::lround(clamped));
    // Step viii: threshold at Th_Object.
    res.raw_mask.data()[i] = res.normalized.data()[i] > params_.th_object ? 1 : 0;
  }

  // Fig. 1(c): median smoothing removes the "small holes and ridged edges".
  res.smoothed = median_filter_binary(res.raw_mask, params_.median_window);

  BinaryImage cleaned = res.smoothed;
  if (params_.keep_largest_only) cleaned = largest_component(cleaned);
  if (params_.fill_holes) cleaned = fill_holes(cleaned);
  res.silhouette = std::move(cleaned);
  return res;
}

SLJ_HOT_PATH double ObjectExtractor::extract_into(const RgbImage& frame, FrameWorkspace& ws,
                                     BinaryImage& silhouette_out, BandExecutor* exec) const {
  if (!background_.has_background()) {
    throw std::logic_error("ObjectExtractor: background not set");
  }
  if (frame.width() != background_.width() || frame.height() != background_.height()) {
    throw std::invalid_argument("frame size differs from background");
  }
  const RgbMeans& bave = background_.averaged();
  // Steps ii–v fused: the frame's windowed means are read straight off the
  // summed-area tables while the difference image is written, so the Aave
  // planes are never materialised. Interior pixels (all but a `half`-wide
  // border) take the clamp-free table path — vectorised on the configured
  // simd backend; both paths produce the exact doubles window_mean_rgb would.
  build_rgb_integrals(frame, ws, exec);

  const int w = frame.width();
  const int h = frame.height();
  const int half = params_.window / 2;
  const double area = static_cast<double>(params_.window) * static_cast<double>(params_.window);
  const double* tr = ws.integral_r.raw();
  const double* tg = ws.integral_g.raw();
  const double* tb = ws.integral_b.raw();
  const std::size_t stride = ws.integral_r.stride();
  const double* br = bave.r.data().data();
  const double* bg = bave.g.data().data();
  const double* bb = bave.b.data().data();
  ws.difference.resize_discard(w, h);
  double* diff = ws.difference.data().data();
  int bands = exec != nullptr ? exec->bands() : 1;
  if (bands <= 1 || h < 2) bands = 1;
  auto& bs = ws.band_scratch;
  bs.band_max.assign(static_cast<std::size_t>(bands), 0.0);
  double* band_max = bs.band_max.data();

  // Each band writes its own rows of `diff` and reduces max(D) into its own
  // band_max slot; D is a sum/difference of exact table values, so neither
  // banding nor the lane-wise max reduction can change a single bit (max is
  // order-independent: the domain has no NaNs and no negative zeros).
  run_banded(exec, h, [&](int band, int row_begin, int row_end) {
    using V = simd::VecF64<simd::Active>;
    const V varea = V::broadcast(area);
    std::size_t i = static_cast<std::size_t>(row_begin) * static_cast<std::size_t>(w);
    double local_max = 0.0;
    const auto clamped_pixel = [&](int x, int y) {
      const double mr = ws.integral_r.window_mean(x, y, params_.window);
      const double mg = ws.integral_g.window_mean(x, y, params_.window);
      const double mb = ws.integral_b.window_mean(x, y, params_.window);
      const double d = std::abs(mr - br[i]) + std::abs(mg - bg[i]) + std::abs(mb - bb[i]);
      diff[i] = d;
      local_max = std::max(local_max, d);
      ++i;
    };
    V vmax = V::broadcast(0.0);
    for (int y = row_begin; y < row_end; ++y) {
      if (y < half || y + half >= h) {
        for (int x = 0; x < w; ++x) clamped_pixel(x, y);
        continue;
      }
      int x = 0;
      for (; x < half && x < w; ++x) clamped_pixel(x, y);
      const std::size_t r0 = static_cast<std::size_t>(y - half) * stride;
      const std::size_t r1 = static_cast<std::size_t>(y + half + 1) * stride;
      const int x_end = w - half;
      for (; x + V::kLanes <= x_end; x += V::kLanes, i += static_cast<std::size_t>(V::kLanes)) {
        const std::size_t c0 = static_cast<std::size_t>(x - half);
        const std::size_t c1 = static_cast<std::size_t>(x + half + 1);
        const V dr =
            (rowk::window_sum_vec<simd::Active>(tr, r0, r1, c0, c1) / varea - V::load(br + i))
                .abs();
        const V dg =
            (rowk::window_sum_vec<simd::Active>(tg, r0, r1, c0, c1) / varea - V::load(bg + i))
                .abs();
        const V db =
            (rowk::window_sum_vec<simd::Active>(tb, r0, r1, c0, c1) / varea - V::load(bb + i))
                .abs();
        const V d = dr + dg + db;
        d.store(diff + i);
        vmax = V::max(vmax, d);
      }
      for (; x < x_end; ++x, ++i) {
        const double mr = interior_window_mean(tr, stride, x, y, half, area);
        const double mg = interior_window_mean(tg, stride, x, y, half, area);
        const double mb = interior_window_mean(tb, stride, x, y, half, area);
        const double d = std::abs(mr - br[i]) + std::abs(mg - bg[i]) + std::abs(mb - bb[i]);
        diff[i] = d;
        local_max = std::max(local_max, d);
      }
      for (; x < w; ++x) clamped_pixel(x, y);
    }
    band_max[band] = std::max(local_max, vmax.reduce_max());
  });
  double max_d = 0.0;
  for (int b = 0; b < bands; ++b) max_d = std::max(max_d, band_max[b]);

  // Steps vi–viii fused without materialising the rounded 8-bit image:
  // lround(clamped) > th  ⇔  clamped >= th + 0.5 (lround rounds half away
  // from zero and clamped is non-negative), and th + 0.5 is exact in double,
  // so the mask is bit-identical to extract()'s threshold of `normalized`.
  // std::clamp(r, 0, 255) = min(max(r, 0), 255) lane-wise: r is never NaN
  // and never −0, so the vector compare/select sequence matches exactly.
  const bool scene_changed = max_d > 0.0 && max_d >= params_.min_max_difference;
  const double shift = max_d - 255.0;
  const double mask_threshold = static_cast<double>(params_.th_object) + 0.5;
  ws.raw_mask.resize_discard(w, h);
  std::uint8_t* mask = ws.raw_mask.data().data();
  if (scene_changed) {
    run_banded(exec, h, [&](int /*band*/, int row_begin, int row_end) {
      using V = simd::VecF64<simd::Active>;
      const V vshift = V::broadcast(shift);
      const V vzero = V::broadcast(0.0);
      const V v255 = V::broadcast(255.0);
      const V vth = V::broadcast(mask_threshold);
      std::size_t k = static_cast<std::size_t>(row_begin) * static_cast<std::size_t>(w);
      const std::size_t k_end = static_cast<std::size_t>(row_end) * static_cast<std::size_t>(w);
      for (; k + static_cast<std::size_t>(V::kLanes) <= k_end;
           k += static_cast<std::size_t>(V::kLanes)) {
        const V clamped = V::min(V::max(V::load(diff + k) - vshift, vzero), v255);
        V::store_ge01(clamped, vth, mask + k);
      }
      for (; k < k_end; ++k) {
        const double clamped = std::clamp(diff[k] - shift, 0.0, 255.0);
        mask[k] = clamped >= mask_threshold ? 1 : 0;
      }
    });
  } else {
    std::fill(mask, mask + ws.raw_mask.size(), 0);
  }

  median_filter_binary_into(ws.raw_mask, params_.median_window, ws.mask_integral, ws.smoothed, exec,
                            &ws.band_scratch);

  const BinaryImage* cleaned = &ws.smoothed;
  if (params_.keep_largest_only) {
    largest_component_into(*cleaned, true, ws.labeling, ws.pixel_stack, ws.largest);
    cleaned = &ws.largest;
  }
  if (params_.fill_holes) {
    fill_holes_into(*cleaned, ws.reached, ws.flood_stack, silhouette_out);
  } else {
    silhouette_out = *cleaned;
  }
  return max_d;
}

BinaryImage ObjectExtractor::silhouette(const RgbImage& frame) const {
  return extract(frame).silhouette;
}

}  // namespace slj::seg
