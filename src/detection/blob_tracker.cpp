#include "detection/blob_tracker.hpp"

#include <algorithm>
#include <limits>

namespace slj::detect {

BlobTracker::BlobTracker(TrackerConfig config) : config_(config) {}

bool BlobTracker::is_person_like(const ComponentStats& blob) const {
  const PersonModel& m = config_.person;
  if (blob.area < m.min_area || blob.area > m.max_area) return false;
  const double width = blob.max.x - blob.min.x + 1;
  const double height = blob.max.y - blob.min.y + 1;
  if (height < m.min_height) return false;
  if (width <= 0.0 || height <= 0.0) return false;
  const double aspect = std::max(height / width, width / height);
  return aspect <= m.max_aspect;
}

void BlobTracker::reset() {
  state_ = TrackState::kNone;
  position_ = velocity_ = {};
  hits_ = 0;
  misses_ = 0;
}

TrackResult BlobTracker::update(const BinaryImage& foreground) {
  const Labeling labeling = label_components(foreground);
  return associate(foreground, labeling);
}

TrackResult BlobTracker::update(const BinaryImage& foreground, Labeling& labeling,
                                std::vector<PointI>& stack) {
  label_components_into(foreground, /*eight_connected=*/true, labeling, stack);
  return associate(foreground, labeling);
}

TrackResult BlobTracker::associate(const BinaryImage& foreground, const Labeling& labeling) {
  TrackResult result;

  // Candidate blobs: person-plausible components.
  std::vector<const ComponentStats*> candidates;
  for (const ComponentStats& c : labeling.components) {
    if (is_person_like(c)) candidates.push_back(&c);
  }

  const PointF predicted = position_ + velocity_;

  const ComponentStats* chosen = nullptr;
  if (state_ == TrackState::kNone) {
    if (config_.start_x_hint >= 0.0) {
      // Acquire at the take-off line: nearest person-plausible blob.
      double best = std::numeric_limits<double>::max();
      for (const ComponentStats* c : candidates) {
        const double d = std::abs(c->centroid.x - config_.start_x_hint);
        if (d < best) {
          best = d;
          chosen = c;
        }
      }
    } else {
      // No hint: start with the biggest person-plausible blob.
      for (const ComponentStats* c : candidates) {
        if (chosen == nullptr || c->area > chosen->area) chosen = c;
      }
    }
  } else {
    // Associate: nearest candidate within the gate of the prediction.
    double best = std::numeric_limits<double>::max();
    for (const ComponentStats* c : candidates) {
      const double d = distance(c->centroid, predicted);
      if (d <= config_.gate_radius && d < best) {
        best = d;
        chosen = c;
      }
    }
  }

  if (chosen != nullptr) {
    const PointF observed = chosen->centroid;
    if (state_ == TrackState::kNone) {
      position_ = observed;
      velocity_ = {};
      hits_ = 1;
      state_ = TrackState::kTentative;
    } else {
      const PointF instant = observed - position_;
      velocity_ = velocity_ * (1.0 - config_.velocity_blend) + instant * config_.velocity_blend;
      position_ = observed;
      ++hits_;
      if (state_ == TrackState::kTentative && hits_ > config_.confirm_after) {
        state_ = TrackState::kConfirmed;
      } else if (state_ == TrackState::kCoasting) {
        state_ = TrackState::kConfirmed;
      }
    }
    misses_ = 0;
    result.measured = true;
    result.blob = *chosen;
    // Extract only the tracked blob's pixels.
    result.mask = BinaryImage(foreground.width(), foreground.height(), 0);
    for (int y = chosen->min.y; y <= chosen->max.y; ++y) {
      for (int x = chosen->min.x; x <= chosen->max.x; ++x) {
        if (labeling.labels.at(x, y) == chosen->label) result.mask.at(x, y) = 1;
      }
    }
  } else {
    // No association this frame.
    if (state_ == TrackState::kConfirmed || state_ == TrackState::kCoasting) {
      ++misses_;
      position_ = predicted;  // coast on the constant-velocity model
      state_ = misses_ > config_.max_misses ? TrackState::kNone : TrackState::kCoasting;
      if (state_ == TrackState::kNone) reset();
    } else {
      reset();
    }
    result.mask = BinaryImage(foreground.width(), foreground.height(), 0);
  }

  result.state = state_;
  result.person_present =
      state_ == TrackState::kConfirmed || state_ == TrackState::kCoasting;
  result.centroid = position_;
  result.velocity = velocity_;
  return result;
}

}  // namespace slj::detect
