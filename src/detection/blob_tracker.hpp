// Human detection and tracking — the first of the paper's three system
// components ("(1) human detection, (2) pose estimation, (3) scoring",
// Sec. 1). The paper's object-extraction reference [5] ("Tracking Moving
// Targets") is a blob tracker; this module implements that role: follow the
// jumper's blob across frames with a constant-velocity prediction, gate out
// distractor blobs (a second person at the edge, lighting flicker), and
// report when a valid jumper is present at all.
//
// The tracker consumes the per-frame foreground mask (any extractor) and
// outputs the jumper's blob mask, so the pose pipeline can run on the
// tracked person instead of blindly taking the largest component.
#pragma once

#include <optional>
#include <vector>

#include "imaging/connected.hpp"
#include "imaging/image.hpp"

namespace slj::detect {

/// Person-plausibility limits for a candidate blob, in pixels.
struct PersonModel {
  std::size_t min_area = 250;
  std::size_t max_area = 1 << 20;
  double min_height = 25.0;
  double max_aspect = 7.0;   ///< height/width and width/height both below this
};

struct TrackerConfig {
  PersonModel person;
  /// Maximum distance between predicted and observed centroid for a blob to
  /// be associated with the track.
  double gate_radius = 45.0;
  /// Frames a tentative track must persist before it is confirmed.
  int confirm_after = 2;
  /// Missed frames before a confirmed track is dropped.
  int max_misses = 5;
  /// Blend factor for the velocity estimate (0 = frozen, 1 = instantaneous).
  double velocity_blend = 0.5;
  /// Take-off-line hint: a standing-long-jump station has a fixed start
  /// mark, so acquisition prefers the person-like blob nearest this image-x
  /// (negative = no hint; fall back to the largest blob).
  double start_x_hint = -1.0;
};

enum class TrackState { kNone, kTentative, kConfirmed, kCoasting };

/// Per-frame tracker output.
struct TrackResult {
  TrackState state = TrackState::kNone;
  bool person_present = false;   ///< confirmed (or coasting) this frame
  PointF centroid;               ///< measured, or predicted while coasting
  PointF velocity;               ///< px/frame
  ComponentStats blob;           ///< the associated blob (valid when measured)
  bool measured = false;         ///< a blob was associated this frame
  BinaryImage mask;              ///< the tracked blob only (empty if none)
};

class BlobTracker {
 public:
  explicit BlobTracker(TrackerConfig config = {});

  const TrackerConfig& config() const { return config_; }

  /// Feeds one frame's foreground mask; returns the tracked person blob.
  TrackResult update(const BinaryImage& foreground);

  /// Workspace-aware variant: identical results, but the per-frame
  /// connected-component pass runs through the caller-provided
  /// `labeling`/`stack` scratch (label_components_into) instead of
  /// allocating a fresh Labeling. The engines pass their FrameWorkspace's
  /// labeling/pixel_stack so tracked sessions stay allocation-lean.
  TrackResult update(const BinaryImage& foreground, Labeling& labeling,
                     std::vector<PointI>& stack);

  /// Drops the current track.
  void reset();

  TrackState state() const { return state_; }

  /// True when a blob passes the person-plausibility checks.
  bool is_person_like(const ComponentStats& blob) const;

 private:
  /// Association + track dynamics on an already-labelled mask (shared by
  /// both update overloads so they cannot diverge).
  TrackResult associate(const BinaryImage& foreground, const Labeling& labeling);

  TrackerConfig config_;
  TrackState state_ = TrackState::kNone;
  PointF position_{};
  PointF velocity_{};
  int hits_ = 0;
  int misses_ = 0;
};

}  // namespace slj::detect
