// TraceRecorder: the IngestTap that turns a live ingest run into a
// .sljtrace file. Install it on an IngestService *before* traffic starts
// (service.set_tap(&recorder)); every open / push / tick / close event is
// appended to the trace as it happens, and finish() seals the file with the
// final metrics summary — the golden drop-accounting record the replayer
// cross-checks against.
//
// Timestamps are recorded relative to the first event, so a trace replays
// under fully virtualized time: wall-clock never leaks into the file beyond
// event spacing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/annotations.hpp"
#include "ingest/ingest_tap.hpp"
#include "replay/trace_format.hpp"

namespace slj::replay {

class TraceRecorder : public ingest::IngestTap {
 public:
  /// Opens `path` for streaming writes (throws std::runtime_error on I/O
  /// failure, like TraceWriter).
  explicit TraceRecorder(const std::string& path);

  // IngestTap — called by IngestService; serialized here because on_push
  // arrives from arbitrary producer threads.
  void on_open(ingest::Clock::time_point now, int session,
               const ingest::IngestSessionConfig& config, const RgbImage& background)
      SLJ_EXCLUDES(mutex_) override;
  void on_push(ingest::Clock::time_point now, int session, const RgbImage& frame,
               ingest::PushOutcome outcome, std::uint64_t sequence)
      SLJ_EXCLUDES(mutex_) override;
  void on_tick(ingest::Clock::time_point now, const ingest::DrainBatch& batch,
               const std::vector<core::StreamUpdate>& updates, std::size_t count)
      SLJ_EXCLUDES(mutex_) override;
  void on_close(ingest::Clock::time_point now, int session, const core::JumpReport& report,
                std::uint64_t discarded, bool evicted)
      SLJ_EXCLUDES(mutex_) override;

  /// Appends the summary record from a quiescent plane's metrics snapshot
  /// and seals the file. Call after flush()/close_session of every session,
  /// with the tap uninstalled or traffic stopped. Idempotent is not
  /// attempted: call exactly once.
  void finish(const ingest::IngestMetricsSnapshot& metrics) SLJ_EXCLUDES(mutex_);

  /// Events appended so far (excluding the summary).
  std::uint64_t events() const SLJ_EXCLUDES(mutex_);

 private:
  std::int64_t relative_ns(ingest::Clock::time_point now) SLJ_REQUIRES(mutex_);

  mutable slj::Mutex mutex_;
  TraceWriter writer_ SLJ_GUARDED_BY(mutex_);
  std::optional<ingest::Clock::time_point> t0_ SLJ_GUARDED_BY(mutex_);
  std::uint64_t events_ SLJ_GUARDED_BY(mutex_) = 0;
};

}  // namespace slj::replay
