#include "replay/trace_replayer.hpp"

#include <bit>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/stream_engine.hpp"

namespace slj::replay {

namespace {

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("replay: corrupt trace: " + what);
}

/// What the recorded push outcomes say entered one session's queue. Filled
/// in pass 1, because the recorder's push-vs-tick race means an admitted
/// push may be logged after the tick — or even the close — that follows it.
struct PushTotals {
  std::uint64_t admitted = 0;  ///< pushes that entered the queue
  std::uint64_t replaced = 0;  ///< admitted frames later shed by drop-oldest
};

/// Replay-side per-session state (pass 2, record order).
struct SessionBook {
  int live_id = -1;
  bool open = false;
  std::uint64_t delivered = 0;  ///< tick entries replayed for this session
};

bool posterior_matches(double recorded, double replayed, double tolerance) {
  if (tolerance <= 0.0) {
    // Bit-level: NaN payloads, signed zero and every ulp must survive.
    return std::bit_cast<std::uint64_t>(recorded) == std::bit_cast<std::uint64_t>(replayed);
  }
  if (std::isnan(recorded) || std::isnan(replayed)) {
    return std::isnan(recorded) == std::isnan(replayed);
  }
  return std::fabs(recorded - replayed) <= tolerance;
}

bool findings_match(const core::FaultFinding& a, const core::FaultFinding& b) {
  return a.rule == b.rule && a.passed == b.passed && a.evidence_frames == b.evidence_frames;
}

bool reports_match(const core::JumpReport& a, const core::JumpReport& b) {
  if (a.findings.size() != b.findings.size()) return false;
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    if (!findings_match(a.findings[i], b.findings[i])) return false;
  }
  return true;
}

/// "" when the updates agree; otherwise which field diverged first.
std::string update_divergence(const core::StreamUpdate& recorded,
                              const core::StreamUpdate& replayed, double tolerance) {
  if (recorded.frame_index != replayed.frame_index) return "frame_index";
  if (recorded.airborne != replayed.airborne) return "airborne";
  if (recorded.result.pose != replayed.result.pose) return "result.pose";
  if (recorded.result.best_pose != replayed.result.best_pose) return "result.best_pose";
  if (recorded.result.stage != replayed.result.stage) return "result.stage";
  if (recorded.result.candidate_index != replayed.result.candidate_index) {
    return "result.candidate_index";
  }
  if (!posterior_matches(recorded.result.posterior, replayed.result.posterior, tolerance)) {
    return "result.posterior";
  }
  if (recorded.resolved.size() != replayed.resolved.size()) return "resolved.size";
  for (std::size_t i = 0; i < recorded.resolved.size(); ++i) {
    if (recorded.resolved[i].frame != replayed.resolved[i].frame ||
        !findings_match(recorded.resolved[i].finding, replayed.resolved[i].finding)) {
      return "resolved[" + std::to_string(i) + "]";
    }
  }
  return "";
}

}  // namespace

TraceReplayer::TraceReplayer(const pose::PoseDbnClassifier& classifier,
                             core::PipelineParams params, ReplayOptions options)
    : classifier_(&classifier), params_(std::move(params)), options_(options) {}

ReplayResult TraceReplayer::replay_file(const std::string& path) const {
  return replay(load_trace(path));
}

ReplayResult TraceReplayer::replay(const Trace& trace) const {
  ReplayResult result;
  const auto note = [&result](std::uint64_t& counter, std::string text) {
    ++counter;
    if (result.mismatches.size() < ReplayResult::kMaxMismatchDetails) {
      result.mismatches.push_back(std::move(text));
    }
  };

  // Pass 1: index every admitted frame by (session, sequence) and total up
  // the recorded push outcomes. Indexing first makes the replay immune to
  // the recorder's benign push-vs-tick ordering race: a producer thread can
  // log its push *after* the scheduler logged the tick that consumed the
  // frame, so a tick may legally reference a frame that appears later in
  // the file.
  std::map<std::pair<int, std::uint64_t>, const RgbImage*> frames;
  std::map<int, PushTotals> push_totals;
  SummaryRecord totals;  // recomputed; compared against the recorded summary
  for (const TraceRecord& record : trace.records) {
    if (const auto* push = std::get_if<PushRecord>(&record)) {
      switch (push->outcome) {
        case ingest::PushOutcome::kReplacedOldest:
          ++totals.dropped_oldest;
          ++push_totals[push->session].replaced;
          [[fallthrough]];
        case ingest::PushOutcome::kAccepted: {
          ++totals.pushed;
          ++push_totals[push->session].admitted;
          if (push->frame.empty()) corrupt("admitted push carries no frame");
          const auto key = std::make_pair(push->session, push->sequence);
          if (!frames.emplace(key, &push->frame).second) {
            corrupt("duplicate frame (session " + std::to_string(push->session) +
                    ", sequence " + std::to_string(push->sequence) + ")");
          }
          break;
        }
        case ingest::PushOutcome::kRejected: ++totals.rejected; break;
        case ingest::PushOutcome::kRateLimited: ++totals.rate_limited; break;
        case ingest::PushOutcome::kClosed: ++totals.closed_pushes; break;
      }
    }
  }

  // Pass 2: re-drive the deterministic analysis plane in record order.
  core::StreamManagerConfig manager_config;
  manager_config.workers = options_.workers;
  core::StreamManager manager(*classifier_, params_, manager_config);
  std::vector<SessionBook> books;  // index = recorded session id
  std::vector<core::StreamManager::Feed> feeds;
  std::vector<core::StreamUpdate> updates;

  const auto book_of = [&books](int session) -> SessionBook& {
    if (session < 0 || static_cast<std::size_t>(session) >= books.size() ||
        !books[static_cast<std::size_t>(session)].open) {
      corrupt("record references session " + std::to_string(session) +
              " which is not open at that point");
    }
    return books[static_cast<std::size_t>(session)];
  };

  for (const TraceRecord& record : trace.records) {
    std::visit(
        [&](const auto& r) {
          using T = std::decay_t<decltype(r)>;
          if (r.t_ns > result.recorded_span_ns) result.recorded_span_ns = r.t_ns;

          if constexpr (std::is_same_v<T, OpenRecord>) {
            if (static_cast<std::size_t>(r.session) >= books.size()) {
              books.resize(static_cast<std::size_t>(r.session) + 1);
            }
            SessionBook& book = books[static_cast<std::size_t>(r.session)];
            if (book.open) corrupt("session " + std::to_string(r.session) + " opened twice");
            book = SessionBook{};
            book.live_id = manager.open_session(r.background, to_stream_config(r.config));
            book.open = true;
            ++result.sessions_opened;

          } else if constexpr (std::is_same_v<T, PushRecord>) {
            // Fully accounted in pass 1 — deliberately position-independent,
            // since a producer thread may log its push after the tick (or
            // even the close) that consumed the frame.

          } else if constexpr (std::is_same_v<T, TickRecord>) {
            feeds.clear();
            for (const TickEntry& entry : r.entries) {
              SessionBook& book = book_of(entry.session);
              const auto it = frames.find(std::make_pair(entry.session, entry.sequence));
              if (it == frames.end()) {
                corrupt("tick references unrecorded frame (session " +
                        std::to_string(entry.session) + ", sequence " +
                        std::to_string(entry.sequence) + ")");
              }
              feeds.push_back({book.live_id, it->second});
              ++book.delivered;
            }
            if (!feeds.empty()) {
              manager.tick_into(feeds, updates);
              for (std::size_t i = 0; i < r.entries.size(); ++i) {
                const std::string field = update_divergence(r.entries[i].update, updates[i],
                                                            options_.posterior_tolerance);
                if (!field.empty()) {
                  note(result.update_mismatches,
                       "tick " + std::to_string(result.ticks) + " session " +
                           std::to_string(r.entries[i].session) + " frame " +
                           std::to_string(r.entries[i].update.frame_index) +
                           ": " + field + " diverged");
                } else {
                  ++result.frames_replayed;
                }
              }
            }
            ++result.ticks;
            ++totals.ticks;

          } else if constexpr (std::is_same_v<T, CloseRecord>) {
            SessionBook& book = book_of(r.session);
            const core::JumpReport replayed = manager.close_session(book.live_id);
            book.open = false;
            ++result.sessions_closed;
            if (r.evicted) ++totals.evicted_sessions;
            if (!reports_match(r.report, replayed)) {
              note(result.report_mismatches,
                   "session " + std::to_string(r.session) + ": final JumpReport diverged");
            }
            // Re-balance this session's books: whatever was admitted but
            // neither shed by drop-oldest nor delivered must equal the
            // recorded discard count.
            const PushTotals& pushes = push_totals[r.session];
            const std::uint64_t expected = pushes.admitted - pushes.replaced - book.delivered;
            if (expected != r.discarded) {
              note(result.accounting_mismatches,
                   "session " + std::to_string(r.session) + ": recorded " +
                       std::to_string(r.discarded) + " discarded frames, push/tick records" +
                       " imply " + std::to_string(expected));
            }
            totals.discarded += r.discarded;

          } else if constexpr (std::is_same_v<T, SummaryRecord>) {
            result.has_summary = true;
            totals.delivered = 0;
            for (const SessionBook& book : books) totals.delivered += book.delivered;
            const auto check = [&](const char* name, std::uint64_t recorded,
                                   std::uint64_t recomputed) {
              if (recorded != recomputed) {
                note(result.accounting_mismatches,
                     std::string("summary ") + name + ": recorded " +
                         std::to_string(recorded) + ", recomputed " +
                         std::to_string(recomputed));
              }
            };
            check("pushed", r.pushed, totals.pushed);
            check("delivered", r.delivered, totals.delivered);
            check("dropped_oldest", r.dropped_oldest, totals.dropped_oldest);
            check("rejected", r.rejected, totals.rejected);
            check("rate_limited", r.rate_limited, totals.rate_limited);
            check("closed_pushes", r.closed_pushes, totals.closed_pushes);
            check("discarded", r.discarded, totals.discarded);
            check("ticks", r.ticks, totals.ticks);
            check("evicted_sessions", r.evicted_sessions, totals.evicted_sessions);
            // The plane's conservation law, re-proved on every replay.
            check("pushed == delivered + dropped_oldest + discarded", r.pushed,
                  totals.delivered + totals.dropped_oldest + totals.discarded);
          }
        },
        record);
  }

  return result;
}

}  // namespace slj::replay
