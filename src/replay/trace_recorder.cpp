#include "replay/trace_recorder.hpp"

#include <chrono>

namespace slj::replay {

TraceRecorder::TraceRecorder(const std::string& path) : writer_(path) {}

std::int64_t TraceRecorder::relative_ns(ingest::Clock::time_point now) {
  // Anchored on the first event so the trace carries only event spacing,
  // never an absolute epoch. Callers hold mutex_.
  if (!t0_) t0_ = now;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now - *t0_).count();
}

void TraceRecorder::on_open(ingest::Clock::time_point now, int session,
                            const ingest::IngestSessionConfig& config,
                            const RgbImage& background) {
  slj::LockGuard lock(mutex_);
  OpenRecord record;
  record.t_ns = relative_ns(now);
  record.session = session;
  record.config = to_trace_config(config);
  record.background = background;
  writer_.append(record);
  ++events_;
}

void TraceRecorder::on_push(ingest::Clock::time_point now, int session, const RgbImage& frame,
                            ingest::PushOutcome outcome, std::uint64_t sequence) {
  slj::LockGuard lock(mutex_);
  PushRecord record;
  record.t_ns = relative_ns(now);
  record.session = session;
  record.outcome = outcome;
  record.sequence = sequence;
  // A refused frame never influenced the run — store only the verdict and
  // keep the (potentially large) pixels out of the trace.
  if (ingest::push_accepted(outcome)) record.frame = frame;
  writer_.append(record);
  ++events_;
}

void TraceRecorder::on_tick(ingest::Clock::time_point now, const ingest::DrainBatch& batch,
                            const std::vector<core::StreamUpdate>& updates, std::size_t count) {
  slj::LockGuard lock(mutex_);
  TickRecord record;
  record.t_ns = relative_ns(now);
  record.entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TickEntry entry;
    entry.session = batch.feeds[i].session;
    entry.sequence = batch.pending(i).sequence;
    entry.update = updates[i];
    record.entries.push_back(std::move(entry));
  }
  writer_.append(record);
  ++events_;
}

void TraceRecorder::on_close(ingest::Clock::time_point now, int session,
                             const core::JumpReport& report, std::uint64_t discarded,
                             bool evicted) {
  slj::LockGuard lock(mutex_);
  CloseRecord record;
  record.t_ns = relative_ns(now);
  record.session = session;
  record.evicted = evicted;
  record.discarded = discarded;
  record.report = report;
  writer_.append(record);
  ++events_;
}

void TraceRecorder::finish(const ingest::IngestMetricsSnapshot& metrics) {
  slj::LockGuard lock(mutex_);
  SummaryRecord record;  // t_ns stays 0: the summary carries totals, not an event time
  record.pushed = metrics.pushed;
  record.delivered = metrics.delivered;
  record.dropped_oldest = metrics.dropped_oldest;
  record.rejected = metrics.rejected;
  record.rate_limited = metrics.rate_limited;
  record.closed_pushes = metrics.closed_pushes;
  record.discarded = metrics.discarded;
  record.ticks = metrics.ticks;
  record.evicted_sessions = metrics.evicted_sessions;
  writer_.append(record);
  writer_.finish();
}

std::uint64_t TraceRecorder::events() const {
  slj::LockGuard lock(mutex_);
  return events_;
}

}  // namespace slj::replay
