#include "replay/trace_format.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace slj::replay {

namespace {

// ---- primitive encoding ----------------------------------------------------
// Integers are emitted byte-by-byte little-endian, so traces are portable
// across hosts and nothing ever aliases a misaligned pointer.

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xff));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::string& out, std::int32_t v) { put_u32(out, static_cast<std::uint32_t>(v)); }
void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

/// Doubles travel as their IEEE-754 bit pattern: the whole point of the
/// trace is bit-identical replay, so posteriors must survive the round trip
/// exactly (including -0.0 and every last ulp).
void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("trace: ") + what);
}

/// Bounds-checked cursor over one record payload. Every read validates the
/// remaining length first, so a truncated or bit-flipped payload surfaces
/// as std::runtime_error instead of an out-of-bounds read.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() {
    std::uint16_t v = u8();
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(u8()) << 8));
    return v;
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  void done() {
    if (pos_ != size_) fail("record payload has trailing bytes");
  }

 private:
  void need(std::size_t n) {
    if (size_ - pos_ < n) fail("truncated record payload");
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- enum validation -------------------------------------------------------
// Every enum read back from disk is range-checked before the cast; a flipped
// bit in a policy or pose byte must become a clean load error, not a value
// that switches over UB later.

ingest::BackpressurePolicy policy_from_u8(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(ingest::BackpressurePolicy::kRejectNewest)) {
    fail("invalid backpressure policy");
  }
  return static_cast<ingest::BackpressurePolicy>(v);
}

core::StreamDecoder decoder_from_u8(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(core::StreamDecoder::kFiltering)) fail("invalid decoder");
  return static_cast<core::StreamDecoder>(v);
}

ingest::PushOutcome outcome_from_u8(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(ingest::PushOutcome::kClosed)) fail("invalid push outcome");
  return static_cast<ingest::PushOutcome>(v);
}

/// kUnknown (the "nothing cleared the threshold" sentinel) is a legitimate
/// recorded value, so the valid range is one wider than the catalogue.
pose::PoseId pose_from_u8(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(pose::PoseId::kUnknown)) fail("invalid pose id");
  return static_cast<pose::PoseId>(v);
}

pose::Stage stage_from_u8(std::uint8_t v) {
  if (v >= pose::kStageCount) fail("invalid stage");
  return static_cast<pose::Stage>(v);
}

core::FaultRule rule_from_u8(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(core::FaultRule::kCompleteSequence)) {
    fail("invalid fault rule");
  }
  return static_cast<core::FaultRule>(v);
}

// ---- images ----------------------------------------------------------------
// mode u8 (0 = raw RGB, 1 = RLE) | u32 width | u32 height | pixel data.
// RLE is (u16 run_length, r, g, b) repeated; runs must tile the image
// exactly. Synthetic studio frames are flat-colour regions, so RLE wins by
// ~50x and keeps the checked-in corpus small; the encoder falls back to raw
// whenever RLE would be larger (noisy real footage).

constexpr std::uint8_t kImageRaw = 0;
constexpr std::uint8_t kImageRle = 1;

void put_image(std::string& out, const RgbImage& image) {
  const std::size_t pixels = image.size();
  std::string rle;
  rle.reserve(64);
  std::size_t i = 0;
  while (i < pixels) {
    const Rgb value = image.data()[i];
    std::size_t run = 1;
    while (i + run < pixels && run < 0xffff && image.data()[i + run] == value) ++run;
    put_u16(rle, static_cast<std::uint16_t>(run));
    put_u8(rle, value.r);
    put_u8(rle, value.g);
    put_u8(rle, value.b);
    i += run;
  }
  const bool use_rle = rle.size() < pixels * 3;
  put_u8(out, use_rle ? kImageRle : kImageRaw);
  put_u32(out, static_cast<std::uint32_t>(image.width()));
  put_u32(out, static_cast<std::uint32_t>(image.height()));
  if (use_rle) {
    out += rle;
  } else {
    for (const Rgb& px : image.data()) {
      put_u8(out, px.r);
      put_u8(out, px.g);
      put_u8(out, px.b);
    }
  }
}

RgbImage get_image(ByteReader& in) {
  const std::uint8_t mode = in.u8();
  if (mode != kImageRaw && mode != kImageRle) fail("invalid image mode");
  const std::uint32_t width = in.u32();
  const std::uint32_t height = in.u32();
  if (width > kMaxTraceImageDimension || height > kMaxTraceImageDimension) {
    fail("image dimensions out of range");
  }
  RgbImage image(static_cast<int>(width), static_cast<int>(height));
  const std::size_t pixels = image.size();
  if (mode == kImageRaw) {
    for (std::size_t i = 0; i < pixels; ++i) {
      Rgb& px = image.data()[i];
      px.r = in.u8();
      px.g = in.u8();
      px.b = in.u8();
    }
    return image;
  }
  std::size_t filled = 0;
  while (filled < pixels) {
    const std::uint16_t run = in.u16();
    if (run == 0 || run > pixels - filled) fail("invalid image run length");
    Rgb value;
    value.r = in.u8();
    value.g = in.u8();
    value.b = in.u8();
    std::fill_n(image.data().begin() + static_cast<std::ptrdiff_t>(filled), run, value);
    filled += run;
  }
  return image;
}

// ---- domain payloads -------------------------------------------------------

void put_result(std::string& out, const pose::FrameResult& r) {
  put_u8(out, static_cast<std::uint8_t>(r.pose));
  put_u8(out, static_cast<std::uint8_t>(r.best_pose));
  put_f64(out, r.posterior);
  put_u8(out, static_cast<std::uint8_t>(r.stage));
  put_i32(out, r.candidate_index);
}

pose::FrameResult get_result(ByteReader& in) {
  pose::FrameResult r;
  r.pose = pose_from_u8(in.u8());
  r.best_pose = pose_from_u8(in.u8());
  r.posterior = in.f64();
  r.stage = stage_from_u8(in.u8());
  r.candidate_index = in.i32();
  return r;
}

void put_finding(std::string& out, const core::FaultFinding& f) {
  put_u8(out, static_cast<std::uint8_t>(f.rule));
  put_u8(out, f.passed ? 1 : 0);
  put_u16(out, static_cast<std::uint16_t>(f.evidence_frames.size()));
  for (const int frame : f.evidence_frames) put_i32(out, frame);
}

core::FaultFinding get_finding(ByteReader& in) {
  core::FaultFinding f;
  f.rule = rule_from_u8(in.u8());
  f.passed = in.u8() != 0;
  const std::uint16_t evidence = in.u16();
  if (evidence > core::kMaxEvidenceFramesPerRule) fail("finding evidence list too long");
  f.evidence_frames.reserve(evidence);
  for (std::uint16_t i = 0; i < evidence; ++i) f.evidence_frames.push_back(in.i32());
  return f;
}

void put_update(std::string& out, const core::StreamUpdate& u) {
  put_u64(out, u.frame_index);
  put_u8(out, u.airborne ? 1 : 0);
  put_result(out, u.result);
  put_u16(out, static_cast<std::uint16_t>(u.resolved.size()));
  for (const core::ResolvedFault& rf : u.resolved) {
    put_finding(out, rf.finding);
    put_i32(out, rf.frame);
  }
}

/// A frame can resolve every rule at most twice (early FAIL + correcting
/// PASS), so anything past 2 * rule-count findings is corruption.
constexpr std::uint16_t kMaxResolvedPerFrame = 16;

core::StreamUpdate get_update(ByteReader& in) {
  core::StreamUpdate u;
  u.frame_index = in.u64();
  u.airborne = in.u8() != 0;
  u.result = get_result(in);
  const std::uint16_t resolved = in.u16();
  if (resolved > kMaxResolvedPerFrame) fail("resolved-fault list too long");
  u.resolved.reserve(resolved);
  for (std::uint16_t i = 0; i < resolved; ++i) {
    core::ResolvedFault rf;
    rf.finding = get_finding(in);
    rf.frame = in.i32();
    u.resolved.push_back(std::move(rf));
  }
  return u;
}

void put_report(std::string& out, const core::JumpReport& report) {
  put_u16(out, static_cast<std::uint16_t>(report.findings.size()));
  for (const core::FaultFinding& f : report.findings) put_finding(out, f);
}

constexpr std::uint16_t kMaxReportFindings = 16;

core::JumpReport get_report(ByteReader& in) {
  core::JumpReport report;
  const std::uint16_t findings = in.u16();
  if (findings > kMaxReportFindings) fail("report finding list too long");
  report.findings.reserve(findings);
  for (std::uint16_t i = 0; i < findings; ++i) report.findings.push_back(get_finding(in));
  return report;
}

void put_session_config(std::string& out, const TraceSessionConfig& c) {
  put_u64(out, c.queue_capacity);
  put_u8(out, static_cast<std::uint8_t>(c.policy));
  put_f64(out, c.rate_tokens_per_second);
  put_f64(out, c.rate_burst);
  put_i64(out, c.idle_timeout_ns);
  put_u8(out, static_cast<std::uint8_t>(c.decoder));
  put_u8(out, c.use_tracker ? 1 : 0);
  put_i32(out, c.lift_threshold_px);
  put_i32(out, c.ground_calibration_frames);
}

TraceSessionConfig get_session_config(ByteReader& in) {
  TraceSessionConfig c;
  c.queue_capacity = in.u64();
  c.policy = policy_from_u8(in.u8());
  c.rate_tokens_per_second = in.f64();
  c.rate_burst = in.f64();
  c.idle_timeout_ns = in.i64();
  c.decoder = decoder_from_u8(in.u8());
  c.use_tracker = in.u8() != 0;
  c.lift_threshold_px = in.i32();
  c.ground_calibration_frames = in.i32();
  return c;
}

/// Session ids are dense small indices; a huge one is a corrupt record, and
/// catching it here keeps downstream session tables from resizing to it.
int get_session_id(ByteReader& in) {
  const std::int32_t id = in.i32();
  if (id < 0 || id > (1 << 20)) fail("session id out of range");
  return id;
}

// ---- record payloads -------------------------------------------------------

void put_open(std::string& out, const OpenRecord& r) {
  put_i64(out, r.t_ns);
  put_i32(out, r.session);
  put_session_config(out, r.config);
  put_image(out, r.background);
}

OpenRecord get_open(ByteReader& in) {
  OpenRecord r;
  r.t_ns = in.i64();
  r.session = get_session_id(in);
  r.config = get_session_config(in);
  r.background = get_image(in);
  return r;
}

void put_push(std::string& out, const PushRecord& r) {
  put_i64(out, r.t_ns);
  put_i32(out, r.session);
  put_u8(out, static_cast<std::uint8_t>(r.outcome));
  put_u64(out, r.sequence);
  put_image(out, r.frame);
}

PushRecord get_push(ByteReader& in) {
  PushRecord r;
  r.t_ns = in.i64();
  r.session = get_session_id(in);
  r.outcome = outcome_from_u8(in.u8());
  r.sequence = in.u64();
  r.frame = get_image(in);
  return r;
}

void put_tick(std::string& out, const TickRecord& r) {
  put_i64(out, r.t_ns);
  put_u32(out, static_cast<std::uint32_t>(r.entries.size()));
  for (const TickEntry& e : r.entries) {
    put_i32(out, e.session);
    put_u64(out, e.sequence);
    put_update(out, e.update);
  }
}

TickRecord get_tick(ByteReader& in) {
  TickRecord r;
  r.t_ns = in.i64();
  const std::uint32_t entries = in.u32();
  // One entry per session per tick; a count past any plausible session
  // fan-out is corruption (and each entry needs bytes anyway).
  if (entries > (1u << 20)) fail("tick entry count out of range");
  r.entries.reserve(entries);
  for (std::uint32_t i = 0; i < entries; ++i) {
    TickEntry e;
    e.session = get_session_id(in);
    e.sequence = in.u64();
    e.update = get_update(in);
    r.entries.push_back(std::move(e));
  }
  return r;
}

void put_close(std::string& out, const CloseRecord& r) {
  put_i64(out, r.t_ns);
  put_i32(out, r.session);
  put_u8(out, r.evicted ? 1 : 0);
  put_u64(out, r.discarded);
  put_report(out, r.report);
}

CloseRecord get_close(ByteReader& in) {
  CloseRecord r;
  r.t_ns = in.i64();
  r.session = get_session_id(in);
  r.evicted = in.u8() != 0;
  r.discarded = in.u64();
  r.report = get_report(in);
  return r;
}

void put_summary(std::string& out, const SummaryRecord& r) {
  put_i64(out, r.t_ns);
  put_u64(out, r.pushed);
  put_u64(out, r.delivered);
  put_u64(out, r.dropped_oldest);
  put_u64(out, r.rejected);
  put_u64(out, r.rate_limited);
  put_u64(out, r.closed_pushes);
  put_u64(out, r.discarded);
  put_u64(out, r.ticks);
  put_u64(out, r.evicted_sessions);
}

SummaryRecord get_summary(ByteReader& in) {
  SummaryRecord r;
  r.t_ns = in.i64();
  r.pushed = in.u64();
  r.delivered = in.u64();
  r.dropped_oldest = in.u64();
  r.rejected = in.u64();
  r.rate_limited = in.u64();
  r.closed_pushes = in.u64();
  r.discarded = in.u64();
  r.ticks = in.u64();
  r.evicted_sessions = in.u64();
  return r;
}

RecordType type_of(const TraceRecord& record) {
  switch (record.index()) {
    case 0: return RecordType::kOpen;
    case 1: return RecordType::kPush;
    case 2: return RecordType::kTick;
    case 3: return RecordType::kClose;
    default: return RecordType::kSummary;
  }
}

void encode_into(std::string& out, const TraceRecord& record) {
  std::visit(
      [&out](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, OpenRecord>) put_open(out, r);
        else if constexpr (std::is_same_v<T, PushRecord>) put_push(out, r);
        else if constexpr (std::is_same_v<T, TickRecord>) put_tick(out, r);
        else if constexpr (std::is_same_v<T, CloseRecord>) put_close(out, r);
        else put_summary(out, r);
      },
      record);
}

}  // namespace

TraceSessionConfig to_trace_config(const ingest::IngestSessionConfig& config) {
  TraceSessionConfig c;
  c.queue_capacity = config.queue.capacity;
  c.policy = config.queue.policy;
  c.rate_tokens_per_second = config.queue.rate.tokens_per_second;
  c.rate_burst = config.queue.rate.burst;
  c.idle_timeout_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(config.idle_timeout).count();
  c.decoder = config.session.decoder;
  c.use_tracker = config.session.use_tracker;
  c.lift_threshold_px = config.session.lift_threshold_px;
  c.ground_calibration_frames = config.session.ground_calibration_frames;
  return c;
}

core::StreamSessionConfig to_stream_config(const TraceSessionConfig& config) {
  core::StreamSessionConfig c;
  c.decoder = config.decoder;
  c.use_tracker = config.use_tracker;
  c.lift_threshold_px = config.lift_threshold_px;
  c.ground_calibration_frames = config.ground_calibration_frames;
  return c;
}

std::string encode_record(const TraceRecord& record) {
  std::string out;
  encode_into(out, record);
  return out;
}

// ---- TraceWriter -----------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path) : path_(path) {
  auto* out = new std::ofstream(path, std::ios::binary | std::ios::trunc);
  if (!*out) {
    delete out;
    throw std::runtime_error("trace: cannot open '" + path + "' for writing");
  }
  out->write(kTraceMagic, sizeof(kTraceMagic));
  std::string header;
  put_u32(header, kTraceVersion);
  out->write(header.data(), static_cast<std::streamsize>(header.size()));
  out_ = out;
}

TraceWriter::~TraceWriter() {
  auto* out = static_cast<std::ofstream*>(out_);
  delete out;  // destructor swallows late I/O errors; finish() reports them
}

void TraceWriter::append(const TraceRecord& record) {
  auto* out = static_cast<std::ofstream*>(out_);
  if (out == nullptr) throw std::logic_error("trace: append after finish");
  scratch_.clear();
  encode_into(scratch_, record);
  if (scratch_.size() > kMaxRecordBytes) {
    // Unwritable by construction given the image caps; guard anyway so the
    // format invariant (every stored length is loadable) cannot be broken.
    throw std::runtime_error("trace: record exceeds kMaxRecordBytes");
  }
  std::string prefix;
  put_u32(prefix, static_cast<std::uint32_t>(scratch_.size()));
  put_u8(prefix, static_cast<std::uint8_t>(type_of(record)));
  out->write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  out->write(scratch_.data(), static_cast<std::streamsize>(scratch_.size()));
  if (!*out) throw std::runtime_error("trace: write failed on '" + path_ + "'");
}

void TraceWriter::finish() {
  auto* out = static_cast<std::ofstream*>(out_);
  if (out == nullptr) return;
  out->flush();
  const bool ok = static_cast<bool>(*out);
  delete out;
  out_ = nullptr;
  if (!ok) throw std::runtime_error("trace: flush failed on '" + path_ + "'");
}

// ---- whole-file load/save --------------------------------------------------

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  ByteReader header(bytes.data(), bytes.size());
  char magic[sizeof(kTraceMagic)];
  if (bytes.size() < sizeof(kTraceMagic) + 4) fail("file too short for header");
  for (char& c : magic) c = static_cast<char>(header.u8());
  if (std::memcmp(magic, kTraceMagic, sizeof(kTraceMagic)) != 0) fail("bad magic");

  Trace trace;
  trace.version = header.u32();
  if (trace.version != kTraceVersion) fail("unsupported version");

  std::size_t pos = sizeof(kTraceMagic) + 4;
  while (pos < bytes.size()) {
    ByteReader prefix(bytes.data() + pos, bytes.size() - pos);
    if (prefix.remaining() < 5) fail("truncated record prefix");
    const std::uint32_t length = prefix.u32();
    const std::uint8_t type = prefix.u8();
    if (length > kMaxRecordBytes) fail("record length out of range");
    pos += 5;
    if (bytes.size() - pos < length) fail("truncated record payload");
    ByteReader payload(bytes.data() + pos, length);
    pos += length;
    switch (static_cast<RecordType>(type)) {
      case RecordType::kOpen: trace.records.emplace_back(get_open(payload)); break;
      case RecordType::kPush: trace.records.emplace_back(get_push(payload)); break;
      case RecordType::kTick: trace.records.emplace_back(get_tick(payload)); break;
      case RecordType::kClose: trace.records.emplace_back(get_close(payload)); break;
      case RecordType::kSummary: trace.records.emplace_back(get_summary(payload)); break;
      default:
        // Unknown type: a future writer's record. The length prefix lets us
        // hop over it, so old readers still replay the records they know.
        continue;
    }
    payload.done();
  }
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  TraceWriter writer(path);
  for (const TraceRecord& record : trace.records) writer.append(record);
  writer.finish();
}

}  // namespace slj::replay
