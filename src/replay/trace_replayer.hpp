// TraceReplayer: re-drives a recorded ingest run and checks that today's
// code still produces byte-for-byte the same analysis.
//
// What is replayed — and what deliberately is not. The live plane has two
// kinds of behaviour:
//
//   * Scheduling: which pushes were admitted, which were shed, and how
//     frames were grouped into ticks. This depends on producer/scheduler
//     interleaving and wall-clock rate limiting, so it is inherently racy —
//     the trace records the *decisions* (push outcomes, tick batches) and
//     the replayer treats them as the script.
//   * Analysis: what StreamManager computed for each tick batch. This is
//     the deterministic part — the manager's tick contract guarantees
//     bit-identical updates at any worker count — and it is re-executed
//     from scratch here, at whatever worker count the caller picks, then
//     compared against the recorded golden outputs.
//
// Drop accounting is verified too: per-session discard counts and the final
// summary totals are recomputed from the recorded push outcomes and checked
// against the recorded CloseRecords/SummaryRecord, so the books
// (pushed == delivered + dropped_oldest + discarded) are re-balanced on
// every replay.
//
// Time is fully virtual: nothing sleeps, nothing reads a clock; recorded
// timestamps only report the original run's span.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "pose/classifier.hpp"
#include "replay/trace_format.hpp"

namespace slj::replay {

struct ReplayOptions {
  /// Worker threads for the replaying StreamManager (0 = hardware
  /// concurrency). Golden parity must hold at *any* value — that is the
  /// worker-count-invariance regression the corpus tests pin.
  unsigned workers = 1;
  /// 0.0 = posteriors must be bit-identical (in-process record/replay).
  /// The checked-in corpus uses a small tolerance instead, because libm
  /// exp/log differ across toolchains by a few ulps.
  double posterior_tolerance = 0.0;
};

struct ReplayResult {
  // -- what was re-driven --
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t ticks = 0;
  std::uint64_t frames_replayed = 0;   ///< tick entries re-analysed
  std::int64_t recorded_span_ns = 0;   ///< last recorded event timestamp
  bool has_summary = false;

  // -- divergence, by kind --
  std::uint64_t update_mismatches = 0;      ///< per-frame StreamUpdate divergence
  std::uint64_t report_mismatches = 0;      ///< final JumpReport divergence
  std::uint64_t accounting_mismatches = 0;  ///< discard/summary bookkeeping divergence

  /// Human-readable descriptions, first kMaxMismatchDetails kept.
  static constexpr std::size_t kMaxMismatchDetails = 16;
  std::vector<std::string> mismatches;

  std::uint64_t total_mismatches() const {
    return update_mismatches + report_mismatches + accounting_mismatches;
  }
  /// The replay reproduced the recording exactly.
  bool identical() const { return total_mismatches() == 0; }
  /// First divergence, or "" when identical.
  std::string first_mismatch() const { return mismatches.empty() ? "" : mismatches.front(); }
};

class TraceReplayer {
 public:
  /// `classifier` must outlive the replayer and must be the model the
  /// recording ran with (the trace stores session configs, not weights).
  TraceReplayer(const pose::PoseDbnClassifier& classifier, core::PipelineParams params = {},
                ReplayOptions options = {});

  /// Re-drives `trace` and compares against its golden records. Structural
  /// violations — a tick naming a session that never opened, a frame the
  /// trace never admitted, duplicate (session, sequence) pairs — mean the
  /// trace itself is torn/corrupt and throw std::runtime_error; behavioural
  /// divergence (today's code computing something else) is returned in the
  /// result instead.
  ReplayResult replay(const Trace& trace) const;

  /// Convenience: load_trace + replay.
  ReplayResult replay_file(const std::string& path) const;

 private:
  const pose::PoseDbnClassifier* classifier_;
  core::PipelineParams params_;
  ReplayOptions options_;
};

}  // namespace slj::replay
