// The .sljtrace container: a live ingest run serialized as a versioned
// stream of length-prefixed binary records, so any production incident can
// be re-driven later as a deterministic regression test.
//
// Layout (all integers little-endian):
//
//   8 bytes   magic "SLJTRACE"
//   u32       version (kTraceVersion)
//   repeated  records:  u32 payload_length | u8 type | payload
//
// This is the clip_io framing idiom (magic + version up front, hard
// validation on load) applied to a binary stream: a reader can skip record
// types it does not know, and every length is bounds-checked against
// kMaxRecordBytes before any allocation, so truncated files, bit-flipped
// headers and oversized length prefixes all fail with std::runtime_error —
// never UB (pinned by the fuzz tests in tests/test_replay.cpp).
//
// Record types — together they fully determine a run:
//   kOpen     session opened: timestamp, id, queue+session config, background
//   kPush     one push attempt: timestamp, id, outcome, queue sequence, frame
//   kTick     one scheduler round: per-entry (session, sequence) provenance
//             plus the full StreamUpdate it produced (the golden output)
//   kClose    session closed/evicted: final JumpReport + discarded count
//   kSummary  final IngestMetrics totals (the drop-accounting golden record)
//
// Frame payloads are run-length encoded per pixel run when that is smaller
// than raw RGB (synthetic studio footage compresses ~50×), so a mini trace
// corpus is cheap to check into the repository.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/faults.hpp"
#include "core/stream_engine.hpp"
#include "imaging/image.hpp"
#include "ingest/ingest_router.hpp"

namespace slj::replay {

inline constexpr char kTraceMagic[8] = {'S', 'L', 'J', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;
/// Upper bound on one record's payload; a length prefix beyond it is
/// rejected before any buffer is sized from it.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 26;  // 64 MiB
/// Upper bound on a traced frame's width/height (matches image_io's cap).
inline constexpr std::uint32_t kMaxTraceImageDimension = 1u << 15;

enum class RecordType : std::uint8_t {
  kOpen = 1,
  kPush = 2,
  kTick = 3,
  kClose = 4,
  kSummary = 5,
};

/// The slice of IngestSessionConfig a trace preserves — everything the
/// replayer needs to rebuild the session. (PipelineParams and the trained
/// model are deliberately *not* stored: replay must be given the same
/// classifier/params the recording ran with, exactly like any golden test.)
struct TraceSessionConfig {
  std::uint64_t queue_capacity = 8;
  ingest::BackpressurePolicy policy = ingest::BackpressurePolicy::kDropOldest;
  double rate_tokens_per_second = 0.0;
  double rate_burst = 1.0;
  std::int64_t idle_timeout_ns = 0;
  core::StreamDecoder decoder = core::StreamDecoder::kOnline;
  bool use_tracker = false;
  int lift_threshold_px = 3;
  int ground_calibration_frames = core::GroundMonitor::kDefaultCalibrationFrames;
};

TraceSessionConfig to_trace_config(const ingest::IngestSessionConfig& config);
core::StreamSessionConfig to_stream_config(const TraceSessionConfig& config);

/// Timestamps are nanoseconds relative to the recording's first event.
struct OpenRecord {
  std::int64_t t_ns = 0;
  int session = -1;
  TraceSessionConfig config;
  RgbImage background;
};

struct PushRecord {
  std::int64_t t_ns = 0;
  int session = -1;
  ingest::PushOutcome outcome = ingest::PushOutcome::kAccepted;
  /// Queue admission index; meaningful only when push_accepted(outcome).
  std::uint64_t sequence = 0;
  /// The offered pixels. Stored only for admitted frames (a refused frame
  /// never influences the run); empty() otherwise.
  RgbImage frame;
};

struct TickEntry {
  int session = -1;
  std::uint64_t sequence = 0;       ///< which admitted frame advanced the session
  core::StreamUpdate update;        ///< the golden output for that frame
};

struct TickRecord {
  std::int64_t t_ns = 0;
  std::vector<TickEntry> entries;
};

struct CloseRecord {
  std::int64_t t_ns = 0;
  int session = -1;
  bool evicted = false;             ///< idle-timeout eviction vs explicit close
  std::uint64_t discarded = 0;      ///< queued frames dropped un-analysed
  core::JumpReport report;          ///< the golden final report
};

struct SummaryRecord {
  std::int64_t t_ns = 0;
  std::uint64_t pushed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_oldest = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t closed_pushes = 0;
  std::uint64_t discarded = 0;
  std::uint64_t ticks = 0;
  std::uint64_t evicted_sessions = 0;
};

using TraceRecord = std::variant<OpenRecord, PushRecord, TickRecord, CloseRecord, SummaryRecord>;

struct Trace {
  std::uint32_t version = kTraceVersion;
  std::vector<TraceRecord> records;
};

/// Streaming writer: header on open, one length-prefixed record per
/// append(). Not internally synchronized (TraceRecorder serializes).
/// Throws std::runtime_error on I/O failure.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  void append(const TraceRecord& record);

  /// Flushes and closes the stream; append() is invalid afterwards.
  void finish();

 private:
  std::string path_;
  void* out_ = nullptr;  ///< std::ofstream, kept out of the header
  std::string scratch_;  ///< payload assembly buffer, reused per record
};

/// Serializes one record as payload bytes (without the length/type prefix).
/// Exposed for tests that craft corrupt records.
std::string encode_record(const TraceRecord& record);

/// Loads a whole trace into memory. Unknown record types are skipped (a
/// newer writer's trace still replays); any structural violation —
/// truncation, bad magic/version, oversized length prefix, malformed
/// payload — throws std::runtime_error.
Trace load_trace(const std::string& path);

/// Writes `trace` with TraceWriter framing (round-trip of load_trace).
void save_trace(const Trace& trace, const std::string& path);

}  // namespace slj::replay
