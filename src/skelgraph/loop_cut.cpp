#include "skelgraph/loop_cut.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace slj::skel {
namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int v) {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      parent_[static_cast<std::size_t>(v)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
      v = parent_[static_cast<std::size_t>(v)];
    }
    return v;
  }
  /// Returns false if already united (the edge would close a cycle).
  bool unite(int a, int b) {
    const int ra = find(a);
    const int rb = find(b);
    if (ra == rb) return false;
    parent_[static_cast<std::size_t>(ra)] = rb;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

LoopCutStats cut_loops(SkeletonGraph& graph, SpanningPolicy policy) {
  LoopCutStats stats;
  stats.loops_before = graph.cycle_count();

  std::vector<int> order;
  for (const Edge& e : graph.edges()) {
    if (e.alive) order.push_back(e.id);
  }
  // Kruskal: consider longest (or shortest) segments first; ties broken by
  // id for determinism.
  std::sort(order.begin(), order.end(), [&](int lhs, int rhs) {
    const double ll = graph.edge(lhs).length;
    const double rl = graph.edge(rhs).length;
    if (ll != rl) return policy == SpanningPolicy::kMaximum ? ll > rl : ll < rl;
    return lhs < rhs;
  });

  UnionFind uf(graph.nodes().size());
  for (const int id : order) {
    const Edge& e = graph.edge(id);
    if (e.a == e.b || !uf.unite(e.a, e.b)) {
      stats.removed_length += e.length;
      ++stats.edges_removed;
      graph.kill_edge(id);
    } else {
      stats.kept_length += e.length;
    }
  }

  stats.loops_after = graph.cycle_count();
  return stats;
}

}  // namespace slj::skel
