// Artifact analysis of raw thinning output (paper Sec. 3, Fig. 2): loops,
// corner/redundant-line spurs, junction clusters. Drives the Fig. 2 bench
// and the before/after comparisons in Fig. 3 / Fig. 4.
#pragma once

#include <cstddef>

#include "imaging/image.hpp"
#include "skelgraph/loop_cut.hpp"
#include "skelgraph/prune.hpp"
#include "skelgraph/skeleton_graph.hpp"

namespace slj::skel {

struct ArtifactReport {
  std::size_t skeleton_pixels = 0;
  std::size_t loops = 0;              ///< independent cycles in the pixel graph
  std::size_t junction_pixels = 0;
  std::size_t junction_clusters = 0;
  std::size_t adjacent_junctions = 0; ///< junction pixels collapsed away
  std::size_t end_points = 0;
  std::size_t short_branches = 0;     ///< leaf segments below the threshold
  double short_branch_length = 0.0;
};

/// Analyses a thinned skeleton without modifying it.
ArtifactReport analyze_artifacts(const BinaryImage& skeleton, int min_branch_vertices = 10);

/// Convenience pipeline: graph build → max-spanning-tree loop cut →
/// one-at-a-time pruning; returns the cleaned graph.
struct CleanupStats {
  BuildStats build;
  LoopCutStats loops;
  PruneStats prune;
};

SkeletonGraph clean_skeleton(const BinaryImage& skeleton, int min_branch_vertices = 10,
                             CleanupStats* stats = nullptr);

/// Workspace variant: bit-identical output, but the graph build's full-frame
/// temporaries live in `ws` and are reused frame over frame (the engines'
/// steady state — see build_skeleton_graph(skeleton, ws, stats)).
SkeletonGraph clean_skeleton(const BinaryImage& skeleton, FrameWorkspace& ws,
                             int min_branch_vertices = 10, CleanupStats* stats = nullptr);

}  // namespace slj::skel
