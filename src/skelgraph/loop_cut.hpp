// Loop cutting via a *maximum* spanning tree (paper Sec. 3, Fig. 3).
//
// The paper keeps maximum-length segments while growing the tree so that the
// junction node substituted for a removed junction cluster stays connected
// to all of its neighbours; short leftover stubs from the cluster collapse
// are what get cut. kMinimum is provided for the Fig. 3 ablation that shows
// why minimum trees are the wrong choice here.
#pragma once

#include <cstddef>

#include "skelgraph/skeleton_graph.hpp"

namespace slj::skel {

enum class SpanningPolicy { kMaximum, kMinimum };

struct LoopCutStats {
  std::size_t loops_before = 0;
  std::size_t loops_after = 0;
  std::size_t edges_removed = 0;
  double removed_length = 0.0;
  double kept_length = 0.0;
};

/// Cuts every cycle by keeping a spanning forest of the alive subgraph.
/// Self-loop edges are always removed. Returns what was cut.
LoopCutStats cut_loops(SkeletonGraph& graph, SpanningPolicy policy = SpanningPolicy::kMaximum);

}  // namespace slj::skel
