// Graph view of a thinned skeleton (paper Sec. 3, following Kégl & Krzyżak
// [7] as the paper does):
//
//  1. every skeleton pixel is a vertex of the *pixel graph* (8-adjacency);
//  2. junction pixels (degree >= 3) that touch other junction pixels — the
//     paper's "adjacent junction vertices" — are collapsed into a single
//     junction node per 8-connected cluster, which simplifies the graph and
//     bounds node degree;
//  3. maximal chains of degree-2 pixels become edges (segments) between
//     junction/end nodes, carrying their pixel path and Euclidean length.
//
// Loops are cut afterwards with a *maximum* spanning tree (loop_cut.hpp) and
// noisy branches are pruned one at a time (prune.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "imaging/image.hpp"

namespace slj {
struct FrameWorkspace;
}

namespace slj::skel {

enum class NodeType : std::uint8_t {
  kEnd,       ///< degree-1 pixel (limb tip: head top, hand, toe, ...)
  kJunction,  ///< collapsed cluster of degree->=3 pixels (limb intersection)
  kIsolated,  ///< lone pixel with no neighbours
  kLoopSeat,  ///< synthetic node anchoring a pure cycle with no junctions
  kBend,      ///< piecewise-linear bend vertex (knee/elbow inside a limb)
};

struct Node {
  int id = -1;
  PointI pos;              ///< representative pixel (cluster pixel nearest centroid)
  NodeType type = NodeType::kEnd;
  bool alive = true;
  std::vector<PointI> cluster;  ///< all pixels collapsed into this node
};

struct Edge {
  int id = -1;
  int a = -1;               ///< node id of one endpoint
  int b = -1;               ///< node id of the other endpoint (may equal a: self-loop)
  std::vector<PointI> path; ///< pixel chain including both terminal pixels
  double length = 0.0;      ///< Euclidean length along the path
  bool alive = true;
};

/// Construction telemetry (drives the Fig. 2 / Fig. 3 benches).
struct BuildStats {
  std::size_t skeleton_pixels = 0;
  std::size_t junction_pixels = 0;       ///< pixels with degree >= 3
  std::size_t junction_clusters = 0;     ///< nodes after collapsing
  std::size_t adjacent_junctions_removed = 0;  ///< junction pixels merged away
  std::size_t pixel_graph_cycles = 0;    ///< independent cycles E - V + C
};

class SkeletonGraph {
 public:
  SkeletonGraph() = default;

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Edge& edge(int id) { return edges_[static_cast<std::size_t>(id)]; }
  const Edge& edge(int id) const { return edges_[static_cast<std::size_t>(id)]; }

  /// Ids of alive edges incident to `node_id` (self-loops appear once).
  std::vector<int> incident_edges(int node_id) const;

  /// Degree of a node counting self-loops twice.
  int degree(int node_id) const;

  std::size_t alive_node_count() const;
  std::size_t alive_edge_count() const;

  /// Independent cycles among alive edges/nodes: E - V + C.
  std::size_t cycle_count() const;

  /// Sum of alive edge lengths.
  double total_length() const;

  int add_node(Node n);
  int add_edge(Edge e);
  void kill_edge(int id) { edges_[static_cast<std::size_t>(id)].alive = false; }
  void kill_node(int id) { nodes_[static_cast<std::size_t>(id)].alive = false; }

  /// Collapses an alive node of degree exactly 2 (two distinct incident
  /// edges) by splicing its edges into one. Returns true if merged.
  bool merge_degree2_node(int node_id);

  /// Draws all alive edges and node clusters into a w×h mask.
  BinaryImage rasterize(int width, int height) const;

  /// GraphViz dump for documentation / Fig. 7-style structure printing.
  std::string to_dot() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

/// Builds the simplified skeleton graph from a thinned 0/1 image.
SkeletonGraph build_skeleton_graph(const BinaryImage& skeleton, BuildStats* stats = nullptr);

/// Workspace variant: bit-identical graph and stats, but the full-frame
/// temporaries of the build — the junction mask, the cluster/component label
/// image, the pure-cycle visited map, and the labeling DFS stack — live in
/// `ws` (junction_mask / junction_labeling / junction_stack / graph_visited)
/// and are reused frame over frame, closing the skeleton-graph stage's
/// per-frame full-frame allocations.
SkeletonGraph build_skeleton_graph(const BinaryImage& skeleton, FrameWorkspace& ws,
                                   BuildStats* stats = nullptr);

/// A key point as consumed by the pose module: a node position + kind.
struct KeyPoint {
  PointI pos;
  NodeType type;
};

/// Alive nodes of the graph as key points, ends first then junctions.
std::vector<KeyPoint> extract_key_points(const SkeletonGraph& graph);

}  // namespace slj::skel
