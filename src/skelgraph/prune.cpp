#include "skelgraph/prune.hpp"

#include <algorithm>
#include <vector>

namespace slj::skel {
namespace {

/// An edge is a prunable branch if one endpoint is an end-type leaf (degree
/// 1) and the other endpoint still connects to the rest of the skeleton
/// (degree >= 2). Isolated segments (end-to-end) are never pruned: they are
/// the whole skeleton, not noise on it.
bool is_leaf_branch(const SkeletonGraph& graph, const Edge& e) {
  if (e.a == e.b) return false;
  const int da = graph.degree(e.a);
  const int db = graph.degree(e.b);
  return (da == 1 && db >= 2) || (db == 1 && da >= 2);
}

/// Collects alive prunable branches shorter than the vertex threshold,
/// shortest path first (ties by id for determinism).
std::vector<int> short_branches(const SkeletonGraph& graph, int min_vertices) {
  std::vector<int> out;
  for (const Edge& e : graph.edges()) {
    if (!e.alive || !is_leaf_branch(graph, e)) continue;
    if (static_cast<int>(e.path.size()) < min_vertices) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end(), [&](int lhs, int rhs) {
    const std::size_t ls = graph.edge(lhs).path.size();
    const std::size_t rs = graph.edge(rhs).path.size();
    if (ls != rs) return ls < rs;
    return lhs < rhs;
  });
  return out;
}

void cleanup_anchor(SkeletonGraph& graph, int anchor) {
  // The anchor junction may have become a pass-through point or a new end.
  const int anchor_degree = graph.degree(anchor);
  if (anchor_degree == 2) {
    graph.merge_degree2_node(anchor);
  } else if (anchor_degree == 1) {
    graph.node(anchor).type = NodeType::kEnd;
  } else if (anchor_degree == 0) {
    graph.kill_node(anchor);
  }
}

/// Kills the branch edge + leaf node; returns the anchor node id.
int remove_branch(SkeletonGraph& graph, int edge_id, PruneStats& stats) {
  const Edge& e = graph.edge(edge_id);
  const int leaf = graph.degree(e.a) == 1 ? e.a : e.b;
  const int anchor = leaf == e.a ? e.b : e.a;
  stats.removed_length += e.length;
  ++stats.branches_removed;
  graph.kill_edge(edge_id);
  graph.kill_node(leaf);
  return anchor;
}

}  // namespace

PruneStats prune_branches(SkeletonGraph& graph, int min_branch_vertices, PruningMode mode) {
  PruneStats stats;
  while (true) {
    const std::vector<int> candidates = short_branches(graph, min_branch_vertices);
    if (candidates.empty()) break;
    ++stats.rounds;
    if (mode == PruningMode::kOneAtATime) {
      // Paper rule: exactly one branch per round; the anchor junction is
      // dissolved (merged) immediately, so a sibling branch can fuse with
      // the main path and escape the next round — exactly what protects the
      // correct branch in Fig. 4(c).
      cleanup_anchor(graph, remove_branch(graph, candidates.front(), stats));
    } else {
      // Strawman sweep ("delete both branches", Fig. 4b): remove every
      // branch that was below threshold at the START of the sweep, and only
      // merge pass-through junctions afterwards — sibling branches get no
      // chance to fuse and survive.
      std::vector<int> anchors;
      for (const int id : candidates) {
        if (graph.edge(id).alive && is_leaf_branch(graph, graph.edge(id))) {
          anchors.push_back(remove_branch(graph, id, stats));
        }
      }
      for (const int anchor : anchors) {
        if (graph.node(anchor).alive) cleanup_anchor(graph, anchor);
      }
    }
  }
  return stats;
}

}  // namespace slj::skel
