// Piecewise-linear simplification of skeleton edges (following the spirit
// of the paper's ref [7], Kégl & Krzyżak: skeletons as piecewise-LINEAR
// structures). Long curved segments are split at their bend points
// (Douglas–Peucker vertices), which turns articulations that produce no
// junction — a bent knee or elbow inside a merged limb — into explicit key
// points the pose features can use.
#pragma once

#include <cstddef>
#include <vector>

#include "imaging/geometry.hpp"
#include "skelgraph/skeleton_graph.hpp"

namespace slj::skel {

/// Douglas–Peucker polyline simplification: returns the indices (into
/// `path`) of the kept vertices, always including both endpoints.
std::vector<std::size_t> douglas_peucker(const std::vector<PointI>& path, double tolerance);

struct BendSplitStats {
  std::size_t bends_added = 0;
  std::size_t edges_split = 0;
};

/// Splits every alive edge at its interior bend vertices. `tolerance` is
/// the maximum pixel deviation a chain may have from the straight chord
/// before it is split; `min_segment_px` suppresses bends that would create
/// segments shorter than this.
BendSplitStats split_edges_at_bends(SkeletonGraph& graph, double tolerance = 2.5,
                                    double min_segment_px = 5.0);

}  // namespace slj::skel
