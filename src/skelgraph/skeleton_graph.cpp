#include "skelgraph/skeleton_graph.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/simd.hpp"
#include "imaging/connected.hpp"
#include "imaging/frame_workspace.hpp"

namespace slj::skel {
namespace {

int pixel_degree(const BinaryImage& skel, int x, int y) {
  int d = 0;
  for (const PointI& o : kNeighbours8) {
    d += skel.at_or(x + o.x, y + o.y, 0) ? 1 : 0;
  }
  return d;
}

double path_length(const std::vector<PointI>& path) {
  double len = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    len += distance(path[i - 1], path[i]);
  }
  return len;
}

}  // namespace

std::vector<int> SkeletonGraph::incident_edges(int node_id) const {
  std::vector<int> out;
  for (const Edge& e : edges_) {
    if (e.alive && (e.a == node_id || e.b == node_id)) out.push_back(e.id);
  }
  return out;
}

int SkeletonGraph::degree(int node_id) const {
  int d = 0;
  for (const Edge& e : edges_) {
    if (!e.alive) continue;
    if (e.a == node_id) ++d;
    if (e.b == node_id) ++d;
  }
  return d;
}

std::size_t SkeletonGraph::alive_node_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(), [](const Node& n) { return n.alive; }));
}

std::size_t SkeletonGraph::alive_edge_count() const {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(), [](const Edge& e) { return e.alive; }));
}

std::size_t SkeletonGraph::cycle_count() const {
  // Union-find over alive nodes; every edge that joins two already-joined
  // nodes closes one independent cycle.
  std::vector<int> parent(nodes_.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };
  std::size_t cycles = 0;
  for (const Edge& e : edges_) {
    if (!e.alive) continue;
    const int ra = find(e.a);
    const int rb = find(e.b);
    if (ra == rb) {
      ++cycles;
    } else {
      parent[static_cast<std::size_t>(ra)] = rb;
    }
  }
  return cycles;
}

double SkeletonGraph::total_length() const {
  double len = 0.0;
  for (const Edge& e : edges_) {
    if (e.alive) len += e.length;
  }
  return len;
}

int SkeletonGraph::add_node(Node n) {
  n.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int SkeletonGraph::add_edge(Edge e) {
  e.id = static_cast<int>(edges_.size());
  e.length = path_length(e.path);
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

bool SkeletonGraph::merge_degree2_node(int node_id) {
  Node& n = nodes_[static_cast<std::size_t>(node_id)];
  if (!n.alive) return false;
  const std::vector<int> inc = incident_edges(node_id);
  if (inc.size() != 2 || inc[0] == inc[1]) return false;  // self-loop: degree 2, one edge
  Edge& e1 = edges_[static_cast<std::size_t>(inc[0])];
  Edge& e2 = edges_[static_cast<std::size_t>(inc[1])];
  if (e1.a == e1.b || e2.a == e2.b) return false;

  // Orient both paths so they run ... -> node -> ...
  std::vector<PointI> p1 = e1.path;  // will end at node
  if (e1.a == node_id) std::reverse(p1.begin(), p1.end());
  std::vector<PointI> p2 = e2.path;  // starts at node
  if (e2.b == node_id) std::reverse(p2.begin(), p2.end());

  Edge merged;
  merged.a = (e1.a == node_id) ? e1.b : e1.a;
  merged.b = (e2.a == node_id) ? e2.b : e2.a;
  merged.path = std::move(p1);
  // Skip p2's first pixel — it is the shared node pixel already in p1.
  merged.path.insert(merged.path.end(), p2.begin() + 1, p2.end());

  e1.alive = false;
  e2.alive = false;
  n.alive = false;
  add_edge(std::move(merged));
  return true;
}

BinaryImage SkeletonGraph::rasterize(int width, int height) const {
  BinaryImage out(width, height, 0);
  for (const Edge& e : edges_) {
    if (!e.alive) continue;
    for (const PointI& p : e.path) {
      if (out.in_bounds(p)) out.at(p) = 1;
    }
  }
  for (const Node& n : nodes_) {
    if (!n.alive) continue;
    if (out.in_bounds(n.pos)) out.at(n.pos) = 1;
  }
  return out;
}

std::string SkeletonGraph::to_dot() const {
  std::string dot = "graph skeleton {\n";
  for (const Node& n : nodes_) {
    if (!n.alive) continue;
    dot += "  n" + std::to_string(n.id) + " [label=\"(" + std::to_string(n.pos.x) + "," +
           std::to_string(n.pos.y) + ")\"";
    if (n.type == NodeType::kJunction) dot += " shape=box";
    dot += "];\n";
  }
  for (const Edge& e : edges_) {
    if (!e.alive) continue;
    dot += "  n" + std::to_string(e.a) + " -- n" + std::to_string(e.b) + " [label=\"" +
           std::to_string(static_cast<int>(e.length)) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

namespace {

// Shared implementation behind both build_skeleton_graph entry points: the
// full-frame temporaries (junction mask, label image, visited map, DFS
// stack) are caller-provided, so the workspace overload recycles them frame
// over frame while the plain overload passes fresh locals. One body means
// the two can never diverge.
SkeletonGraph build_graph_impl(const BinaryImage& skeleton, BuildStats* stats,
                               Image<std::uint8_t>& is_junction, Labeling& scratch_labeling,
                               std::vector<PointI>& scratch_stack, BinaryImage& visited) {
  SkeletonGraph graph;
  const int w = skeleton.width();
  const int h = skeleton.height();

  // Classify pixels by degree in the pixel graph.
  is_junction.assign(w, h, 0);
  std::size_t skeleton_pixels = 0;
  std::size_t junction_pixels = 0;
  std::size_t pixel_edges2 = 0;  // 2x the number of pixel-graph edges
  const std::uint8_t* skel = skeleton.data().data();
  const std::size_t wn = static_cast<std::size_t>(w);
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* row = skel + static_cast<std::size_t>(y) * wn;
    for (std::size_t xi = 0; xi < wn; ++xi) {
      xi += simd::find_nonzero<simd::Active>(row + xi, wn - xi);
      if (xi >= wn) break;
      const int x = static_cast<int>(xi);
      ++skeleton_pixels;
      const int d = pixel_degree(skeleton, x, y);
      pixel_edges2 += static_cast<std::size_t>(d);
      if (d >= 3) {
        is_junction.at(x, y) = 1;
        ++junction_pixels;
      }
    }
  }

  // Collapse 8-connected clusters of junction pixels into single junction
  // nodes — the paper's adjacent-junction-vertex removal.
  label_components_into(is_junction, /*eight_connected=*/true, scratch_labeling, scratch_stack);
  const Labeling& junction_clusters = scratch_labeling;
  const std::size_t junction_cluster_count = junction_clusters.components.size();
  // pixel -> node id for "special" pixels (cluster members, ends, isolated).
  std::unordered_map<PointI, int> special;
  for (const ComponentStats& c : junction_clusters.components) {
    Node node;
    node.type = NodeType::kJunction;
    // Representative: cluster pixel nearest the centroid.
    double best = 1e30;
    for (int y = c.min.y; y <= c.max.y; ++y) {
      for (int x = c.min.x; x <= c.max.x; ++x) {
        if (junction_clusters.labels.at(x, y) != c.label) continue;
        node.cluster.push_back({x, y});
        const double d = distance(to_f(PointI{x, y}), c.centroid);
        if (d < best) {
          best = d;
          node.pos = {x, y};
        }
      }
    }
    const int id = graph.add_node(std::move(node));
    for (const PointI& p : graph.node(id).cluster) special[p] = id;
  }

  // End and isolated pixels become their own nodes.
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* row = skel + static_cast<std::size_t>(y) * wn;
    for (std::size_t xi = 0; xi < wn; ++xi) {
      xi += simd::find_nonzero<simd::Active>(row + xi, wn - xi);
      if (xi >= wn) break;
      const int x = static_cast<int>(xi);
      if (is_junction.at(x, y)) continue;
      const int d = pixel_degree(skeleton, x, y);
      if (d == 1 || d == 0) {
        Node node;
        node.pos = {x, y};
        node.type = d == 1 ? NodeType::kEnd : NodeType::kIsolated;
        node.cluster = {node.pos};
        special[node.pos] = graph.add_node(std::move(node));
      }
    }
  }

  // Trace segments: from every special pixel, walk into each non-special
  // neighbour through degree-2 pixels until another special pixel is hit.
  // `consumed` stores directed first/last steps so each segment is traced
  // exactly once even when both endpoints start traces.
  std::set<std::pair<PointI, PointI>> consumed;
  auto neighbours_of = [&](PointI p) {
    std::vector<PointI> out;
    for (const PointI& o : kNeighbours8) {
      const int nx = p.x + o.x;
      const int ny = p.y + o.y;
      if (skeleton.in_bounds(nx, ny) && skeleton.at(nx, ny)) out.push_back({nx, ny});
    }
    return out;
  };

  std::vector<std::pair<PointI, int>> specials(special.begin(), special.end());
  // Deterministic order regardless of hash-map iteration.
  std::sort(specials.begin(), specials.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [start, start_node] : specials) {
    for (const PointI& first : neighbours_of(start)) {
      const auto first_special = special.find(first);
      if (first_special != special.end() && first_special->second == start_node) {
        continue;  // intra-cluster adjacency, not a segment
      }
      if (consumed.contains({start, first})) continue;

      std::vector<PointI> path{start, first};
      PointI prev = start;
      PointI cur = first;
      while (!special.contains(cur)) {
        // Regular pixel: exactly two neighbours; step to the one != prev.
        PointI next = prev;
        bool found = false;
        for (const PointI& n : neighbours_of(cur)) {
          if (n != prev) {
            next = n;
            found = true;
            break;
          }
        }
        if (!found) break;  // defensive: dangling chain, treat cur as terminal
        prev = cur;
        cur = next;
        path.push_back(cur);
      }

      consumed.insert({start, first});
      const auto terminal = special.find(cur);
      if (terminal != special.end()) {
        consumed.insert({cur, prev});
        Edge e;
        e.a = start_node;
        e.b = terminal->second;
        e.path = std::move(path);
        graph.add_edge(std::move(e));
      }
    }
  }

  // Pure cycles (all pixels degree 2, no junction/end): seat a synthetic
  // node on the topmost-leftmost unvisited pixel and trace the self-loop.
  visited.assign(w, h, 0);
  for (const Edge& e : graph.edges()) {
    for (const PointI& p : e.path) visited.at(p) = 1;
  }
  for (const Node& n : graph.nodes()) {
    for (const PointI& p : n.cluster) visited.at(p) = 1;
  }
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* row = skel + static_cast<std::size_t>(y) * wn;
    for (std::size_t xi = 0; xi < wn; ++xi) {
      xi += simd::find_nonzero<simd::Active>(row + xi, wn - xi);
      if (xi >= wn) break;
      const int x = static_cast<int>(xi);
      if (visited.at(x, y)) continue;
      Node seat;
      seat.pos = {x, y};
      seat.type = NodeType::kLoopSeat;
      seat.cluster = {seat.pos};
      const int seat_id = graph.add_node(std::move(seat));
      // Walk the ring.
      std::vector<PointI> path{{x, y}};
      visited.at(x, y) = 1;
      PointI prev{x, y};
      std::vector<PointI> nbrs = neighbours_of({x, y});
      if (nbrs.empty()) continue;  // degree-0 handled as isolated above
      PointI cur = nbrs.front();
      while (cur != PointI{x, y}) {
        path.push_back(cur);
        visited.at(cur) = 1;
        PointI next = prev;
        for (const PointI& n : neighbours_of(cur)) {
          if (n != prev) {
            next = n;
            break;
          }
        }
        prev = cur;
        cur = next;
        if (cur == prev) break;  // defensive
      }
      path.push_back({x, y});
      Edge e;
      e.a = seat_id;
      e.b = seat_id;
      e.path = std::move(path);
      graph.add_edge(std::move(e));
    }
  }

  if (stats != nullptr) {
    stats->skeleton_pixels = skeleton_pixels;
    stats->junction_pixels = junction_pixels;
    stats->junction_clusters = junction_cluster_count;
    stats->adjacent_junctions_removed = junction_pixels - junction_cluster_count;
    const std::size_t pixel_edges = pixel_edges2 / 2;
    // Same count as component_count(skeleton), through the caller's scratch
    // (junction_clusters is no longer read past node construction).
    label_components_into(skeleton, /*eight_connected=*/true, scratch_labeling, scratch_stack);
    const std::size_t components = scratch_labeling.components.size();
    stats->pixel_graph_cycles =
        pixel_edges + components >= skeleton_pixels ? pixel_edges + components - skeleton_pixels : 0;
  }
  return graph;
}

}  // namespace

SkeletonGraph build_skeleton_graph(const BinaryImage& skeleton, BuildStats* stats) {
  Image<std::uint8_t> is_junction;
  Labeling labeling;
  std::vector<PointI> stack;
  BinaryImage visited;
  return build_graph_impl(skeleton, stats, is_junction, labeling, stack, visited);
}

SkeletonGraph build_skeleton_graph(const BinaryImage& skeleton, FrameWorkspace& ws,
                                   BuildStats* stats) {
  return build_graph_impl(skeleton, stats, ws.junction_mask, ws.junction_labeling,
                          ws.junction_stack, ws.graph_visited);
}

std::vector<KeyPoint> extract_key_points(const SkeletonGraph& graph) {
  std::vector<KeyPoint> pts;
  for (const Node& n : graph.nodes()) {
    if (n.alive && n.type == NodeType::kEnd) pts.push_back({n.pos, n.type});
  }
  for (const Node& n : graph.nodes()) {
    if (n.alive && n.type != NodeType::kEnd) pts.push_back({n.pos, n.type});
  }
  return pts;
}

}  // namespace slj::skel
