#include "skelgraph/simplify.hpp"

#include <algorithm>
#include <cmath>

namespace slj::skel {
namespace {

double point_to_chord_distance(PointI p, PointI a, PointI b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len = std::sqrt(abx * abx + aby * aby);
  if (len < 1e-9) return distance(p, a);
  const double cross = abx * (p.y - a.y) - aby * (p.x - a.x);
  return std::abs(cross) / len;
}

void dp_recurse(const std::vector<PointI>& path, std::size_t lo, std::size_t hi,
                double tolerance, std::vector<std::size_t>& keep) {
  if (hi <= lo + 1) return;
  double worst = -1.0;
  std::size_t worst_idx = lo;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const double d = point_to_chord_distance(path[i], path[lo], path[hi]);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > tolerance) {
    dp_recurse(path, lo, worst_idx, tolerance, keep);
    keep.push_back(worst_idx);
    dp_recurse(path, worst_idx, hi, tolerance, keep);
  }
}

}  // namespace

std::vector<std::size_t> douglas_peucker(const std::vector<PointI>& path, double tolerance) {
  std::vector<std::size_t> keep;
  if (path.empty()) return keep;
  keep.push_back(0);
  if (path.size() > 1) {
    dp_recurse(path, 0, path.size() - 1, tolerance, keep);
    keep.push_back(path.size() - 1);
  }
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  return keep;
}

BendSplitStats split_edges_at_bends(SkeletonGraph& graph, double tolerance,
                                    double min_segment_px) {
  BendSplitStats stats;
  const std::size_t edge_count = graph.edges().size();  // new edges appended after
  for (std::size_t ei = 0; ei < edge_count; ++ei) {
    const Edge edge = graph.edge(static_cast<int>(ei));  // copy: we mutate the graph
    if (!edge.alive || edge.a == edge.b || edge.path.size() < 3) continue;
    std::vector<std::size_t> keep = douglas_peucker(edge.path, tolerance);
    if (keep.size() <= 2) continue;

    // Drop interior vertices that would create very short segments.
    std::vector<std::size_t> vertices{keep.front()};
    for (std::size_t i = 1; i + 1 < keep.size(); ++i) {
      if (distance(edge.path[vertices.back()], edge.path[keep[i]]) >= min_segment_px &&
          distance(edge.path[keep[i]], edge.path[keep.back()]) >= min_segment_px) {
        vertices.push_back(keep[i]);
      }
    }
    vertices.push_back(keep.back());
    if (vertices.size() <= 2) continue;

    // Replace the edge with a chain of sub-edges through new bend nodes.
    graph.kill_edge(edge.id);
    ++stats.edges_split;
    int prev_node = edge.a;
    for (std::size_t v = 1; v < vertices.size(); ++v) {
      int end_node;
      if (v + 1 == vertices.size()) {
        end_node = edge.b;
      } else {
        Node bend;
        bend.pos = edge.path[vertices[v]];
        bend.type = NodeType::kBend;
        bend.cluster = {bend.pos};
        end_node = graph.add_node(std::move(bend));
        ++stats.bends_added;
      }
      Edge sub;
      sub.a = prev_node;
      sub.b = end_node;
      sub.path.assign(edge.path.begin() + static_cast<std::ptrdiff_t>(vertices[v - 1]),
                      edge.path.begin() + static_cast<std::ptrdiff_t>(vertices[v]) + 1);
      graph.add_edge(std::move(sub));
      prev_node = end_node;
    }
  }
  return stats;
}

}  // namespace slj::skel
