#include "skelgraph/artifacts.hpp"

#include "skelgraph/loop_cut.hpp"
#include "skelgraph/prune.hpp"

namespace slj::skel {

ArtifactReport analyze_artifacts(const BinaryImage& skeleton, int min_branch_vertices) {
  BuildStats build;
  const SkeletonGraph graph = build_skeleton_graph(skeleton, &build);

  ArtifactReport report;
  report.skeleton_pixels = build.skeleton_pixels;
  report.loops = build.pixel_graph_cycles;
  report.junction_pixels = build.junction_pixels;
  report.junction_clusters = build.junction_clusters;
  report.adjacent_junctions = build.adjacent_junctions_removed;
  for (const Node& n : graph.nodes()) {
    if (n.alive && n.type == NodeType::kEnd) ++report.end_points;
  }
  for (const Edge& e : graph.edges()) {
    if (!e.alive || e.a == e.b) continue;
    const bool leaf = graph.degree(e.a) == 1 || graph.degree(e.b) == 1;
    const bool anchored = graph.degree(e.a) >= 2 || graph.degree(e.b) >= 2;
    if (leaf && anchored && static_cast<int>(e.path.size()) < min_branch_vertices) {
      ++report.short_branches;
      report.short_branch_length += e.length;
    }
  }
  return report;
}

namespace {

// One body behind both clean_skeleton entry points (null ws = fresh build
// temporaries), so the cleanup pipeline cannot diverge between the batch
// and workspace paths.
SkeletonGraph clean_impl(const BinaryImage& skeleton, FrameWorkspace* ws,
                         int min_branch_vertices, CleanupStats* stats) {
  CleanupStats local;
  SkeletonGraph graph = ws != nullptr ? build_skeleton_graph(skeleton, *ws, &local.build)
                                      : build_skeleton_graph(skeleton, &local.build);
  local.loops = cut_loops(graph, SpanningPolicy::kMaximum);
  local.prune = prune_branches(graph, min_branch_vertices, PruningMode::kOneAtATime);
  if (stats != nullptr) *stats = local;
  return graph;
}

}  // namespace

SkeletonGraph clean_skeleton(const BinaryImage& skeleton, int min_branch_vertices,
                             CleanupStats* stats) {
  return clean_impl(skeleton, nullptr, min_branch_vertices, stats);
}

SkeletonGraph clean_skeleton(const BinaryImage& skeleton, FrameWorkspace& ws,
                             int min_branch_vertices, CleanupStats* stats) {
  return clean_impl(skeleton, &ws, min_branch_vertices, stats);
}

}  // namespace slj::skel
