// Noisy-branch pruning (paper Sec. 3, Fig. 4).
//
// A branch is a simple path from an end node to a junction node. Branches
// shorter than `min_branch_vertices` (the paper uses 10) are treated as
// thinning noise. The paper is explicit that ONLY ONE branch may be deleted
// at a time: deleting all short branches at a junction in one sweep can
// remove the correct branch together with the noisy one (Fig. 4b). After
// each deletion, a junction left with degree 2 is spliced away so its two
// segments fuse into one longer path — which is exactly what protects the
// correct branch on the next round.
#pragma once

#include <cstddef>

#include "skelgraph/skeleton_graph.hpp"

namespace slj::skel {

enum class PruningMode {
  kOneAtATime,  ///< the paper's procedure
  kBatch,       ///< delete every short branch per sweep (Fig. 4b strawman)
};

struct PruneStats {
  std::size_t branches_removed = 0;
  std::size_t rounds = 0;
  double removed_length = 0.0;
};

/// Prunes noisy branches. `min_branch_vertices` counts pixels in the branch
/// path (paper: "consists of less than 10 vertices").
PruneStats prune_branches(SkeletonGraph& graph, int min_branch_vertices = 10,
                          PruningMode mode = PruningMode::kOneAtATime);

}  // namespace slj::skel
