// Conditional probability distributions for discrete Bayesian networks.
//
// The paper's networks (Fig. 7) are small and discrete; we hand-roll the
// machinery: a tabular CPD learned by Laplace-smoothed counting
// ("quantitative training" in the paper's terms), plus a deterministic CPD
// used for the observed area nodes whose value is a function of the hidden
// body-part nodes.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace slj::bayes {

/// Interface: P(child = state | parents = parent_states).
class Cpd {
 public:
  virtual ~Cpd() = default;

  virtual int child_cardinality() const = 0;
  virtual const std::vector<int>& parent_cardinalities() const = 0;

  virtual double prob(int child_state, std::span<const int> parent_states) const = 0;
};

/// Dense table over parent configurations, trained by counting with
/// additive (Laplace) smoothing `alpha`. Before any observation every
/// distribution is uniform.
class TabularCpd : public Cpd {
 public:
  TabularCpd(int child_cardinality, std::vector<int> parent_cardinalities, double alpha = 1.0);

  int child_cardinality() const override { return child_card_; }
  const std::vector<int>& parent_cardinalities() const override { return parent_cards_; }

  /// Accumulates one (weighted) observation.
  void observe(int child_state, std::span<const int> parent_states, double weight = 1.0);

  /// Resets all counts.
  void clear();

  double prob(int child_state, std::span<const int> parent_states) const override;

  /// Raw count for tests and diagnostics.
  double count(int child_state, std::span<const int> parent_states) const;

  /// Total observations accumulated (sum of weights).
  double total_weight() const { return total_weight_; }

  double alpha() const { return alpha_; }

  /// Number of parent configurations (rows).
  std::size_t row_count() const { return row_total_.size(); }

  /// Raw count table, row-major ([row * child_card + child]) — for
  /// serialization and diagnostics.
  const std::vector<double>& raw_counts() const { return counts_; }

  /// Replaces the count table (same layout as raw_counts()); row totals and
  /// the total weight are recomputed. Throws on size mismatch.
  void load_counts(std::vector<double> counts);

 private:
  std::size_t row_index(std::span<const int> parent_states) const;
  std::size_t cell_index(int child_state, std::span<const int> parent_states) const;

  int child_card_;
  std::vector<int> parent_cards_;
  double alpha_;
  std::vector<double> counts_;     // [row * child_card_ + child]
  std::vector<double> row_total_;  // [row]
  double total_weight_ = 0.0;
};

/// child = fn(parents), probability 1 on the function value, 0 elsewhere.
class DeterministicCpd : public Cpd {
 public:
  DeterministicCpd(int child_cardinality, std::vector<int> parent_cardinalities,
                   std::function<int(std::span<const int>)> fn);

  int child_cardinality() const override { return child_card_; }
  const std::vector<int>& parent_cardinalities() const override { return parent_cards_; }

  double prob(int child_state, std::span<const int> parent_states) const override;

 private:
  int child_card_;
  std::vector<int> parent_cards_;
  std::function<int(std::span<const int>)> fn_;
};

/// Explicitly specified table (for priors or hand-built examples). Rows are
/// parent configurations in row-major parent order; each row must sum to 1.
class FixedCpd : public Cpd {
 public:
  FixedCpd(int child_cardinality, std::vector<int> parent_cardinalities,
           std::vector<double> table);

  int child_cardinality() const override { return child_card_; }
  const std::vector<int>& parent_cardinalities() const override { return parent_cards_; }

  double prob(int child_state, std::span<const int> parent_states) const override;

 private:
  int child_card_;
  std::vector<int> parent_cards_;
  std::vector<double> table_;
};

}  // namespace slj::bayes
