#include "bayes/forward.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace slj::bayes {
namespace {

void check_distribution(std::span<const double> dist, const char* what) {
  double sum = 0.0;
  for (const double p : dist) {
    if (p < 0.0) throw std::invalid_argument(std::string(what) + " has negative probability");
    sum += p;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument(std::string(what) + " does not sum to 1");
  }
}

/// exp(x - max finite x) per state; -inf maps to 0. The shift is exact
/// under renormalization and keeps the largest term at 1, so no spread of
/// log scores can underflow everywhere at once.
std::vector<double> exp_max_shifted(std::span<const double> log_likelihood) {
  double shift = -std::numeric_limits<double>::infinity();
  for (const double l : log_likelihood) shift = std::max(shift, l);
  std::vector<double> out(log_likelihood.size(), 0.0);
  if (shift == -std::numeric_limits<double>::infinity()) return out;  // all impossible
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (log_likelihood[i] != -std::numeric_limits<double>::infinity()) {
      out[i] = std::exp(log_likelihood[i] - shift);
    }
  }
  return out;
}

}  // namespace

ForwardFilter::ForwardFilter(std::vector<std::vector<double>> transition,
                             std::vector<double> prior)
    : transition_(std::move(transition)), prior_(std::move(prior)), belief_(prior_) {
  if (prior_.empty()) throw std::invalid_argument("empty prior");
  check_distribution(prior_, "prior");
  if (transition_.size() != prior_.size()) {
    throw std::invalid_argument("transition row count != state count");
  }
  for (const auto& row : transition_) {
    if (row.size() != prior_.size()) {
      throw std::invalid_argument("transition row size != state count");
    }
    check_distribution(row, "transition row");
  }
}

ForwardFilter::ForwardFilter(UncheckedTag, std::vector<std::vector<double>> transition,
                             std::vector<double> prior)
    : transition_(std::move(transition)), prior_(std::move(prior)), belief_(prior_) {}

ForwardFilter ForwardFilter::from_potentials(std::vector<std::vector<double>> weights,
                                             std::vector<double> prior) {
  if (prior.empty()) throw std::invalid_argument("empty prior");
  if (weights.size() != prior.size()) {
    throw std::invalid_argument("transition row count != state count");
  }
  double prior_sum = 0.0;
  for (const double p : prior) {
    if (p < 0.0) throw std::invalid_argument("prior has negative probability");
    prior_sum += p;
  }
  if (prior_sum <= 0.0) throw std::invalid_argument("prior has no mass");
  for (double& p : prior) p /= prior_sum;
  for (const auto& row : weights) {
    if (row.size() != prior.size()) {
      throw std::invalid_argument("transition row size != state count");
    }
    for (const double w : row) {
      if (w < 0.0) throw std::invalid_argument("transition weight is negative");
    }
  }
  return ForwardFilter(UncheckedTag{}, std::move(weights), std::move(prior));
}

void ForwardFilter::reset() { belief_ = prior_; }

const std::vector<double>& ForwardFilter::apply_likelihood(std::vector<double> predicted,
                                                           std::span<const double> likelihood) {
  const std::size_t n = predicted.size();
  std::vector<double> weighted(n);
  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    weighted[j] = predicted[j] * likelihood[j];
    total += weighted[j];
  }
  if (total > 0.0) {
    for (double& p : weighted) p /= total;
    belief_ = std::move(weighted);
    return belief_;
  }
  // Degenerate observation: keep the prediction (renormalized without
  // likelihood) so the filter never collapses to NaN.
  double ft = 0.0;
  for (const double p : predicted) ft += p;
  if (ft > 0.0) {
    for (double& p : predicted) p /= ft;
    belief_ = std::move(predicted);
  }
  return belief_;
}

const std::vector<double>& ForwardFilter::step(std::span<const double> likelihood) {
  if (likelihood.size() != belief_.size()) {
    throw std::invalid_argument("likelihood size != state count");
  }
  const std::size_t n = belief_.size();
  std::vector<double> predicted(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double b = belief_[i];
    if (b == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      predicted[j] += b * transition_[i][j];
    }
  }
  return apply_likelihood(std::move(predicted), likelihood);
}

const std::vector<double>& ForwardFilter::step_log(std::span<const double> log_likelihood) {
  if (log_likelihood.size() != belief_.size()) {
    throw std::invalid_argument("likelihood size != state count");
  }
  return step(exp_max_shifted(log_likelihood));
}

const std::vector<double>& ForwardFilter::weight_log(std::span<const double> log_likelihood) {
  if (log_likelihood.size() != belief_.size()) {
    throw std::invalid_argument("likelihood size != state count");
  }
  return apply_likelihood(belief_, exp_max_shifted(log_likelihood));
}

int ForwardFilter::map_state() const {
  return static_cast<int>(
      std::max_element(belief_.begin(), belief_.end()) - belief_.begin());
}

}  // namespace slj::bayes
