#include "bayes/forward.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slj::bayes {
namespace {

void check_distribution(std::span<const double> dist, const char* what) {
  double sum = 0.0;
  for (const double p : dist) {
    if (p < 0.0) throw std::invalid_argument(std::string(what) + " has negative probability");
    sum += p;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument(std::string(what) + " does not sum to 1");
  }
}

}  // namespace

ForwardFilter::ForwardFilter(std::vector<std::vector<double>> transition,
                             std::vector<double> prior)
    : transition_(std::move(transition)), prior_(std::move(prior)), belief_(prior_) {
  if (prior_.empty()) throw std::invalid_argument("empty prior");
  check_distribution(prior_, "prior");
  if (transition_.size() != prior_.size()) {
    throw std::invalid_argument("transition row count != state count");
  }
  for (const auto& row : transition_) {
    if (row.size() != prior_.size()) {
      throw std::invalid_argument("transition row size != state count");
    }
    check_distribution(row, "transition row");
  }
}

void ForwardFilter::reset() { belief_ = prior_; }

const std::vector<double>& ForwardFilter::step(std::span<const double> likelihood) {
  if (likelihood.size() != belief_.size()) {
    throw std::invalid_argument("likelihood size != state count");
  }
  const std::size_t n = belief_.size();
  std::vector<double> predicted(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double b = belief_[i];
    if (b == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      predicted[j] += b * transition_[i][j];
    }
  }
  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    predicted[j] *= likelihood[j];
    total += predicted[j];
  }
  if (total > 0.0) {
    for (double& p : predicted) p /= total;
    belief_ = std::move(predicted);
  } else {
    // Degenerate observation: keep the prediction (renormalized without
    // likelihood) so the filter never collapses to NaN.
    std::vector<double> fallback(n, 0.0);
    double ft = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) fallback[j] += belief_[i] * transition_[i][j];
    }
    for (const double p : fallback) ft += p;
    if (ft > 0.0) {
      for (double& p : fallback) p /= ft;
      belief_ = std::move(fallback);
    }
  }
  return belief_;
}

int ForwardFilter::map_state() const {
  return static_cast<int>(
      std::max_element(belief_.begin(), belief_.end()) - belief_.begin());
}

}  // namespace slj::bayes
