// Qualitative training — learning the observation network's structure from
// data. The paper distinguishes "qualitative training [which] concerns the
// network structure of the model and quantitative training [which]
// determines the specific conditional probabilities" (Sec. 4) but fixes its
// structure by hand; this module implements the classic data-driven
// counterpart: Tree-Augmented Naive Bayes (Friedman et al.), a Chow–Liu
// maximum spanning tree over class-conditional mutual information that
// allows each feature one extra feature parent.
#pragma once

#include <span>
#include <vector>

namespace slj::bayes {

/// One training sample for structure learning.
struct TanSample {
  int class_label = 0;
  std::vector<int> features;
};

/// Class-conditional mutual information I(X_i ; X_j | C) estimated from the
/// samples with add-alpha smoothing. Symmetric, non-negative.
double conditional_mutual_information(std::span<const TanSample> samples, int i, int j,
                                      const std::vector<int>& feature_cards, int class_card,
                                      double alpha = 0.5);

/// Learns the TAN tree: returns parent feature index per feature (-1 for
/// the tree root, which keeps only the class parent). Ties and isolated
/// features degrade gracefully to -1. Throws on inconsistent inputs.
std::vector<int> learn_tan_structure(std::span<const TanSample> samples,
                                     const std::vector<int>& feature_cards, int class_card,
                                     double alpha = 0.5);

}  // namespace slj::bayes
