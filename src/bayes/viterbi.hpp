// Viterbi decoding for discrete state chains — the offline counterpart of
// ForwardFilter. The paper's classifier commits to a point estimate per
// frame and lets errors propagate ("a misclassified frame will still affect
// the classification of its subsequent frames"); max-product decoding over
// the whole clip is the natural refinement the paper's Sec. 6 asks for.
//
// The chain is specified functionally so callers can impose structural
// constraints (the jump's monotone stage discipline) by returning -inf.
#pragma once

#include <functional>
#include <vector>

namespace slj::bayes {

/// Log-space Viterbi.
///
/// `num_states`     — size of the state space.
/// `steps`          — sequence length T.
/// `log_prior`      — log P(s_0) + log-likelihood of step 0 in state s.
/// `log_transition` — (t, from, to) → log P(s_t = to | s_{t-1} = from);
///                    may depend on t so per-frame evidence can gate moves.
/// `log_emission`   — (t, s) → log-likelihood of the observation at t in s.
///
/// Returns the most probable state path (empty if steps == 0). States with
/// no finite-probability path fall back to the best available predecessor.
std::vector<int> viterbi_decode(
    int num_states, int steps, const std::function<double(int)>& log_prior,
    const std::function<double(int, int, int)>& log_transition,
    const std::function<double(int, int)>& log_emission);

}  // namespace slj::bayes
