#include "bayes/cpd.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace slj::bayes {
namespace {

std::size_t config_count(const std::vector<int>& cards) {
  std::size_t n = 1;
  for (const int c : cards) {
    if (c < 1) throw std::invalid_argument("cardinality must be >= 1");
    n *= static_cast<std::size_t>(c);
  }
  return n;
}

std::size_t mixed_radix_index(std::span<const int> states, const std::vector<int>& cards) {
  if (states.size() != cards.size()) {
    throw std::invalid_argument("parent state count mismatch");
  }
  std::size_t idx = 0;
  for (std::size_t i = 0; i < cards.size(); ++i) {
    if (states[i] < 0 || states[i] >= cards[i]) {
      throw std::out_of_range("parent state out of range");
    }
    idx = idx * static_cast<std::size_t>(cards[i]) + static_cast<std::size_t>(states[i]);
  }
  return idx;
}

}  // namespace

TabularCpd::TabularCpd(int child_cardinality, std::vector<int> parent_cardinalities, double alpha)
    : child_card_(child_cardinality), parent_cards_(std::move(parent_cardinalities)), alpha_(alpha) {
  if (child_card_ < 1) throw std::invalid_argument("child cardinality must be >= 1");
  if (alpha_ < 0.0) throw std::invalid_argument("alpha must be >= 0");
  const std::size_t rows = config_count(parent_cards_);
  counts_.assign(rows * static_cast<std::size_t>(child_card_), 0.0);
  row_total_.assign(rows, 0.0);
}

std::size_t TabularCpd::row_index(std::span<const int> parent_states) const {
  return mixed_radix_index(parent_states, parent_cards_);
}

std::size_t TabularCpd::cell_index(int child_state, std::span<const int> parent_states) const {
  if (child_state < 0 || child_state >= child_card_) {
    throw std::out_of_range("child state out of range");
  }
  return row_index(parent_states) * static_cast<std::size_t>(child_card_) +
         static_cast<std::size_t>(child_state);
}

void TabularCpd::observe(int child_state, std::span<const int> parent_states, double weight) {
  counts_[cell_index(child_state, parent_states)] += weight;
  row_total_[row_index(parent_states)] += weight;
  total_weight_ += weight;
}

void TabularCpd::load_counts(std::vector<double> counts) {
  if (counts.size() != counts_.size()) {
    throw std::invalid_argument("load_counts: size mismatch");
  }
  for (const double c : counts) {
    if (c < 0.0) throw std::invalid_argument("load_counts: negative count");
  }
  counts_ = std::move(counts);
  total_weight_ = 0.0;
  for (std::size_t r = 0; r < row_total_.size(); ++r) {
    double row = 0.0;
    for (int c = 0; c < child_card_; ++c) {
      row += counts_[r * static_cast<std::size_t>(child_card_) + static_cast<std::size_t>(c)];
    }
    row_total_[r] = row;
    total_weight_ += row;
  }
}

void TabularCpd::clear() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  std::fill(row_total_.begin(), row_total_.end(), 0.0);
  total_weight_ = 0.0;
}

double TabularCpd::prob(int child_state, std::span<const int> parent_states) const {
  const std::size_t cell = cell_index(child_state, parent_states);
  const double row = row_total_[row_index(parent_states)];
  const double numer = counts_[cell] + alpha_;
  const double denom = row + alpha_ * child_card_;
  if (denom <= 0.0) {
    // alpha = 0 and no data: fall back to uniform rather than 0/0.
    return 1.0 / child_card_;
  }
  return numer / denom;
}

double TabularCpd::count(int child_state, std::span<const int> parent_states) const {
  return counts_[cell_index(child_state, parent_states)];
}

DeterministicCpd::DeterministicCpd(int child_cardinality, std::vector<int> parent_cardinalities,
                                   std::function<int(std::span<const int>)> fn)
    : child_card_(child_cardinality),
      parent_cards_(std::move(parent_cardinalities)),
      fn_(std::move(fn)) {
  if (child_card_ < 1) throw std::invalid_argument("child cardinality must be >= 1");
  if (!fn_) throw std::invalid_argument("deterministic CPD needs a function");
}

double DeterministicCpd::prob(int child_state, std::span<const int> parent_states) const {
  if (parent_states.size() != parent_cards_.size()) {
    throw std::invalid_argument("parent state count mismatch");
  }
  const int value = fn_(parent_states);
  return child_state == value ? 1.0 : 0.0;
}

FixedCpd::FixedCpd(int child_cardinality, std::vector<int> parent_cardinalities,
                   std::vector<double> table)
    : child_card_(child_cardinality),
      parent_cards_(std::move(parent_cardinalities)),
      table_(std::move(table)) {
  const std::size_t rows = config_count(parent_cards_);
  if (table_.size() != rows * static_cast<std::size_t>(child_card_)) {
    throw std::invalid_argument("FixedCpd table size mismatch");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (int c = 0; c < child_card_; ++c) {
      const double p = table_[r * static_cast<std::size_t>(child_card_) + c];
      if (p < 0.0) throw std::invalid_argument("FixedCpd has negative probability");
      sum += p;
    }
    if (std::abs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument("FixedCpd row does not sum to 1");
    }
  }
}

double FixedCpd::prob(int child_state, std::span<const int> parent_states) const {
  if (child_state < 0 || child_state >= child_card_) {
    throw std::out_of_range("child state out of range");
  }
  const std::size_t row = mixed_radix_index(parent_states, parent_cards_);
  return table_[row * static_cast<std::size_t>(child_card_) + static_cast<std::size_t>(child_state)];
}

}  // namespace slj::bayes
