// Discrete forward filtering over a Markov chain — the temporal backbone of
// the DBN (Fig. 7b). The paper propagates a *point estimate* of the
// previous pose; this class implements full belief propagation, used by the
// classifier's `TemporalMode::kFiltering` extension and compared against
// the paper's point-estimate rule in the ablation benches.
#pragma once

#include <span>
#include <vector>

namespace slj::bayes {

class ForwardFilter {
 public:
  /// `transition[i][j]` = P(state_t = j | state_{t-1} = i); rows must be
  /// distributions. `prior` is the t=0 belief.
  ForwardFilter(std::vector<std::vector<double>> transition, std::vector<double> prior);

  std::size_t state_count() const { return prior_.size(); }

  /// Resets the belief to the prior.
  void reset();

  /// Advances one step: predict with the transition model, weight by the
  /// per-state observation likelihood, renormalize. Returns the posterior
  /// belief. A zero-likelihood-everywhere observation keeps the prediction.
  const std::vector<double>& step(std::span<const double> likelihood);

  const std::vector<double>& belief() const { return belief_; }

  /// Index of the most probable state.
  int map_state() const;

 private:
  std::vector<std::vector<double>> transition_;
  std::vector<double> prior_;
  std::vector<double> belief_;
};

}  // namespace slj::bayes
