// Discrete forward filtering over a Markov chain — the temporal backbone of
// the DBN (Fig. 7b). The paper propagates a *point estimate* of the
// previous pose; this class implements full belief propagation, used by the
// classifier's `TemporalMode::kFiltering` extension and compared against
// the paper's point-estimate rule in the ablation benches.
#pragma once

#include <span>
#include <vector>

namespace slj::bayes {

class ForwardFilter {
 public:
  /// `transition[i][j]` = P(state_t = j | state_{t-1} = i); rows must be
  /// distributions. `prior` is the t=0 belief.
  ForwardFilter(std::vector<std::vector<double>> transition, std::vector<double> prior);

  /// Potential-matrix variant: rows are non-negative weights that need not
  /// sum to 1 (e.g. hard-gated transition products). Sound for filtering
  /// because the belief is renormalized globally after every step. `prior`
  /// is normalized here; it must have positive mass.
  static ForwardFilter from_potentials(std::vector<std::vector<double>> weights,
                                       std::vector<double> prior);

  std::size_t state_count() const { return prior_.size(); }

  /// Resets the belief to the prior.
  void reset();

  /// Advances one step: predict with the transition model, weight by the
  /// per-state observation likelihood, renormalize. Returns the posterior
  /// belief. A zero-likelihood-everywhere observation keeps the prediction.
  const std::vector<double>& step(std::span<const double> likelihood);

  /// step() with the observation given as log-likelihoods. The maximum
  /// finite entry is subtracted before exponentiating (exact under the
  /// final renormalization), so heavily negative log-emissions — hundreds
  /// of nats below zero — cannot underflow the whole observation to zero
  /// and silently degrade the step into a predict-only update. -inf marks
  /// an impossible state.
  const std::vector<double>& step_log(std::span<const double> log_likelihood);

  /// Bayes update without a time step: weights the current belief by the
  /// observation (same max-log shift as step_log) and renormalizes. Used
  /// for the first frame, where the prior is conditioned on evidence
  /// directly instead of being pushed through the transition model.
  const std::vector<double>& weight_log(std::span<const double> log_likelihood);

  const std::vector<double>& belief() const { return belief_; }

  /// Index of the most probable state.
  int map_state() const;

 private:
  struct UncheckedTag {};
  ForwardFilter(UncheckedTag, std::vector<std::vector<double>> transition,
                std::vector<double> prior);

  const std::vector<double>& apply_likelihood(std::vector<double> predicted,
                                              std::span<const double> likelihood);

  std::vector<std::vector<double>> transition_;
  std::vector<double> prior_;
  std::vector<double> belief_;
};

}  // namespace slj::bayes
