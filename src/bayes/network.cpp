#include "bayes/network.hpp"

#include <stdexcept>

namespace slj::bayes {

int Network::add_node(std::string name, int cardinality, std::vector<int> parents,
                      std::shared_ptr<Cpd> cpd) {
  if (cardinality < 1) throw std::invalid_argument("node cardinality must be >= 1");
  if (!cpd) throw std::invalid_argument("node needs a CPD");
  if (cpd->child_cardinality() != cardinality) {
    throw std::invalid_argument("CPD child cardinality mismatch for node " + name);
  }
  const std::vector<int>& cpd_parents = cpd->parent_cardinalities();
  if (cpd_parents.size() != parents.size()) {
    throw std::invalid_argument("CPD parent count mismatch for node " + name);
  }
  for (std::size_t i = 0; i < parents.size(); ++i) {
    const int p = parents[i];
    if (p < 0 || p >= node_count()) {
      throw std::invalid_argument("parent must be added before child (node " + name + ")");
    }
    if (cards_[static_cast<std::size_t>(p)] != cpd_parents[i]) {
      throw std::invalid_argument("CPD parent cardinality mismatch for node " + name);
    }
  }
  if (find(name).has_value()) {
    throw std::invalid_argument("duplicate node name " + name);
  }
  names_.push_back(std::move(name));
  cards_.push_back(cardinality);
  parents_.push_back(std::move(parents));
  cpds_.push_back(std::move(cpd));
  return node_count() - 1;
}

std::optional<int> Network::find(const std::string& name) const {
  for (int i = 0; i < node_count(); ++i) {
    if (names_[static_cast<std::size_t>(i)] == name) return i;
  }
  return std::nullopt;
}

std::vector<int> Network::parent_states_of(int id, std::span<const int> assignment) const {
  const std::vector<int>& ps = parents_[static_cast<std::size_t>(id)];
  std::vector<int> states;
  states.reserve(ps.size());
  for (const int p : ps) states.push_back(assignment[static_cast<std::size_t>(p)]);
  return states;
}

double Network::joint_prob(std::span<const int> full_assignment) const {
  if (static_cast<int>(full_assignment.size()) != node_count()) {
    throw std::invalid_argument("assignment size mismatch");
  }
  double p = 1.0;
  for (int id = 0; id < node_count(); ++id) {
    const int state = full_assignment[static_cast<std::size_t>(id)];
    if (state == kUnobserved) throw std::invalid_argument("joint_prob needs a full assignment");
    p *= cpds_[static_cast<std::size_t>(id)]->prob(state, parent_states_of(id, full_assignment));
    if (p == 0.0) return 0.0;
  }
  return p;
}

double Network::evidence_prob(const Assignment& evidence) const {
  if (static_cast<int>(evidence.size()) != node_count()) {
    throw std::invalid_argument("evidence size mismatch");
  }
  // Enumeration in topological order (== insertion order): recursively fix
  // each unobserved node and sum, multiplying CPD factors as we go.
  Assignment working = evidence;
  // Recursive lambda over node index.
  auto recurse = [&](auto&& self, int id) -> double {
    if (id == node_count()) return 1.0;
    const std::vector<int> parent_states = parent_states_of(id, working);
    const int observed = evidence[static_cast<std::size_t>(id)];
    if (observed != kUnobserved) {
      const double p =
          cpds_[static_cast<std::size_t>(id)]->prob(observed, parent_states);
      if (p == 0.0) return 0.0;
      working[static_cast<std::size_t>(id)] = observed;
      return p * self(self, id + 1);
    }
    double total = 0.0;
    for (int s = 0; s < cards_[static_cast<std::size_t>(id)]; ++s) {
      const double p = cpds_[static_cast<std::size_t>(id)]->prob(s, parent_states);
      if (p == 0.0) continue;
      working[static_cast<std::size_t>(id)] = s;
      total += p * self(self, id + 1);
    }
    working[static_cast<std::size_t>(id)] = kUnobserved;
    return total;
  };
  return recurse(recurse, 0);
}

std::vector<double> Network::posterior(int query, Assignment evidence) const {
  if (query < 0 || query >= node_count()) throw std::out_of_range("query node out of range");
  if (static_cast<int>(evidence.size()) != node_count()) {
    throw std::invalid_argument("evidence size mismatch");
  }
  const int card = cards_[static_cast<std::size_t>(query)];
  std::vector<double> post(static_cast<std::size_t>(card), 0.0);
  double total = 0.0;
  for (int s = 0; s < card; ++s) {
    evidence[static_cast<std::size_t>(query)] = s;
    const double p = evidence_prob(evidence);
    post[static_cast<std::size_t>(s)] = p;
    total += p;
  }
  if (total <= 0.0) {
    // Evidence impossible under the model: fall back to uniform.
    for (double& p : post) p = 1.0 / card;
    return post;
  }
  for (double& p : post) p /= total;
  return post;
}

void Network::observe(std::span<const int> full_assignment, double weight) {
  if (static_cast<int>(full_assignment.size()) != node_count()) {
    throw std::invalid_argument("assignment size mismatch");
  }
  for (int id = 0; id < node_count(); ++id) {
    auto* tab = dynamic_cast<TabularCpd*>(cpds_[static_cast<std::size_t>(id)].get());
    if (tab == nullptr) continue;  // deterministic / fixed nodes are not trained
    const int state = full_assignment[static_cast<std::size_t>(id)];
    if (state == kUnobserved) throw std::invalid_argument("observe needs a full assignment");
    tab->observe(state, parent_states_of(id, full_assignment), weight);
  }
}

void Network::fit(std::span<const Assignment> rows) {
  for (int id = 0; id < node_count(); ++id) {
    auto* tab = dynamic_cast<TabularCpd*>(cpds_[static_cast<std::size_t>(id)].get());
    if (tab != nullptr) tab->clear();
  }
  for (const Assignment& row : rows) observe(row);
}

std::string Network::to_dot(const std::string& graph_name) const {
  std::string dot = "digraph " + graph_name + " {\n  rankdir=TB;\n";
  for (int id = 0; id < node_count(); ++id) {
    dot += "  n" + std::to_string(id) + " [label=\"" + names_[static_cast<std::size_t>(id)] +
           " (" + std::to_string(cards_[static_cast<std::size_t>(id)]) + ")\"];\n";
  }
  for (int id = 0; id < node_count(); ++id) {
    for (const int p : parents_[static_cast<std::size_t>(id)]) {
      dot += "  n" + std::to_string(p) + " -> n" + std::to_string(id) + ";\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace slj::bayes
