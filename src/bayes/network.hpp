// Discrete Bayesian network: directed acyclic graph of discrete variables
// with one CPD per node, exact inference by enumeration. Networks in this
// system are small (the per-pose BN of Fig. 7 has 14 nodes), so enumeration
// over the unobserved variables is the reference-exact choice.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bayes/cpd.hpp"

namespace slj::bayes {

/// Partial assignment: state per node id, kUnobserved where unknown.
inline constexpr int kUnobserved = -1;
using Assignment = std::vector<int>;

class Network {
 public:
  /// Adds a node. Parents must already exist (this enforces acyclicity by
  /// construction and gives a ready topological order). The CPD's parent
  /// cardinalities must match the parents' cardinalities in order.
  int add_node(std::string name, int cardinality, std::vector<int> parents,
               std::shared_ptr<Cpd> cpd);

  int node_count() const { return static_cast<int>(names_.size()); }
  const std::string& name(int id) const { return names_[static_cast<std::size_t>(id)]; }
  int cardinality(int id) const { return cards_[static_cast<std::size_t>(id)]; }
  const std::vector<int>& parents(int id) const { return parents_[static_cast<std::size_t>(id)]; }
  const Cpd& cpd(int id) const { return *cpds_[static_cast<std::size_t>(id)]; }
  Cpd& cpd(int id) { return *cpds_[static_cast<std::size_t>(id)]; }

  /// Node id by name; nullopt if absent.
  std::optional<int> find(const std::string& name) const;

  /// Probability of one complete assignment (every node observed).
  double joint_prob(std::span<const int> full_assignment) const;

  /// P(evidence): marginal probability of a partial assignment, summing
  /// over all unobserved nodes. Cost is the product of the unobserved
  /// cardinalities.
  double evidence_prob(const Assignment& evidence) const;

  /// Posterior distribution of `query` given evidence (evidence for the
  /// query node itself is ignored). Returns a normalized vector, uniform if
  /// the evidence has probability zero.
  std::vector<double> posterior(int query, Assignment evidence) const;

  /// Trains every TabularCpd node from complete data rows (each row: state
  /// per node). Rows must be fully observed.
  void fit(std::span<const Assignment> rows);

  /// Accumulates a single fully-observed row into the tabular CPDs.
  void observe(std::span<const int> full_assignment, double weight = 1.0);

  /// GraphViz structure dump (Fig. 7-style).
  std::string to_dot(const std::string& graph_name = "bn") const;

 private:
  std::vector<int> parent_states_of(int id, std::span<const int> assignment) const;

  std::vector<std::string> names_;
  std::vector<int> cards_;
  std::vector<std::vector<int>> parents_;
  std::vector<std::shared_ptr<Cpd>> cpds_;
};

}  // namespace slj::bayes
