#include "bayes/structure.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace slj::bayes {
namespace {

void validate(std::span<const TanSample> samples, const std::vector<int>& feature_cards,
              int class_card) {
  if (class_card < 1) throw std::invalid_argument("class cardinality must be >= 1");
  for (const TanSample& s : samples) {
    if (s.features.size() != feature_cards.size()) {
      throw std::invalid_argument("sample feature count mismatch");
    }
    if (s.class_label < 0 || s.class_label >= class_card) {
      throw std::invalid_argument("class label out of range");
    }
    for (std::size_t f = 0; f < s.features.size(); ++f) {
      if (s.features[f] < 0 || s.features[f] >= feature_cards[f]) {
        throw std::invalid_argument("feature value out of range");
      }
    }
  }
}

}  // namespace

double conditional_mutual_information(std::span<const TanSample> samples, int i, int j,
                                      const std::vector<int>& feature_cards, int class_card,
                                      double alpha) {
  const int ci = feature_cards[static_cast<std::size_t>(i)];
  const int cj = feature_cards[static_cast<std::size_t>(j)];
  // Smoothed joint counts n(xi, xj, c).
  std::vector<double> joint(static_cast<std::size_t>(ci) * cj * class_card, alpha);
  double total = alpha * static_cast<double>(joint.size());
  for (const TanSample& s : samples) {
    const int xi = s.features[static_cast<std::size_t>(i)];
    const int xj = s.features[static_cast<std::size_t>(j)];
    joint[(static_cast<std::size_t>(s.class_label) * ci + static_cast<std::size_t>(xi)) * cj +
          static_cast<std::size_t>(xj)] += 1.0;
    total += 1.0;
  }

  double mi = 0.0;
  for (int c = 0; c < class_card; ++c) {
    // Marginals within class c.
    double pc = 0.0;
    std::vector<double> pi(static_cast<std::size_t>(ci), 0.0);
    std::vector<double> pj(static_cast<std::size_t>(cj), 0.0);
    for (int a = 0; a < ci; ++a) {
      for (int b = 0; b < cj; ++b) {
        const double p =
            joint[(static_cast<std::size_t>(c) * ci + static_cast<std::size_t>(a)) * cj +
                  static_cast<std::size_t>(b)] /
            total;
        pc += p;
        pi[static_cast<std::size_t>(a)] += p;
        pj[static_cast<std::size_t>(b)] += p;
      }
    }
    if (pc <= 0.0) continue;
    for (int a = 0; a < ci; ++a) {
      for (int b = 0; b < cj; ++b) {
        const double pabc =
            joint[(static_cast<std::size_t>(c) * ci + static_cast<std::size_t>(a)) * cj +
                  static_cast<std::size_t>(b)] /
            total;
        if (pabc <= 0.0) continue;
        // I = sum p(a,b,c) log [ p(a,b|c) / (p(a|c) p(b|c)) ]
        const double ratio = (pabc / pc) / ((pi[static_cast<std::size_t>(a)] / pc) *
                                            (pj[static_cast<std::size_t>(b)] / pc));
        mi += pabc * std::log(ratio);
      }
    }
  }
  return std::max(mi, 0.0);
}

std::vector<int> learn_tan_structure(std::span<const TanSample> samples,
                                     const std::vector<int>& feature_cards, int class_card,
                                     double alpha) {
  validate(samples, feature_cards, class_card);
  const int n = static_cast<int>(feature_cards.size());
  std::vector<int> parents(static_cast<std::size_t>(n), -1);
  if (n <= 1 || samples.empty()) return parents;

  // All pairwise class-conditional MIs.
  struct WeightedEdge {
    double mi;
    int a, b;
  };
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.push_back(
          {conditional_mutual_information(samples, i, j, feature_cards, class_card, alpha), i,
           j});
    }
  }
  // Maximum spanning tree (Kruskal, ties by index for determinism).
  std::sort(edges.begin(), edges.end(), [](const WeightedEdge& l, const WeightedEdge& r) {
    if (l.mi != r.mi) return l.mi > r.mi;
    if (l.a != r.a) return l.a < r.a;
    return l.b < r.b;
  });
  std::vector<int> uf(static_cast<std::size_t>(n));
  std::iota(uf.begin(), uf.end(), 0);
  const auto find = [&](int v) {
    while (uf[static_cast<std::size_t>(v)] != v) {
      uf[static_cast<std::size_t>(v)] = uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(v)])];
      v = uf[static_cast<std::size_t>(v)];
    }
    return v;
  };
  std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(n));
  for (const WeightedEdge& e : edges) {
    const int ra = find(e.a);
    const int rb = find(e.b);
    if (ra == rb) continue;
    uf[static_cast<std::size_t>(ra)] = rb;
    adjacency[static_cast<std::size_t>(e.a)].push_back(e.b);
    adjacency[static_cast<std::size_t>(e.b)].push_back(e.a);
  }

  // Root the tree at feature 0; parents point toward the root.
  std::vector<int> stack{0};
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  visited[0] = true;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (const int v : adjacency[static_cast<std::size_t>(u)]) {
      if (visited[static_cast<std::size_t>(v)]) continue;
      visited[static_cast<std::size_t>(v)] = true;
      parents[static_cast<std::size_t>(v)] = u;
      stack.push_back(v);
    }
  }
  return parents;
}

}  // namespace slj::bayes
