#include "bayes/viterbi.hpp"

#include <algorithm>
#include <limits>

namespace slj::bayes {

std::vector<int> viterbi_decode(
    int num_states, int steps, const std::function<double(int)>& log_prior,
    const std::function<double(int, int, int)>& log_transition,
    const std::function<double(int, int)>& log_emission) {
  std::vector<int> path;
  if (steps <= 0 || num_states <= 0) return path;

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const auto idx = [num_states](int t, int s) {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(num_states) +
           static_cast<std::size_t>(s);
  };

  std::vector<double> score(static_cast<std::size_t>(steps) * num_states, kNegInf);
  std::vector<int> back(static_cast<std::size_t>(steps) * num_states, -1);

  for (int s = 0; s < num_states; ++s) {
    score[idx(0, s)] = log_prior(s) + log_emission(0, s);
  }

  for (int t = 1; t < steps; ++t) {
    for (int to = 0; to < num_states; ++to) {
      double best = kNegInf;
      int best_from = -1;
      for (int from = 0; from < num_states; ++from) {
        const double prev = score[idx(t - 1, from)];
        if (prev == kNegInf) continue;
        const double cand = prev + log_transition(t, from, to);
        if (cand > best) {
          best = cand;
          best_from = from;
        }
      }
      if (best_from >= 0) {
        score[idx(t, to)] = best + log_emission(t, to);
        back[idx(t, to)] = best_from;
      }
    }
    // Degenerate step: every state unreachable (evidence contradicts the
    // constraints). Restart the chain at this step rather than failing.
    bool any = false;
    for (int s = 0; s < num_states; ++s) {
      if (score[idx(t, s)] != kNegInf) {
        any = true;
        break;
      }
    }
    if (!any) {
      for (int s = 0; s < num_states; ++s) {
        score[idx(t, s)] = log_emission(t, s);
        back[idx(t, s)] = -1;
      }
    }
  }

  // Backtrack from the best terminal state.
  int cur = 0;
  double best_final = kNegInf;
  for (int s = 0; s < num_states; ++s) {
    if (score[idx(steps - 1, s)] > best_final) {
      best_final = score[idx(steps - 1, s)];
      cur = s;
    }
  }
  path.assign(static_cast<std::size_t>(steps), 0);
  for (int t = steps - 1; t >= 0; --t) {
    path[static_cast<std::size_t>(t)] = cur;
    const int prev = back[idx(t, cur)];
    if (t > 0) {
      // A restart (-1) re-anchors on the best state of the previous step.
      if (prev >= 0) {
        cur = prev;
      } else {
        double best = kNegInf;
        for (int s = 0; s < num_states; ++s) {
          if (score[idx(t - 1, s)] > best) {
            best = score[idx(t - 1, s)];
            cur = s;
          }
        }
      }
    }
  }
  return path;
}

}  // namespace slj::bayes
