// Zhang–Suen thinning — the paper's "Z-S algorithm" (Sec. 3, ref [6]).
//
// The classic two-sub-iteration peeling scheme: a border pixel P1 is deleted
// when
//   (a) 2 <= B(P1) <= 6            (B = count of foreground 8-neighbours)
//   (b) A(P1) == 1                 (A = 0→1 transitions in P2..P9,P2 order)
//   (c1) P2·P4·P6 == 0 and (d1) P4·P6·P8 == 0   — sub-iteration 1
//   (c2) P2·P4·P8 == 0 and (d2) P2·P6·P8 == 0   — sub-iteration 2
// Sub-iterations alternate until no pixel is deleted. The result is an
// 8-connected, one-pixel-wide skeleton that, as the paper notes, avoids the
// break-line problem but can leave loops, corners and redundant branches
// (handled by skelgraph).
#pragma once

#include "core/annotations.hpp"
#include "imaging/frame_workspace.hpp"
#include "imaging/image.hpp"

namespace slj::thin {

struct ThinningStats {
  int iterations = 0;        ///< full passes (pairs of sub-iterations)
  std::size_t removed = 0;   ///< pixels peeled in total
};

/// Thins `img` (0/1 mask) to a one-pixel-wide skeleton. `stats`, when given,
/// receives iteration telemetry for the perf benches.
BinaryImage zhang_suen_thin(const BinaryImage& img, ThinningStats* stats = nullptr);

/// Allocation-free fast path used by the per-frame pipeline: thins `img`
/// into `out` using the workspace's frontier scratch. Two optimisations over
/// zhang_suen_thin, neither changing a single output bit (the parity suite
/// pins this):
///  - interior pixels read their 3×3 ring with direct row-pointer loads
///    instead of at_or bounds checks (only the one-pixel border pays them);
///  - after the first full pass, a sub-iteration only revisits pixels whose
///    3×3 neighbourhood was touched by a deletion since that pixel was last
///    evaluated for that sub-iteration type. Any other pixel provably keeps
///    its previous (non-deletable) answer, so later passes cost O(frontier)
///    instead of O(W·H).
/// `out` must not alias `img`. Stats match zhang_suen_thin exactly.
SLJ_HOT_PATH void zhang_suen_thin_into(const BinaryImage& img, FrameWorkspace& ws, BinaryImage& out,
                          ThinningStats* stats = nullptr);

/// One full Zhang–Suen pass (both sub-iterations) in place. Returns pixels
/// removed. Exposed for tests pinning per-pass behaviour.
std::size_t zhang_suen_pass(BinaryImage& img);

/// Number of foreground neighbours of (x, y) — B(P1).
int neighbour_count(const BinaryImage& img, int x, int y);

/// Number of 0→1 transitions in the ordered ring P2..P9,P2 — A(P1).
int transition_count(const BinaryImage& img, int x, int y);

}  // namespace slj::thin
