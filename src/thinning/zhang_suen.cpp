#include "thinning/zhang_suen.hpp"

#include <array>
#include <vector>

namespace slj::thin {
namespace {

// Neighbour ring in Zhang–Suen order P2..P9 (clockwise from north). This is
// exactly kNeighbours8; restated here to make the P-indexing explicit.
constexpr std::array<PointI, 8> kRing = {{{0, -1},   // P2
                                          {1, -1},   // P3
                                          {1, 0},    // P4
                                          {1, 1},    // P5
                                          {0, 1},    // P6
                                          {-1, 1},   // P7
                                          {-1, 0},   // P8
                                          {-1, -1}}};// P9

std::array<std::uint8_t, 8> ring_values(const BinaryImage& img, int x, int y) {
  std::array<std::uint8_t, 8> p{};
  for (std::size_t i = 0; i < kRing.size(); ++i) {
    p[i] = img.at_or(x + kRing[i].x, y + kRing[i].y, 0) ? 1 : 0;
  }
  return p;
}

// One sub-iteration: collect deletions against the *current* image, then
// apply them all at once (the algorithm requires simultaneous deletion).
std::size_t sub_iteration(BinaryImage& img, bool first) {
  std::vector<PointI> to_delete;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (!img.at(x, y)) continue;
      const auto p = ring_values(img, x, y);
      int b = 0;
      for (const std::uint8_t v : p) b += v;
      if (b < 2 || b > 6) continue;
      int a = 0;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] == 0 && p[(i + 1) % p.size()] == 1) ++a;
      }
      if (a != 1) continue;
      // p[0]=P2, p[2]=P4, p[4]=P6, p[6]=P8.
      const bool cond_c = first ? (p[0] * p[2] * p[4] == 0) : (p[0] * p[2] * p[6] == 0);
      const bool cond_d = first ? (p[2] * p[4] * p[6] == 0) : (p[0] * p[4] * p[6] == 0);
      if (cond_c && cond_d) to_delete.push_back({x, y});
    }
  }
  for (const PointI& p : to_delete) img.at(p) = 0;
  return to_delete.size();
}

}  // namespace

std::size_t zhang_suen_pass(BinaryImage& img) {
  return sub_iteration(img, /*first=*/true) + sub_iteration(img, /*first=*/false);
}

BinaryImage zhang_suen_thin(const BinaryImage& img, ThinningStats* stats) {
  BinaryImage out = img;
  int iterations = 0;
  std::size_t removed_total = 0;
  while (true) {
    const std::size_t removed = zhang_suen_pass(out);
    ++iterations;
    removed_total += removed;
    if (removed == 0) break;
  }
  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->removed = removed_total;
  }
  return out;
}

int neighbour_count(const BinaryImage& img, int x, int y) {
  const auto p = ring_values(img, x, y);
  int b = 0;
  for (const std::uint8_t v : p) b += v;
  return b;
}

int transition_count(const BinaryImage& img, int x, int y) {
  const auto p = ring_values(img, x, y);
  int a = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0 && p[(i + 1) % p.size()] == 1) ++a;
  }
  return a;
}

}  // namespace slj::thin
