#include "thinning/zhang_suen.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/simd.hpp"

namespace slj::thin {
namespace {

// Neighbour ring in Zhang–Suen order P2..P9 (clockwise from north). This is
// exactly kNeighbours8; restated here to make the P-indexing explicit.
constexpr std::array<PointI, 8> kRing = {{{0, -1},   // P2
                                          {1, -1},   // P3
                                          {1, 0},    // P4
                                          {1, 1},    // P5
                                          {0, 1},    // P6
                                          {-1, 1},   // P7
                                          {-1, 0},   // P8
                                          {-1, -1}}};// P9

std::array<std::uint8_t, 8> ring_values(const BinaryImage& img, int x, int y) {
  std::array<std::uint8_t, 8> p{};
  for (std::size_t i = 0; i < kRing.size(); ++i) {
    p[i] = img.at_or(x + kRing[i].x, y + kRing[i].y, 0) ? 1 : 0;
  }
  return p;
}

// One sub-iteration: collect deletions against the *current* image, then
// apply them all at once (the algorithm requires simultaneous deletion).
std::size_t sub_iteration(BinaryImage& img, bool first) {
  std::vector<PointI> to_delete;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (!img.at(x, y)) continue;
      const auto p = ring_values(img, x, y);
      int b = 0;
      for (const std::uint8_t v : p) b += v;
      if (b < 2 || b > 6) continue;
      int a = 0;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] == 0 && p[(i + 1) % p.size()] == 1) ++a;
      }
      if (a != 1) continue;
      // p[0]=P2, p[2]=P4, p[4]=P6, p[6]=P8.
      const bool cond_c = first ? (p[0] * p[2] * p[4] == 0) : (p[0] * p[2] * p[6] == 0);
      const bool cond_d = first ? (p[2] * p[4] * p[6] == 0) : (p[0] * p[4] * p[6] == 0);
      if (cond_c && cond_d) to_delete.push_back({x, y});
    }
  }
  for (const PointI& p : to_delete) img.at(p) = 0;
  return to_delete.size();
}

// Zhang–Suen deletability of (x, y) against the current image. Interior
// pixels (the overwhelming majority) load their ring with three row pointers
// and no bounds checks; only the one-pixel border falls back to at_or.
// Same conditions, in the same order, as sub_iteration above.
bool deletable(const BinaryImage& img, int x, int y, bool first) {
  std::array<std::uint8_t, 8> p;
  const int w = img.width();
  const int h = img.height();
  if (x > 0 && y > 0 && x < w - 1 && y < h - 1) {
    const std::uint8_t* up = img.data().data() + static_cast<std::size_t>(y - 1) * w + x;
    const std::uint8_t* mid = up + w;
    const std::uint8_t* down = mid + w;
    p = {static_cast<std::uint8_t>(up[0] ? 1 : 0),    // P2
         static_cast<std::uint8_t>(up[1] ? 1 : 0),    // P3
         static_cast<std::uint8_t>(mid[1] ? 1 : 0),   // P4
         static_cast<std::uint8_t>(down[1] ? 1 : 0),  // P5
         static_cast<std::uint8_t>(down[0] ? 1 : 0),  // P6
         static_cast<std::uint8_t>(down[-1] ? 1 : 0), // P7
         static_cast<std::uint8_t>(mid[-1] ? 1 : 0),  // P8
         static_cast<std::uint8_t>(up[-1] ? 1 : 0)};  // P9
  } else {
    p = ring_values(img, x, y);
  }
  int b = 0;
  for (const std::uint8_t v : p) b += v;
  if (b < 2 || b > 6) return false;
  int a = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0 && p[(i + 1) % p.size()] == 1) ++a;
  }
  if (a != 1) return false;
  const bool cond_c = first ? (p[0] * p[2] * p[4] == 0) : (p[0] * p[2] * p[6] == 0);
  const bool cond_d = first ? (p[2] * p[4] * p[6] == 0) : (p[0] * p[4] * p[6] == 0);
  return cond_c && cond_d;
}

}  // namespace

SLJ_HOT_PATH void zhang_suen_thin_into(const BinaryImage& img, FrameWorkspace& ws, BinaryImage& out,
                          ThinningStats* stats) {
  out = img;  // vector copy-assignment: reuses out's buffer at steady state
  const int w = out.width();
  const int h = out.height();
  auto& cand_first = ws.thin_candidates_first;
  auto& cand_second = ws.thin_candidates_second;
  auto& eval = ws.thin_eval;
  auto& deletions = ws.thin_deletions;
  auto& marks = ws.thin_marks;
  cand_first.clear();
  cand_second.clear();
  eval.clear();
  marks.assign(out.size(), 0);
  std::uint8_t* data = out.data().data();

  // Applies the collected deletions simultaneously, then queues every pixel
  // of each deleted pixel's 3×3 neighbourhood for both sub-iteration types:
  // those are exactly the pixels whose answer can have changed.
  const auto apply_deletions = [&] {
    for (const std::uint32_t idx : deletions) data[idx] = 0;
    for (const std::uint32_t idx : deletions) {
      const int x = static_cast<int>(idx % static_cast<std::uint32_t>(w));
      const int y = static_cast<int>(idx / static_cast<std::uint32_t>(w));
      const int x0 = std::max(x - 1, 0), x1 = std::min(x + 1, w - 1);
      const int y0 = std::max(y - 1, 0), y1 = std::min(y + 1, h - 1);
      for (int ny = y0; ny <= y1; ++ny) {
        for (int nx = x0; nx <= x1; ++nx) {
          const std::uint32_t q = static_cast<std::uint32_t>(ny) * w + nx;
          if (!(marks[q] & 1u)) {
            marks[q] |= 1u;
            cand_first.push_back(q);
          }
          if (!(marks[q] & 2u)) {
            marks[q] |= 2u;
            cand_second.push_back(q);
          }
        }
      }
    }
  };

  // Full-image sub-iteration (first pass only). Background runs — most of a
  // silhouette frame — are skipped a vector block at a time; skipped pixels
  // are all zero, which can never be deletable.
  const auto full_sub = [&](bool first) {
    deletions.clear();
    for (int y = 0; y < h; ++y) {
      const std::size_t row = static_cast<std::size_t>(y) * w;
      std::size_t x = 0;
      const std::size_t wn = static_cast<std::size_t>(w);
      while (x < wn) {
        x += simd::find_nonzero<simd::Active>(data + row + x, wn - x);
        if (x >= wn) break;
        const std::size_t idx = row + x;
        if (deletable(out, static_cast<int>(x), y, first)) {
          deletions.push_back(static_cast<std::uint32_t>(idx));
        }
        ++x;
      }
    }
    apply_deletions();
    return deletions.size();
  };

  // Frontier sub-iteration: only revisit queued candidates.
  const auto frontier_sub = [&](bool first) {
    auto& cand = first ? cand_first : cand_second;
    const std::uint8_t bit = first ? 1u : 2u;
    eval.swap(cand);
    cand.clear();
    deletions.clear();
    for (const std::uint32_t idx : eval) {
      marks[idx] &= static_cast<std::uint8_t>(~bit);
      if (!data[idx]) continue;
      const int x = static_cast<int>(idx % static_cast<std::uint32_t>(w));
      const int y = static_cast<int>(idx / static_cast<std::uint32_t>(w));
      if (deletable(out, x, y, first)) deletions.push_back(idx);
    }
    apply_deletions();
    return deletions.size();
  };

  int iterations = 0;
  std::size_t removed_total = 0;
  bool full_scan = true;
  while (true) {
    const std::size_t removed = full_scan ? full_sub(true) + full_sub(false)
                                          : frontier_sub(true) + frontier_sub(false);
    full_scan = false;
    ++iterations;
    removed_total += removed;
    if (removed == 0) break;
  }
  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->removed = removed_total;
  }
}

std::size_t zhang_suen_pass(BinaryImage& img) {
  return sub_iteration(img, /*first=*/true) + sub_iteration(img, /*first=*/false);
}

BinaryImage zhang_suen_thin(const BinaryImage& img, ThinningStats* stats) {
  BinaryImage out = img;
  int iterations = 0;
  std::size_t removed_total = 0;
  while (true) {
    const std::size_t removed = zhang_suen_pass(out);
    ++iterations;
    removed_total += removed;
    if (removed == 0) break;
  }
  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->removed = removed_total;
  }
  return out;
}

int neighbour_count(const BinaryImage& img, int x, int y) {
  const auto p = ring_values(img, x, y);
  int b = 0;
  for (const std::uint8_t v : p) b += v;
  return b;
}

int transition_count(const BinaryImage& img, int x, int y) {
  const auto p = ring_values(img, x, y);
  int a = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0 && p[(i + 1) % p.size()] == 1) ++a;
  }
  return a;
}

}  // namespace slj::thin
