// Hierarchical profiler: scoped RAII timers aggregated per pipeline stage.
//
// The stage tree is static — one node per named phase of the live plane:
//
//   pass                     one ingest scheduler round
//   ├── drain                router drain (queue pops)
//   ├── tick                 StreamManager::tick_into (parallel analysis)
//   │   └── frame            one session's full per-frame work
//   │       ├── extract      background subtraction → silhouette
//   │       ├── thin         Zhang–Suen thinning
//   │       ├── skelgraph    graph build + loop cut + pruning + key points
//   │       ├── features     candidate enumeration + bottom row
//   │       └── decode       DBN / forward-filter pose decision + fault rules
//   └── deliver              per-session sink callbacks
//
// Cost model, in order of cheapness:
//   1. Compiled out (the default): SLJ_PROFILE_SCOPE expands to nothing.
//      Build with -DSLJ_ENABLE_PROFILER=ON (CMake) to compile the scopes in.
//   2. Compiled in, runtime-disabled: one relaxed atomic load per scope.
//   3. Compiled in, enabled: two steady_clock reads plus three relaxed
//      atomic adds per scope — a few tens of nanoseconds against a frame
//      pass that costs hundreds of microseconds.
//
// Aggregation is process-global and lock-free (relaxed atomics per stage),
// so worker lanes record concurrently without contending. snapshot() folds
// the counters into a plain struct that IngestRouter::snapshot() embeds in
// the IngestMetrics JSON — `sljtool serve`/`replay` print it live.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace slj::core {

/// Stages of the static profile tree, in report order.
enum class ProfileStage : std::uint8_t {
  kPass = 0,
  kDrain,
  kTick,
  kFrame,
  kExtract,
  kThin,
  kSkelGraph,
  kFeatures,
  kDecode,
  kDeliver,
};

inline constexpr std::size_t kProfileStageCount = 10;

const char* profile_stage_name(ProfileStage stage);

/// Parent stage in the static tree; kPass (the root) is its own parent.
ProfileStage profile_stage_parent(ProfileStage stage);

/// One aggregated stage row of a snapshot.
struct ProfileStageSnapshot {
  const char* stage = "";
  const char* parent = "";
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double avg_us = 0.0;
  double max_us = 0.0;
  /// total_ms over the parent stage's total_ms (1.0 for the root, 0.0 when
  /// the parent recorded nothing).
  double share_of_parent = 0.0;
};

struct ProfilerSnapshot {
  bool compiled = false;  ///< scopes compiled into this build
  bool enabled = false;   ///< runtime flag at snapshot time
  /// Stages with at least one call, in tree order.
  std::vector<ProfileStageSnapshot> stages;

  std::string to_json() const;
};

/// Process-global aggregation. The class itself is always compiled (tests
/// and tools can drive it directly); only the SLJ_PROFILE_SCOPE
/// instrumentation points are compile-time gated.
class Profiler {
 public:
  static Profiler& instance();

  /// True when this build compiled the pipeline instrumentation in.
  static constexpr bool compiled_in() {
#if defined(SLJ_PROFILER_ENABLED) && SLJ_PROFILER_ENABLED
    return true;
#else
    return false;
#endif
  }

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);  // slj-atomic: flag
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }  // slj-atomic: flag

  /// Adds one sample to a stage (worker lanes call this concurrently).
  void record(ProfileStage stage, std::uint64_t elapsed_ns);

  /// Folds the counters into a report (stages with zero calls are omitted).
  ProfilerSnapshot snapshot() const;

  /// Zeroes every stage (between bench phases / replay runs).
  void reset();

 private:
  Profiler() = default;

  struct StageCounters {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
  };

  /// Compiled-in builds profile by default — the "always-on" posture; the
  /// flag exists so benches can measure their own baseline.
  std::atomic<bool> enabled_{compiled_in()};
  std::array<StageCounters, kProfileStageCount> stages_{};
};

/// RAII sample: measures construction → destruction and records it against
/// `stage` when the profiler is enabled.
class ProfileScope {
 public:
  explicit ProfileScope(ProfileStage stage)
      : stage_(stage), armed_(Profiler::instance().enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~ProfileScope() {
    if (armed_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      Profiler::instance().record(
          stage_, static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileStage stage_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

// The instrumentation points compile to nothing unless the build opts in:
// the default build's hot path carries zero profiler cost (satellite guard:
// perf_micro is unchanged by this header).
#if defined(SLJ_PROFILER_ENABLED) && SLJ_PROFILER_ENABLED
#define SLJ_PROFILE_CONCAT_INNER(a, b) a##b
#define SLJ_PROFILE_CONCAT(a, b) SLJ_PROFILE_CONCAT_INNER(a, b)
#define SLJ_PROFILE_SCOPE(stage) \
  ::slj::core::ProfileScope SLJ_PROFILE_CONCAT(slj_profile_scope_, __LINE__)(stage)
#else
#define SLJ_PROFILE_SCOPE(stage) ((void)0)
#endif

}  // namespace slj::core
