// ClipEngine: batch clip processing on a worker pool. The per-frame vision
// pipeline (FramePipeline::process) is pure, so frames of a clip — and
// frames of *different* clips — can run concurrently; only the per-clip
// sequential state (GroundMonitor calibration, BlobTracker dynamics) is
// replayed in frame order afterwards. Results are stored by frame index, so
// the output is bit-identical to a serial FramePipeline loop regardless of
// worker count or scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/pipeline.hpp"
#include "detection/blob_tracker.hpp"
#include "imaging/band_executor.hpp"
#include "synth/dataset.hpp"

namespace slj::core {

/// Fixed-size pool of persistent worker threads driving index-space loops.
/// One parallel_for runs at a time (calls are serialized by the caller);
/// the calling thread participates, so a pool of size 1 still uses two lanes.
class WorkerPool {
 public:
  /// `workers` = 0 picks the hardware concurrency (at least 1).
  explicit WorkerPool(unsigned workers = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Worker threads owned by the pool (excluding the calling thread).
  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Runs fn(i) for every i in [0, count); blocks until all complete.
  /// If a task throws, the first exception is rethrown here after the
  /// whole index space has drained.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn)
      SLJ_EXCLUDES(mutex_);

  /// Lane-aware variant: fn(lane, i), where `lane` identifies the executing
  /// thread (0 = the calling thread, 1..size() = pool workers). Lanes let
  /// tasks address per-thread state — e.g. one FrameWorkspace per lane —
  /// without locking: a lane never runs two tasks concurrently.
  void parallel_for_lanes(std::size_t count,
                          const std::function<void(std::size_t, std::size_t)>& fn)
      SLJ_EXCLUDES(mutex_);

  /// Row-banded variant for intra-frame parallelism: runs
  /// fn(ctx, b, band_begin(rows, bands, b), band_begin(rows, bands, b+1))
  /// for every band b in [0, bands), spread across the pool; blocks until
  /// all bands complete. Raw pointer + context (no std::function), so a
  /// call is allocation-free — it is made several times per frame from
  /// SLJ_HOT_PATH kernels. Same batch protocol as parallel_for_lanes: one
  /// call at a time, first task exception rethrown after the drain.
  void parallel_rows(int rows, int bands, void* ctx, BandExecutor::RowFn fn)
      SLJ_EXCLUDES(mutex_);

 private:
  /// Raw task trampoline every batch dispatches through: a plain function
  /// pointer + context cell instead of a std::function, so hot callers
  /// never allocate. parallel_for_lanes wraps its std::function through it.
  using RawTask = void (*)(void* ctx, std::size_t lane, std::size_t index);

  void worker_loop(std::size_t lane) SLJ_EXCLUDES(mutex_);
  void run_tasks(RawTask task, void* ctx, std::size_t count, std::size_t lane)
      SLJ_EXCLUDES(mutex_);
  /// Publishes one batch (task/ctx/count), participates, drains, rethrows.
  void dispatch(std::size_t count, void* ctx, RawTask task) SLJ_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;
  slj::Mutex mutex_;
  slj::CondVar wake_;
  slj::CondVar done_;
  /// The pointer cells are guarded; the pointee context lives on the
  /// caller's stack, read outside the lock by design — dispatch() keeps it
  /// alive until every worker has drained the batch.
  RawTask task_ SLJ_GUARDED_BY(mutex_) = nullptr;
  void* task_ctx_ SLJ_GUARDED_BY(mutex_) = nullptr;
  std::size_t count_ SLJ_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> next_{0};
  /// Workers still inside the current batch.
  std::size_t active_ SLJ_GUARDED_BY(mutex_) = 0;
  /// Batch counter workers wake on.
  std::uint64_t generation_ SLJ_GUARDED_BY(mutex_) = 0;
  bool stop_ SLJ_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ SLJ_GUARDED_BY(mutex_);
};

/// BandExecutor backed by a WorkerPool: each frame's row bands dispatch as
/// one pool batch (WorkerPool::parallel_rows). Holding one of these does not
/// reserve the pool — the usual one-batch-at-a-time rule applies, so banded
/// frame processing must not run inside another parallel_for.
class PoolBandExecutor final : public BandExecutor {
 public:
  PoolBandExecutor(WorkerPool& pool, int bands)
      : pool_(&pool), bands_(bands > 1 ? bands : 1) {}

  int bands() const override { return bands_; }
  void run_rows(int rows, void* ctx, RowFn fn) override {
    pool_->parallel_rows(rows, bands_, ctx, fn);
  }

 private:
  WorkerPool* pool_;
  int bands_;
};

struct ClipEngineConfig {
  /// Worker threads; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Select the jumper blob with a BlobTracker instead of largest-component.
  /// Tracking is sequential within a clip, so frame-level parallelism is
  /// traded for clip-level parallelism in batch calls.
  bool use_tracker = false;
  detect::TrackerConfig tracker;
  /// GroundMonitor lift threshold (px) for the airborne flag.
  int lift_threshold_px = 3;
  /// Grounded frames the ground line is calibrated over (max of their
  /// bottom rows), guarding against one noisy first frame.
  int ground_calibration_frames = GroundMonitor::kDefaultCalibrationFrames;
  /// Row bands per frame (>= 1). With more than one band, single-clip
  /// processing walks frames serially and spreads each frame's segmentation
  /// rows across the pool instead — latency-optimal for one large frame,
  /// throughput-optimal stays frames-in-parallel (bands = 1). Banding and
  /// frame-parallelism cannot nest (one pool batch at a time), so batch
  /// (multi-clip) processing ignores this and stays frame-parallel. Output
  /// is bit-identical at any band count.
  int intra_frame_bands = 1;
};

/// Everything the engine derives from one clip: per-frame observations plus
/// the clip-level sequential state replayed over them.
struct ClipObservation {
  std::vector<FrameObservation> frames;
  std::vector<bool> airborne;     ///< GroundMonitor flag per frame
  int ground_row = -1;            ///< calibrated ground line (-1: never seen)
  std::size_t empty_frames = 0;   ///< frames with no silhouette
  std::size_t airborne_frames = 0;

  std::size_t frame_count() const { return frames.size(); }

  /// Per-frame candidate labellings in classifier_sequence() layout.
  std::vector<std::vector<pose::FeatureCandidate>> candidate_sets() const;
};

class ClipEngine {
 public:
  explicit ClipEngine(PipelineParams params = {}, ClipEngineConfig config = {});

  const ClipEngineConfig& config() const { return config_; }
  const PipelineParams& pipeline_params() const { return params_; }

  /// Total concurrent lanes (pool workers + the calling thread).
  unsigned lanes() const { return pool_.size() + 1; }

  /// Processes one raw clip (background plate + frames). Frames run in
  /// parallel unless the tracker is enabled (tracking is stateful in frame
  /// order).
  ClipObservation process(const RgbImage& background, const std::vector<RgbImage>& frames);

  /// Convenience overload for generated / loaded clips.
  ClipObservation process(const synth::Clip& clip);

  /// Batch mode: processes a whole set of clips, spreading work across the
  /// pool. Without a tracker the frame index space of all clips is
  /// flattened (no idle lanes at clip boundaries); with a tracker each clip
  /// is one sequential task and clips run concurrently.
  std::vector<ClipObservation> process(const std::vector<synth::Clip>& clips);

 private:
  /// Replays the clip-level sequential state over per-frame results.
  ClipObservation aggregate(std::vector<FrameObservation> frames) const;
  ClipObservation process_serial_tracked(const RgbImage& background,
                                         const std::vector<RgbImage>& frames, FrameWorkspace& ws,
                                         BandExecutor* exec) const;

  PipelineParams params_;
  ClipEngineConfig config_;
  WorkerPool pool_;
  /// One workspace per lane (pool workers + calling thread); lane l of a
  /// parallel_for_lanes batch owns workspaces_[l] for the batch's duration,
  /// so steady-state frame processing allocates no full-frame buffers.
  std::vector<FrameWorkspace> workspaces_;
};

}  // namespace slj::core
