// ClipEngine: batch clip processing on a worker pool. The per-frame vision
// pipeline (FramePipeline::process) is pure, so frames of a clip — and
// frames of *different* clips — can run concurrently; only the per-clip
// sequential state (GroundMonitor calibration, BlobTracker dynamics) is
// replayed in frame order afterwards. Results are stored by frame index, so
// the output is bit-identical to a serial FramePipeline loop regardless of
// worker count or scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/pipeline.hpp"
#include "detection/blob_tracker.hpp"
#include "synth/dataset.hpp"

namespace slj::core {

/// Fixed-size pool of persistent worker threads driving index-space loops.
/// One parallel_for runs at a time (calls are serialized by the caller);
/// the calling thread participates, so a pool of size 1 still uses two lanes.
class WorkerPool {
 public:
  /// `workers` = 0 picks the hardware concurrency (at least 1).
  explicit WorkerPool(unsigned workers = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Worker threads owned by the pool (excluding the calling thread).
  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Runs fn(i) for every i in [0, count); blocks until all complete.
  /// If a task throws, the first exception is rethrown here after the
  /// whole index space has drained.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn)
      SLJ_EXCLUDES(mutex_);

  /// Lane-aware variant: fn(lane, i), where `lane` identifies the executing
  /// thread (0 = the calling thread, 1..size() = pool workers). Lanes let
  /// tasks address per-thread state — e.g. one FrameWorkspace per lane —
  /// without locking: a lane never runs two tasks concurrently.
  void parallel_for_lanes(std::size_t count,
                          const std::function<void(std::size_t, std::size_t)>& fn)
      SLJ_EXCLUDES(mutex_);

 private:
  void worker_loop(std::size_t lane) SLJ_EXCLUDES(mutex_);
  void run_tasks(const std::function<void(std::size_t, std::size_t)>& fn, std::size_t count,
                 std::size_t lane) SLJ_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;
  slj::Mutex mutex_;
  slj::CondVar wake_;
  slj::CondVar done_;
  /// The pointer cell is guarded; the pointee is the caller's function
  /// object, read outside the lock by design — parallel_for_lanes keeps it
  /// alive until every worker has drained the batch.
  const std::function<void(std::size_t, std::size_t)>* fn_ SLJ_GUARDED_BY(mutex_) = nullptr;
  std::size_t count_ SLJ_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> next_{0};
  /// Workers still inside the current batch.
  std::size_t active_ SLJ_GUARDED_BY(mutex_) = 0;
  /// Batch counter workers wake on.
  std::uint64_t generation_ SLJ_GUARDED_BY(mutex_) = 0;
  bool stop_ SLJ_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ SLJ_GUARDED_BY(mutex_);
};

struct ClipEngineConfig {
  /// Worker threads; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Select the jumper blob with a BlobTracker instead of largest-component.
  /// Tracking is sequential within a clip, so frame-level parallelism is
  /// traded for clip-level parallelism in batch calls.
  bool use_tracker = false;
  detect::TrackerConfig tracker;
  /// GroundMonitor lift threshold (px) for the airborne flag.
  int lift_threshold_px = 3;
  /// Grounded frames the ground line is calibrated over (max of their
  /// bottom rows), guarding against one noisy first frame.
  int ground_calibration_frames = GroundMonitor::kDefaultCalibrationFrames;
};

/// Everything the engine derives from one clip: per-frame observations plus
/// the clip-level sequential state replayed over them.
struct ClipObservation {
  std::vector<FrameObservation> frames;
  std::vector<bool> airborne;     ///< GroundMonitor flag per frame
  int ground_row = -1;            ///< calibrated ground line (-1: never seen)
  std::size_t empty_frames = 0;   ///< frames with no silhouette
  std::size_t airborne_frames = 0;

  std::size_t frame_count() const { return frames.size(); }

  /// Per-frame candidate labellings in classifier_sequence() layout.
  std::vector<std::vector<pose::FeatureCandidate>> candidate_sets() const;
};

class ClipEngine {
 public:
  explicit ClipEngine(PipelineParams params = {}, ClipEngineConfig config = {});

  const ClipEngineConfig& config() const { return config_; }
  const PipelineParams& pipeline_params() const { return params_; }

  /// Total concurrent lanes (pool workers + the calling thread).
  unsigned lanes() const { return pool_.size() + 1; }

  /// Processes one raw clip (background plate + frames). Frames run in
  /// parallel unless the tracker is enabled (tracking is stateful in frame
  /// order).
  ClipObservation process(const RgbImage& background, const std::vector<RgbImage>& frames);

  /// Convenience overload for generated / loaded clips.
  ClipObservation process(const synth::Clip& clip);

  /// Batch mode: processes a whole set of clips, spreading work across the
  /// pool. Without a tracker the frame index space of all clips is
  /// flattened (no idle lanes at clip boundaries); with a tracker each clip
  /// is one sequential task and clips run concurrently.
  std::vector<ClipObservation> process(const std::vector<synth::Clip>& clips);

 private:
  /// Replays the clip-level sequential state over per-frame results.
  ClipObservation aggregate(std::vector<FrameObservation> frames) const;
  ClipObservation process_serial_tracked(const RgbImage& background,
                                         const std::vector<RgbImage>& frames,
                                         FrameWorkspace& ws) const;

  PipelineParams params_;
  ClipEngineConfig config_;
  WorkerPool pool_;
  /// One workspace per lane (pool workers + calling thread); lane l of a
  /// parallel_for_lanes batch owns workspaces_[l] for the batch's duration,
  /// so steady-state frame processing allocates no full-frame buffers.
  std::vector<FrameWorkspace> workspaces_;
};

}  // namespace slj::core
