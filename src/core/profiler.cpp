#include "core/profiler.hpp"

#include <cstdio>

namespace slj::core {

const char* profile_stage_name(ProfileStage stage) {
  switch (stage) {
    case ProfileStage::kPass: return "pass";
    case ProfileStage::kDrain: return "drain";
    case ProfileStage::kTick: return "tick";
    case ProfileStage::kFrame: return "frame";
    case ProfileStage::kExtract: return "extract";
    case ProfileStage::kThin: return "thin";
    case ProfileStage::kSkelGraph: return "skelgraph";
    case ProfileStage::kFeatures: return "features";
    case ProfileStage::kDecode: return "decode";
    case ProfileStage::kDeliver: return "deliver";
  }
  return "?";
}

ProfileStage profile_stage_parent(ProfileStage stage) {
  switch (stage) {
    case ProfileStage::kPass: return ProfileStage::kPass;  // root
    case ProfileStage::kDrain:
    case ProfileStage::kTick:
    case ProfileStage::kDeliver: return ProfileStage::kPass;
    case ProfileStage::kFrame: return ProfileStage::kTick;
    case ProfileStage::kExtract:
    case ProfileStage::kThin:
    case ProfileStage::kSkelGraph:
    case ProfileStage::kFeatures:
    case ProfileStage::kDecode: return ProfileStage::kFrame;
  }
  return ProfileStage::kPass;
}

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::record(ProfileStage stage, std::uint64_t elapsed_ns) {
  StageCounters& c = stages_[static_cast<std::size_t>(stage)];
  c.calls.fetch_add(1, std::memory_order_relaxed);            // slj-atomic: counter
  c.total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);  // slj-atomic: counter
  // slj-atomic: counter — monotonic-max CAS; a raced retry republishes the winner
  std::uint64_t seen = c.max_ns.load(std::memory_order_relaxed);
  while (elapsed_ns > seen &&
         // slj-atomic: counter
         !c.max_ns.compare_exchange_weak(seen, elapsed_ns, std::memory_order_relaxed)) {
  }
}

ProfilerSnapshot Profiler::snapshot() const {
  ProfilerSnapshot snap;
  snap.compiled = compiled_in();
  snap.enabled = enabled();

  std::array<std::uint64_t, kProfileStageCount> total_ns{};
  for (std::size_t i = 0; i < kProfileStageCount; ++i) {
    total_ns[i] = stages_[i].total_ns.load(std::memory_order_relaxed);  // slj-atomic: snapshot
  }
  for (std::size_t i = 0; i < kProfileStageCount; ++i) {
    const std::uint64_t calls =
        stages_[i].calls.load(std::memory_order_relaxed);  // slj-atomic: snapshot
    if (calls == 0) continue;
    const ProfileStage stage = static_cast<ProfileStage>(i);
    const ProfileStage parent = profile_stage_parent(stage);
    ProfileStageSnapshot row;
    row.stage = profile_stage_name(stage);
    row.parent = profile_stage_name(parent);
    row.calls = calls;
    row.total_ms = static_cast<double>(total_ns[i]) / 1e6;
    row.avg_us = static_cast<double>(total_ns[i]) / static_cast<double>(calls) / 1e3;
    row.max_us = static_cast<double>(stages_[i].max_ns.load(
                     std::memory_order_relaxed)) /  // slj-atomic: snapshot
                 1e3;
    const std::uint64_t parent_ns = total_ns[static_cast<std::size_t>(parent)];
    if (parent == stage) {
      row.share_of_parent = 1.0;
    } else if (parent_ns > 0) {
      row.share_of_parent = static_cast<double>(total_ns[i]) / static_cast<double>(parent_ns);
    }
    snap.stages.push_back(row);
  }
  return snap;
}

void Profiler::reset() {
  for (StageCounters& c : stages_) {
    c.calls.store(0, std::memory_order_relaxed);     // slj-atomic: counter
    c.total_ns.store(0, std::memory_order_relaxed);  // slj-atomic: counter
    c.max_ns.store(0, std::memory_order_relaxed);    // slj-atomic: counter
  }
}

std::string ProfilerSnapshot::to_json() const {
  char buf[256];
  std::string out = "{\n";
  std::snprintf(buf, sizeof(buf), "    \"compiled\": %s,\n    \"enabled\": %s,\n",
                compiled ? "true" : "false", enabled ? "true" : "false");
  out += buf;
  out += "    \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const ProfileStageSnapshot& s = stages[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n      {\"stage\": \"%s\", \"parent\": \"%s\", \"calls\": %llu, "
                  "\"total_ms\": %.3f, \"avg_us\": %.2f, \"max_us\": %.2f, "
                  "\"share_of_parent\": %.3f}",
                  i == 0 ? "" : ",", s.stage, s.parent,
                  static_cast<unsigned long long>(s.calls), s.total_ms, s.avg_us, s.max_us,
                  s.share_of_parent);
    out += buf;
  }
  out += stages.empty() ? "]\n" : "\n    ]\n";
  out += "  }";
  return out;
}

}  // namespace slj::core
