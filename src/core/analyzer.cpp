#include "core/analyzer.hpp"

#include <stdexcept>

#include "core/trainer.hpp"

namespace slj::core {

JumpAnalyzer::JumpAnalyzer(PipelineParams pipeline_params,
                           pose::ClassifierConfig classifier_config)
    : pipeline_(pipeline_params), classifier_(classifier_config) {
  if (pipeline_params.num_areas != classifier_config.num_areas) {
    throw std::invalid_argument("pipeline and classifier must agree on the area count");
  }
}

void JumpAnalyzer::train(const synth::Dataset& dataset) {
  train_on_dataset(classifier_, pipeline_, dataset);
}

ClipAnalysis JumpAnalyzer::analyze(const RgbImage& background,
                                   const std::vector<RgbImage>& frames) {
  pipeline_.set_background(background);
  ClipAnalysis analysis;
  pose::PoseDbnClassifier::SequenceState state = classifier_.initial_state();
  GroundMonitor ground;
  for (const RgbImage& frame : frames) {
    const FrameObservation obs = pipeline_.process(frame);
    const bool airborne = ground.airborne(obs.bottom_row);
    analysis.frames.push_back(classifier_.classify(obs.candidates, airborne, state));
  }
  analysis.report = detect_faults(analysis.frames);
  return analysis;
}

ClipAnalysis JumpAnalyzer::analyze(const synth::Clip& clip) {
  return analyze(clip.background, clip.frames);
}

}  // namespace slj::core
