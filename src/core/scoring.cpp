#include "core/scoring.hpp"

#include <algorithm>
#include <cmath>

namespace slj::core {
namespace {

/// Foremost (max-x) and rearmost (min-x) silhouette pixels on the bottom
/// rows — the ground-contact band.
struct ContactExtent {
  double front = 0.0;
  double back = 0.0;
  bool valid = false;
};

ContactExtent contact_extent(const BinaryImage& silhouette, int bottom_row, int band = 4) {
  ContactExtent extent;
  if (bottom_row < 0) return extent;
  int min_x = silhouette.width();
  int max_x = -1;
  for (int y = std::max(0, bottom_row - band); y <= bottom_row; ++y) {
    for (int x = 0; x < silhouette.width(); ++x) {
      if (silhouette.at(x, y)) {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
      }
    }
  }
  if (max_x >= 0) {
    extent.front = max_x;
    extent.back = min_x;
    extent.valid = true;
  }
  return extent;
}

}  // namespace

std::optional<JumpMeasurement> measure_jump(const std::vector<FrameObservation>& observations,
                                            const std::vector<bool>& airborne,
                                            double pixels_per_meter) {
  if (observations.size() != airborne.size() || observations.empty()) return std::nullopt;

  // Flight window: first and last airborne frames.
  int first_air = -1, last_air = -1;
  for (std::size_t i = 0; i < airborne.size(); ++i) {
    if (airborne[i]) {
      if (first_air < 0) first_air = static_cast<int>(i);
      last_air = static_cast<int>(i);
    }
  }
  if (first_air <= 0 || last_air < 0 ||
      last_air + 1 >= static_cast<int>(observations.size())) {
    return std::nullopt;  // no complete flight in the clip
  }

  JumpMeasurement m;
  m.takeoff_frame = first_air - 1;
  m.landing_frame = last_air + 1;
  m.flight_frames = last_air - first_air + 1;

  const FrameObservation& takeoff = observations[static_cast<std::size_t>(m.takeoff_frame)];
  const FrameObservation& landing = observations[static_cast<std::size_t>(m.landing_frame)];
  const ContactExtent off = contact_extent(takeoff.silhouette, takeoff.bottom_row);
  const ContactExtent land = contact_extent(landing.silhouette, landing.bottom_row);
  if (!off.valid || !land.valid) return std::nullopt;

  // Toe at take-off; heel (rearmost contact) at landing — the measured
  // distance in the standing-long-jump standard.
  m.takeoff_toe_px = off.front;
  m.landing_heel_px = land.back;
  m.distance_px = m.landing_heel_px - m.takeoff_toe_px;
  m.distance_m = pixels_per_meter > 0.0 ? m.distance_px / pixels_per_meter : 0.0;
  return m;
}

JumpScore score_jump(const std::vector<FrameObservation>& observations,
                     const std::vector<bool>& airborne,
                     const std::vector<pose::FrameResult>& poses, double pixels_per_meter,
                     double expected_distance_m) {
  JumpScore score;
  score.form = detect_faults(poses);
  if (auto m = measure_jump(observations, airborne, pixels_per_meter)) {
    score.measurement = *m;
  }

  // 60 points: movement standard (10 per check).
  const int form_points = 60 * score.form.passed_count() / std::max(1, score.form.total_count());
  // 40 points: distance relative to the age-group norm, linear, capped.
  int distance_points = 0;
  if (score.measurement.valid() && expected_distance_m > 0.0) {
    const double ratio =
        std::clamp(score.measurement.distance_m / expected_distance_m, 0.0, 1.0);
    distance_points = static_cast<int>(std::lround(40.0 * ratio));
  }
  score.total = form_points + distance_points;
  if (score.total >= 85) {
    score.grade = "excellent";
  } else if (score.total >= 70) {
    score.grade = "good";
  } else if (score.total >= 50) {
    score.grade = "fair";
  } else {
    score.grade = "needs work";
  }
  return score;
}

}  // namespace slj::core
