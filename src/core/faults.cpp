#include "core/faults.hpp"

#include <algorithm>
#include <array>

namespace slj::core {
namespace {

using pose::PoseId;
using pose::Stage;

bool pose_in(PoseId p, std::initializer_list<PoseId> set) {
  return std::find(set.begin(), set.end(), p) != set.end();
}

}  // namespace

std::string_view rule_name(FaultRule r) {
  switch (r) {
    case FaultRule::kArmBackswing: return "arm backswing during preparation";
    case FaultRule::kPreparatoryCrouch: return "deep crouch before take-off";
    case FaultRule::kArmDriveForward: return "forward arm drive at take-off";
    case FaultRule::kFlightLegCarry: return "leg carry (tuck/reach) during flight";
    case FaultRule::kLandingAbsorption: return "knee bend on landing";
    case FaultRule::kCompleteSequence: return "complete four-stage jump";
  }
  return "?";
}

std::string_view rule_advice(FaultRule r) {
  switch (r) {
    case FaultRule::kArmBackswing:
      return "Swing both arms backward while you sink into the crouch; the backswing stores "
             "momentum for the jump.";
    case FaultRule::kPreparatoryCrouch:
      return "Bend your knees to roughly a half squat before take-off; jumping from straight "
             "legs loses most of your power.";
    case FaultRule::kArmDriveForward:
      return "Drive your arms forward and up as you extend; the arm swing should lead the "
             "jump, not trail it.";
    case FaultRule::kFlightLegCarry:
      return "Bring your knees up and reach your legs forward while airborne so your feet land "
             "ahead of your body.";
    case FaultRule::kLandingAbsorption:
      return "Land with bent knees and sink into a squat; landing stiff-legged is unsafe and "
             "shortens the measured jump.";
    case FaultRule::kCompleteSequence:
      return "The clip should show preparation, take-off, flight and landing; re-record the "
             "jump if a stage is missing.";
  }
  return "";
}

JumpReport detect_faults(const std::vector<pose::FrameResult>& sequence) {
  JumpReport report;

  const auto collect = [&](FaultRule rule, auto&& predicate) {
    FaultFinding finding;
    finding.rule = rule;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      const PoseId p = sequence[i].pose;
      if (p != PoseId::kUnknown && predicate(p)) {
        finding.evidence_frames.push_back(static_cast<int>(i));
      }
    }
    finding.passed = !finding.evidence_frames.empty();
    report.findings.push_back(std::move(finding));
  };

  collect(FaultRule::kArmBackswing, [](PoseId p) {
    return pose_in(p, {PoseId::kStandHandsBackward, PoseId::kCrouchHandsBackward,
                       PoseId::kWaistBentHandsBackward, PoseId::kTakeoffHandsBackward});
  });
  collect(FaultRule::kPreparatoryCrouch, [](PoseId p) {
    return pose_in(p, {PoseId::kCrouchHandsBackward, PoseId::kCrouchHandsForward,
                       PoseId::kTakeoffHandsBackward});
  });
  collect(FaultRule::kArmDriveForward, [](PoseId p) {
    return pose_in(p, {PoseId::kExtendedHandsForward, PoseId::kExtendedHandsUp,
                       PoseId::kTakeoffLeanForward, PoseId::kAirExtendedHandsForward});
  });
  collect(FaultRule::kFlightLegCarry, [](PoseId p) {
    return pose_in(p, {PoseId::kAirTuckHandsForward, PoseId::kAirTuckHandsDown,
                       PoseId::kAirLegsReachForward, PoseId::kAirPikeHandsDown});
  });
  collect(FaultRule::kLandingAbsorption, [](PoseId p) {
    return pose_in(p, {PoseId::kTouchdownKneesBentHandsForward, PoseId::kTouchdownDeepHandsDown,
                       PoseId::kLandedSquatHandsForward});
  });

  // Stage completeness over recognized frames.
  {
    FaultFinding finding;
    finding.rule = FaultRule::kCompleteSequence;
    std::array<bool, pose::kStageCount> seen{};
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      const PoseId p = sequence[i].pose;
      if (p == PoseId::kUnknown) continue;
      const int s = pose::index_of(pose::stage_of(p));
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        finding.evidence_frames.push_back(static_cast<int>(i));
      }
    }
    finding.passed = std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
    report.findings.push_back(std::move(finding));
  }
  return report;
}

int JumpReport::passed_count() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [](const FaultFinding& f) { return f.passed; }));
}

std::string JumpReport::to_string() const {
  std::string out;
  out += "Jump assessment: " + std::to_string(passed_count()) + "/" +
         std::to_string(total_count()) + " checks passed\n";
  for (const FaultFinding& f : findings) {
    out += "  [";
    out += f.passed ? "PASS" : "FAIL";
    out += "] ";
    out += rule_name(f.rule);
    if (f.passed) {
      out += " (frames";
      const int shown = std::min<std::size_t>(f.evidence_frames.size(), 4);
      for (int i = 0; i < shown; ++i) out += " " + std::to_string(f.evidence_frames[static_cast<std::size_t>(i)]);
      if (f.evidence_frames.size() > 4) out += " ...";
      out += ")";
    } else {
      out += "\n         advice: ";
      out += rule_advice(f.rule);
    }
    out += "\n";
  }
  return out;
}

}  // namespace slj::core
