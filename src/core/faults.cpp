#include "core/faults.hpp"

#include <algorithm>
#include <array>

namespace slj::core {
namespace {

using pose::PoseId;
using pose::Stage;

bool pose_in(PoseId p, std::initializer_list<PoseId> set) {
  return std::find(set.begin(), set.end(), p) != set.end();
}

/// The five movement rules in report order (kCompleteSequence is handled
/// separately: its evidence is stage discovery, not a pose set).
constexpr std::array<FaultRule, 5> kPoseRules = {
    FaultRule::kArmBackswing, FaultRule::kPreparatoryCrouch, FaultRule::kArmDriveForward,
    FaultRule::kFlightLegCarry, FaultRule::kLandingAbsorption};

/// Does this pose count as evidence for the rule?
bool rule_matches(FaultRule rule, PoseId p) {
  switch (rule) {
    case FaultRule::kArmBackswing:
      return pose_in(p, {PoseId::kStandHandsBackward, PoseId::kCrouchHandsBackward,
                         PoseId::kWaistBentHandsBackward, PoseId::kTakeoffHandsBackward});
    case FaultRule::kPreparatoryCrouch:
      return pose_in(p, {PoseId::kCrouchHandsBackward, PoseId::kCrouchHandsForward,
                         PoseId::kTakeoffHandsBackward});
    case FaultRule::kArmDriveForward:
      return pose_in(p, {PoseId::kExtendedHandsForward, PoseId::kExtendedHandsUp,
                         PoseId::kTakeoffLeanForward, PoseId::kAirExtendedHandsForward});
    case FaultRule::kFlightLegCarry:
      return pose_in(p, {PoseId::kAirTuckHandsForward, PoseId::kAirTuckHandsDown,
                         PoseId::kAirLegsReachForward, PoseId::kAirPikeHandsDown});
    case FaultRule::kLandingAbsorption:
      return pose_in(p, {PoseId::kTouchdownKneesBentHandsForward,
                         PoseId::kTouchdownDeepHandsDown, PoseId::kLandedSquatHandsForward});
    case FaultRule::kCompleteSequence:
      return p != PoseId::kUnknown;
  }
  return false;
}

/// Latest stage at which a rule can still gather evidence. Stages never
/// regress, so once a recognized pose lands beyond this stage the rule has
/// provably failed.
int rule_deadline(FaultRule rule) {
  int deadline = 0;
  for (const PoseId p : pose::all_poses()) {
    if (rule_matches(rule, p)) {
      deadline = std::max(deadline, pose::index_of(pose::stage_of(p)));
    }
  }
  return deadline;
}

}  // namespace

std::string_view rule_name(FaultRule r) {
  switch (r) {
    case FaultRule::kArmBackswing: return "arm backswing during preparation";
    case FaultRule::kPreparatoryCrouch: return "deep crouch before take-off";
    case FaultRule::kArmDriveForward: return "forward arm drive at take-off";
    case FaultRule::kFlightLegCarry: return "leg carry (tuck/reach) during flight";
    case FaultRule::kLandingAbsorption: return "knee bend on landing";
    case FaultRule::kCompleteSequence: return "complete four-stage jump";
  }
  return "?";
}

std::string_view rule_advice(FaultRule r) {
  switch (r) {
    case FaultRule::kArmBackswing:
      return "Swing both arms backward while you sink into the crouch; the backswing stores "
             "momentum for the jump.";
    case FaultRule::kPreparatoryCrouch:
      return "Bend your knees to roughly a half squat before take-off; jumping from straight "
             "legs loses most of your power.";
    case FaultRule::kArmDriveForward:
      return "Drive your arms forward and up as you extend; the arm swing should lead the "
             "jump, not trail it.";
    case FaultRule::kFlightLegCarry:
      return "Bring your knees up and reach your legs forward while airborne so your feet land "
             "ahead of your body.";
    case FaultRule::kLandingAbsorption:
      return "Land with bent knees and sink into a squat; landing stiff-legged is unsafe and "
             "shortens the measured jump.";
    case FaultRule::kCompleteSequence:
      return "The clip should show preparation, take-off, flight and landing; re-record the "
             "jump if a stage is missing.";
  }
  return "";
}

JumpReport detect_faults(const std::vector<pose::FrameResult>& sequence) {
  IncrementalFaultDetector detector;
  for (const pose::FrameResult& frame : sequence) detector.push(frame);
  return detector.report();
}

IncrementalFaultDetector::IncrementalFaultDetector() {
  for (std::size_t i = 0; i < kPoseRules.size(); ++i) {
    findings_[i].rule = kPoseRules[i];
  }
  findings_[kPoseRules.size()].rule = FaultRule::kCompleteSequence;
}

std::vector<ResolvedFault> IncrementalFaultDetector::push(const pose::FrameResult& frame) {
  const int frame_index = static_cast<int>(frames_++);
  std::vector<ResolvedFault> events;
  const PoseId p = frame.pose;
  if (p == PoseId::kUnknown) return events;

  const auto resolve = [&](std::size_t i, bool passed) {
    resolved_[i] = true;
    findings_[i].passed = passed;
    events.push_back({findings_[i], frame_index});
  };

  for (std::size_t i = 0; i < kPoseRules.size(); ++i) {
    if (!rule_matches(kPoseRules[i], p)) continue;
    if (findings_[i].evidence_frames.size() < kMaxEvidenceFramesPerRule) {
      findings_[i].evidence_frames.push_back(frame_index);
    }
    // First evidence resolves PASS; evidence after an early FAIL (a pose
    // stream whose stages regress — ablation configs) re-resolves it with a
    // correcting PASS event, so live consumers never disagree with report().
    if (!resolved_[i] || !findings_[i].passed) resolve(i, true);
  }

  // Stage completeness: evidence is the first frame of each stage.
  const int stage = pose::index_of(pose::stage_of(p));
  constexpr std::size_t kComplete = kPoseRules.size();
  if (!stages_seen_[static_cast<std::size_t>(stage)]) {
    stages_seen_[static_cast<std::size_t>(stage)] = true;
    findings_[kComplete].evidence_frames.push_back(frame_index);
    if ((!resolved_[kComplete] || !findings_[kComplete].passed) &&
        std::all_of(stages_seen_.begin(), stages_seen_.end(), [](bool b) { return b; })) {
      resolve(kComplete, true);
    }
  }

  // Stages never regress: a recognized pose beyond a rule's last eligible
  // stage settles every still-open rule whose window has closed.
  max_stage_seen_ = std::max(max_stage_seen_, stage);
  for (std::size_t i = 0; i < kPoseRules.size(); ++i) {
    if (!resolved_[i] && max_stage_seen_ > rule_deadline(kPoseRules[i])) resolve(i, false);
  }
  return events;
}

std::vector<ResolvedFault> IncrementalFaultDetector::finish() {
  std::vector<ResolvedFault> events;
  const JumpReport snapshot = report();
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    if (resolved_[i]) continue;
    resolved_[i] = true;
    findings_[i].passed = snapshot.findings[i].passed;
    events.push_back({snapshot.findings[i], -1});
  }
  return events;
}

JumpReport IncrementalFaultDetector::report() const {
  JumpReport report;
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    FaultFinding finding = findings_[i];
    finding.passed = i < kPoseRules.size()
                         ? !finding.evidence_frames.empty()
                         : std::all_of(stages_seen_.begin(), stages_seen_.end(),
                                       [](bool b) { return b; });
    report.findings.push_back(std::move(finding));
  }
  return report;
}

int JumpReport::passed_count() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [](const FaultFinding& f) { return f.passed; }));
}

std::string JumpReport::to_string() const {
  std::string out;
  out += "Jump assessment: " + std::to_string(passed_count()) + "/" +
         std::to_string(total_count()) + " checks passed\n";
  for (const FaultFinding& f : findings) {
    out += "  [";
    out += f.passed ? "PASS" : "FAIL";
    out += "] ";
    out += rule_name(f.rule);
    if (f.passed) {
      out += " (frames";
      const std::size_t shown = std::min<std::size_t>(f.evidence_frames.size(), 4);
      for (std::size_t i = 0; i < shown; ++i) {
        out += ' ';
        out += std::to_string(f.evidence_frames[i]);
      }
      if (f.evidence_frames.size() > 4) out += " ...";
      out += ")";
    } else {
      out += "\n         advice: ";
      out += rule_advice(f.rule);
    }
    out += "\n";
  }
  return out;
}

}  // namespace slj::core
