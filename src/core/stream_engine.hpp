// StreamEngine: live, frame-at-a-time analysis. Where ClipEngine scores a
// whole recorded clip after the fact, a StreamSession accepts one frame at
// a time — camera-style — and returns the frame's pose decision plus any
// movement-standard rules that resolved on that frame, so coaching advice
// can be spoken while the jumper is still in the air. Memory is bounded:
// a session keeps only its sequential state (ground calibration, tracker,
// decoder belief, fault-rule progress), never the frame history.
//
// Decoding is exact with respect to the batch paths: kOnline replays the
// classifier's own per-frame rule (identical output to
// classify_sequence), kFiltering the OnlineForwardDecoder that also backs
// decode_sequence(kFiltering) — so going live never changes the answer.
//
// StreamManager multiplexes many concurrent sessions (simulated camera
// feeds) over one WorkerPool: a tick() hands each session its next frame
// and processes them in parallel, which is safe because sessions share
// nothing but the (const) classifier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/annotations.hpp"
#include "core/clip_engine.hpp"
#include "core/faults.hpp"
#include "core/pipeline.hpp"
#include "detection/blob_tracker.hpp"
#include "pose/decoders.hpp"

namespace slj::core {

/// Which per-frame decoder drives a session.
enum class StreamDecoder {
  kOnline,     ///< the paper's rule, exactly classify_sequence frame-for-frame
  kFiltering,  ///< forward belief via OnlineForwardDecoder
};

struct StreamSessionConfig {
  StreamDecoder decoder = StreamDecoder::kOnline;
  /// Select the jumper blob with a BlobTracker instead of largest-component.
  bool use_tracker = false;
  detect::TrackerConfig tracker;
  /// GroundMonitor lift threshold (px) for the airborne flag.
  int lift_threshold_px = 3;
  /// Grounded frames the ground line is calibrated over (max of their
  /// bottom rows), guarding against one noisy first frame.
  int ground_calibration_frames = GroundMonitor::kDefaultCalibrationFrames;
};

/// Everything a session reports back for one pushed frame.
struct StreamUpdate {
  std::size_t frame_index = 0;
  bool airborne = false;
  pose::FrameResult result;
  /// Movement-standard rules that resolved on exactly this frame (advice
  /// for failed ones via rule_advice).
  std::vector<ResolvedFault> resolved;
};

/// One live feed: background-calibrated vision pipeline + per-clip
/// sequential state, advanced one frame per push_frame call.
class StreamSession {
 public:
  StreamSession(const pose::PoseDbnClassifier& classifier, const RgbImage& background,
                PipelineParams params = {}, StreamSessionConfig config = {});

  const StreamSessionConfig& config() const { return config_; }
  std::size_t frames_seen() const { return frames_; }

  /// Consumes the next camera frame: vision pass, airborne flag, pose
  /// decision, incremental fault findings.
  StreamUpdate push_frame(const RgbImage& frame);

  /// Same, from an already-computed frame observation (replay, testing,
  /// feeds that share a vision front-end).
  StreamUpdate push_observation(const FrameObservation& observation);

  /// Snapshot of the movement-standard checks over the frames seen so far.
  JumpReport report() const { return faults_.report(); }

  /// Ends the feed: resolves every still-open rule (missing evidence now
  /// means FAIL) and returns the final report.
  JumpReport finish();

 private:
  FramePipeline pipeline_;
  StreamSessionConfig config_;
  const pose::PoseDbnClassifier* classifier_;
  GroundMonitor ground_;
  std::optional<detect::BlobTracker> tracker_;
  pose::PoseDbnClassifier::SequenceState online_state_;
  std::optional<pose::OnlineForwardDecoder> forward_;  ///< kFiltering only
  IncrementalFaultDetector faults_;
  std::size_t frames_ = 0;
  /// Per-session scratch: after the first frame sizes them, push_frame
  /// performs no full-frame heap allocations (camera steady state).
  FrameWorkspace workspace_;
  FrameObservation observation_;
};

struct StreamManagerConfig {
  /// Worker threads for tick(); 0 = hardware concurrency.
  unsigned workers = 0;
  /// Defaults for sessions opened without an explicit config.
  StreamSessionConfig session;
};

/// Multiplexes many concurrent StreamSessions over one WorkerPool.
///
/// Tick contract: a tick advances each *listed* session by exactly one
/// frame. Every Feed must name an open session with a non-null frame, and a
/// session id may appear at most once per batch — a session has one
/// sequential decoder state, so advancing it twice in one parallel tick
/// would race that state and make the frame order ambiguous. The whole
/// batch is validated up front; on any violation tick()/tick_into() throw
/// std::invalid_argument *before any session advances*, so a rejected batch
/// leaves every session exactly where it was.
class StreamManager {
 public:
  /// One frame of one feed inside a tick. `session` must be an open id and
  /// distinct within the batch (each session advances at most once per
  /// tick; see the class contract above).
  struct Feed {
    int session = -1;
    const RgbImage* frame = nullptr;
  };

  explicit StreamManager(const pose::PoseDbnClassifier& classifier, PipelineParams params = {},
                         StreamManagerConfig config = {});

  /// Opens a feed calibrated on `background`; returns its session id.
  int open_session(const RgbImage& background);
  int open_session(const RgbImage& background, StreamSessionConfig config);

  /// Advances one session by one frame (serial path).
  StreamUpdate push_frame(int session, const RgbImage& frame);

  /// Advances every listed session by one frame, in parallel across the
  /// pool. Updates are returned in feed order. Throws std::invalid_argument
  /// on an unknown or duplicated session id or a null frame, before any
  /// session advances.
  std::vector<StreamUpdate> tick(const std::vector<Feed>& feeds);

  /// Drain-batch entry point: same contract as tick(), but updates land in
  /// `updates` (resized to feeds.size()) so a caller ticking every few
  /// milliseconds — the ingest scheduler — reuses the buffer instead of
  /// allocating a results vector per round. Duplicate detection runs on a
  /// per-session stamp, so validation itself is allocation-free.
  SLJ_HOT_PATH void tick_into(const std::vector<Feed>& feeds, std::vector<StreamUpdate>& updates);

  /// Finishes and closes a session, returning its final report.
  JumpReport close_session(int session);

  std::size_t open_sessions() const;

  /// Total concurrent lanes (pool workers + the calling thread).
  unsigned lanes() const { return pool_.size() + 1; }

 private:
  StreamSession& session_at(int id);

  const pose::PoseDbnClassifier* classifier_;
  PipelineParams params_;
  StreamManagerConfig config_;
  WorkerPool pool_;
  std::vector<std::unique_ptr<StreamSession>> sessions_;  ///< index = id; null = closed
  /// Duplicate-feed detection without per-tick allocation: session i was
  /// last listed in tick number tick_stamps_[i]; seeing the current tick
  /// number twice is the "fed twice in one tick" contract violation.
  std::vector<std::uint64_t> tick_stamps_;
  std::uint64_t tick_serial_ = 0;
};

}  // namespace slj::core
