#include "core/stream_engine.hpp"

#include <stdexcept>
#include <utility>

#include "core/profiler.hpp"
#include "obs/tracer.hpp"

namespace slj::core {

// ---- StreamSession ---------------------------------------------------------

StreamSession::StreamSession(const pose::PoseDbnClassifier& classifier,
                             const RgbImage& background, PipelineParams params,
                             StreamSessionConfig config)
    : pipeline_(params),
      config_(config),
      classifier_(&classifier),
      ground_(config.lift_threshold_px, config.ground_calibration_frames),
      online_state_(classifier.initial_state()) {
  pipeline_.set_background(background);
  if (config_.use_tracker) tracker_.emplace(config_.tracker);
  if (config_.decoder == StreamDecoder::kFiltering) forward_.emplace(classifier);
}

StreamUpdate StreamSession::push_frame(const RgbImage& frame) {
  SLJ_PROFILE_SCOPE(ProfileStage::kFrame);
  // observation_ / workspace_ are reused frame over frame so the camera
  // steady state allocates no full-frame buffers.
  if (tracker_) {
    pipeline_.process_into(frame, *tracker_, workspace_, observation_);
  } else {
    pipeline_.process_into(frame, workspace_, observation_);
  }
  return push_observation(observation_);
}

StreamUpdate StreamSession::push_observation(const FrameObservation& observation) {
  SLJ_PROFILE_SCOPE(ProfileStage::kDecode);
  StreamUpdate update;
  update.frame_index = frames_++;
  update.airborne = ground_.airborne(observation.bottom_row);
  update.result = config_.decoder == StreamDecoder::kFiltering
                      ? forward_->push(observation.candidates, update.airborne)
                      : classifier_->classify(observation.candidates, update.airborne,
                                              online_state_);
  update.resolved = faults_.push(update.result);
  return update;
}

JumpReport StreamSession::finish() {
  faults_.finish();
  return faults_.report();
}

// ---- StreamManager ---------------------------------------------------------

StreamManager::StreamManager(const pose::PoseDbnClassifier& classifier, PipelineParams params,
                             StreamManagerConfig config)
    : classifier_(&classifier), params_(params), config_(config), pool_(config.workers) {}

int StreamManager::open_session(const RgbImage& background) {
  return open_session(background, config_.session);
}

int StreamManager::open_session(const RgbImage& background, StreamSessionConfig config) {
  sessions_.push_back(std::make_unique<StreamSession>(*classifier_, background, params_, config));
  tick_stamps_.push_back(0);
  return static_cast<int>(sessions_.size()) - 1;
}

StreamSession& StreamManager::session_at(int id) {
  if (id < 0 || static_cast<std::size_t>(id) >= sessions_.size() ||
      !sessions_[static_cast<std::size_t>(id)]) {
    throw std::invalid_argument("unknown stream session id " + std::to_string(id));
  }
  return *sessions_[static_cast<std::size_t>(id)];
}

StreamUpdate StreamManager::push_frame(int session, const RgbImage& frame) {
  return session_at(session).push_frame(frame);
}

std::vector<StreamUpdate> StreamManager::tick(const std::vector<Feed>& feeds) {
  std::vector<StreamUpdate> updates;
  tick_into(feeds, updates);
  return updates;
}

SLJ_HOT_PATH void StreamManager::tick_into(const std::vector<Feed>& feeds, std::vector<StreamUpdate>& updates) {
  // Validate the whole batch before touching any session, so a rejected
  // batch advances nothing (see the class contract). The stamp array makes
  // duplicate detection allocation-free: a session already stamped with the
  // current tick number is listed twice.
  ++tick_serial_;
  for (const Feed& feed : feeds) {
    session_at(feed.session);  // validates the id
    if (!feed.frame) throw std::invalid_argument("tick feed has no frame");
    std::uint64_t& stamp = tick_stamps_[static_cast<std::size_t>(feed.session)];
    if (stamp == tick_serial_) {
      throw std::invalid_argument("session " + std::to_string(feed.session) +
                                  " fed twice in one tick (each session advances at most once "
                                  "per tick)");
    }
    stamp = tick_serial_;
  }
  updates.resize(feeds.size());
  pool_.parallel_for(feeds.size(), [&](std::size_t i) {
    obs::TraceSpan span("frame", feeds[i].session);
    updates[i] = session_at(feeds[i].session).push_frame(*feeds[i].frame);
  });
}

JumpReport StreamManager::close_session(int session) {
  const JumpReport report = session_at(session).finish();
  sessions_[static_cast<std::size_t>(session)].reset();
  return report;
}

std::size_t StreamManager::open_sessions() const {
  std::size_t n = 0;
  for (const auto& s : sessions_) {
    if (s) ++n;
  }
  return n;
}

}  // namespace slj::core
