// Evaluation utilities: per-clip accuracy (the paper's Sec. 5 metric),
// confusion statistics, and error-run analysis ("most errors in our
// experiments occurred in consecutive frames").
#pragma once

#include <array>
#include <vector>

#include "core/clip_engine.hpp"
#include "core/pipeline.hpp"
#include "pose/classifier.hpp"
#include "synth/dataset.hpp"

namespace slj::core {

struct ClipEvaluation {
  std::size_t frames = 0;
  std::size_t correct = 0;
  std::size_t unknown = 0;             ///< frames classified Unknown
  std::size_t correct_stage = 0;       ///< stage-level agreement
  std::vector<pose::FrameResult> results;
  std::vector<pose::PoseId> truth;

  double accuracy() const {
    return frames == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(frames);
  }
  double stage_accuracy() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(correct_stage) / static_cast<double>(frames);
  }
};

/// Runs the classifier over one clip and scores it against ground truth.
/// An Unknown prediction counts as incorrect (the paper's accuracy treats
/// only exact pose matches as correct).
ClipEvaluation evaluate_clip(const pose::PoseDbnClassifier& classifier, FramePipeline& pipeline,
                             const synth::Clip& clip);

/// Same scoring from an already-processed clip (ClipEngine output), so the
/// expensive vision pass can run on the worker pool.
ClipEvaluation evaluate_clip(const pose::PoseDbnClassifier& classifier,
                             const ClipObservation& observation, const synth::Clip& clip);

struct DatasetEvaluation {
  std::vector<ClipEvaluation> clips;

  std::size_t total_frames() const;
  std::size_t total_correct() const;
  double overall_accuracy() const;
  double min_clip_accuracy() const;
  double max_clip_accuracy() const;
};

DatasetEvaluation evaluate_dataset(const pose::PoseDbnClassifier& classifier,
                                   FramePipeline& pipeline,
                                   const std::vector<synth::Clip>& clips);

/// Parallel variant: each clip's vision pass runs on the engine's worker
/// pool (one clip in memory at a time); classification then replays in
/// frame order, so the result equals the serial evaluate_dataset.
DatasetEvaluation evaluate_dataset(const pose::PoseDbnClassifier& classifier, ClipEngine& engine,
                                   const std::vector<synth::Clip>& clips);

/// Lengths of maximal runs of consecutive misclassified frames, pooled over
/// clips (A6 bench: the paper's "errors occur in consecutive frames").
std::vector<int> error_run_lengths(const DatasetEvaluation& eval);

/// 22×22 confusion matrix (+1 column for Unknown) indexed
/// [truth][predicted]; predicted Unknown uses column kPoseCount.
using ConfusionMatrix = std::array<std::array<std::size_t, pose::kPoseCount + 1>, pose::kPoseCount>;
ConfusionMatrix confusion_matrix(const DatasetEvaluation& eval);

}  // namespace slj::core
