#include "core/trainer.hpp"

#include "bayes/structure.hpp"

namespace slj::core {

TrainingStats train_on_clip(pose::PoseDbnClassifier& classifier, FramePipeline& pipeline,
                            const synth::Clip& clip) {
  TrainingStats stats;
  pipeline.set_background(clip.background);
  pose::PoseId prev = pose::kResetPose;
  pose::Stage stage = pose::Stage::kBeforeJumping;
  GroundMonitor ground;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    ++stats.frames;
    const FrameObservation obs = pipeline.process(clip.frames[i]);
    const bool airborne = ground.airborne(obs.bottom_row);
    const synth::FrameTruth& truth = clip.truth[i];

    pose::PartPoints gt;
    gt.head = truth.parts.head;
    gt.chest = truth.parts.chest;
    gt.hand = truth.parts.hand;
    gt.knee = truth.parts.knee;
    gt.foot = truth.parts.foot;
    const auto candidate =
        pose::features_from_truth(obs.graph, pipeline.encoder(), gt);
    if (!candidate.has_value()) {
      ++stats.frames_without_skeleton;
      continue;
    }
    for (const int area : candidate->features.areas) {
      if (area == pipeline.encoder().missing_state()) ++stats.missing_part_slots;
    }
    classifier.observe(truth.pose, *candidate, prev, stage, airborne);
    prev = truth.pose;
    stage = truth.stage;
  }
  return stats;
}

TrainingStats train_on_dataset(pose::PoseDbnClassifier& classifier, FramePipeline& pipeline,
                               const synth::Dataset& dataset) {
  TrainingStats total;
  for (const synth::Clip& clip : dataset.train) {
    const TrainingStats s = train_on_clip(classifier, pipeline, clip);
    total.frames += s.frames;
    total.frames_without_skeleton += s.frames_without_skeleton;
    total.missing_part_slots += s.missing_part_slots;
  }
  return total;
}

TrainingStats train_on_dataset(pose::PoseDbnClassifier& classifier, FramePipeline& pipeline,
                               const synth::Dataset& dataset, const TrainerOptions& options) {
  if (!options.learn_tan_structure) {
    return train_on_dataset(classifier, pipeline, dataset);
  }

  // Pass 1: run the pipeline once, caching the training tuples.
  struct Tuple {
    pose::PoseId pose;
    pose::FeatureCandidate candidate;
    pose::PoseId prev;
    pose::Stage stage;
    bool airborne;
  };
  TrainingStats stats;
  std::vector<Tuple> tuples;
  std::vector<bayes::TanSample> samples;
  for (const synth::Clip& clip : dataset.train) {
    pipeline.set_background(clip.background);
    pose::PoseId prev = pose::kResetPose;
    GroundMonitor ground;
    for (std::size_t i = 0; i < clip.frames.size(); ++i) {
      ++stats.frames;
      const FrameObservation obs = pipeline.process(clip.frames[i]);
      const bool airborne = ground.airborne(obs.bottom_row);
      const synth::FrameTruth& truth = clip.truth[i];
      pose::PartPoints gt{truth.parts.head, truth.parts.chest, truth.parts.hand,
                          truth.parts.knee, truth.parts.foot};
      const auto candidate = pose::features_from_truth(obs.graph, pipeline.encoder(), gt);
      if (!candidate.has_value()) {
        ++stats.frames_without_skeleton;
        continue;
      }
      for (const int area : candidate->features.areas) {
        if (area == pipeline.encoder().missing_state()) ++stats.missing_part_slots;
      }
      tuples.push_back({truth.pose, *candidate, prev, truth.stage, airborne});
      bayes::TanSample sample;
      sample.class_label = pose::index_of(truth.pose);
      sample.features.assign(candidate->features.areas.begin(),
                             candidate->features.areas.end());
      samples.push_back(std::move(sample));
      prev = truth.pose;
    }
  }

  // Qualitative training: the TAN tree over the part features.
  const std::vector<int> feature_cards(static_cast<std::size_t>(pose::kPartCount),
                                       pipeline.encoder().state_count());
  const std::vector<int> parents = bayes::learn_tan_structure(
      samples, feature_cards, pose::kPoseCount, classifier.config().laplace_alpha);
  classifier.set_tan_structure(parents);

  // Pass 2: quantitative training from the cached tuples.
  for (const Tuple& t : tuples) {
    classifier.observe(t.pose, t.candidate, t.prev, t.stage, t.airborne);
  }
  return stats;
}

}  // namespace slj::core
