// Portable fixed-width SIMD abstraction for the per-frame vision kernels.
//
// Backends: SSE2 (2 f64 / 16 u8 lanes), AVX2 (4 f64 / 32 u8 lanes), NEON
// (2 f64 / 16 u8 lanes), and a scalar fallback (1 lane) that is always
// compiled. The active backend is chosen at configure time by the SLJ_SIMD
// CMake option:
//
//   AUTO (default)  whatever instruction sets the compiler already targets
//                   (__AVX2__ / __SSE2__ / __ARM_NEON preprocessor macros)
//   OFF / SCALAR    force the scalar fallback (defines SLJ_SIMD_FORCE_SCALAR)
//   SSE2 / AVX2     x86 backends, adding -msse2 / -mavx2
//   NEON            ARM backend (the macros must already be available)
//
// Every kernel written against this header is templated on a backend tag and
// instantiated twice: once with `Active` (the configured backend) and once
// with `ScalarBackend` (the reference). The scalar twin is what the
// SIMD-vs-scalar property suites compare against, and what ships when
// SLJ_SIMD=OFF.
//
// Bit-identity contract. The vision kernels are integer-domain: every value
// flowing through these vectors is either a small integer widened to double
// (pixel sums in a summed-area table — exact in IEEE double far beyond any
// supported image size) or the result of per-lane IEEE arithmetic on such
// values. Under that precondition the SIMD paths are bit-identical to the
// scalar paths, because:
//   * lane-wise +, -, *, / , min/max and |x| are single correctly-rounded
//     IEEE operations, identical to their scalar counterparts;
//   * inclusive_scan() reassociates additions, which is only exact — and
//     therefore only permitted — for integer-exact values (asserted in the
//     kernels' contracts, not checkable here);
//   * max-reductions are order-independent for any total order (no NaNs in
//     the integer domain).
// Nothing here may introduce FMA contraction: each operation maps to one
// explicit non-fused instruction.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(SLJ_SIMD_FORCE_SCALAR)
#if defined(__AVX2__)
#define SLJ_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define SLJ_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define SLJ_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace slj::simd {

// ---- backend tags ----------------------------------------------------------

struct ScalarBackend {};
#if defined(SLJ_SIMD_AVX2)
struct Avx2Backend {};
using Active = Avx2Backend;
#elif defined(SLJ_SIMD_SSE2)
struct Sse2Backend {};
using Active = Sse2Backend;
#elif defined(SLJ_SIMD_NEON)
struct NeonBackend {};
using Active = NeonBackend;
#else
using Active = ScalarBackend;
#endif

/// Human-readable name of the configured backend (for telemetry / bench JSON).
inline const char* backend_name() {
#if defined(SLJ_SIMD_AVX2)
  return "avx2";
#elif defined(SLJ_SIMD_SSE2)
  return "sse2";
#elif defined(SLJ_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// ---- VecF64: a fixed-width vector of doubles -------------------------------

template <class Backend>
struct VecF64;

template <>
struct VecF64<ScalarBackend> {
  static constexpr int kLanes = 1;
  double v;

  static VecF64 load(const double* p) { return {*p}; }
  static VecF64 broadcast(double x) { return {x}; }
  /// Loads kLanes int32 values widened to double (exact conversion).
  static VecF64 load_i32(const std::int32_t* p) { return {static_cast<double>(*p)}; }
  void store(double* p) const { *p = v; }

  friend VecF64 operator+(VecF64 a, VecF64 b) { return {a.v + b.v}; }
  friend VecF64 operator-(VecF64 a, VecF64 b) { return {a.v - b.v}; }
  friend VecF64 operator*(VecF64 a, VecF64 b) { return {a.v * b.v}; }
  friend VecF64 operator/(VecF64 a, VecF64 b) { return {a.v / b.v}; }

  VecF64 abs() const { return {std::fabs(v)}; }
  static VecF64 max(VecF64 a, VecF64 b) { return {a.v > b.v ? a.v : b.v}; }
  static VecF64 min(VecF64 a, VecF64 b) { return {a.v < b.v ? a.v : b.v}; }

  double reduce_max() const { return v; }

  /// Lane-wise inclusive prefix sum. Exact (hence bit-identical to a scalar
  /// running sum) only when every lane holds an integer-exact value; callers
  /// must guarantee that.
  VecF64 inclusive_scan() const { return *this; }
  /// Broadcast of the highest lane (the scan's carry-out).
  VecF64 broadcast_last() const { return *this; }

  /// Writes kLanes bytes: out[i] = (a[i] >= b[i]) ? 1 : 0.
  static void store_ge01(VecF64 a, VecF64 b, std::uint8_t* out) {
    out[0] = a.v >= b.v ? 1 : 0;
  }
};

#if defined(SLJ_SIMD_SSE2)
template <>
struct VecF64<Sse2Backend> {
  static constexpr int kLanes = 2;
  __m128d v;

  static VecF64 load(const double* p) { return {_mm_loadu_pd(p)}; }
  static VecF64 broadcast(double x) { return {_mm_set1_pd(x)}; }
  static VecF64 load_i32(const std::int32_t* p) {
    return {_mm_cvtepi32_pd(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)))};
  }
  void store(double* p) const { _mm_storeu_pd(p, v); }

  friend VecF64 operator+(VecF64 a, VecF64 b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecF64 operator-(VecF64 a, VecF64 b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecF64 operator*(VecF64 a, VecF64 b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend VecF64 operator/(VecF64 a, VecF64 b) { return {_mm_div_pd(a.v, b.v)}; }

  VecF64 abs() const {
    // Clear the sign bit; |x| is exact, same as std::fabs lane-wise.
    const __m128d mask = _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
    return {_mm_and_pd(v, mask)};
  }
  static VecF64 max(VecF64 a, VecF64 b) { return {_mm_max_pd(b.v, a.v)}; }
  static VecF64 min(VecF64 a, VecF64 b) { return {_mm_min_pd(b.v, a.v)}; }

  double reduce_max() const {
    const __m128d hi = _mm_unpackhi_pd(v, v);
    const __m128d m = _mm_max_sd(hi, v);
    return _mm_cvtsd_f64(m);
  }

  VecF64 inclusive_scan() const {
    // [v0, v1] -> [v0, v0+v1]; exact for integer-exact lanes.
    const __m128d shifted = _mm_castsi128_pd(_mm_slli_si128(_mm_castpd_si128(v), 8));
    return {_mm_add_pd(v, shifted)};
  }
  VecF64 broadcast_last() const { return {_mm_unpackhi_pd(v, v)}; }

  static void store_ge01(VecF64 a, VecF64 b, std::uint8_t* out) {
    const int bits = _mm_movemask_pd(_mm_cmpge_pd(a.v, b.v));
    out[0] = static_cast<std::uint8_t>(bits & 1);
    out[1] = static_cast<std::uint8_t>((bits >> 1) & 1);
  }
};
#endif  // SLJ_SIMD_SSE2

#if defined(SLJ_SIMD_AVX2)
template <>
struct VecF64<Avx2Backend> {
  static constexpr int kLanes = 4;
  __m256d v;

  static VecF64 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecF64 broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecF64 load_i32(const std::int32_t* p) {
    return {_mm256_cvtepi32_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)))};
  }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  friend VecF64 operator+(VecF64 a, VecF64 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecF64 operator-(VecF64 a, VecF64 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecF64 operator*(VecF64 a, VecF64 b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VecF64 operator/(VecF64 a, VecF64 b) { return {_mm256_div_pd(a.v, b.v)}; }

  VecF64 abs() const {
    const __m256d mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    return {_mm256_and_pd(v, mask)};
  }
  static VecF64 max(VecF64 a, VecF64 b) { return {_mm256_max_pd(b.v, a.v)}; }
  static VecF64 min(VecF64 a, VecF64 b) { return {_mm256_min_pd(b.v, a.v)}; }

  double reduce_max() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d m2 = _mm_max_pd(lo, hi);
    const __m128d m1 = _mm_max_sd(_mm_unpackhi_pd(m2, m2), m2);
    return _mm_cvtsd_f64(m1);
  }

  VecF64 inclusive_scan() const {
    // Hillis–Steele: shift-by-1 then shift-by-2 lane adds. Reassociates the
    // sum, so exact only for integer-exact lanes (the callers' contract).
    const __m256d z = _mm256_setzero_pd();
    // t = v + (v << 1 lane)
    __m256d s1 = _mm256_permute4x64_pd(v, _MM_SHUFFLE(2, 1, 0, 0));
    s1 = _mm256_blend_pd(s1, z, 0x1);
    const __m256d t = _mm256_add_pd(v, s1);
    // r = t + (t << 2 lanes)
    __m256d s2 = _mm256_permute4x64_pd(t, _MM_SHUFFLE(1, 0, 0, 0));
    s2 = _mm256_blend_pd(s2, z, 0x3);
    return {_mm256_add_pd(t, s2)};
  }
  VecF64 broadcast_last() const { return {_mm256_permute4x64_pd(v, _MM_SHUFFLE(3, 3, 3, 3))}; }

  static void store_ge01(VecF64 a, VecF64 b, std::uint8_t* out) {
    const int bits = _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ));
    out[0] = static_cast<std::uint8_t>(bits & 1);
    out[1] = static_cast<std::uint8_t>((bits >> 1) & 1);
    out[2] = static_cast<std::uint8_t>((bits >> 2) & 1);
    out[3] = static_cast<std::uint8_t>((bits >> 3) & 1);
  }
};
#endif  // SLJ_SIMD_AVX2

#if defined(SLJ_SIMD_NEON)
template <>
struct VecF64<NeonBackend> {
  static constexpr int kLanes = 2;
  float64x2_t v;

  static VecF64 load(const double* p) { return {vld1q_f64(p)}; }
  static VecF64 broadcast(double x) { return {vdupq_n_f64(x)}; }
  static VecF64 load_i32(const std::int32_t* p) {
    return {vcvtq_f64_s64(vmovl_s32(vld1_s32(p)))};
  }
  void store(double* p) const { vst1q_f64(p, v); }

  friend VecF64 operator+(VecF64 a, VecF64 b) { return {vaddq_f64(a.v, b.v)}; }
  friend VecF64 operator-(VecF64 a, VecF64 b) { return {vsubq_f64(a.v, b.v)}; }
  friend VecF64 operator*(VecF64 a, VecF64 b) { return {vmulq_f64(a.v, b.v)}; }
  friend VecF64 operator/(VecF64 a, VecF64 b) { return {vdivq_f64(a.v, b.v)}; }

  VecF64 abs() const { return {vabsq_f64(v)}; }
  static VecF64 max(VecF64 a, VecF64 b) { return {vmaxq_f64(a.v, b.v)}; }
  static VecF64 min(VecF64 a, VecF64 b) { return {vminq_f64(a.v, b.v)}; }

  double reduce_max() const { return vmaxvq_f64(v); }

  VecF64 inclusive_scan() const {
    const float64x2_t shifted = vextq_f64(vdupq_n_f64(0.0), v, 1);
    return {vaddq_f64(v, shifted)};
  }
  VecF64 broadcast_last() const { return {vdupq_laneq_f64(v, 1)}; }

  static void store_ge01(VecF64 a, VecF64 b, std::uint8_t* out) {
    const uint64x2_t ge = vcgeq_f64(a.v, b.v);
    out[0] = static_cast<std::uint8_t>(vgetq_lane_u64(ge, 0) & 1u);
    out[1] = static_cast<std::uint8_t>(vgetq_lane_u64(ge, 1) & 1u);
  }
};
#endif  // SLJ_SIMD_NEON

/// f64 lane width of the configured backend (telemetry / bench JSON).
inline int f64_lanes() { return VecF64<Active>::kLanes; }

// ---- VecU8: a fixed-width vector of bytes ----------------------------------

template <class Backend>
struct VecU8;

template <>
struct VecU8<ScalarBackend> {
  static constexpr int kLanes = 8;  // one 64-bit word at a time
  std::uint64_t v;

  static VecU8 load(const std::uint8_t* p) {
    std::uint64_t w;
    std::memcpy(&w, p, sizeof w);
    return {w};
  }
  bool any() const { return v != 0; }
};

#if defined(SLJ_SIMD_SSE2)
template <>
struct VecU8<Sse2Backend> {
  static constexpr int kLanes = 16;
  __m128i v;

  static VecU8 load(const std::uint8_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  bool any() const {
    const __m128i zero = _mm_setzero_si128();
    return _mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)) != 0xffff;
  }
};
#endif

#if defined(SLJ_SIMD_AVX2)
template <>
struct VecU8<Avx2Backend> {
  static constexpr int kLanes = 32;
  __m256i v;

  static VecU8 load(const std::uint8_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  bool any() const {
    const __m256i zero = _mm256_setzero_si256();
    return static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero))) != 0xffffffffu;
  }
};
#endif

#if defined(SLJ_SIMD_NEON)
template <>
struct VecU8<NeonBackend> {
  static constexpr int kLanes = 16;
  uint8x16_t v;

  static VecU8 load(const std::uint8_t* p) { return {vld1q_u8(p)}; }
  bool any() const { return vmaxvq_u8(v) != 0; }
};
#endif

/// u8 lane width of the configured backend (telemetry / bench JSON).
inline int u8_lanes() { return VecU8<Active>::kLanes; }

// ---- VecU16: a fixed-width vector of 16-bit pixel counts -------------------
//
// Backs the separable integer box filters (the binary median's sliding
// column counts). Counts are exact small integers; callers must keep every
// lane at or below 32767 — the x86 backends compare signed, and the kernels
// guard their window sizes so signed and unsigned compares agree.

template <class Backend>
struct VecU16;

template <>
struct VecU16<ScalarBackend> {
  static constexpr int kLanes = 1;
  std::uint16_t v;

  static VecU16 load(const std::uint16_t* p) { return {*p}; }
  static VecU16 broadcast(std::uint16_t x) { return {x}; }
  /// Loads kLanes bytes zero-extended to 16 bits.
  static VecU16 load_u8(const std::uint8_t* p) { return {*p}; }
  void store(std::uint16_t* p) const { *p = v; }

  friend VecU16 operator+(VecU16 a, VecU16 b) {
    return {static_cast<std::uint16_t>(a.v + b.v)};
  }
  friend VecU16 operator-(VecU16 a, VecU16 b) {
    return {static_cast<std::uint16_t>(a.v - b.v)};
  }

  /// Writes kLanes bytes: out[i] = (a[i] > b[i]) ? 1 : 0.
  static void store_gt01(VecU16 a, VecU16 b, std::uint8_t* out) {
    out[0] = a.v > b.v ? 1 : 0;
  }
};

#if defined(SLJ_SIMD_SSE2)
template <>
struct VecU16<Sse2Backend> {
  static constexpr int kLanes = 8;
  __m128i v;

  static VecU16 load(const std::uint16_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static VecU16 broadcast(std::uint16_t x) { return {_mm_set1_epi16(static_cast<short>(x))}; }
  static VecU16 load_u8(const std::uint8_t* p) {
    const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    return {_mm_unpacklo_epi8(bytes, _mm_setzero_si128())};
  }
  void store(std::uint16_t* p) const { _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v); }

  friend VecU16 operator+(VecU16 a, VecU16 b) { return {_mm_add_epi16(a.v, b.v)}; }
  friend VecU16 operator-(VecU16 a, VecU16 b) { return {_mm_sub_epi16(a.v, b.v)}; }

  static void store_gt01(VecU16 a, VecU16 b, std::uint8_t* out) {
    // Signed compare: identical to unsigned for lanes <= 32767 (the contract).
    const __m128i gt = _mm_cmpgt_epi16(a.v, b.v);
    const __m128i one = _mm_and_si128(gt, _mm_set1_epi16(1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out), _mm_packus_epi16(one, _mm_setzero_si128()));
  }
};
#endif  // SLJ_SIMD_SSE2

#if defined(SLJ_SIMD_AVX2)
template <>
struct VecU16<Avx2Backend> {
  static constexpr int kLanes = 16;
  __m256i v;

  static VecU16 load(const std::uint16_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static VecU16 broadcast(std::uint16_t x) {
    return {_mm256_set1_epi16(static_cast<short>(x))};
  }
  static VecU16 load_u8(const std::uint8_t* p) {
    return {_mm256_cvtepu8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)))};
  }
  void store(std::uint16_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }

  friend VecU16 operator+(VecU16 a, VecU16 b) { return {_mm256_add_epi16(a.v, b.v)}; }
  friend VecU16 operator-(VecU16 a, VecU16 b) { return {_mm256_sub_epi16(a.v, b.v)}; }

  static void store_gt01(VecU16 a, VecU16 b, std::uint8_t* out) {
    // Signed compare: identical to unsigned for lanes <= 32767 (the contract).
    const __m256i gt = _mm256_cmpgt_epi16(a.v, b.v);
    const __m256i one = _mm256_and_si256(gt, _mm256_set1_epi16(1));
    // packus interleaves 128-bit halves; the qword permute re-compacts the
    // 16 result bytes into the low half before the store.
    const __m256i packed = _mm256_packus_epi16(one, _mm256_setzero_si256());
    const __m256i fixed = _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(3, 1, 2, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm256_castsi256_si128(fixed));
  }
};
#endif  // SLJ_SIMD_AVX2

#if defined(SLJ_SIMD_NEON)
template <>
struct VecU16<NeonBackend> {
  static constexpr int kLanes = 8;
  uint16x8_t v;

  static VecU16 load(const std::uint16_t* p) { return {vld1q_u16(p)}; }
  static VecU16 broadcast(std::uint16_t x) { return {vdupq_n_u16(x)}; }
  static VecU16 load_u8(const std::uint8_t* p) { return {vmovl_u8(vld1_u8(p))}; }
  void store(std::uint16_t* p) const { vst1q_u16(p, v); }

  friend VecU16 operator+(VecU16 a, VecU16 b) { return {vaddq_u16(a.v, b.v)}; }
  friend VecU16 operator-(VecU16 a, VecU16 b) { return {vsubq_u16(a.v, b.v)}; }

  static void store_gt01(VecU16 a, VecU16 b, std::uint8_t* out) {
    const uint16x8_t gt = vcgtq_u16(a.v, b.v);
    vst1_u8(out, vmovn_u16(vandq_u16(gt, vdupq_n_u16(1))));
  }
};
#endif  // SLJ_SIMD_NEON

// ---- byte-plane primitives -------------------------------------------------

/// Index of the first nonzero byte in [p, p + n), or n when all are zero.
/// The workhorse behind sparse row scanning: silhouette / skeleton planes
/// are overwhelmingly background, so whole vector blocks are skipped per
/// test. The result is an index — trivially identical across backends.
template <class Backend>
inline std::size_t find_nonzero(const std::uint8_t* p, std::size_t n) {
  using V = VecU8<Backend>;
  std::size_t i = 0;
  while (i + V::kLanes <= n) {
    if (V::load(p + i).any()) break;
    i += V::kLanes;
  }
  // Scalar sweep inside the hit block (and over the tail).
  for (; i < n; ++i) {
    if (p[i] != 0) return i;
  }
  return n;
}

/// out[i] = (labels[i] == value) ? 1 : 0 for i in [0, n). The
/// largest-component mask writeback.
template <class Backend>
inline void store_equal01_i32(const int* labels, int value, std::uint8_t* out, std::size_t n);

template <>
inline void store_equal01_i32<ScalarBackend>(const int* labels, int value, std::uint8_t* out,
                                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = labels[i] == value ? 1 : 0;
}

#if defined(SLJ_SIMD_SSE2)
template <>
inline void store_equal01_i32<Sse2Backend>(const int* labels, int value, std::uint8_t* out,
                                           std::size_t n) {
  const __m128i needle = _mm_set1_epi32(value);
  const __m128i one = _mm_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i packed16[4];
    for (int b = 0; b < 4; ++b) {
      const __m128i eq =
          _mm_cmpeq_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(labels + i + 4 * b)),
                          needle);
      packed16[b] = _mm_and_si128(eq, one);
    }
    const __m128i lo = _mm_packs_epi32(packed16[0], packed16[1]);
    const __m128i hi = _mm_packs_epi32(packed16[2], packed16[3]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_packus_epi16(lo, hi));
  }
  for (; i < n; ++i) out[i] = labels[i] == value ? 1 : 0;
}
#endif

#if defined(SLJ_SIMD_AVX2)
template <>
inline void store_equal01_i32<Avx2Backend>(const int* labels, int value, std::uint8_t* out,
                                           std::size_t n) {
  const __m256i needle = _mm256_set1_epi32(value);
  const __m256i one = _mm256_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i packed32[4];
    for (int b = 0; b < 4; ++b) {
      const __m256i eq = _mm256_cmpeq_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(labels + i + 8 * b)), needle);
      packed32[b] = _mm256_and_si256(eq, one);
    }
    // packs operates within 128-bit halves; permute fixes the interleave.
    const __m256i lo = _mm256_packs_epi32(packed32[0], packed32[1]);
    const __m256i hi = _mm256_packs_epi32(packed32[2], packed32[3]);
    const __m256i bytes = _mm256_packus_epi16(lo, hi);
    const __m256i fixed =
        _mm256_permutevar8x32_epi32(bytes, _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), fixed);
  }
  for (; i < n; ++i) out[i] = labels[i] == value ? 1 : 0;
}
#endif

#if defined(SLJ_SIMD_NEON)
template <>
inline void store_equal01_i32<NeonBackend>(const int* labels, int value, std::uint8_t* out,
                                           std::size_t n) {
  const int32x4_t needle = vdupq_n_s32(value);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint16x4_t half[4];
    for (int b = 0; b < 4; ++b) {
      const uint32x4_t eq = vceqq_s32(vld1q_s32(labels + i + 4 * b), needle);
      half[b] = vmovn_u32(vshrq_n_u32(eq, 31));
    }
    const uint8x8_t lo = vmovn_u16(vcombine_u16(half[0], half[1]));
    const uint8x8_t hi = vmovn_u16(vcombine_u16(half[2], half[3]));
    vst1q_u8(out + i, vcombine_u8(lo, hi));
  }
  for (; i < n; ++i) out[i] = labels[i] == value ? 1 : 0;
}
#endif

/// out[i] = (src[i] != 0 || closed[i] == 0) ? 1 : 0 — the hole-fill
/// composition: foreground stays, unreached background becomes foreground.
template <class Backend>
inline void store_fill01_u8(const std::uint8_t* src, const std::uint8_t* closed, std::uint8_t* out,
                            std::size_t n);

template <>
inline void store_fill01_u8<ScalarBackend>(const std::uint8_t* src, const std::uint8_t* closed,
                                           std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = (src[i] != 0 || closed[i] == 0) ? 1 : 0;
}

#if defined(SLJ_SIMD_SSE2)
template <>
inline void store_fill01_u8<Sse2Backend>(const std::uint8_t* src, const std::uint8_t* closed,
                                         std::uint8_t* out, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi8(1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(closed + i));
    const __m128i src_zero = _mm_cmpeq_epi8(s, zero);       // 0xFF where src == 0
    const __m128i closed_zero = _mm_cmpeq_epi8(c, zero);    // 0xFF where closed == 0
    const __m128i keep = _mm_or_si128(_mm_andnot_si128(src_zero, _mm_set1_epi8(-1)), closed_zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_and_si128(keep, one));
  }
  for (; i < n; ++i) out[i] = (src[i] != 0 || closed[i] == 0) ? 1 : 0;
}
#endif

#if defined(SLJ_SIMD_AVX2)
template <>
inline void store_fill01_u8<Avx2Backend>(const std::uint8_t* src, const std::uint8_t* closed,
                                         std::uint8_t* out, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(closed + i));
    const __m256i src_zero = _mm256_cmpeq_epi8(s, zero);
    const __m256i closed_zero = _mm256_cmpeq_epi8(c, zero);
    const __m256i keep =
        _mm256_or_si256(_mm256_andnot_si256(src_zero, _mm256_set1_epi8(-1)), closed_zero);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_and_si256(keep, one));
  }
  for (; i < n; ++i) out[i] = (src[i] != 0 || closed[i] == 0) ? 1 : 0;
}
#endif

#if defined(SLJ_SIMD_NEON)
template <>
inline void store_fill01_u8<NeonBackend>(const std::uint8_t* src, const std::uint8_t* closed,
                                         std::uint8_t* out, std::size_t n) {
  const uint8x16_t zero = vdupq_n_u8(0);
  const uint8x16_t one = vdupq_n_u8(1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t c = vld1q_u8(closed + i);
    const uint8x16_t fg = vmvnq_u8(vceqq_u8(s, zero));  // 0xFF where src != 0
    const uint8x16_t hole = vceqq_u8(c, zero);          // 0xFF where closed == 0
    vst1q_u8(out + i, vandq_u8(vorrq_u8(fg, hole), one));
  }
  for (; i < n; ++i) out[i] = (src[i] != 0 || closed[i] == 0) ? 1 : 0;
}
#endif

}  // namespace slj::simd
