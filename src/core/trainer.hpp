// Training the pose DBN from clips (paper Sec. 4.1): every training frame
// runs through the full vision pipeline, the ground-truth part locations
// snap to the extracted key points, and the resulting feature vector plus
// the annotated pose/stage update the classifier's CPTs.
#pragma once

#include "core/pipeline.hpp"
#include "pose/classifier.hpp"
#include "synth/dataset.hpp"

namespace slj::core {

struct TrainingStats {
  std::size_t frames = 0;
  std::size_t frames_without_skeleton = 0;  ///< skipped: pipeline found nothing
  std::size_t missing_part_slots = 0;       ///< parts coded "missing" while training
};

/// Trains `classifier` on one labelled clip.
TrainingStats train_on_clip(pose::PoseDbnClassifier& classifier, FramePipeline& pipeline,
                            const synth::Clip& clip);

/// Trains on a whole dataset's training split.
TrainingStats train_on_dataset(pose::PoseDbnClassifier& classifier, FramePipeline& pipeline,
                               const synth::Dataset& dataset);

struct TrainerOptions {
  /// Qualitative training: learn a TAN structure over the part features
  /// (Chow–Liu on class-conditional mutual information) before the
  /// quantitative counting pass. The classifier must be untrained.
  bool learn_tan_structure = false;
};

/// Two-pass variant: optional structure learning, then counting. With
/// default options this equals plain train_on_dataset.
TrainingStats train_on_dataset(pose::PoseDbnClassifier& classifier, FramePipeline& pipeline,
                               const synth::Dataset& dataset, const TrainerOptions& options);

}  // namespace slj::core
