#include "core/evaluation.hpp"

#include <algorithm>

namespace slj::core {

namespace {

/// Classifies one already-processed frame and folds it into the tally.
void score_frame(ClipEvaluation& eval, const pose::PoseDbnClassifier& classifier,
                 const FrameObservation& obs, bool airborne, pose::PoseId truth_pose,
                 pose::Stage truth_stage, pose::PoseDbnClassifier::SequenceState& state) {
  const pose::FrameResult res = classifier.classify(obs.candidates, airborne, state);
  ++eval.frames;
  if (res.pose == truth_pose) ++eval.correct;
  if (res.pose == pose::PoseId::kUnknown) ++eval.unknown;
  if (res.pose != pose::PoseId::kUnknown && pose::stage_of(res.pose) == truth_stage) {
    ++eval.correct_stage;
  }
  eval.results.push_back(res);
  eval.truth.push_back(truth_pose);
}

}  // namespace

ClipEvaluation evaluate_clip(const pose::PoseDbnClassifier& classifier, FramePipeline& pipeline,
                             const synth::Clip& clip) {
  ClipEvaluation eval;
  pipeline.set_background(clip.background);
  pose::PoseDbnClassifier::SequenceState state = classifier.initial_state();
  GroundMonitor ground;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const FrameObservation obs = pipeline.process(clip.frames[i]);
    const bool airborne = ground.airborne(obs.bottom_row);
    score_frame(eval, classifier, obs, airborne, clip.truth[i].pose, clip.truth[i].stage,
                state);
  }
  return eval;
}

ClipEvaluation evaluate_clip(const pose::PoseDbnClassifier& classifier,
                             const ClipObservation& observation, const synth::Clip& clip) {
  ClipEvaluation eval;
  pose::PoseDbnClassifier::SequenceState state = classifier.initial_state();
  for (std::size_t i = 0; i < observation.frames.size(); ++i) {
    score_frame(eval, classifier, observation.frames[i], observation.airborne[i],
                clip.truth[i].pose, clip.truth[i].stage, state);
  }
  return eval;
}

std::size_t DatasetEvaluation::total_frames() const {
  std::size_t n = 0;
  for (const ClipEvaluation& c : clips) n += c.frames;
  return n;
}

std::size_t DatasetEvaluation::total_correct() const {
  std::size_t n = 0;
  for (const ClipEvaluation& c : clips) n += c.correct;
  return n;
}

double DatasetEvaluation::overall_accuracy() const {
  const std::size_t frames = total_frames();
  return frames == 0 ? 0.0
                     : static_cast<double>(total_correct()) / static_cast<double>(frames);
}

double DatasetEvaluation::min_clip_accuracy() const {
  double best = 1.0;
  for (const ClipEvaluation& c : clips) best = std::min(best, c.accuracy());
  return clips.empty() ? 0.0 : best;
}

double DatasetEvaluation::max_clip_accuracy() const {
  double best = 0.0;
  for (const ClipEvaluation& c : clips) best = std::max(best, c.accuracy());
  return best;
}

DatasetEvaluation evaluate_dataset(const pose::PoseDbnClassifier& classifier,
                                   FramePipeline& pipeline,
                                   const std::vector<synth::Clip>& clips) {
  DatasetEvaluation eval;
  for (const synth::Clip& clip : clips) {
    eval.clips.push_back(evaluate_clip(classifier, pipeline, clip));
  }
  return eval;
}

DatasetEvaluation evaluate_dataset(const pose::PoseDbnClassifier& classifier, ClipEngine& engine,
                                   const std::vector<synth::Clip>& clips) {
  DatasetEvaluation eval;
  eval.clips.reserve(clips.size());
  // Clip by clip (frames of each clip still run on the pool): the full
  // FrameObservations of one clip are dropped before the next is processed,
  // so peak memory is one clip's worth rather than the whole dataset's.
  for (std::size_t c = 0; c < clips.size(); ++c) {
    const ClipObservation observation = engine.process(clips[c]);
    eval.clips.push_back(evaluate_clip(classifier, observation, clips[c]));
  }
  return eval;
}

std::vector<int> error_run_lengths(const DatasetEvaluation& eval) {
  std::vector<int> runs;
  for (const ClipEvaluation& clip : eval.clips) {
    int run = 0;
    for (std::size_t i = 0; i < clip.results.size(); ++i) {
      const bool wrong = clip.results[i].pose != clip.truth[i];
      if (wrong) {
        ++run;
      } else if (run > 0) {
        runs.push_back(run);
        run = 0;
      }
    }
    if (run > 0) runs.push_back(run);
  }
  return runs;
}

ConfusionMatrix confusion_matrix(const DatasetEvaluation& eval) {
  ConfusionMatrix m{};
  for (const ClipEvaluation& clip : eval.clips) {
    for (std::size_t i = 0; i < clip.results.size(); ++i) {
      const int t = pose::index_of(clip.truth[i]);
      const int p = pose::index_of(clip.results[i].pose);  // kUnknown -> kPoseCount
      m[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)] += 1;
    }
  }
  return m;
}

}  // namespace slj::core
