// Jump scoring — the third component of the paper's system sketch (Sec. 1:
// "(1) human detection, (2) pose estimation, and (3) scoring"). The paper
// defers scoring to future work; this module implements the natural
// version: measure the jump distance from the silhouette sequence and
// combine it with the movement-standard checks into a graded score.
//
// Distance is measured the way a PE teacher does: from the toe position at
// take-off (last grounded frame before flight) to the heel position at
// landing (first grounded frame after flight), read off the silhouette's
// horizontal extent on the ground line.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/faults.hpp"
#include "core/pipeline.hpp"

namespace slj::core {

struct JumpMeasurement {
  int takeoff_frame = -1;     ///< last grounded frame before flight
  int landing_frame = -1;     ///< first grounded frame after flight
  double takeoff_toe_px = 0;  ///< foremost silhouette point at take-off
  double landing_heel_px = 0; ///< rearmost ground-contact point at landing
  double distance_px = 0.0;
  double distance_m = 0.0;    ///< using the supplied pixels-per-metre scale
  int flight_frames = 0;

  bool valid() const { return takeoff_frame >= 0 && landing_frame >= 0; }
};

/// Measures the jump from per-frame observations + flight flags.
/// `pixels_per_meter` converts to metres (0 → metres left at 0).
std::optional<JumpMeasurement> measure_jump(const std::vector<FrameObservation>& observations,
                                            const std::vector<bool>& airborne,
                                            double pixels_per_meter);

/// Letter-style grade of a jump: distance band + movement-standard checks.
struct JumpScore {
  JumpMeasurement measurement;
  JumpReport form;
  /// 0..100: 60 points from the form checks, 40 from the distance band.
  int total = 0;
  std::string grade;  ///< "excellent" / "good" / "fair" / "needs work"
};

/// `expected_distance_m` is the full-marks distance for the age group
/// (primary-school norm ~1.4 m).
JumpScore score_jump(const std::vector<FrameObservation>& observations,
                     const std::vector<bool>& airborne,
                     const std::vector<pose::FrameResult>& poses, double pixels_per_meter,
                     double expected_distance_m = 1.4);

}  // namespace slj::core
