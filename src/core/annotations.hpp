// Compile-time concurrency & hot-path invariant vocabulary.
//
// Three families of markers live here, all zero-cost at runtime:
//
//  1. Clang thread-safety annotations (SLJ_GUARDED_BY, SLJ_REQUIRES, ...)
//     plus the annotated lock types slj::Mutex / slj::LockGuard /
//     slj::CondVar. Under Clang with -Wthread-safety (scripts/ci.sh
//     --analyze turns the warnings into errors) the compiler proves lock
//     discipline: a guarded field touched without its mutex held, or a
//     _locked helper called without its SLJ_REQUIRES capability, fails the
//     build. On GCC and MSVC every macro expands to nothing and the
//     wrappers degrade to a plain std::mutex + std::unique_lock, so the
//     annotations cost nothing where they cannot be checked.
//
//  2. SLJ_HOT_PATH: marks a function as part of the allocation-free
//     per-frame path (the *_into kernels, FramePipeline::process_into,
//     StreamManager::tick_into). scripts/lint/slj_lint.py statically
//     rejects fresh heap allocation inside marked functions — `new`,
//     malloc-family calls, by-value owning containers, and container
//     growth on anything that is not a caller-supplied (recycled) buffer.
//     Under Clang the marker also emits an `annotate` attribute so
//     AST-level tooling can find the marked functions.
//
//  3. The lock wrappers double as a lint anchor: slj_lint.py bans naked
//     std::mutex / std::lock_guard / std::unique_lock / std::scoped_lock /
//     std::condition_variable everywhere in src/ except this header, so
//     every new mutex in the codebase arrives annotated by construction.
//
// How to annotate a new mutex (see README "Static analysis"):
//
//   class Thing {
//     void touch() SLJ_EXCLUDES(mutex_);            // public: takes the lock
//    private:
//     void touch_locked() SLJ_REQUIRES(mutex_);     // helper: caller holds it
//     slj::Mutex mutex_;
//     int state_ SLJ_GUARDED_BY(mutex_) = 0;        // only under mutex_
//   };
//
// Condition-variable waits: evaluate the predicate in the annotated scope
// (an explicit `while (!cond) cv.wait(lock);` loop) instead of passing a
// predicate lambda — Clang analyzes lambdas as separate functions that do
// not hold the capability, so a predicate lambda reading guarded fields
// would be (correctly, but uselessly) flagged.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---- attribute plumbing ----------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SLJ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SLJ_THREAD_ANNOTATION
#define SLJ_THREAD_ANNOTATION(x)  // no-op off Clang: GCC/MSVC see plain code
#endif

// ---- thread-safety annotations ---------------------------------------------
// Names follow the Clang thread-safety capability vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed so the
// no-op fallback can never collide with other libraries' macros.

/// Declares a class to be a lockable capability (see slj::Mutex).
#define SLJ_CAPABILITY(x) SLJ_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires on construction, releases on
/// destruction (see slj::LockGuard).
#define SLJ_SCOPED_CAPABILITY SLJ_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define SLJ_GUARDED_BY(x) SLJ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding `x`.
#define SLJ_PT_GUARDED_BY(x) SLJ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and does not release it.
#define SLJ_ACQUIRE(...) SLJ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define SLJ_RELEASE(...) SLJ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define SLJ_TRY_ACQUIRE(b, ...) SLJ_THREAD_ANNOTATION(try_acquire_capability(b, ##__VA_ARGS__))

/// Caller must already hold the capability (the _locked helper contract).
#define SLJ_REQUIRES(...) SLJ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock-by-relock guard).
#define SLJ_EXCLUDES(...) SLJ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot follow. Use sparingly and say
/// why at the use site.
#define SLJ_NO_THREAD_SAFETY_ANALYSIS SLJ_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---- hot-path marker -------------------------------------------------------

/// Marks a function as part of the allocation-free per-frame path.
/// slj_lint.py forbids fresh heap allocation in marked functions: only
/// capacity-recycling growth on caller-supplied buffers (workspace / out
/// parameters taken by reference) is permitted, because their capacity
/// survives across frames. Cold error paths (`throw` statements) are
/// exempt — an aborted frame may allocate its exception message.
#if defined(__clang__)
#define SLJ_HOT_PATH __attribute__((annotate("slj_hot_path")))
#else
#define SLJ_HOT_PATH
#endif

namespace slj {

// ---- annotated lock types --------------------------------------------------

/// std::mutex with the capability attribute: fields declared
/// SLJ_GUARDED_BY(mutex_) can only be touched while it is held. This is the
/// only mutex type allowed in src/ (lint rule naked-mutex).
class SLJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SLJ_ACQUIRE() { mu_.lock(); }
  void unlock() SLJ_RELEASE() { mu_.unlock(); }
  bool try_lock() SLJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class LockGuard;
  std::mutex mu_;
};

/// Scoped lock over slj::Mutex (the std::unique_lock of this vocabulary).
/// Handed to slj::CondVar for waits; the analysis treats the capability as
/// held across a wait, which matches how guarded state must be re-checked
/// in the enclosing loop anyway.
class SLJ_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) SLJ_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~LockGuard() SLJ_RELEASE() {}

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable bound to slj::LockGuard. Deliberately predicate-free:
/// spell the predicate as a `while` loop in the annotated caller so guarded
/// reads happen where the capability is provably held (see file comment).
class CondVar {
 public:
  void wait(LockGuard& lock) { cv_.wait(lock.lk_); }

  template <class Rep, class Period>
  std::cv_status wait_for(LockGuard& lock, const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.lk_, d);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(LockGuard& lock,
                            const std::chrono::time_point<Clock, Duration>& t) {
    return cv_.wait_until(lock.lk_, t);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace slj
