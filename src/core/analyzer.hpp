// JumpAnalyzer: the user-facing facade. Owns the pipeline and a trained
// classifier; turns a video clip into per-frame poses and a coaching
// report. This is the "system for analyzing poses in a standing long jump
// automatically" of the paper's abstract.
#pragma once

#include <vector>

#include "core/faults.hpp"
#include "core/pipeline.hpp"
#include "pose/classifier.hpp"
#include "synth/dataset.hpp"

namespace slj::core {

struct ClipAnalysis {
  std::vector<pose::FrameResult> frames;
  JumpReport report;
};

class JumpAnalyzer {
 public:
  JumpAnalyzer(PipelineParams pipeline_params, pose::ClassifierConfig classifier_config);

  FramePipeline& pipeline() { return pipeline_; }
  const FramePipeline& pipeline() const { return pipeline_; }
  pose::PoseDbnClassifier& classifier() { return classifier_; }
  const pose::PoseDbnClassifier& classifier() const { return classifier_; }

  /// Trains on a dataset's training split (full pipeline per frame).
  void train(const synth::Dataset& dataset);

  /// Analyzes a raw clip: background plate + frames.
  ClipAnalysis analyze(const RgbImage& background, const std::vector<RgbImage>& frames);

  /// Convenience overload for generated clips.
  ClipAnalysis analyze(const synth::Clip& clip);

 private:
  FramePipeline pipeline_;
  pose::PoseDbnClassifier classifier_;
};

}  // namespace slj::core
