// The frame pipeline: RGB frame → silhouette → thinned skeleton → cleaned
// skeleton graph → key points → feature candidates. This is the glue that
// turns the paper's Sections 2–4 into one call per frame.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/annotations.hpp"
#include "detection/blob_tracker.hpp"
#include "imaging/frame_workspace.hpp"
#include "imaging/image.hpp"
#include "pose/skeleton_features.hpp"
#include "segmentation/object_extractor.hpp"
#include "skelgraph/artifacts.hpp"

namespace slj::core {

struct PipelineParams {
  seg::ExtractorParams extractor;
  int min_branch_vertices = 10;  ///< the paper's pruning threshold
  int num_areas = 8;
  pose::CandidateOptions candidates;
  /// Piecewise-linear refinement (ref [7]): split edges at bend vertices so
  /// articulations inside merged limbs (knee, elbow) become key points.
  bool split_bends = true;
  double bend_tolerance = 2.5;
};

/// Everything the pipeline derives from one frame, kept so benches and
/// examples can inspect any intermediate stage.
struct FrameObservation {
  BinaryImage silhouette;
  BinaryImage raw_skeleton;       ///< Z-S output before graph cleanup
  skel::SkeletonGraph graph;      ///< after loop cut + pruning
  skel::CleanupStats cleanup;
  std::vector<skel::KeyPoint> key_points;
  std::vector<pose::FeatureCandidate> candidates;
  int bottom_row = -1;            ///< lowest silhouette row; -1 if empty
};

/// Derives the "jumping stage flag" observable: tracks the ground line from
/// the first frames of a clip and reports when the silhouette's lowest
/// point has left it.
///
/// Calibration spans the first `calibration_frames` grounded frames: the
/// ground line is the max (lowest point in image coordinates) of their
/// bottom rows, so one under-segmented first frame — legs clipped, bottom
/// row too high — can no longer mis-flag the whole clip airborne. Frames
/// already assessed airborne against the running estimate never extend the
/// calibration, which keeps a jump that starts early from dragging the
/// ground line up into the air. Flags stay streaming: each frame is judged
/// against the estimate as of that frame, never retroactively.
class GroundMonitor {
 public:
  explicit GroundMonitor(int lift_threshold_px = 3, int calibration_frames = kDefaultCalibrationFrames)
      : threshold_(lift_threshold_px), calibration_frames_(calibration_frames) {
    if (calibration_frames < 1) {
      throw std::invalid_argument("GroundMonitor: calibration_frames must be >= 1");
    }
  }

  /// Grounded frames the ground line is calibrated over.
  static constexpr int kDefaultCalibrationFrames = 5;

  /// Feeds one frame's bottom row; returns the airborne flag for it.
  bool airborne(int bottom_row) {
    if (bottom_row < 0) return ground_row_ >= 0 && last_airborne_;
    const bool flying = ground_row_ >= 0 && bottom_row < ground_row_ - threshold_;
    if (!flying && calibrated_frames_ < calibration_frames_) {
      ground_row_ = std::max(ground_row_, bottom_row);
      ++calibrated_frames_;
    }
    last_airborne_ = flying;
    return flying;
  }

  int ground_row() const { return ground_row_; }
  void reset() {
    ground_row_ = -1;
    calibrated_frames_ = 0;
    last_airborne_ = false;
  }

 private:
  int threshold_;
  int calibration_frames_;
  int ground_row_ = -1;
  int calibrated_frames_ = 0;
  bool last_airborne_ = false;
};

class FramePipeline {
 public:
  explicit FramePipeline(PipelineParams params = {});

  const PipelineParams& params() const { return params_; }
  const pose::AreaEncoder& encoder() const { return encoder_; }
  const seg::ObjectExtractor& extractor() const { return extractor_; }

  /// Installs the empty-studio background plate.
  void set_background(const RgbImage& background);

  /// Full per-frame processing (the extractor's largest component is taken
  /// as the jumper).
  FrameObservation process(const RgbImage& frame) const;

  /// Full per-frame processing with human detection: the jumper blob is
  /// selected by the tracker (paper component (1)) rather than by size, so
  /// distractor blobs — a second person, lighting flicker — are ignored.
  /// Falls back to the plain extractor result while no track is confirmed.
  FrameObservation process(const RgbImage& frame, detect::BlobTracker& tracker) const;

  /// Workspace fast paths: bit-identical observations, but every full-frame
  /// intermediate lives in `ws`, so steady-state processing (same-sized
  /// frames through the same workspace) allocates no full-frame buffer. The
  /// engines give each worker lane / live session its own workspace; a
  /// workspace must never be shared between concurrent calls.
  FrameObservation process(const RgbImage& frame, FrameWorkspace& ws) const;
  FrameObservation process(const RgbImage& frame, detect::BlobTracker& tracker,
                           FrameWorkspace& ws) const;

  /// Same, writing into an existing observation so its buffers are reused
  /// frame over frame (the StreamEngine steady state). A multi-band `exec`
  /// spreads the segmentation passes of a single frame across worker threads
  /// (row-banded, bit-identical at any band count).
  SLJ_HOT_PATH void process_into(const RgbImage& frame, FrameWorkspace& ws, FrameObservation& out,
                    BandExecutor* exec = nullptr) const;
  SLJ_HOT_PATH void process_into(const RgbImage& frame, detect::BlobTracker& tracker, FrameWorkspace& ws,
                    FrameObservation& out, BandExecutor* exec = nullptr) const;

  /// Pipeline from an already-extracted silhouette (used by tests and by
  /// benches that feed ground-truth masks).
  FrameObservation process_silhouette(const BinaryImage& silhouette) const;

 private:
  /// Stages after segmentation: thinning, graph cleanup, key points,
  /// candidates, bottom row. Expects out.silhouette to be set.
  void finish_observation(FrameWorkspace& ws, FrameObservation& out) const;
  /// Stages after thinning, shared by the seed and workspace paths; a
  /// non-null `ws` routes the graph build's full-frame temporaries through
  /// the workspace (bit-identical output).
  void finish_graph_stages(FrameObservation& out, FrameWorkspace* ws) const;

  PipelineParams params_;
  seg::ObjectExtractor extractor_;
  pose::AreaEncoder encoder_;
};

}  // namespace slj::core
