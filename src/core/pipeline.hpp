// The frame pipeline: RGB frame → silhouette → thinned skeleton → cleaned
// skeleton graph → key points → feature candidates. This is the glue that
// turns the paper's Sections 2–4 into one call per frame.
#pragma once

#include <vector>

#include "detection/blob_tracker.hpp"
#include "imaging/image.hpp"
#include "pose/skeleton_features.hpp"
#include "segmentation/object_extractor.hpp"
#include "skelgraph/artifacts.hpp"

namespace slj::core {

struct PipelineParams {
  seg::ExtractorParams extractor;
  int min_branch_vertices = 10;  ///< the paper's pruning threshold
  int num_areas = 8;
  pose::CandidateOptions candidates;
  /// Piecewise-linear refinement (ref [7]): split edges at bend vertices so
  /// articulations inside merged limbs (knee, elbow) become key points.
  bool split_bends = true;
  double bend_tolerance = 2.5;
};

/// Everything the pipeline derives from one frame, kept so benches and
/// examples can inspect any intermediate stage.
struct FrameObservation {
  BinaryImage silhouette;
  BinaryImage raw_skeleton;       ///< Z-S output before graph cleanup
  skel::SkeletonGraph graph;      ///< after loop cut + pruning
  skel::CleanupStats cleanup;
  std::vector<skel::KeyPoint> key_points;
  std::vector<pose::FeatureCandidate> candidates;
  int bottom_row = -1;            ///< lowest silhouette row; -1 if empty
};

/// Derives the "jumping stage flag" observable: tracks the ground line from
/// the first frames of a clip and reports when the silhouette's lowest
/// point has left it.
class GroundMonitor {
 public:
  explicit GroundMonitor(int lift_threshold_px = 3) : threshold_(lift_threshold_px) {}

  /// Feeds one frame's bottom row; returns the airborne flag for it.
  bool airborne(int bottom_row) {
    if (bottom_row < 0) return ground_row_ >= 0 && last_airborne_;
    if (ground_row_ < 0) ground_row_ = bottom_row;  // calibrate on first visible frame
    last_airborne_ = bottom_row < ground_row_ - threshold_;
    return last_airborne_;
  }

  int ground_row() const { return ground_row_; }
  void reset() {
    ground_row_ = -1;
    last_airborne_ = false;
  }

 private:
  int threshold_;
  int ground_row_ = -1;
  bool last_airborne_ = false;
};

class FramePipeline {
 public:
  explicit FramePipeline(PipelineParams params = {});

  const PipelineParams& params() const { return params_; }
  const pose::AreaEncoder& encoder() const { return encoder_; }
  const seg::ObjectExtractor& extractor() const { return extractor_; }

  /// Installs the empty-studio background plate.
  void set_background(const RgbImage& background);

  /// Full per-frame processing (the extractor's largest component is taken
  /// as the jumper).
  FrameObservation process(const RgbImage& frame) const;

  /// Full per-frame processing with human detection: the jumper blob is
  /// selected by the tracker (paper component (1)) rather than by size, so
  /// distractor blobs — a second person, lighting flicker — are ignored.
  /// Falls back to the plain extractor result while no track is confirmed.
  FrameObservation process(const RgbImage& frame, detect::BlobTracker& tracker) const;

  /// Pipeline from an already-extracted silhouette (used by tests and by
  /// benches that feed ground-truth masks).
  FrameObservation process_silhouette(const BinaryImage& silhouette) const;

 private:
  PipelineParams params_;
  seg::ObjectExtractor extractor_;
  pose::AreaEncoder encoder_;
};

}  // namespace slj::core
