#include "core/pipeline.hpp"

#include "core/profiler.hpp"
#include "core/simd.hpp"
#include "obs/tracer.hpp"
#include "imaging/morphology.hpp"
#include "skelgraph/simplify.hpp"
#include "thinning/zhang_suen.hpp"

namespace slj::core {

FramePipeline::FramePipeline(PipelineParams params)
    : params_(params), extractor_(params.extractor), encoder_(params.num_areas) {}

void FramePipeline::set_background(const RgbImage& background) {
  extractor_.set_background(background);
}

FrameObservation FramePipeline::process(const RgbImage& frame) const {
  return process_silhouette(extractor_.silhouette(frame));
}

FrameObservation FramePipeline::process(const RgbImage& frame,
                                        detect::BlobTracker& tracker) const {
  const seg::ExtractionResult res = extractor_.extract(frame);
  const detect::TrackResult track = tracker.update(res.smoothed);
  if (track.measured) {
    return process_silhouette(fill_holes(track.mask));
  }
  // No confirmed person blob this frame: fall back to the extractor's own
  // cleanup so the clip keeps flowing (and the tracker can re-acquire).
  return process_silhouette(res.silhouette);
}

FrameObservation FramePipeline::process(const RgbImage& frame, FrameWorkspace& ws) const {
  FrameObservation obs;
  process_into(frame, ws, obs);
  return obs;
}

FrameObservation FramePipeline::process(const RgbImage& frame, detect::BlobTracker& tracker,
                                        FrameWorkspace& ws) const {
  FrameObservation obs;
  process_into(frame, tracker, ws, obs);
  return obs;
}

SLJ_HOT_PATH void FramePipeline::process_into(const RgbImage& frame, FrameWorkspace& ws,
                                 FrameObservation& out, BandExecutor* exec) const {
  obs::TraceSpan trace("vision");
  {
    SLJ_PROFILE_SCOPE(ProfileStage::kExtract);
    extractor_.extract_into(frame, ws, out.silhouette, exec);
  }
  finish_observation(ws, out);
}

SLJ_HOT_PATH void FramePipeline::process_into(const RgbImage& frame, detect::BlobTracker& tracker,
                                 FrameWorkspace& ws, FrameObservation& out,
                                 BandExecutor* exec) const {
  obs::TraceSpan trace("vision");
  {
    SLJ_PROFILE_SCOPE(ProfileStage::kExtract);
    extractor_.extract_into(frame, ws, out.silhouette, exec);
    // The extractor is done with ws.labeling/pixel_stack; the tracker's
    // component pass reuses them instead of allocating its own Labeling.
    const detect::TrackResult track = tracker.update(ws.smoothed, ws.labeling, ws.pixel_stack);
    if (track.measured) {
      fill_holes_into(track.mask, ws.reached, ws.flood_stack, out.silhouette);
    }
    // else: keep the extractor's own cleanup (already in out.silhouette) so
    // the clip keeps flowing, matching process(frame, tracker).
  }
  finish_observation(ws, out);
}

// Stages downstream of thinning, shared by the seed and workspace paths so
// they cannot diverge: graph cleanup, key points, candidates, bottom row.
// Expects obs.silhouette and obs.raw_skeleton to be set.
void FramePipeline::finish_graph_stages(FrameObservation& obs, FrameWorkspace* ws) const {
  {
    SLJ_PROFILE_SCOPE(ProfileStage::kSkelGraph);
    obs.graph = ws != nullptr
                    ? skel::clean_skeleton(obs.raw_skeleton, *ws, params_.min_branch_vertices,
                                           &obs.cleanup)
                    : skel::clean_skeleton(obs.raw_skeleton, params_.min_branch_vertices,
                                           &obs.cleanup);
    if (params_.split_bends) {
      skel::split_edges_at_bends(obs.graph, params_.bend_tolerance);
    }
    obs.key_points = skel::extract_key_points(obs.graph);
  }
  SLJ_PROFILE_SCOPE(ProfileStage::kFeatures);
  obs.candidates = pose::enumerate_candidates(obs.graph, encoder_, params_.candidates);
  obs.bottom_row = -1;
  const std::size_t w = static_cast<std::size_t>(obs.silhouette.width());
  const std::uint8_t* data = obs.silhouette.data().data();
  for (int y = obs.silhouette.height() - 1; y >= 0; --y) {
    const std::uint8_t* row = data + static_cast<std::size_t>(y) * w;
    if (simd::find_nonzero<simd::Active>(row, w) != w) {
      obs.bottom_row = y;
      break;
    }
  }
}

void FramePipeline::finish_observation(FrameWorkspace& ws, FrameObservation& obs) const {
  {
    SLJ_PROFILE_SCOPE(ProfileStage::kThin);
    thin::zhang_suen_thin_into(obs.silhouette, ws, obs.raw_skeleton);
  }
  finish_graph_stages(obs, &ws);
}

FrameObservation FramePipeline::process_silhouette(const BinaryImage& silhouette) const {
  FrameObservation obs;
  obs.silhouette = silhouette;
  {
    SLJ_PROFILE_SCOPE(ProfileStage::kThin);
    obs.raw_skeleton = thin::zhang_suen_thin(obs.silhouette);
  }
  finish_graph_stages(obs, nullptr);
  return obs;
}

}  // namespace slj::core
