#include "core/pipeline.hpp"

#include "imaging/morphology.hpp"
#include "skelgraph/simplify.hpp"
#include "thinning/zhang_suen.hpp"

namespace slj::core {

FramePipeline::FramePipeline(PipelineParams params)
    : params_(params), extractor_(params.extractor), encoder_(params.num_areas) {}

void FramePipeline::set_background(const RgbImage& background) {
  extractor_.set_background(background);
}

FrameObservation FramePipeline::process(const RgbImage& frame) const {
  return process_silhouette(extractor_.silhouette(frame));
}

FrameObservation FramePipeline::process(const RgbImage& frame,
                                        detect::BlobTracker& tracker) const {
  const seg::ExtractionResult res = extractor_.extract(frame);
  const detect::TrackResult track = tracker.update(res.smoothed);
  if (track.measured) {
    return process_silhouette(fill_holes(track.mask));
  }
  // No confirmed person blob this frame: fall back to the extractor's own
  // cleanup so the clip keeps flowing (and the tracker can re-acquire).
  return process_silhouette(res.silhouette);
}

FrameObservation FramePipeline::process_silhouette(const BinaryImage& silhouette) const {
  FrameObservation obs;
  obs.silhouette = silhouette;
  obs.raw_skeleton = thin::zhang_suen_thin(obs.silhouette);
  obs.graph = skel::clean_skeleton(obs.raw_skeleton, params_.min_branch_vertices, &obs.cleanup);
  if (params_.split_bends) {
    skel::split_edges_at_bends(obs.graph, params_.bend_tolerance);
  }
  obs.key_points = skel::extract_key_points(obs.graph);
  obs.candidates = pose::enumerate_candidates(obs.graph, encoder_, params_.candidates);
  obs.bottom_row = -1;
  for (int y = obs.silhouette.height() - 1; y >= 0 && obs.bottom_row < 0; --y) {
    for (int x = 0; x < obs.silhouette.width(); ++x) {
      if (obs.silhouette.at(x, y)) {
        obs.bottom_row = y;
        break;
      }
    }
  }
  return obs;
}

}  // namespace slj::core
