#include "core/clip_engine.hpp"

#include <algorithm>
#include <utility>

namespace slj::core {

// ---- WorkerPool ------------------------------------------------------------

WorkerPool::WorkerPool(unsigned workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every batch, so it counts as one lane.
  const unsigned extra = workers > 1 ? workers - 1 : 0;
  threads_.reserve(extra);
  for (unsigned i = 0; i < extra; ++i) {
    // Lane 0 is the calling thread; workers take lanes 1..extra.
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

WorkerPool::~WorkerPool() {
  {
    slj::LockGuard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run_tasks(RawTask task, void* ctx, std::size_t count, std::size_t lane) {
  for (;;) {
    // slj-atomic: counter — ticket dispenser; each lane claims a unique index
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      task(ctx, lane, i);
    } catch (...) {
      slj::LockGuard lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    RawTask task = nullptr;
    void* ctx = nullptr;
    std::size_t count = 0;
    {
      slj::LockGuard lock(mutex_);
      while (!stop_ && generation_ == seen) wake_.wait(lock);
      if (stop_) return;
      seen = generation_;
      task = task_;
      ctx = task_ctx_;
      count = count_;
    }
    run_tasks(task, ctx, count, lane);
    {
      slj::LockGuard lock(mutex_);
      if (--active_ == 0) done_.notify_one();
    }
  }
}

void WorkerPool::dispatch(std::size_t count, void* ctx, RawTask task) {
  {
    slj::LockGuard lock(mutex_);
    task_ = task;
    task_ctx_ = ctx;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);  // slj-atomic: counter
    error_ = nullptr;
    active_ = threads_.size();
    ++generation_;
  }
  wake_.notify_all();
  run_tasks(task, ctx, count, /*lane=*/0);
  std::exception_ptr error;
  {
    slj::LockGuard lock(mutex_);
    while (active_ != 0) done_.wait(lock);
    task_ = nullptr;
    task_ctx_ = nullptr;
    error = std::exchange(error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void WorkerPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  parallel_for_lanes(count, [&fn](std::size_t, std::size_t i) { fn(i); });
}

void WorkerPool::parallel_for_lanes(std::size_t count,
                                    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  dispatch(count, const_cast<void*>(static_cast<const void*>(&fn)),
           [](void* ctx, std::size_t lane, std::size_t i) {
             (*static_cast<const std::function<void(std::size_t, std::size_t)>*>(ctx))(lane, i);
           });
}

namespace {

/// Stack context for parallel_rows' captureless trampoline.
struct RowsTask {
  int rows;
  int bands;
  void* ctx;
  BandExecutor::RowFn fn;
};

void run_band(void* c, std::size_t /*lane*/, std::size_t b) {
  const RowsTask* t = static_cast<const RowsTask*>(c);
  const int band = static_cast<int>(b);
  t->fn(t->ctx, band, band_begin(t->rows, t->bands, band),
        band_begin(t->rows, t->bands, band + 1));
}

}  // namespace

void WorkerPool::parallel_rows(int rows, int bands, void* ctx, BandExecutor::RowFn fn) {
  if (bands <= 0) return;
  RowsTask task{rows, bands, ctx, fn};
  if (threads_.empty() || bands == 1) {
    for (int b = 0; b < bands; ++b) run_band(&task, 0, static_cast<std::size_t>(b));
    return;
  }
  dispatch(static_cast<std::size_t>(bands), &task, &run_band);
}

// ---- ClipEngine ------------------------------------------------------------

std::vector<std::vector<pose::FeatureCandidate>> ClipObservation::candidate_sets() const {
  std::vector<std::vector<pose::FeatureCandidate>> sets;
  sets.reserve(frames.size());
  for (const FrameObservation& obs : frames) sets.push_back(obs.candidates);
  return sets;
}

ClipEngine::ClipEngine(PipelineParams params, ClipEngineConfig config)
    : params_(params), config_(config), pool_(config.workers), workspaces_(pool_.size() + 1) {}

ClipObservation ClipEngine::aggregate(std::vector<FrameObservation> frames) const {
  ClipObservation clip;
  clip.frames = std::move(frames);
  clip.airborne.reserve(clip.frames.size());
  GroundMonitor ground(config_.lift_threshold_px, config_.ground_calibration_frames);
  for (const FrameObservation& obs : clip.frames) {
    const bool flying = ground.airborne(obs.bottom_row);
    clip.airborne.push_back(flying);
    if (flying) ++clip.airborne_frames;
    if (obs.bottom_row < 0) ++clip.empty_frames;
  }
  clip.ground_row = ground.ground_row();
  return clip;
}

ClipObservation ClipEngine::process_serial_tracked(const RgbImage& background,
                                                   const std::vector<RgbImage>& frames,
                                                   FrameWorkspace& ws,
                                                   BandExecutor* exec) const {
  FramePipeline pipeline(params_);
  pipeline.set_background(background);
  detect::BlobTracker tracker(config_.tracker);
  std::vector<FrameObservation> observations(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    pipeline.process_into(frames[i], tracker, ws, observations[i], exec);
  }
  return aggregate(std::move(observations));
}

ClipObservation ClipEngine::process(const RgbImage& background,
                                    const std::vector<RgbImage>& frames) {
  const int bands = std::max(1, config_.intra_frame_bands);
  PoolBandExecutor band_exec(pool_, bands);
  BandExecutor* exec = bands > 1 ? &band_exec : nullptr;
  if (config_.use_tracker) {
    return process_serial_tracked(background, frames, workspaces_.front(), exec);
  }
  FramePipeline pipeline(params_);
  pipeline.set_background(background);
  std::vector<FrameObservation> observations(frames.size());
  if (exec != nullptr) {
    // Banding and frame-parallelism cannot nest (the pool runs one batch at
    // a time): walk frames serially, spread each frame's rows across the
    // pool. Same observations bit for bit as the frame-parallel path.
    FrameWorkspace& ws = workspaces_.front();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      pipeline.process_into(frames[i], ws, observations[i], exec);
    }
    return aggregate(std::move(observations));
  }
  pool_.parallel_for_lanes(frames.size(), [&](std::size_t lane, std::size_t i) {
    pipeline.process_into(frames[i], workspaces_[lane], observations[i]);
  });
  return aggregate(std::move(observations));
}

ClipObservation ClipEngine::process(const synth::Clip& clip) {
  return process(clip.background, clip.frames);
}

std::vector<ClipObservation> ClipEngine::process(const std::vector<synth::Clip>& clips) {
  std::vector<ClipObservation> results(clips.size());
  if (config_.use_tracker) {
    // Tracking is stateful in frame order: one sequential task per clip.
    pool_.parallel_for_lanes(clips.size(), [&](std::size_t lane, std::size_t c) {
      // No banding here: this already runs inside a pool batch.
      results[c] = process_serial_tracked(clips[c].background, clips[c].frames, workspaces_[lane],
                                          nullptr);
    });
    return results;
  }

  // Flatten the frame index space of all clips so lanes never idle at clip
  // boundaries (the last frames of clip k overlap the first of clip k+1).
  std::vector<FramePipeline> pipelines;
  pipelines.reserve(clips.size());
  std::vector<std::size_t> offsets(clips.size() + 1, 0);
  for (std::size_t c = 0; c < clips.size(); ++c) {
    pipelines.emplace_back(params_);
    pipelines.back().set_background(clips[c].background);
    offsets[c + 1] = offsets[c] + clips[c].frames.size();
  }
  std::vector<std::vector<FrameObservation>> observations(clips.size());
  for (std::size_t c = 0; c < clips.size(); ++c) {
    observations[c].resize(clips[c].frames.size());
  }
  pool_.parallel_for_lanes(offsets.back(), [&](std::size_t lane, std::size_t flat) {
    const auto it = std::upper_bound(offsets.begin(), offsets.end(), flat);
    const std::size_t c = static_cast<std::size_t>(it - offsets.begin()) - 1;
    const std::size_t f = flat - offsets[c];
    pipelines[c].process_into(clips[c].frames[f], workspaces_[lane], observations[c][f]);
  });
  for (std::size_t c = 0; c < clips.size(); ++c) {
    results[c] = aggregate(std::move(observations[c]));
  }
  return results;
}

}  // namespace slj::core
