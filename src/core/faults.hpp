// Movement-fault identification against the standing-long-jump standard —
// the "scoring" part the paper's system sketch (Sec. 1) motivates: "With
// the determined poses in all the frames, bad movements can thus be
// identified … advices to the jumper can be given."
//
// Each rule checks that the pose sequence contains the movement the
// standard requires at the right stage; a missing movement produces a
// finding with coaching advice.
#pragma once

#include <string>
#include <vector>

#include "pose/classifier.hpp"
#include "pose/pose_catalog.hpp"

namespace slj::core {

enum class FaultRule {
  kArmBackswing,      ///< arms must swing backward during preparation
  kPreparatoryCrouch, ///< knees must load deeply before take-off
  kArmDriveForward,   ///< arms must drive forward/up through take-off
  kFlightLegCarry,    ///< knees tuck / legs reach forward during flight
  kLandingAbsorption, ///< knees must bend on touchdown
  kCompleteSequence,  ///< all four stages must be present
};

std::string_view rule_name(FaultRule r);
std::string_view rule_advice(FaultRule r);

struct FaultFinding {
  FaultRule rule;
  bool passed = false;
  /// Frames (indices into the clip) that satisfied the rule; empty if none.
  std::vector<int> evidence_frames;
};

struct JumpReport {
  std::vector<FaultFinding> findings;

  int passed_count() const;
  int total_count() const { return static_cast<int>(findings.size()); }
  bool all_passed() const { return passed_count() == total_count(); }

  /// Human-readable multi-line report with advice for each failed rule.
  std::string to_string() const;
};

/// Evaluates the fault rules over a classified pose sequence.
JumpReport detect_faults(const std::vector<pose::FrameResult>& sequence);

}  // namespace slj::core
