// Movement-fault identification against the standing-long-jump standard —
// the "scoring" part the paper's system sketch (Sec. 1) motivates: "With
// the determined poses in all the frames, bad movements can thus be
// identified … advices to the jumper can be given."
//
// Each rule checks that the pose sequence contains the movement the
// standard requires at the right stage; a missing movement produces a
// finding with coaching advice.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "pose/classifier.hpp"
#include "pose/pose_catalog.hpp"

namespace slj::core {

enum class FaultRule {
  kArmBackswing,      ///< arms must swing backward during preparation
  kPreparatoryCrouch, ///< knees must load deeply before take-off
  kArmDriveForward,   ///< arms must drive forward/up through take-off
  kFlightLegCarry,    ///< knees tuck / legs reach forward during flight
  kLandingAbsorption, ///< knees must bend on touchdown
  kCompleteSequence,  ///< all four stages must be present
};

std::string_view rule_name(FaultRule r);
std::string_view rule_advice(FaultRule r);

/// Evidence kept per rule. The cap keeps fault state O(1) — an endless live
/// feed holding a matching pose cannot grow a finding without bound — while
/// leaving every realistic clip's evidence complete.
inline constexpr std::size_t kMaxEvidenceFramesPerRule = 32;

struct FaultFinding {
  FaultRule rule;
  bool passed = false;
  /// Frames (indices into the clip) that satisfied the rule; empty if none,
  /// first kMaxEvidenceFramesPerRule kept.
  std::vector<int> evidence_frames;
};

struct JumpReport {
  std::vector<FaultFinding> findings;

  int passed_count() const;
  int total_count() const { return static_cast<int>(findings.size()); }
  bool all_passed() const { return passed_count() == total_count(); }

  /// Human-readable multi-line report with advice for each failed rule.
  std::string to_string() const;
};

/// Evaluates the fault rules over a classified pose sequence.
JumpReport detect_faults(const std::vector<pose::FrameResult>& sequence);

/// A fault finding that resolved live, mid-stream.
struct ResolvedFault {
  FaultFinding finding;
  int frame = -1;  ///< frame whose pose resolved the rule
};

/// Streaming variant of detect_faults: feed classified frames one at a time
/// and learn each rule's outcome as soon as it is decided, instead of after
/// the whole clip. A rule resolves PASS on its first evidence frame and
/// FAIL as soon as the jump has provably moved past the rule's last
/// eligible stage (stages never regress, so e.g. a missing crouch is
/// certain the moment a flight pose appears). If a non-monotone pose
/// stream (ablation classifier configs) delivers evidence after such an
/// early FAIL, the rule re-resolves with a correcting PASS event, so live
/// consumers never end up disagreeing with the report. report() over the
/// frames seen so far is identical to batch detect_faults on the same
/// sequence — detect_faults is in fact this detector replayed.
class IncrementalFaultDetector {
 public:
  IncrementalFaultDetector();

  /// Consumes the next classified frame; returns the rules (with advice
  /// available via rule_advice) that resolved on exactly this frame.
  std::vector<ResolvedFault> push(const pose::FrameResult& frame);

  /// Resolves every still-open rule (end of the clip): unseen evidence now
  /// means FAIL. Returns the findings resolved by this call.
  std::vector<ResolvedFault> finish();

  /// Snapshot report over everything seen so far, in detect_faults order.
  JumpReport report() const;

  std::size_t frames_seen() const { return frames_; }

 private:
  static constexpr int kRuleCount = 6;

  std::array<FaultFinding, kRuleCount> findings_;
  std::array<bool, kRuleCount> resolved_{};
  std::array<bool, pose::kStageCount> stages_seen_{};
  std::size_t frames_ = 0;
  int max_stage_seen_ = -1;  ///< over recognized poses only
};

}  // namespace slj::core
