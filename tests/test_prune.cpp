#include "skelgraph/prune.hpp"

#include <gtest/gtest.h>

#include "skelgraph/skeleton_graph.hpp"

namespace slj::skel {
namespace {

/// The Fig. 4 scenario: a long main path with a junction near one end from
/// which TWO short branches hang — one noisy (shorter), one correct. The
/// correct branch is short only because the junction sits close to the true
/// limb tip; once the noisy branch is gone and the junction dissolves, the
/// correct branch fuses with the main path and must survive.
SkeletonGraph fig4_graph(int noisy_len, int correct_len) {
  SkeletonGraph g;
  Node far_end, junction, noisy_tip, correct_tip;
  far_end.pos = {0, 0};
  junction.pos = {30, 0};
  noisy_tip.pos = {30 + noisy_len, 3};
  correct_tip.pos = {30 + correct_len, -3};
  far_end.type = noisy_tip.type = correct_tip.type = NodeType::kEnd;
  junction.type = NodeType::kJunction;
  const int ie = g.add_node(far_end);
  const int ij = g.add_node(junction);
  const int in = g.add_node(noisy_tip);
  const int ic = g.add_node(correct_tip);

  Edge main;
  main.a = ie;
  main.b = ij;
  for (int x = 0; x <= 30; ++x) main.path.push_back({x, 0});
  g.add_edge(main);

  Edge noisy;
  noisy.a = ij;
  noisy.b = in;
  for (int i = 0; i <= noisy_len; ++i) noisy.path.push_back({30 + i, i == 0 ? 0 : 3});
  g.add_edge(noisy);

  Edge correct;
  correct.a = ij;
  correct.b = ic;
  for (int i = 0; i <= correct_len; ++i) correct.path.push_back({30 + i, i == 0 ? 0 : -3});
  g.add_edge(correct);
  return g;
}

TEST(Prune, RemovesShortNoisyBranch) {
  SkeletonGraph g = fig4_graph(4, 20);
  const PruneStats stats = prune_branches(g, 10);
  EXPECT_EQ(stats.branches_removed, 1u);
  // Junction dissolved: two alive nodes (both ends) and one merged edge.
  EXPECT_EQ(g.alive_edge_count(), 1u);
}

TEST(Prune, OneAtATimeSavesTheCorrectBranch) {
  // BOTH branches are below the threshold (the paper's Fig. 4 case).
  SkeletonGraph g = fig4_graph(4, 8);
  const PruneStats stats = prune_branches(g, 10, PruningMode::kOneAtATime);
  EXPECT_EQ(stats.branches_removed, 1u);
  // The correct branch's tip pixel must still be rasterizable: it merged
  // into the long path.
  bool correct_tip_alive = false;
  for (const Edge& e : g.edges()) {
    if (!e.alive) continue;
    for (const PointI& p : e.path) {
      if (p == PointI{38, -3}) correct_tip_alive = true;
    }
  }
  EXPECT_TRUE(correct_tip_alive);
}

TEST(Prune, BatchModeDeletesBothBranches) {
  SkeletonGraph g = fig4_graph(4, 8);
  const PruneStats stats = prune_branches(g, 10, PruningMode::kBatch);
  EXPECT_EQ(stats.branches_removed, 2u);
  // Correct branch gone too — the failure mode of Fig. 4(b).
  bool correct_tip_alive = false;
  for (const Edge& e : g.edges()) {
    if (!e.alive) continue;
    for (const PointI& p : e.path) {
      if (p == PointI{38, -3}) correct_tip_alive = true;
    }
  }
  EXPECT_FALSE(correct_tip_alive);
}

TEST(Prune, LongBranchesAreKept) {
  SkeletonGraph g = fig4_graph(15, 20);
  const PruneStats stats = prune_branches(g, 10);
  EXPECT_EQ(stats.branches_removed, 0u);
  EXPECT_EQ(g.alive_edge_count(), 3u);
}

TEST(Prune, ThresholdCountsPathVertices) {
  // Branch with exactly 10 vertices (9 steps) is NOT pruned ("less than 10
  // vertices"); 9 vertices is.
  SkeletonGraph g9 = fig4_graph(8, 20);   // 9 path vertices (0..8)
  EXPECT_EQ(prune_branches(g9, 10).branches_removed, 1u);
  SkeletonGraph g10 = fig4_graph(9, 20);  // 10 path vertices
  EXPECT_EQ(prune_branches(g10, 10).branches_removed, 0u);
}

TEST(Prune, IsolatedSegmentNeverPruned) {
  SkeletonGraph g;
  Node a, b;
  a.pos = {0, 0};
  b.pos = {3, 0};
  a.type = b.type = NodeType::kEnd;
  const int ia = g.add_node(a);
  const int ib = g.add_node(b);
  Edge e;
  e.a = ia;
  e.b = ib;
  e.path = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  g.add_edge(e);
  const PruneStats stats = prune_branches(g, 10);
  EXPECT_EQ(stats.branches_removed, 0u);
  EXPECT_EQ(g.alive_edge_count(), 1u);
}

TEST(Prune, CascadingPruneEatsChainOfShortBranches) {
  // A "comb": main path with several short teeth. All teeth go, one round
  // after another, and the spine survives.
  SkeletonGraph g;
  std::vector<int> spine_nodes;
  Node left;
  left.pos = {0, 0};
  left.type = NodeType::kEnd;
  spine_nodes.push_back(g.add_node(left));
  for (int i = 1; i <= 3; ++i) {
    Node j;
    j.pos = {i * 15, 0};
    j.type = NodeType::kJunction;
    spine_nodes.push_back(g.add_node(j));
  }
  Node right;
  right.pos = {60, 0};
  right.type = NodeType::kEnd;
  spine_nodes.push_back(g.add_node(right));
  for (std::size_t i = 1; i < spine_nodes.size(); ++i) {
    Edge e;
    e.a = spine_nodes[i - 1];
    e.b = spine_nodes[i];
    const int x0 = g.node(spine_nodes[i - 1]).pos.x;
    const int x1 = g.node(spine_nodes[i]).pos.x;
    for (int x = x0; x <= x1; ++x) e.path.push_back({x, 0});
    g.add_edge(e);
  }
  // Teeth at each junction.
  for (std::size_t i = 1; i + 1 < spine_nodes.size(); ++i) {
    Node tip;
    tip.pos = {g.node(spine_nodes[i]).pos.x, 4};
    tip.type = NodeType::kEnd;
    const int it = g.add_node(tip);
    Edge tooth;
    tooth.a = spine_nodes[i];
    tooth.b = it;
    for (int y = 0; y <= 4; ++y) tooth.path.push_back({g.node(spine_nodes[i]).pos.x, y});
    g.add_edge(tooth);
  }

  const PruneStats stats = prune_branches(g, 10, PruningMode::kOneAtATime);
  EXPECT_EQ(stats.branches_removed, 3u);
  EXPECT_GE(stats.rounds, 3u);
  // The spine is now a single merged edge end-to-end.
  EXPECT_EQ(g.alive_edge_count(), 1u);
  for (const Edge& e : g.edges()) {
    if (e.alive) EXPECT_EQ(e.path.size(), 61u);
  }
}

}  // namespace
}  // namespace slj::skel
