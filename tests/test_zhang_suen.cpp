#include "thinning/zhang_suen.hpp"

#include <gtest/gtest.h>

#include <random>

#include "imaging/connected.hpp"
#include "imaging/draw.hpp"

namespace slj::thin {
namespace {

BinaryImage filled_rect(int w, int h, int x0, int y0, int x1, int y1) {
  BinaryImage img(w, h, 0);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) img.at(x, y) = 1;
  }
  return img;
}

TEST(ZhangSuen, EmptyImageStaysEmpty) {
  ThinningStats stats;
  const BinaryImage out = zhang_suen_thin(BinaryImage(10, 10, 0), &stats);
  EXPECT_EQ(count_foreground(out), 0u);
  EXPECT_EQ(stats.removed, 0u);
}

TEST(ZhangSuen, SinglePixelSurvives) {
  BinaryImage img(5, 5, 0);
  img.at(2, 2) = 1;
  const BinaryImage out = zhang_suen_thin(img);
  EXPECT_EQ(out, img);
}

TEST(ZhangSuen, OnePixelLineIsFixedPoint) {
  BinaryImage img(20, 5, 0);
  for (int x = 2; x < 18; ++x) img.at(x, 2) = 1;
  const BinaryImage out = zhang_suen_thin(img);
  EXPECT_EQ(out, img);
}

TEST(ZhangSuen, ThickBarThinsToThinLine) {
  const BinaryImage img = filled_rect(30, 12, 3, 3, 26, 8);  // 24x6 bar
  const BinaryImage out = zhang_suen_thin(img);
  // Thinned result is much smaller and lies inside the original.
  EXPECT_LT(count_foreground(out), count_foreground(img) / 3);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 30; ++x) {
      if (out.at(x, y)) EXPECT_TRUE(img.at(x, y));
    }
  }
  // Roughly one pixel wide: every skeleton pixel has few neighbours.
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 30; ++x) {
      if (out.at(x, y)) EXPECT_LE(neighbour_count(out, x, y), 2);
    }
  }
}

TEST(ZhangSuen, SquareThinsToSmallCore) {
  const BinaryImage img = filled_rect(20, 20, 4, 4, 15, 15);
  const BinaryImage out = zhang_suen_thin(img);
  EXPECT_GT(count_foreground(out), 0u);
  EXPECT_LT(count_foreground(out), 30u);
}

TEST(ZhangSuen, IsIdempotent) {
  const BinaryImage img = filled_rect(30, 14, 2, 2, 27, 11);
  const BinaryImage once = zhang_suen_thin(img);
  const BinaryImage twice = zhang_suen_thin(once);
  EXPECT_EQ(once, twice);
}

TEST(ZhangSuen, StatsCountRemovedPixels) {
  const BinaryImage img = filled_rect(16, 10, 2, 2, 13, 7);
  ThinningStats stats;
  const BinaryImage out = zhang_suen_thin(img, &stats);
  EXPECT_EQ(stats.removed, count_foreground(img) - count_foreground(out));
  EXPECT_GE(stats.iterations, 1);
}

TEST(ZhangSuen, PassRemovesAtMostBorder) {
  BinaryImage img = filled_rect(16, 16, 2, 2, 13, 13);
  const std::size_t before = count_foreground(img);
  const std::size_t removed = zhang_suen_pass(img);
  EXPECT_EQ(before - count_foreground(img), removed);
  // Interior pixels cannot be deleted in the first pass.
  EXPECT_TRUE(img.at(7, 7));
}

class ThinningConnectivity : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThinningConnectivity, PreservesComponentCountOfBlobs) {
  // Random blobs from overlapping discs: thinning must not split or merge
  // 8-connected components.
  std::mt19937 rng(GetParam());
  BinaryImage img(64, 48, 0);
  std::uniform_int_distribution<int> cx(8, 55), cy(8, 39), r(3, 7);
  for (int i = 0; i < 6; ++i) {
    fill_disc(img, {static_cast<double>(cx(rng)), static_cast<double>(cy(rng))},
              static_cast<double>(r(rng)));
  }
  const std::size_t before = component_count(img, true);
  const BinaryImage out = zhang_suen_thin(img);
  EXPECT_EQ(component_count(out, true), before);
}

TEST_P(ThinningConnectivity, SkeletonIsSubsetOfInput) {
  std::mt19937 rng(GetParam() + 1000);
  BinaryImage img(48, 48, 0);
  std::uniform_int_distribution<int> c(6, 41), r(3, 8);
  for (int i = 0; i < 5; ++i) {
    fill_capsule(img, {static_cast<double>(c(rng)), static_cast<double>(c(rng))},
                 {static_cast<double>(c(rng)), static_cast<double>(c(rng))},
                 static_cast<double>(r(rng)));
  }
  const BinaryImage out = zhang_suen_thin(img);
  for (std::size_t i = 0; i < img.size(); ++i) {
    if (out.data()[i]) EXPECT_TRUE(img.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThinningConnectivity,
                         ::testing::Values(1u, 7u, 13u, 42u, 99u, 123u, 2024u, 31337u));

TEST(NeighbourFunctions, CountAndTransitions) {
  BinaryImage img(3, 3, 0);
  img.at(1, 1) = 1;
  img.at(1, 0) = 1;  // north
  img.at(2, 1) = 1;  // east
  EXPECT_EQ(neighbour_count(img, 1, 1), 2);
  // Ring around centre: P2=1,P3=0,P4=1,rest 0 → transitions 0->1 occur at
  // P9->P2? P2=1 preceded by P9=0 counts once, P3->P4 counts once = 2.
  EXPECT_EQ(transition_count(img, 1, 1), 2);
}

TEST(NeighbourFunctions, FullRing) {
  BinaryImage img(3, 3, 1);
  EXPECT_EQ(neighbour_count(img, 1, 1), 8);
  EXPECT_EQ(transition_count(img, 1, 1), 0);
}

}  // namespace
}  // namespace slj::thin
