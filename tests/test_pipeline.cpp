#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "synth/dataset.hpp"

namespace slj::core {
namespace {

synth::ClipSpec test_clip_spec(std::uint32_t seed = 11) {
  synth::ClipSpec spec;
  spec.seed = seed;
  spec.frame_count = 20;
  return spec;
}

TEST(FramePipeline, ProcessWithoutBackgroundThrows) {
  FramePipeline pipeline;
  EXPECT_THROW(pipeline.process(RgbImage(32, 32)), std::logic_error);
}

TEST(FramePipeline, ExtractsSilhouetteCloseToGroundTruth) {
  const synth::Clip clip = synth::generate_clip(test_clip_spec());
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  for (std::size_t i = 0; i < clip.frames.size(); i += 5) {
    const FrameObservation obs = pipeline.process(clip.frames[i]);
    EXPECT_GT(iou(obs.silhouette, clip.clean_silhouettes[i]), 0.85) << "frame " << i;
  }
}

TEST(FramePipeline, SkeletonLiesInsideSilhouette) {
  const synth::Clip clip = synth::generate_clip(test_clip_spec());
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const FrameObservation obs = pipeline.process(clip.frames[4]);
  for (int y = 0; y < obs.raw_skeleton.height(); ++y) {
    for (int x = 0; x < obs.raw_skeleton.width(); ++x) {
      if (obs.raw_skeleton.at(x, y)) EXPECT_TRUE(obs.silhouette.at(x, y));
    }
  }
}

TEST(FramePipeline, CleanedGraphHasNoLoopsOrShortLeafBranches) {
  const synth::Clip clip = synth::generate_clip(test_clip_spec());
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  for (std::size_t i = 0; i < clip.frames.size(); i += 4) {
    const FrameObservation obs = pipeline.process(clip.frames[i]);
    EXPECT_EQ(obs.graph.cycle_count(), 0u) << "frame " << i;
  }
}

TEST(FramePipeline, ProducesKeyPointsAndCandidates) {
  const synth::Clip clip = synth::generate_clip(test_clip_spec());
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const FrameObservation obs = pipeline.process(clip.frames[8]);
  EXPECT_GE(obs.key_points.size(), 3u);
  EXPECT_FALSE(obs.candidates.empty());
  // Foot (lowest point) is assigned in every candidate.
  for (const auto& c : obs.candidates) {
    EXPECT_GE(c.nodes[static_cast<std::size_t>(pose::Part::kFoot)], 0);
  }
}

TEST(FramePipeline, KeyPointNearGroundTruthFoot) {
  const synth::Clip clip = synth::generate_clip(test_clip_spec());
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const FrameObservation obs = pipeline.process(clip.frames[2]);
  const auto& c = obs.candidates.front();
  const int foot_node = c.nodes[static_cast<std::size_t>(pose::Part::kFoot)];
  const PointF foot = to_f(obs.graph.node(foot_node).pos);
  EXPECT_LT(distance(foot, clip.truth[2].parts.foot), 18.0);
}

TEST(FramePipeline, BottomRowTracksGroundAndFlight) {
  const synth::Clip clip = synth::generate_clip(test_clip_spec(12));
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  int grounded_bottom = -1;
  int min_airborne_bottom = 10000;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const FrameObservation obs = pipeline.process(clip.frames[i]);
    ASSERT_GE(obs.bottom_row, 0);
    if (clip.truth[i].airborne) {
      min_airborne_bottom = std::min(min_airborne_bottom, obs.bottom_row);
    } else if (grounded_bottom < 0) {
      grounded_bottom = obs.bottom_row;
    }
  }
  ASSERT_GE(grounded_bottom, 0);
  EXPECT_LT(min_airborne_bottom, grounded_bottom - 3);  // flight visibly lifts the feet
}

TEST(FramePipeline, EmptyFrameGivesEmptyObservation) {
  const synth::Clip clip = synth::generate_clip(test_clip_spec());
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  const FrameObservation obs = pipeline.process(clip.background);  // no person
  EXPECT_EQ(count_foreground(obs.silhouette), 0u);
  EXPECT_TRUE(obs.candidates.empty());
  EXPECT_EQ(obs.bottom_row, -1);
}

TEST(FramePipeline, ProcessSilhouetteSkipsSegmentation) {
  const synth::Clip clip = synth::generate_clip(test_clip_spec());
  FramePipeline pipeline;
  const FrameObservation obs = pipeline.process_silhouette(clip.clean_silhouettes[6]);
  EXPECT_FALSE(obs.candidates.empty());
  EXPECT_EQ(obs.silhouette, clip.clean_silhouettes[6]);
}

TEST(GroundMonitor, CalibratesAndDetectsLift) {
  GroundMonitor monitor(3);
  EXPECT_FALSE(monitor.airborne(100));  // calibration frame
  EXPECT_EQ(monitor.ground_row(), 100);
  EXPECT_FALSE(monitor.airborne(99));   // within threshold
  EXPECT_TRUE(monitor.airborne(90));    // lifted
  EXPECT_FALSE(monitor.airborne(100));  // back down
}

TEST(GroundMonitor, EmptyFrameKeepsLastState) {
  GroundMonitor monitor(3);
  monitor.airborne(100);
  EXPECT_TRUE(monitor.airborne(80));
  EXPECT_TRUE(monitor.airborne(-1));  // no silhouette: stay airborne
  monitor.reset();
  EXPECT_FALSE(monitor.airborne(-1));
}

}  // namespace
}  // namespace slj::core
