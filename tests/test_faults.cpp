#include "core/faults.hpp"

#include <gtest/gtest.h>

namespace slj::core {
namespace {

using pose::FrameResult;
using pose::PoseId;

std::vector<FrameResult> sequence_of(const std::vector<PoseId>& poses) {
  std::vector<FrameResult> seq;
  for (const PoseId p : poses) {
    FrameResult r;
    r.pose = p;
    seq.push_back(r);
  }
  return seq;
}

/// A textbook-correct jump at the pose level.
std::vector<PoseId> good_jump() {
  return {PoseId::kStandHandsOverlap,   PoseId::kStandHandsForward,
          PoseId::kStandHandsBackward,  PoseId::kCrouchHandsBackward,
          PoseId::kCrouchHandsBackward, PoseId::kTakeoffHandsBackward,
          PoseId::kExtendedHandsForward, PoseId::kAirExtendedHandsForward,
          PoseId::kAirTuckHandsForward, PoseId::kAirLegsReachForward,
          PoseId::kTouchdownKneesBentHandsForward, PoseId::kLandedSquatHandsForward,
          PoseId::kLandedRisingHandsDown};
}

TEST(FaultDetection, GoodJumpPassesEverything) {
  const JumpReport report = detect_faults(sequence_of(good_jump()));
  EXPECT_TRUE(report.all_passed());
  EXPECT_EQ(report.passed_count(), report.total_count());
  EXPECT_EQ(report.total_count(), 6);
}

TEST(FaultDetection, MissingBackswingFlagged) {
  auto poses = good_jump();
  // Replace all backswing poses with forward-arm variants.
  for (PoseId& p : poses) {
    if (p == PoseId::kStandHandsBackward) p = PoseId::kStandHandsForward;
    if (p == PoseId::kCrouchHandsBackward) p = PoseId::kCrouchHandsForward;
    if (p == PoseId::kTakeoffHandsBackward) p = PoseId::kTakeoffLeanForward;
  }
  const JumpReport report = detect_faults(sequence_of(poses));
  EXPECT_FALSE(report.all_passed());
  bool backswing_failed = false;
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kArmBackswing) backswing_failed = !f.passed;
  }
  EXPECT_TRUE(backswing_failed);
}

TEST(FaultDetection, MissingCrouchFlagged) {
  auto poses = good_jump();
  for (PoseId& p : poses) {
    if (p == PoseId::kCrouchHandsBackward) p = PoseId::kStandHandsBackward;
    if (p == PoseId::kTakeoffHandsBackward) p = PoseId::kStandHandsBackward;
  }
  const JumpReport report = detect_faults(sequence_of(poses));
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kPreparatoryCrouch) EXPECT_FALSE(f.passed);
  }
}

TEST(FaultDetection, StiffLandingFlagged) {
  auto poses = good_jump();
  for (PoseId& p : poses) {
    if (p == PoseId::kTouchdownKneesBentHandsForward || p == PoseId::kLandedSquatHandsForward) {
      p = PoseId::kLandedRisingHandsDown;
    }
  }
  const JumpReport report = detect_faults(sequence_of(poses));
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kLandingAbsorption) EXPECT_FALSE(f.passed);
  }
}

TEST(FaultDetection, IncompleteSequenceFlagged) {
  // Only standing poses: three stages missing.
  const JumpReport report =
      detect_faults(sequence_of({PoseId::kStandHandsForward, PoseId::kStandHandsOverlap}));
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kCompleteSequence) EXPECT_FALSE(f.passed);
  }
}

TEST(FaultDetection, UnknownFramesAreIgnored) {
  auto poses = good_jump();
  poses.insert(poses.begin() + 3, PoseId::kUnknown);
  poses.push_back(PoseId::kUnknown);
  const JumpReport report = detect_faults(sequence_of(poses));
  EXPECT_TRUE(report.all_passed());
}

TEST(FaultDetection, EvidenceFramesPointAtTheRightFrames) {
  const auto poses = good_jump();
  const JumpReport report = detect_faults(sequence_of(poses));
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kArmBackswing) {
      ASSERT_FALSE(f.evidence_frames.empty());
      EXPECT_EQ(f.evidence_frames.front(), 2);  // first backswing frame
    }
  }
}

TEST(FaultDetection, EmptySequenceFailsEverything) {
  const JumpReport report = detect_faults({});
  EXPECT_EQ(report.passed_count(), 0);
}

TEST(JumpReport, ToStringListsAdviceForFailures) {
  const JumpReport report =
      detect_faults(sequence_of({PoseId::kStandHandsForward}));
  const std::string text = report.to_string();
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("advice"), std::string::npos);
  EXPECT_NE(text.find("checks passed"), std::string::npos);
}

TEST(JumpReport, ToStringListsEvidenceForPasses) {
  const JumpReport report = detect_faults(sequence_of(good_jump()));
  const std::string text = report.to_string();
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(text.find("frames"), std::string::npos);
  EXPECT_EQ(text.find("advice"), std::string::npos);
}

TEST(FaultRules, NamesAndAdviceNonEmpty) {
  for (const FaultRule r :
       {FaultRule::kArmBackswing, FaultRule::kPreparatoryCrouch, FaultRule::kArmDriveForward,
        FaultRule::kFlightLegCarry, FaultRule::kLandingAbsorption, FaultRule::kCompleteSequence}) {
    EXPECT_FALSE(rule_name(r).empty());
    EXPECT_FALSE(rule_advice(r).empty());
  }
}

}  // namespace
}  // namespace slj::core
