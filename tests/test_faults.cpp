#include "core/faults.hpp"

#include <gtest/gtest.h>

namespace slj::core {
namespace {

using pose::FrameResult;
using pose::PoseId;

std::vector<FrameResult> sequence_of(const std::vector<PoseId>& poses) {
  std::vector<FrameResult> seq;
  for (const PoseId p : poses) {
    FrameResult r;
    r.pose = p;
    seq.push_back(r);
  }
  return seq;
}

/// A textbook-correct jump at the pose level.
std::vector<PoseId> good_jump() {
  return {PoseId::kStandHandsOverlap,   PoseId::kStandHandsForward,
          PoseId::kStandHandsBackward,  PoseId::kCrouchHandsBackward,
          PoseId::kCrouchHandsBackward, PoseId::kTakeoffHandsBackward,
          PoseId::kExtendedHandsForward, PoseId::kAirExtendedHandsForward,
          PoseId::kAirTuckHandsForward, PoseId::kAirLegsReachForward,
          PoseId::kTouchdownKneesBentHandsForward, PoseId::kLandedSquatHandsForward,
          PoseId::kLandedRisingHandsDown};
}

TEST(FaultDetection, GoodJumpPassesEverything) {
  const JumpReport report = detect_faults(sequence_of(good_jump()));
  EXPECT_TRUE(report.all_passed());
  EXPECT_EQ(report.passed_count(), report.total_count());
  EXPECT_EQ(report.total_count(), 6);
}

TEST(FaultDetection, MissingBackswingFlagged) {
  auto poses = good_jump();
  // Replace all backswing poses with forward-arm variants.
  for (PoseId& p : poses) {
    if (p == PoseId::kStandHandsBackward) p = PoseId::kStandHandsForward;
    if (p == PoseId::kCrouchHandsBackward) p = PoseId::kCrouchHandsForward;
    if (p == PoseId::kTakeoffHandsBackward) p = PoseId::kTakeoffLeanForward;
  }
  const JumpReport report = detect_faults(sequence_of(poses));
  EXPECT_FALSE(report.all_passed());
  bool backswing_failed = false;
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kArmBackswing) backswing_failed = !f.passed;
  }
  EXPECT_TRUE(backswing_failed);
}

TEST(FaultDetection, MissingCrouchFlagged) {
  auto poses = good_jump();
  for (PoseId& p : poses) {
    if (p == PoseId::kCrouchHandsBackward) p = PoseId::kStandHandsBackward;
    if (p == PoseId::kTakeoffHandsBackward) p = PoseId::kStandHandsBackward;
  }
  const JumpReport report = detect_faults(sequence_of(poses));
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kPreparatoryCrouch) EXPECT_FALSE(f.passed);
  }
}

TEST(FaultDetection, StiffLandingFlagged) {
  auto poses = good_jump();
  for (PoseId& p : poses) {
    if (p == PoseId::kTouchdownKneesBentHandsForward || p == PoseId::kLandedSquatHandsForward) {
      p = PoseId::kLandedRisingHandsDown;
    }
  }
  const JumpReport report = detect_faults(sequence_of(poses));
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kLandingAbsorption) EXPECT_FALSE(f.passed);
  }
}

TEST(FaultDetection, IncompleteSequenceFlagged) {
  // Only standing poses: three stages missing.
  const JumpReport report =
      detect_faults(sequence_of({PoseId::kStandHandsForward, PoseId::kStandHandsOverlap}));
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kCompleteSequence) EXPECT_FALSE(f.passed);
  }
}

TEST(FaultDetection, UnknownFramesAreIgnored) {
  auto poses = good_jump();
  poses.insert(poses.begin() + 3, PoseId::kUnknown);
  poses.push_back(PoseId::kUnknown);
  const JumpReport report = detect_faults(sequence_of(poses));
  EXPECT_TRUE(report.all_passed());
}

TEST(FaultDetection, EvidenceFramesPointAtTheRightFrames) {
  const auto poses = good_jump();
  const JumpReport report = detect_faults(sequence_of(poses));
  for (const FaultFinding& f : report.findings) {
    if (f.rule == FaultRule::kArmBackswing) {
      ASSERT_FALSE(f.evidence_frames.empty());
      EXPECT_EQ(f.evidence_frames.front(), 2);  // first backswing frame
    }
  }
}

TEST(FaultDetection, EmptySequenceFailsEverything) {
  const JumpReport report = detect_faults({});
  EXPECT_EQ(report.passed_count(), 0);
  EXPECT_EQ(report.total_count(), 6);
  for (const FaultFinding& f : report.findings) {
    EXPECT_FALSE(f.passed);
    EXPECT_TRUE(f.evidence_frames.empty());
  }
}

TEST(FaultDetection, AllUnknownSequenceFailsEverything) {
  const JumpReport report = detect_faults(
      sequence_of({PoseId::kUnknown, PoseId::kUnknown, PoseId::kUnknown, PoseId::kUnknown}));
  EXPECT_EQ(report.passed_count(), 0);
  EXPECT_EQ(report.total_count(), 6);
  for (const FaultFinding& f : report.findings) {
    EXPECT_TRUE(f.evidence_frames.empty());
  }
}

TEST(IncrementalFaults, ReportMatchesBatchAtEveryPrefix) {
  auto poses = good_jump();
  poses.insert(poses.begin() + 4, PoseId::kUnknown);  // an unknown mid-stream
  const auto sequence = sequence_of(poses);
  IncrementalFaultDetector detector;
  for (std::size_t n = 0; n < sequence.size(); ++n) {
    detector.push(sequence[n]);
    const JumpReport live = detector.report();
    const JumpReport batch = detect_faults(
        std::vector<pose::FrameResult>(sequence.begin(), sequence.begin() + static_cast<long>(n) + 1));
    ASSERT_EQ(live.findings.size(), batch.findings.size()) << "prefix " << n;
    for (std::size_t i = 0; i < live.findings.size(); ++i) {
      EXPECT_EQ(live.findings[i].rule, batch.findings[i].rule) << "prefix " << n;
      EXPECT_EQ(live.findings[i].passed, batch.findings[i].passed) << "prefix " << n;
      EXPECT_EQ(live.findings[i].evidence_frames, batch.findings[i].evidence_frames)
          << "prefix " << n;
    }
  }
  EXPECT_EQ(detector.frames_seen(), sequence.size());
}

TEST(IncrementalFaults, PassResolvesOnFirstEvidenceFrame) {
  IncrementalFaultDetector detector;
  const auto sequence = sequence_of(good_jump());
  // good_jump's first backswing pose is frame 2 (kStandHandsBackward).
  for (int i = 0; i < 2; ++i) EXPECT_TRUE(detector.push(sequence[static_cast<std::size_t>(i)]).empty());
  const auto events = detector.push(sequence[2]);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].finding.rule, FaultRule::kArmBackswing);
  EXPECT_TRUE(events[0].finding.passed);
  EXPECT_EQ(events[0].frame, 2);
}

TEST(IncrementalFaults, FailResolvesWhenTheStageWindowCloses) {
  // No backswing and no crouch; the first airborne pose proves both rules
  // can no longer be satisfied (stages never regress).
  IncrementalFaultDetector detector;
  detector.push(sequence_of({PoseId::kStandHandsForward})[0]);
  detector.push(sequence_of({PoseId::kExtendedHandsForward})[0]);  // resolves arm drive PASS
  const auto events = detector.push(sequence_of({PoseId::kAirTuckHandsForward})[0]);
  bool backswing_failed = false, crouch_failed = false;
  for (const ResolvedFault& e : events) {
    if (e.finding.rule == FaultRule::kArmBackswing) backswing_failed = !e.finding.passed;
    if (e.finding.rule == FaultRule::kPreparatoryCrouch) crouch_failed = !e.finding.passed;
    EXPECT_EQ(e.frame, 2);
  }
  EXPECT_TRUE(backswing_failed);
  EXPECT_TRUE(crouch_failed);
}

TEST(IncrementalFaults, FinishSettlesEveryRuleExactlyOnce) {
  IncrementalFaultDetector detector;
  std::size_t events = 0;
  for (const auto& frame : sequence_of(good_jump())) events += detector.push(frame).size();
  events += detector.finish().size();
  EXPECT_EQ(events, 6u);
  EXPECT_TRUE(detector.finish().empty());  // nothing left to settle
  EXPECT_TRUE(detector.report().all_passed());
}

TEST(IncrementalFaults, EvidenceIsCappedSoSessionsStayBounded) {
  IncrementalFaultDetector detector;
  const auto frame = sequence_of({PoseId::kStandHandsBackward})[0];
  for (int i = 0; i < 1000; ++i) detector.push(frame);
  const JumpReport report = detector.report();
  EXPECT_EQ(report.findings[0].rule, FaultRule::kArmBackswing);
  EXPECT_TRUE(report.findings[0].passed);
  EXPECT_EQ(report.findings[0].evidence_frames.size(), kMaxEvidenceFramesPerRule);
}

TEST(IncrementalFaults, LateEvidenceAfterEarlyFailEmitsCorrectingPass) {
  // A non-monotone pose stream (possible with the ablation classifier
  // configs): flight first — backswing resolves FAIL — then a backswing
  // pose anyway. The detector must emit a correcting PASS so the live
  // events agree with the final report.
  IncrementalFaultDetector detector;
  const auto fail_events = detector.push(sequence_of({PoseId::kAirTuckHandsForward})[0]);
  bool backswing_failed = false;
  for (const ResolvedFault& e : fail_events) {
    if (e.finding.rule == FaultRule::kArmBackswing) backswing_failed = !e.finding.passed;
  }
  ASSERT_TRUE(backswing_failed);

  const auto correction = detector.push(sequence_of({PoseId::kStandHandsBackward})[0]);
  ASSERT_EQ(correction.size(), 1u);
  EXPECT_EQ(correction[0].finding.rule, FaultRule::kArmBackswing);
  EXPECT_TRUE(correction[0].finding.passed);
  for (const FaultFinding& f : detector.report().findings) {
    if (f.rule == FaultRule::kArmBackswing) EXPECT_TRUE(f.passed);
  }
}

TEST(IncrementalFaults, EarlyFinishFailsOpenRules) {
  IncrementalFaultDetector detector;
  detector.push(sequence_of({PoseId::kStandHandsBackward})[0]);  // backswing PASS
  const auto events = detector.finish();
  EXPECT_EQ(events.size(), 5u);  // everything but the resolved backswing
  for (const ResolvedFault& e : events) {
    EXPECT_FALSE(e.finding.passed);
    EXPECT_EQ(e.frame, -1);
  }
}

TEST(JumpReport, ToStringListsAdviceForFailures) {
  const JumpReport report =
      detect_faults(sequence_of({PoseId::kStandHandsForward}));
  const std::string text = report.to_string();
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("advice"), std::string::npos);
  EXPECT_NE(text.find("checks passed"), std::string::npos);
}

TEST(JumpReport, ToStringListsEvidenceForPasses) {
  const JumpReport report = detect_faults(sequence_of(good_jump()));
  const std::string text = report.to_string();
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(text.find("frames"), std::string::npos);
  EXPECT_EQ(text.find("advice"), std::string::npos);
}

TEST(FaultRules, NamesAndAdviceNonEmpty) {
  for (const FaultRule r :
       {FaultRule::kArmBackswing, FaultRule::kPreparatoryCrouch, FaultRule::kArmDriveForward,
        FaultRule::kFlightLegCarry, FaultRule::kLandingAbsorption, FaultRule::kCompleteSequence}) {
    EXPECT_FALSE(rule_name(r).empty());
    EXPECT_FALSE(rule_advice(r).empty());
  }
}

}  // namespace
}  // namespace slj::core
