#include "bayes/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace slj::bayes {
namespace {

/// The classic rain / sprinkler / wet-grass network with hand-checked
/// posteriors.
Network sprinkler_network() {
  Network net;
  auto rain_cpd = std::make_shared<FixedCpd>(2, std::vector<int>{}, std::vector<double>{0.8, 0.2});
  const int rain = net.add_node("Rain", 2, {}, rain_cpd);
  auto sprinkler_cpd = std::make_shared<FixedCpd>(
      2, std::vector<int>{2}, std::vector<double>{0.6, 0.4, 0.99, 0.01});
  const int sprinkler = net.add_node("Sprinkler", 2, {rain}, sprinkler_cpd);
  auto wet_cpd = std::make_shared<FixedCpd>(
      2, std::vector<int>{2, 2},
      // rows: (S=0,R=0), (S=0,R=1), (S=1,R=0), (S=1,R=1)
      std::vector<double>{1.0, 0.0, 0.2, 0.8, 0.1, 0.9, 0.01, 0.99});
  net.add_node("WetGrass", 2, {sprinkler, rain}, wet_cpd);
  return net;
}

TEST(Network, NodeLookupAndMetadata) {
  const Network net = sprinkler_network();
  EXPECT_EQ(net.node_count(), 3);
  EXPECT_EQ(net.find("Rain"), std::optional<int>(0));
  EXPECT_EQ(net.find("WetGrass"), std::optional<int>(2));
  EXPECT_FALSE(net.find("Nope").has_value());
  EXPECT_EQ(net.cardinality(1), 2);
  EXPECT_EQ(net.parents(2).size(), 2u);
}

TEST(Network, JointProbabilityOfFullAssignment) {
  const Network net = sprinkler_network();
  // P(R=1, S=0, W=1) = 0.2 * 0.99 * 0.8 = 0.1584
  EXPECT_NEAR(net.joint_prob(std::vector<int>{1, 0, 1}), 0.2 * 0.99 * 0.8, 1e-12);
  // P(R=0, S=0, W=1) = 0.8 * 0.6 * 0 = 0
  EXPECT_DOUBLE_EQ(net.joint_prob(std::vector<int>{0, 0, 1}), 0.0);
}

TEST(Network, EvidenceProbabilityMarginalizes) {
  const Network net = sprinkler_network();
  // P(W=1) = sum over R,S:
  //   R=1,S=0: .2*.99*.8      = .1584
  //   R=1,S=1: .2*.01*.99     = .00198
  //   R=0,S=1: .8*.4*.9       = .288
  //   R=0,S=0: 0
  Assignment evidence{kUnobserved, kUnobserved, 1};
  EXPECT_NEAR(net.evidence_prob(evidence), 0.44838, 1e-9);
  // No evidence at all marginalizes to 1.
  EXPECT_NEAR(net.evidence_prob({kUnobserved, kUnobserved, kUnobserved}), 1.0, 1e-12);
}

TEST(Network, PosteriorMatchesHandComputation) {
  const Network net = sprinkler_network();
  Assignment evidence{kUnobserved, kUnobserved, 1};  // wet grass observed
  const std::vector<double> rain_post = net.posterior(0, evidence);
  EXPECT_NEAR(rain_post[1], 0.16038 / 0.44838, 1e-9);
  const std::vector<double> sprinkler_post = net.posterior(1, evidence);
  EXPECT_NEAR(sprinkler_post[1], 0.28998 / 0.44838, 1e-9);
}

TEST(Network, PosteriorSumsToOne) {
  const Network net = sprinkler_network();
  for (int node = 0; node < 3; ++node) {
    const std::vector<double> post = net.posterior(node, {kUnobserved, kUnobserved, 1});
    double sum = 0.0;
    for (const double p : post) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Network, ImpossibleEvidenceGivesUniformPosterior) {
  Network net;
  auto a_cpd = std::make_shared<FixedCpd>(2, std::vector<int>{}, std::vector<double>{1.0, 0.0});
  const int a = net.add_node("A", 2, {}, a_cpd);
  auto b_cpd = std::make_shared<DeterministicCpd>(
      2, std::vector<int>{2}, [](std::span<const int> p) { return p[0]; });
  net.add_node("B", 2, {a}, b_cpd);
  // B=1 is impossible (A is always 0, B copies A).
  const std::vector<double> post = net.posterior(a, {kUnobserved, 1});
  EXPECT_DOUBLE_EQ(post[0], 0.5);
  EXPECT_DOUBLE_EQ(post[1], 0.5);
}

TEST(Network, FitLearnsFromCompleteData) {
  Network net;
  auto a_cpd = std::make_shared<TabularCpd>(2, std::vector<int>{}, 0.0);
  const int a = net.add_node("A", 2, {}, a_cpd);
  auto b_cpd = std::make_shared<TabularCpd>(2, std::vector<int>{2}, 0.0);
  net.add_node("B", 2, {a}, b_cpd);

  std::vector<Assignment> rows = {{0, 0}, {0, 0}, {0, 1}, {1, 1}};
  net.fit(rows);
  // P(A=0) = 3/4; P(B=1|A=0) = 1/3; P(B=1|A=1) = 1.
  EXPECT_NEAR(net.evidence_prob({0, kUnobserved}), 0.75, 1e-12);
  const int p0[1] = {0};
  EXPECT_NEAR(net.cpd(1).prob(1, p0), 1.0 / 3.0, 1e-12);
}

TEST(Network, FitClearsPreviousCounts) {
  Network net;
  auto cpd = std::make_shared<TabularCpd>(2, std::vector<int>{}, 0.0);
  net.add_node("A", 2, {}, cpd);
  std::vector<Assignment> first = {{1}, {1}};
  net.fit(first);
  std::vector<Assignment> second = {{0}, {0}};
  net.fit(second);
  EXPECT_DOUBLE_EQ(net.evidence_prob({0}), 1.0);
}

TEST(Network, ConstructionValidation) {
  Network net;
  auto cpd2 = std::make_shared<TabularCpd>(2, std::vector<int>{}, 1.0);
  net.add_node("A", 2, {}, cpd2);
  // Duplicate name.
  auto cpd2b = std::make_shared<TabularCpd>(2, std::vector<int>{}, 1.0);
  EXPECT_THROW(net.add_node("A", 2, {}, cpd2b), std::invalid_argument);
  // CPD child cardinality mismatch.
  auto cpd3 = std::make_shared<TabularCpd>(3, std::vector<int>{}, 1.0);
  EXPECT_THROW(net.add_node("B", 2, {}, cpd3), std::invalid_argument);
  // Parent that does not exist yet (forward reference → cycles impossible).
  auto cpd_p = std::make_shared<TabularCpd>(2, std::vector<int>{2}, 1.0);
  EXPECT_THROW(net.add_node("C", 2, {5}, cpd_p), std::invalid_argument);
  // Parent cardinality mismatch.
  auto cpd_wrong = std::make_shared<TabularCpd>(2, std::vector<int>{3}, 1.0);
  EXPECT_THROW(net.add_node("D", 2, {0}, cpd_wrong), std::invalid_argument);
}

TEST(Network, ToDotListsStructure) {
  const Network net = sprinkler_network();
  const std::string dot = net.to_dot("sprinkler");
  EXPECT_NE(dot.find("digraph sprinkler"), std::string::npos);
  EXPECT_NE(dot.find("Rain"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace slj::bayes
