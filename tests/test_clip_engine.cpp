#include "core/clip_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "synth/dataset.hpp"

namespace slj::core {
namespace {

synth::Clip make_clip(std::uint32_t seed, int frame_count = 16) {
  synth::ClipSpec spec;
  spec.seed = seed;
  spec.frame_count = frame_count;
  return synth::generate_clip(spec);
}

/// The reference the engine must match bit-for-bit: a plain serial loop.
ClipObservation serial_reference(const synth::Clip& clip, const PipelineParams& params = {},
                                 int lift_threshold_px = 3) {
  FramePipeline pipeline(params);
  pipeline.set_background(clip.background);
  GroundMonitor ground(lift_threshold_px);
  ClipObservation ref;
  for (const RgbImage& frame : clip.frames) {
    ref.frames.push_back(pipeline.process(frame));
    const bool flying = ground.airborne(ref.frames.back().bottom_row);
    ref.airborne.push_back(flying);
    if (flying) ++ref.airborne_frames;
    if (ref.frames.back().bottom_row < 0) ++ref.empty_frames;
  }
  ref.ground_row = ground.ground_row();
  return ref;
}

void expect_identical(const ClipObservation& got, const ClipObservation& want) {
  ASSERT_EQ(got.frame_count(), want.frame_count());
  EXPECT_EQ(got.airborne, want.airborne);
  EXPECT_EQ(got.ground_row, want.ground_row);
  EXPECT_EQ(got.empty_frames, want.empty_frames);
  EXPECT_EQ(got.airborne_frames, want.airborne_frames);
  for (std::size_t i = 0; i < got.frames.size(); ++i) {
    const FrameObservation& g = got.frames[i];
    const FrameObservation& w = want.frames[i];
    EXPECT_EQ(g.silhouette, w.silhouette) << "frame " << i;
    EXPECT_EQ(g.raw_skeleton, w.raw_skeleton) << "frame " << i;
    EXPECT_EQ(g.bottom_row, w.bottom_row) << "frame " << i;
    ASSERT_EQ(g.key_points.size(), w.key_points.size()) << "frame " << i;
    for (std::size_t k = 0; k < g.key_points.size(); ++k) {
      EXPECT_EQ(g.key_points[k].pos, w.key_points[k].pos) << "frame " << i << " kp " << k;
    }
    ASSERT_EQ(g.candidates.size(), w.candidates.size()) << "frame " << i;
    for (std::size_t c = 0; c < g.candidates.size(); ++c) {
      EXPECT_EQ(g.candidates[c].nodes, w.candidates[c].nodes) << "frame " << i << " cand " << c;
      EXPECT_TRUE(g.candidates[c].features == w.candidates[c].features)
          << "frame " << i << " cand " << c;
    }
  }
}

TEST(ClipEngine, ParallelMatchesSerialAcrossSeeds) {
  for (const std::uint32_t seed : {3u, 17u, 2008u}) {
    const synth::Clip clip = make_clip(seed);
    ClipEngineConfig config;
    config.workers = 4;
    ClipEngine engine({}, config);
    expect_identical(engine.process(clip), serial_reference(clip));
  }
}

TEST(ClipEngine, SingleWorkerMatchesSerial) {
  const synth::Clip clip = make_clip(5);
  ClipEngineConfig config;
  config.workers = 1;
  ClipEngine engine({}, config);
  expect_identical(engine.process(clip), serial_reference(clip));
}

TEST(ClipEngine, MoreWorkersThanFramesMatchesSerial) {
  const synth::Clip clip = make_clip(7, 4);  // 4 frames, 16 workers
  ClipEngineConfig config;
  config.workers = 16;
  ClipEngine engine({}, config);
  expect_identical(engine.process(clip), serial_reference(clip));
}

TEST(ClipEngine, BatchMatchesPerClipResults) {
  std::vector<synth::Clip> clips = {make_clip(21), make_clip(22, 12), make_clip(23, 8)};
  ClipEngineConfig config;
  config.workers = 4;
  ClipEngine engine({}, config);
  const std::vector<ClipObservation> batch = engine.process(clips);
  ASSERT_EQ(batch.size(), clips.size());
  for (std::size_t c = 0; c < clips.size(); ++c) {
    expect_identical(batch[c], serial_reference(clips[c]));
  }
}

TEST(ClipEngine, EmptyBatchAndEmptyClip) {
  ClipEngineConfig config;
  config.workers = 2;
  ClipEngine engine({}, config);
  EXPECT_TRUE(engine.process(std::vector<synth::Clip>{}).empty());
  const synth::Clip clip = make_clip(9);
  const ClipObservation obs = engine.process(clip.background, {});
  EXPECT_EQ(obs.frame_count(), 0u);
  EXPECT_EQ(obs.ground_row, -1);
}

TEST(ClipEngine, TrackerModeMatchesSerialTrackedLoop) {
  const synth::Clip clip = make_clip(31);
  ClipEngineConfig config;
  config.workers = 4;
  config.use_tracker = true;
  ClipEngine engine({}, config);
  const ClipObservation got = engine.process(clip);

  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  detect::BlobTracker tracker;
  GroundMonitor ground;
  ASSERT_EQ(got.frame_count(), clip.frames.size());
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const FrameObservation want = pipeline.process(clip.frames[i], tracker);
    EXPECT_EQ(got.frames[i].silhouette, want.silhouette) << "frame " << i;
    EXPECT_EQ(got.airborne[i], ground.airborne(want.bottom_row)) << "frame " << i;
  }
}

TEST(ClipEngine, CandidateSetsMatchFrameCandidates) {
  const synth::Clip clip = make_clip(41, 8);
  ClipEngine engine;
  const ClipObservation obs = engine.process(clip);
  const auto sets = obs.candidate_sets();
  ASSERT_EQ(sets.size(), obs.frames.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i].size(), obs.frames[i].candidates.size());
  }
}

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ReusableAcrossBatches) {
  WorkerPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(WorkerPool, PropagatesTaskExceptions) {
  WorkerPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable after a throwing batch.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(WorkerPool, ZeroCountIsANoOp) {
  WorkerPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
}

}  // namespace
}  // namespace slj::core
