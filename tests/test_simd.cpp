// SIMD-vs-scalar property suite + row-banding determinism (PR 8 tentpole).
//
// The simd.hpp contract is bit-identity on the kernels' integer domain:
// every primitive instantiated with the configured backend (simd::Active)
// must produce exactly the bytes the always-compiled ScalarBackend twin
// produces — across odd widths, vector-width tails, unaligned bases, and
// degenerate all-0 / all-255 planes. On an SLJ_SIMD=OFF build Active *is*
// ScalarBackend and the primitive checks pin trivially; the banding suite
// below is backend-independent and bites on every build.
//
// The banding half pins the other determinism axis: a kernel handed a
// BandExecutor must produce bit-identical output at any band count, whether
// the bands run serially (SerialBandExecutor) or on a real WorkerPool
// (PoolBandExecutor), including band counts that do not divide the height
// and band counts exceeding the worker count.
#include "core/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/clip_engine.hpp"
#include "imaging/band_executor.hpp"
#include "imaging/filters.hpp"
#include "imaging/frame_workspace.hpp"
#include "imaging/morphology.hpp"
#include "segmentation/object_extractor.hpp"
#include "synth/dataset.hpp"

namespace slj {
namespace {

using simd::Active;
using simd::ScalarBackend;
using VA = simd::VecF64<Active>;
using VS = simd::VecF64<ScalarBackend>;

// Widths straddling every lane boundary of every backend (1/2/4 f64 lanes,
// 8/16/32 u8 lanes), plus odd primes and a plain round number.
const std::vector<std::size_t> kWidths = {1,  2,  3,  5,  7,  8,  15, 16,
                                          17, 31, 32, 33, 63, 64, 65, 100};

/// Integer-exact doubles: the domain the bit-identity contract covers.
std::vector<double> random_int_doubles(std::uint32_t seed, std::size_t n, int lo, int hi) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(lo, hi);
  std::vector<double> out(n);
  for (double& x : out) x = static_cast<double>(dist(rng));
  return out;
}

std::vector<std::uint8_t> random_bytes(std::uint32_t seed, std::size_t n, int hi) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, hi);
  std::vector<std::uint8_t> out(n);
  for (std::uint8_t& x : out) x = static_cast<std::uint8_t>(dist(rng));
  return out;
}

/// BandExecutor that runs bands serially in order: isolates the banded
/// *partition* (carry stitching, per-band scratch) from concurrency.
class SerialBandExecutor final : public BandExecutor {
 public:
  explicit SerialBandExecutor(int bands) : bands_(bands) {}
  int bands() const override { return bands_; }
  void run_rows(int rows, void* ctx, RowFn fn) override {
    for (int b = 0; b < bands_; ++b) {
      fn(ctx, b, band_begin(rows, bands_, b), band_begin(rows, bands_, b + 1));
    }
  }

 private:
  int bands_;
};

// ---- VecF64 primitives ------------------------------------------------------

TEST(SimdVecF64, LaneArithmeticMatchesScalar) {
  const std::size_t n = 64;
  const std::vector<double> a = random_int_doubles(1, n, -1000, 1000);
  const std::vector<double> b = random_int_doubles(2, n, 1, 1000);  // no /0
  std::vector<double> got(VA::kLanes), want(VA::kLanes);
  for (std::size_t i = 0; i + VA::kLanes <= n; i += VA::kLanes) {
    const VA va = VA::load(a.data() + i);
    const VA vb = VA::load(b.data() + i);
    for (int op = 0; op < 6; ++op) {
      VA r = va;
      switch (op) {
        case 0: r = va + vb; break;
        case 1: r = va - vb; break;
        case 2: r = va * vb; break;
        case 3: r = va / vb; break;
        case 4: r = VA::max(va, vb); break;
        case 5: r = VA::min(va, vb); break;
      }
      r.store(got.data());
      for (int l = 0; l < VA::kLanes; ++l) {
        const double x = a[i + l], y = b[i + l];
        switch (op) {
          case 0: want[l] = x + y; break;
          case 1: want[l] = x - y; break;
          case 2: want[l] = x * y; break;
          case 3: want[l] = x / y; break;
          case 4: want[l] = x > y ? x : y; break;
          case 5: want[l] = x < y ? x : y; break;
        }
      }
      for (int l = 0; l < VA::kLanes; ++l) {
        EXPECT_EQ(got[l], want[l]) << "op " << op << " i " << i << " lane " << l;
      }
    }
    VA r = va.abs();
    r.store(got.data());
    for (int l = 0; l < VA::kLanes; ++l) {
      EXPECT_EQ(got[l], std::fabs(a[i + l])) << "abs i " << i << " lane " << l;
    }
  }
}

TEST(SimdVecF64, LoadI32IsExactConversion) {
  std::vector<std::int32_t> src = {0, 1, -1, 127, -128, 65535, -2147483647, 2147483647};
  src.resize(static_cast<std::size_t>(VA::kLanes) * 4, 42);
  std::vector<double> got(VA::kLanes);
  for (std::size_t i = 0; i + VA::kLanes <= src.size(); i += VA::kLanes) {
    VA::load_i32(src.data() + i).store(got.data());
    for (int l = 0; l < VA::kLanes; ++l) {
      EXPECT_EQ(got[l], static_cast<double>(src[i + l])) << "i " << i << " lane " << l;
    }
  }
}

TEST(SimdVecF64, InclusiveScanWithCarryMatchesRunningSum) {
  for (const std::size_t n : kWidths) {
    const std::vector<double> src = random_int_doubles(static_cast<std::uint32_t>(n), n, 0, 255);
    // Scalar reference: the plain running sum.
    std::vector<double> want(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) want[i] = sum += src[i];
    // Vector path: block scan + broadcast_last carry, scalar tail — the
    // exact shape the SAT row kernels use.
    std::vector<double> got(n);
    VA carry = VA::broadcast(0.0);
    std::size_t i = 0;
    for (; i + VA::kLanes <= n; i += VA::kLanes) {
      const VA scanned = VA::load(src.data() + i).inclusive_scan() + carry;
      scanned.store(got.data() + i);
      carry = scanned.broadcast_last();
    }
    double tail_carry[VA::kLanes];
    carry.store(tail_carry);
    double run = tail_carry[0];
    for (; i < n; ++i) got[i] = run += src[i];
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(got[j], want[j]) << "n " << n << " j " << j;
    }
  }
}

TEST(SimdVecF64, ReduceMaxMatchesMaxElement) {
  const std::vector<double> src = random_int_doubles(9, 64, -500, 500);
  for (std::size_t i = 0; i + VA::kLanes <= src.size(); i += VA::kLanes) {
    const double got = VA::load(src.data() + i).reduce_max();
    const double want =
        *std::max_element(src.begin() + static_cast<std::ptrdiff_t>(i),
                          src.begin() + static_cast<std::ptrdiff_t>(i + VA::kLanes));
    EXPECT_EQ(got, want) << "i " << i;
  }
}

TEST(SimdVecF64, StoreGe01MatchesScalarIncludingTies) {
  const std::size_t n = 96;
  std::vector<double> a = random_int_doubles(3, n, 0, 4);
  const std::vector<double> b = random_int_doubles(4, n, 0, 4);
  // Plant exact ties: >= on equal values must agree across backends.
  for (std::size_t i = 0; i < n; i += 3) a[i] = b[i];
  std::vector<std::uint8_t> got(n, 0xee), want(n, 0xee);
  for (std::size_t i = 0; i + VA::kLanes <= n; i += VA::kLanes) {
    VA::store_ge01(VA::load(a.data() + i), VA::load(b.data() + i), got.data() + i);
  }
  for (std::size_t i = 0; i + VA::kLanes <= n; i += VA::kLanes) {
    for (int l = 0; l < VA::kLanes; ++l) {
      VS::store_ge01(VS::load(a.data() + i + l), VS::load(b.data() + i + l), want.data() + i + l);
    }
  }
  EXPECT_EQ(got, want);
}

// ---- byte-plane primitives --------------------------------------------------

TEST(SimdBytePlane, FindNonzeroMatchesScalarAcrossWidthsAndOffsets) {
  for (const std::size_t n : kWidths) {
    // Sparse plane with slack so unaligned bases stay in bounds.
    std::vector<std::uint8_t> plane(n + 7, 0);
    std::mt19937 rng(static_cast<std::uint32_t>(n) * 31u);
    for (std::size_t hits = 0; hits < std::max<std::size_t>(1, n / 8); ++hits) {
      plane[rng() % plane.size()] = static_cast<std::uint8_t>(1 + rng() % 255);
    }
    for (std::size_t off = 0; off < 7; ++off) {
      const std::uint8_t* p = plane.data() + off;
      EXPECT_EQ(simd::find_nonzero<Active>(p, n), simd::find_nonzero<ScalarBackend>(p, n))
          << "n " << n << " off " << off;
    }
    // All-zero and first/last-only: the boundary answers.
    std::vector<std::uint8_t> zeros(n, 0);
    EXPECT_EQ(simd::find_nonzero<Active>(zeros.data(), n), n) << "n " << n;
    zeros[n - 1] = 255;
    EXPECT_EQ(simd::find_nonzero<Active>(zeros.data(), n), n - 1) << "n " << n;
    zeros.assign(n, 0);
    zeros[0] = 1;
    EXPECT_EQ(simd::find_nonzero<Active>(zeros.data(), n), 0u) << "n " << n;
  }
}

TEST(SimdBytePlane, StoreEqual01MatchesScalar) {
  for (const std::size_t n : kWidths) {
    std::mt19937 rng(static_cast<std::uint32_t>(n) + 77u);
    std::vector<int> labels(n);
    for (int& l : labels) l = static_cast<int>(rng() % 5);
    for (const int needle : {0, 1, 3, 7}) {
      std::vector<std::uint8_t> got(n, 0xee), want(n, 0xee);
      simd::store_equal01_i32<Active>(labels.data(), needle, got.data(), n);
      simd::store_equal01_i32<ScalarBackend>(labels.data(), needle, want.data(), n);
      EXPECT_EQ(got, want) << "n " << n << " needle " << needle;
    }
  }
}

TEST(SimdBytePlane, StoreFill01MatchesScalarIncludingSaturatedPlanes) {
  for (const std::size_t n : kWidths) {
    const std::vector<std::uint8_t> rand_src = random_bytes(static_cast<std::uint32_t>(n), n, 2);
    const std::vector<std::uint8_t> rand_closed =
        random_bytes(static_cast<std::uint32_t>(n) + 1, n, 1);
    const std::vector<std::uint8_t> zeros(n, 0);
    const std::vector<std::uint8_t> full(n, 255);
    const std::vector<std::uint8_t>* cases[][2] = {
        {&rand_src, &rand_closed}, {&zeros, &zeros}, {&full, &full},
        {&zeros, &full},           {&full, &zeros},
    };
    for (const auto& c : cases) {
      std::vector<std::uint8_t> got(n, 0xee), want(n, 0xee);
      simd::store_fill01_u8<Active>(c[0]->data(), c[1]->data(), got.data(), n);
      simd::store_fill01_u8<ScalarBackend>(c[0]->data(), c[1]->data(), want.data(), n);
      EXPECT_EQ(got, want) << "n " << n;
    }
  }
}

// ---- kernel-level SIMD parity -----------------------------------------------

RgbImage random_rgb(std::uint32_t seed, int w, int h) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 255);
  RgbImage img(w, h);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img.data()[i] = {static_cast<std::uint8_t>(dist(rng)), static_cast<std::uint8_t>(dist(rng)),
                     static_cast<std::uint8_t>(dist(rng))};
  }
  return img;
}

void expect_tables_identical(const FrameWorkspace& got, const FrameWorkspace& want, int w, int h) {
  const std::size_t n = (static_cast<std::size_t>(w) + 1) * (static_cast<std::size_t>(h) + 1);
  const IntegralImage* gs[] = {&got.integral_r, &got.integral_g, &got.integral_b};
  const IntegralImage* ws[] = {&want.integral_r, &want.integral_g, &want.integral_b};
  for (int c = 0; c < 3; ++c) {
    EXPECT_TRUE(std::equal(gs[c]->raw(), gs[c]->raw() + n, ws[c]->raw())) << "channel " << c;
  }
}

TEST(SimdKernelParity, FusedIntegralBuildMatchesScalarTwin) {
  // Odd widths and heights: every tail path of the row kernels.
  const std::pair<int, int> sizes[] = {{1, 1}, {3, 2}, {7, 5}, {17, 9}, {64, 48}, {65, 47}};
  FrameWorkspace simd_ws, scalar_ws;
  for (const auto& [w, h] : sizes) {
    const RgbImage img = random_rgb(static_cast<std::uint32_t>(w * 100 + h), w, h);
    build_rgb_integrals(img, simd_ws);
    build_rgb_integrals_scalar(img, scalar_ws);
    expect_tables_identical(simd_ws, scalar_ws, w, h);
  }
}

TEST(SimdKernelParity, BandedIntegralBuildMatchesScalarTwinAtEveryBandCount) {
  const int w = 33, h = 29;
  const RgbImage img = random_rgb(7, w, h);
  FrameWorkspace scalar_ws;
  build_rgb_integrals_scalar(img, scalar_ws);
  FrameWorkspace banded_ws;
  for (const int bands : {1, 2, 3, 4, 7}) {
    SerialBandExecutor exec(bands);
    build_rgb_integrals(img, banded_ws, &exec);
    expect_tables_identical(banded_ws, scalar_ws, w, h);
  }
}

TEST(SimdKernelParity, MedianFilterMatchesReferenceOnSaturatedAndOddSizes) {
  FrameWorkspace ws;
  BinaryImage out;
  const std::pair<int, int> sizes[] = {{5, 5}, {17, 11}, {33, 31}, {64, 50}};
  for (const auto& [w, h] : sizes) {
    std::mt19937 rng(static_cast<std::uint32_t>(w + h));
    for (int variant = 0; variant < 3; ++variant) {
      BinaryImage mask(w, h, variant == 1 ? 1 : 0);
      if (variant == 2) {
        for (std::size_t i = 0; i < mask.size(); ++i) {
          mask.data()[i] = static_cast<std::uint8_t>(rng() % 2);
        }
      }
      for (const int k : {1, 3, 5}) {
        median_filter_binary_into(mask, k, ws.mask_integral, out);
        EXPECT_EQ(out, median_filter_binary(mask, k))
            << w << "x" << h << " variant " << variant << " k " << k;
      }
    }
  }
}

TEST(SimdKernelParity, HoleFillAndLargestComponentMatchReferenceOnSaturatedPlanes) {
  FrameWorkspace ws;
  BinaryImage filled, largest;
  for (const auto& [w, h] : {std::pair<int, int>{1, 1}, {9, 7}, {33, 20}, {64, 33}}) {
    std::mt19937 rng(static_cast<std::uint32_t>(w * 7 + h));
    for (int variant = 0; variant < 3; ++variant) {
      BinaryImage mask(w, h, variant == 1 ? 1 : 0);
      if (variant == 2) {
        for (std::size_t i = 0; i < mask.size(); ++i) {
          mask.data()[i] = static_cast<std::uint8_t>(rng() % 2);
        }
      }
      fill_holes_into(mask, ws.reached, ws.flood_stack, filled);
      EXPECT_EQ(filled, fill_holes(mask)) << w << "x" << h << " variant " << variant;
      largest_component_into(mask, true, ws.labeling, ws.pixel_stack, largest);
      EXPECT_EQ(largest, largest_component(mask, true)) << w << "x" << h << " variant " << variant;
    }
  }
}

TEST(SimdKernelParity, ExtractIntoMatchesExtractOnOddFrameSizes) {
  // extract() is the untouched scalar reference; extract_into runs the SIMD
  // kernels. Odd sizes force every vector tail in the fused passes.
  for (const auto& [w, h] : {std::pair<int, int>{31, 17}, {65, 33}, {64, 47}}) {
    const RgbImage background = random_rgb(static_cast<std::uint32_t>(w), w, h);
    RgbImage frame = background;
    // Perturb a patch so the mask is non-trivial.
    for (int y = h / 4; y < h / 2; ++y) {
      for (int x = w / 4; x < w / 2; ++x) {
        frame.at(x, y) = {255, 255, 255};
      }
    }
    seg::ObjectExtractor extractor;
    extractor.set_background(background);
    FrameWorkspace ws;
    BinaryImage silhouette;
    const seg::ExtractionResult want = extractor.extract(frame);
    const double max_d = extractor.extract_into(frame, ws, silhouette);
    EXPECT_EQ(silhouette, want.silhouette) << w << "x" << h;
    EXPECT_EQ(ws.raw_mask, want.raw_mask) << w << "x" << h;
    EXPECT_EQ(ws.difference, want.difference) << w << "x" << h;
    EXPECT_DOUBLE_EQ(max_d, want.max_difference) << w << "x" << h;
  }
}

// ---- banding determinism ----------------------------------------------------

TEST(BandingDeterminism, ExtractIntoIsBitIdenticalAtEveryBandCount) {
  synth::ClipSpec spec;
  spec.seed = 11;
  spec.frame_count = 4;
  const synth::Clip clip = synth::generate_clip(spec);
  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);

  FrameWorkspace ref_ws;
  BinaryImage ref_sil;
  FrameWorkspace band_ws;
  BinaryImage band_sil;
  for (std::size_t f = 0; f < clip.frames.size(); ++f) {
    const double ref_max = extractor.extract_into(clip.frames[f], ref_ws, ref_sil);
    // Band counts that do not divide the frame height, exceed any worker
    // count, and the degenerate single band.
    for (const int bands : {1, 2, 3, 4, 5, 8}) {
      SerialBandExecutor exec(bands);
      const double got_max = extractor.extract_into(clip.frames[f], band_ws, band_sil, &exec);
      EXPECT_EQ(band_sil, ref_sil) << "frame " << f << " bands " << bands;
      EXPECT_EQ(band_ws.raw_mask, ref_ws.raw_mask) << "frame " << f << " bands " << bands;
      EXPECT_EQ(band_ws.smoothed, ref_ws.smoothed) << "frame " << f << " bands " << bands;
      EXPECT_EQ(band_ws.difference, ref_ws.difference) << "frame " << f << " bands " << bands;
      EXPECT_EQ(got_max, ref_max) << "frame " << f << " bands " << bands;
    }
  }
}

TEST(BandingDeterminism, PoolExecutorMatchesSerialExecutor) {
  synth::ClipSpec spec;
  spec.seed = 23;
  spec.frame_count = 3;
  const synth::Clip clip = synth::generate_clip(spec);
  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);

  FrameWorkspace ref_ws;
  BinaryImage ref_sil;
  FrameWorkspace pool_ws;
  BinaryImage pool_sil;
  core::WorkerPool pool(3);  // bands deliberately != worker count below
  for (std::size_t f = 0; f < clip.frames.size(); ++f) {
    extractor.extract_into(clip.frames[f], ref_ws, ref_sil);
    for (const int bands : {2, 4, 5}) {
      core::PoolBandExecutor exec(pool, bands);
      extractor.extract_into(clip.frames[f], pool_ws, pool_sil, &exec);
      EXPECT_EQ(pool_sil, ref_sil) << "frame " << f << " bands " << bands;
      EXPECT_EQ(pool_ws.smoothed, ref_ws.smoothed) << "frame " << f << " bands " << bands;
    }
  }
}

TEST(BandingDeterminism, ClipEngineBandedConfigMatchesUnbanded) {
  synth::ClipSpec spec;
  spec.seed = 5;
  spec.frame_count = 6;
  const synth::Clip clip = synth::generate_clip(spec);

  core::ClipEngineConfig base;
  base.workers = 2;
  core::ClipEngine reference({}, base);
  const core::ClipObservation want = reference.process(clip);

  for (const int bands : {2, 4}) {
    core::ClipEngineConfig banded = base;
    banded.intra_frame_bands = bands;
    core::ClipEngine engine({}, banded);
    const core::ClipObservation got = engine.process(clip);
    ASSERT_EQ(got.frame_count(), want.frame_count()) << "bands " << bands;
    EXPECT_EQ(got.airborne, want.airborne) << "bands " << bands;
    EXPECT_EQ(got.ground_row, want.ground_row) << "bands " << bands;
    for (std::size_t f = 0; f < got.frames.size(); ++f) {
      EXPECT_EQ(got.frames[f].silhouette, want.frames[f].silhouette)
          << "bands " << bands << " frame " << f;
      EXPECT_EQ(got.frames[f].raw_skeleton, want.frames[f].raw_skeleton)
          << "bands " << bands << " frame " << f;
      EXPECT_EQ(got.frames[f].bottom_row, want.frames[f].bottom_row)
          << "bands " << bands << " frame " << f;
    }
  }
}

TEST(BandingDeterminism, TrackedBandedEngineMatchesUnbanded) {
  synth::ClipSpec spec;
  spec.seed = 40;
  spec.frame_count = 5;
  const synth::Clip clip = synth::generate_clip(spec);

  core::ClipEngineConfig base;
  base.workers = 2;
  base.use_tracker = true;
  core::ClipEngine reference({}, base);
  const core::ClipObservation want = reference.process(clip);

  core::ClipEngineConfig banded = base;
  banded.intra_frame_bands = 3;
  core::ClipEngine engine({}, banded);
  const core::ClipObservation got = engine.process(clip);
  ASSERT_EQ(got.frame_count(), want.frame_count());
  EXPECT_EQ(got.airborne, want.airborne);
  for (std::size_t f = 0; f < got.frames.size(); ++f) {
    EXPECT_EQ(got.frames[f].silhouette, want.frames[f].silhouette) << "frame " << f;
    EXPECT_EQ(got.frames[f].bottom_row, want.frames[f].bottom_row) << "frame " << f;
  }
}

TEST(BandingDeterminism, BandedMedianFilterMatchesSerial) {
  FrameWorkspace serial_ws;
  FrameWorkspace band_ws;
  BinaryImage serial_out, band_out;
  for (const auto& [w, h] : {std::pair<int, int>{17, 11}, {64, 48}, {65, 1}}) {
    std::mt19937 rng(static_cast<std::uint32_t>(w + 3 * h));
    BinaryImage mask(w, h, 0);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask.data()[i] = static_cast<std::uint8_t>(rng() % 2);
    }
    median_filter_binary_into(mask, 5, serial_ws.mask_integral, serial_out);
    for (const int bands : {2, 3, 4}) {
      SerialBandExecutor exec(bands);
      median_filter_binary_into(mask, 5, band_ws.mask_integral, band_out, &exec,
                                &band_ws.band_scratch);
      EXPECT_EQ(band_out, serial_out) << w << "x" << h << " bands " << bands;
    }
  }
}

}  // namespace
}  // namespace slj
