#include "pose/features.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace slj::pose {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(AreaEncoder, RequiresAtLeastTwoAreas) {
  EXPECT_THROW(AreaEncoder(1), std::invalid_argument);
  EXPECT_NO_THROW(AreaEncoder(2));
}

TEST(AreaEncoder, MissingStateIsLastState) {
  const AreaEncoder enc(8);
  EXPECT_EQ(enc.missing_state(), 8);
  EXPECT_EQ(enc.state_count(), 9);
}

TEST(AreaEncoder, CardinalDirectionsFallInSectorCentres) {
  // Image coordinates: y grows downward, so "up" means smaller y.
  const AreaEncoder enc(8);
  const PointF waist{50, 50};
  EXPECT_EQ(enc.area_of({60, 50}, waist), 0);  // straight ahead (+x)
  EXPECT_EQ(enc.area_of({60, 40}, waist), 1);  // ahead-up (45°)
  EXPECT_EQ(enc.area_of({50, 40}, waist), 2);  // straight up
  EXPECT_EQ(enc.area_of({40, 40}, waist), 3);  // up-back
  EXPECT_EQ(enc.area_of({40, 50}, waist), 4);  // straight back
  EXPECT_EQ(enc.area_of({40, 60}, waist), 5);  // back-down
  EXPECT_EQ(enc.area_of({50, 60}, waist), 6);  // straight down
  EXPECT_EQ(enc.area_of({60, 60}, waist), 7);  // down-ahead
}

TEST(AreaEncoder, CoincidentPointMapsToAreaZero) {
  const AreaEncoder enc(8);
  EXPECT_EQ(enc.area_of({5, 5}, {5, 5}), 0);
}

TEST(AreaEncoder, SmallPerturbationAroundCardinalStaysInSameSector) {
  // The half-sector offset means "straight up ± a few degrees" is stable.
  const AreaEncoder enc(8);
  const PointF waist{0, 0};
  for (const double jitter : {-0.15, -0.05, 0.05, 0.15}) {
    const double angle = kPi / 2 + jitter;  // up, in body space
    const PointF p{std::cos(angle) * 10, -std::sin(angle) * 10};
    EXPECT_EQ(enc.area_of(p, waist), 2) << "jitter " << jitter;
  }
}

class EncoderPartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(EncoderPartitionProperty, EveryAngleMapsToExactlyOneValidArea) {
  const AreaEncoder enc(GetParam());
  const PointF waist{0, 0};
  for (int deg = 0; deg < 360; ++deg) {
    const double a = deg * kPi / 180.0;
    const PointF p{std::cos(a) * 20, -std::sin(a) * 20};
    const int area = enc.area_of(p, waist);
    EXPECT_GE(area, 0);
    EXPECT_LT(area, enc.num_areas());
  }
}

TEST_P(EncoderPartitionProperty, SectorsPartitionTheCircleEvenly) {
  const AreaEncoder enc(GetParam());
  const PointF waist{0, 0};
  std::vector<int> counts(static_cast<std::size_t>(enc.num_areas()), 0);
  const int samples = 3600;
  for (int i = 0; i < samples; ++i) {
    const double a = i * 2.0 * kPi / samples;
    const PointF p{std::cos(a) * 100, -std::sin(a) * 100};
    ++counts[static_cast<std::size_t>(enc.area_of(p, waist))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, samples / enc.num_areas(), 2);
  }
}

TEST_P(EncoderPartitionProperty, RadiusDoesNotChangeArea) {
  const AreaEncoder enc(GetParam());
  const PointF waist{10, 20};
  for (int deg = 5; deg < 360; deg += 35) {
    const double a = deg * kPi / 180.0;
    const PointF near_p{waist.x + std::cos(a) * 2, waist.y - std::sin(a) * 2};
    const PointF far_p{waist.x + std::cos(a) * 200, waist.y - std::sin(a) * 200};
    EXPECT_EQ(enc.area_of(near_p, waist), enc.area_of(far_p, waist));
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, EncoderPartitionProperty, ::testing::Values(4, 8, 12, 16));

TEST(AreaEncoder, StateLabels) {
  const AreaEncoder enc(8);
  EXPECT_EQ(enc.state_label(0), "I");
  EXPECT_EQ(enc.state_label(7), "VIII");
  EXPECT_EQ(enc.state_label(8), "missing");
}

TEST(PartNames, AllDistinct) {
  EXPECT_EQ(part_name(Part::kHead), "Head");
  EXPECT_EQ(part_name(Part::kChest), "Chest");
  EXPECT_EQ(part_name(Part::kHand), "Hand");
  EXPECT_EQ(part_name(Part::kKnee), "Knee");
  EXPECT_EQ(part_name(Part::kFoot), "Foot");
}

TEST(EncodeParts, ProducesExpectedFeatureVector) {
  const AreaEncoder enc(8);
  PartPoints parts;
  parts.head = {50, 10};   // above waist → up
  parts.chest = {50, 30};  // up
  parts.hand = {80, 45};   // ahead-ish
  parts.knee = {50, 80};   // below
  parts.foot = {45, 100};  // below, slightly back
  const PointF waist{50, 50};
  const FeatureVector f = encode_parts(parts, waist, enc);
  EXPECT_EQ(f[Part::kHead], 2);
  EXPECT_EQ(f[Part::kChest], 2);
  EXPECT_EQ(f[Part::kHand], 0);
  EXPECT_EQ(f[Part::kKnee], 6);
  EXPECT_EQ(f[Part::kFoot], 6);
}

TEST(FeatureVector, ToStringMentionsEveryPart) {
  const AreaEncoder enc(8);
  FeatureVector f;
  f[Part::kHead] = 2;
  f[Part::kChest] = enc.missing_state();
  const std::string s = to_string(f, enc);
  EXPECT_NE(s.find("Head=III"), std::string::npos);
  EXPECT_NE(s.find("Chest=missing"), std::string::npos);
  EXPECT_NE(s.find("Foot="), std::string::npos);
}

TEST(PartPoints, GetMatchesFields) {
  PartPoints parts;
  parts.hand = {7, 8};
  EXPECT_EQ(parts.get(Part::kHand), (PointF{7, 8}));
}

}  // namespace
}  // namespace slj::pose
