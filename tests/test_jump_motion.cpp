#include "synth/jump_motion.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace slj::synth {
namespace {

constexpr double deg(double d) { return d * 3.14159265358979323846 / 180.0; }

JumpMotionGenerator make_generator(std::uint32_t seed = 5, FaultFlags faults = {}) {
  JumpStyle style;
  style.seed = seed;
  style.faults = faults;
  return JumpMotionGenerator(BodyDimensions::for_height(1.38), style);
}

TEST(JumpMotion, GeneratesRequestedFrameCount) {
  const auto frames = make_generator().generate(44);
  EXPECT_EQ(frames.size(), 44u);
  EXPECT_DOUBLE_EQ(frames.front().time_fraction, 0.0);
  EXPECT_DOUBLE_EQ(frames.back().time_fraction, 1.0);
}

TEST(JumpMotion, DeterministicForSameSeed) {
  const auto a = make_generator(9).generate(40);
  const auto b = make_generator(9).generate(40);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].angles.knee, b[i].angles.knee);
    EXPECT_DOUBLE_EQ(a[i].pelvis.x, b[i].pelvis.x);
  }
}

TEST(JumpMotion, DifferentSeedsDiffer) {
  const auto a = make_generator(1).generate(40);
  const auto b = make_generator(2).generate(40);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i].angles.knee - b[i].angles.knee) > 1e-6) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(JumpMotion, StagesProgressMonotonically) {
  const auto frames = make_generator().generate(60);
  int prev = 0;
  bool saw[4] = {false, false, false, false};
  for (const MotionFrame& f : frames) {
    const int s = static_cast<int>(f.stage);
    EXPECT_GE(s, prev);
    prev = std::max(prev, s);
    saw[s] = true;
  }
  for (const bool s : saw) EXPECT_TRUE(s);  // all four stages appear
}

TEST(JumpMotion, AirborneExactlyBetweenLiftoffAndTouchdown) {
  const JumpMotionGenerator gen = make_generator();
  const auto frames = gen.generate(80);
  for (const MotionFrame& f : frames) {
    const bool expected =
        f.time_fraction > gen.takeoff_time() && f.time_fraction < gen.touchdown_time();
    EXPECT_EQ(f.airborne, expected) << "t=" << f.time_fraction;
    if (f.airborne) EXPECT_EQ(f.stage, pose::Stage::kInTheAir);
  }
}

TEST(JumpMotion, PelvisTravelsForward) {
  const auto frames = make_generator().generate(50);
  EXPECT_GT(frames.back().pelvis.x, frames.front().pelvis.x + 0.8);
  // x never goes significantly backwards.
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].pelvis.x, frames[i - 1].pelvis.x - 0.02);
  }
}

TEST(JumpMotion, FlightArcRisesAboveContactHeights) {
  const JumpMotionGenerator gen = make_generator();
  const auto frames = gen.generate(100);
  double max_air_y = 0.0;
  double liftoff_y = 0.0;
  for (const MotionFrame& f : frames) {
    if (f.airborne) {
      max_air_y = std::max(max_air_y, f.pelvis.y);
    } else if (f.time_fraction <= gen.takeoff_time()) {
      liftoff_y = f.pelvis.y;
    }
  }
  EXPECT_GT(max_air_y, liftoff_y + 0.10);
}

TEST(JumpMotion, GroundedFramesKeepFeetOnGround) {
  const JumpMotionGenerator gen = make_generator();
  const BodyDimensions body = gen.body();
  for (const MotionFrame& f : gen.generate(60)) {
    if (f.airborne) continue;
    const double offset = lowest_foot_offset(body, f.angles) + f.pelvis.y;
    EXPECT_NEAR(offset, 0.0, 1e-9) << "t=" << f.time_fraction;
  }
}

TEST(JumpMotion, CrouchHappensBeforeTakeoff) {
  const JumpMotionGenerator gen = make_generator();
  double max_knee_before = 0.0;
  for (const MotionFrame& f : gen.generate(60)) {
    if (f.time_fraction < gen.takeoff_time()) {
      max_knee_before = std::max(max_knee_before, f.angles.knee);
    }
  }
  EXPECT_GT(max_knee_before, deg(55));
}

TEST(JumpMotion, NoArmSwingFaultCapsShoulder) {
  FaultFlags faults;
  faults.no_arm_swing = true;
  for (const MotionFrame& f : make_generator(5, faults).generate(60)) {
    EXPECT_LT(f.angles.shoulder, deg(20));
    EXPECT_GT(f.angles.shoulder, deg(-14));
  }
}

TEST(JumpMotion, NoCrouchFaultCapsKnee) {
  FaultFlags faults;
  faults.no_crouch = true;
  for (const MotionFrame& f : make_generator(5, faults).generate(60)) {
    EXPECT_LT(f.angles.knee, deg(32));
  }
}

TEST(JumpMotion, StiffLandingFaultFreezesAbsorption) {
  FaultFlags faults;
  faults.stiff_landing = true;
  const JumpMotionGenerator gen = make_generator(5, faults);
  for (const MotionFrame& f : gen.generate(60)) {
    if (f.time_fraction > gen.touchdown_time() + 0.02) {
      EXPECT_LT(f.angles.knee, deg(25)) << "t=" << f.time_fraction;
    }
  }
  // Preparation crouch is untouched.
  double max_before = 0.0;
  for (const MotionFrame& f : gen.generate(60)) {
    if (f.time_fraction < gen.takeoff_time()) max_before = std::max(max_before, f.angles.knee);
  }
  EXPECT_GT(max_before, deg(55));
}

TEST(JumpMotion, FaultFlagsAnyDetectsAnything) {
  FaultFlags none;
  EXPECT_FALSE(none.any());
  FaultFlags one;
  one.stiff_landing = true;
  EXPECT_TRUE(one.any());
}

TEST(JumpMotion, SingleFrameClipSamplesStart) {
  const auto frames = make_generator().generate(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_DOUBLE_EQ(frames.front().time_fraction, 0.0);
  EXPECT_EQ(frames.front().stage, pose::Stage::kBeforeJumping);
}

}  // namespace
}  // namespace slj::synth
