#include "synth/renderer.hpp"

#include <gtest/gtest.h>

#include <random>

namespace slj::synth {
namespace {

const BodyDimensions kBody = BodyDimensions::for_height(1.38);

TEST(Renderer, ProjectionMapsGroundAndScale) {
  CameraConfig cam;
  const SilhouetteRenderer r(cam);
  const PointF origin = r.project({0.0, 0.0});
  EXPECT_DOUBLE_EQ(origin.x, cam.origin_x_px);
  EXPECT_DOUBLE_EQ(origin.y, cam.ground_y_px);
  // One metre up maps pixels_per_meter up the image (smaller y).
  const PointF up = r.project({0.0, 1.0});
  EXPECT_DOUBLE_EQ(up.y, cam.ground_y_px - cam.pixels_per_meter);
}

TEST(Renderer, SilhouetteIsSubstantialAndInFrame) {
  const SilhouetteRenderer r;
  JointAngles standing;
  const double h = pelvis_height_for_ground_contact(kBody, standing);
  const BinaryImage sil = r.render_silhouette(kBody, standing, {0.4, h});
  const std::size_t area = count_foreground(sil);
  EXPECT_GT(area, 600u);   // a person, not a speck
  EXPECT_LT(area, sil.size() / 4);
}

TEST(Renderer, SilhouetteTopNearHeadBottomNearFeet) {
  const SilhouetteRenderer r;
  JointAngles standing;
  const double h = pelvis_height_for_ground_contact(kBody, standing);
  const BinaryImage sil = r.render_silhouette(kBody, standing, {0.4, h});
  int top = sil.height(), bottom = -1;
  for (int y = 0; y < sil.height(); ++y) {
    for (int x = 0; x < sil.width(); ++x) {
      if (sil.at(x, y)) {
        top = std::min(top, y);
        bottom = std::max(bottom, y);
      }
    }
  }
  const PartTruth truth = r.part_truth(kBody, standing, {0.4, h});
  EXPECT_NEAR(top, truth.head.y, 4.0);
  EXPECT_NEAR(bottom, r.config().ground_y_px, 3.0);
}

TEST(Renderer, PartTruthPointsLieInsideSilhouette) {
  const SilhouetteRenderer r;
  JointAngles a;
  a.shoulder = 0.9;
  a.knee = 0.4;
  a.hip = 0.3;
  const double h = pelvis_height_for_ground_contact(kBody, a);
  const BinaryImage sil = r.render_silhouette(kBody, a, {0.5, h});
  const PartTruth truth = r.part_truth(kBody, a, {0.5, h});
  for (const PointF p : {truth.chest, truth.knee, truth.waist}) {
    const PointI px = round_to_i(p);
    ASSERT_TRUE(sil.in_bounds(px));
    EXPECT_TRUE(sil.at(px)) << "(" << px.x << "," << px.y << ")";
  }
}

TEST(Renderer, StickRenderingIsThinnerThanBody) {
  const SilhouetteRenderer r;
  JointAngles standing;
  const double h = pelvis_height_for_ground_contact(kBody, standing);
  const BinaryImage body = r.render_silhouette(kBody, standing, {0.4, h});
  const BinaryImage stick = r.render_stick(kBody, standing, {0.4, h}, 2.0);
  EXPECT_LT(count_foreground(stick), count_foreground(body));
  EXPECT_GT(count_foreground(stick), 100u);
}

TEST(Renderer, FramePaintsPersonBrighterThanBackground) {
  const SilhouetteRenderer r;
  JointAngles standing;
  const double h = pelvis_height_for_ground_contact(kBody, standing);
  std::mt19937 rng(1);
  const RgbImage frame = r.render_frame(kBody, standing, {0.4, h}, rng);
  const BinaryImage sil = r.render_silhouette(kBody, standing, {0.4, h});
  double person = 0.0, bg = 0.0;
  std::size_t np = 0, nb = 0;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const double lum = frame.at(x, y).r + frame.at(x, y).g + frame.at(x, y).b;
      if (sil.at(x, y)) {
        person += lum;
        ++np;
      } else {
        bg += lum;
        ++nb;
      }
    }
  }
  EXPECT_GT(person / np, 3.0 * bg / nb);
}

TEST(Renderer, BackgroundFrameHasNoPerson) {
  const SilhouetteRenderer r;
  std::mt19937 rng(2);
  const RgbImage bg = r.render_background(rng);
  double max_lum = 0.0;
  for (const Rgb& p : bg.data()) {
    max_lum = std::max(max_lum, (p.r + p.g + p.b) / 3.0);
  }
  EXPECT_LT(max_lum, 60.0);  // dark studio everywhere
}

TEST(Renderer, NoiseMakesFramesDiffer) {
  const SilhouetteRenderer r;
  JointAngles standing;
  const double h = pelvis_height_for_ground_contact(kBody, standing);
  std::mt19937 rng(3);
  const RgbImage f1 = r.render_frame(kBody, standing, {0.4, h}, rng);
  const RgbImage f2 = r.render_frame(kBody, standing, {0.4, h}, rng);
  EXPECT_NE(f1, f2);
}

TEST(Renderer, MovingPelvisMovesSilhouette) {
  const SilhouetteRenderer r;
  JointAngles standing;
  const double h = pelvis_height_for_ground_contact(kBody, standing);
  const BinaryImage near_sil = r.render_silhouette(kBody, standing, {0.3, h});
  const BinaryImage far_sil = r.render_silhouette(kBody, standing, {1.3, h});
  EXPECT_LT(iou(near_sil, far_sil), 0.05);
}

}  // namespace
}  // namespace slj::synth
