#include "core/scoring.hpp"

#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "synth/dataset.hpp"

namespace slj::core {
namespace {

/// Synthetic observations: a silhouette block on the ground that jumps from
/// x∈[10,20] to x∈[60,70] with a 3-frame flight.
struct MiniJump {
  std::vector<FrameObservation> observations;
  std::vector<bool> airborne;

  MiniJump() {
    const int w = 100, h = 40, ground = 35;
    const auto block = [&](int x0, int x1, int bottom) {
      FrameObservation obs;
      obs.silhouette = BinaryImage(w, h, 0);
      for (int y = bottom - 10; y <= bottom; ++y) {
        for (int x = x0; x <= x1; ++x) obs.silhouette.at(x, y) = 1;
      }
      obs.bottom_row = bottom;
      return obs;
    };
    // 3 grounded frames at the start position.
    for (int i = 0; i < 3; ++i) {
      observations.push_back(block(10, 20, ground));
      airborne.push_back(false);
    }
    // 3 airborne frames moving across.
    for (int i = 0; i < 3; ++i) {
      observations.push_back(block(30 + 10 * i, 40 + 10 * i, ground - 8));
      airborne.push_back(true);
    }
    // 3 grounded frames at the landing position.
    for (int i = 0; i < 3; ++i) {
      observations.push_back(block(60, 70, ground));
      airborne.push_back(false);
    }
  }
};

TEST(MeasureJump, FindsTakeoffAndLandingFrames) {
  const MiniJump jump;
  const auto m = measure_jump(jump.observations, jump.airborne, 50.0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->takeoff_frame, 2);
  EXPECT_EQ(m->landing_frame, 6);
  EXPECT_EQ(m->flight_frames, 3);
}

TEST(MeasureJump, DistanceIsToeToHeel) {
  const MiniJump jump;
  const auto m = measure_jump(jump.observations, jump.airborne, 50.0);
  ASSERT_TRUE(m.has_value());
  // Toe at take-off: x=20. Heel at landing: x=60. 40 px at 50 px/m = 0.8 m.
  EXPECT_DOUBLE_EQ(m->takeoff_toe_px, 20.0);
  EXPECT_DOUBLE_EQ(m->landing_heel_px, 60.0);
  EXPECT_DOUBLE_EQ(m->distance_px, 40.0);
  EXPECT_NEAR(m->distance_m, 0.8, 1e-9);
}

TEST(MeasureJump, NoFlightGivesNullopt) {
  MiniJump jump;
  std::fill(jump.airborne.begin(), jump.airborne.end(), false);
  EXPECT_FALSE(measure_jump(jump.observations, jump.airborne, 50.0).has_value());
}

TEST(MeasureJump, FlightAtClipEdgeGivesNullopt) {
  MiniJump jump;
  // Airborne from frame 0: no grounded take-off frame.
  jump.airborne[0] = true;
  jump.airborne[1] = true;
  std::fill(jump.airborne.begin() + 2, jump.airborne.end(), false);
  jump.airborne[0] = true;
  auto a = jump.airborne;
  a.assign(a.size(), false);
  a[0] = true;
  EXPECT_FALSE(measure_jump(jump.observations, a, 50.0).has_value());
}

TEST(MeasureJump, MismatchedSizesGiveNullopt) {
  const MiniJump jump;
  std::vector<bool> wrong(jump.airborne.begin(), jump.airborne.end() - 1);
  EXPECT_FALSE(measure_jump(jump.observations, wrong, 50.0).has_value());
}

TEST(ScoreJump, CombinesFormAndDistance) {
  const MiniJump jump;
  // Perfect form sequence.
  std::vector<pose::FrameResult> poses;
  const auto add = [&](pose::PoseId p) {
    pose::FrameResult r;
    r.pose = p;
    poses.push_back(r);
  };
  add(pose::PoseId::kStandHandsBackward);
  add(pose::PoseId::kCrouchHandsBackward);
  add(pose::PoseId::kExtendedHandsForward);
  add(pose::PoseId::kAirTuckHandsForward);
  add(pose::PoseId::kAirLegsReachForward);
  add(pose::PoseId::kTouchdownKneesBentHandsForward);
  add(pose::PoseId::kLandedSquatHandsForward);
  add(pose::PoseId::kLandedRisingHandsDown);
  add(pose::PoseId::kLandedRisingHandsDown);

  const JumpScore score = score_jump(jump.observations, jump.airborne, poses, 50.0, 0.8);
  EXPECT_TRUE(score.measurement.valid());
  EXPECT_TRUE(score.form.all_passed());
  EXPECT_EQ(score.total, 100);  // 60 form + 40 distance (0.8 m of 0.8 m)
  EXPECT_EQ(score.grade, "excellent");
}

TEST(ScoreJump, ShortJumpLosesDistancePoints) {
  const MiniJump jump;
  std::vector<pose::FrameResult> poses(9);  // all Unknown: fails every form check
  const JumpScore score = score_jump(jump.observations, jump.airborne, poses, 50.0, 1.6);
  // distance 0.8 of expected 1.6 → 20 of 40 points; form 0.
  EXPECT_EQ(score.total, 20);
  EXPECT_EQ(score.grade, "needs work");
}

TEST(ScoreJump, EndToEndOnGeneratedClip) {
  synth::ClipSpec spec;
  spec.seed = 17;
  spec.frame_count = 45;
  const synth::Clip clip = synth::generate_clip(spec);
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  GroundMonitor ground;
  std::vector<FrameObservation> observations;
  std::vector<bool> airborne;
  for (const RgbImage& frame : clip.frames) {
    observations.push_back(pipeline.process(frame));
    airborne.push_back(ground.airborne(observations.back().bottom_row));
  }
  const auto m =
      measure_jump(observations, airborne, spec.camera.pixels_per_meter);
  ASSERT_TRUE(m.has_value());
  // Generated jumps travel roughly 1.0–1.5 m.
  EXPECT_GT(m->distance_m, 0.6);
  EXPECT_LT(m->distance_m, 2.0);
  EXPECT_GT(m->flight_frames, 5);
}

}  // namespace
}  // namespace slj::core
