# Negative-compile and linter-fixture suite for the static-analysis gates.
#
# Run standalone:   cmake -P tests/test_static_analysis.cmake
# Via the CI lane:  scripts/ci.sh --analyze
# Via ctest:        registered as `static_analysis` by the top-level build.
#
# The point of this suite is the *negative* direction: a gate that only ever
# sees clean code can silently stop gating. Each check below plants a known
# violation and asserts the gate rejects it, alongside a positive control
# asserting the sanctioned idiom still passes.
#
# Optional -D inputs:
#   SLJ_CXX        C++ compiler for the compile checks (default: clang++ if
#                  found, else c++ / g++). The thread-safety negative check
#                  only runs when the compiler is clang; elsewhere it is
#                  skipped with a note, because the annotations deliberately
#                  compile away (see src/core/annotations.hpp).
#   SLJ_BUILD_DIR  unused today; accepted so callers can forward it.
cmake_minimum_required(VERSION 3.24)

get_filename_component(SLJ_ROOT "${CMAKE_CURRENT_LIST_DIR}/.." ABSOLUTE)
set(FIXTURES "${SLJ_ROOT}/tests/static_analysis")
set(LINT "${SLJ_ROOT}/scripts/lint/slj_lint.py")
set(SCRATCH "${CMAKE_CURRENT_BINARY_DIR}/static_analysis_scratch")
file(MAKE_DIRECTORY "${SCRATCH}")

find_program(SLJ_PYTHON NAMES python3 python REQUIRED)

if(NOT SLJ_CXX)
  find_program(SLJ_CXX NAMES clang++ c++ g++)
endif()
if(NOT SLJ_CXX)
  message(FATAL_ERROR "static_analysis: no C++ compiler found")
endif()

set(FAILURES 0)

function(check_pass name)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(SEND_ERROR "FAIL ${name}: expected success, got exit ${rc}\n${out}${err}")
    math(EXPR FAILURES "${FAILURES}+1")
    set(FAILURES "${FAILURES}" PARENT_SCOPE)
  else()
    message(STATUS "PASS ${name}")
  endif()
endfunction()

# expect_substrings: every listed needle must appear in the combined output.
function(check_fail name expect_substrings)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  set(combined "${out}${err}")
  if(rc EQUAL 0)
    message(SEND_ERROR "FAIL ${name}: expected rejection, but the gate passed it")
    math(EXPR FAILURES "${FAILURES}+1")
    set(FAILURES "${FAILURES}" PARENT_SCOPE)
    return()
  endif()
  foreach(needle IN LISTS expect_substrings)
    string(FIND "${combined}" "${needle}" hit)
    if(hit EQUAL -1)
      message(SEND_ERROR
        "FAIL ${name}: rejected, but output lacks \"${needle}\"\n${combined}")
      math(EXPR FAILURES "${FAILURES}+1")
      set(FAILURES "${FAILURES}" PARENT_SCOPE)
      return()
    endif()
  endforeach()
  message(STATUS "PASS ${name}")
endfunction()

# --- 1. slj_lint rejects the hot-path allocation fixture --------------------
set(hot_bad_expect "hot-path-alloc" "scratch" "new" "to_string")
check_fail("lint rejects hot_path_bad" "${hot_bad_expect}"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/hot_path_bad.cpp")

# --- 2. slj_lint passes the recycled-workspace idiom ------------------------
check_pass("lint passes hot_path_ok"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/hot_path_ok.cpp")

# --- 3. slj_lint rejects naked standard-library locking ---------------------
set(mutex_expect "naked-mutex" "std::mutex" "std::condition_variable")
check_fail("lint rejects naked_mutex_bad" "${mutex_expect}"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/naked_mutex_bad.cpp")

# --- 4. slj_lint rejects an unguarded deserializer length -------------------
# The rule is scoped to the real deserializer paths, so stage the fixture as
# one of them inside a throwaway tree.
file(MAKE_DIRECTORY "${SCRATCH}/unchecked/src/synth")
configure_file("${FIXTURES}/unchecked_read_bad.cpp"
               "${SCRATCH}/unchecked/src/synth/clip_io.cpp" COPYONLY)
check_fail("lint rejects unchecked_read_bad" "unchecked-read"
  "${SLJ_PYTHON}" "${LINT}" --root "${SCRATCH}/unchecked" -q)

# --- 4b. slj_lint rejects SIMD macro leakage / #ifdef'd hot kernels ---------
set(simd_bad_expect "simd-dispatch" "__AVX2__" "preprocessor conditional")
check_fail("lint rejects hot_path_simd_bad" "${simd_bad_expect}"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/hot_path_simd_bad.cpp")

# --- 4c. slj_lint passes backend-tag dispatch through simd::Active ----------
check_pass("lint passes hot_path_simd_ok"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/hot_path_simd_ok.cpp")

# --- 4d. slj_lint rejects untagged/defaulted/reclaim-style atomics ----------
set(atomics_bad_expect "atomics-discipline" "untagged" "feeds control flow"
    "defaulted (seq_cst)")
check_fail("lint rejects atomics_bad" "${atomics_bad_expect}"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/atomics_bad.cpp")

# --- 4e. slj_lint passes the tagged atomic taxonomy -------------------------
check_pass("lint passes atomics_ok"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/atomics_ok.cpp")

# --- 4f. slj_lint rejects nondeterminism sources ----------------------------
set(det_bad_expect "determinism" "unordered" "float" "rand")
check_fail("lint rejects determinism_bad" "${det_bad_expect}"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/determinism_bad.cpp")

# --- 4g. slj_lint passes the sorted-iteration / integer-domain idioms -------
check_pass("lint passes determinism_ok"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q "${FIXTURES}/determinism_ok.cpp")

# --- 4h. slj_lint rejects layering violations -------------------------------
# The rule resolves modules from the path under src/, so stage the fixtures
# into a throwaway tree as members of the imaging module, validated against
# the real layers.toml.
file(MAKE_DIRECTORY "${SCRATCH}/layering/src/imaging")
configure_file("${FIXTURES}/layering_bad.cpp"
               "${SCRATCH}/layering/src/imaging/layering_bad.cpp" COPYONLY)
configure_file("${FIXTURES}/layering_ok.cpp"
               "${SCRATCH}/layering/src/imaging/layering_ok.cpp" COPYONLY)
set(layering_bad_expect "layering" "upward" "canonical" "no module")
check_fail("lint rejects layering_bad" "${layering_bad_expect}"
  "${SLJ_PYTHON}" "${LINT}" --root "${SCRATCH}/layering"
  --layers "${SLJ_ROOT}/scripts/lint/layers.toml" -q
  "${SCRATCH}/layering/src/imaging/layering_bad.cpp")

# --- 4i. slj_lint passes the in-DAG includes --------------------------------
check_pass("lint passes layering_ok"
  "${SLJ_PYTHON}" "${LINT}" --root "${SCRATCH}/layering"
  --layers "${SLJ_ROOT}/scripts/lint/layers.toml" -q
  "${SCRATCH}/layering/src/imaging/layering_ok.cpp")

# --- 4j. --strict-engine turns an AST fallback into a hard failure ----------
# engine_fallback.cpp cannot be parsed (and on clang-less hosts the AST
# engine cannot run at all) — either way the file degrades to lexical, which
# strict mode must reject instead of silently passing.
check_fail("strict engine rejects fallback" "--strict-engine"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" --engine ast --strict-engine
  -q "${FIXTURES}/engine_fallback.cpp")

# --- 5. slj_lint passes the real tree (with the suppression ratchet) --------
check_pass("lint passes src/"
  "${SLJ_PYTHON}" "${LINT}" --root "${SLJ_ROOT}" -q
  --suppression-baseline "${SLJ_ROOT}/scripts/lint/suppressions_baseline.txt")

# --- 6. annotations compile everywhere (positive control) -------------------
# Exercises the degradation path: on clang the annotations are analyzed, on
# gcc they expand to nothing; either way this file must be accepted.
check_pass("guarded_ok compiles (${SLJ_CXX})"
  "${SLJ_CXX}" -std=c++20 -fsyntax-only -I "${SLJ_ROOT}/src"
  "${FIXTURES}/guarded_ok.cpp")

# hot_path_bad is valid C++ — the compiler must accept what only the linter
# rejects, or the fixture is testing the wrong layer.
check_pass("hot_path_bad compiles (${SLJ_CXX})"
  "${SLJ_CXX}" -std=c++20 -fsyntax-only -I "${SLJ_ROOT}/src"
  "${FIXTURES}/hot_path_bad.cpp")

# Same layering check for the SIMD fixtures: both are valid C++ (the bad one
# is only wrong by the linter's rules), and the good one exercises the real
# core/simd.hpp dispatch header.
check_pass("hot_path_simd_bad compiles (${SLJ_CXX})"
  "${SLJ_CXX}" -std=c++20 -fsyntax-only -I "${SLJ_ROOT}/src"
  "${FIXTURES}/hot_path_simd_bad.cpp")
check_pass("hot_path_simd_ok compiles (${SLJ_CXX})"
  "${SLJ_CXX}" -std=c++20 -fsyntax-only -I "${SLJ_ROOT}/src"
  "${FIXTURES}/hot_path_simd_ok.cpp")

# The atomics/determinism fixtures are valid C++ too — only the linter may
# reject the *_bad ones, and the controls must build against the real headers.
foreach(fixture atomics_bad atomics_ok determinism_bad determinism_ok)
  check_pass("${fixture} compiles (${SLJ_CXX})"
    "${SLJ_CXX}" -std=c++20 -fsyntax-only -I "${SLJ_ROOT}/src"
    "${FIXTURES}/${fixture}.cpp")
endforeach()

# --- 7. clang rejects the unlocked guarded access ---------------------------
execute_process(COMMAND "${SLJ_CXX}" --version OUTPUT_VARIABLE cxx_version
                ERROR_QUIET)
if(cxx_version MATCHES "clang")
  check_fail("thread-safety rejects guarded_bad" "thread-safety"
    "${SLJ_CXX}" -std=c++20 -fsyntax-only -I "${SLJ_ROOT}/src"
    -Wthread-safety -Werror=thread-safety-analysis
    "${FIXTURES}/guarded_bad.cpp")
else()
  message(STATUS "SKIP thread-safety negative check: ${SLJ_CXX} is not clang "
                 "(annotations compile away; see src/core/annotations.hpp)")
endif()

file(REMOVE_RECURSE "${SCRATCH}")

if(FAILURES GREATER 0)
  message(FATAL_ERROR "static_analysis: ${FAILURES} check(s) failed")
endif()
message(STATUS "static_analysis: all checks passed")
