#include "skelgraph/loop_cut.hpp"

#include <gtest/gtest.h>

namespace slj::skel {
namespace {

/// Builds a multigraph: two nodes joined by a long and a short parallel
/// path (one cycle), plus a tail.
SkeletonGraph two_path_cycle() {
  SkeletonGraph g;
  Node a, b, t;
  a.pos = {0, 0};
  b.pos = {10, 0};
  t.pos = {15, 0};
  a.type = b.type = NodeType::kJunction;
  t.type = NodeType::kEnd;
  const int ia = g.add_node(a);
  const int ib = g.add_node(b);
  const int it = g.add_node(t);

  Edge direct;  // short path, length 10
  direct.a = ia;
  direct.b = ib;
  for (int x = 0; x <= 10; ++x) direct.path.push_back({x, 0});
  g.add_edge(direct);

  Edge detour;  // long path through y=5, length ~20
  detour.a = ia;
  detour.b = ib;
  detour.path.push_back({0, 0});
  for (int x = 0; x <= 10; ++x) detour.path.push_back({x, 5});
  detour.path.push_back({10, 0});
  g.add_edge(detour);

  Edge tail;
  tail.a = ib;
  tail.b = it;
  for (int x = 10; x <= 15; ++x) tail.path.push_back({x, 0});
  g.add_edge(tail);
  return g;
}

TEST(LoopCut, RemovesOneCycleEdge) {
  SkeletonGraph g = two_path_cycle();
  EXPECT_EQ(g.cycle_count(), 1u);
  const LoopCutStats stats = cut_loops(g);
  EXPECT_EQ(stats.loops_before, 1u);
  EXPECT_EQ(stats.loops_after, 0u);
  EXPECT_EQ(stats.edges_removed, 1u);
  EXPECT_EQ(g.cycle_count(), 0u);
  EXPECT_EQ(g.alive_edge_count(), 2u);
}

TEST(LoopCut, MaximumPolicyKeepsLongerPath) {
  SkeletonGraph g = two_path_cycle();
  cut_loops(g, SpanningPolicy::kMaximum);
  // The direct (short) edge must be the one cut.
  double longest_kept = 0.0;
  for (const Edge& e : g.edges()) {
    if (e.alive && e.a != e.b) longest_kept = std::max(longest_kept, e.length);
  }
  EXPECT_GT(longest_kept, 15.0);
  // Specifically: edge 0 (direct) dead, edge 1 (detour) alive.
  EXPECT_FALSE(g.edge(0).alive);
  EXPECT_TRUE(g.edge(1).alive);
}

TEST(LoopCut, MinimumPolicyKeepsShorterPath) {
  SkeletonGraph g = two_path_cycle();
  cut_loops(g, SpanningPolicy::kMinimum);
  EXPECT_TRUE(g.edge(0).alive);
  EXPECT_FALSE(g.edge(1).alive);
}

TEST(LoopCut, SelfLoopsAlwaysRemoved) {
  SkeletonGraph g;
  Node seat;
  seat.pos = {3, 3};
  seat.type = NodeType::kLoopSeat;
  const int is = g.add_node(seat);
  Edge ring;
  ring.a = is;
  ring.b = is;
  ring.path = {{3, 3}, {4, 3}, {4, 4}, {3, 4}, {3, 3}};
  g.add_edge(ring);

  const LoopCutStats stats = cut_loops(g);
  EXPECT_EQ(stats.edges_removed, 1u);
  EXPECT_EQ(g.alive_edge_count(), 0u);
}

TEST(LoopCut, AcyclicGraphUntouched) {
  SkeletonGraph g;
  Node a, b;
  a.pos = {0, 0};
  b.pos = {4, 0};
  a.type = b.type = NodeType::kEnd;
  const int ia = g.add_node(a);
  const int ib = g.add_node(b);
  Edge e;
  e.a = ia;
  e.b = ib;
  e.path = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  g.add_edge(e);

  const LoopCutStats stats = cut_loops(g);
  EXPECT_EQ(stats.edges_removed, 0u);
  EXPECT_EQ(stats.kept_length, 4.0);
  EXPECT_EQ(g.alive_edge_count(), 1u);
}

TEST(LoopCut, KeptPlusRemovedEqualsTotal) {
  SkeletonGraph g = two_path_cycle();
  const double total = g.total_length();
  const LoopCutStats stats = cut_loops(g);
  EXPECT_NEAR(stats.kept_length + stats.removed_length, total, 1e-9);
  EXPECT_NEAR(g.total_length(), stats.kept_length, 1e-9);
}

TEST(LoopCut, DisconnectedComponentsEachKeepASpanningTree) {
  SkeletonGraph g;
  // Two separate triangles (each one cycle).
  int base = 0;
  for (int comp = 0; comp < 2; ++comp) {
    Node n1, n2, n3;
    n1.pos = {base, 0};
    n2.pos = {base + 4, 0};
    n3.pos = {base + 2, 4};
    n1.type = n2.type = n3.type = NodeType::kJunction;
    const int i1 = g.add_node(n1);
    const int i2 = g.add_node(n2);
    const int i3 = g.add_node(n3);
    const auto connect = [&](int u, int v, PointI pu, PointI pv) {
      Edge e;
      e.a = u;
      e.b = v;
      e.path = {pu, pv};
      g.add_edge(e);
    };
    connect(i1, i2, {base, 0}, {base + 4, 0});
    connect(i2, i3, {base + 4, 0}, {base + 2, 4});
    connect(i3, i1, {base + 2, 4}, {base, 0});
    base += 20;
  }
  EXPECT_EQ(g.cycle_count(), 2u);
  const LoopCutStats stats = cut_loops(g);
  EXPECT_EQ(stats.edges_removed, 2u);
  EXPECT_EQ(g.cycle_count(), 0u);
  EXPECT_EQ(g.alive_edge_count(), 4u);
}

}  // namespace
}  // namespace slj::skel
