#include "bayes/structure.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluation.hpp"
#include "core/trainer.hpp"
#include "pose/classifier.hpp"

namespace slj::bayes {
namespace {

/// Samples where feature 1 copies feature 0 (given any class) and feature 2
/// is independent noise.
std::vector<TanSample> coupled_samples(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<TanSample> samples;
  for (int i = 0; i < n; ++i) {
    TanSample s;
    s.class_label = static_cast<int>(rng() % 2);
    const int x0 = static_cast<int>(rng() % 3);
    s.features = {x0, x0, static_cast<int>(rng() % 3)};
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(ConditionalMutualInformation, CoupledFeaturesHaveHighMi) {
  const auto samples = coupled_samples(400, 1);
  const std::vector<int> cards{3, 3, 3};
  const double mi_coupled = conditional_mutual_information(samples, 0, 1, cards, 2);
  const double mi_noise = conditional_mutual_information(samples, 0, 2, cards, 2);
  EXPECT_GT(mi_coupled, 5.0 * std::max(mi_noise, 1e-6));
  EXPECT_GE(mi_noise, 0.0);
}

TEST(ConditionalMutualInformation, IsSymmetric) {
  const auto samples = coupled_samples(200, 2);
  const std::vector<int> cards{3, 3, 3};
  EXPECT_NEAR(conditional_mutual_information(samples, 0, 1, cards, 2),
              conditional_mutual_information(samples, 1, 0, cards, 2), 1e-12);
}

TEST(LearnTanStructure, ConnectsCoupledFeatures) {
  const auto samples = coupled_samples(500, 3);
  const std::vector<int> cards{3, 3, 3};
  const std::vector<int> parents = learn_tan_structure(samples, cards, 2);
  ASSERT_EQ(parents.size(), 3u);
  // The tree is rooted at feature 0, so feature 1 must hang off feature 0
  // (its strongest dependency).
  EXPECT_EQ(parents[0], -1);
  EXPECT_EQ(parents[1], 0);
}

TEST(LearnTanStructure, TreeHasNoCycles) {
  std::mt19937 rng(4);
  std::vector<TanSample> samples;
  for (int i = 0; i < 300; ++i) {
    TanSample s;
    s.class_label = static_cast<int>(rng() % 3);
    s.features = {static_cast<int>(rng() % 4), static_cast<int>(rng() % 4),
                  static_cast<int>(rng() % 4), static_cast<int>(rng() % 4),
                  static_cast<int>(rng() % 4)};
    samples.push_back(std::move(s));
  }
  const std::vector<int> parents =
      learn_tan_structure(samples, {4, 4, 4, 4, 4}, 3);
  // Follow parent chains: must terminate at -1 within n steps.
  for (std::size_t f = 0; f < parents.size(); ++f) {
    int cur = static_cast<int>(f);
    int steps = 0;
    while (cur != -1) {
      cur = parents[static_cast<std::size_t>(cur)];
      ASSERT_LE(++steps, 5) << "cycle through feature " << f;
    }
  }
  // Exactly one root.
  EXPECT_EQ(std::count(parents.begin(), parents.end(), -1), 1);
}

TEST(LearnTanStructure, DegenerateInputs) {
  EXPECT_EQ(learn_tan_structure({}, {3, 3}, 2), (std::vector<int>{-1, -1}));
  const std::vector<TanSample> one{{0, {1}}};
  EXPECT_EQ(learn_tan_structure(one, {3}, 2), (std::vector<int>{-1}));
}

TEST(LearnTanStructure, ValidatesInputs) {
  std::vector<TanSample> bad{{5, {0, 0}}};  // class out of range
  EXPECT_THROW(learn_tan_structure(bad, {2, 2}, 2), std::invalid_argument);
  std::vector<TanSample> bad2{{0, {0}}};  // wrong feature count
  EXPECT_THROW(learn_tan_structure(bad2, {2, 2}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace slj::bayes

namespace slj::pose {
namespace {

FeatureCandidate simple_candidate(const AreaEncoder& enc, int hand_area) {
  FeatureCandidate c;
  c.features[Part::kHead] = 2;
  c.features[Part::kChest] = 2;
  c.features[Part::kHand] = hand_area;
  c.features[Part::kKnee] = 6;
  c.features[Part::kFoot] = 6;
  c.occupancy.assign(static_cast<std::size_t>(enc.num_areas()), 0);
  for (const int a : c.features.areas) {
    if (a < enc.num_areas()) c.occupancy[static_cast<std::size_t>(a)] = 1;
  }
  return c;
}

TEST(TanClassifier, StructureInstallsAndClassifies) {
  PoseDbnClassifier clf;
  clf.set_tan_structure({-1, 0, 0, 1, 1});  // chest/hand depend on head, etc.
  EXPECT_EQ(clf.tan_structure()[1], 0);
  const auto& enc = clf.encoder();
  for (int i = 0; i < 20; ++i) {
    clf.observe(PoseId::kStandHandsForward, simple_candidate(enc, 0),
                PoseId::kStandHandsForward, Stage::kBeforeJumping, false);
    clf.observe(PoseId::kStandHandsBackward, simple_candidate(enc, 4),
                PoseId::kStandHandsBackward, Stage::kBeforeJumping, false);
  }
  auto state = clf.initial_state();
  const FrameResult r = clf.classify({simple_candidate(enc, 0)}, false, state);
  EXPECT_EQ(r.pose, PoseId::kStandHandsForward);
}

TEST(TanClassifier, RejectsStructureAfterTraining) {
  PoseDbnClassifier clf;
  clf.observe(PoseId::kStandHandsForward, simple_candidate(clf.encoder(), 0),
              PoseId::kStandHandsForward, Stage::kBeforeJumping, false);
  EXPECT_THROW(clf.set_tan_structure({-1, 0, 0, 0, 0}), std::logic_error);
}

TEST(TanClassifier, RejectsInvalidStructure) {
  PoseDbnClassifier clf;
  EXPECT_THROW(clf.set_tan_structure({-1, 1, 0, 0}), std::invalid_argument);  // wrong size
  EXPECT_THROW(clf.set_tan_structure({0, -1, -1, -1, -1}), std::invalid_argument);  // self
  EXPECT_THROW(clf.set_tan_structure({-1, 9, -1, -1, -1}), std::invalid_argument);  // range
}

TEST(TanClassifier, SerializationRoundTripsStructure) {
  PoseDbnClassifier clf;
  clf.set_tan_structure({-1, 0, 1, 2, 3});
  const auto& enc = clf.encoder();
  for (int i = 0; i < 10; ++i) {
    clf.observe(PoseId::kStandHandsForward, simple_candidate(enc, 0),
                PoseId::kStandHandsForward, Stage::kBeforeJumping, false);
  }
  std::stringstream buffer;
  clf.save(buffer);
  const PoseDbnClassifier restored = PoseDbnClassifier::load(buffer);
  EXPECT_EQ(restored.tan_structure(), clf.tan_structure());
  const FeatureCandidate probe = simple_candidate(enc, 0);
  EXPECT_DOUBLE_EQ(restored.log_likelihood(PoseId::kStandHandsForward, probe),
                   clf.log_likelihood(PoseId::kStandHandsForward, probe));
}

TEST(TanClassifier, Fig7ExportStillWellFormedWithTan) {
  PoseDbnClassifier clf;
  clf.set_tan_structure({-1, 0, 0, 1, 1});
  const auto& enc = clf.encoder();
  for (int i = 0; i < 10; ++i) {
    clf.observe(PoseId::kStandHandsForward, simple_candidate(enc, 0),
                PoseId::kStandHandsForward, Stage::kBeforeJumping, false);
  }
  // FixedCpd validates that every row sums to 1 — constructing the network
  // is itself the assertion that TAN marginalization is coherent.
  const bayes::Network net = clf.build_pose_network(PoseId::kStandHandsForward);
  EXPECT_EQ(net.node_count(), 14);
  const bayes::Network dbn = clf.build_dbn_slice();
  EXPECT_EQ(dbn.node_count(), 16);
}

TEST(TanClassifier, EndToEndTrainingWorks) {
  synth::DatasetSpec spec;
  spec.seed = 2008;
  spec.train_clip_frames = {44, 43};
  spec.test_clip_frames = {45};
  const synth::Dataset ds = synth::generate_dataset(spec);
  core::FramePipeline pipeline;
  PoseDbnClassifier clf;
  core::TrainerOptions options;
  options.learn_tan_structure = true;
  const auto stats = core::train_on_dataset(clf, pipeline, ds, options);
  EXPECT_EQ(stats.frames, ds.train_frames());
  // A structure was learned (exactly one root).
  EXPECT_EQ(std::count(clf.tan_structure().begin(), clf.tan_structure().end(), -1), 1);
  const auto eval = core::evaluate_dataset(clf, pipeline, ds.test);
  EXPECT_GT(eval.overall_accuracy(), 0.3);
}

}  // namespace
}  // namespace slj::pose
