#!/usr/bin/env python3
"""ctest harness for scripts/lint/slj_lint.py itself.

Drives the linter against every fixture in tests/static_analysis/: each rule
pack has at least one failing fixture (planted violations MUST be reported)
and one passing positive control (idiomatic code MUST stay clean), so a lint
regression in either direction — missed violations or new false positives —
fails the suite. Also covers the engine-selection contract (per-file engine
reporting, loud fallback, --strict-engine exit 2) and the suppression
ratchet.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
LINT = REPO / "scripts" / "lint" / "slj_lint.py"
FIXTURES = REPO / "tests" / "static_analysis"
LAYERS = REPO / "scripts" / "lint" / "layers.toml"

HAVE_CLANG = shutil.which("clang++") is not None


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, timeout=300,
    )


# fixture stem -> (expected exit, rule expected in the findings or None,
#                  minimum number of finding lines)
DIRECT_FIXTURES = {
    "atomics_bad": (1, "atomics-discipline", 3),
    "atomics_ok": (0, None, 0),
    "determinism_bad": (1, "determinism", 5),
    "determinism_ok": (0, None, 0),
    "hot_path_bad": (1, "hot-path-alloc", 3),
    "hot_path_ok": (0, None, 0),
    "hot_path_simd_bad": (1, "simd-dispatch", 1),
    "hot_path_simd_ok": (0, None, 0),
    "naked_mutex_bad": (1, "naked-mutex", 1),
    # Thread-safety fixtures for the negative-compile suite: no lint rule
    # fires on them, and the lint must not crash on annotation macros.
    "guarded_bad": (0, None, 0),
    "guarded_ok": (0, None, 0),
    # Unparseable TU: the lexical floor still runs and finds nothing.
    "engine_fallback": (0, None, 0),
}

# Staged as src/imaging/<name>.cpp against the real layers.toml.
LAYERING_FIXTURES = {
    "layering_bad": (1, "layering", 3),
    "layering_ok": (0, None, 0),
}

# The unchecked-read rule keys on the deserializer rel-paths, so this
# fixture is staged at one of them (mirroring test_static_analysis.cmake).
STAGED_FIXTURES = {
    "unchecked_read_bad": ("src/synth/clip_io.cpp", 1, "unchecked-read", 1),
}


class FixtureExpectations(unittest.TestCase):
    def check(self, proc: subprocess.CompletedProcess, stem: str,
              exit_code: int, rule: str | None, min_findings: int) -> None:
        self.assertEqual(
            proc.returncode, exit_code,
            f"{stem}: expected exit {exit_code}, got {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        findings = [l for l in proc.stdout.splitlines() if "] " in l]
        self.assertGreaterEqual(
            len(findings), min_findings,
            f"{stem}: expected >= {min_findings} findings, got:\n{proc.stdout}")
        if rule is not None:
            self.assertTrue(
                any(f"[{rule}]" in l for l in findings),
                f"{stem}: no [{rule}] finding in:\n{proc.stdout}")

    def test_every_fixture_is_covered(self) -> None:
        stems = {p.stem for p in FIXTURES.glob("*.cpp")}
        covered = set(DIRECT_FIXTURES) | set(LAYERING_FIXTURES) | set(STAGED_FIXTURES)
        self.assertEqual(
            stems, covered,
            "new fixture without a lint expectation (or a stale entry): "
            f"{sorted(stems ^ covered)}")

    def test_direct_fixtures(self) -> None:
        for stem, (exit_code, rule, n) in DIRECT_FIXTURES.items():
            with self.subTest(fixture=stem):
                proc = run_lint("--root", str(REPO), "--engine", "lexical",
                                "-q", str(FIXTURES / f"{stem}.cpp"))
                self.check(proc, stem, exit_code, rule, n)

    def test_staged_fixtures(self) -> None:
        for stem, (rel, exit_code, rule, n) in STAGED_FIXTURES.items():
            with self.subTest(fixture=stem):
                with tempfile.TemporaryDirectory() as tmp:
                    staged = Path(tmp) / rel
                    staged.parent.mkdir(parents=True)
                    shutil.copy(FIXTURES / f"{stem}.cpp", staged)
                    proc = run_lint("--root", tmp, "--engine", "lexical",
                                    "-q", str(staged))
                    self.check(proc, stem, exit_code, rule, n)

    def test_layering_fixtures_staged(self) -> None:
        for stem, (exit_code, rule, n) in LAYERING_FIXTURES.items():
            with self.subTest(fixture=stem):
                with tempfile.TemporaryDirectory() as tmp:
                    staged = Path(tmp) / "src" / "imaging" / f"{stem}.cpp"
                    staged.parent.mkdir(parents=True)
                    shutil.copy(FIXTURES / f"{stem}.cpp", staged)
                    proc = run_lint("--root", tmp, "--layers", str(LAYERS),
                                    "--engine", "lexical", "-q", str(staged))
                    self.check(proc, stem, exit_code, rule, n)


class EngineContract(unittest.TestCase):
    def test_summary_reports_per_file_engine(self) -> None:
        proc = run_lint("--root", str(REPO), "--engine", "lexical",
                        str(FIXTURES / "hot_path_ok.cpp"))
        self.assertIn("engine: lexical", proc.stderr)

    def test_fallback_is_loud_but_not_fatal_by_default(self) -> None:
        proc = run_lint("--root", str(REPO), "--engine", "ast",
                        str(FIXTURES / "engine_fallback.cpp"))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("fallback", proc.stdout + proc.stderr)

    def test_strict_engine_exits_2_on_fallback(self) -> None:
        # Without clang++ the AST engine cannot run at all; with clang++ the
        # fixture's broken syntax fails the AST dump. Either way the file
        # falls back, which --strict-engine must turn into exit 2.
        proc = run_lint("--root", str(REPO), "--engine", "ast",
                        "--strict-engine", str(FIXTURES / "engine_fallback.cpp"))
        self.assertEqual(proc.returncode, 2,
                         f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        self.assertIn("--strict-engine", proc.stderr)

    def test_engine_parity_on_hot_path_fixtures(self) -> None:
        """AST and lexical engines must agree on the hot-path-alloc fixtures.

        The lexical floor always runs, so the AST overlay may only ever add
        findings lexical missed — on these fixtures (no macro-hidden allocs)
        the finding sets must be identical. Without clang++ the AST run
        degrades to the floor, which makes parity hold trivially; with
        clang++ this is the real structural/lexical agreement check.
        """
        for stem in ("hot_path_bad", "hot_path_ok"):
            with self.subTest(fixture=stem):
                runs = {}
                for engine in ("lexical", "ast"):
                    proc = run_lint("--root", str(REPO), "--engine", engine,
                                    "-q", str(FIXTURES / f"{stem}.cpp"))
                    runs[engine] = sorted(
                        l for l in proc.stdout.splitlines() if "] " in l)
                self.assertEqual(runs["lexical"], runs["ast"],
                                 f"{stem}: engine findings diverge")


class SuppressionRatchet(unittest.TestCase):
    def stage(self, tmp: str, baseline_total: int) -> tuple[Path, Path]:
        root = Path(tmp)
        target = root / "src" / "core" / "suppressed.cpp"
        target.parent.mkdir(parents=True)
        target.write_text(
            "#include <mutex>\n"
            "std::mutex legacy_mu;  // slj-lint: allow(naked-mutex)\n")
        baseline = root / "suppressions_baseline.txt"
        baseline.write_text(f"total {baseline_total}\n"
                            f"naked-mutex {baseline_total}\n")
        return root, baseline

    def test_growth_fails(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root, baseline = self.stage(tmp, baseline_total=0)
            proc = run_lint("--root", str(root), "--engine", "lexical",
                            "--suppression-baseline", str(baseline))
            self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
            self.assertIn("suppression-ratchet", proc.stdout)
            self.assertIn("grew", proc.stdout)

    def test_at_baseline_passes(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            root, baseline = self.stage(tmp, baseline_total=1)
            proc = run_lint("--root", str(root), "--engine", "lexical",
                            "--suppression-baseline", str(baseline))
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_repo_baseline_holds(self) -> None:
        """The checked-in baseline must cover the tree as committed."""
        proc = run_lint("--root", str(REPO), "--engine", "lexical",
                        "--suppression-baseline",
                        str(REPO / "scripts" / "lint" / "suppressions_baseline.txt"))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
