#include "skelgraph/skeleton_graph.hpp"

#include <gtest/gtest.h>

#include "imaging/draw.hpp"

namespace slj::skel {
namespace {

/// A horizontal line y=5, x in [2,12].
BinaryImage simple_line() {
  BinaryImage img(16, 10, 0);
  for (int x = 2; x <= 12; ++x) img.at(x, 5) = 1;
  return img;
}

/// A 'T': horizontal line plus a vertical stem from its middle.
BinaryImage t_shape() {
  BinaryImage img(16, 16, 0);
  for (int x = 2; x <= 12; ++x) img.at(x, 4) = 1;
  for (int y = 5; y <= 12; ++y) img.at(7, y) = 1;
  return img;
}

/// A diamond ring (pure cycle, all pixels degree 2).
BinaryImage diamond_ring() {
  BinaryImage img(16, 16, 0);
  GrayImage tmp(16, 16, 0);
  draw_line(tmp, {8, 2}, {13, 7}, 1);
  draw_line(tmp, {13, 7}, {8, 12}, 1);
  draw_line(tmp, {8, 12}, {3, 7}, 1);
  draw_line(tmp, {3, 7}, {8, 2}, 1);
  for (std::size_t i = 0; i < tmp.size(); ++i) img.data()[i] = tmp.data()[i];
  return img;
}

TEST(SkeletonGraph, EmptyImageGivesEmptyGraph) {
  BuildStats stats;
  const SkeletonGraph g = build_skeleton_graph(BinaryImage(8, 8, 0), &stats);
  EXPECT_EQ(g.alive_node_count(), 0u);
  EXPECT_EQ(g.alive_edge_count(), 0u);
  EXPECT_EQ(stats.skeleton_pixels, 0u);
}

TEST(SkeletonGraph, LineHasTwoEndsOneEdge) {
  BuildStats stats;
  const SkeletonGraph g = build_skeleton_graph(simple_line(), &stats);
  EXPECT_EQ(g.alive_node_count(), 2u);
  EXPECT_EQ(g.alive_edge_count(), 1u);
  EXPECT_EQ(stats.junction_pixels, 0u);
  const Edge& e = g.edges().front();
  EXPECT_EQ(e.path.size(), 11u);
  EXPECT_DOUBLE_EQ(e.length, 10.0);
  for (const Node& n : g.nodes()) EXPECT_EQ(n.type, NodeType::kEnd);
}

TEST(SkeletonGraph, IsolatedPixelBecomesIsolatedNode) {
  BinaryImage img(8, 8, 0);
  img.at(4, 4) = 1;
  const SkeletonGraph g = build_skeleton_graph(img);
  ASSERT_EQ(g.alive_node_count(), 1u);
  EXPECT_EQ(g.nodes().front().type, NodeType::kIsolated);
  EXPECT_EQ(g.alive_edge_count(), 0u);
}

TEST(SkeletonGraph, TShapeHasJunctionAndThreeBranches) {
  BuildStats stats;
  const SkeletonGraph g = build_skeleton_graph(t_shape(), &stats);
  std::size_t ends = 0, junctions = 0;
  for (const Node& n : g.nodes()) {
    if (!n.alive) continue;
    ends += n.type == NodeType::kEnd ? 1 : 0;
    junctions += n.type == NodeType::kJunction ? 1 : 0;
  }
  EXPECT_EQ(ends, 3u);
  EXPECT_EQ(junctions, 1u);
  EXPECT_EQ(g.alive_edge_count(), 3u);
  EXPECT_EQ(g.cycle_count(), 0u);
}

TEST(SkeletonGraph, JunctionClusterIsCollapsed) {
  // A plus sign whose centre forms a 1-pixel junction; adjacent junction
  // pixels (if any) must merge into a single node.
  BinaryImage img(11, 11, 0);
  for (int i = 1; i <= 9; ++i) {
    img.at(i, 5) = 1;
    img.at(5, i) = 1;
  }
  BuildStats stats;
  const SkeletonGraph g = build_skeleton_graph(img, &stats);
  EXPECT_EQ(stats.junction_clusters, 1u);
  EXPECT_EQ(g.alive_edge_count(), 4u);
}

TEST(SkeletonGraph, PureCycleTracedAsSelfLoop) {
  BuildStats stats;
  const SkeletonGraph g = build_skeleton_graph(diamond_ring(), &stats);
  EXPECT_EQ(stats.pixel_graph_cycles, 1u);
  // One loop-seat node with a self-loop edge.
  std::size_t self_loops = 0;
  for (const Edge& e : g.edges()) {
    if (e.alive && e.a == e.b) ++self_loops;
  }
  EXPECT_EQ(self_loops, 1u);
  EXPECT_EQ(g.cycle_count(), 1u);
}

TEST(SkeletonGraph, RasterizeReproducesPixels) {
  const BinaryImage img = t_shape();
  const SkeletonGraph g = build_skeleton_graph(img);
  const BinaryImage back = g.rasterize(16, 16);
  EXPECT_EQ(back, img);
}

TEST(SkeletonGraph, DegreeCountsSelfLoopTwice) {
  const SkeletonGraph g = build_skeleton_graph(diamond_ring());
  for (const Node& n : g.nodes()) {
    if (n.alive && n.type == NodeType::kLoopSeat) {
      EXPECT_EQ(g.degree(n.id), 2);
    }
  }
}

TEST(SkeletonGraph, MergeDegree2NodeSplicesEdges) {
  // Build a path a--b--c manually and splice out b.
  SkeletonGraph g;
  Node a, b, c;
  a.pos = {0, 0};
  b.pos = {5, 0};
  c.pos = {10, 0};
  a.type = c.type = NodeType::kEnd;
  b.type = NodeType::kJunction;
  const int ia = g.add_node(a);
  const int ib = g.add_node(b);
  const int ic = g.add_node(c);
  Edge e1, e2;
  e1.a = ia;
  e1.b = ib;
  for (int x = 0; x <= 5; ++x) e1.path.push_back({x, 0});
  e2.a = ib;
  e2.b = ic;
  for (int x = 5; x <= 10; ++x) e2.path.push_back({x, 0});
  g.add_edge(e1);
  g.add_edge(e2);

  ASSERT_TRUE(g.merge_degree2_node(ib));
  EXPECT_FALSE(g.node(ib).alive);
  EXPECT_EQ(g.alive_edge_count(), 1u);
  // The merged edge spans a..c with 11 unique pixels.
  for (const Edge& e : g.edges()) {
    if (!e.alive) continue;
    EXPECT_EQ(e.path.size(), 11u);
    EXPECT_EQ(e.path.front(), (PointI{0, 0}));
    EXPECT_EQ(e.path.back(), (PointI{10, 0}));
  }
}

TEST(SkeletonGraph, MergeRefusesEndNodesAndJunctions) {
  const SkeletonGraph g0 = build_skeleton_graph(t_shape());
  SkeletonGraph g = g0;
  for (const Node& n : g0.nodes()) {
    if (n.type == NodeType::kEnd) {
      EXPECT_FALSE(g.merge_degree2_node(n.id));
    }
    if (n.type == NodeType::kJunction) {
      EXPECT_FALSE(g.merge_degree2_node(n.id));  // degree 3
    }
  }
}

TEST(SkeletonGraph, KeyPointsListsEndsFirst) {
  const SkeletonGraph g = build_skeleton_graph(t_shape());
  const std::vector<KeyPoint> pts = extract_key_points(g);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].type, NodeType::kEnd);
  EXPECT_EQ(pts[1].type, NodeType::kEnd);
  EXPECT_EQ(pts[2].type, NodeType::kEnd);
  EXPECT_EQ(pts[3].type, NodeType::kJunction);
}

TEST(SkeletonGraph, ToDotContainsNodesAndEdges) {
  const SkeletonGraph g = build_skeleton_graph(simple_line());
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("graph skeleton"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace slj::skel
