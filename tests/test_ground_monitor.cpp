#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace slj::core {
namespace {

TEST(GroundMonitor, UncalibratedEmptyFramesStayGrounded) {
  GroundMonitor monitor(3);
  // Empty frames before any silhouette: no ground line yet (bottom_row = -1
  // from the pipeline), so the jumper cannot be airborne.
  EXPECT_FALSE(monitor.airborne(-1));
  EXPECT_FALSE(monitor.airborne(-1));
  EXPECT_EQ(monitor.ground_row(), -1);
  // The first visible frame calibrates.
  EXPECT_FALSE(monitor.airborne(120));
  EXPECT_EQ(monitor.ground_row(), 120);
}

TEST(GroundMonitor, ThresholdBoundaryIsExclusive) {
  GroundMonitor monitor(3);
  monitor.airborne(100);  // calibrate: ground_row = 100
  // bottom_row == ground_row - threshold is *not* airborne (strict <).
  EXPECT_FALSE(monitor.airborne(97));
  EXPECT_TRUE(monitor.airborne(96));
  // One pixel back down across the boundary lands again.
  EXPECT_FALSE(monitor.airborne(97));
}

TEST(GroundMonitor, ZeroThresholdLiftsOnAnyRise) {
  GroundMonitor monitor(0);
  monitor.airborne(50);
  EXPECT_FALSE(monitor.airborne(50));
  EXPECT_TRUE(monitor.airborne(49));
}

TEST(GroundMonitor, ResetForgetsCalibrationAndFlight) {
  GroundMonitor monitor(3);
  monitor.airborne(100);
  EXPECT_TRUE(monitor.airborne(80));
  monitor.reset();
  EXPECT_EQ(monitor.ground_row(), -1);
  // After reset an empty frame is grounded again (no stale airborne carry).
  EXPECT_FALSE(monitor.airborne(-1));
  // And the next visible frame recalibrates — even at a new ground level.
  EXPECT_FALSE(monitor.airborne(60));
  EXPECT_EQ(monitor.ground_row(), 60);
  EXPECT_TRUE(monitor.airborne(50));
}

TEST(GroundMonitor, EmptyFrameCarriesLastFlagOnlyWhileCalibrated) {
  GroundMonitor monitor(3);
  monitor.airborne(100);
  EXPECT_TRUE(monitor.airborne(90));
  // Mid-flight dropout (segmentation lost the jumper): stay airborne.
  EXPECT_TRUE(monitor.airborne(-1));
  EXPECT_TRUE(monitor.airborne(-1));
  // Reappears on the ground: flag clears, and a later dropout stays grounded.
  EXPECT_FALSE(monitor.airborne(100));
  EXPECT_FALSE(monitor.airborne(-1));
}

TEST(GroundMonitor, DescendingBelowGroundLineNeverAirborne) {
  GroundMonitor monitor(3);
  monitor.airborne(100);
  // Rows *below* the calibrated line (larger y) are grounded, not flight.
  EXPECT_FALSE(monitor.airborne(110));
  EXPECT_FALSE(monitor.airborne(200));
}

}  // namespace
}  // namespace slj::core
