#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace slj::core {
namespace {

TEST(GroundMonitor, UncalibratedEmptyFramesStayGrounded) {
  GroundMonitor monitor(3);
  // Empty frames before any silhouette: no ground line yet (bottom_row = -1
  // from the pipeline), so the jumper cannot be airborne.
  EXPECT_FALSE(monitor.airborne(-1));
  EXPECT_FALSE(monitor.airborne(-1));
  EXPECT_EQ(monitor.ground_row(), -1);
  // The first visible frame calibrates.
  EXPECT_FALSE(monitor.airborne(120));
  EXPECT_EQ(monitor.ground_row(), 120);
}

TEST(GroundMonitor, ThresholdBoundaryIsExclusive) {
  GroundMonitor monitor(3);
  monitor.airborne(100);  // calibrate: ground_row = 100
  // bottom_row == ground_row - threshold is *not* airborne (strict <).
  EXPECT_FALSE(monitor.airborne(97));
  EXPECT_TRUE(monitor.airborne(96));
  // One pixel back down across the boundary lands again.
  EXPECT_FALSE(monitor.airborne(97));
}

TEST(GroundMonitor, ZeroThresholdLiftsOnAnyRise) {
  GroundMonitor monitor(0);
  monitor.airborne(50);
  EXPECT_FALSE(monitor.airborne(50));
  EXPECT_TRUE(monitor.airborne(49));
}

TEST(GroundMonitor, ResetForgetsCalibrationAndFlight) {
  GroundMonitor monitor(3);
  monitor.airborne(100);
  EXPECT_TRUE(monitor.airborne(80));
  monitor.reset();
  EXPECT_EQ(monitor.ground_row(), -1);
  // After reset an empty frame is grounded again (no stale airborne carry).
  EXPECT_FALSE(monitor.airborne(-1));
  // And the next visible frame recalibrates — even at a new ground level.
  EXPECT_FALSE(monitor.airborne(60));
  EXPECT_EQ(monitor.ground_row(), 60);
  EXPECT_TRUE(monitor.airborne(50));
}

TEST(GroundMonitor, EmptyFrameCarriesLastFlagOnlyWhileCalibrated) {
  GroundMonitor monitor(3);
  monitor.airborne(100);
  EXPECT_TRUE(monitor.airborne(90));
  // Mid-flight dropout (segmentation lost the jumper): stay airborne.
  EXPECT_TRUE(monitor.airborne(-1));
  EXPECT_TRUE(monitor.airborne(-1));
  // Reappears on the ground: flag clears, and a later dropout stays grounded.
  EXPECT_FALSE(monitor.airborne(100));
  EXPECT_FALSE(monitor.airborne(-1));
}

TEST(GroundMonitor, DescendingBelowGroundLineNeverAirborne) {
  GroundMonitor monitor(3);
  monitor.airborne(100);
  // Rows *below* the calibrated line (larger y) are grounded, not flight.
  EXPECT_FALSE(monitor.airborne(110));
  EXPECT_FALSE(monitor.airborne(200));
}

TEST(GroundMonitor, NoisyFirstFrameNoLongerFlagsWholeClipAirborne) {
  // The seed bug: calibration used only the *first* visible bottom row, so
  // one under-segmented first frame (legs clipped → bottom row too high)
  // made every later standing frame read as airborne. Calibration now spans
  // the first K grounded frames taking the max (lowest point) of their
  // bottom rows.
  GroundMonitor monitor(3, /*calibration_frames=*/5);
  EXPECT_FALSE(monitor.airborne(80));  // noisy first frame: legs clipped
  // The jumper is actually standing with feet at row 100.
  EXPECT_FALSE(monitor.airborne(100));
  EXPECT_EQ(monitor.ground_row(), 100);  // calibration recovered
  EXPECT_FALSE(monitor.airborne(100));
  EXPECT_FALSE(monitor.airborne(99));
  // A genuine lift is still detected against the corrected line.
  EXPECT_TRUE(monitor.airborne(90));
}

TEST(GroundMonitor, CalibrationWindowCloses) {
  GroundMonitor monitor(3, /*calibration_frames=*/2);
  EXPECT_FALSE(monitor.airborne(100));
  EXPECT_FALSE(monitor.airborne(100));
  // Window consumed: a later deeper row (crouch past the line, or a shadow)
  // no longer drags the calibration down.
  EXPECT_FALSE(monitor.airborne(140));
  EXPECT_EQ(monitor.ground_row(), 100);
}

TEST(GroundMonitor, AirborneFramesDoNotConsumeCalibration) {
  // A jump that starts inside the calibration window must not freeze the
  // window: flight frames are skipped, later grounded frames still refine.
  GroundMonitor monitor(3, /*calibration_frames=*/3);
  EXPECT_FALSE(monitor.airborne(98));   // slightly clipped first frame
  EXPECT_TRUE(monitor.airborne(80));    // take-off
  EXPECT_TRUE(monitor.airborne(70));
  EXPECT_EQ(monitor.ground_row(), 98);  // flight did not move the line
  EXPECT_FALSE(monitor.airborne(100));  // landing, deeper than frame 0
  EXPECT_EQ(monitor.ground_row(), 100);
  EXPECT_FALSE(monitor.airborne(101));  // third grounded frame closes it
  EXPECT_FALSE(monitor.airborne(140));
  EXPECT_EQ(monitor.ground_row(), 101);
}

TEST(GroundMonitor, ResetReopensCalibrationWindow) {
  GroundMonitor monitor(3, /*calibration_frames=*/2);
  monitor.airborne(100);
  monitor.airborne(100);
  monitor.reset();
  EXPECT_FALSE(monitor.airborne(50));
  EXPECT_FALSE(monitor.airborne(60));
  EXPECT_EQ(monitor.ground_row(), 60);
}

TEST(GroundMonitor, RejectsNonPositiveCalibrationWindow) {
  EXPECT_THROW(GroundMonitor(3, 0), std::invalid_argument);
  EXPECT_THROW(GroundMonitor(3, -2), std::invalid_argument);
}

}  // namespace
}  // namespace slj::core
