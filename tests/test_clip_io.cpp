#include "synth/clip_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace slj::synth {
namespace {

class ClipIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "slj_clip_io_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static ClipSpec small_spec(std::uint32_t seed = 5, int frames = 8) {
    ClipSpec spec;
    spec.seed = seed;
    spec.frame_count = frames;
    spec.camera.width = 96;
    spec.camera.height = 64;
    spec.camera.pixels_per_meter = 24.0;
    spec.camera.ground_y_px = 60.0;
    spec.camera.origin_x_px = 12.0;
    return spec;
  }

  std::filesystem::path dir_;
};

TEST_F(ClipIoTest, ClipRoundTripPreservesFramesAndTruth) {
  const Clip original = generate_clip(small_spec());
  save_clip(original, path("clip"));
  const Clip loaded = load_clip(path("clip"));

  ASSERT_EQ(loaded.frames.size(), original.frames.size());
  EXPECT_EQ(loaded.background, original.background);
  for (std::size_t i = 0; i < original.frames.size(); ++i) {
    EXPECT_EQ(loaded.frames[i], original.frames[i]) << "frame " << i;
  }
  ASSERT_EQ(loaded.truth.size(), original.truth.size());
  for (std::size_t i = 0; i < original.truth.size(); ++i) {
    EXPECT_EQ(loaded.truth[i].pose, original.truth[i].pose);
    EXPECT_EQ(loaded.truth[i].stage, original.truth[i].stage);
    EXPECT_EQ(loaded.truth[i].airborne, original.truth[i].airborne);
    EXPECT_NEAR(loaded.truth[i].parts.head.x, original.truth[i].parts.head.x, 1e-6);
    EXPECT_NEAR(loaded.truth[i].parts.foot.y, original.truth[i].parts.foot.y, 1e-6);
  }
  EXPECT_EQ(loaded.seed, original.seed);
}

TEST_F(ClipIoTest, FaultFlagsRoundTrip) {
  ClipSpec spec = small_spec();
  spec.faults.no_arm_swing = true;
  spec.faults.stiff_landing = true;
  save_clip(generate_clip(spec), path("faulty"));
  const Clip loaded = load_clip(path("faulty"));
  EXPECT_TRUE(loaded.faults.no_arm_swing);
  EXPECT_FALSE(loaded.faults.no_crouch);
  EXPECT_TRUE(loaded.faults.stiff_landing);
}

TEST_F(ClipIoTest, CleanSilhouettesAreNotPersisted) {
  save_clip(generate_clip(small_spec()), path("clip"));
  EXPECT_TRUE(load_clip(path("clip")).clean_silhouettes.empty());
}

TEST_F(ClipIoTest, ClipWithoutTruthLoads) {
  // Real-footage path: frames + background, truth flag 0.
  Clip clip = generate_clip(small_spec());
  clip.truth.clear();
  save_clip(clip, path("raw"));
  const Clip loaded = load_clip(path("raw"));
  EXPECT_TRUE(loaded.truth.empty());
  EXPECT_EQ(loaded.frames.size(), 8u);
}

TEST_F(ClipIoTest, MissingManifestThrows) {
  EXPECT_THROW(load_clip(path("nope")), std::runtime_error);
}

TEST_F(ClipIoTest, CorruptManifestThrows) {
  std::filesystem::create_directories(path("bad"));
  std::ofstream out(path("bad") + "/manifest.txt");
  out << "slj-clip 7\n";
  out.close();
  EXPECT_THROW(load_clip(path("bad")), std::runtime_error);
}

TEST_F(ClipIoTest, TruncatedTruthThrows) {
  const Clip clip = generate_clip(small_spec());
  save_clip(clip, path("trunc"));
  // Chop the manifest in half.
  const std::string mpath = path("trunc") + "/manifest.txt";
  std::ifstream in(mpath);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(mpath, std::ios::trunc);
  out << text.substr(0, text.size() / 2);
  out.close();
  EXPECT_THROW(load_clip(path("trunc")), std::runtime_error);
}

TEST_F(ClipIoTest, AbsurdFrameCountIsRejectedBeforeAllocation) {
  // A flipped digit in the manifest must not become a multi-gigabyte
  // reserve; load_clip caps the claimed frame count up front.
  std::filesystem::create_directories(path("huge"));
  std::ofstream out(path("huge") + "/manifest.txt");
  out << "slj-clip 1\nframes 2000000000\nseed 1\nfaults 0 0 0 0\ntruth 1\n";
  out.close();
  EXPECT_THROW(load_clip(path("huge")), std::runtime_error);
}

TEST_F(ClipIoTest, NegativeFrameCountThrows) {
  std::filesystem::create_directories(path("neg"));
  std::ofstream out(path("neg") + "/manifest.txt");
  out << "slj-clip 1\nframes -3\nseed 1\nfaults 0 0 0 0\ntruth 0\n";
  out.close();
  EXPECT_THROW(load_clip(path("neg")), std::runtime_error);
}

TEST_F(ClipIoTest, ManifestBitFlipsNeverCrash) {
  // Flip each byte of a valid manifest in turn: every variant must either
  // load or throw std::runtime_error — never crash or trip sanitizers.
  save_clip(generate_clip(small_spec(3, 4)), path("flip"));
  const std::string mpath = path("flip") + "/manifest.txt";
  std::ifstream in(mpath, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  int rejected = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string mutated = text;
    mutated[i] ^= 0x11;
    std::ofstream out(mpath, std::ios::binary | std::ios::trunc);
    out << mutated;
    out.close();
    try {
      (void)load_clip(path("flip"));
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST_F(ClipIoTest, DatasetRoundTrip) {
  DatasetSpec spec;
  spec.seed = 9;
  spec.train_clip_frames = {6, 6};
  spec.test_clip_frames = {6};
  spec.camera = small_spec().camera;
  const Dataset original = generate_dataset(spec);
  save_dataset(original, path("ds"));
  const Dataset loaded = load_dataset(path("ds"));
  ASSERT_EQ(loaded.train.size(), 2u);
  ASSERT_EQ(loaded.test.size(), 1u);
  EXPECT_EQ(loaded.train[1].frames[3], original.train[1].frames[3]);
  EXPECT_EQ(loaded.test[0].truth[2].pose, original.test[0].truth[2].pose);
}

TEST_F(ClipIoTest, EmptyDatasetDirectoryThrows) {
  std::filesystem::create_directories(path("empty"));
  EXPECT_THROW(load_dataset(path("empty")), std::runtime_error);
}

}  // namespace
}  // namespace slj::synth
