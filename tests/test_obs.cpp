// Observability subsystem tests:
//   * tracer — spans/instants land in per-thread rings, a disabled tracer
//     emits nothing, a wrapped ring keeps the newest events, and the Chrome
//     trace-event export is well-formed;
//   * histogram edge cases — empty, single-bucket interpolation, and
//     saturating clamp into the last bucket;
//   * SLO hysteresis — boundary values never flap the state machine, breach
//     entry/clearing honor the consecutive-evaluation thresholds;
//   * flight recorder — a dump from a live IngestService replays
//     bit-identically at 1/2/4 workers, window and byte budgets evict whole
//     sessions without corrupting the dump;
//   * service monitor — a forced SLO breach produces a replayable incident
//     trace exactly once per breach edge.
#include "obs/service_monitor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "ingest/ingest_service.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/tracer.hpp"
#include "replay/trace_replayer.hpp"
#include "synth/dataset.hpp"

namespace slj::obs {
namespace {

using namespace std::chrono_literals;

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

synth::Clip mini_clip(std::uint32_t seed = 2008, int frame_count = 10) {
  synth::ClipSpec spec;
  spec.seed = seed;
  spec.frame_count = frame_count;
  spec.camera.width = 96;
  spec.camera.height = 64;
  spec.camera.pixels_per_meter = 24.0;
  spec.camera.origin_x_px = 12.0;
  spec.camera.ground_y_px = 60.0;
  spec.camera.sensor_noise_sigma = 0.0;
  spec.camera.speckle_fraction = 0.0;
  return synth::generate_clip(spec);
}

struct ManualClock {
  std::atomic<std::int64_t> nanos{0};
  std::function<ingest::Clock::time_point()> fn() {
    return [this] { return ingest::Clock::time_point{ingest::Clock::duration{nanos.load()}}; };
  }
  void advance(ingest::Clock::duration d) { nanos.fetch_add(d.count()); }
};

/// RAII guard: tests that enable the process-global tracer always restore
/// the disabled default, even on assertion failure.
struct TracerGuard {
  explicit TracerGuard(bool enable) {
    Tracer::instance().reset();
    Tracer::instance().set_enabled(enable);
  }
  ~TracerGuard() {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
};

/// Sum of kept events across all threads whose name matches.
std::size_t count_events(const TracerSnapshot& snap, const std::string& name) {
  std::size_t n = 0;
  for (const TracerThreadSnapshot& thread : snap.threads) {
    for (const TraceEvent& ev : thread.events) {
      if (name == ev.name) ++n;
    }
  }
  return n;
}

// ---- tracer ----------------------------------------------------------------

TEST(Tracer, SpansAndInstantsLandInSnapshot) {
  TracerGuard guard(true);
  {
    TraceSpan span("obs.test.span", 7, 42);
    Tracer::instance().instant("obs.test.instant", 7, 1);
  }
  const TracerSnapshot snap = Tracer::instance().snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(count_events(snap, "obs.test.span"), 1u);
  EXPECT_EQ(count_events(snap, "obs.test.instant"), 1u);
  for (const TracerThreadSnapshot& thread : snap.threads) {
    for (const TraceEvent& ev : thread.events) {
      if (std::string("obs.test.span") == ev.name) {
        EXPECT_EQ(ev.kind, TraceEventKind::kSpan);
        EXPECT_EQ(ev.session, 7);
        EXPECT_EQ(ev.arg, 42);
        EXPECT_GE(ev.dur_ns, 0);
      }
    }
  }
}

TEST(Tracer, DisabledTracerEmitsNothing) {
  TracerGuard guard(false);
  {
    TraceSpan span("obs.test.disabled");
    Tracer::instance().instant("obs.test.disabled");
  }
  EXPECT_EQ(count_events(Tracer::instance().snapshot(), "obs.test.disabled"), 0u);
}

TEST(Tracer, WrappedRingKeepsNewestEvents) {
  TracerGuard guard(true);
  const std::size_t total = ThreadRing::kCapacity + 128;
  for (std::size_t i = 0; i < total; ++i) {
    Tracer::instance().instant("obs.test.wrap", -1, static_cast<std::int64_t>(i));
  }
  const TracerSnapshot snap = Tracer::instance().snapshot();
  // Find this thread's ring: the one holding the wrap events.
  std::int64_t newest = -1;
  std::size_t kept = 0;
  for (const TracerThreadSnapshot& thread : snap.threads) {
    for (const TraceEvent& ev : thread.events) {
      if (std::string("obs.test.wrap") == ev.name) {
        ++kept;
        newest = std::max(newest, ev.arg);
      }
    }
  }
  EXPECT_LE(kept, ThreadRing::kCapacity);
  EXPECT_GE(kept, ThreadRing::kCapacity / 2);  // most of the ring survives
  EXPECT_EQ(newest, static_cast<std::int64_t>(total - 1));  // newest kept
  EXPECT_GE(snap.total_dropped, total - ThreadRing::kCapacity);
}

TEST(Tracer, ResetHidesPriorEvents) {
  TracerGuard guard(true);
  Tracer::instance().instant("obs.test.before");
  Tracer::instance().reset();
  Tracer::instance().instant("obs.test.after");
  const TracerSnapshot snap = Tracer::instance().snapshot();
  EXPECT_EQ(count_events(snap, "obs.test.before"), 0u);
  EXPECT_EQ(count_events(snap, "obs.test.after"), 1u);
}

TEST(Tracer, ChromeExportIsWellFormed) {
  TracerGuard guard(true);
  {
    TraceSpan span("obs.test.export", 3, 9);
    Tracer::instance().instant("obs.test.mark");
  }
  const std::string json = chrome_trace_json(Tracer::instance().snapshot());
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obs.test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tracer\": {"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // An empty snapshot still renders a valid skeleton.
  Tracer::instance().reset();
  const std::string empty = chrome_trace_json(Tracer::instance().snapshot());
  EXPECT_NE(empty.find("\"traceEvents\": []"), std::string::npos);
}

// ---- histogram edge cases --------------------------------------------------

TEST(LatencyHistogram, EmptyHistogramReportsZero) {
  const ingest::LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.quantile_ms(0.0), 0.0);
  EXPECT_EQ(histogram.quantile_ms(0.5), 0.0);
  EXPECT_EQ(histogram.quantile_ms(0.99), 0.0);
  EXPECT_EQ(histogram.max_ms(), 0.0);
}

TEST(LatencyHistogram, SingleBucketInterpolatesWithinEdges) {
  ingest::LatencyHistogram histogram;
  for (int i = 0; i < 10; ++i) histogram.record(3us);  // bucket [2, 4) µs
  EXPECT_EQ(histogram.count(), 10u);
  const double p50 = histogram.quantile_ms(0.50);
  const double p99 = histogram.quantile_ms(0.99);
  EXPECT_GE(p50, 0.002);
  EXPECT_LE(p99, 0.004);
  EXPECT_LE(p50, p99);
  // Quantile extremes stay inside the one occupied bucket too.
  EXPECT_GE(histogram.quantile_ms(0.0), 0.002);
  EXPECT_LE(histogram.quantile_ms(1.0), 0.004);
}

TEST(LatencyHistogram, SaturatingLatenciesClampIntoLastBucket) {
  ingest::LatencyHistogram histogram;
  histogram.record(std::chrono::hours(24));  // ~8.6e13 µs >> 2^39 µs
  histogram.record(std::chrono::hours(48));
  EXPECT_EQ(histogram.count(), 2u);
  // Both land in the final bucket; the quantile caps at its upper edge
  // rather than overflowing.
  const double cap_ms = static_cast<double>(std::uint64_t{1}
                                            << (ingest::LatencyHistogram::kBuckets - 1)) /
                        1000.0;
  EXPECT_LE(histogram.quantile_ms(0.99), cap_ms);
  EXPECT_GT(histogram.quantile_ms(0.99), 0.0);
  const double expected_max_ms =
      std::chrono::duration<double, std::milli>(std::chrono::hours(48)).count();
  EXPECT_DOUBLE_EQ(histogram.max_ms(), expected_max_ms);
  // Negative latencies clamp to zero instead of wrapping.
  histogram.record(-5ms);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_GE(histogram.quantile_ms(0.0), 0.0);
}

// ---- SLO hysteresis --------------------------------------------------------

/// One-session snapshot with the given lifetime p99, always delivering.
ingest::IngestMetricsSnapshot latency_sample(double p99_ms, std::uint64_t delivered) {
  ingest::IngestMetricsSnapshot snap;
  ingest::SessionMetricsSnapshot row;
  row.session = 0;
  row.delivered = delivered;
  row.latency_p99_ms = p99_ms;
  snap.sessions.push_back(row);
  return snap;
}

TEST(SloTracker, BoundaryValuesNeverFlap) {
  SloConfig config;
  config.p99_budget_ms = 10.0;
  config.breach_after = 1;
  config.clear_after = 1;
  config.hysteresis = 0.1;
  SloTracker tracker(config);

  // Sitting exactly on the budget is not a breach (entry needs > budget)...
  for (int i = 0; i < 20; ++i) {
    ingest::IngestMetricsSnapshot snap = latency_sample(10.0, 1 + static_cast<std::uint64_t>(i));
    tracker.evaluate(snap);
    EXPECT_STREQ(snap.sessions[0].slo_state, "ok") << "evaluation " << i;
  }
  EXPECT_EQ(tracker.total_breaches(), 0u);

  // ...and once breached, hovering between budget*(1-h) and budget keeps the
  // breach latched: boundary noise cannot flap ok/breach/ok.
  {
    ingest::IngestMetricsSnapshot snap = latency_sample(10.5, 100);
    tracker.evaluate(snap);
    EXPECT_STREQ(snap.sessions[0].slo_state, "breach");
  }
  for (int i = 0; i < 20; ++i) {
    ingest::IngestMetricsSnapshot snap = latency_sample(i % 2 == 0 ? 9.5 : 10.0, 101);
    tracker.evaluate(snap);
    EXPECT_STREQ(snap.sessions[0].slo_state, "breach") << "evaluation " << i;
  }
  EXPECT_EQ(tracker.total_breaches(), 1u);  // one edge, despite 20 boundary polls

  // Clearing requires the full hysteresis margin (<= 9.0).
  ingest::IngestMetricsSnapshot snap = latency_sample(9.0, 102);
  tracker.evaluate(snap);
  EXPECT_STREQ(snap.sessions[0].slo_state, "ok");
}

TEST(SloTracker, BreachAndClearNeedConsecutiveEvaluations) {
  SloConfig config;
  config.p99_budget_ms = 10.0;
  config.breach_after = 3;
  config.clear_after = 2;
  config.hysteresis = 0.1;
  SloTracker tracker(config);

  const auto eval = [&tracker](double p99) {
    ingest::IngestMetricsSnapshot snap = latency_sample(p99, 50);
    std::vector<SloIncident> incidents;
    tracker.evaluate(snap, &incidents);
    return std::make_pair(std::string(snap.sessions[0].slo_state), incidents.size());
  };

  // Two bad evaluations, then a good one: the consecutive counter resets.
  EXPECT_EQ(eval(20.0).first, "ok");
  EXPECT_EQ(eval(20.0).first, "ok");
  EXPECT_EQ(eval(5.0).first, "ok");
  // Three consecutive bad evaluations breach — exactly one incident fires.
  EXPECT_EQ(eval(20.0).first, "ok");
  EXPECT_EQ(eval(20.0).first, "ok");
  const auto [state, incidents] = eval(20.0);
  EXPECT_EQ(state, "breach");
  EXPECT_EQ(incidents, 1u);
  // One good evaluation is not enough to clear with clear_after = 2.
  EXPECT_EQ(eval(1.0).first, "breach");
  EXPECT_EQ(eval(1.0).first, "ok");
  EXPECT_EQ(tracker.total_breaches(), 1u);
}

TEST(SloTracker, DropGaugeScoresIntervalDeltas) {
  SloConfig config;
  config.drop_rate_budget = 0.2;
  config.breach_after = 1;
  config.clear_after = 1;
  SloTracker tracker(config);

  const auto eval = [&tracker](std::uint64_t pushed, std::uint64_t dropped) {
    ingest::IngestMetricsSnapshot snap;
    ingest::SessionMetricsSnapshot row;
    row.session = 0;
    row.pushed = pushed;
    row.dropped_oldest = dropped;
    snap.sessions.push_back(row);
    tracker.evaluate(snap);
    return std::make_pair(std::string(snap.sessions[0].slo_state), snap.sessions[0].drop_rate);
  };

  // First interval: 100 offered, 10 shed -> 10%, within budget.
  auto [state1, rate1] = eval(100, 10);
  EXPECT_EQ(state1, "ok");
  EXPECT_DOUBLE_EQ(rate1, 0.1);
  // Second interval: +100 offered, +50 shed -> 50% for the interval even
  // though the lifetime ratio is 30%.
  auto [state2, rate2] = eval(200, 60);
  EXPECT_EQ(state2, "breach");
  EXPECT_DOUBLE_EQ(rate2, 0.5);
  // A silent interval (no new offers) leaves gauge and rate untouched.
  auto [state3, rate3] = eval(200, 60);
  EXPECT_EQ(state3, "breach");
  EXPECT_DOUBLE_EQ(rate3, 0.5);
}

TEST(SloTracker, NoBudgetsMeansUntracked) {
  SloTracker tracker{SloConfig{}};
  ingest::IngestMetricsSnapshot snap = latency_sample(1000.0, 50);
  tracker.evaluate(snap);
  EXPECT_STREQ(snap.sessions[0].slo_state, "untracked");
  EXPECT_EQ(snap.slo_breaches, 0u);
  EXPECT_EQ(snap.slo_breached_sessions, 0u);
}

// ---- flight recorder -------------------------------------------------------

struct Rig {
  ManualClock clock;
  pose::PoseDbnClassifier classifier;
  synth::Clip clip = mini_clip();
  std::unique_ptr<ingest::IngestService> service;

  explicit Rig(unsigned workers = 2) {
    ingest::IngestServiceConfig config;
    config.manager.workers = workers;
    config.router.clock = clock.fn();
    service = std::make_unique<ingest::IngestService>(classifier, core::PipelineParams{}, config);
  }

  ingest::IngestSessionConfig session_config(std::size_t capacity = 2) {
    ingest::IngestSessionConfig config;
    config.queue.capacity = capacity;
    config.queue.policy = ingest::BackpressurePolicy::kDropOldest;
    return config;
  }

  /// One deterministic round: pushes per session, clock advance, inline
  /// drain (scheduler stopped) — the cmd_record recipe.
  void round(const std::vector<int>& ids, int pushes, std::vector<std::size_t>& next) {
    for (std::size_t s = 0; s < ids.size(); ++s) {
      for (int k = 0; k < pushes; ++k) {
        service->push(ids[s], clip.frames[next[s] % clip.frames.size()]);
        ++next[s];
      }
    }
    clock.advance(16ms);
    service->flush();
  }
};

void expect_replays_identically(const std::string& path, const pose::PoseDbnClassifier& classifier,
                                std::uint64_t expect_frames) {
  for (const unsigned workers : {1u, 2u, 4u}) {
    replay::ReplayOptions options;
    options.workers = workers;
    const replay::ReplayResult result =
        replay::TraceReplayer(classifier, {}, options).replay_file(path);
    EXPECT_TRUE(result.identical()) << "workers " << workers << ": " << result.first_mismatch();
    EXPECT_EQ(result.frames_replayed, expect_frames) << "workers " << workers;
  }
}

TEST(FlightRecorder, LiveDumpReplaysIdenticallyAcrossWorkers) {
  Rig rig;
  FlightRecorder recorder;
  rig.service->set_tap(&recorder);

  const auto session_config = rig.session_config();
  std::vector<int> ids;
  for (int s = 0; s < 3; ++s) {
    ids.push_back(rig.service->open_session(rig.clip.background, session_config));
  }
  std::vector<std::size_t> next{0, 3, 6};  // staggered feeds
  // 3 pushes into capacity-2 queues: drop-oldest sheds one per round, so the
  // dump must reproduce replaced frames, not just clean deliveries.
  for (int r = 0; r < 6; ++r) rig.round(ids, 3, next);
  for (const int id : ids) rig.service->close_session(id);

  const std::string path = temp_path("flight_closed.sljtrace");
  const FlightRecorder::DumpStats stats = recorder.dump(path);
  EXPECT_EQ(stats.sessions, 3u);
  EXPECT_EQ(stats.closes, 3u);
  EXPECT_EQ(stats.pushes, 3u * 6u * 3u);
  EXPECT_EQ(stats.truncated_sessions, 0u);
  EXPECT_TRUE(stats.has_summary);  // quiescent plane: totals balance

  const ingest::IngestMetricsSnapshot end = rig.service->metrics();
  expect_replays_identically(path, rig.classifier, end.delivered);
}

TEST(FlightRecorder, DumpWithSessionsStillOpenIsValid) {
  Rig rig;
  FlightRecorder recorder;
  rig.service->set_tap(&recorder);

  std::vector<int> ids;
  for (int s = 0; s < 2; ++s) {
    ids.push_back(rig.service->open_session(rig.clip.background, rig.session_config(4)));
  }
  std::vector<std::size_t> next{0, 5};
  for (int r = 0; r < 4; ++r) rig.round(ids, 2, next);

  // No close records: the plane is mid-flight but flushed, so the dump is
  // structurally complete and still balances.
  const std::string path = temp_path("flight_open.sljtrace");
  const FlightRecorder::DumpStats stats = recorder.dump(path);
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_EQ(stats.closes, 0u);
  EXPECT_TRUE(stats.has_summary);
  EXPECT_GT(stats.span_ns, 0);

  const ingest::IngestMetricsSnapshot end = rig.service->metrics();
  expect_replays_identically(path, rig.classifier, end.delivered);
  for (const int id : ids) rig.service->close_session(id);
}

TEST(FlightRecorder, WindowEvictsClosedSessions) {
  Rig rig;
  FlightRecorderConfig config;
  config.window_ns = std::chrono::nanoseconds(1s).count();
  FlightRecorder recorder(config);
  rig.service->set_tap(&recorder);

  const int early = rig.service->open_session(rig.clip.background, rig.session_config(4));
  std::vector<std::size_t> next{0};
  rig.round({early}, 2, next);
  rig.service->close_session(early);
  EXPECT_EQ(recorder.sessions(), 1u);

  // A later session far outside the window pushes the closed one out.
  rig.clock.advance(5s);
  const int late = rig.service->open_session(rig.clip.background, rig.session_config(4));
  std::vector<std::size_t> late_next{0};
  rig.round({late}, 2, late_next);
  EXPECT_EQ(recorder.sessions(), 1u);
  EXPECT_EQ(recorder.evicted_sessions(), 1u);

  const std::string path = temp_path("flight_window.sljtrace");
  const FlightRecorder::DumpStats stats = recorder.dump(path);
  EXPECT_EQ(stats.sessions, 1u);  // only the live session remains
  EXPECT_EQ(stats.closes, 0u);
  expect_replays_identically(path, rig.classifier, 2);
  rig.service->close_session(late);
}

TEST(FlightRecorder, ByteBudgetTaintsOldestOpenSession) {
  Rig rig;
  FlightRecorderConfig config;
  // Two 96x64 backgrounds (~18 KiB each) fit; the first admitted frames
  // overflow, forcing the recorder to shed the longest-running open session.
  config.max_bytes = 48u << 10;
  FlightRecorder recorder(config);
  rig.service->set_tap(&recorder);

  const int a = rig.service->open_session(rig.clip.background, rig.session_config(4));
  const int b = rig.service->open_session(rig.clip.background, rig.session_config(4));
  std::vector<std::size_t> next{0, 5};
  for (int r = 0; r < 3; ++r) rig.round({a, b}, 2, next);

  EXPECT_GE(recorder.evicted_sessions(), 1u);
  EXPECT_LT(recorder.sessions(), 2u);

  // The dump only ever contains complete-from-open sessions, so whatever
  // survived the shed still replays cleanly.
  const std::string path = temp_path("flight_budget.sljtrace");
  const FlightRecorder::DumpStats stats = recorder.dump(path);
  EXPECT_EQ(stats.sessions, recorder.sessions());
  EXPECT_EQ(stats.truncated_sessions, 0u);
  replay::ReplayOptions options;
  options.workers = 2;
  const replay::ReplayResult result =
      replay::TraceReplayer(rig.classifier, {}, options).replay_file(path);
  EXPECT_TRUE(result.identical()) << result.first_mismatch();
  rig.service->close_session(a);
  rig.service->close_session(b);
}

// ---- service monitor -------------------------------------------------------

TEST(ServiceMonitor, ForcedBreachProducesReplayableIncidentOnce) {
  TracerGuard tracer_guard(false);  // the monitor flips it on; guard restores
  Rig rig;
  ServiceMonitorConfig config;
  config.slo.p99_budget_ms = 0.001;  // 16 ms manual-clock latency always breaches
  config.slo.breach_after = 1;
  config.incident_dir = ::testing::TempDir();
  config.max_incidents = 2;
  ServiceMonitor monitor(*rig.service, config);
  EXPECT_TRUE(Tracer::instance().enabled());

  const int id = rig.service->open_session(rig.clip.background, rig.session_config(4));
  std::vector<std::size_t> next{0};
  for (int r = 0; r < 3; ++r) rig.round({id}, 2, next);

  const ingest::IngestMetricsSnapshot snap = monitor.poll();
  EXPECT_STREQ(snap.sessions[0].slo_state, "breach");
  EXPECT_EQ(snap.slo_breached_sessions, 1u);
  ASSERT_EQ(monitor.incident_paths().size(), 1u);
  const std::string path = monitor.incident_paths()[0];
  EXPECT_TRUE(std::filesystem::exists(path));
  expect_replays_identically(path, rig.classifier, snap.delivered);
  // The breach edge fired a tracer instant alongside the dump.
  EXPECT_GE(count_events(Tracer::instance().snapshot(), "slo.breach"), 1u);

  // Still breached on the next poll: latched, so no second incident.
  rig.round({id}, 2, next);
  monitor.poll();
  EXPECT_EQ(monitor.incidents(), 1u);
  EXPECT_EQ(monitor.incident_paths().size(), 1u);
  rig.service->close_session(id);
}

TEST(ServiceMonitor, ExplicitTriggerHonorsIncidentCap) {
  TracerGuard tracer_guard(false);
  Rig rig;
  ServiceMonitorConfig config;
  config.incident_dir = ::testing::TempDir();
  config.max_incidents = 1;
  ServiceMonitor monitor(*rig.service, config);

  const int id = rig.service->open_session(rig.clip.background, rig.session_config(4));
  std::vector<std::size_t> next{0};
  rig.round({id}, 2, next);

  const std::string first = monitor.trigger_incident("signal");
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(std::filesystem::exists(first));
  EXPECT_EQ(monitor.trigger_incident("signal"), "");  // cap reached
  EXPECT_EQ(monitor.incidents(), 1u);
  rig.service->close_session(id);
}

// ---- snapshot stamps and per-session latency rows --------------------------

TEST(IngestMetrics, SnapshotSequenceAndWallClockAreMonotonic) {
  Rig rig;
  const ingest::IngestMetricsSnapshot first = rig.service->metrics();
  const ingest::IngestMetricsSnapshot second = rig.service->metrics();
  EXPECT_GT(first.sequence, 0u);
  EXPECT_GT(second.sequence, first.sequence);
  EXPECT_GT(first.wall_ms, 0);
  EXPECT_GE(second.wall_ms, first.wall_ms);
  // The stamps land in the JSON dashboards poll.
  EXPECT_NE(first.to_json().find("\"sequence\": "), std::string::npos);
  EXPECT_NE(first.to_json().find("\"wall_ms\": "), std::string::npos);
}

TEST(IngestMetrics, PerSessionRowsCarryLatencyQuantiles) {
  Rig rig;
  const int id = rig.service->open_session(rig.clip.background, rig.session_config(4));
  std::vector<std::size_t> next{0};
  for (int r = 0; r < 4; ++r) rig.round({id}, 2, next);

  const ingest::IngestMetricsSnapshot snap = rig.service->metrics();
  ASSERT_EQ(snap.sessions.size(), 1u);
  const ingest::SessionMetricsSnapshot& row = snap.sessions[0];
  EXPECT_EQ(row.delivered, 8u);
  // Manual clock: every delivery is one 16 ms round old.
  EXPECT_GT(row.latency_p50_ms, 0.0);
  EXPECT_LE(row.latency_p50_ms, row.latency_p99_ms);
  EXPECT_NE(snap.to_json().find("\"slo_state\": \"untracked\""), std::string::npos);
  rig.service->close_session(id);
}

}  // namespace
}  // namespace slj::obs
