#include "bayes/viterbi.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace slj::bayes {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Two-state umbrella world with hand-checkable decode.
struct Hmm {
  double trans[2][2] = {{0.7, 0.3}, {0.3, 0.7}};
  double prior[2] = {0.5, 0.5};

  std::vector<int> decode(const std::vector<std::array<double, 2>>& emissions) const {
    return viterbi_decode(
        2, static_cast<int>(emissions.size()),
        [&](int s) { return std::log(prior[s]); },
        [&](int, int f, int t) { return std::log(trans[f][t]); },
        [&](int t, int s) {
          const double e = emissions[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
          return e > 0.0 ? std::log(e) : kNegInf;
        });
  }
};

TEST(Viterbi, EmptySequence) {
  Hmm hmm;
  EXPECT_TRUE(hmm.decode({}).empty());
}

TEST(Viterbi, SingleStepPicksBestPriorTimesEmission) {
  Hmm hmm;
  const auto path = hmm.decode({{0.9, 0.2}});
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 0);
}

TEST(Viterbi, ConsistentEvidenceStaysInOneState) {
  Hmm hmm;
  const auto path = hmm.decode({{0.9, 0.2}, {0.9, 0.2}, {0.9, 0.2}, {0.9, 0.2}});
  for (const int s : path) EXPECT_EQ(s, 0);
}

TEST(Viterbi, SingleContradictoryFrameIsSmoothedOver) {
  // Strong state-0 evidence except one mildly state-1 frame: the sticky
  // transition keeps the path in state 0 (this is exactly what fixes the
  // paper's one-frame boundary errors).
  Hmm hmm;
  const auto path = hmm.decode({{0.9, 0.1}, {0.9, 0.1}, {0.45, 0.55}, {0.9, 0.1}, {0.9, 0.1}});
  for (const int s : path) EXPECT_EQ(s, 0);
}

TEST(Viterbi, SustainedSwitchIsFollowed) {
  Hmm hmm;
  const auto path = hmm.decode({{0.9, 0.1}, {0.9, 0.1}, {0.1, 0.9}, {0.1, 0.9}, {0.1, 0.9}});
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 0);
  EXPECT_EQ(path[2], 1);
  EXPECT_EQ(path[4], 1);
}

TEST(Viterbi, HardConstraintsAreRespected) {
  // Transition 1→0 forbidden: once in state 1 the path must stay.
  const auto path = viterbi_decode(
      2, 4, [](int) { return std::log(0.5); },
      [](int, int f, int t) {
        if (f == 1 && t == 0) return kNegInf;
        return std::log(0.5);
      },
      [](int t, int s) {
        // Evidence prefers state 1 at t=1, state 0 afterwards.
        if (t == 1) return s == 1 ? std::log(0.9) : std::log(0.1);
        return s == 0 ? std::log(0.6) : std::log(0.4);
      });
  // Entering state 1 at t=1 would trap the path there and lose the later
  // state-0 evidence; the decoder weighs that globally.
  ASSERT_EQ(path.size(), 4u);
  for (std::size_t t = 1; t < path.size(); ++t) {
    if (path[t - 1] == 1) EXPECT_EQ(path[t], 1);
  }
}

TEST(Viterbi, RecoversFromAllStatesBlocked) {
  // Emission at t=1 is impossible in every state; decode restarts there and
  // still returns a full-length path.
  const auto path = viterbi_decode(
      2, 3, [](int) { return std::log(0.5); },
      [](int, int, int) { return kNegInf; },  // all transitions forbidden
      [](int, int s) { return s == 0 ? std::log(0.8) : std::log(0.2); });
  ASSERT_EQ(path.size(), 3u);
  for (const int s : path) EXPECT_EQ(s, 0);
}

TEST(Viterbi, MatchesBruteForceOnSmallProblem) {
  // 3 states, 4 steps: compare against exhaustive enumeration.
  const int S = 3, T = 4;
  const double trans[3][3] = {{0.6, 0.3, 0.1}, {0.2, 0.5, 0.3}, {0.1, 0.2, 0.7}};
  const double prior[3] = {0.5, 0.3, 0.2};
  const double emis[4][3] = {
      {0.2, 0.5, 0.3}, {0.6, 0.2, 0.2}, {0.1, 0.1, 0.8}, {0.3, 0.3, 0.4}};

  const auto path = viterbi_decode(
      S, T, [&](int s) { return std::log(prior[s]); },
      [&](int, int f, int t) { return std::log(trans[f][t]); },
      [&](int t, int s) { return std::log(emis[t][s]); });

  double best = -1.0;
  std::vector<int> best_path;
  for (int a = 0; a < S; ++a) {
    for (int b = 0; b < S; ++b) {
      for (int c = 0; c < S; ++c) {
        for (int d = 0; d < S; ++d) {
          const double p = prior[a] * emis[0][a] * trans[a][b] * emis[1][b] * trans[b][c] *
                           emis[2][c] * trans[c][d] * emis[3][d];
          if (p > best) {
            best = p;
            best_path = {a, b, c, d};
          }
        }
      }
    }
  }
  EXPECT_EQ(path, best_path);
}

}  // namespace
}  // namespace slj::bayes
