#include "bayes/forward.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace slj::bayes {
namespace {

ForwardFilter weather_filter() {
  // Classic umbrella-world HMM: rain persists with 0.7.
  return ForwardFilter({{0.7, 0.3}, {0.3, 0.7}}, {0.5, 0.5});
}

TEST(ForwardFilter, ValidatesInputs) {
  EXPECT_THROW(ForwardFilter({}, {}), std::invalid_argument);
  EXPECT_THROW(ForwardFilter({{1.0}}, {0.9}), std::invalid_argument);          // prior != 1
  EXPECT_THROW(ForwardFilter({{0.5, 0.6}}, {1.0}), std::invalid_argument);     // row size
  EXPECT_THROW(ForwardFilter({{0.5, 0.6}, {0.5, 0.5}}, {0.5, 0.5}),
               std::invalid_argument);                                         // row sum
}

TEST(ForwardFilter, UmbrellaWorldStepMatchesHandComputation) {
  // Russell & Norvig 15.2: P(R1 | u1) = <0.818, 0.182> with
  // P(u|r)=0.9, P(u|~r)=0.2 and uniform prior.
  ForwardFilter f = weather_filter();
  const std::vector<double> lik = {0.9, 0.2};
  const std::vector<double>& belief = f.step(lik);
  EXPECT_NEAR(belief[0], 0.818, 1e-3);
  EXPECT_NEAR(belief[1], 0.182, 1e-3);
  // Second umbrella: P(R2 | u1, u2) ≈ <0.883, 0.117>.
  f.step(lik);
  EXPECT_NEAR(f.belief()[0], 0.883, 1e-3);
}

TEST(ForwardFilter, BeliefAlwaysNormalized) {
  ForwardFilter f = weather_filter();
  for (int i = 0; i < 5; ++i) {
    const auto& b = f.step(std::vector<double>{0.3, 0.6});
    double sum = 0.0;
    for (const double p : b) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(ForwardFilter, UninformativeLikelihoodOnlyPredicts) {
  ForwardFilter f({{1.0, 0.0}, {0.0, 1.0}}, {0.9, 0.1});
  f.step(std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(f.belief()[0], 0.9, 1e-12);  // identity transition preserves prior
}

TEST(ForwardFilter, ZeroLikelihoodEverywhereKeepsPrediction) {
  ForwardFilter f = weather_filter();
  f.step(std::vector<double>{0.0, 0.0});
  double sum = 0.0;
  for (const double p : f.belief()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);  // no NaN collapse
}

TEST(ForwardFilter, ResetRestoresPrior) {
  ForwardFilter f = weather_filter();
  f.step(std::vector<double>{0.9, 0.2});
  f.reset();
  EXPECT_DOUBLE_EQ(f.belief()[0], 0.5);
}

TEST(ForwardFilter, MapStatePicksArgmax) {
  ForwardFilter f = weather_filter();
  f.step(std::vector<double>{0.9, 0.2});
  EXPECT_EQ(f.map_state(), 0);
  f.reset();
  f.step(std::vector<double>{0.1, 0.9});
  EXPECT_EQ(f.map_state(), 1);
}

TEST(ForwardFilter, MismatchedLikelihoodSizeThrows) {
  ForwardFilter f = weather_filter();
  EXPECT_THROW(f.step(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(ForwardFilter, ConvergesToStationaryDistribution) {
  // With uninformative evidence the belief approaches the chain's
  // stationary distribution (uniform for this symmetric chain).
  ForwardFilter f({{0.7, 0.3}, {0.3, 0.7}}, {1.0, 0.0});
  for (int i = 0; i < 60; ++i) f.step(std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(f.belief()[0], 0.5, 1e-6);
}

}  // namespace
}  // namespace slj::bayes
