#include "bayes/forward.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace slj::bayes {
namespace {

ForwardFilter weather_filter() {
  // Classic umbrella-world HMM: rain persists with 0.7.
  return ForwardFilter({{0.7, 0.3}, {0.3, 0.7}}, {0.5, 0.5});
}

TEST(ForwardFilter, ValidatesInputs) {
  EXPECT_THROW(ForwardFilter({}, {}), std::invalid_argument);
  EXPECT_THROW(ForwardFilter({{1.0}}, {0.9}), std::invalid_argument);          // prior != 1
  EXPECT_THROW(ForwardFilter({{0.5, 0.6}}, {1.0}), std::invalid_argument);     // row size
  EXPECT_THROW(ForwardFilter({{0.5, 0.6}, {0.5, 0.5}}, {0.5, 0.5}),
               std::invalid_argument);                                         // row sum
}

TEST(ForwardFilter, UmbrellaWorldStepMatchesHandComputation) {
  // Russell & Norvig 15.2: P(R1 | u1) = <0.818, 0.182> with
  // P(u|r)=0.9, P(u|~r)=0.2 and uniform prior.
  ForwardFilter f = weather_filter();
  const std::vector<double> lik = {0.9, 0.2};
  const std::vector<double>& belief = f.step(lik);
  EXPECT_NEAR(belief[0], 0.818, 1e-3);
  EXPECT_NEAR(belief[1], 0.182, 1e-3);
  // Second umbrella: P(R2 | u1, u2) ≈ <0.883, 0.117>.
  f.step(lik);
  EXPECT_NEAR(f.belief()[0], 0.883, 1e-3);
}

TEST(ForwardFilter, BeliefAlwaysNormalized) {
  ForwardFilter f = weather_filter();
  for (int i = 0; i < 5; ++i) {
    const auto& b = f.step(std::vector<double>{0.3, 0.6});
    double sum = 0.0;
    for (const double p : b) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(ForwardFilter, UninformativeLikelihoodOnlyPredicts) {
  ForwardFilter f({{1.0, 0.0}, {0.0, 1.0}}, {0.9, 0.1});
  f.step(std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(f.belief()[0], 0.9, 1e-12);  // identity transition preserves prior
}

TEST(ForwardFilter, ZeroLikelihoodEverywhereKeepsPrediction) {
  ForwardFilter f = weather_filter();
  f.step(std::vector<double>{0.0, 0.0});
  double sum = 0.0;
  for (const double p : f.belief()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);  // no NaN collapse
}

TEST(ForwardFilter, ResetRestoresPrior) {
  ForwardFilter f = weather_filter();
  f.step(std::vector<double>{0.9, 0.2});
  f.reset();
  EXPECT_DOUBLE_EQ(f.belief()[0], 0.5);
}

TEST(ForwardFilter, MapStatePicksArgmax) {
  ForwardFilter f = weather_filter();
  f.step(std::vector<double>{0.9, 0.2});
  EXPECT_EQ(f.map_state(), 0);
  f.reset();
  f.step(std::vector<double>{0.1, 0.9});
  EXPECT_EQ(f.map_state(), 1);
}

TEST(ForwardFilter, MismatchedLikelihoodSizeThrows) {
  ForwardFilter f = weather_filter();
  EXPECT_THROW(f.step(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(ForwardFilter, StepLogMatchesLinearStep) {
  ForwardFilter linear = weather_filter();
  ForwardFilter logspace = weather_filter();
  linear.step(std::vector<double>{0.9, 0.2});
  logspace.step_log(std::vector<double>{std::log(0.9), std::log(0.2)});
  EXPECT_NEAR(logspace.belief()[0], linear.belief()[0], 1e-12);
  EXPECT_NEAR(logspace.belief()[1], linear.belief()[1], 1e-12);
}

// Regression: log-emissions hundreds of nats below zero used to underflow
// exp() to 0 everywhere and silently degrade the update to predict-only.
// The max-log shift keeps the relative weights exact.
TEST(ForwardFilter, StepLogSurvivesHeavilyNegativeEmissions) {
  ForwardFilter f = weather_filter();
  // Same ratio as {0.9, 0.2}, shifted down by 800 nats.
  f.step_log(std::vector<double>{std::log(0.9) - 800.0, std::log(0.2) - 800.0});
  EXPECT_NEAR(f.belief()[0], 0.818, 1e-3);
  EXPECT_NEAR(f.belief()[1], 0.182, 1e-3);
}

TEST(ForwardFilter, StepLogTreatsNegInfAsImpossible) {
  ForwardFilter f = weather_filter();
  f.step_log(std::vector<double>{-std::numeric_limits<double>::infinity(), -500.0});
  EXPECT_DOUBLE_EQ(f.belief()[0], 0.0);
  EXPECT_DOUBLE_EQ(f.belief()[1], 1.0);
  // All-impossible falls back to the prediction, like an all-zero step().
  f.reset();
  f.step_log(std::vector<double>(2, -std::numeric_limits<double>::infinity()));
  EXPECT_NEAR(f.belief()[0] + f.belief()[1], 1.0, 1e-12);
}

TEST(ForwardFilter, WeightLogConditionsWithoutPrediction) {
  // Identity transition would wipe state 1's mass through a step(); a pure
  // Bayes update must keep the prior's proportions times the likelihood.
  ForwardFilter f({{1.0, 0.0}, {0.0, 1.0}}, {0.5, 0.5});
  f.weight_log(std::vector<double>{std::log(0.9) - 700.0, std::log(0.3) - 700.0});
  EXPECT_NEAR(f.belief()[0], 0.75, 1e-12);
  EXPECT_NEAR(f.belief()[1], 0.25, 1e-12);
}

TEST(ForwardFilter, FromPotentialsAcceptsUnnormalizedRows) {
  // Rows are gated potentials (second row sums to 0.4, prior unnormalized):
  // the belief must still be a distribution after every step.
  ForwardFilter f = ForwardFilter::from_potentials({{2.0, 1.0}, {0.0, 0.4}}, {3.0, 1.0});
  EXPECT_NEAR(f.belief()[0], 0.75, 1e-12);  // prior normalized on entry
  f.step(std::vector<double>{1.0, 1.0});
  double sum = 0.0;
  for (const double p : f.belief()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Hand computation: predicted ∝ {0.75·2, 0.75·1 + 0.25·0.4} = {1.5, 0.85}.
  EXPECT_NEAR(f.belief()[0], 1.5 / 2.35, 1e-12);
}

TEST(ForwardFilter, FromPotentialsValidates) {
  EXPECT_THROW(ForwardFilter::from_potentials({}, {}), std::invalid_argument);
  EXPECT_THROW(ForwardFilter::from_potentials({{1.0, 0.0}, {0.0, -1.0}}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(ForwardFilter::from_potentials({{1.0}, {1.0}}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(ForwardFilter::from_potentials({{1.0, 1.0}, {1.0, 1.0}}, {0.0, 0.0}),
               std::invalid_argument);
}

TEST(ForwardFilter, ConvergesToStationaryDistribution) {
  // With uninformative evidence the belief approaches the chain's
  // stationary distribution (uniform for this symmetric chain).
  ForwardFilter f({{0.7, 0.3}, {0.3, 0.7}}, {1.0, 0.0});
  for (int i = 0; i < 60; ++i) f.step(std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(f.belief()[0], 0.5, 1e-6);
}

}  // namespace
}  // namespace slj::bayes
