#include "ga/ga_fitter.hpp"

#include <gtest/gtest.h>

namespace slj::ga {
namespace {

const synth::BodyDimensions kBody = synth::BodyDimensions::for_height(1.38);

synth::CameraConfig small_camera() {
  synth::CameraConfig cam;
  cam.width = 160;
  cam.height = 100;
  cam.pixels_per_meter = 40.0;
  cam.ground_y_px = 95.0;
  cam.origin_x_px = 20.0;
  return cam;
}

GaConfig quick_config() {
  GaConfig cfg;
  cfg.population = 30;
  cfg.generations = 25;
  cfg.seed = 7;
  return cfg;
}

/// Ground-truth silhouette of a known stick pose.
BinaryImage target_silhouette(const StickPose& pose, double radius_px) {
  const synth::SilhouetteRenderer renderer(small_camera());
  return renderer.render_stick(kBody, pose.angles, pose.pelvis_world, radius_px);
}

TEST(GaFitter, FitnessOfExactPoseIsOne) {
  GeneticSkeletonFitter fitter(kBody, small_camera(), quick_config());
  StickPose truth;
  truth.pelvis_world = {1.0, 0.62};
  truth.angles.shoulder = 0.8;
  const BinaryImage target = target_silhouette(truth, quick_config().stick_radius_px);
  EXPECT_NEAR(fitter.fitness(truth, target), 1.0, 1e-12);
}

TEST(GaFitter, FitnessDropsWithPoseError) {
  GeneticSkeletonFitter fitter(kBody, small_camera(), quick_config());
  StickPose truth;
  truth.pelvis_world = {1.0, 0.62};
  const BinaryImage target = target_silhouette(truth, quick_config().stick_radius_px);
  StickPose off = truth;
  off.pelvis_world.x += 0.25;
  EXPECT_LT(fitter.fitness(off, target), 0.6);
  StickPose bent = truth;
  bent.angles.knee = 1.2;
  EXPECT_LT(fitter.fitness(bent, target), fitter.fitness(truth, target));
}

TEST(GaFitter, RecoversStandingPose) {
  GeneticSkeletonFitter fitter(kBody, small_camera(), quick_config());
  StickPose truth;
  truth.pelvis_world = {1.2, 0.62};
  truth.angles.shoulder = 0.5;
  const BinaryImage target = target_silhouette(truth, quick_config().stick_radius_px);
  const FitResult result = fitter.fit(target);
  // The GA should overlap the target substantially (not necessarily
  // perfectly within this tiny budget).
  EXPECT_GT(result.fitness, 0.55);
  EXPECT_NEAR(result.best.pelvis_world.x, truth.pelvis_world.x, 0.20);
  EXPECT_NEAR(result.best.pelvis_world.y, truth.pelvis_world.y, 0.20);
}

TEST(GaFitter, ReportsBudgetTelemetry) {
  GaConfig cfg = quick_config();
  cfg.population = 10;
  cfg.generations = 5;
  GeneticSkeletonFitter fitter(kBody, small_camera(), cfg);
  StickPose truth;
  truth.pelvis_world = {1.0, 0.62};
  const FitResult result = fitter.fit(target_silhouette(truth, cfg.stick_radius_px));
  EXPECT_EQ(result.generations_run, 5);
  // population initial eval + one eval per individual per generation
  EXPECT_EQ(result.evaluations, 10u + 5u * 10u);
}

TEST(GaFitter, DeterministicForSeed) {
  StickPose truth;
  truth.pelvis_world = {1.0, 0.62};
  const BinaryImage target = target_silhouette(truth, quick_config().stick_radius_px);
  GeneticSkeletonFitter f1(kBody, small_camera(), quick_config());
  GeneticSkeletonFitter f2(kBody, small_camera(), quick_config());
  const FitResult r1 = f1.fit(target);
  const FitResult r2 = f2.fit(target);
  EXPECT_DOUBLE_EQ(r1.fitness, r2.fitness);
  EXPECT_DOUBLE_EQ(r1.best.angles.knee, r2.best.angles.knee);
}

TEST(GaFitter, MoreGenerationsDoNotHurt) {
  StickPose truth;
  truth.pelvis_world = {1.0, 0.62};
  truth.angles.hip = 0.4;
  truth.angles.knee = 0.6;
  const BinaryImage target = target_silhouette(truth, quick_config().stick_radius_px);
  GaConfig small = quick_config();
  small.generations = 4;
  GaConfig large = quick_config();
  large.generations = 40;
  GeneticSkeletonFitter fs(kBody, small_camera(), small);
  GeneticSkeletonFitter fl(kBody, small_camera(), large);
  // Elitism makes best fitness monotone in generations for a fixed seed.
  EXPECT_GE(fl.fit(target).fitness, fs.fit(target).fitness - 1e-12);
}

}  // namespace
}  // namespace slj::ga
