#include "synth/dataset.hpp"

#include <gtest/gtest.h>

namespace slj::synth {
namespace {

TEST(Dataset, DefaultSpecMatchesPaperCorpusExactly) {
  const DatasetSpec spec;
  // 12 training clips totalling 522 frames; 3 test clips totalling 135.
  EXPECT_EQ(spec.train_clip_frames.size(), 12u);
  EXPECT_EQ(spec.test_clip_frames.size(), 3u);
  int train = 0, test = 0;
  for (const int f : spec.train_clip_frames) train += f;
  for (const int f : spec.test_clip_frames) test += f;
  EXPECT_EQ(train, 522);
  EXPECT_EQ(test, 135);
}

TEST(Dataset, GeneratedCorpusHasPaperCounts) {
  DatasetSpec spec;
  // Shrink images for test speed but keep the clip structure.
  spec.camera.width = 96;
  spec.camera.height = 64;
  spec.camera.pixels_per_meter = 24.0;
  spec.camera.ground_y_px = 60.0;
  spec.camera.origin_x_px = 12.0;
  const Dataset ds = generate_dataset(spec);
  EXPECT_EQ(ds.train.size(), 12u);
  EXPECT_EQ(ds.test.size(), 3u);
  EXPECT_EQ(ds.train_frames(), 522u);
  EXPECT_EQ(ds.test_frames(), 135u);
}

ClipSpec small_clip_spec(std::uint32_t seed, int frames = 20) {
  ClipSpec spec;
  spec.seed = seed;
  spec.frame_count = frames;
  spec.camera.width = 120;
  spec.camera.height = 80;
  spec.camera.pixels_per_meter = 30.0;
  spec.camera.ground_y_px = 75.0;
  spec.camera.origin_x_px = 15.0;
  return spec;
}

TEST(Clip, FramesTruthAndSilhouettesAligned) {
  const Clip clip = generate_clip(small_clip_spec(4));
  EXPECT_EQ(clip.frames.size(), 20u);
  EXPECT_EQ(clip.truth.size(), 20u);
  EXPECT_EQ(clip.clean_silhouettes.size(), 20u);
  EXPECT_EQ(clip.frame_count(), 20);
  EXPECT_EQ(clip.background.width(), 120);
}

TEST(Clip, DeterministicForSameSpec) {
  const Clip a = generate_clip(small_clip_spec(7));
  const Clip b = generate_clip(small_clip_spec(7));
  EXPECT_EQ(a.frames[5], b.frames[5]);
  EXPECT_EQ(a.truth[5].pose, b.truth[5].pose);
}

TEST(Clip, DifferentSeedsGiveDifferentJumps) {
  const Clip a = generate_clip(small_clip_spec(1));
  const Clip b = generate_clip(small_clip_spec(2));
  EXPECT_NE(a.frames[10], b.frames[10]);
}

TEST(Clip, TruthStagesProgress) {
  const Clip clip = generate_clip(small_clip_spec(3, 40));
  int prev = 0;
  for (const FrameTruth& t : clip.truth) {
    EXPECT_GE(static_cast<int>(t.stage), prev);
    prev = std::max(prev, static_cast<int>(t.stage));
  }
  EXPECT_EQ(static_cast<int>(clip.truth.back().stage),
            static_cast<int>(pose::Stage::kLanding));
}

TEST(Clip, CleanSilhouetteMatchesPartTruth) {
  const Clip clip = generate_clip(small_clip_spec(5, 30));
  for (std::size_t i = 0; i < clip.truth.size(); i += 7) {
    const PointI waist = round_to_i(clip.truth[i].parts.waist);
    ASSERT_TRUE(clip.clean_silhouettes[i].in_bounds(waist));
    EXPECT_TRUE(clip.clean_silhouettes[i].at(waist));
  }
}

TEST(Clip, FaultFlagsPropagate) {
  ClipSpec spec = small_clip_spec(6);
  spec.faults.no_arm_swing = true;
  const Clip clip = generate_clip(spec);
  EXPECT_TRUE(clip.faults.no_arm_swing);
}

TEST(Dataset, TestCorpusIndependentOfTrainingSize) {
  DatasetSpec big;
  big.camera.width = 96;
  big.camera.height = 64;
  big.camera.pixels_per_meter = 24.0;
  big.camera.ground_y_px = 60.0;
  DatasetSpec small = big;
  small.train_clip_frames = {44, 43};  // fewer training clips
  const Dataset ds_big = generate_dataset(big);
  const Dataset ds_small = generate_dataset(small);
  ASSERT_EQ(ds_big.test.size(), ds_small.test.size());
  for (std::size_t c = 0; c < ds_big.test.size(); ++c) {
    EXPECT_EQ(ds_big.test[c].frames[0], ds_small.test[c].frames[0]);
  }
}

}  // namespace
}  // namespace slj::synth
