#include "skelgraph/simplify.hpp"

#include <gtest/gtest.h>

namespace slj::skel {
namespace {

TEST(DouglasPeucker, StraightLineKeepsOnlyEndpoints) {
  std::vector<PointI> path;
  for (int x = 0; x <= 20; ++x) path.push_back({x, 0});
  const auto keep = douglas_peucker(path, 1.5);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep.front(), 0u);
  EXPECT_EQ(keep.back(), 20u);
}

TEST(DouglasPeucker, RightAngleKeepsCorner) {
  std::vector<PointI> path;
  for (int x = 0; x <= 10; ++x) path.push_back({x, 0});
  for (int y = 1; y <= 10; ++y) path.push_back({10, y});
  const auto keep = douglas_peucker(path, 1.5);
  ASSERT_EQ(keep.size(), 3u);
  EXPECT_EQ(path[keep[1]], (PointI{10, 0}));
}

TEST(DouglasPeucker, ToleranceControlsDetail) {
  // A shallow 'V' with 3-pixel deviation.
  std::vector<PointI> path;
  for (int x = 0; x <= 10; ++x) path.push_back({x, (x * 3) / 10});
  for (int x = 11; x <= 20; ++x) path.push_back({x, 3 - ((x - 10) * 3) / 10});
  EXPECT_EQ(douglas_peucker(path, 5.0).size(), 2u);  // flattened away
  EXPECT_GE(douglas_peucker(path, 1.0).size(), 3u);  // corner kept
}

TEST(DouglasPeucker, TrivialInputs) {
  EXPECT_TRUE(douglas_peucker({}, 1.0).empty());
  EXPECT_EQ(douglas_peucker({{3, 3}}, 1.0).size(), 1u);
  EXPECT_EQ(douglas_peucker({{0, 0}, {1, 1}}, 1.0).size(), 2u);
}

SkeletonGraph elbow_graph() {
  // One edge from (0,0) to (10,10) via a right-angle corner at (10,0).
  SkeletonGraph g;
  Node a, b;
  a.pos = {0, 0};
  b.pos = {10, 10};
  a.type = b.type = NodeType::kEnd;
  const int ia = g.add_node(a);
  const int ib = g.add_node(b);
  Edge e;
  e.a = ia;
  e.b = ib;
  for (int x = 0; x <= 10; ++x) e.path.push_back({x, 0});
  for (int y = 1; y <= 10; ++y) e.path.push_back({10, y});
  g.add_edge(e);
  return g;
}

TEST(SplitEdgesAtBends, CreatesBendNodeAtCorner) {
  SkeletonGraph g = elbow_graph();
  const BendSplitStats stats = split_edges_at_bends(g, 2.0);
  EXPECT_EQ(stats.edges_split, 1u);
  EXPECT_EQ(stats.bends_added, 1u);
  // One bend node at the corner with two sub-edges.
  std::size_t bends = 0;
  for (const Node& n : g.nodes()) {
    if (n.alive && n.type == NodeType::kBend) {
      ++bends;
      EXPECT_EQ(n.pos, (PointI{10, 0}));
    }
  }
  EXPECT_EQ(bends, 1u);
  EXPECT_EQ(g.alive_edge_count(), 2u);
}

TEST(SplitEdgesAtBends, StraightEdgeUntouched) {
  SkeletonGraph g;
  Node a, b;
  a.pos = {0, 0};
  b.pos = {15, 0};
  a.type = b.type = NodeType::kEnd;
  const int ia = g.add_node(a);
  const int ib = g.add_node(b);
  Edge e;
  e.a = ia;
  e.b = ib;
  for (int x = 0; x <= 15; ++x) e.path.push_back({x, 0});
  g.add_edge(e);

  const BendSplitStats stats = split_edges_at_bends(g, 2.0);
  EXPECT_EQ(stats.edges_split, 0u);
  EXPECT_EQ(g.alive_edge_count(), 1u);
}

TEST(SplitEdgesAtBends, PreservesTotalPathCoverage) {
  SkeletonGraph g = elbow_graph();
  const BinaryImage before = g.rasterize(16, 16);
  split_edges_at_bends(g, 2.0);
  const BinaryImage after = g.rasterize(16, 16);
  EXPECT_EQ(before, after);
}

TEST(SplitEdgesAtBends, MinSegmentSuppressesTinyBends) {
  // Corner 2 pixels from one end: suppressed by min_segment_px = 5.
  SkeletonGraph g;
  Node a, b;
  a.pos = {0, 0};
  b.pos = {2, 10};
  a.type = b.type = NodeType::kEnd;
  const int ia = g.add_node(a);
  const int ib = g.add_node(b);
  Edge e;
  e.a = ia;
  e.b = ib;
  e.path = {{0, 0}, {1, 0}, {2, 0}};
  for (int y = 1; y <= 10; ++y) e.path.push_back({2, y});
  g.add_edge(e);

  const BendSplitStats stats = split_edges_at_bends(g, 1.0, 5.0);
  EXPECT_EQ(stats.bends_added, 0u);
}

TEST(SplitEdgesAtBends, SelfLoopsIgnored) {
  SkeletonGraph g;
  Node seat;
  seat.pos = {0, 0};
  seat.type = NodeType::kLoopSeat;
  const int is = g.add_node(seat);
  Edge ring;
  ring.a = is;
  ring.b = is;
  for (int x = 0; x <= 6; ++x) ring.path.push_back({x, 0});
  for (int y = 1; y <= 6; ++y) ring.path.push_back({6, y});
  ring.path.push_back({0, 0});
  g.add_edge(ring);
  const BendSplitStats stats = split_edges_at_bends(g, 1.0);
  EXPECT_EQ(stats.edges_split, 0u);
}

}  // namespace
}  // namespace slj::skel
