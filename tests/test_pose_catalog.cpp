#include "pose/pose_catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace slj::pose {
namespace {

TEST(PoseCatalog, HasExactly22Poses) {
  EXPECT_EQ(kPoseCount, 22);
  const auto poses = all_poses();
  std::set<int> ids;
  for (const PoseId p : poses) ids.insert(index_of(p));
  EXPECT_EQ(ids.size(), 22u);
}

TEST(PoseCatalog, PaperNamedPosesExist) {
  EXPECT_EQ(pose_name(PoseId::kStandHandsOverlap), "standing & hands overlap with body");
  EXPECT_EQ(pose_name(PoseId::kStandHandsForward), "standing & hands swung forward");
  EXPECT_EQ(pose_name(PoseId::kExtendedHandsForward),
            "knees and feet extended & hands raised forward");
  EXPECT_NE(std::string(pose_name(PoseId::kLandedWaistBentHandsForward)).find("waist bent"),
            std::string::npos);
}

TEST(PoseCatalog, EveryPoseHasUniqueName) {
  std::set<std::string_view> names;
  for (const PoseId p : all_poses()) names.insert(pose_name(p));
  EXPECT_EQ(names.size(), 22u);
}

TEST(PoseCatalog, EveryStageHasPoses) {
  std::array<PoseId, kPoseCount> buf{};
  int total = 0;
  for (int s = 0; s < kStageCount; ++s) {
    const int n = poses_in_stage(stage_from_index(s), buf);
    EXPECT_GT(n, 0) << stage_name(stage_from_index(s));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(stage_of(buf[static_cast<std::size_t>(i)]), stage_from_index(s));
    }
    total += n;
  }
  EXPECT_EQ(total, kPoseCount);
}

TEST(PoseCatalog, StageAssignmentsMatchPaperSemantics) {
  EXPECT_EQ(stage_of(PoseId::kStandHandsOverlap), Stage::kBeforeJumping);
  EXPECT_EQ(stage_of(PoseId::kExtendedHandsForward), Stage::kJumping);
  EXPECT_EQ(stage_of(PoseId::kAirTuckHandsForward), Stage::kInTheAir);
  EXPECT_EQ(stage_of(PoseId::kLandedSquatHandsForward), Stage::kLanding);
}

TEST(PoseCatalog, ResetPoseIsStandingOverlap) {
  EXPECT_EQ(kResetPose, PoseId::kStandHandsOverlap);
  EXPECT_EQ(stage_of(kResetPose), Stage::kBeforeJumping);
}

TEST(PoseCatalog, IndexRoundTrip) {
  for (int i = 0; i < kPoseCount; ++i) {
    EXPECT_EQ(index_of(pose_from_index(i)), i);
  }
  EXPECT_THROW(pose_from_index(-1), std::out_of_range);
  EXPECT_THROW(pose_from_index(23), std::out_of_range);
  EXPECT_EQ(pose_from_index(22), PoseId::kUnknown);
}

TEST(PoseCatalog, StageIndexRoundTrip) {
  for (int i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(index_of(stage_from_index(i)), i);
  }
  EXPECT_THROW(stage_from_index(4), std::out_of_range);
}

TEST(PoseCatalog, StageTransitionsMonotoneByOne) {
  EXPECT_TRUE(stage_transition_allowed(Stage::kBeforeJumping, Stage::kBeforeJumping));
  EXPECT_TRUE(stage_transition_allowed(Stage::kBeforeJumping, Stage::kJumping));
  EXPECT_FALSE(stage_transition_allowed(Stage::kBeforeJumping, Stage::kInTheAir));
  EXPECT_FALSE(stage_transition_allowed(Stage::kLanding, Stage::kBeforeJumping));
  EXPECT_TRUE(stage_transition_allowed(Stage::kInTheAir, Stage::kLanding));
  // The paper's example: before-jumping and landing cannot be consecutive.
  EXPECT_FALSE(stage_transition_allowed(Stage::kLanding, Stage::kBeforeJumping));
  EXPECT_FALSE(stage_transition_allowed(Stage::kBeforeJumping, Stage::kLanding));
}

TEST(PoseCatalog, StageNames) {
  EXPECT_EQ(stage_name(Stage::kBeforeJumping), "before jumping");
  EXPECT_EQ(stage_name(Stage::kJumping), "jumping");
  EXPECT_EQ(stage_name(Stage::kInTheAir), "in the air");
  EXPECT_EQ(stage_name(Stage::kLanding), "landing");
}

}  // namespace
}  // namespace slj::pose
