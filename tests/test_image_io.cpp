#include "imaging/image_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

namespace slj {
namespace {

class ImageIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "slj_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(ImageIoTest, PgmRoundTrip) {
  GrayImage img(7, 5);
  std::mt19937 rng(1);
  for (auto& v : img.data()) v = static_cast<std::uint8_t>(rng() % 256);
  write_pgm(img, path("a.pgm"));
  const GrayImage back = read_pgm(path("a.pgm"));
  EXPECT_EQ(img, back);
}

TEST_F(ImageIoTest, PpmRoundTrip) {
  RgbImage img(5, 4);
  std::mt19937 rng(2);
  for (auto& v : img.data()) {
    v = {static_cast<std::uint8_t>(rng() % 256), static_cast<std::uint8_t>(rng() % 256),
         static_cast<std::uint8_t>(rng() % 256)};
  }
  write_ppm(img, path("a.ppm"));
  const RgbImage back = read_ppm(path("a.ppm"));
  EXPECT_EQ(img, back);
}

TEST_F(ImageIoTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_pgm(path("missing.pgm")), std::runtime_error);
  EXPECT_THROW(read_ppm(path("missing.ppm")), std::runtime_error);
}

TEST_F(ImageIoTest, BadMagicThrows) {
  std::ofstream out(path("bad.pgm"), std::ios::binary);
  out << "P9\n2 2\n255\n....";
  out.close();
  EXPECT_THROW(read_pgm(path("bad.pgm")), std::runtime_error);
}

TEST_F(ImageIoTest, TruncatedPixelDataThrows) {
  std::ofstream out(path("short.pgm"), std::ios::binary);
  out << "P5\n4 4\n255\nab";  // 16 bytes expected, 2 given
  out.close();
  EXPECT_THROW(read_pgm(path("short.pgm")), std::runtime_error);
}

TEST_F(ImageIoTest, CommentsInHeaderAreSkipped) {
  std::ofstream out(path("comment.pgm"), std::ios::binary);
  out << "P5\n# a comment line\n2 1\n# another\n255\nAB";
  out.close();
  const GrayImage img = read_pgm(path("comment.pgm"));
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.height(), 1);
  EXPECT_EQ(img.at(0, 0), 'A');
  EXPECT_EQ(img.at(1, 0), 'B');
}

TEST_F(ImageIoTest, OversizedHeaderDimensionsAreRejectedBeforeAllocation) {
  // A hostile or bit-flipped header claiming a giant image must throw a
  // clean error instead of attempting a multi-gigabyte allocation.
  std::ofstream pgm(path("huge.pgm"), std::ios::binary);
  pgm << "P5\n2000000000 2000000000\n255\nxx";
  pgm.close();
  EXPECT_THROW(read_pgm(path("huge.pgm")), std::runtime_error);

  std::ofstream ppm(path("huge.ppm"), std::ios::binary);
  ppm << "P6\n4 1000000000\n255\nxx";
  ppm.close();
  EXPECT_THROW(read_ppm(path("huge.ppm")), std::runtime_error);
}

TEST_F(ImageIoTest, NegativeHeaderDimensionsThrow) {
  std::ofstream out(path("neg.pgm"), std::ios::binary);
  out << "P5\n-4 4\n255\nxxxx";
  out.close();
  EXPECT_THROW(read_pgm(path("neg.pgm")), std::runtime_error);
}

TEST_F(ImageIoTest, HeaderBitFlipsNeverCrash) {
  // Fuzz-style sweep: flip each byte of a small valid PPM in turn; every
  // variant must either load or throw — never crash or trip sanitizers.
  RgbImage img(4, 3);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    img.data()[i] = {static_cast<std::uint8_t>(i), 0, static_cast<std::uint8_t>(255 - i)};
  }
  write_ppm(img, path("flip.ppm"));
  std::ifstream in(path("flip.ppm"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] ^= 0xff;
    std::ofstream out(path("flip.ppm"), std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    try {
      (void)read_ppm(path("flip.ppm"));
    } catch (const std::runtime_error&) {
      // rejected cleanly — fine
    }
  }
}

TEST_F(ImageIoTest, WriteToInvalidPathThrows) {
  GrayImage img(2, 2);
  EXPECT_THROW(write_pgm(img, "/nonexistent_dir_xyz/out.pgm"), std::runtime_error);
}

TEST(BinaryGrayConversion, RoundTrip) {
  BinaryImage mask(3, 2, 0);
  mask.at(1, 1) = 1;
  mask.at(2, 0) = 1;
  const GrayImage gray = binary_to_gray(mask);
  EXPECT_EQ(gray.at(1, 1), 255);
  EXPECT_EQ(gray.at(0, 0), 0);
  const BinaryImage back = gray_to_binary(gray, 127);
  EXPECT_EQ(mask, back);
}

TEST(BinaryGrayConversion, ThresholdIsStrict) {
  GrayImage gray(2, 1);
  gray.at(0, 0) = 100;
  gray.at(1, 0) = 101;
  const BinaryImage mask = gray_to_binary(gray, 100);
  EXPECT_EQ(mask.at(0, 0), 0);  // == threshold stays background
  EXPECT_EQ(mask.at(1, 0), 1);
}

}  // namespace
}  // namespace slj
