// Hierarchical profiler tests. The Profiler class is always compiled (only
// the SLJ_PROFILE_SCOPE instrumentation points are build-gated), so these
// tests drive aggregation, the runtime enable gate, the stage tree and the
// JSON snapshot directly — they hold in both default and
// -DSLJ_ENABLE_PROFILER=ON builds. Tests reset the process-global singleton
// and restore the enabled flag, since gtest shares it across cases.
#include "core/profiler.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ingest/ingest_metrics.hpp"

namespace slj::core {
namespace {

/// Resets the singleton around each test and restores the build's default
/// enabled state afterwards.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().reset();
    Profiler::instance().set_enabled(true);
  }
  void TearDown() override {
    Profiler::instance().reset();
    Profiler::instance().set_enabled(Profiler::compiled_in());
  }
};

const ProfileStageSnapshot* find_stage(const ProfilerSnapshot& snap, const char* name) {
  for (const ProfileStageSnapshot& s : snap.stages) {
    if (std::string(s.stage) == name) return &s;
  }
  return nullptr;
}

TEST_F(ProfilerTest, RecordAggregatesCallsTotalsAndMax) {
  Profiler& p = Profiler::instance();
  p.record(ProfileStage::kExtract, 1000);
  p.record(ProfileStage::kExtract, 3000);
  p.record(ProfileStage::kExtract, 2000);

  const ProfilerSnapshot snap = p.snapshot();
  const ProfileStageSnapshot* extract = find_stage(snap, "extract");
  ASSERT_NE(extract, nullptr);
  EXPECT_EQ(extract->calls, 3u);
  EXPECT_DOUBLE_EQ(extract->total_ms, 6000.0 / 1e6);
  EXPECT_DOUBLE_EQ(extract->avg_us, 2.0);
  EXPECT_DOUBLE_EQ(extract->max_us, 3.0);
}

TEST_F(ProfilerTest, SnapshotOmitsStagesWithoutCalls) {
  Profiler& p = Profiler::instance();
  p.record(ProfileStage::kThin, 500);
  const ProfilerSnapshot snap = p.snapshot();
  ASSERT_EQ(snap.stages.size(), 1u);
  EXPECT_STREQ(snap.stages[0].stage, "thin");
  EXPECT_STREQ(snap.stages[0].parent, "frame");
}

TEST_F(ProfilerTest, ShareOfParentFollowsTheStageTree) {
  Profiler& p = Profiler::instance();
  p.record(ProfileStage::kPass, 10000);
  p.record(ProfileStage::kTick, 8000);
  p.record(ProfileStage::kFrame, 6000);
  p.record(ProfileStage::kExtract, 3000);

  const ProfilerSnapshot snap = p.snapshot();
  const ProfileStageSnapshot* pass = find_stage(snap, "pass");
  const ProfileStageSnapshot* tick = find_stage(snap, "tick");
  const ProfileStageSnapshot* frame = find_stage(snap, "frame");
  const ProfileStageSnapshot* extract = find_stage(snap, "extract");
  ASSERT_NE(pass, nullptr);
  ASSERT_NE(tick, nullptr);
  ASSERT_NE(frame, nullptr);
  ASSERT_NE(extract, nullptr);
  EXPECT_DOUBLE_EQ(pass->share_of_parent, 1.0);     // root
  EXPECT_DOUBLE_EQ(tick->share_of_parent, 0.8);     // tick / pass
  EXPECT_DOUBLE_EQ(frame->share_of_parent, 0.75);   // frame / tick
  EXPECT_DOUBLE_EQ(extract->share_of_parent, 0.5);  // extract / frame
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothingThroughScopes) {
  Profiler& p = Profiler::instance();
  p.set_enabled(false);
  { ProfileScope scope(ProfileStage::kDecode); }
  EXPECT_TRUE(p.snapshot().stages.empty());

  p.set_enabled(true);
  { ProfileScope scope(ProfileStage::kDecode); }
  const ProfilerSnapshot snap = p.snapshot();
  const ProfileStageSnapshot* decode = find_stage(snap, "decode");
  ASSERT_NE(decode, nullptr);
  EXPECT_EQ(decode->calls, 1u);
}

TEST_F(ProfilerTest, ScopeArmsAtConstructionNotDestruction) {
  Profiler& p = Profiler::instance();
  p.set_enabled(false);
  {
    ProfileScope scope(ProfileStage::kFeatures);
    p.set_enabled(true);  // too late: the scope was born disarmed
  }
  EXPECT_EQ(find_stage(p.snapshot(), "features"), nullptr);
}

TEST_F(ProfilerTest, ResetZeroesEverything) {
  Profiler& p = Profiler::instance();
  p.record(ProfileStage::kPass, 1000);
  p.record(ProfileStage::kDeliver, 1000);
  EXPECT_FALSE(p.snapshot().stages.empty());
  p.reset();
  EXPECT_TRUE(p.snapshot().stages.empty());
}

TEST_F(ProfilerTest, JsonCarriesBuildModeAndStageRows) {
  Profiler& p = Profiler::instance();
  p.record(ProfileStage::kSkelGraph, 2000);
  const std::string json = p.snapshot().to_json();
  EXPECT_NE(json.find("\"compiled\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"skelgraph\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\": \"frame\""), std::string::npos);
  EXPECT_NE(json.find("\"share_of_parent\""), std::string::npos);
}

TEST_F(ProfilerTest, IngestMetricsJsonEmbedsTheProfilerSnapshot) {
  Profiler& p = Profiler::instance();
  p.record(ProfileStage::kTick, 4000);
  ingest::IngestMetricsSnapshot snap;
  snap.profiler = p.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"profiler\": {"), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"tick\""), std::string::npos);
}

TEST(ProfilerBuild, CompiledInMatchesTheMacroGate) {
#if defined(SLJ_PROFILER_ENABLED) && SLJ_PROFILER_ENABLED
  EXPECT_TRUE(Profiler::compiled_in());
#else
  EXPECT_FALSE(Profiler::compiled_in());
  // In the default build the instrumentation macro must be a true no-op:
  // even with the runtime flag forced on, it records nothing.
  Profiler::instance().reset();
  Profiler::instance().set_enabled(true);
  SLJ_PROFILE_SCOPE(ProfileStage::kExtract);
  EXPECT_TRUE(Profiler::instance().snapshot().stages.empty());
  Profiler::instance().set_enabled(Profiler::compiled_in());
#endif
}

TEST(ProfileStageTree, NamesAndParentsAreClosed) {
  for (std::size_t i = 0; i < kProfileStageCount; ++i) {
    const auto stage = static_cast<ProfileStage>(i);
    EXPECT_STRNE(profile_stage_name(stage), "");
    // Walking parents must reach the root without leaving the table.
    ProfileStage cursor = stage;
    for (int hops = 0; hops < 8; ++hops) {
      const ProfileStage parent = profile_stage_parent(cursor);
      if (parent == cursor) break;
      cursor = parent;
    }
    EXPECT_EQ(cursor, ProfileStage::kPass) << profile_stage_name(stage);
  }
}

}  // namespace
}  // namespace slj::core
