#include "imaging/integral.hpp"

#include <gtest/gtest.h>

#include <random>

namespace slj {
namespace {

TEST(IntegralImage, SumMatchesBruteForceOnKnownImage) {
  GrayImage img(4, 3);
  std::uint8_t v = 1;
  for (auto& p : img.data()) p = v++;
  IntegralImage integral(img.width(), img.height(),
                         [&](int x, int y) { return static_cast<double>(img.at(x, y)); });
  // whole image: 1+2+...+12 = 78
  EXPECT_DOUBLE_EQ(integral.sum(0, 0, 3, 2), 78.0);
  // single pixel
  EXPECT_DOUBLE_EQ(integral.sum(2, 1, 2, 1), static_cast<double>(img.at(2, 1)));
  // 2x2 block at origin: 1+2+5+6
  EXPECT_DOUBLE_EQ(integral.sum(0, 0, 1, 1), 14.0);
}

TEST(IntegralImage, SumClampsOutOfRangeRectangles) {
  GrayImage img(3, 3, 1);
  IntegralImage integral(3, 3, [&](int x, int y) { return static_cast<double>(img.at(x, y)); });
  EXPECT_DOUBLE_EQ(integral.sum(-5, -5, 10, 10), 9.0);
  EXPECT_DOUBLE_EQ(integral.sum(5, 5, 10, 10), 0.0);  // fully outside
  EXPECT_DOUBLE_EQ(integral.sum(2, 2, 1, 1), 0.0);    // inverted rect
}

struct WindowMeanCase {
  int width, height, n;
};

class WindowMeanProperty : public ::testing::TestWithParam<WindowMeanCase> {};

TEST_P(WindowMeanProperty, MatchesBruteForce) {
  const auto [w, h, n] = GetParam();
  std::mt19937 rng(77 + static_cast<unsigned>(w * 31 + h * 7 + n));
  GrayImage img(w, h);
  for (auto& p : img.data()) p = static_cast<std::uint8_t>(rng() % 256);

  const Image<double> fast = window_mean_gray(img, n);
  const int half = n / 2;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double sum = 0.0;
      int count = 0;
      for (int dy = -half; dy <= half; ++dy) {
        for (int dx = -half; dx <= half; ++dx) {
          if (img.in_bounds(x + dx, y + dy)) {
            sum += img.at(x + dx, y + dy);
            ++count;
          }
        }
      }
      ASSERT_NEAR(fast.at(x, y), sum / count, 1e-6) << "at (" << x << "," << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WindowMeanProperty,
                         ::testing::Values(WindowMeanCase{8, 8, 1}, WindowMeanCase{8, 8, 3},
                                           WindowMeanCase{16, 9, 5}, WindowMeanCase{5, 17, 7},
                                           WindowMeanCase{1, 1, 3}, WindowMeanCase{2, 9, 9}));

TEST(WindowMean, EvenOrNonPositiveWindowThrows) {
  GrayImage img(4, 4);
  EXPECT_THROW(window_mean_gray(img, 2), std::invalid_argument);
  EXPECT_THROW(window_mean_gray(img, 0), std::invalid_argument);
  EXPECT_THROW(window_mean_gray(img, -3), std::invalid_argument);
}

TEST(WindowMeanRgb, ChannelsAreIndependent) {
  RgbImage img(5, 5, Rgb{10, 20, 30});
  const RgbMeans means = window_mean_rgb(img, 3);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      EXPECT_DOUBLE_EQ(means.r.at(x, y), 10.0);
      EXPECT_DOUBLE_EQ(means.g.at(x, y), 20.0);
      EXPECT_DOUBLE_EQ(means.b.at(x, y), 30.0);
    }
  }
}

TEST(WindowMeanRgb, WindowOneIsIdentity) {
  RgbImage img(3, 3);
  std::mt19937 rng(3);
  for (auto& p : img.data()) {
    p = {static_cast<std::uint8_t>(rng() % 256), static_cast<std::uint8_t>(rng() % 256),
         static_cast<std::uint8_t>(rng() % 256)};
  }
  const RgbMeans means = window_mean_rgb(img, 1);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_DOUBLE_EQ(means.r.at(x, y), img.at(x, y).r);
      EXPECT_DOUBLE_EQ(means.g.at(x, y), img.at(x, y).g);
      EXPECT_DOUBLE_EQ(means.b.at(x, y), img.at(x, y).b);
    }
  }
}

}  // namespace
}  // namespace slj
