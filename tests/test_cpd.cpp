#include "bayes/cpd.hpp"

#include <gtest/gtest.h>

#include <array>
#include <random>

namespace slj::bayes {
namespace {

TEST(TabularCpd, UntrainedIsUniform) {
  TabularCpd cpd(4, {}, 1.0);
  for (int s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(cpd.prob(s, {}), 0.25);
  }
}

TEST(TabularCpd, ZeroAlphaNoDataFallsBackToUniform) {
  TabularCpd cpd(3, {}, 0.0);
  EXPECT_DOUBLE_EQ(cpd.prob(0, {}), 1.0 / 3.0);
}

TEST(TabularCpd, CountingMatchesMaximumLikelihoodWithSmoothing) {
  TabularCpd cpd(2, {}, 1.0);
  for (int i = 0; i < 3; ++i) cpd.observe(1, {});
  cpd.observe(0, {});
  // P(1) = (3 + 1) / (4 + 2) = 2/3
  EXPECT_DOUBLE_EQ(cpd.prob(1, {}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cpd.prob(0, {}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cpd.total_weight(), 4.0);
}

TEST(TabularCpd, RowsAreIndependent) {
  TabularCpd cpd(2, {2}, 0.5);
  const int p0[1] = {0};
  const int p1[1] = {1};
  cpd.observe(1, p0, 10.0);
  EXPECT_GT(cpd.prob(1, p0), 0.9);
  EXPECT_DOUBLE_EQ(cpd.prob(1, p1), 0.5);  // untouched row stays uniform
}

TEST(TabularCpd, WeightedObservations) {
  TabularCpd cpd(2, {}, 0.0);
  cpd.observe(0, {}, 3.0);
  cpd.observe(1, {}, 1.0);
  EXPECT_DOUBLE_EQ(cpd.prob(0, {}), 0.75);
}

TEST(TabularCpd, DistributionSumsToOnePerRow) {
  TabularCpd cpd(5, {3, 2}, 0.7);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 50; ++i) {
    const int parents[2] = {static_cast<int>(rng() % 3), static_cast<int>(rng() % 2)};
    cpd.observe(static_cast<int>(rng() % 5), parents);
  }
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      const int parents[2] = {a, b};
      double sum = 0.0;
      for (int s = 0; s < 5; ++s) sum += cpd.prob(s, parents);
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
}

TEST(TabularCpd, MixedRadixRowIndexing) {
  TabularCpd cpd(2, {2, 3}, 0.0);
  const int parents[2] = {1, 2};
  cpd.observe(1, parents);
  EXPECT_DOUBLE_EQ(cpd.count(1, parents), 1.0);
  const int other[2] = {1, 1};
  EXPECT_DOUBLE_EQ(cpd.count(1, other), 0.0);
  EXPECT_EQ(cpd.row_count(), 6u);
}

TEST(TabularCpd, ClearResetsCounts) {
  TabularCpd cpd(2, {}, 1.0);
  cpd.observe(1, {}, 5.0);
  cpd.clear();
  EXPECT_DOUBLE_EQ(cpd.prob(1, {}), 0.5);
  EXPECT_DOUBLE_EQ(cpd.total_weight(), 0.0);
}

TEST(TabularCpd, InvalidArgumentsThrow) {
  EXPECT_THROW(TabularCpd(0, {}, 1.0), std::invalid_argument);
  EXPECT_THROW(TabularCpd(2, {0}, 1.0), std::invalid_argument);
  EXPECT_THROW(TabularCpd(2, {}, -1.0), std::invalid_argument);
  TabularCpd cpd(2, {2}, 1.0);
  const int bad_state[1] = {5};
  EXPECT_THROW(cpd.observe(0, bad_state), std::out_of_range);
  EXPECT_THROW(cpd.prob(3, bad_state), std::out_of_range);
  EXPECT_THROW(cpd.prob(0, {}), std::invalid_argument);  // missing parents
}

TEST(DeterministicCpd, ComputesFunction) {
  // child = parent0 XOR parent1
  DeterministicCpd cpd(2, {2, 2},
                       [](std::span<const int> p) { return p[0] ^ p[1]; });
  const int p01[2] = {0, 1};
  EXPECT_DOUBLE_EQ(cpd.prob(1, p01), 1.0);
  EXPECT_DOUBLE_EQ(cpd.prob(0, p01), 0.0);
  const int p11[2] = {1, 1};
  EXPECT_DOUBLE_EQ(cpd.prob(0, p11), 1.0);
}

TEST(DeterministicCpd, RequiresFunction) {
  EXPECT_THROW(DeterministicCpd(2, {2}, nullptr), std::invalid_argument);
}

TEST(FixedCpd, ReturnsTableValues) {
  FixedCpd cpd(2, {2}, {0.9, 0.1, 0.3, 0.7});
  const int p0[1] = {0};
  const int p1[1] = {1};
  EXPECT_DOUBLE_EQ(cpd.prob(0, p0), 0.9);
  EXPECT_DOUBLE_EQ(cpd.prob(1, p1), 0.7);
}

TEST(FixedCpd, ValidatesRows) {
  EXPECT_THROW(FixedCpd(2, {}, {0.5, 0.6}), std::invalid_argument);   // sums to 1.1
  EXPECT_THROW(FixedCpd(2, {}, {-0.1, 1.1}), std::invalid_argument);  // negative
  EXPECT_THROW(FixedCpd(2, {}, {1.0}), std::invalid_argument);        // size mismatch
}

}  // namespace
}  // namespace slj::bayes
