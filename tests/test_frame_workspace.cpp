// Golden parity suite for the FrameWorkspace fast path (PR 4 tentpole):
// the workspace pipeline — integral-table window means, into-style
// segmentation, frontier Zhang–Suen — must produce bit-identical results to
// the straightforward (seed) implementations it shadows, at every worker
// count and via the StreamEngine; and the steady-state segmentation +
// thinning hot path must perform zero heap allocations.
#include "imaging/frame_workspace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "core/clip_engine.hpp"
#include "core/stream_engine.hpp"
#include "imaging/draw.hpp"
#include "imaging/filters.hpp"
#include "imaging/morphology.hpp"
#include "synth/dataset.hpp"
#include "thinning/zhang_suen.hpp"

// ---- global allocation counter ---------------------------------------------
// Replacing the global allocator in this TU counts every heap allocation in
// the binary; the hot-path test reads the counter around a steady-state
// frame. (Alignment-overloaded news are not replaced: the pipeline's buffers
// are all default-aligned vectors.)
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slj {
namespace {

using core::ClipEngine;
using core::ClipEngineConfig;
using core::ClipObservation;
using core::FrameObservation;
using core::FramePipeline;
using core::GroundMonitor;

// A small but real corpus: full-pipeline parity on every frame of every clip.
std::vector<synth::Clip> parity_clips() {
  std::vector<synth::Clip> clips;
  const std::pair<std::uint32_t, int> specs[] = {{3u, 18}, {17u, 14}, {2008u, 16}};
  for (const auto& [seed, frames] : specs) {
    synth::ClipSpec spec;
    spec.seed = seed;
    spec.frame_count = frames;
    clips.push_back(synth::generate_clip(spec));
  }
  return clips;
}

void expect_identical_observation(const FrameObservation& got, const FrameObservation& want,
                                  std::size_t frame) {
  EXPECT_EQ(got.silhouette, want.silhouette) << "frame " << frame;
  EXPECT_EQ(got.raw_skeleton, want.raw_skeleton) << "frame " << frame;
  EXPECT_EQ(got.bottom_row, want.bottom_row) << "frame " << frame;
  ASSERT_EQ(got.key_points.size(), want.key_points.size()) << "frame " << frame;
  for (std::size_t k = 0; k < got.key_points.size(); ++k) {
    EXPECT_EQ(got.key_points[k].pos, want.key_points[k].pos) << "frame " << frame << " kp " << k;
  }
  ASSERT_EQ(got.candidates.size(), want.candidates.size()) << "frame " << frame;
  for (std::size_t c = 0; c < got.candidates.size(); ++c) {
    EXPECT_EQ(got.candidates[c].nodes, want.candidates[c].nodes)
        << "frame " << frame << " cand " << c;
    EXPECT_TRUE(got.candidates[c].features == want.candidates[c].features)
        << "frame " << frame << " cand " << c;
  }
}

/// The seed reference: a plain serial FramePipeline loop (non-workspace
/// overloads, which still run the original allocating implementations).
ClipObservation serial_reference(const synth::Clip& clip) {
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  GroundMonitor ground;
  ClipObservation ref;
  for (const RgbImage& frame : clip.frames) {
    ref.frames.push_back(pipeline.process(frame));
    const bool flying = ground.airborne(ref.frames.back().bottom_row);
    ref.airborne.push_back(flying);
    if (flying) ++ref.airborne_frames;
    if (ref.frames.back().bottom_row < 0) ++ref.empty_frames;
  }
  ref.ground_row = ground.ground_row();
  return ref;
}

BinaryImage random_blobs(std::uint32_t seed, int w, int h, int discs) {
  std::mt19937 rng(seed);
  BinaryImage img(w, h, 0);
  std::uniform_int_distribution<int> cx(2, w - 3), cy(2, h - 3), r(2, 9);
  for (int i = 0; i < discs; ++i) {
    fill_disc(img, {static_cast<double>(cx(rng)), static_cast<double>(cy(rng))},
              static_cast<double>(r(rng)));
  }
  return img;
}

// ---- kernel-level parity ---------------------------------------------------

TEST(FrameWorkspaceParity, WindowMeansMatchReference) {
  const synth::Clip clip = parity_clips().front();
  FrameWorkspace ws;
  for (const int n : {1, 3, 5}) {
    const RgbMeans want = window_mean_rgb(clip.frames[5], n);
    window_mean_rgb_into(clip.frames[5], n, ws);
    EXPECT_EQ(ws.aave.r, want.r) << "window " << n;
    EXPECT_EQ(ws.aave.g, want.g) << "window " << n;
    EXPECT_EQ(ws.aave.b, want.b) << "window " << n;
  }
}

TEST(FrameWorkspaceParity, IntoVariantsMatchReference) {
  FrameWorkspace ws;
  for (const std::uint32_t seed : {1u, 7u, 42u}) {
    const BinaryImage mask = random_blobs(seed, 70, 50, 6);

    BinaryImage median_out;
    median_filter_binary_into(mask, 5, ws.mask_integral, median_out);
    EXPECT_EQ(median_out, median_filter_binary(mask, 5)) << "seed " << seed;

    BinaryImage largest_out;
    largest_component_into(mask, true, ws.labeling, ws.pixel_stack, largest_out);
    EXPECT_EQ(largest_out, largest_component(mask, true)) << "seed " << seed;

    BinaryImage filled_out;
    fill_holes_into(mask, ws.reached, ws.flood_stack, filled_out);
    EXPECT_EQ(filled_out, fill_holes(mask)) << "seed " << seed;
  }
}

TEST(FrameWorkspaceParity, FrontierThinningMatchesReferenceAcrossSeeds) {
  FrameWorkspace ws;  // deliberately reused across shapes and sizes
  BinaryImage out;
  for (const std::uint32_t seed : {1u, 7u, 13u, 42u, 99u, 123u, 2024u, 31337u}) {
    const BinaryImage img = random_blobs(seed, 64 + static_cast<int>(seed % 17), 48, 7);
    thin::ThinningStats want_stats;
    const BinaryImage want = thin::zhang_suen_thin(img, &want_stats);
    thin::ThinningStats got_stats;
    thin::zhang_suen_thin_into(img, ws, out, &got_stats);
    EXPECT_EQ(out, want) << "seed " << seed;
    EXPECT_EQ(got_stats.iterations, want_stats.iterations) << "seed " << seed;
    EXPECT_EQ(got_stats.removed, want_stats.removed) << "seed " << seed;
  }
}

TEST(FrameWorkspaceParity, ThinningHandlesDegenerateImages) {
  FrameWorkspace ws;
  BinaryImage out;
  // Empty, full, single-pixel, single-row, single-column images.
  for (const BinaryImage& img :
       {BinaryImage(0, 0), BinaryImage(12, 9, 0), BinaryImage(12, 9, 1), BinaryImage(1, 1, 1),
        BinaryImage(20, 1, 1), BinaryImage(1, 20, 1)}) {
    thin::zhang_suen_thin_into(img, ws, out);
    EXPECT_EQ(out, thin::zhang_suen_thin(img));
  }
}

TEST(FrameWorkspaceParity, ExtractIntoMatchesExtract) {
  const synth::Clip clip = parity_clips().front();
  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);
  FrameWorkspace ws;
  BinaryImage silhouette;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const seg::ExtractionResult want = extractor.extract(clip.frames[i]);
    const double max_d = extractor.extract_into(clip.frames[i], ws, silhouette);
    EXPECT_EQ(silhouette, want.silhouette) << "frame " << i;
    EXPECT_EQ(ws.smoothed, want.smoothed) << "frame " << i;
    EXPECT_EQ(ws.raw_mask, want.raw_mask) << "frame " << i;
    EXPECT_EQ(ws.difference, want.difference) << "frame " << i;
    EXPECT_DOUBLE_EQ(max_d, want.max_difference) << "frame " << i;
  }
}

TEST(FrameWorkspaceParity, WorkspaceSurvivesFrameSizeChanges) {
  // One workspace fed frames of different sizes must stay correct (buffers
  // are resized by each call, shrinking and growing).
  FrameWorkspace ws;
  BinaryImage out;
  const std::pair<int, int> sizes[] = {{80, 60}, {24, 18}, {120, 90}, {24, 90}};
  for (const auto& [w, h] : sizes) {
    const BinaryImage img = random_blobs(static_cast<std::uint32_t>(w * h), w, h, 5);
    thin::zhang_suen_thin_into(img, ws, out);
    EXPECT_EQ(out, thin::zhang_suen_thin(img)) << w << "x" << h;
  }
}

// ---- pipeline- and engine-level parity -------------------------------------

TEST(FrameWorkspaceParity, PipelineWorkspaceOverloadMatchesSeedPath) {
  const synth::Clip clip = parity_clips()[1];
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  FrameWorkspace ws;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    expect_identical_observation(pipeline.process(clip.frames[i], ws),
                                 pipeline.process(clip.frames[i]), i);
  }
}

TEST(FrameWorkspaceParity, TrackedPipelineWorkspaceOverloadMatchesSeedPath) {
  const synth::Clip clip = parity_clips()[2];
  FramePipeline pipeline;
  pipeline.set_background(clip.background);
  detect::BlobTracker tracker_seed;
  detect::BlobTracker tracker_ws;
  FrameWorkspace ws;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    expect_identical_observation(pipeline.process(clip.frames[i], tracker_ws, ws),
                                 pipeline.process(clip.frames[i], tracker_seed), i);
  }
}

TEST(FrameWorkspaceParity, ClipEngineMatchesSeedReferenceAtEveryWorkerCount) {
  const std::vector<synth::Clip> clips = parity_clips();
  std::vector<ClipObservation> references;
  references.reserve(clips.size());
  for (const synth::Clip& clip : clips) references.push_back(serial_reference(clip));

  for (const unsigned workers : {1u, 4u, 16u}) {
    ClipEngineConfig config;
    config.workers = workers;
    ClipEngine engine({}, config);
    const std::vector<ClipObservation> batch = engine.process(clips);
    ASSERT_EQ(batch.size(), clips.size());
    for (std::size_t c = 0; c < clips.size(); ++c) {
      const ClipObservation& got = batch[c];
      const ClipObservation& want = references[c];
      ASSERT_EQ(got.frame_count(), want.frame_count()) << "workers " << workers;
      EXPECT_EQ(got.airborne, want.airborne) << "workers " << workers << " clip " << c;
      EXPECT_EQ(got.ground_row, want.ground_row) << "workers " << workers << " clip " << c;
      for (std::size_t i = 0; i < got.frames.size(); ++i) {
        expect_identical_observation(got.frames[i], want.frames[i], i);
      }
    }
  }
}

TEST(FrameWorkspaceParity, StreamEngineMatchesSeedReference) {
  const pose::PoseDbnClassifier classifier;
  const std::vector<synth::Clip> clips = parity_clips();
  core::StreamManager manager(classifier);
  std::vector<int> ids;
  for (const synth::Clip& clip : clips) ids.push_back(manager.open_session(clip.background));
  for (std::size_t c = 0; c < clips.size(); ++c) {
    const ClipObservation want = serial_reference(clips[c]);
    for (std::size_t i = 0; i < clips[c].frames.size(); ++i) {
      const core::StreamUpdate update = manager.push_frame(ids[c], clips[c].frames[i]);
      EXPECT_EQ(update.airborne, want.airborne[i]) << "clip " << c << " frame " << i;
    }
  }
}

// ---- allocation behaviour --------------------------------------------------

TEST(FrameWorkspaceAllocation, SteadyStateSegmentAndThinHotPathIsAllocationFree) {
  const synth::Clip clip = parity_clips().front();
  seg::ObjectExtractor extractor;
  extractor.set_background(clip.background);
  FrameWorkspace ws;
  BinaryImage silhouette;
  BinaryImage skeleton;
  // Two warm-up rounds size every buffer to its high-water mark.
  for (int round = 0; round < 2; ++round) {
    for (const RgbImage& frame : clip.frames) {
      extractor.extract_into(frame, ws, silhouette);
      thin::zhang_suen_thin_into(silhouette, ws, skeleton);
    }
  }
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (const RgbImage& frame : clip.frames) {
    extractor.extract_into(frame, ws, silhouette);
    thin::zhang_suen_thin_into(silhouette, ws, skeleton);
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "segment+thin steady state must not allocate";
}

}  // namespace
}  // namespace slj
