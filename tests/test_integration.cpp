// End-to-end integration: generated corpus → training → classification.
// These are the slowest tests in the suite (a few seconds).
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/evaluation.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

namespace slj::core {
namespace {

synth::DatasetSpec small_spec(std::uint32_t seed = 2008) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.train_clip_frames = {44, 43, 44, 43, 44, 43};
  spec.test_clip_frames = {45};
  return spec;
}

TEST(Integration, TrainingConsumesAllFrames) {
  const synth::Dataset ds = synth::generate_dataset(small_spec());
  FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  const TrainingStats stats = train_on_dataset(classifier, pipeline, ds);
  EXPECT_EQ(stats.frames, ds.train_frames());
  EXPECT_EQ(stats.frames_without_skeleton, 0u);
  EXPECT_DOUBLE_EQ(classifier.training_frames(),
                   static_cast<double>(ds.train_frames()));
}

TEST(Integration, AccuracyWellAboveChance) {
  const synth::Dataset ds = synth::generate_dataset(small_spec());
  FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  train_on_dataset(classifier, pipeline, ds);
  const DatasetEvaluation eval = evaluate_dataset(classifier, pipeline, ds.test);
  // Chance over 22 poses is ~4.5%; the trained pipeline should clear 50%
  // even on this reduced corpus.
  EXPECT_GT(eval.overall_accuracy(), 0.5);
  // Stage-level agreement is much stronger still.
  EXPECT_GT(eval.clips.front().stage_accuracy(), 0.75);
}

TEST(Integration, DbnBeatsStaticBn) {
  const synth::Dataset ds = synth::generate_dataset(small_spec());
  FramePipeline p1, p2;
  pose::ClassifierConfig dbn_cfg;
  pose::ClassifierConfig static_cfg;
  static_cfg.temporal = pose::TemporalMode::kStaticBn;
  pose::PoseDbnClassifier dbn(dbn_cfg);
  pose::PoseDbnClassifier static_bn(static_cfg);
  train_on_dataset(dbn, p1, ds);
  train_on_dataset(static_bn, p2, ds);
  const double acc_dbn = evaluate_dataset(dbn, p1, ds.test).overall_accuracy();
  const double acc_static = evaluate_dataset(static_bn, p2, ds.test).overall_accuracy();
  EXPECT_GT(acc_dbn, acc_static);
}

TEST(Integration, EvaluationIsDeterministic) {
  const synth::Dataset ds = synth::generate_dataset(small_spec());
  FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  train_on_dataset(classifier, pipeline, ds);
  const DatasetEvaluation e1 = evaluate_dataset(classifier, pipeline, ds.test);
  const DatasetEvaluation e2 = evaluate_dataset(classifier, pipeline, ds.test);
  EXPECT_EQ(e1.total_correct(), e2.total_correct());
}

TEST(Integration, AnalyzerProducesFrameResultsAndReport) {
  const synth::Dataset ds = synth::generate_dataset(small_spec());
  JumpAnalyzer analyzer({}, {});
  analyzer.train(ds);
  const ClipAnalysis analysis = analyzer.analyze(ds.test.front());
  EXPECT_EQ(analysis.frames.size(), ds.test.front().frames.size());
  EXPECT_EQ(analysis.report.total_count(), 6);
  // A well-executed jump passes most of the standard's checks.
  EXPECT_GE(analysis.report.passed_count(), 4);
}

TEST(Integration, AnalyzerRejectsMismatchedAreaConfig) {
  PipelineParams pp;
  pp.num_areas = 8;
  pose::ClassifierConfig cc;
  cc.num_areas = 12;
  EXPECT_THROW(JumpAnalyzer(pp, cc), std::invalid_argument);
}

TEST(Integration, FaultyJumpFailsTheMatchingCheck) {
  const synth::Dataset ds = synth::generate_dataset(small_spec());
  JumpAnalyzer analyzer({}, {});
  analyzer.train(ds);

  synth::ClipSpec faulty;
  faulty.seed = 321;
  faulty.frame_count = 45;
  faulty.faults.no_arm_swing = true;
  const synth::Clip clip = synth::generate_clip(faulty);
  const ClipAnalysis analysis = analyzer.analyze(clip);
  // A jump without any arm swing must fail at least one check (the exact
  // check can vary with classification noise, but a clean bill of health
  // would be wrong).
  EXPECT_FALSE(analysis.report.all_passed());
}

TEST(Integration, ErrorsClusterInConsecutiveFrames) {
  // The paper's observation: "Most errors in our experiments occurred in
  // consecutive frames." At least some multi-frame error runs exist.
  const synth::Dataset ds = synth::generate_dataset(small_spec());
  FramePipeline pipeline;
  pose::PoseDbnClassifier classifier;
  train_on_dataset(classifier, pipeline, ds);
  const DatasetEvaluation eval = evaluate_dataset(classifier, pipeline, ds.test);
  const std::vector<int> runs = error_run_lengths(eval);
  if (!runs.empty()) {
    int multi = 0;
    for (const int r : runs) multi += r >= 2 ? 1 : 0;
    EXPECT_GT(multi, 0);
  }
}

}  // namespace
}  // namespace slj::core
