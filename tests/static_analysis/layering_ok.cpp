// Lint fixture: the positive control for layering. Staged as
// src/imaging/layering_ok.cpp, it includes only its own module and the
// core_base vocabulary imaging is allowed to depend on — slj_lint must pass
// this file clean against the real scripts/lint/layers.toml.
#include "core/annotations.hpp"
#include "core/simd.hpp"
#include "imaging/frame.hpp"

int imaging_helper() { return 1; }
