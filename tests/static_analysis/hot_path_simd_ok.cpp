// Lint fixture: the sanctioned SIMD dispatch idiom. The kernel is templated
// on a backend tag and the call site picks slj::simd::Active — the one
// alias core/simd.hpp resolves from the feature macros. No macro appears
// here and the hot body is a single preprocessor-free code path, so
// slj_lint MUST pass this file; a false positive means the simd-dispatch
// rule broke the real kernels' idiom.
#include <cstddef>
#include <cstdint>

#include "core/annotations.hpp"
#include "core/simd.hpp"

namespace {

template <class B>
void threshold_impl(const double* src, std::uint8_t* dst, std::size_t n, double threshold) {
  using V = slj::simd::VecF64<B>;
  const V vth = V::broadcast(threshold);
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    V::store_ge01(V::load(src + i), vth, dst + i);
  }
  for (; i < n; ++i) dst[i] = src[i] >= threshold ? 1 : 0;
}

}  // namespace

SLJ_HOT_PATH void threshold_into(const double* src, std::uint8_t* dst, std::size_t n,
                                 double threshold) {
  threshold_impl<slj::simd::Active>(src, dst, n, threshold);
}
