// Negative-compile fixture: reads and writes a SLJ_GUARDED_BY member
// without holding its mutex. Under clang with -Werror=thread-safety-analysis
// this file MUST fail to compile — if it ever compiles there, the
// thread-safety gate has silently stopped gating. (Under gcc the annotations
// are no-ops and the file compiles; the harness only runs the negative
// check with a clang compiler.)
#include "core/annotations.hpp"

namespace {

class Counter {
 public:
  void bump_unlocked() {
    ++value_;  // guarded write, no lock held: thread-safety error on clang
  }

  int value_unlocked() const {
    return value_;  // guarded read, no lock held: thread-safety error on clang
  }

 private:
  mutable slj::Mutex mutex_;
  int value_ SLJ_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int guarded_bad_entry() {
  Counter c;
  c.bump_unlocked();
  return c.value_unlocked();
}
