// Lint fixture: the per-ISA #ifdef ladder the simd-dispatch rule exists to
// keep out of the tree. The feature macro leaks outside core/simd.hpp AND
// the hot kernel body forks on the preprocessor — the exact shape that rots
// silently on whichever backend CI does not build. slj_lint MUST reject
// this file on both counts.
#include <cstddef>
#include <cstdint>

#include "core/annotations.hpp"

SLJ_HOT_PATH void threshold_into(const double* src, std::uint8_t* dst, std::size_t n,
                                 double threshold) {
#ifdef __AVX2__
  // "Fast path" that only ever compiles on one CI leg.
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] >= threshold ? 1 : 0;
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] >= threshold ? 1 : 0;
#endif
#if defined(__SSE2__) && !defined(SLJ_SIMD_FORCE_SCALAR)
  (void)n;
#endif
}
