// Lint fixture: every way the atomics-discipline rule fires. slj_lint MUST
// report findings here — untagged relaxed sites, a relaxed RMW gating a
// branch without a sanctioning role, and a defaulted (seq_cst) atomic op
// inside a SLJ_HOT_PATH body. Valid C++ throughout: the memory model is
// exactly the kind of invariant the compiler will never check for us.
#include <atomic>
#include <cstdint>

#include "core/annotations.hpp"

std::atomic<std::uint64_t> hits{0};
std::atomic<std::uint64_t> refs{1};
std::atomic<bool> draining{false};

void untagged_counter() {
  hits.fetch_add(1, std::memory_order_relaxed);  // no slj-atomic tag: finding
}

void reclaim_style_branch() {
  // Relaxed RMW feeding control flow with a role that does not sanction it:
  // the classic use-after-free shape that needs acq_rel.
  if (refs.fetch_sub(1, std::memory_order_relaxed) == 1) {  // slj-atomic: flag
    draining.store(true, std::memory_order_relaxed);  // slj-atomic: flag
  }
}

SLJ_HOT_PATH void hot_defaulted_fence(std::uint64_t n) {
  hits.store(n);  // defaulted seq_cst order on the hot path: finding
}
