// Positive control for the thread-safety gate: a correctly locked counter.
// This file must compile under EVERY supported compiler — on clang it proves
// the annotations are consistent; on gcc it proves they degrade to no-ops
// (a regression in core/annotations.hpp's portability shows up here first).
#include "core/annotations.hpp"

namespace {

class Counter {
 public:
  void bump() SLJ_EXCLUDES(mutex_) {
    slj::LockGuard lock(mutex_);
    ++value_;
  }

  int value() SLJ_EXCLUDES(mutex_) {
    slj::LockGuard lock(mutex_);
    return value_;
  }

 private:
  void bump_locked() SLJ_REQUIRES(mutex_) { ++value_; }

  slj::Mutex mutex_;
  int value_ SLJ_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int guarded_ok_entry() {
  Counter c;
  c.bump();
  return c.value();
}
