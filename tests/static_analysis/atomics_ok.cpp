// Lint fixture: the positive control for atomics-discipline. Every relaxed
// site carries a role tag, the CAS-max loop is sanctioned by the counter
// role, the hot-path atomic op spells its order, and the SIMD-style .store
// on a non-atomic receiver is ignored. slj_lint must pass this file clean.
#include <atomic>
#include <cstdint>

#include "core/annotations.hpp"

std::atomic<std::uint64_t> hits{0};
std::atomic<std::uint64_t> peak{0};
std::atomic<bool> draining{false};

struct FakeVec {
  void store(double* dst) const { *dst = 0.0; }
};

void tagged_counter() {
  hits.fetch_add(1, std::memory_order_relaxed);  // slj-atomic: counter
}

void tagged_max(std::uint64_t sample) {
  // slj-atomic: counter — monotonic-max CAS; a raced retry republishes the winner
  std::uint64_t seen = peak.load(std::memory_order_relaxed);
  while (sample > seen &&
         // slj-atomic: counter
         !peak.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

void tagged_flag() {
  draining.store(true, std::memory_order_relaxed);  // slj-atomic: flag
}

SLJ_HOT_PATH void hot_explicit_order(std::uint64_t n, double* out) {
  hits.store(n, std::memory_order_relaxed);  // slj-atomic: counter
  const FakeVec v;
  v.store(out);  // non-atomic .store: not the atomics rule's business
}
