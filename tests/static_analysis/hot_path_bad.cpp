// Lint fixture: a SLJ_HOT_PATH function that allocates every way the
// hot-path-alloc rule bans. slj_lint MUST report findings here (the harness
// asserts a non-zero exit and one finding per planted violation). The file
// is still valid C++ — it compiles fine — which is exactly why the invariant
// needs a linter and not the compiler.
#include <string>
#include <vector>

#include "core/annotations.hpp"

SLJ_HOT_PATH void hot_path_bad(int frames) {
  std::vector<int> scratch;                       // by-value owning container local
  scratch.reserve(static_cast<std::size_t>(frames));  // growth on a non-reference root
  int* raw = new int[static_cast<std::size_t>(frames)];  // new expression
  std::string label = std::to_string(frames);     // std::to_string allocates
  delete[] raw;
  (void)label;
}
