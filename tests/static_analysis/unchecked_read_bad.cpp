// Lint fixture for the unchecked-read rule. The harness stages this file as
// src/synth/clip_io.cpp inside a throwaway tree (the rule is scoped to the
// real deserializer files by path), where sizing a container straight from
// a decoded length with no kMax* cap / need() / fail() / check_* / throw in
// the same function MUST be flagged.
#include <cstdint>
#include <vector>

struct Reader {
  std::uint32_t u32();
};

struct Clip {
  std::vector<int> frames;
};

void load_clip(Reader& r, Clip& clip) {
  const std::uint32_t frames = r.u32();
  clip.frames.reserve(frames);  // attacker-controlled length, no guard
}
