// Lint fixture: the sanctioned recycled-workspace idiom. Growth calls are
// rooted in reference parameters or local reference aliases of them, so the
// buffers amortize to zero allocations in steady state. slj_lint MUST pass
// this file — a false positive here means the rule broke the real kernels'
// idiom (zhang_suen_thin_into's alias pattern is modelled directly).
#include <cstddef>
#include <vector>

#include "core/annotations.hpp"

struct Workspace {
  std::vector<int> candidates_first;
  std::vector<int> candidates_second;
};

SLJ_HOT_PATH void hot_path_ok(Workspace& ws, std::vector<int>& out, int frames) {
  out.resize(static_cast<std::size_t>(frames));  // growth on a reference parameter
  auto& cand = ws.candidates_first;              // local reference alias into the workspace
  cand.clear();
  for (int i = 0; i < frames; ++i) {
    cand.push_back(i);                           // growth through the alias
    if (i < 0) throw frames;                     // cold error path: exempt even if it allocated
  }
  ws.candidates_second.assign(cand.begin(), cand.end());  // growth rooted at the parameter
}
