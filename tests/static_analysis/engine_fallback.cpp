// Lint fixture: a translation unit the AST engine can never parse — the
// include does not exist and the syntax is broken mid-declaration. The
// lexical pass still runs (and finds nothing), but `clang++ -ast-dump=json`
// fails, so linting this file MUST exit 0 by default (loud fallback note)
// and exit 2 under --strict-engine. It carries an SLJ_HOT_PATH token so the
// AST surface pre-filter does not skip the dump.
#include "no/such/header.hpp"

SLJ_HOT_PATH void broken_translation_unit(int {{{
