// Lint fixture: the positive control for determinism. The unordered map is
// drained through a sorted vector before serialization (the sanctioned
// idiom, see skeleton_graph.cpp), the hot kernel accumulates in the exact
// integer domain (double SAT entries hold exact integer sums), and nothing
// reads libc randomness or the wall clock. slj_lint must pass this clean.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/annotations.hpp"

std::string serialize_report(const std::unordered_map<int, int>& scores) {
  std::vector<std::pair<int, int>> rows(scores.begin(), scores.end());
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& [id, score] : rows) {
    out += std::to_string(id) + ":" + std::to_string(score) + "\n";
  }
  return out;
}

SLJ_HOT_PATH void accumulate_rows(const std::uint8_t* row, int width, std::int32_t* sums) {
  std::int32_t acc = 0;
  for (int x = 0; x < width; ++x) {
    acc += row[x];
  }
  sums[0] = acc;
}
