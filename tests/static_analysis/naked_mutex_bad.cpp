// Lint fixture: raw standard-library locking primitives. Everything here
// must go through slj::Mutex / slj::LockGuard / slj::CondVar instead, so
// Clang thread-safety analysis sees the acquisitions; slj_lint MUST flag
// every declaration below.
#include <condition_variable>
#include <mutex>

namespace {

struct BadLocking {
  std::mutex mu;
  std::condition_variable cv;

  void touch() {
    std::lock_guard<std::mutex> lock(mu);
    cv.notify_one();
  }
};

}  // namespace

void naked_mutex_entry() {
  BadLocking b;
  b.touch();
}
