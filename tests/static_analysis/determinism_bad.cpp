// Lint fixture: every way the determinism rule fires. slj_lint MUST report
// findings here — range-for over an unordered container (hash-seed order
// leaks into whatever the loop builds), float accumulation inside an
// integer-domain SLJ_HOT_PATH kernel, and libc randomness/wall-clock reads
// outside src/synth/.
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <string>
#include <unordered_map>

#include "core/annotations.hpp"

std::string serialize_report(const std::unordered_map<int, int>& scores) {
  std::string out;
  for (const auto& [id, score] : scores) {  // unordered iteration: finding
    out += std::to_string(id) + ":" + std::to_string(score) + "\n";
  }
  return out;
}

SLJ_HOT_PATH void accumulate_rows(const std::uint8_t* row, int width, std::int32_t* sums) {
  float acc = 0.0f;  // float in an integer-domain kernel: finding
  for (int x = 0; x < width; ++x) {
    acc += static_cast<float>(row[x]);
  }
  sums[0] = static_cast<std::int32_t>(acc);
}

int jitter() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // time(): finding
  return std::rand();                                     // rand(): finding
}
