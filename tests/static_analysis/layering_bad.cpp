// Lint fixture: every way the layering rule fires. The harness stages this
// file as src/imaging/layering_bad.cpp in a scratch tree and lints it
// against the real scripts/lint/layers.toml, so slj_lint MUST report an
// upward dependency (imaging -> ingest), a non-canonical relative include,
// and an include that resolves to no module in the DAG.
#include "../core/simd.hpp"        // not canonical "module/header.hpp" form
#include "ingest/frame_queue.hpp"  // upward: imaging may not include ingest
#include "widgets/widget.hpp"      // no such module in layers.toml

int imaging_helper() { return 1; }
