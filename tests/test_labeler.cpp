#include "synth/labeler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "synth/dataset.hpp"

namespace slj::synth {
namespace {

constexpr double deg(double d) { return d * 3.14159265358979323846 / 180.0; }

MotionFrame frame_with(JointAngles angles, pose::Stage stage, bool airborne = false) {
  MotionFrame f;
  f.angles = angles;
  f.stage = stage;
  f.airborne = airborne;
  f.pelvis = {0.0, airborne ? 0.9 : 0.7};
  return f;
}

const BodyDimensions kBody = BodyDimensions::for_height(1.38);

TEST(CardinalSector, EightDirections) {
  EXPECT_EQ(cardinal_sector({1, 0}), 0);
  EXPECT_EQ(cardinal_sector({1, 1}), 1);
  EXPECT_EQ(cardinal_sector({0, 1}), 2);
  EXPECT_EQ(cardinal_sector({-1, 1}), 3);
  EXPECT_EQ(cardinal_sector({-1, 0}), 4);
  EXPECT_EQ(cardinal_sector({-1, -1}), 5);
  EXPECT_EQ(cardinal_sector({0, -1}), 6);
  EXPECT_EQ(cardinal_sector({1, -1}), 7);
}

TEST(ClassifyArm, HangingArmIsDown) {
  JointAngles a;  // shoulder 0: hanging along the torso
  const JointPositions j = forward_kinematics(kBody, a, {0, 0.8});
  EXPECT_EQ(classify_arm(kBody, j), ArmDirection::kDown);
}

TEST(ClassifyArm, RaisedArmIsUp) {
  JointAngles a;
  a.shoulder = deg(160);
  const JointPositions j = forward_kinematics(kBody, a, {0, 0.8});
  EXPECT_EQ(classify_arm(kBody, j), ArmDirection::kUp);
}

TEST(ClassifyArm, SwungBackIsBackward) {
  JointAngles a;
  a.shoulder = deg(-55);
  const JointPositions j = forward_kinematics(kBody, a, {0, 0.8});
  EXPECT_EQ(classify_arm(kBody, j), ArmDirection::kBackward);
}

TEST(ClassifyArm, HorizontalForwardIsForward) {
  JointAngles a;
  a.shoulder = deg(90);
  const JointPositions j = forward_kinematics(kBody, a, {0, 0.8});
  EXPECT_EQ(classify_arm(kBody, j), ArmDirection::kForward);
}

TEST(ClassifyKnee, Thresholds) {
  EXPECT_EQ(classify_knee(deg(10)), KneeBend::kStraight);
  EXPECT_EQ(classify_knee(deg(45)), KneeBend::kBent);
  EXPECT_EQ(classify_knee(deg(80)), KneeBend::kDeep);
}

TEST(WaistBent, PikeAndLeanDetected) {
  JointAngles pike;
  pike.hip = deg(70);
  pike.knee = deg(10);
  EXPECT_TRUE(waist_bent(pike));
  JointAngles lean;
  lean.torso_lean = deg(30);
  EXPECT_TRUE(waist_bent(lean));
  JointAngles upright;
  EXPECT_FALSE(waist_bent(upright));
}

TEST(LabelPose, InitialStandingIsOverlap) {
  JointAngles a;
  EXPECT_EQ(label_pose(kBody, frame_with(a, pose::Stage::kBeforeJumping)),
            pose::PoseId::kStandHandsOverlap);
}

TEST(LabelPose, StandingArmVariants) {
  JointAngles fwd;
  fwd.shoulder = deg(50);
  EXPECT_EQ(label_pose(kBody, frame_with(fwd, pose::Stage::kBeforeJumping)),
            pose::PoseId::kStandHandsForward);
  JointAngles up;
  up.shoulder = deg(165);
  EXPECT_EQ(label_pose(kBody, frame_with(up, pose::Stage::kBeforeJumping)),
            pose::PoseId::kStandHandsUp);
  JointAngles back;
  back.shoulder = deg(-50);
  EXPECT_EQ(label_pose(kBody, frame_with(back, pose::Stage::kBeforeJumping)),
            pose::PoseId::kStandHandsBackward);
}

TEST(LabelPose, CrouchVariants) {
  JointAngles crouch;
  crouch.knee = deg(75);
  crouch.hip = deg(60);
  crouch.shoulder = deg(-50);
  crouch.torso_lean = deg(25);
  EXPECT_EQ(label_pose(kBody, frame_with(crouch, pose::Stage::kBeforeJumping)),
            pose::PoseId::kCrouchHandsBackward);
  crouch.shoulder = deg(45);
  EXPECT_EQ(label_pose(kBody, frame_with(crouch, pose::Stage::kBeforeJumping)),
            pose::PoseId::kCrouchHandsForward);
}

TEST(LabelPose, TakeoffExtension) {
  JointAngles ext;
  ext.knee = deg(5);
  ext.shoulder = deg(60);
  EXPECT_EQ(label_pose(kBody, frame_with(ext, pose::Stage::kJumping)),
            pose::PoseId::kExtendedHandsForward);
  ext.shoulder = deg(165);
  EXPECT_EQ(label_pose(kBody, frame_with(ext, pose::Stage::kJumping)),
            pose::PoseId::kExtendedHandsUp);
}

TEST(LabelPose, AirVariants) {
  JointAngles tuck;
  tuck.knee = deg(90);
  tuck.hip = deg(70);
  tuck.shoulder = deg(80);
  EXPECT_EQ(label_pose(kBody, frame_with(tuck, pose::Stage::kInTheAir, true)),
            pose::PoseId::kAirTuckHandsForward);
  JointAngles reach;
  reach.knee = deg(25);
  reach.hip = deg(80);
  reach.shoulder = deg(70);
  EXPECT_EQ(label_pose(kBody, frame_with(reach, pose::Stage::kInTheAir, true)),
            pose::PoseId::kAirLegsReachForward);
  JointAngles extended;
  extended.shoulder = deg(85);
  EXPECT_EQ(label_pose(kBody, frame_with(extended, pose::Stage::kInTheAir, true)),
            pose::PoseId::kAirExtendedHandsForward);
}

TEST(LabelPose, LandingVariants) {
  JointAngles touchdown;
  touchdown.knee = deg(45);
  touchdown.hip = deg(75);
  touchdown.shoulder = deg(60);
  EXPECT_EQ(label_pose(kBody, frame_with(touchdown, pose::Stage::kLanding)),
            pose::PoseId::kTouchdownKneesBentHandsForward);
  JointAngles rising;
  rising.knee = deg(10);
  rising.hip = deg(8);
  rising.shoulder = deg(3);
  EXPECT_EQ(label_pose(kBody, frame_with(rising, pose::Stage::kLanding)),
            pose::PoseId::kLandedRisingHandsDown);
}

TEST(LabelPose, StageDeterminesPoseFamily) {
  // Identical angles in different stages yield poses of those stages.
  JointAngles a;
  a.shoulder = deg(60);
  for (int s = 0; s < pose::kStageCount; ++s) {
    const auto stage = pose::stage_from_index(s);
    const pose::PoseId p = label_pose(kBody, frame_with(a, stage));
    EXPECT_EQ(pose::stage_of(p), stage);
  }
}

TEST(LabelPose, GeneratedJumpCoversManyPoses) {
  // Across a few generated clips the labeller should emit a healthy chunk
  // of the catalogue (not all 22 appear in every jump style).
  std::set<pose::PoseId> seen;
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    ClipSpec spec;
    spec.seed = seed;
    spec.frame_count = 44;
    const Clip clip = generate_clip(spec);
    for (const FrameTruth& t : clip.truth) seen.insert(t.pose);
  }
  EXPECT_GE(seen.size(), 12u);
}

TEST(LabelPose, LabelsAreStageConsistentInGeneratedClips) {
  ClipSpec spec;
  spec.seed = 3;
  const Clip clip = generate_clip(spec);
  for (const FrameTruth& t : clip.truth) {
    EXPECT_EQ(pose::stage_of(t.pose), t.stage);
  }
}

}  // namespace
}  // namespace slj::synth
