#include "imaging/image.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace slj {
namespace {

TEST(Image, DefaultConstructedIsEmpty) {
  GrayImage img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
  EXPECT_EQ(img.height(), 0);
  EXPECT_EQ(img.size(), 0u);
}

TEST(Image, ConstructionFillsValue) {
  GrayImage img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(img.at(x, y), 7);
    }
  }
}

TEST(Image, NegativeDimensionsThrow) {
  EXPECT_THROW(GrayImage(-1, 3), std::invalid_argument);
  EXPECT_THROW(GrayImage(3, -1), std::invalid_argument);
}

TEST(Image, ZeroByNImageIsEmptyButValid) {
  GrayImage img(0, 5);
  EXPECT_TRUE(img.empty());
  EXPECT_FALSE(img.in_bounds(0, 0));
}

TEST(Image, AtReadsAndWritesRowMajor) {
  GrayImage img(3, 2);
  img.at(2, 1) = 42;
  EXPECT_EQ(img.data()[1 * 3 + 2], 42);
  img.at(0, 0) = 9;
  EXPECT_EQ(img.data()[0], 9);
}

TEST(Image, InBounds) {
  GrayImage img(3, 2);
  EXPECT_TRUE(img.in_bounds(0, 0));
  EXPECT_TRUE(img.in_bounds(2, 1));
  EXPECT_FALSE(img.in_bounds(3, 0));
  EXPECT_FALSE(img.in_bounds(0, 2));
  EXPECT_FALSE(img.in_bounds(-1, 0));
  EXPECT_FALSE(img.in_bounds(0, -1));
}

TEST(Image, AtOrReturnsOutsideValue) {
  GrayImage img(2, 2, 5);
  EXPECT_EQ(img.at_or(0, 0, 99), 5);
  EXPECT_EQ(img.at_or(-1, 0, 99), 99);
  EXPECT_EQ(img.at_or(0, 2, 99), 99);
}

TEST(Image, FillOverwritesEverything) {
  GrayImage img(4, 4, 1);
  img.fill(8);
  for (const auto v : img.data()) EXPECT_EQ(v, 8);
}

TEST(Image, EqualityComparesContents) {
  GrayImage a(2, 2, 1);
  GrayImage b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 2;
  EXPECT_NE(a, b);
}

TEST(Image, RgbPixelEquality) {
  EXPECT_EQ((Rgb{1, 2, 3}), (Rgb{1, 2, 3}));
  EXPECT_NE((Rgb{1, 2, 3}), (Rgb{1, 2, 4}));
}

TEST(CountForeground, CountsNonZero) {
  BinaryImage img(3, 3, 0);
  EXPECT_EQ(count_foreground(img), 0u);
  img.at(0, 0) = 1;
  img.at(2, 2) = 1;
  EXPECT_EQ(count_foreground(img), 2u);
}

TEST(Iou, IdenticalMasksGiveOne) {
  BinaryImage a(4, 4, 0);
  a.at(1, 1) = 1;
  a.at(2, 2) = 1;
  EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
}

TEST(Iou, DisjointMasksGiveZero) {
  BinaryImage a(4, 4, 0);
  BinaryImage b(4, 4, 0);
  a.at(0, 0) = 1;
  b.at(3, 3) = 1;
  EXPECT_DOUBLE_EQ(iou(a, b), 0.0);
}

TEST(Iou, EmptyMasksAgreePerfectly) {
  BinaryImage a(4, 4, 0);
  BinaryImage b(4, 4, 0);
  EXPECT_DOUBLE_EQ(iou(a, b), 1.0);
}

TEST(Iou, PartialOverlap) {
  BinaryImage a(4, 1, 0);
  BinaryImage b(4, 1, 0);
  a.at(0, 0) = a.at(1, 0) = 1;
  b.at(1, 0) = b.at(2, 0) = 1;
  EXPECT_DOUBLE_EQ(iou(a, b), 1.0 / 3.0);
}

TEST(Iou, SizeMismatchThrows) {
  BinaryImage a(4, 4);
  BinaryImage b(3, 4);
  EXPECT_THROW(iou(a, b), std::invalid_argument);
}

TEST(Geometry, DistanceAndNorm) {
  EXPECT_DOUBLE_EQ(distance(PointF{0, 0}, PointF{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance(PointI{0, 0}, PointI{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm(PointF{3, 4}), 5.0);
}

TEST(Geometry, Chebyshev) {
  EXPECT_EQ(chebyshev({0, 0}, {3, 1}), 3);
  EXPECT_EQ(chebyshev({0, 0}, {-2, -5}), 5);
  EXPECT_EQ(chebyshev({1, 1}, {1, 1}), 0);
}

TEST(Geometry, PointHashDistinguishesAxes) {
  const std::hash<PointI> h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
}

TEST(Geometry, Neighbours8StartsNorthAndGoesClockwise) {
  EXPECT_EQ(kNeighbours8[0], (PointI{0, -1}));  // P2: north
  EXPECT_EQ(kNeighbours8[2], (PointI{1, 0}));   // P4: east
  EXPECT_EQ(kNeighbours8[4], (PointI{0, 1}));   // P6: south
  EXPECT_EQ(kNeighbours8[6], (PointI{-1, 0}));  // P8: west
}

}  // namespace
}  // namespace slj
